// Adders at scale — the workload the paper's introduction motivates.
//
// Sweeps ripple adders from 2 to 16 bits through both flows and prints the
// growth of the pre-mapping cost: the FPRM flow recovers the ripple
// structure from nothing but the functions (linear cost in the bit width),
// while the conventional SOP flow degrades as the flattened covers grow.
#include <cstdio>

#include "baseline/script.hpp"
#include "benchgen/spec.hpp"
#include "core/synth.hpp"
#include "mapping/mapper.hpp"

int main() {
  using namespace rmsyn;

  std::printf("bits | our lits  t(s)   | baseline lits  t(s) | mapped cells "
              "(ours/base)\n");
  for (const int bits : {2, 3, 4, 6, 8, 12, 16}) {
    const Network spec = ripple_adder(bits, /*with_cin=*/true, true);
    SynthReport ours;
    const Network a = synthesize(spec, {}, &ours);
    BaselineReport base;
    const Network b = baseline_synthesize(spec, {}, &base);
    const auto ma = map_network(a, mcnc_library());
    const auto mb = map_network(b, mcnc_library());
    std::printf("%4d | %8zu %6.2f | %13zu %5.2f | %zu / %zu\n", bits,
                ours.stats.lits, ours.seconds, base.stats.lits, base.seconds,
                ma.gate_count, mb.gate_count);
  }
  std::printf("\nPer-bit cost of the FPRM flow should be ~constant: the\n"
              "shared-OFDD construction rebuilds the carry chain once and\n"
              "reuses it across all sum outputs.\n");
  return 0;
}
