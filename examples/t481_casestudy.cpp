// The t481 case study (Example 1 of the paper) in API form: how a function
// with 481 prime implicants collapses to a handful of FPRM cubes, and how
// the polarity vector matters.
#include <cstdio>

#include "benchgen/spec.hpp"
#include "core/synth.hpp"
#include "equiv/equiv.hpp"
#include "fdd/fprm.hpp"
#include "network/stats.hpp"

int main() {
  using namespace rmsyn;
  const Benchmark bench = make_benchmark("t481");

  BddManager mgr(16);
  const BddRef f = output_bdds(mgr, bench.spec)[0];

  // All-positive polarity (PPRM) vs searched polarity.
  BitVec all_pos(16);
  all_pos.set_all();
  const Ofdd pprm = build_ofdd(mgr, f, all_pos);
  std::printf("PPRM cube count:        %.0f\n",
              fprm_cube_count(mgr, pprm.root, pprm.support));

  const BitVec best = best_polarity(mgr, f);
  const Ofdd opt = build_ofdd(mgr, f, best);
  std::printf("Best-polarity cubes:    %.0f  (paper's FPRM: 16)\n",
              fprm_cube_count(mgr, opt.root, opt.support));
  std::printf("polarity vector:        ");
  for (int v = 0; v < 16; ++v)
    std::printf("%c", best.get(static_cast<std::size_t>(v)) ? '1' : '0');
  std::printf("  (1 = positive literal)\n");
  std::printf("OFDD nodes:             %zu\n", mgr.size(opt.root));

  SynthReport rep;
  const Network result = synthesize(bench.spec, {}, &rep);
  std::printf("\nSynthesized: %zu two-input AND/OR gates, %zu lits "
              "(paper: 25 gates / 50 lits)\n",
              rep.stats.gates2, rep.stats.lits);
  const auto check = check_equivalence(bench.spec, result);
  std::printf("verification: %s\n", check.equivalent ? "ok" : "FAILED");
  return check.equivalent ? 0 : 1;
}
