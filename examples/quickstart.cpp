// Quickstart: synthesize a small arithmetic function with the FPRM flow.
//
//   1. describe the function as a Network (here: a 4-bit ripple adder);
//   2. call synthesize() — FPRM extraction, algebraic factorization, XOR
//      redundancy removal, with built-in verification;
//   3. inspect the result: cost metrics, FPRM forms, BLIF export.
//
// Build & run:  cmake --build build && ./build/examples/example_quickstart
#include <cstdio>

#include "benchgen/spec.hpp"
#include "core/synth.hpp"
#include "network/io.hpp"
#include "network/stats.hpp"

int main() {
  using namespace rmsyn;

  // A 4-bit adder spec; any combinational Network works — the flow
  // re-derives the function through BDDs, so the input form is irrelevant.
  const Network spec = ripple_adder(/*nbits=*/4, /*with_cin=*/true,
                                    /*with_cout=*/true);

  SynthOptions opt;          // defaults: best-of-both factorization methods,
  SynthReport report;        // polarity search, redundancy removal, verify
  const Network result = synthesize(spec, opt, &report);

  std::printf("Synthesized a 4-bit adder (%zu PIs, %zu POs)\n",
              result.pi_count(), result.po_count());
  std::printf("  cost: %s\n", to_string(report.stats).c_str());
  std::printf("  time: %.3fs (includes internal equivalence check)\n",
              report.seconds);

  std::printf("  FPRM cube count per output:");
  for (const auto c : report.fprm_cube_counts) std::printf(" %zu", c);
  std::printf("\n");
  std::printf("  redundancy removal: %zu XOR gates reduced to OR, %zu to "
              "AND forms, %zu fanins removed\n",
              report.redundancy.reduced_to_or,
              report.redundancy.reduced_to_andnot,
              report.redundancy.fanins_removed);

  std::printf("\nBLIF of the result:\n%s",
              write_blif_string(result, "adder4").c_str());
  return 0;
}
