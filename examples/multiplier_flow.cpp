// Multipliers and squarers — the second arithmetic family of the paper
// (mlp4, sqr6, squar5 in Table 2). Demonstrates per-output FPRM statistics
// (cube counts, prime cubes) and the effect of the redundancy-removal pass.
#include <cstdio>

#include "benchgen/spec.hpp"
#include "core/synth.hpp"
#include "fdd/fprm.hpp"

int main() {
  using namespace rmsyn;

  for (const auto& [label, spec] :
       {std::pair<const char*, Network>{"4x4 multiplier",
                                        array_multiplier(4, 4, 8)},
        {"6-bit squarer", squarer(6, 12)}}) {
    std::printf("== %s ==\n", label);

    SynthOptions with, without;
    without.run_redundancy_removal = false;
    SynthReport r_with, r_without;
    (void)synthesize(spec, with, &r_with);
    (void)synthesize(spec, without, &r_without);

    std::printf("outputs: %zu\n", spec.po_count());
    std::printf("FPRM cubes per output:");
    for (const auto c : r_with.fprm_cube_counts) std::printf(" %zu", c);
    std::printf("\n");

    std::size_t primes = 0, cubes = 0;
    for (const auto& form : r_with.forms) {
      for (const bool p : prime_flags(form)) {
        ++cubes;
        if (p) ++primes;
      }
    }
    std::printf("prime cubes: %zu / %zu (the paper: arithmetic functions "
                "have largely prime FPRM cubes)\n",
                primes, cubes);
    std::printf("cost without redundancy removal: %zu lits\n",
                r_without.stats.lits);
    std::printf("cost with    redundancy removal: %zu lits "
                "(%zu XOR->OR, %zu XOR->AND reductions)\n\n",
                r_with.stats.lits, r_with.redundancy.reduced_to_or,
                r_with.redundancy.reduced_to_andnot);
  }
  return 0;
}
