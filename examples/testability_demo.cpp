// Testability demo (Sections 1/6): derive a complete single-stuck-at test
// set for a synthesized adder directly from its FPRM cubes — no ATPG — and
// fault-simulate it.
#include <cstdio>

#include "benchgen/spec.hpp"
#include "core/redundancy.hpp"
#include "core/synth.hpp"
#include "testability/faults.hpp"

int main() {
  using namespace rmsyn;
  const Benchmark bench = make_benchmark("z4ml");

  SynthReport rep;
  const Network ours = synthesize(bench.spec, {}, &rep);

  // Pattern set straight from the FPRM forms: AZ, AO, one-cube (OC) and
  // single-literal-dropped (SA1) patterns.
  const PatternSet tests = fprm_pattern_set(
      ours.pi_count(), rep.forms, /*include_sa1=*/true, std::size_t{1} << 16);
  std::printf("derived %zu test patterns from %zu FPRM forms\n",
              tests.num_patterns, rep.forms.size());

  const auto sim = fault_simulate(ours, tests);
  std::printf("stuck-at faults: %zu, detected: %zu (%.1f%% coverage)\n",
              sim.total, sim.detected, 100.0 * sim.coverage());
  for (const auto& f : sim.undetected)
    std::printf("  undetected: %s\n", to_string(f, ours).c_str());

  std::printf("network irredundant: %s\n",
              is_irredundant(ours) ? "yes" : "no");
  return sim.undetected.empty() ? 0 : 1;
}
