// Table 2, columns 1-4: pre-mapping literal counts (2-input AND/OR gates,
// XOR = 3) and synthesis run time, conventional baseline vs the FPRM flow.
//
// Paper reference points (Sun Sparc 5, SIS 1.2): arithmetic subset
// 4804 -> 3243 lits (ours), total 7484 -> 5630; run-time reduced by >= 50%
// overall, with the extreme cases t481 (1372s -> 0.7s), xor10 (1692s ->
// 0.6s) and sym10 (711s -> 4.5s).
//
// Usage: bench_table2_premap [--timeout SEC] [--node-limit N] [circuit ...]
//        (default: all 41 circuits, no resource budget)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "flow/flow.hpp"

int main(int argc, char** argv) {
  using namespace rmsyn;
  std::vector<std::string> names;
  ResourceLimits limits;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--timeout" && i + 1 < argc)
      limits.deadline_seconds = std::atof(argv[++i]);
    else if (arg == "--node-limit" && i + 1 < argc)
      limits.node_limit = static_cast<std::size_t>(std::atoll(argv[++i]));
    else
      names.emplace_back(arg);
  }
  if (names.empty()) names = benchmark_names();

  std::printf("== Table 2 (pre-mapping): literals in 2-input AND/OR gates + "
              "run time ==\n");
  std::printf("%-10s %-8s | %9s %9s | %9s %9s | %8s %8s\n", "circuit", "i/o",
              "SIS'lits", "SIS't(s)", "our lits", "our t(s)", "lit.ratio",
              "t.ratio");

  double sum_base_l = 0, sum_ours_l = 0, sum_base_t = 0, sum_ours_t = 0;
  double arith_base_l = 0, arith_ours_l = 0;
  std::vector<FlowRow> rows;
  FlowOptions opt;
  opt.run_mapping = false;
  opt.run_power = false;
  opt.limits = limits;
  for (const auto& name : names) {
    const FlowRow r = run_flow(name, opt);
    rows.push_back(r);
    char io[32];
    std::snprintf(io, sizeof io, "%d/%d", r.num_inputs, r.num_outputs);
    std::string tag = r.arithmetic ? "[arith]" : "";
    if (!r.worst_status().is_ok())
      tag += " [" + r.worst_status().to_string() + "]";
    std::printf("%-10s %-8s | %9zu %9.2f | %9zu %9.2f | %8.2f %8.2f %s\n",
                r.circuit.c_str(), io, r.base_lits, r.base_seconds,
                r.ours_lits, r.ours_seconds,
                r.base_lits ? static_cast<double>(r.ours_lits) /
                                  static_cast<double>(r.base_lits)
                            : 1.0,
                r.base_seconds > 0 ? r.ours_seconds / r.base_seconds : 1.0,
                tag.c_str());
    sum_base_l += static_cast<double>(r.base_lits);
    sum_ours_l += static_cast<double>(r.ours_lits);
    sum_base_t += r.base_seconds;
    sum_ours_t += r.ours_seconds;
    if (r.arithmetic) {
      arith_base_l += static_cast<double>(r.base_lits);
      arith_ours_l += static_cast<double>(r.ours_lits);
    }
  }
  std::printf("\nTotals: baseline %.0f lits in %.2fs; ours %.0f lits in %.2fs\n",
              sum_base_l, sum_base_t, sum_ours_l, sum_ours_t);
  if (arith_base_l > 0)
    std::printf("Arithmetic subset literal ratio ours/baseline: %.3f "
                "(paper: 3243/4804 = 0.675)\n",
                arith_ours_l / arith_base_l);
  std::printf("All-circuit literal ratio ours/baseline: %.3f "
              "(paper: 5630/7484 = 0.752)\n",
              sum_ours_l / sum_base_l);
  std::printf("Run-time ratio ours/baseline: %.3f (paper: 307/4514 = 0.068; "
              "their baseline was dominated by t481/xor10/sym10 blowups)\n",
              sum_base_t > 0 ? sum_ours_t / sum_base_t : 1.0);
  std::printf("%s", format_dd_kernel_summary(rows).c_str());
  return 0;
}
