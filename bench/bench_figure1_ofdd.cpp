// Figure 1 and the Section-2/4 didactic artifacts:
//  * the OFDD of f = x̄1 ⊕ x̄1x3 ⊕ x̄1x2 ⊕ x̄1x2x3 ⊕ x3 ⊕ x2 under the
//    polarity vector V = (0 1 1) — three nonterminal nodes, six cubes;
//  * Table 1 (the truth table of XOR against its implied reductions);
//  * the Figure-2 XOR-chain view of a factored network.
#include <cstdio>

#include "bdd/bdd.hpp"
#include "fdd/fprm.hpp"
#include "network/io.hpp"
#include "tt/truth_table.hpp"

int main() {
  using namespace rmsyn;

  std::printf("== Figure 1: OFDD of f with V = (0 1 1) ==\n\n");
  const int n = 3;
  const auto x = [&](int i) { return TruthTable::variable(n, i); };
  const auto nx1 = ~x(0);
  const TruthTable f = nx1 ^ (nx1 & x(2)) ^ (nx1 & x(1)) ^
                       (nx1 & x(1) & x(2)) ^ x(2) ^ x(1);

  BddManager mgr(n);
  const BddRef fb = mgr.from_cover(Cover::from_truth_table(f));
  BitVec pol(3);
  pol.set(1);
  pol.set(2); // V = (0 1 1)
  const Ofdd ofdd = build_ofdd(mgr, fb, pol);
  const FprmForm form = extract_fprm(mgr, ofdd, n);

  std::printf("Nonterminal OFDD nodes: %zu (Figure 1 draws 3 — one per\n"
              "  variable; complement edges let the x2⊕x3 substructure share\n"
              "  one x3 node between both phases, matching the figure)\n",
              mgr.size(ofdd.root));
  std::printf("FPRM cubes: %zu (paper lists 6 cubes)\n", form.cube_count());
  for (const auto& cube : form.cubes) {
    std::printf("  cube:");
    if (cube.none()) std::printf(" 1");
    for (std::size_t i = cube.first_set(); i != BitVec::npos;
         i = cube.next_set(i + 1)) {
      const int v = form.support[i];
      std::printf(" %sx%d",
                  form.polarity.get(static_cast<std::size_t>(v)) ? "" : "~",
                  v + 1);
    }
    std::printf("\n");
  }
  std::printf("\nGraphviz of the OFDD (spectrum BDD):\n%s\n",
              mgr.to_dot(ofdd.root, "ofdd_fig1").c_str());

  std::printf("== Table 1: XOR vs its implied reductions ==\n\n");
  std::printf("g h | g^h g+h g~h ~gh\n");
  for (int g = 0; g <= 1; ++g)
    for (int h = 0; h <= 1; ++h)
      std::printf("%d %d |  %d   %d   %d   %d\n", g, h, g ^ h, g | h,
                  g & (1 - h), (1 - g) & h);
  std::printf("\n(missing (1,1) -> column g+h; missing (0,1) -> g~h; "
              "missing (1,0) -> ~gh — Properties 3 and 4)\n");
  return 0;
}
