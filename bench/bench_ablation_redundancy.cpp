// Ablation (Section 4): what the XOR redundancy-removal pass contributes,
// and how the result depends on the XOR cost assumption. The paper's core
// argument is that a direct AND/XOR translation "often results in excessive
// area, mainly due to the large area cost of XOR gates" — redundancy
// removal converts many XORs to single AND/OR gates.
//
// Usage: bench_ablation_redundancy [circuit ...]
#include <cstdio>
#include <string>
#include <vector>

#include "benchgen/spec.hpp"
#include "core/synth.hpp"
#include "network/stats.hpp"

int main(int argc, char** argv) {
  using namespace rmsyn;
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty())
    names = {"z4ml", "adr4", "add6", "rd53",   "rd84",     "9sym", "t481",
             "mlp4", "cmb",  "co14", "squar5", "majority", "cm85a"};

  std::printf("== Ablation: redundancy removal on/off + XOR-cost "
              "sensitivity ==\n");
  std::printf("%-10s | %8s %8s %7s | %6s %6s | %s\n", "circuit", "off lits",
              "on lits", "saved%", "xor2-", "xor2+",
              "lits at xor cost c=1..4 (on)");

  for (const auto& name : names) {
    const Benchmark bench = make_benchmark(name);
    SynthOptions on, off;
    off.run_redundancy_removal = false;
    SynthReport ron, roff;
    const Network net_on = synthesize(bench.spec, on, &ron);
    (void)synthesize(bench.spec, off, &roff);
    const double saved =
        roff.stats.lits == 0
            ? 0.0
            : 100.0 * (1.0 - static_cast<double>(ron.stats.lits) /
                                 static_cast<double>(roff.stats.lits));
    // XOR-cost sensitivity: the paper's metric charges 3 AND/OR gates per
    // XOR2; recompute the gate count under c = 1..4.
    const auto s = network_stats(net_on);
    const std::size_t andor = s.gates2 - 3 * s.num_xor2;
    std::printf("%-10s | %8zu %8zu %6.1f%% | %6zu %6zu |", name.c_str(),
                roff.stats.lits, ron.stats.lits, saved, roff.stats.num_xor2,
                ron.stats.num_xor2);
    for (std::size_t c = 1; c <= 4; ++c)
      std::printf(" %zu", 2 * (andor + c * s.num_xor2));
    std::printf("\n");
  }
  std::printf("\n(xor2-/xor2+ = XOR2 count without/with the Section-4 pass; "
              "the pass may only remove XORs, never add them)\n");
  return 0;
}
