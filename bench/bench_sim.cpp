// Fault-simulation engine bench: times the reference full-resim fault
// simulator against the incremental event-driven engine (cone-limited
// probes + fault dropping, sim/sim.hpp) on the largest benchgen circuits
// and gates a minimum speedup on the largest one. Detection results are
// verified bit-identical before anything is timed — a fast wrong answer
// fails the run outright.
//
// Emits a machine-readable BENCH_sim.json for CI tracking.
//
// Usage: bench_sim [--out file.json] [--min-speedup X] [--patterns N]
//        (default: BENCH_sim.json, 5.0, 16384)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "benchgen/spec.hpp"
#include "network/transform.hpp"
#include "sim/sim.hpp"
#include "testability/faults.hpp"

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Min-of-3 wall-clock of `fn` — the usual defense against a cold first
/// iteration and scheduler noise.
template <typename Fn>
double time_min3(Fn&& fn) {
  double best = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    const double t0 = now_seconds();
    fn();
    best = std::min(best, now_seconds() - t0);
  }
  return best;
}

struct Row {
  std::string circuit;
  std::size_t nodes = 0;
  std::size_t faults = 0;
  std::size_t detected = 0;
  double full_seconds = 0.0;
  double incr_seconds = 0.0;
  double speedup = 0.0;
  rmsyn::SimStats stats;
};

bool same_result(const rmsyn::FaultSimResult& a,
                 const rmsyn::FaultSimResult& b) {
  if (a.total != b.total || a.detected != b.detected ||
      a.undetected.size() != b.undetected.size())
    return false;
  for (std::size_t i = 0; i < a.undetected.size(); ++i) {
    if (a.undetected[i].node != b.undetected[i].node ||
        a.undetected[i].fanin_index != b.undetected[i].fanin_index ||
        a.undetected[i].stuck_value != b.undetected[i].stuck_value)
      return false;
  }
  return true;
}

} // namespace

int main(int argc, char** argv) {
  using namespace rmsyn;
  std::string path = "BENCH_sim.json";
  double min_speedup = 5.0;
  std::size_t num_patterns = 1 << 14;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) path = argv[++i];
    else if (arg == "--min-speedup" && i + 1 < argc)
      min_speedup = std::stod(argv[++i]);
    else if (arg == "--patterns" && i + 1 < argc)
      num_patterns = static_cast<std::size_t>(std::stoul(argv[++i]));
  }

  // Largest benchgen arithmetic circuits; my_adder (16-bit ripple adder,
  // 33 PIs) is the largest and carries the gate.
  const std::vector<std::string> names = {"mlp4", "addm4", "my_adder"};
  const std::string gated = "my_adder";

  std::vector<Row> rows;
  bool identical = true;
  for (const auto& name : names) {
    const Network net = decompose2(strash(make_benchmark(name).spec));
    const PatternSet patterns =
        random_patterns(net.pi_count(), num_patterns, 0xB7A5 + net.pi_count());

    // Correctness first: both engines must agree fault-for-fault.
    const FaultSimResult ref = fault_simulate_full(net, patterns);
    FaultSimOptions opt;
    SimStats stats;
    opt.stats = &stats;
    const FaultSimResult incr = fault_simulate(net, patterns, opt);
    if (!same_result(ref, incr)) {
      identical = false;
      std::printf("MISMATCH on %s: full %zu/%zu vs incremental %zu/%zu\n",
                  name.c_str(), ref.detected, ref.total, incr.detected,
                  incr.total);
      continue;
    }

    Row row;
    row.circuit = name;
    row.nodes = net.node_count();
    row.faults = ref.total;
    row.detected = ref.detected;
    row.stats = stats;
    row.full_seconds =
        time_min3([&] { (void)fault_simulate_full(net, patterns); });
    row.incr_seconds = time_min3([&] { (void)fault_simulate(net, patterns); });
    row.speedup =
        row.incr_seconds > 0 ? row.full_seconds / row.incr_seconds : 0.0;
    std::printf("%-10s %5zu faults (%zu detected)  full %8.4fs  "
                "incremental %8.4fs  speedup %6.2fx\n",
                name.c_str(), row.faults, row.detected, row.full_seconds,
                row.incr_seconds, row.speedup);
    rows.push_back(row);
  }

  bool gate_ok = identical;
  for (const Row& r : rows) {
    if (r.circuit != gated) continue;
    if (r.speedup < min_speedup) {
      std::printf("GATE FAILED: %s speedup %.2fx < required %.2fx\n",
                  gated.c_str(), r.speedup, min_speedup);
      gate_ok = false;
    } else {
      std::printf("gate ok: %s speedup %.2fx >= %.2fx\n", gated.c_str(),
                  r.speedup, min_speedup);
    }
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"sim\",\n"
               "  \"patterns\": %zu,\n"
               "  \"min_speedup\": %.2f,\n"
               "  \"gated_circuit\": \"%s\",\n"
               "  \"results_identical\": %s,\n  \"rows\": [\n",
               num_patterns, min_speedup, gated.c_str(),
               identical ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"circuit\": \"%s\", \"nodes\": %zu, \"faults\": %zu, "
        "\"detected\": %zu, \"full_seconds\": %.6f, "
        "\"incremental_seconds\": %.6f, \"speedup\": %.4f, "
        "\"fault_probes\": %llu, \"cone_nodes\": %llu, "
        "\"faults_dropped\": %llu, \"blocks_skipped\": %llu}%s\n",
        r.circuit.c_str(), r.nodes, r.faults, r.detected, r.full_seconds,
        r.incr_seconds, r.speedup,
        static_cast<unsigned long long>(r.stats.fault_probes),
        static_cast<unsigned long long>(r.stats.cone_nodes),
        static_cast<unsigned long long>(r.stats.faults_dropped),
        static_cast<unsigned long long>(r.stats.blocks_skipped),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());

  return gate_ok ? 0 : 1;
}
