// Fault-simulation engine bench: times the reference full-resim fault
// simulator against the incremental event-driven engine (cone-limited
// probes + fault dropping, sim/sim.hpp) on the largest benchgen circuits
// and gates a minimum speedup on the largest one. Detection results are
// verified bit-identical before anything is timed — a fast wrong answer
// fails the run outright.
//
// Two SIMD gates ride along (DESIGN.md §15):
//  * dispatch bit-identity — every kernel target reachable on the host
//    (scalar always; avx2/neon when present) must produce identical
//    simulation values, fault-detection sets and cut truth tables;
//  * throughput — full-pass patterns-per-second is measured per dispatch
//    target on a cache-resident large circuit, and the best vectorized
//    target must beat forced-scalar by --min-throughput-ratio (skipped
//    when only scalar is reachable). The forced-scalar kernels are built
//    with auto-vectorization off, so the ratio is honest.
//
// Every timed section warms up once untimed, then reports the median of
// three runs — median (not min) so one lucky run cannot mask CI jitter,
// and the warmup keeps cold caches out of the gates.
//
// Emits a machine-readable BENCH_sim.json for CI tracking; throughput
// rows are labeled "<circuit>/<dispatch>" so report-diff pairs the same
// dispatch across runs.
//
// Usage: bench_sim [--out file.json] [--min-speedup X] [--patterns N]
//                  [--min-throughput-ratio X] [--tp-patterns N]
//        (default: BENCH_sim.json, 5.0, 16384, 1.5, 2048)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "benchgen/spec.hpp"
#include "network/transform.hpp"
#include "rewrite/cuts.hpp"
#include "sim/sim.hpp"
#include "testability/faults.hpp"
#include "util/simd.hpp"

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One untimed warmup run, then the median of three timed runs. The
/// warmup takes the cold-cache/first-touch iteration out of the sample;
/// the median keeps a single noisy CI run from deciding a gate either
/// way (min-of-3 lets one lucky run mask a real regression).
template <typename Fn>
double time_med3(Fn&& fn) {
  fn(); // warmup, untimed
  double t[3];
  for (int rep = 0; rep < 3; ++rep) {
    const double t0 = now_seconds();
    fn();
    t[rep] = now_seconds() - t0;
  }
  std::sort(t, t + 3);
  return t[1];
}

struct Row {
  std::string circuit;
  std::size_t nodes = 0;
  std::size_t faults = 0;
  std::size_t detected = 0;
  double full_seconds = 0.0;
  double incr_seconds = 0.0;
  double speedup = 0.0;
  rmsyn::SimStats stats;
};

struct ThroughputRow {
  std::string name; ///< "<circuit>/<dispatch>" — report-diff pairing label
  double patterns_per_second = 0.0;
};

bool same_result(const rmsyn::FaultSimResult& a,
                 const rmsyn::FaultSimResult& b) {
  if (a.total != b.total || a.detected != b.detected ||
      a.undetected.size() != b.undetected.size())
    return false;
  for (std::size_t i = 0; i < a.undetected.size(); ++i) {
    if (a.undetected[i].node != b.undetected[i].node ||
        a.undetected[i].fanin_index != b.undetected[i].fanin_index ||
        a.undetected[i].stuck_value != b.undetected[i].stuck_value)
      return false;
  }
  return true;
}

/// Everything one dispatch target computes for the identity gate.
struct DispatchFingerprint {
  std::vector<std::vector<rmsyn::BitVec>> sim_values; // per circuit
  std::vector<rmsyn::FaultSimResult> fault_results;   // per circuit
  std::vector<std::vector<std::vector<rmsyn::rw::Cut>>> cutsets; // per circuit
};

bool same_cuts(const std::vector<std::vector<rmsyn::rw::Cut>>& a,
               const std::vector<std::vector<rmsyn::rw::Cut>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t n = 0; n < a.size(); ++n) {
    if (a[n].size() != b[n].size()) return false;
    for (std::size_t c = 0; c < a[n].size(); ++c) {
      if (!a[n][c].same_leaves(b[n][c]) || a[n][c].tt != b[n][c].tt)
        return false;
    }
  }
  return true;
}

} // namespace

int main(int argc, char** argv) {
  using namespace rmsyn;
  std::string path = "BENCH_sim.json";
  double min_speedup = 5.0;
  double min_tp_ratio = 1.5;
  std::size_t num_patterns = 1 << 14;
  std::size_t tp_patterns = 1 << 11;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) path = argv[++i];
    else if (arg == "--min-speedup" && i + 1 < argc)
      min_speedup = std::stod(argv[++i]);
    else if (arg == "--patterns" && i + 1 < argc)
      num_patterns = static_cast<std::size_t>(std::stoul(argv[++i]));
    else if (arg == "--min-throughput-ratio" && i + 1 < argc)
      min_tp_ratio = std::stod(argv[++i]);
    else if (arg == "--tp-patterns" && i + 1 < argc)
      tp_patterns = static_cast<std::size_t>(std::stoul(argv[++i]));
  }

  const std::string default_dispatch = simd::dispatch_name();
  const std::vector<std::string> dispatches = simd::available_dispatches();

  // --- SIMD dispatch bit-identity gate ---------------------------------------
  // Scalar is the reference; every other reachable target must reproduce
  // its simulation values, fault-detection sets and cut truth tables
  // exactly.
  const std::vector<std::string> id_names = {"mlp4", "my_adder", "mult16"};
  std::vector<Network> id_nets;
  std::vector<PatternSet> id_patterns;
  for (const auto& name : id_names) {
    id_nets.push_back(decompose2(strash(make_benchmark(name).spec)));
    id_patterns.push_back(random_patterns(id_nets.back().pi_count(), 1024,
                                          0x51D0 + id_nets.back().pi_count()));
  }
  const auto fingerprint = [&] {
    DispatchFingerprint fp;
    for (std::size_t i = 0; i < id_nets.size(); ++i) {
      const Network& net = id_nets[i];
      fp.sim_values.push_back(simulate(net, id_patterns[i]));
      fp.fault_results.push_back(fault_simulate(net, id_patterns[i]));
      rw::CutOptions copt;
      fp.cutsets.push_back(rw::enumerate_cuts(net, net.topo_order(), copt));
    }
    return fp;
  };
  bool dispatch_identity = true;
  simd::force_dispatch("scalar");
  const DispatchFingerprint ref_fp = fingerprint();
  for (const auto& target : dispatches) {
    if (target == "scalar") continue;
    simd::force_dispatch(target);
    const DispatchFingerprint fp = fingerprint();
    for (std::size_t i = 0; i < id_nets.size(); ++i) {
      if (fp.sim_values[i] != ref_fp.sim_values[i] ||
          !same_result(fp.fault_results[i], ref_fp.fault_results[i]) ||
          !same_cuts(fp.cutsets[i], ref_fp.cutsets[i])) {
        dispatch_identity = false;
        std::printf("DISPATCH MISMATCH: %s differs from scalar on %s\n",
                    target.c_str(), id_names[i].c_str());
      }
    }
  }
  std::printf("dispatch identity (%zu targets): %s\n", dispatches.size(),
              dispatch_identity ? "ok" : "FAILED");

  // --- patterns-per-second per dispatch target -------------------------------
  // Full-pass throughput on a cache-resident large circuit: mult16 at
  // tp_patterns keeps the value rows around a megabyte, so the gate
  // measures kernel speed, not DRAM bandwidth. The timed quantity is the
  // eval pass itself (SimStats::full_pass_seconds, the denominator of
  // patterns_per_second) — construction-time allocation is
  // dispatch-independent and would only dilute the ratio.
  const std::string tp_name = "mult16";
  const Network tp_net = decompose2(strash(make_benchmark(tp_name).spec));
  const PatternSet tp_ps =
      random_patterns(tp_net.pi_count(), tp_patterns, 0xC0DE);
  std::vector<ThroughputRow> tp_rows;
  double scalar_pps = 0.0, best_vector_pps = 0.0;
  for (const auto& target : dispatches) {
    simd::force_dispatch(target);
    // Enough constructions per timed run to be well above timer noise.
    const double once = [&] {
      SimState s(tp_net, tp_ps);
      return s.stats().full_pass_seconds;
    }();
    const int reps = std::max(1, static_cast<int>(0.02 / std::max(once, 1e-6)));
    double med_pps = 0.0;
    {
      double samples[3];
      const auto run = [&] {
        double sec = 0.0;
        for (int r = 0; r < reps; ++r) {
          SimState s(tp_net, tp_ps);
          sec += s.stats().full_pass_seconds;
        }
        return sec > 0 ? static_cast<double>(tp_patterns) * reps / sec : 0.0;
      };
      run(); // warmup, untimed
      for (int rep = 0; rep < 3; ++rep) samples[rep] = run();
      std::sort(samples, samples + 3);
      med_pps = samples[1];
    }
    ThroughputRow row;
    row.name = tp_name + "/" + target;
    row.patterns_per_second = med_pps;
    std::printf("throughput %-14s %10.3g patterns/s\n", row.name.c_str(),
                row.patterns_per_second);
    if (target == "scalar") scalar_pps = row.patterns_per_second;
    else best_vector_pps = std::max(best_vector_pps, row.patterns_per_second);
    tp_rows.push_back(row);
  }
  bool tp_gate_ok = true;
  double tp_ratio = 0.0;
  if (best_vector_pps > 0.0 && scalar_pps > 0.0) {
    tp_ratio = best_vector_pps / scalar_pps;
    tp_gate_ok = tp_ratio >= min_tp_ratio;
    std::printf("%s: vectorized/scalar throughput %.2fx (required %.2fx)\n",
                tp_gate_ok ? "gate ok" : "GATE FAILED", tp_ratio, min_tp_ratio);
  } else {
    std::printf("throughput gate skipped: only scalar dispatch reachable\n");
  }
  simd::force_dispatch(default_dispatch);

  // --- incremental-vs-full fault simulation ----------------------------------
  // Largest benchgen arithmetic circuits; my_adder (16-bit ripple adder,
  // 33 PIs) is the largest and carries the gate.
  const std::vector<std::string> names = {"mlp4", "addm4", "my_adder"};
  const std::string gated = "my_adder";

  std::vector<Row> rows;
  bool identical = true;
  for (const auto& name : names) {
    const Network net = decompose2(strash(make_benchmark(name).spec));
    const PatternSet patterns =
        random_patterns(net.pi_count(), num_patterns, 0xB7A5 + net.pi_count());

    // Correctness first: both engines must agree fault-for-fault.
    const FaultSimResult ref = fault_simulate_full(net, patterns);
    FaultSimOptions opt;
    SimStats stats;
    opt.stats = &stats;
    const FaultSimResult incr = fault_simulate(net, patterns, opt);
    if (!same_result(ref, incr)) {
      identical = false;
      std::printf("MISMATCH on %s: full %zu/%zu vs incremental %zu/%zu\n",
                  name.c_str(), ref.detected, ref.total, incr.detected,
                  incr.total);
      continue;
    }

    Row row;
    row.circuit = name;
    row.nodes = net.node_count();
    row.faults = ref.total;
    row.detected = ref.detected;
    row.stats = stats;
    row.full_seconds =
        time_med3([&] { (void)fault_simulate_full(net, patterns); });
    row.incr_seconds = time_med3([&] { (void)fault_simulate(net, patterns); });
    row.speedup =
        row.incr_seconds > 0 ? row.full_seconds / row.incr_seconds : 0.0;
    std::printf("%-10s %5zu faults (%zu detected)  full %8.4fs  "
                "incremental %8.4fs  speedup %6.2fx\n",
                name.c_str(), row.faults, row.detected, row.full_seconds,
                row.incr_seconds, row.speedup);
    rows.push_back(row);
  }

  bool gate_ok = identical && dispatch_identity && tp_gate_ok;
  for (const Row& r : rows) {
    if (r.circuit != gated) continue;
    if (r.speedup < min_speedup) {
      std::printf("GATE FAILED: %s speedup %.2fx < required %.2fx\n",
                  gated.c_str(), r.speedup, min_speedup);
      gate_ok = false;
    } else {
      std::printf("gate ok: %s speedup %.2fx >= %.2fx\n", gated.c_str(),
                  r.speedup, min_speedup);
    }
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"sim\",\n"
               "  \"patterns\": %zu,\n"
               "  \"min_speedup\": %.2f,\n"
               "  \"gated_circuit\": \"%s\",\n"
               "  \"results_identical\": %s,\n"
               "  \"simd_dispatch_default\": \"%s\",\n"
               "  \"dispatch_identity\": %s,\n"
               "  \"min_throughput_ratio\": %.2f,\n"
               "  \"throughput_patterns\": %zu,\n"
               "  \"throughput_ratio\": %.4f,\n"
               "  \"throughput\": [\n",
               num_patterns, min_speedup, gated.c_str(),
               identical ? "true" : "false", default_dispatch.c_str(),
               dispatch_identity ? "true" : "false", min_tp_ratio, tp_patterns,
               tp_ratio);
  for (std::size_t i = 0; i < tp_rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"patterns_per_second\": %.1f}%s\n",
                 tp_rows[i].name.c_str(), tp_rows[i].patterns_per_second,
                 i + 1 < tp_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"circuit\": \"%s\", \"nodes\": %zu, \"faults\": %zu, "
        "\"detected\": %zu, \"full_seconds\": %.6f, "
        "\"incremental_seconds\": %.6f, \"speedup\": %.4f, "
        "\"fault_probes\": %llu, \"cone_nodes\": %llu, "
        "\"faults_dropped\": %llu, \"blocks_skipped\": %llu}%s\n",
        r.circuit.c_str(), r.nodes, r.faults, r.detected, r.full_seconds,
        r.incr_seconds, r.speedup,
        static_cast<unsigned long long>(r.stats.fault_probes),
        static_cast<unsigned long long>(r.stats.cone_nodes),
        static_cast<unsigned long long>(r.stats.faults_dropped),
        static_cast<unsigned long long>(r.stats.blocks_skipped),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());

  return gate_ok ? 0 : 1;
}
