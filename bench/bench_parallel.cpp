// Parallel scheduler bench: runs the Table-2 sweep through the batch
// runner at --jobs 1/2/4/8, verifies that every result column is
// bit-identical across parallelism levels (the determinism contract of
// DESIGN.md §8), and reports the speedup curve. Emits a machine-readable
// BENCH_parallel.json for CI tracking.
//
// The speedup achievable obviously depends on the host: on a single
// hardware thread the curve is flat (the scheduler adds only its own small
// overhead); the JSON records hardware_threads so CI can judge the numbers
// in context.
//
// Usage: bench_parallel [--out file.json] [circuit ...]
//        (default: BENCH_parallel.json, all Table-2 circuits)
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "flow/flow.hpp"
#include "sched/batch.hpp"

namespace {

struct Run {
  int jobs = 1;
  double seconds = 0.0;
  rmsyn::SchedStats sched;
};

} // namespace

int main(int argc, char** argv) {
  using namespace rmsyn;
  std::string path = "BENCH_parallel.json";
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) path = argv[++i];
    else names.emplace_back(arg);
  }
  if (names.empty()) names = benchmark_names();

  const FlowOptions fopt; // full flow: synthesis, mapping, power
  const std::vector<int> jobs_axis = {1, 2, 4, 8};

  std::vector<Run> runs;
  std::vector<FlowRow> reference;
  bool identical = true;
  for (const int jobs : jobs_axis) {
    const BatchResult r = run_flows(names, fopt, jobs);
    Run run;
    run.jobs = jobs;
    run.seconds = r.seconds;
    run.sched = r.sched;
    runs.push_back(run);
    if (jobs == 1) {
      reference = r.rows;
    } else {
      for (std::size_t i = 0; i < r.rows.size(); ++i) {
        const FlowRow& a = reference[i];
        const FlowRow& b = r.rows[i];
        const bool same = a.ours_lits == b.ours_lits &&
                          a.base_lits == b.base_lits &&
                          a.ours_map_lits == b.ours_map_lits &&
                          a.base_map_lits == b.base_map_lits &&
                          a.ours_power == b.ours_power &&
                          a.base_power == b.base_power &&
                          a.ours_status.to_string() ==
                              b.ours_status.to_string();
        if (!same) {
          identical = false;
          std::printf("MISMATCH at jobs=%d: %s\n", jobs, b.circuit.c_str());
        }
      }
    }
    std::printf("jobs=%d: %zu circuits in %.3fs (speedup %.2fx)\n", jobs,
                r.rows.size(), r.seconds,
                runs.front().seconds > 0 ? runs.front().seconds / r.seconds
                                         : 0.0);
    if (jobs > 1) std::printf("%s", format_sched_summary(r.sched).c_str());
  }
  std::printf("%s", format_dd_kernel_summary(reference).c_str());
  std::printf("results identical across jobs levels: %s\n",
              identical ? "yes" : "NO");

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"parallel\",\n"
               "  \"hardware_threads\": %u,\n"
               "  \"circuits\": %zu,\n"
               "  \"results_identical\": %s,\n  \"runs\": [\n",
               std::thread::hardware_concurrency(), names.size(),
               identical ? "true" : "false");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    std::fprintf(f,
                 "    {\"jobs\": %d, \"seconds\": %.6f, \"speedup\": %.4f, "
                 "\"tasks\": %llu, \"steals\": %llu, "
                 "\"busy_seconds\": %.6f, \"idle_seconds\": %.6f}%s\n",
                 r.jobs, r.seconds,
                 r.seconds > 0 ? runs.front().seconds / r.seconds : 0.0,
                 static_cast<unsigned long long>(r.sched.total_tasks()),
                 static_cast<unsigned long long>(r.sched.total_steals()),
                 r.sched.total_busy_seconds(), r.sched.total_idle_seconds(),
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());

  // The gate is determinism, not speedup: wall clock depends on the host,
  // bit-identical rows must hold everywhere.
  return identical ? 0 : 1;
}
