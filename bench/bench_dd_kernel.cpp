// DD-kernel throughput and observability bench: builds the output BDDs of
// ripple adders and array multipliers (the paper's arithmetic workloads),
// exercises reordering on an adversarial variable order, and emits a
// machine-readable BENCH_dd_kernel.json with nodes/sec, computed-table hit
// rate and peak live node counts for CI tracking.
//
// Usage: bench_dd_kernel [output.json]   (default: BENCH_dd_kernel.json)
#include <cstdio>
#include <string>
#include <vector>

#include "benchgen/spec.hpp"
#include "equiv/equiv.hpp"
#include "network/transform.hpp"
#include "util/stopwatch.hpp"

namespace {

struct Result {
  std::string name;
  double seconds = 0.0;
  double nodes_per_sec = 0.0;
  rmsyn::BddStats stats;
  std::size_t final_nodes = 0;   // live after the workload
  std::size_t reorder_gain = 0;  // nodes freed by explicit reorder (if run)
};

Result run_network(const std::string& name, const rmsyn::Network& net,
                   bool auto_reorder) {
  using namespace rmsyn;
  Result r;
  r.name = name;
  Stopwatch sw;
  BddManager mgr(static_cast<int>(net.pi_count()));
  if (auto_reorder) mgr.set_auto_reorder(true);
  const auto outs = output_bdds(mgr, net);
  r.seconds = sw.seconds();
  r.stats = mgr.stats();
  r.final_nodes = mgr.node_count();
  // Throughput: unique-table probes are one per mk() call, i.e. one per
  // node the apply recursion touched (interned or found).
  r.nodes_per_sec =
      r.seconds > 0 ? static_cast<double>(r.stats.unique_lookups) / r.seconds
                    : 0.0;
  for (const BddRef f : outs) mgr.deref(f);
  return r;
}

/// Interleaved order stress: an n-bit adder whose PIs arrive a-half then
/// b-half is the classic sifting testcase (the separated order is
/// exponential in the interleaving distance, the paired order linear). The
/// generator emits the good order a0,b0,a1,b1,…, so permute the PIs into
/// the bad one and let sifting find its way back.
Result run_reorder_case(int nbits) {
  using namespace rmsyn;
  Result r;
  r.name = "adder" + std::to_string(nbits) + "_reorder";
  const std::size_t n = static_cast<std::size_t>(nbits);
  std::vector<std::size_t> separated(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    separated[i] = 2 * i;         // all a-bits first …
    separated[n + i] = 2 * i + 1; // … then all b-bits
  }
  const Network net = permute_pis(
      ripple_adder(nbits, /*with_cin=*/false, /*with_cout=*/true), separated);
  Stopwatch sw;
  BddManager mgr(static_cast<int>(net.pi_count()));
  const auto outs = output_bdds(mgr, net);
  const std::size_t before = mgr.node_count();
  mgr.reorder();
  r.reorder_gain = before - mgr.node_count();
  r.seconds = sw.seconds();
  r.stats = mgr.stats();
  r.final_nodes = mgr.node_count();
  r.nodes_per_sec =
      r.seconds > 0 ? static_cast<double>(r.stats.unique_lookups) / r.seconds
                    : 0.0;
  for (const BddRef f : outs) mgr.deref(f);
  return r;
}

void emit_json(std::FILE* out, const std::vector<Result>& results) {
  std::fprintf(out, "{\n  \"bench\": \"dd_kernel\",\n  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"seconds\": %.6f, \"nodes_per_sec\": %.0f, "
        "\"cache_hit_rate\": %.4f, \"cache_lookups\": %llu, "
        "\"peak_live_nodes\": %zu, \"final_nodes\": %zu, "
        "\"gc_runs\": %llu, \"reorder_runs\": %llu, \"reorder_gain\": %zu}%s\n",
        r.name.c_str(), r.seconds, r.nodes_per_sec,
        r.stats.cache_hit_rate(),
        static_cast<unsigned long long>(r.stats.cache_lookups),
        r.stats.peak_live_nodes, r.final_nodes,
        static_cast<unsigned long long>(r.stats.gc_runs),
        static_cast<unsigned long long>(r.stats.reorder_runs),
        r.reorder_gain, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

} // namespace

int main(int argc, char** argv) {
  using namespace rmsyn;
  const std::string path = argc > 1 ? argv[1] : "BENCH_dd_kernel.json";

  std::vector<Result> results;
  for (const int n : {8, 16, 24})
    results.push_back(run_network(
        "adder" + std::to_string(n),
        ripple_adder(n, /*with_cin=*/true, /*with_cout=*/true),
        /*auto_reorder=*/n > 16));
  for (const int n : {4, 6, 8})
    results.push_back(run_network("mult" + std::to_string(n) + "x" +
                                      std::to_string(n),
                                  array_multiplier(n, n, 2 * n),
                                  /*auto_reorder=*/false));
  results.push_back(run_reorder_case(12));

  std::printf("== DD kernel bench ==\n");
  std::printf("%-16s %9s %12s %8s %10s %10s\n", "workload", "sec",
              "nodes/sec", "hit%", "peak", "final");
  for (const auto& r : results)
    std::printf("%-16s %9.4f %12.0f %8.2f %10zu %10zu%s\n", r.name.c_str(),
                r.seconds, r.nodes_per_sec, 100.0 * r.stats.cache_hit_rate(),
                r.stats.peak_live_nodes, r.final_nodes,
                r.reorder_gain > 0
                    ? (" (reorder freed " + std::to_string(r.reorder_gain) +
                       ")").c_str()
                    : "");

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  emit_json(f, results);
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
