// Ablation (implementation choice): the spectrum-friendly PI order.
//
// The OFDD construction shares subnetworks across outputs only when carry-
// like variables sit below the per-output variables in the decision-diagram
// order. This harness runs the flow with the reach heuristic disabled on an
// adversarially permuted spec (reverse-reach order) against the default
// flow, quantifying what the ordering contributes — for ripple adders this
// is the difference between linear and quadratic cost.
//
// Usage: bench_ablation_order [circuit ...]
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "benchgen/spec.hpp"
#include "core/synth.hpp"
#include "network/transform.hpp"

int main(int argc, char** argv) {
  using namespace rmsyn;
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty())
    names = {"z4ml", "adr4", "add6", "my_adder", "mlp4", "sqr6",
             "rd53", "rd84", "9sym", "t481",     "cm85a"};

  std::printf("== Ablation: adversarial PI order (heuristic off) vs the "
              "default flow ==\n");
  std::printf("%-10s | %13s | %12s | %s\n", "circuit", "reversed lits",
              "default lits", "ordering gain");

  for (const auto& name : names) {
    const Benchmark bench = make_benchmark(name);

    SynthReport default_rep;
    (void)synthesize(bench.spec, {}, &default_rep);

    // Reverse-reach permuted spec, with the internal reordering disabled:
    // the worst realistic starting point.
    auto order = spectrum_friendly_pi_order(bench.spec);
    std::reverse(order.begin(), order.end());
    const Network worst = permute_pis(bench.spec, order);
    SynthOptions no_reorder;
    no_reorder.try_reach_order = false;
    SynthReport worst_rep;
    (void)synthesize(worst, no_reorder, &worst_rep);

    std::printf("%-10s | %13zu | %12zu | %+5.1f%%\n", name.c_str(),
                worst_rep.stats.lits, default_rep.stats.lits,
                worst_rep.stats.lits == 0
                    ? 0.0
                    : 100.0 * (1.0 -
                               static_cast<double>(default_rep.stats.lits) /
                                   static_cast<double>(worst_rep.stats.lits)));
  }
  return 0;
}
