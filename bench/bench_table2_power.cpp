// Table 2, improve%power column: zero-delay switching-activity power of the
// synthesized networks, ours vs baseline (the SIS `power_estimate` model).
//
// Paper reference points: arithmetic subset average 22.4% improvement, all
// circuits 18.0%.
//
// Usage: bench_table2_power [circuit ...]
#include <cstdio>
#include <string>
#include <vector>

#include "flow/flow.hpp"

int main(int argc, char** argv) {
  using namespace rmsyn;
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty()) names = benchmark_names();

  std::printf("== Table 2 (power): switching-activity estimate, baseline vs "
              "ours ==\n");
  std::printf("%-10s | %12s %12s | %12s\n", "circuit", "SIS'power",
              "our power", "improve%%pow");

  double arith_impr = 0, all_impr = 0;
  std::size_t n_arith = 0, n_all = 0;
  FlowOptions opt;
  opt.run_mapping = false;
  for (const auto& name : names) {
    const FlowRow r = run_flow(name, opt);
    std::printf("%-10s | %12.3f %12.3f | %12.1f %s\n", r.circuit.c_str(),
                r.base_power, r.ours_power, r.improve_power_pct(),
                r.arithmetic ? "[arith]" : "");
    all_impr += r.improve_power_pct();
    ++n_all;
    if (r.arithmetic) {
      arith_impr += r.improve_power_pct();
      ++n_arith;
    }
  }
  if (n_arith > 0)
    std::printf("\nArithmetic subset average power improvement: %.1f%% "
                "(paper: 22.4%%)\n",
                arith_impr / static_cast<double>(n_arith));
  std::printf("All-circuit average power improvement: %.1f%% (paper: 18.0%%)\n",
              all_impr / static_cast<double>(n_all));
  return 0;
}
