// Microbenchmarks (google-benchmark): throughput scaling of the substrates
// the flow's run-time column depends on — BDD construction, Reed-Muller
// spectra, factorization, redundancy removal and the full flow, swept over
// adder/multiplier size.
#include <benchmark/benchmark.h>

#include "baseline/script.hpp"
#include "benchgen/spec.hpp"
#include "core/synth.hpp"
#include "equiv/equiv.hpp"
#include "fdd/fprm.hpp"

namespace {

using namespace rmsyn;

void BM_BddAdderOutputs(benchmark::State& state) {
  const int nbits = static_cast<int>(state.range(0));
  const Network spec = ripple_adder(nbits, true, true);
  for (auto _ : state) {
    BddManager mgr(static_cast<int>(spec.pi_count()));
    benchmark::DoNotOptimize(output_bdds(mgr, spec));
  }
}
BENCHMARK(BM_BddAdderOutputs)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_RmSpectrumAdderCarry(benchmark::State& state) {
  const int nbits = static_cast<int>(state.range(0));
  const Network spec = ripple_adder(nbits, true, true);
  BddManager mgr(static_cast<int>(spec.pi_count()));
  const auto outs = output_bdds(mgr, spec);
  std::vector<int> vars;
  for (int v = 0; v < mgr.nvars(); ++v) vars.push_back(v);
  BitVec pol(static_cast<std::size_t>(mgr.nvars()));
  pol.set_all();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rm_spectrum(mgr, outs.back(), vars, pol));
  }
}
BENCHMARK(BM_RmSpectrumAdderCarry)->Arg(4)->Arg(8)->Arg(16);

void BM_SynthesizeAdder(benchmark::State& state) {
  const int nbits = static_cast<int>(state.range(0));
  const Network spec = ripple_adder(nbits, true, true);
  SynthOptions opt;
  opt.verify = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize(spec, opt, nullptr));
  }
}
BENCHMARK(BM_SynthesizeAdder)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_SynthesizeMultiplier(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Network spec = array_multiplier(n, n, 2 * n);
  SynthOptions opt;
  opt.verify = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize(spec, opt, nullptr));
  }
}
BENCHMARK(BM_SynthesizeMultiplier)->Arg(2)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_BaselineAdder(benchmark::State& state) {
  const int nbits = static_cast<int>(state.range(0));
  const Network spec = ripple_adder(nbits, true, true);
  BaselineOptions opt;
  opt.verify = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline_synthesize(spec, opt, nullptr));
  }
}
BENCHMARK(BM_BaselineAdder)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_EquivalenceCheck(benchmark::State& state) {
  const Network spec = make_benchmark("rd84").spec;
  SynthOptions opt;
  opt.verify = false;
  const Network ours = synthesize(spec, opt, nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_equivalence(spec, ours));
  }
}
BENCHMARK(BM_EquivalenceCheck)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
