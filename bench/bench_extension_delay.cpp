// Extension experiment — the question Section 6 leaves open: "other
// characteristics, such as ... delay, of the synthesized circuits will
// also differ from the results of conventional synthesis methods and need
// to be analyzed."
//
// Measures logic depth before mapping (levels of 2-input AND/OR gates,
// XOR2 = 2 levels, inverters free — consistent with the area metric) and
// after mapping (cells on the longest PI->PO path).
//
// Usage: bench_extension_delay [circuit ...]
#include <cstdio>
#include <string>
#include <vector>

#include "baseline/script.hpp"
#include "benchgen/spec.hpp"
#include "core/synth.hpp"
#include "mapping/mapper.hpp"
#include "network/stats.hpp"

int main(int argc, char** argv) {
  using namespace rmsyn;
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty())
    names = {"z4ml", "adr4", "add6", "my_adder", "mlp4",     "rd53",
             "rd84", "9sym", "t481", "cm85a",    "majority", "parity"};

  std::printf("== Extension: logic depth, ours vs the SOP baseline ==\n");
  std::printf("%-10s | %9s %9s | %10s %10s\n", "circuit", "our depth",
              "SOP depth", "our cells", "SOP cells");

  double ours_sum = 0, base_sum = 0;
  for (const auto& name : names) {
    const Benchmark bench = make_benchmark(name);
    const Network ours = synthesize(bench.spec, {}, nullptr);
    const Network base = baseline_synthesize(bench.spec, {}, nullptr);
    const auto so = network_stats(ours);
    const auto sb = network_stats(base);
    const auto mo = map_network(ours, mcnc_library());
    const auto mb = map_network(base, mcnc_library());
    std::printf("%-10s | %9zu %9zu | %10zu %10zu\n", name.c_str(), so.depth,
                sb.depth, mo.depth, mb.depth);
    ours_sum += static_cast<double>(mo.depth);
    base_sum += static_cast<double>(mb.depth);
  }
  std::printf("\nMean mapped depth ratio ours/baseline: %.2f\n",
              base_sum > 0 ? ours_sum / base_sum : 1.0);
  std::printf("(XOR-dominated datapaths trade area for longer XOR chains — "
              "the ripple adders show it most; two-level-ish baseline "
              "results are naturally shallow.)\n");
  return 0;
}
