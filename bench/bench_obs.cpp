// Observability overhead bench: proves the tracer costs nothing when off.
//
// Three measurements:
//  1. micro: cost of a *disabled* RMSYN_SPAN in ns (relaxed load + branch),
//     measured over tens of millions of iterations;
//  2. span census: how many spans one traced Table-2 flow actually emits
//     (stages, polarity chunks, KFDD searches) — taken from a real traced
//     run, not estimated;
//  3. macro: min-of-3 interleaved flow wall times with tracing off vs on.
//
// The gate combines 1 and 2: extrapolated disabled-site cost per flow
// (spans * ns_per_disabled_span) must stay under --max-overhead percent
// (default 1%) of the plain flow wall time. The macro numbers are reported
// for context but not gated — enabling tracing is allowed to cost more;
// the contract is that *not* using it is free.
//
// Emits a machine-readable BENCH_obs.json for CI tracking.
//
// Usage: bench_obs [--out file.json] [--max-overhead pct] [circuit ...]
//        (default: BENCH_obs.json, all Table-2 circuits, 1% gate;
//         --max-overhead 0 disables the gate for very noisy hosts)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "flow/flow.hpp"
#include "obs/trace.hpp"
#include "util/stopwatch.hpp"

namespace {

struct Result {
  std::string name;
  double plain_seconds = 0.0;  // tracing disabled
  double traced_seconds = 0.0; // tracing enabled, events recorded
  uint64_t spans = 0;          // events one traced run emitted
  std::size_t plain_lits = 0;
  std::size_t traced_lits = 0;
};

double run_once(const std::string& name, const rmsyn::FlowOptions& opt,
                std::size_t* lits_out) {
  rmsyn::Stopwatch sw;
  const rmsyn::FlowRow row = rmsyn::run_flow(name, opt);
  if (lits_out != nullptr) *lits_out = row.ours_lits;
  return sw.seconds();
}

// Cost of one disabled span site. The span name is a runtime value so the
// compiler cannot fold the whole loop away; the check inside Span's ctor
// (one relaxed load) is exactly what every RMSYN_SPAN site pays when
// tracing is off.
double disabled_span_ns(uint64_t iters) {
  const char* volatile vname = "bench-disabled";
  rmsyn::Stopwatch sw;
  for (uint64_t i = 0; i < iters; ++i) {
    RMSYN_SPAN(vname);
  }
  const double s = sw.seconds();
  return 1e9 * s / static_cast<double>(iters);
}

} // namespace

int main(int argc, char** argv) {
  using namespace rmsyn;
  std::string path = "BENCH_obs.json";
  double max_overhead_pct = 1.0;
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) path = argv[++i];
    else if (arg == "--max-overhead" && i + 1 < argc)
      max_overhead_pct = std::atof(argv[++i]);
    else names.emplace_back(arg);
  }
  if (names.empty()) names = benchmark_names();

  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.disable();
  tracer.reset();

  // --- 1. micro: disabled-span cost -------------------------------------
  constexpr uint64_t kMicroIters = 50'000'000;
  double ns_per_span = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    const double t = disabled_span_ns(kMicroIters);
    if (t < ns_per_span) ns_per_span = t;
  }
  std::printf("== Observability overhead ==\n");
  std::printf("disabled RMSYN_SPAN: %.3f ns/site (min of 3 x %lluM iters)\n",
              ns_per_span,
              static_cast<unsigned long long>(kMicroIters / 1'000'000));

  // --- 2+3. per-circuit: span census and off/on wall times ---------------
  FlowOptions opt;
  opt.run_mapping = false;
  opt.run_power = false;

  constexpr int kReps = 3;
  std::vector<Result> results;
  for (const auto& name : names) {
    Result r;
    r.name = name;
    r.plain_seconds = 1e30;
    r.traced_seconds = 1e30;
    // Interleave off/on so cache/frequency drift hits both equally.
    for (int rep = 0; rep < kReps; ++rep) {
      tracer.disable();
      const double tp = run_once(name, opt, &r.plain_lits);
      if (tp < r.plain_seconds) r.plain_seconds = tp;

      tracer.reset();
      tracer.enable();
      const double tt = run_once(name, opt, &r.traced_lits);
      tracer.disable();
      if (tt < r.traced_seconds) r.traced_seconds = tt;
      r.spans = tracer.summary().events;
      tracer.reset();
    }
    results.push_back(r);
  }

  std::printf("%-10s %10s %10s %8s %12s\n", "circuit", "off(s)", "on(s)",
              "spans", "off-cost(%)");
  double sum_plain = 0, sum_traced = 0;
  uint64_t sum_spans = 0;
  bool lits_match = true;
  double worst_disabled_pct = 0.0;
  for (const auto& r : results) {
    sum_plain += r.plain_seconds;
    sum_traced += r.traced_seconds;
    sum_spans += r.spans;
    lits_match &= r.plain_lits == r.traced_lits;
    // Extrapolated cost of the disabled sites this circuit's flow passes:
    // every recorded span is one site that, when tracing is off, pays the
    // measured per-site cost.
    const double site_seconds =
        1e-9 * ns_per_span * static_cast<double>(r.spans);
    const double pct =
        r.plain_seconds > 0 ? 100.0 * site_seconds / r.plain_seconds : 0.0;
    if (pct > worst_disabled_pct) worst_disabled_pct = pct;
    std::printf("%-10s %10.4f %10.4f %8llu %11.4f%%%s\n", r.name.c_str(),
                r.plain_seconds, r.traced_seconds,
                static_cast<unsigned long long>(r.spans), pct,
                r.plain_lits == r.traced_lits ? "" : "  LITS DIFFER");
  }
  const double total_site_seconds =
      1e-9 * ns_per_span * static_cast<double>(sum_spans);
  const double disabled_pct =
      sum_plain > 0 ? 100.0 * total_site_seconds / sum_plain : 0.0;
  const double enabled_pct =
      sum_plain > 0 ? 100.0 * (sum_traced / sum_plain - 1.0) : 0.0;
  std::printf("\nTotal: off %.3fs, on %.3fs (+%.2f%% when enabled)\n",
              sum_plain, sum_traced, enabled_pct);
  std::printf("Disabled-tracer cost: %llu sites x %.3f ns = %.1f us over "
              "%.3fs => %.4f%% (target < %.2f%%)\n",
              static_cast<unsigned long long>(sum_spans), ns_per_span,
              1e6 * total_site_seconds, sum_plain, disabled_pct,
              max_overhead_pct);
  if (!lits_match)
    std::printf("WARNING: enabling the tracer changed a result — "
                "it must be observation-only\n");

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"obs\",\n"
               "  \"disabled_span_ns\": %.4f,\n"
               "  \"disabled_overhead_pct\": %.6f,\n"
               "  \"worst_circuit_overhead_pct\": %.6f,\n"
               "  \"enabled_overhead_pct\": %.3f,\n"
               "  \"plain_seconds\": %.6f,\n  \"traced_seconds\": %.6f,\n"
               "  \"total_spans\": %llu,\n"
               "  \"results_identical\": %s,\n  \"results\": [\n",
               ns_per_span, disabled_pct, worst_disabled_pct, enabled_pct,
               sum_plain, sum_traced,
               static_cast<unsigned long long>(sum_spans),
               lits_match ? "true" : "false");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"plain_seconds\": %.6f, "
                 "\"traced_seconds\": %.6f, \"spans\": %llu, "
                 "\"lits\": %zu}%s\n",
                 r.name.c_str(), r.plain_seconds, r.traced_seconds,
                 static_cast<unsigned long long>(r.spans), r.traced_lits,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());

  // Gate: tracing-off must be free (extrapolated site cost under budget)
  // and observation-only (identical literal counts traced vs not).
  if (!lits_match) return 1;
  if (max_overhead_pct > 0.0 && disabled_pct > max_overhead_pct) {
    std::fprintf(stderr,
                 "FAIL: disabled-tracer overhead %.4f%% exceeds the "
                 "%.2f%% budget\n",
                 disabled_pct, max_overhead_pct);
    return 1;
  }
  return 0;
}
