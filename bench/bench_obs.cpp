// Observability overhead bench: proves the tracer costs nothing when off.
//
// Four measurements:
//  1. micro: cost of a *disabled* RMSYN_SPAN in ns. Since the profiler
//     landed, the span ctor gate is `Tracer::enabled() || Profiler::enabled()`
//     (two relaxed loads + branch), so this number covers the profiler's
//     disabled path too; measured over tens of millions of iterations;
//  2. micro: cost of one bucketed histogram observe_value() in ns — the
//     percentile machinery's per-sample price;
//  3. span + sample census: how many spans one traced Table-2 flow emits
//     and how many histogram samples its metrics collection records —
//     taken from a real traced run, not estimated;
//  4. macro: min-of-3 interleaved flow wall times with tracing off vs on,
//     plus an off-vs-profiled pair for the profiler's enabled cost.
//
// The gate combines 1-3: extrapolated disabled-site cost per flow
// (spans * ns_per_disabled_span + samples * ns_per_observe) must stay
// under --max-overhead percent (default 1%) of the plain flow wall time.
// The macro numbers are reported for context but not gated — enabling
// tracing or profiling is allowed to cost more; the contract is that
// *not* using them is free and that bucketed percentiles stay cheap.
//
// Emits a machine-readable BENCH_obs.json for CI tracking.
//
// Usage: bench_obs [--out file.json] [--max-overhead pct] [circuit ...]
//        (default: BENCH_obs.json, all Table-2 circuits, 1% gate;
//         --max-overhead 0 disables the gate for very noisy hosts)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "flow/flow.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/stopwatch.hpp"

namespace {

struct Result {
  std::string name;
  double plain_seconds = 0.0;    // tracing disabled
  double traced_seconds = 0.0;   // tracing enabled, events recorded
  double profiled_seconds = 0.0; // profiler enabled, tracer off
  uint64_t spans = 0;            // events one traced run emitted
  uint64_t hist_samples = 0;     // histogram observations metrics collect
  std::size_t plain_lits = 0;
  std::size_t traced_lits = 0;
};

double run_once(const std::string& name, const rmsyn::FlowOptions& opt,
                std::size_t* lits_out, rmsyn::FlowRow* row_out = nullptr) {
  rmsyn::Stopwatch sw;
  rmsyn::FlowRow row = rmsyn::run_flow(name, opt);
  if (lits_out != nullptr) *lits_out = row.ours_lits;
  const double s = sw.seconds();
  if (row_out != nullptr) *row_out = std::move(row);
  return s;
}

/// Histogram observations one flow's metrics collection records (the
/// bucketed path: stage.* histograms, flow.row_seconds, rewrite phase
/// timings). This is the census the observe_value() micro-cost multiplies.
uint64_t hist_sample_census(const rmsyn::FlowRow& row) {
  const rmsyn::obs::MetricsRegistry m = rmsyn::collect_flow_metrics({row});
  uint64_t samples = 0;
  for (const auto& e : m.snapshot())
    if (e.v.kind == rmsyn::obs::MetricKind::Histogram) samples += e.v.count;
  return samples;
}

// Cost of one disabled span site. The span name is a runtime value so the
// compiler cannot fold the whole loop away; the check inside Span's ctor
// (one relaxed load) is exactly what every RMSYN_SPAN site pays when
// tracing is off.
double disabled_span_ns(uint64_t iters) {
  const char* volatile vname = "bench-disabled";
  rmsyn::Stopwatch sw;
  for (uint64_t i = 0; i < iters; ++i) {
    RMSYN_SPAN(vname);
  }
  const double s = sw.seconds();
  return 1e9 * s / static_cast<double>(iters);
}

// Cost of one bucketed observe_value(): bucket_for's log10 + the vector
// increment, over a spread of magnitudes so branch prediction cannot pin
// one bucket. Measured on a local MetricValue — same code path the
// registry's observe() takes under its lock.
double observe_value_ns(uint64_t iters) {
  rmsyn::obs::MetricValue h;
  h.kind = rmsyn::obs::MetricKind::Histogram;
  volatile double sink = 0.0;
  rmsyn::Stopwatch sw;
  for (uint64_t i = 0; i < iters; ++i) {
    h.observe_value(1e-6 * static_cast<double>((i % 1000) + 1));
  }
  const double s = sw.seconds();
  sink = h.sum;
  (void)sink;
  return 1e9 * s / static_cast<double>(iters);
}

} // namespace

int main(int argc, char** argv) {
  using namespace rmsyn;
  std::string path = "BENCH_obs.json";
  double max_overhead_pct = 1.0;
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) path = argv[++i];
    else if (arg == "--max-overhead" && i + 1 < argc)
      max_overhead_pct = std::atof(argv[++i]);
    else names.emplace_back(arg);
  }
  if (names.empty()) names = benchmark_names();

  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.disable();
  tracer.reset();

  obs::Profiler& prof = obs::Profiler::instance();
  prof.disable();
  prof.reset();

  // --- 1. micro: disabled-span cost (tracer AND profiler branch) ---------
  constexpr uint64_t kMicroIters = 50'000'000;
  double ns_per_span = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    const double t = disabled_span_ns(kMicroIters);
    if (t < ns_per_span) ns_per_span = t;
  }
  std::printf("== Observability overhead ==\n");
  std::printf("disabled RMSYN_SPAN: %.3f ns/site (min of 3 x %lluM iters; "
              "covers tracer+profiler gate)\n",
              ns_per_span,
              static_cast<unsigned long long>(kMicroIters / 1'000'000));

  // --- 2. micro: bucketed histogram observe cost -------------------------
  constexpr uint64_t kObserveIters = 10'000'000;
  double ns_per_observe = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    const double t = observe_value_ns(kObserveIters);
    if (t < ns_per_observe) ns_per_observe = t;
  }
  std::printf("bucketed observe_value: %.3f ns/sample (min of 3 x %lluM "
              "iters)\n",
              ns_per_observe,
              static_cast<unsigned long long>(kObserveIters / 1'000'000));

  // --- 3+4. per-circuit: span/sample census and off/on wall times ---------
  FlowOptions opt;
  opt.run_mapping = false;
  opt.run_power = false;

  constexpr int kReps = 3;
  std::vector<Result> results;
  for (const auto& name : names) {
    Result r;
    r.name = name;
    r.plain_seconds = 1e30;
    r.traced_seconds = 1e30;
    r.profiled_seconds = 1e30;
    // Interleave off/on so cache/frequency drift hits both equally.
    for (int rep = 0; rep < kReps; ++rep) {
      tracer.disable();
      FlowRow plain_row;
      const double tp = run_once(name, opt, &r.plain_lits, &plain_row);
      if (tp < r.plain_seconds) r.plain_seconds = tp;
      r.hist_samples = hist_sample_census(plain_row);

      tracer.reset();
      tracer.enable();
      const double tt = run_once(name, opt, &r.traced_lits);
      tracer.disable();
      if (tt < r.traced_seconds) r.traced_seconds = tt;
      r.spans = tracer.summary().events;
      tracer.reset();

      prof.reset();
      prof.enable();
      const double tf = run_once(name, opt, nullptr);
      prof.disable();
      if (tf < r.profiled_seconds) r.profiled_seconds = tf;
      prof.reset();
    }
    results.push_back(r);
  }

  std::printf("%-10s %10s %10s %10s %8s %8s %12s\n", "circuit", "off(s)",
              "on(s)", "prof(s)", "spans", "samples", "off-cost(%)");
  double sum_plain = 0, sum_traced = 0, sum_profiled = 0;
  uint64_t sum_spans = 0, sum_samples = 0;
  bool lits_match = true;
  double worst_disabled_pct = 0.0;
  for (const auto& r : results) {
    sum_plain += r.plain_seconds;
    sum_traced += r.traced_seconds;
    sum_profiled += r.profiled_seconds;
    sum_spans += r.spans;
    sum_samples += r.hist_samples;
    lits_match &= r.plain_lits == r.traced_lits;
    // Extrapolated cost of the disabled sites this circuit's flow passes:
    // every recorded span is one site that, when tracing is off, pays the
    // measured per-site cost, and every histogram sample pays the bucketed
    // observe cost (metrics are always collected).
    const double site_seconds =
        1e-9 * (ns_per_span * static_cast<double>(r.spans) +
                ns_per_observe * static_cast<double>(r.hist_samples));
    const double pct =
        r.plain_seconds > 0 ? 100.0 * site_seconds / r.plain_seconds : 0.0;
    if (pct > worst_disabled_pct) worst_disabled_pct = pct;
    std::printf("%-10s %10.4f %10.4f %10.4f %8llu %8llu %11.4f%%%s\n",
                r.name.c_str(), r.plain_seconds, r.traced_seconds,
                r.profiled_seconds, static_cast<unsigned long long>(r.spans),
                static_cast<unsigned long long>(r.hist_samples), pct,
                r.plain_lits == r.traced_lits ? "" : "  LITS DIFFER");
  }
  const double total_site_seconds =
      1e-9 * (ns_per_span * static_cast<double>(sum_spans) +
              ns_per_observe * static_cast<double>(sum_samples));
  const double disabled_pct =
      sum_plain > 0 ? 100.0 * total_site_seconds / sum_plain : 0.0;
  const double enabled_pct =
      sum_plain > 0 ? 100.0 * (sum_traced / sum_plain - 1.0) : 0.0;
  const double profiled_pct =
      sum_plain > 0 ? 100.0 * (sum_profiled / sum_plain - 1.0) : 0.0;
  std::printf("\nTotal: off %.3fs, traced %.3fs (+%.2f%%), profiled %.3fs "
              "(+%.2f%%)\n",
              sum_plain, sum_traced, enabled_pct, sum_profiled, profiled_pct);
  std::printf("Disabled-obs cost: %llu spans x %.3f ns + %llu samples x "
              "%.3f ns = %.1f us over %.3fs => %.4f%% (target < %.2f%%)\n",
              static_cast<unsigned long long>(sum_spans), ns_per_span,
              static_cast<unsigned long long>(sum_samples), ns_per_observe,
              1e6 * total_site_seconds, sum_plain, disabled_pct,
              max_overhead_pct);
  if (!lits_match)
    std::printf("WARNING: enabling the tracer changed a result — "
                "it must be observation-only\n");

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"obs\",\n"
               "  \"disabled_span_ns\": %.4f,\n"
               "  \"observe_value_ns\": %.4f,\n"
               "  \"disabled_overhead_pct\": %.6f,\n"
               "  \"worst_circuit_overhead_pct\": %.6f,\n"
               "  \"enabled_overhead_pct\": %.3f,\n"
               "  \"profiled_overhead_pct\": %.3f,\n"
               "  \"plain_seconds\": %.6f,\n  \"traced_seconds\": %.6f,\n"
               "  \"profiled_seconds\": %.6f,\n"
               "  \"total_spans\": %llu,\n"
               "  \"total_hist_samples\": %llu,\n"
               "  \"results_identical\": %s,\n  \"results\": [\n",
               ns_per_span, ns_per_observe, disabled_pct, worst_disabled_pct,
               enabled_pct, profiled_pct, sum_plain, sum_traced, sum_profiled,
               static_cast<unsigned long long>(sum_spans),
               static_cast<unsigned long long>(sum_samples),
               lits_match ? "true" : "false");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"plain_seconds\": %.6f, "
                 "\"traced_seconds\": %.6f, \"profiled_seconds\": %.6f, "
                 "\"spans\": %llu, \"hist_samples\": %llu, "
                 "\"lits\": %zu}%s\n",
                 r.name.c_str(), r.plain_seconds, r.traced_seconds,
                 r.profiled_seconds, static_cast<unsigned long long>(r.spans),
                 static_cast<unsigned long long>(r.hist_samples),
                 r.traced_lits, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());

  // Gate: tracing-off must be free (extrapolated site cost under budget)
  // and observation-only (identical literal counts traced vs not).
  if (!lits_match) return 1;
  if (max_overhead_pct > 0.0 && disabled_pct > max_overhead_pct) {
    std::fprintf(stderr,
                 "FAIL: disabled-obs overhead %.4f%% exceeds the "
                 "%.2f%% budget\n",
                 disabled_pct, max_overhead_pct);
    return 1;
  }
  return 0;
}
