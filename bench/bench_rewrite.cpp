// Cut-rewriting bench: runs the rewrite pass over every Table-2 circuit
// plus the large parameterized circuits (adder64, mult16), reporting
// literals saved and cut-enumeration throughput, and gates two hard
// properties:
//
//   * serial vs --jobs bit-identity — the pooled phase-B evaluation must
//     reproduce the serial network node-for-node on every circuit;
//   * monotone cost — no circuit's paper literal count may increase.
//
// Every rewritten network is equivalence-checked against its input before
// anything is reported — a fast wrong answer fails the run outright.
//
// Emits a machine-readable BENCH_rewrite.json for CI tracking.
//
// Usage: bench_rewrite [--out file.json] [--jobs N]
//        (default: BENCH_rewrite.json, 4)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "benchgen/spec.hpp"
#include "equiv/equiv.hpp"
#include "network/stats.hpp"
#include "rewrite/rewrite.hpp"
#include "sched/pool.hpp"
#include "util/governor.hpp"

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Min-of-3 wall-clock of `fn` — the usual defense against a cold first
/// iteration and scheduler noise.
template <typename Fn>
double time_min3(Fn&& fn) {
  double best = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    const double t0 = now_seconds();
    fn();
    best = std::min(best, now_seconds() - t0);
  }
  return best;
}

struct Row {
  std::string circuit;
  std::size_t nodes = 0;
  std::size_t lits_before = 0;
  std::size_t lits_after = 0;
  double seconds = 0.0;
  double cuts_per_second = 0.0;
  rmsyn::rw::RewriteStats stats;
};

bool networks_identical(const rmsyn::Network& a, const rmsyn::Network& b) {
  if (a.node_count() != b.node_count()) return false;
  for (rmsyn::NodeId i = 0; i < a.node_count(); ++i) {
    if (a.is_dead(i) != b.is_dead(i)) return false;
    if (a.is_dead(i)) continue;
    if (a.type(i) != b.type(i)) return false;
    const rmsyn::FaninSpan fa = a.fanins(i), fb = b.fanins(i);
    if (fa.size() != fb.size()) return false;
    for (std::size_t j = 0; j < fa.size(); ++j)
      if (fa[j] != fb[j]) return false;
  }
  return true;
}

} // namespace

int main(int argc, char** argv) {
  using namespace rmsyn;
  std::string path = "BENCH_rewrite.json";
  int jobs = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) path = argv[++i];
    else if (arg == "--jobs" && i + 1 < argc) jobs = std::stoi(argv[++i]);
  }

  std::vector<std::string> names = benchmark_names();
  names.push_back("adder64");
  names.push_back("mult16");

  ThreadPool pool(jobs);
  std::vector<Row> rows;
  bool equivalent = true, identical = true, monotone = true;
  std::size_t total_before = 0, total_after = 0;
  for (const auto& name : names) {
    const Network spec = make_benchmark(name).spec;

    // Correctness first: rewritten network equivalent to the input, and
    // the pooled run bit-identical to the serial one. The BDD phase of
    // the check is budgeted — mult16's product function is BDD-hostile
    // (exponential in any order), so on exhaustion the verdict falls
    // back to the 256-pattern simulation miter plus the per-replacement
    // in-pass verification, instead of hanging the bench.
    Network serial = spec;
    const rw::RewriteStats st = rw::rewrite_network(serial);
    ResourceLimits elim;
    elim.step_limit = 2'000'000;
    ResourceGovernor egov(elim);
    const EquivResult eq = check_equivalence(spec, serial, 0xC0FFEE, &egov);
    if (!eq.decided)
      std::printf("%-10s BDD check undecided at %llu steps; "
                  "sim miter + in-pass verification stand\n",
                  name.c_str(),
                  static_cast<unsigned long long>(elim.step_limit));
    if (eq.decided && !eq.equivalent) {
      equivalent = false;
      std::printf("NOT EQUIVALENT on %s: %s\n", name.c_str(),
                  eq.reason.c_str());
      continue;
    }
    Network pooled = spec;
    rw::RewriteOptions popt;
    popt.pool = &pool;
    rw::rewrite_network(pooled, popt);
    if (!networks_identical(serial, pooled)) {
      identical = false;
      std::printf("JOBS MISMATCH on %s: --jobs %d differs from serial\n",
                  name.c_str(), jobs);
      continue;
    }

    Row row;
    row.circuit = name;
    row.nodes = spec.node_count();
    row.lits_before = network_stats(spec).lits;
    row.lits_after = network_stats(serial).lits;
    row.stats = st;
    row.seconds = time_min3([&] {
      Network n = spec;
      rw::rewrite_network(n);
    });
    row.cuts_per_second =
        row.seconds > 0
            ? static_cast<double>(st.cuts_enumerated) / row.seconds
            : 0.0;
    if (row.lits_after > row.lits_before) {
      monotone = false;
      std::printf("COST REGRESSION on %s: %zu -> %zu lits\n", name.c_str(),
                  row.lits_before, row.lits_after);
    }
    total_before += row.lits_before;
    total_after += row.lits_after;
    std::printf("%-10s lits %6zu -> %6zu  %3llu repl  %8.4fs  %9.0f cuts/s\n",
                name.c_str(), row.lits_before, row.lits_after,
                static_cast<unsigned long long>(st.replacements), row.seconds,
                row.cuts_per_second);
    std::fflush(stdout);
    rows.push_back(row);
  }

  const bool gate_ok = equivalent && identical && monotone;
  std::printf("total lits %zu -> %zu (saved %zu); equivalence %s, "
              "--jobs %d bit-identity %s, monotone cost %s\n",
              total_before, total_after,
              total_before >= total_after ? total_before - total_after : 0,
              equivalent ? "ok" : "FAILED", jobs,
              identical ? "ok" : "FAILED", monotone ? "ok" : "FAILED");

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"rewrite\",\n"
               "  \"jobs\": %d,\n"
               "  \"equivalent\": %s,\n"
               "  \"jobs_bit_identical\": %s,\n"
               "  \"monotone_cost\": %s,\n"
               "  \"total_lits_before\": %zu,\n"
               "  \"total_lits_after\": %zu,\n  \"rows\": [\n",
               jobs, equivalent ? "true" : "false",
               identical ? "true" : "false", monotone ? "true" : "false",
               total_before, total_after);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"circuit\": \"%s\", \"nodes\": %zu, \"lits_before\": %zu, "
        "\"lits_after\": %zu, \"replacements\": %llu, \"db_hits\": %llu, "
        "\"cuts_enumerated\": %llu, \"sim_rejects\": %llu, "
        "\"bdd_rejects\": %llu, \"seconds\": %.6f, "
        "\"cuts_per_second\": %.0f}%s\n",
        r.circuit.c_str(), r.nodes, r.lits_before, r.lits_after,
        static_cast<unsigned long long>(r.stats.replacements),
        static_cast<unsigned long long>(r.stats.db_hits),
        static_cast<unsigned long long>(r.stats.cuts_enumerated),
        static_cast<unsigned long long>(r.stats.sim_rejects),
        static_cast<unsigned long long>(r.stats.bdd_rejects), r.seconds,
        r.cuts_per_second, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());

  return gate_ok ? 0 : 1;
}
