// Governor overhead bench: runs the Table-2 sweep (both flows, pre-mapping)
// once with no governor attached and once under a governor whose budgets can
// never trip, and reports the wall-clock overhead of the cooperative polling
// it adds. The acceptance bar for the governed build is < 2% overhead.
//
// Emits a machine-readable BENCH_governor.json for CI tracking.
//
// Usage: bench_governor [--out file.json] [--max-overhead pct] [circuit ...]
//        (default: BENCH_governor.json, all Table-2 circuits, 2% gate;
//         --max-overhead 0 disables the gate for very noisy hosts)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "flow/flow.hpp"
#include "util/stopwatch.hpp"

namespace {

struct Result {
  std::string name;
  double plain_seconds = 0.0;    // no governor attached
  double governed_seconds = 0.0; // unlimited governor polled throughout
  std::size_t plain_lits = 0;
  std::size_t governed_lits = 0;
};

double run_once(const std::string& name, const rmsyn::FlowOptions& opt,
                std::size_t* lits_out) {
  rmsyn::Stopwatch sw;
  const rmsyn::FlowRow row = rmsyn::run_flow(name, opt);
  if (lits_out != nullptr) *lits_out = row.ours_lits;
  return sw.seconds();
}

} // namespace

int main(int argc, char** argv) {
  using namespace rmsyn;
  std::string path = "BENCH_governor.json";
  double max_overhead_pct = 2.0;
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) path = argv[++i];
    else if (arg == "--max-overhead" && i + 1 < argc)
      max_overhead_pct = std::atof(argv[++i]);
    else names.emplace_back(arg);
  }
  if (names.empty()) names = benchmark_names();

  FlowOptions plain;
  plain.run_mapping = false;
  plain.run_power = false;

  FlowOptions governed = plain;
  // A budget that can never trip, so every poll site stays on its hot path
  // — this measures pure instrumentation cost, not degradation.
  governed.limits.deadline_seconds = 1e9;
  governed.limits.node_limit = std::size_t{1} << 60;

  constexpr int kReps = 3; // keep the min per config: robust against noise
  std::vector<Result> results;
  for (const auto& name : names) {
    Result r;
    r.name = name;
    r.plain_seconds = 1e30;
    r.governed_seconds = 1e30;
    // Interleave configs so cache/frequency drift hits both equally.
    for (int rep = 0; rep < kReps; ++rep) {
      const double tp = run_once(name, plain, &r.plain_lits);
      if (tp < r.plain_seconds) r.plain_seconds = tp;
      const double tg = run_once(name, governed, &r.governed_lits);
      if (tg < r.governed_seconds) r.governed_seconds = tg;
    }
    results.push_back(r);
  }

  std::printf("== Governor overhead (Table-2 sweep, both flows) ==\n");
  std::printf("%-10s %10s %10s %9s\n", "circuit", "plain(s)", "governed",
              "overhead");
  double sum_plain = 0, sum_governed = 0;
  bool lits_match = true;
  for (const auto& r : results) {
    sum_plain += r.plain_seconds;
    sum_governed += r.governed_seconds;
    lits_match &= r.plain_lits == r.governed_lits;
    std::printf("%-10s %10.4f %10.4f %8.2f%%%s\n", r.name.c_str(),
                r.plain_seconds, r.governed_seconds,
                r.plain_seconds > 0
                    ? 100.0 * (r.governed_seconds / r.plain_seconds - 1.0)
                    : 0.0,
                r.plain_lits == r.governed_lits ? "" : "  LITS DIFFER");
  }
  const double overhead_pct =
      sum_plain > 0 ? 100.0 * (sum_governed / sum_plain - 1.0) : 0.0;
  std::printf("\nTotal: plain %.3fs, governed %.3fs, overhead %.2f%% "
              "(target < 2%%)\n",
              sum_plain, sum_governed, overhead_pct);
  if (!lits_match)
    std::printf("WARNING: an unlimited governor changed a result — "
                "it must be observation-only\n");

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"governor\",\n  \"overhead_pct\": %.3f,\n"
                  "  \"plain_seconds\": %.6f,\n  \"governed_seconds\": %.6f,\n"
                  "  \"results_identical\": %s,\n  \"results\": [\n",
               overhead_pct, sum_plain, sum_governed,
               lits_match ? "true" : "false");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"plain_seconds\": %.6f, "
                 "\"governed_seconds\": %.6f, \"lits\": %zu}%s\n",
                 r.name.c_str(), r.plain_seconds, r.governed_seconds,
                 r.governed_lits, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());

  // Gate: the governor must be observation-only (lits identical) AND its
  // polling must stay under the overhead budget. min-of-3 per config keeps
  // the measurement robust; --max-overhead 0 disables the time gate on
  // hosts too noisy to measure 2%.
  if (!lits_match) return 1;
  if (max_overhead_pct > 0.0 && overhead_pct > max_overhead_pct) {
    std::fprintf(stderr,
                 "FAIL: governor overhead %.2f%% exceeds the %.2f%% budget\n",
                 overhead_pct, max_overhead_pct);
    return 1;
  }
  return 0;
}
