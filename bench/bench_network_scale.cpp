// Large-network scaling bench for the SoA core: generates a wide array
// multiplier, pushes it through the whole parse -> stats -> simulate ->
// redundancy pipeline, and gates CI on a nodes/sec floor for the
// simulator plus a peak-RSS ceiling for the run. The default circuit is
// mult132 (103,754 nodes) — the smallest ~128-bit multiplier that clears
// the >= 100k-node floor the bench also gates on (mult128 is 97,538).
// The parse stage is a binary AIGER round-trip, so reader and writer are
// both exercised at scale; redundancy runs under a governed budget and
// must bail out cleanly rather than OOM or hang.
//
// Emits a machine-readable BENCH_network_scale.json for CI tracking.
//
// Usage: bench_network_scale [--out file.json] [--circuit multN|adderN]
//        [--min-nodes X] [--min-nodes-per-sec X] [--max-rss-mb M]
//        [--patterns N]
//        (default: BENCH_network_scale.json, mult132, 100000, 1e6, 3000, 256)
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "benchgen/spec.hpp"
#include "core/redundancy.hpp"
#include "network/io.hpp"
#include "network/simulate.hpp"
#include "network/stats.hpp"
#include "util/governor.hpp"
#include "util/osinfo.hpp"

namespace {

using rmsyn::peak_rss_mb;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Stage {
  const char* name;
  double seconds = 0.0;
  std::size_t nodes = 0; ///< node count the stage operated on
  double nodes_per_sec() const {
    return seconds > 0 ? static_cast<double>(nodes) / seconds : 0.0;
  }
};

} // namespace

int main(int argc, char** argv) {
  using namespace rmsyn;
  std::string path = "BENCH_network_scale.json";
  std::string circuit = "mult132";
  std::size_t min_nodes = 100000;
  double min_nodes_per_sec = 1e6;
  double max_rss_mb = 3000.0;
  std::size_t num_patterns = 256;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) path = argv[++i];
    else if (arg == "--circuit" && i + 1 < argc) circuit = argv[++i];
    else if (arg == "--min-nodes" && i + 1 < argc)
      min_nodes = static_cast<std::size_t>(std::stoul(argv[++i]));
    else if (arg == "--min-nodes-per-sec" && i + 1 < argc)
      min_nodes_per_sec = std::stod(argv[++i]);
    else if (arg == "--max-rss-mb" && i + 1 < argc)
      max_rss_mb = std::stod(argv[++i]);
    else if (arg == "--patterns" && i + 1 < argc)
      num_patterns = static_cast<std::size_t>(std::stoul(argv[++i]));
  }

  std::vector<Stage> stages;

  // ---- generate --------------------------------------------------------
  Stage gen{"generate"};
  double t0 = now_seconds();
  Network net = make_benchmark(circuit).spec;
  gen.seconds = now_seconds() - t0;
  gen.nodes = net.node_count();
  stages.push_back(gen);
  std::printf("%-10s %8zu nodes in %7.3fs (%.2fM nodes/s)\n", gen.name,
              gen.nodes, gen.seconds, gen.nodes_per_sec() / 1e6);

  // ---- parse (binary AIGER round-trip) ---------------------------------
  Stage parse{"aiger_roundtrip"};
  t0 = now_seconds();
  const std::string aig = write_aiger_string(net, /*binary=*/true);
  Network reread = read_aiger_string(aig);
  parse.seconds = now_seconds() - t0;
  parse.nodes = reread.node_count();
  stages.push_back(parse);
  std::printf("%-10s %8zu nodes in %7.3fs (%.2fM nodes/s, %zu KB)\n",
              parse.name, parse.nodes, parse.seconds,
              parse.nodes_per_sec() / 1e6, aig.size() / 1024);

  // ---- stats -----------------------------------------------------------
  Stage st{"stats"};
  t0 = now_seconds();
  const NetworkStats ns = network_stats(net);
  st.seconds = now_seconds() - t0;
  st.nodes = net.node_count();
  stages.push_back(st);
  std::printf("%-10s %8zu gates2, depth %zu in %7.3fs\n", st.name, ns.gates2,
              ns.depth, st.seconds);

  // ---- simulate (carries the nodes/sec gate) ---------------------------
  Stage sim{"simulate"};
  const PatternSet patterns =
      random_patterns(net.pi_count(), num_patterns, 0x5CA1E);
  t0 = now_seconds();
  const auto values = simulate(net, patterns);
  sim.seconds = now_seconds() - t0;
  sim.nodes = net.node_count();
  stages.push_back(sim);
  std::printf("%-10s %8zu nodes in %7.3fs (%.2fM nodes/s, %zu patterns)\n",
              sim.name, sim.nodes, sim.seconds, sim.nodes_per_sec() / 1e6,
              num_patterns);

  // ---- redundancy under a governed budget ------------------------------
  // The exact (BDD) decisions cannot finish on a 100k-node multiplier;
  // the point is that the pass degrades cleanly — budget trips make it
  // keep undecided gates and return — instead of OOMing or hanging.
  Stage red{"redundancy"};
  ResourceLimits limits;
  limits.deadline_seconds = 20.0;
  limits.node_limit = 2'000'000;
  ResourceGovernor governor(limits);
  RedundancyOptions ropt;
  ropt.governor = &governor;
  ropt.max_patterns = 1024;
  RedundancyStats rstats;
  t0 = now_seconds();
  const Network reduced = remove_xor_redundancy(net, {}, ropt, &rstats);
  red.seconds = now_seconds() - t0;
  red.nodes = reduced.node_count();
  stages.push_back(red);
  std::printf("%-10s %8zu -> %zu nodes in %7.3fs (budget %s)\n", red.name,
              net.node_count(), red.nodes, red.seconds,
              governor.exhausted() ? "tripped" : "not tripped");

  const double rss = peak_rss_mb();
  const double sim_rate = sim.nodes_per_sec();
  std::printf("peak RSS %.1f MB\n", rss);

  bool gate_ok = true;
  if (gen.nodes < min_nodes) {
    std::printf("GATE FAILED: circuit has %zu nodes < required %zu\n",
                gen.nodes, min_nodes);
    gate_ok = false;
  }
  if (sim_rate < min_nodes_per_sec) {
    std::printf("GATE FAILED: simulate %.0f nodes/s < required %.0f\n",
                sim_rate, min_nodes_per_sec);
    gate_ok = false;
  } else {
    std::printf("gate ok: simulate %.2fM nodes/s >= %.2fM\n", sim_rate / 1e6,
                min_nodes_per_sec / 1e6);
  }
  if (rss > max_rss_mb) {
    std::printf("GATE FAILED: peak RSS %.1f MB > ceiling %.1f MB\n", rss,
                max_rss_mb);
    gate_ok = false;
  } else {
    std::printf("gate ok: peak RSS %.1f MB <= %.1f MB\n", rss, max_rss_mb);
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"network_scale\",\n"
               "  \"circuit\": \"%s\",\n"
               "  \"patterns\": %zu,\n"
               "  \"min_nodes\": %zu,\n"
               "  \"min_nodes_per_sec\": %.0f,\n"
               "  \"max_rss_mb\": %.1f,\n"
               "  \"peak_rss_mb\": %.1f,\n"
               "  \"gates2\": %zu,\n"
               "  \"depth\": %zu,\n"
               "  \"governor_tripped\": %s,\n  \"stages\": [\n",
               circuit.c_str(), num_patterns, min_nodes, min_nodes_per_sec,
               max_rss_mb,
               rss, ns.gates2, ns.depth,
               governor.exhausted() ? "true" : "false");
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const Stage& s = stages[i];
    std::fprintf(f,
                 "    {\"stage\": \"%s\", \"nodes\": %zu, \"seconds\": %.6f, "
                 "\"nodes_per_sec\": %.0f}%s\n",
                 s.name, s.nodes, s.seconds, s.nodes_per_sec(),
                 i + 1 < stages.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());

  return gate_ok ? 0 : 1;
}
