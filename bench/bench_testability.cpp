// Sections 1/5/6 testability claims: the synthesized networks are
// irredundant and the FPRM-derived pattern set (AZ ∪ AO ∪ OC ∪ SA1) is a
// complete single-stuck-at test set, derived without any test generation.
//
// Usage: bench_testability [circuit ...]
#include <cstdio>
#include <string>
#include <vector>

#include "baseline/script.hpp"
#include "benchgen/spec.hpp"
#include "core/redundancy.hpp"
#include "core/synth.hpp"
#include "testability/faults.hpp"

int main(int argc, char** argv) {
  using namespace rmsyn;
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty())
    names = {"z4ml", "adr4", "rd53", "rd73", "majority", "t481",
             "cm82a", "f2",   "cmb",  "co14"};

  std::printf("== Testability: FPRM pattern sets as complete stuck-at test "
              "sets ==\n");
  std::printf("%-10s | %8s %8s %9s | %10s | %9s\n", "circuit", "faults",
              "patterns", "coverage", "irredundant", "base cov");

  for (const auto& name : names) {
    const Benchmark bench = make_benchmark(name);
    SynthReport rep;
    const Network ours = synthesize(bench.spec, {}, &rep);
    const PatternSet tests = fprm_pattern_set(
        ours.pi_count(), rep.forms, /*include_sa1=*/true, std::size_t{1} << 16);
    const auto sim = fault_simulate(ours, tests);
    const bool irr = is_irredundant(ours);

    // For contrast: the same-size random pattern set on the baseline
    // network (conventional flows have no natural test set).
    BaselineReport brep;
    const Network base = baseline_synthesize(bench.spec, {}, &brep);
    const auto base_sim = fault_simulate(
        base, random_patterns(base.pi_count(), tests.num_patterns, 1234));

    std::printf("%-10s | %8zu %8zu %8.1f%% | %10s | %8.1f%%\n", name.c_str(),
                sim.total, tests.num_patterns, 100.0 * sim.coverage(),
                irr ? "yes" : "NO", 100.0 * base_sim.coverage());
  }
  std::printf("\n(paper: the method produces irredundant networks with a "
              "complete single-stuck-at test set derived from the FPRM "
              "cubes)\n");
  return 0;
}
