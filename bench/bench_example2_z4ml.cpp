// Example 2 of the paper: z4ml, the 3-bit adder with carry-in/out.
//
// Paper claims: 59 irredundant prime cubes in two-level SOP vs 32 FPRM
// cubes, all prime; our multilevel result 21 2-input gates vs SIS's best
// of 24, with much lower run time.
#include <cstdio>

#include "baseline/script.hpp"
#include "benchgen/spec.hpp"
#include "core/synth.hpp"
#include "fdd/fprm.hpp"
#include "network/stats.hpp"

int main() {
  using namespace rmsyn;
  const Benchmark bench = make_benchmark("z4ml");

  std::printf("== Example 2: z4ml (3-bit adder + carry-in, 7/4) ==\n\n");

  // FPRM cube counts per output under positive polarity (paper Section 2:
  // x26 = x3 ⊕ x6 ⊕ x1x4 ⊕ x1x7 ⊕ x4x7, every cube prime).
  SynthOptions pprm_opt;
  pprm_opt.polarity.exhaustive_limit = 0;
  pprm_opt.polarity.greedy_passes = 0;
  SynthReport pprm_rep;
  (void)synthesize(bench.spec, pprm_opt, &pprm_rep);
  std::size_t total_cubes = 0;
  std::printf("PPRM cube counts per output:");
  for (const auto c : pprm_rep.fprm_cube_counts) {
    std::printf(" %zu", c);
    total_cubes += c;
  }
  std::printf("  (total %zu; paper: 32)\n", total_cubes);
  std::size_t primes = 0, cubes = 0;
  for (const auto& form : pprm_rep.forms) {
    const auto flags = prime_flags(form);
    for (const bool p : flags) {
      ++cubes;
      if (p) ++primes;
    }
  }
  std::printf("Prime cubes: %zu of %zu (paper: all cubes of every output "
              "are prime)\n\n", primes, cubes);

  SynthReport rep;
  (void)synthesize(bench.spec, {}, &rep);
  std::printf("Our flow:     %zu 2-input gates (%zu lits) in %.3fs "
              "(paper: 21 gates / 42 lits)\n",
              rep.stats.gates2, rep.stats.lits, rep.seconds);

  BaselineReport brep;
  (void)baseline_synthesize(bench.spec, {}, &brep);
  std::printf("SOP baseline: %zu 2-input gates (%zu lits) in %.3fs "
              "(paper/SIS best: 24 gates / 48 lits)\n",
              brep.stats.gates2, brep.stats.lits, brep.seconds);

  std::printf("\nOurs <= baseline: %s\n",
              rep.stats.gates2 <= brep.stats.gates2 ? "yes" : "NO");
  return 0;
}
