// Extension experiment (beyond the paper, in its cited direction [1]/[16]):
// Kronecker FDD synthesis — per-variable choice among Shannon and the two
// Davio expansions — against the paper's pure-FPRM flow. Expected shape:
// ties on arithmetic circuits (Davio is right there), wins on control-
// dominated circuits where pure AND/XOR forms blow up.
//
// Usage: bench_extension_kfdd [circuit ...]
#include <cstdio>
#include <string>
#include <vector>

#include "benchgen/spec.hpp"
#include "core/redundancy.hpp"
#include "core/synth.hpp"
#include "fdd/kfdd.hpp"
#include "network/stats.hpp"

int main(int argc, char** argv) {
  using namespace rmsyn;
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty())
    names = {"z4ml", "adr4", "rd53",  "rd84", "t481",  "majority", "cm85a",
             "cmb",  "co14", "pcle",  "m181", "pm1",   "i1",       "shift",
             "cc",   "f2",   "squar5"};

  std::printf("== Extension: Kronecker FDD (Shannon+Davio mix) vs the "
              "paper's FPRM flow ==\n");
  std::printf("%-10s | %9s | %9s %9s | %s\n", "circuit", "FPRM lits",
              "KFDD lits", "+redund.", "Shannon vars chosen");

  for (const auto& name : names) {
    const Benchmark bench = make_benchmark(name);
    SynthReport rep;
    (void)synthesize(bench.spec, {}, &rep);

    std::vector<Expansion> chosen;
    Network kfdd = kfdd_synthesize(bench.spec, {}, &chosen);
    const std::size_t kfdd_lits = network_stats(kfdd).lits;
    // The Section-4 pass applies to KFDD networks too (pattern sets fall
    // back to random + exact decisions).
    kfdd = remove_xor_redundancy(kfdd, {}, {}, nullptr);
    const std::size_t kfdd_red_lits = network_stats(kfdd).lits;

    int shannon = 0;
    for (const auto e : chosen)
      if (e == Expansion::Shannon) ++shannon;
    std::printf("%-10s | %9zu | %9zu %9zu | %d of %zu\n", name.c_str(),
                rep.stats.lits, kfdd_lits, kfdd_red_lits, shannon,
                chosen.size());
  }
  std::printf("\n(The production flow could take min(FPRM, KFDD) per "
              "circuit; this table shows why the paper's Davio-only choice "
              "is the right default for arithmetic.)\n");
  return 0;
}
