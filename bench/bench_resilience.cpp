// Resilience overhead bench: runs a batch sweep once with the crash-safety
// plumbing off (no journal, no retries, no fault-plan hooks armed) and once
// with all of it on (journal appends + fsync per row, retry loop armed with
// --retries 2 that never fires, error-taxonomy classification active), and
// reports the wall-clock overhead. The acceptance bar is < 2%: the
// resilience layer must be free when nothing fails.
//
// Emits a machine-readable BENCH_resilience.json for CI tracking.
//
// Usage: bench_resilience [--out file.json] [--max-overhead pct]
//                         [circuit ...]
//        (default: BENCH_resilience.json, all Table-2 circuits, 2% gate;
//         --max-overhead 0 disables the gate for very noisy hosts)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sched/batch.hpp"
#include "sched/journal.hpp"
#include "util/stopwatch.hpp"

namespace {

double run_batch(const std::vector<rmsyn::Benchmark>& benches,
                 const rmsyn::BatchOptions& opt, std::size_t* lits_out) {
  rmsyn::BatchRunner runner(opt);
  rmsyn::Stopwatch sw;
  const rmsyn::BatchResult result = runner.run(benches);
  const double seconds = sw.seconds();
  if (lits_out != nullptr) {
    *lits_out = 0;
    for (const rmsyn::FlowRow& row : result.rows) *lits_out += row.ours_lits;
  }
  return seconds;
}

} // namespace

int main(int argc, char** argv) {
  using namespace rmsyn;
  std::string path = "BENCH_resilience.json";
  double max_overhead_pct = 2.0;
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) path = argv[++i];
    else if (arg == "--max-overhead" && i + 1 < argc)
      max_overhead_pct = std::atof(argv[++i]);
    else names.emplace_back(arg);
  }
  if (names.empty()) names = benchmark_names();

  std::vector<Benchmark> benches;
  benches.reserve(names.size());
  for (const auto& n : names) benches.push_back(make_benchmark(n));

  BatchOptions plain;
  plain.flow.run_mapping = false;
  plain.flow.run_power = false;

  BatchOptions armed = plain;
  armed.retries = 2; // retry loop active per row; never fires on a clean run
  const std::string journal_path = path + ".journal.tmp";
  armed.journal_path = journal_path;

  constexpr int kReps = 3; // keep the min per config: robust against noise
  double plain_seconds = 1e30, armed_seconds = 1e30;
  std::size_t plain_lits = 0, armed_lits = 0;
  // Interleave configs so cache/frequency drift hits both equally.
  for (int rep = 0; rep < kReps; ++rep) {
    const double tp = run_batch(benches, plain, &plain_lits);
    if (tp < plain_seconds) plain_seconds = tp;
    std::remove(journal_path.c_str()); // each armed rep journals fresh
    const double ta = run_batch(benches, armed, &armed_lits);
    if (ta < armed_seconds) armed_seconds = ta;
  }
  std::remove(journal_path.c_str());

  const bool lits_match = plain_lits == armed_lits;
  const double overhead_pct =
      plain_seconds > 0 ? 100.0 * (armed_seconds / plain_seconds - 1.0) : 0.0;
  std::printf("== Resilience overhead (batch sweep, both flows) ==\n");
  std::printf("circuits: %zu   plain %.3fs   journal+retries %.3fs   "
              "overhead %.2f%% (target < 2%%)\n",
              benches.size(), plain_seconds, armed_seconds, overhead_pct);
  if (!lits_match)
    std::printf("WARNING: arming the resilience layer changed a result — "
                "it must be observation-only on clean runs\n");

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"resilience\",\n  \"overhead_pct\": %.3f,\n"
               "  \"plain_seconds\": %.6f,\n  \"armed_seconds\": %.6f,\n"
               "  \"circuits\": %zu,\n  \"results_identical\": %s\n}\n",
               overhead_pct, plain_seconds, armed_seconds, benches.size(),
               lits_match ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());

  // Gate: journaling + retry plumbing must not change results and must
  // stay under the overhead budget on a clean run.
  if (!lits_match) return 1;
  if (max_overhead_pct > 0.0 && overhead_pct > max_overhead_pct) {
    std::fprintf(stderr,
                 "FAIL: resilience overhead %.2f%% exceeds the %.2f%% "
                 "budget\n",
                 overhead_pct, max_overhead_pct);
    return 1;
  }
  return 0;
}
