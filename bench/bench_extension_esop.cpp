// Extension experiment (Section 3/6 future work, after Sasao [17][18]):
// general ESOP minimization (exorlink) instead of fixed-polarity forms.
// ESOPs are a strict superset of FPRM forms, so the cube counts can only
// shrink; the question the paper leaves open is how much that buys after
// factoring and redundancy removal.
//
// Usage: bench_extension_esop [circuit ...]
#include <cstdio>
#include <string>
#include <vector>

#include "benchgen/spec.hpp"
#include "core/redundancy.hpp"
#include "core/synth.hpp"
#include "fdd/esop.hpp"
#include "network/stats.hpp"

int main(int argc, char** argv) {
  using namespace rmsyn;
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty())
    names = {"z4ml", "adr4", "rd53", "rd73", "rd84",   "9sym",     "t481",
             "f2",   "cmb",  "co14", "f51m", "squar5", "majority", "cm85a",
             "bcd-div3"};

  std::printf("== Extension: ESOP (exorlink) vs fixed-polarity FPRM ==\n");
  std::printf("%-10s | %10s %10s | %9s | %9s %9s\n", "circuit", "FPRM cubes",
              "ESOP cubes", "FPRM lits", "ESOP lits", "+redund.");

  for (const auto& name : names) {
    const Benchmark bench = make_benchmark(name);
    SynthReport rep;
    (void)synthesize(bench.spec, {}, &rep);
    std::size_t fprm_cubes = 0;
    for (const auto c : rep.fprm_cube_counts) fprm_cubes += c;

    std::vector<std::size_t> esop_counts;
    Network esop_net = esop_synthesize(bench.spec, {}, &esop_counts);
    std::size_t esop_cubes = 0;
    for (const auto c : esop_counts) esop_cubes += c;
    const std::size_t esop_lits = network_stats(esop_net).lits;
    esop_net = remove_xor_redundancy(esop_net, {}, {}, nullptr);
    const std::size_t esop_red = network_stats(esop_net).lits;

    std::printf("%-10s | %10zu %10zu | %9zu | %9zu %9zu\n", name.c_str(),
                fprm_cubes, esop_cubes, rep.stats.lits, esop_lits, esop_red);
  }
  std::printf("\n(FPRM numbers are the full flow's — including cross-output "
              "sharing and pattern-driven redundancy removal; the ESOP\n"
              "column factors each output independently, so its wins show "
              "up mostly on single-output mixed-polarity functions.)\n");
  return 0;
}
