// Ablation (Section 3): factorization Method 1 (cube method) vs Method 2
// (OFDD construction). The paper: "the results are comparable but the
// second method has better results on a few more test cases."
//
// Usage: bench_ablation_methods [circuit ...]
#include <cstdio>
#include <string>
#include <vector>

#include "benchgen/spec.hpp"
#include "core/synth.hpp"

int main(int argc, char** argv) {
  using namespace rmsyn;
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty())
    names = {"z4ml", "adr4", "add6",  "rd53",   "rd73", "rd84",  "9sym",
             "t481", "f2",   "mlp4",  "squar5", "sqr6", "cm82a", "majority",
             "cmb",  "co14", "my_adder"};

  std::printf("== Ablation: cube method (1) vs OFDD method (2) ==\n");
  std::printf("%-10s | %9s %9s | %9s %9s | %s\n", "circuit", "M1 lits",
              "M1 t(s)", "M2 lits", "M2 t(s)", "winner");

  int m1_wins = 0, m2_wins = 0, ties = 0;
  for (const auto& name : names) {
    const Benchmark bench = make_benchmark(name);
    SynthOptions o1, o2;
    o1.method = FactorMethod::Cubes;
    o2.method = FactorMethod::Ofdd;
    SynthReport r1, r2;
    (void)synthesize(bench.spec, o1, &r1);
    (void)synthesize(bench.spec, o2, &r2);
    const char* winner = "tie";
    if (r1.stats.lits < r2.stats.lits) {
      winner = "M1";
      ++m1_wins;
    } else if (r2.stats.lits < r1.stats.lits) {
      winner = "M2";
      ++m2_wins;
    } else {
      ++ties;
    }
    std::printf("%-10s | %9zu %9.3f | %9zu %9.3f | %s\n", name.c_str(),
                r1.stats.lits, r1.seconds, r2.stats.lits, r2.seconds, winner);
  }
  std::printf("\nMethod 1 wins: %d, Method 2 wins: %d, ties: %d "
              "(paper: comparable, Method 2 better on a few more cases)\n",
              m1_wins, m2_wins, ties);
  return 0;
}
