// Example 1 of the paper: t481.
//
// Paper claims: 481 irredundant prime cubes in two-level SOP; 16 cubes in
// FPRM form; SIS `rugged` needs 1372 CPU-seconds for a 237-gate (474-lit)
// result; the FPRM flow produces 25 2-input AND/OR gates (50 lits) after
// redundancy removal.
#include <cstdio>

#include "baseline/script.hpp"
#include "benchgen/spec.hpp"
#include "core/synth.hpp"
#include "equiv/equiv.hpp"
#include "network/stats.hpp"

int main() {
  using namespace rmsyn;
  const Benchmark bench = make_benchmark("t481");

  std::printf("== Example 1: t481 (16 inputs, 1 output) ==\n\n");

  // FPRM compactness.
  SynthReport rep;
  const Network ours = synthesize(bench.spec, {}, &rep);
  std::printf("FPRM cubes found: %zu (paper: 16 under its polarity; the\n"
              "  polarity search may find an even smaller form)\n",
              rep.fprm_cube_counts.at(0));

  const auto so = network_stats(ours);
  std::printf("Our flow:      %zu 2-input AND/OR gates (%zu lits) in %.3fs "
              "(paper: 25 gates / 50 lits, 0.69s)\n",
              so.gates2, so.lits, rep.seconds);

  BaselineReport brep;
  const Network base = baseline_synthesize(bench.spec, {}, &brep);
  const auto sb = network_stats(base);
  std::printf("SOP baseline:  %zu 2-input AND/OR gates (%zu lits) in %.3fs "
              "(paper/SIS rugged: 237 gates / 474 lits, 1372s)\n",
              sb.gates2, sb.lits, brep.seconds);

  std::printf("\nWin factor (lits): %.1fx   run-time factor: %.1fx\n",
              static_cast<double>(sb.lits) / static_cast<double>(so.lits),
              brep.seconds / (rep.seconds > 0 ? rep.seconds : 1e-9));

  const auto check = check_equivalence(ours, base);
  std::printf("Cross-check (our network == baseline network): %s\n",
              check.equivalent ? "EQUIVALENT" : check.reason.c_str());
  return check.equivalent ? 0 : 1;
}
