// Section 4's efficiency claim, quantified: "The redundancy removal process
// requires only to simulate a small and decidable set of primary input
// patterns." This harness scores the paper's cube-parity enumeration (the
// procedure the paper sketches but cuts for space; see
// core/parity_analysis.hpp) against the exact BDD decision on per-output
// XOR trees:
//
//   gates     — 2-input XOR gates in the balanced cube tree
//   oc-open   — gates with >= 1 input pattern not yet demonstrated by the
//               AZ/AO/OC seed patterns alone (everything else is settled by
//               Properties 8/9 with zero extra work)
//   decided   — of those, gates the bounded parity enumeration settles
//               (either finds the missing pattern or the exact check
//               confirms it unreachable)
//
// Usage: bench_parity_analysis [circuit ...]
#include <cstdio>
#include <string>
#include <vector>

#include "benchgen/spec.hpp"
#include "core/parity_analysis.hpp"
#include "equiv/equiv.hpp"

int main(int argc, char** argv) {
  using namespace rmsyn;
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty())
    names = {"z4ml", "adr4", "rd53", "rd73", "majority",
             "t481", "9sym", "f2",   "cm82a"};

  std::printf("== Section 4: parity-of-cubes controllability vs exact ==\n");
  std::printf("%-10s | %6s %8s %8s %8s | %s\n", "circuit", "gates", "oc-open",
              "decided", "exact=", "agreement");

  for (const auto& name : names) {
    const Benchmark bench = make_benchmark(name);
    BddManager mgr(static_cast<int>(bench.spec.pi_count()));
    const auto outs = output_bdds(mgr, bench.spec);

    std::size_t gates = 0, oc_open = 0, decided = 0, agree = 0, total = 0;
    for (const BddRef f : outs) {
      if (mgr.is_terminal(f)) continue;
      BitVec pol(static_cast<std::size_t>(bench.spec.pi_count()));
      pol.set_all();
      const FprmForm form = extract_fprm(
          mgr, build_ofdd(mgr, f, pol),
          static_cast<int>(bench.spec.pi_count()), 4096);
      if (form.truncated) continue;
      const AnnotatedXorTree tree = build_annotated_tree(form);

      // Seed-only verdicts (AZ/AO/OC = subsets of size <= 1).
      ParityAnalysisOptions seeds;
      seeds.max_subset = 1;
      const auto seed_v = analyze_tree(tree, seeds);
      const auto full_v = analyze_tree(tree);

      BddManager lm(static_cast<int>(tree.net.pi_count()));
      const auto fn = node_bdds(lm, tree.net);
      for (std::size_t k = 0; k < tree.xor_gates.size(); ++k) {
        ++gates;
        uint8_t exact = 0;
        const auto& fi = tree.net.fanins(tree.xor_gates[k]);
        for (unsigned idx = 0; idx < 4; ++idx) {
          const BddRef eg = (idx & 2u) ? fn[fi[0]] : lm.bdd_not(fn[fi[0]]);
          const BddRef eh = (idx & 1u) ? fn[fi[1]] : lm.bdd_not(fn[fi[1]]);
          if (lm.bdd_and(eg, eh) != lm.bdd_false()) exact |= (1u << idx);
        }
        ++total;
        if (full_v[k].achieved == exact) ++agree;
        if (seed_v[k].achieved != 0b1111) {
          ++oc_open;
          if (full_v[k].achieved == exact) ++decided;
        }
      }
    }
    std::printf("%-10s | %6zu %8zu %8zu %8zu | %5.1f%%\n", name.c_str(), gates,
                oc_open, decided, agree,
                total == 0 ? 100.0
                           : 100.0 * static_cast<double>(agree) /
                                 static_cast<double>(total));
  }
  std::printf("\n(agreement = gates where the bounded parity enumeration "
              "matches the exact reachable-pattern set; 100%% means no BDD "
              "fallback was needed)\n");
  return 0;
}
