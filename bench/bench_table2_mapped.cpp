// Table 2, columns 5-8 + improve%lits: gate and literal counts after
// technology mapping onto the mcnc-flavoured library (2-input XOR/XNOR,
// AND/OR, NAND/NOR up to 4 inputs, AOI/OAI complex cells).
//
// Paper reference points: arithmetic subset 4282 -> 3112 mapped literals
// (average improvement 17.3%); all circuits 6815 -> 5532 (11.9%).
//
// Usage: bench_table2_mapped [circuit ...]
#include <cstdio>
#include <string>
#include <vector>

#include "flow/flow.hpp"

int main(int argc, char** argv) {
  using namespace rmsyn;
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty()) names = benchmark_names();

  std::printf("== Table 2 (mapped): gates / literals after technology "
              "mapping ==\n");
  std::printf("%-10s | %7s %7s | %7s %7s | %10s\n", "circuit", "SIS'gts",
              "SIS'lit", "our gts", "our lit", "improve%%lit");

  std::vector<FlowRow> rows;
  FlowOptions opt;
  opt.run_power = false;
  for (const auto& name : names) {
    const FlowRow r = run_flow(name, opt);
    std::printf("%-10s | %7zu %7zu | %7zu %7zu | %10.1f %s\n",
                r.circuit.c_str(), r.base_gates, r.base_map_lits, r.ours_gates,
                r.ours_map_lits, r.improve_lits_pct(),
                r.arithmetic ? "[arith]" : "");
    rows.push_back(r);
  }

  double arith_impr = 0, all_impr = 0;
  std::size_t n_arith = 0;
  std::size_t ab = 0, ao = 0, bb = 0, bo = 0;
  for (const auto& r : rows) {
    all_impr += r.improve_lits_pct();
    bb += r.base_map_lits;
    bo += r.ours_map_lits;
    if (r.arithmetic) {
      arith_impr += r.improve_lits_pct();
      ++n_arith;
      ab += r.base_map_lits;
      ao += r.ours_map_lits;
    }
  }
  if (n_arith > 0)
    std::printf("\nArithmetic subset: %zu -> %zu mapped lits, average "
                "improvement %.1f%% (paper: 4282 -> 3112, 17.3%%)\n",
                ab, ao, arith_impr / static_cast<double>(n_arith));
  std::printf("All circuits: %zu -> %zu mapped lits, average improvement "
              "%.1f%% (paper: 6815 -> 5532, 11.9%%)\n",
              bb, bo, all_impr / static_cast<double>(rows.size()));
  return 0;
}
