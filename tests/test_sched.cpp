// Scheduler subsystem tests: work-stealing pool semantics, the batch
// runner's serial/parallel determinism contract, cancellation, and the
// benchmark registry the batch layer serves from.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "benchgen/spec.hpp"
#include "equiv/equiv.hpp"
#include "fdd/fprm.hpp"
#include "fdd/kfdd.hpp"
#include "flow/flow.hpp"
#include "network/stats.hpp"
#include "network/transform.hpp"
#include "sched/batch.hpp"
#include "sched/pool.hpp"
#include "util/governor.hpp"

namespace rmsyn {
namespace {

TEST(ThreadPool, RunsEveryTaskOnceAcrossWorkerCounts) {
  for (const int workers : {0, 1, 3}) {
    ThreadPool pool(workers);
    EXPECT_EQ(pool.worker_count(), workers);
    EXPECT_EQ(pool.slot_count(), workers + 1);
    std::atomic<int> ran{0};
    std::vector<Future<int>> futs;
    for (int i = 0; i < 500; ++i) {
      futs.push_back(pool.submit([i, &ran] {
        ran.fetch_add(1, std::memory_order_relaxed);
        return i * i;
      }));
    }
    long long sum = 0;
    for (auto& f : futs) sum += pool.wait(f);
    EXPECT_EQ(ran.load(), 500);
    long long expect = 0;
    for (int i = 0; i < 500; ++i) expect += static_cast<long long>(i) * i;
    EXPECT_EQ(sum, expect);
    const SchedStats s = pool.stats();
    EXPECT_EQ(s.workers, workers);
    EXPECT_EQ(s.per_worker.size(), static_cast<std::size_t>(workers) + 1);
    EXPECT_EQ(s.total_tasks(), 500u);
  }
}

TEST(ThreadPool, NestedFanOutDoesNotDeadlock) {
  // A level-1 task fans level-2 subtasks onto the same pool and waits for
  // them from inside the pool — the helping wait must keep the queue
  // moving even with fewer workers than blocked waiters.
  ThreadPool pool(2);
  std::vector<Future<int>> outer;
  for (int i = 0; i < 16; ++i) {
    outer.push_back(pool.submit([i, &pool] {
      std::vector<Future<int>> inner;
      for (int j = 0; j < 8; ++j)
        inner.push_back(pool.submit([i, j] { return i * 100 + j; }));
      int sum = 0;
      for (auto& f : inner) sum += pool.wait(f);
      return sum;
    }));
  }
  int total = 0;
  for (auto& f : outer) total += pool.wait(f);
  int expect = 0;
  for (int i = 0; i < 16; ++i)
    for (int j = 0; j < 8; ++j) expect += i * 100 + j;
  EXPECT_EQ(total, expect);
}

TEST(ThreadPool, TaskExceptionsPropagateThroughWait) {
  ThreadPool pool(1);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(pool.wait(ok), 7);
  EXPECT_THROW(pool.wait(bad), std::runtime_error);
}

TEST(ThreadPool, StealStressKeepsEveryResult) {
  // Many tiny tasks submitted from a worker (so they land on one deque)
  // force the other workers to steal. Correctness, not schedule, is
  // asserted; the steal counters are only sanity-checked for consistency.
  ThreadPool pool(3);
  auto root = pool.submit([&pool] {
    std::vector<Future<int>> futs;
    for (int i = 0; i < 2000; ++i)
      futs.push_back(pool.submit([i] { return i; }));
    long long sum = 0;
    for (auto& f : futs) sum += pool.wait(f);
    return static_cast<int>(sum % 1000000007LL);
  });
  const int got = pool.wait(root);
  long long expect = 0;
  for (int i = 0; i < 2000; ++i) expect += i;
  EXPECT_EQ(got, static_cast<int>(expect % 1000000007LL));
  const SchedStats s = pool.stats();
  EXPECT_EQ(s.total_tasks(), 2001u);
  EXPECT_GE(s.total_steals(), s.total_tasks_stolen() > 0 ? 1u : 0u);
}

TEST(BenchgenRegistry, EveryCircuitConstructsWithAdvertisedIo) {
  // The batch layer serves from this registry; a circuit that fails to
  // construct or lies about its interface would poison whole manifests.
  const auto& names = benchmark_names();
  ASSERT_FALSE(names.empty());
  for (const auto& name : names) {
    SCOPED_TRACE(name);
    ASSERT_TRUE(has_benchmark(name));
    const Benchmark b = make_benchmark(name);
    EXPECT_EQ(b.name, name);
    EXPECT_EQ(static_cast<int>(b.spec.pi_count()), b.num_inputs);
    EXPECT_EQ(static_cast<int>(b.spec.po_count()), b.num_outputs);
    EXPECT_FALSE(b.description.empty());
  }
}

// Everything the table prints except wall-clock and DD counters, which are
// explicitly outside the determinism contract (DESIGN.md §8).
void expect_rows_identical(const FlowRow& a, const FlowRow& b) {
  EXPECT_EQ(a.circuit, b.circuit);
  EXPECT_EQ(a.base_lits, b.base_lits);
  EXPECT_EQ(a.ours_lits, b.ours_lits);
  EXPECT_EQ(a.base_gates, b.base_gates);
  EXPECT_EQ(a.base_map_lits, b.base_map_lits);
  EXPECT_EQ(a.ours_gates, b.ours_gates);
  EXPECT_EQ(a.ours_map_lits, b.ours_map_lits);
  EXPECT_EQ(a.base_power, b.base_power);
  EXPECT_EQ(a.ours_power, b.ours_power);
  EXPECT_EQ(a.ours_status.to_string(), b.ours_status.to_string());
  EXPECT_EQ(a.base_status.to_string(), b.base_status.to_string());
}

TEST(BatchRunner, ParallelRowsBitIdenticalToSerialForEveryBenchmark) {
  const std::vector<std::string> names = benchmark_names();
  const FlowOptions fopt;
  const BatchResult serial = run_flows(names, fopt, /*jobs=*/1);
  const BatchResult parallel = run_flows(names, fopt, /*jobs=*/4);
  ASSERT_EQ(serial.rows.size(), names.size());
  ASSERT_EQ(parallel.rows.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    SCOPED_TRACE(names[i]);
    expect_rows_identical(serial.rows[i], parallel.rows[i]);
  }
  EXPECT_EQ(serial.worst.to_string(), parallel.worst.to_string());
  // The parallel run actually used the pool.
  EXPECT_EQ(parallel.sched.workers, 3);
  EXPECT_GT(parallel.sched.total_tasks(), 0u);
}

TEST(BatchRunner, CancellationKeepsCompletedRowsIntact) {
  const std::vector<std::string> names = {"majority", "f2", "z4ml", "rd53"};
  std::vector<Benchmark> benches;
  for (const auto& n : names) benches.push_back(make_benchmark(n));

  BatchOptions bopt; // jobs=1: rows settle in input order, so the
                     // cancellation point is deterministic
  BatchRunner runner(bopt);
  std::size_t settled = 0;
  runner.on_row = [&](const FlowRow&, std::size_t) {
    if (++settled == 2) runner.cancel();
  };
  const BatchResult got = runner.run(benches);
  ASSERT_EQ(got.rows.size(), 4u);

  // The two rows that settled before the cancel are real results,
  // identical to standalone runs; the rest never started.
  for (std::size_t i = 0; i < 2; ++i) {
    SCOPED_TRACE(names[i]);
    expect_rows_identical(got.rows[i], run_flow(names[i], bopt.flow));
  }
  for (std::size_t i = 2; i < 4; ++i) {
    SCOPED_TRACE(names[i]);
    EXPECT_TRUE(got.rows[i].ours_status.is_failed());
    EXPECT_EQ(got.rows[i].ours_status.stage, "batch");
    EXPECT_EQ(got.rows[i].ours_status.reason, "cancelled");
    EXPECT_EQ(got.rows[i].ours_lits, 0u);
    EXPECT_EQ(got.rows[i].circuit, names[i]);
  }
  EXPECT_TRUE(got.worst.is_failed());
}

TEST(BatchRunner, KeepGoingFalseCancelsAfterFirstFailure) {
  // An absurdly small node budget fails every circuit; without keep_going
  // the first failure must cancel the remainder rather than burn budget.
  BatchOptions bopt;
  bopt.keep_going = false;
  bopt.flow.limits.node_limit = 1;
  BatchRunner runner(bopt);
  std::vector<Benchmark> benches;
  for (const auto& n : {"majority", "f2", "z4ml"})
    benches.push_back(make_benchmark(n));
  const BatchResult got = runner.run(benches);
  ASSERT_EQ(got.rows.size(), 3u);
  EXPECT_TRUE(got.worst.is_failed());
  // Later rows were cancelled, not run: their stage is the batch marker.
  EXPECT_EQ(got.rows[2].ours_status.stage, "batch");
}

TEST(PolaritySearch, ParallelExhaustiveMatchesSerial) {
  // rd73 has 7-variable outputs → 128 masks, above the fan-out threshold.
  const Benchmark bench = make_benchmark("rd73");
  BddManager mgr(static_cast<int>(bench.spec.pi_count()));
  const std::vector<BddRef> outs = output_bdds(mgr, bench.spec);

  PolarityOptions serial_opt;
  const BitVec serial_multi = best_polarity_multi(mgr, outs, serial_opt);
  const BitVec serial_single = best_polarity(mgr, outs[0], serial_opt);

  ThreadPool pool(3);
  PolarityOptions par_opt;
  par_opt.pool = &pool;
  EXPECT_TRUE(best_polarity_multi(mgr, outs, par_opt) == serial_multi);
  EXPECT_TRUE(best_polarity(mgr, outs[0], par_opt) == serial_single);
}

TEST(KfddSearch, ParallelDecompositionMatchesSerial) {
  for (const char* name : {"f2", "rd53"}) {
    SCOPED_TRACE(name);
    const Benchmark bench = make_benchmark(name);
    KfddSearchOptions serial_opt;
    std::vector<Expansion> serial_exp;
    const Network serial_net =
        kfdd_synthesize(bench.spec, serial_opt, &serial_exp);

    ThreadPool pool(3);
    KfddSearchOptions par_opt;
    par_opt.pool = &pool;
    std::vector<Expansion> par_exp;
    const Network par_net = kfdd_synthesize(bench.spec, par_opt, &par_exp);

    EXPECT_EQ(serial_exp, par_exp);
    EXPECT_EQ(network_stats(serial_net).lits, network_stats(par_net).lits);
  }
}

TEST(Governor, ConcurrentPollsTripExactlyOnceAndStay) {
  ResourceLimits limits;
  limits.step_limit = 10'000;
  ResourceGovernor gov(limits);
  std::atomic<int> false_returns{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 40'000; ++i)
        if (!gov.poll()) false_returns.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(gov.exhausted());
  EXPECT_GT(false_returns.load(), 0);
  EXPECT_EQ(gov.trip_reason(), "step budget exhausted");
  EXPECT_EQ(gov.trip_kind(), TripKind::StepLimit);
  // Tripped stays tripped from every thread's point of view.
  EXPECT_FALSE(gov.poll());
}

TEST(Governor, SharedBudgetCancelBroadcastsAcrossGovernors) {
  SharedBudget budget;
  ResourceLimits limits;
  limits.shared = &budget;
  ResourceGovernor a(limits), b(limits);
  EXPECT_FALSE(a.exhausted());
  budget.cancel();
  // The cancel is noticed on the next slow poll (every 256th fast poll).
  for (int i = 0; i < 600 && !a.exhausted(); ++i) a.poll();
  for (int i = 0; i < 600 && !b.exhausted(); ++i) b.poll();
  EXPECT_TRUE(a.exhausted());
  EXPECT_TRUE(b.exhausted());
  EXPECT_EQ(a.trip_reason(), "batch cancelled");
  EXPECT_EQ(b.trip_reason(), "batch cancelled");
}

TEST(Governor, SharedAllocationPoolTripsWhenDry) {
  SharedBudget budget;
  budget.set_allocation_pool(2 * SharedBudget::kAllocationGrain);
  ResourceLimits limits;
  limits.shared = &budget;
  ResourceGovernor gov(limits);
  // Single-threaded, the pool grants exactly its size before tripping
  // (slices are carved whole, so no fractional grain is left behind).
  uint64_t granted = 0;
  while (gov.count_allocation()) {
    ++granted;
    ASSERT_LT(granted, 100'000u) << "pool never tripped";
  }
  EXPECT_EQ(granted,
            static_cast<uint64_t>(2 * SharedBudget::kAllocationGrain));
  EXPECT_TRUE(gov.exhausted());
  EXPECT_EQ(gov.trip_reason(), "shared allocation pool exhausted");
  // A batch-scoped budget is never re-armed: the ladder's fallback slice
  // must re-trip on the next allocation.
  gov.grant_fallback();
  EXPECT_FALSE(gov.count_allocation());
}

} // namespace
} // namespace rmsyn
