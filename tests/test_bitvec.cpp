#include "util/bitvec.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace rmsyn {
namespace {

TEST(BitVec, EmptyAndBasicOps) {
  BitVec b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_EQ(b.first_set(), BitVec::npos);

  BitVec c(10);
  EXPECT_EQ(c.size(), 10u);
  EXPECT_TRUE(c.none());
  c.set(3);
  c.set(7);
  EXPECT_TRUE(c.get(3));
  EXPECT_FALSE(c.get(4));
  EXPECT_EQ(c.count(), 2u);
  EXPECT_EQ(c.first_set(), 3u);
  EXPECT_EQ(c.next_set(4), 7u);
  EXPECT_EQ(c.next_set(8), BitVec::npos);
  c.flip(3);
  EXPECT_FALSE(c.get(3));
}

TEST(BitVec, SetAllRespectsWidth) {
  BitVec b(70);
  b.set_all();
  EXPECT_EQ(b.count(), 70u);
  b.clear_all();
  EXPECT_TRUE(b.none());
  BitVec c(64, true);
  EXPECT_EQ(c.count(), 64u);
}

TEST(BitVec, SubsetAndDisjoint) {
  BitVec a(100), b(100);
  a.set(5);
  a.set(70);
  b.set(5);
  b.set(70);
  b.set(99);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_FALSE(a.disjoint(b));
  BitVec c(100);
  c.set(1);
  EXPECT_TRUE(a.disjoint(c));
}

TEST(BitVec, BooleanOperators) {
  BitVec a(130), b(130);
  a.set(0);
  a.set(128);
  b.set(128);
  b.set(129);
  const BitVec andv = a & b;
  EXPECT_EQ(andv.count(), 1u);
  EXPECT_TRUE(andv.get(128));
  const BitVec orv = a | b;
  EXPECT_EQ(orv.count(), 3u);
  const BitVec xorv = a ^ b;
  EXPECT_EQ(xorv.count(), 2u);
  EXPECT_TRUE(xorv.get(0));
  EXPECT_TRUE(xorv.get(129));
}

TEST(BitVec, ResizeGrowAndShrinkSemantics) {
  BitVec a(10);
  a.set(9);
  a.resize(100);
  EXPECT_TRUE(a.get(9));
  EXPECT_EQ(a.count(), 1u);
  a.resize(5);
  EXPECT_EQ(a.size(), 5u);
  EXPECT_TRUE(a.none());
}

TEST(BitVec, OrderingAndHashConsistency) {
  BitVec a(66), b(66);
  a.set(65);
  b.set(0);
  EXPECT_TRUE(b < a); // high word dominates
  EXPECT_FALSE(a < b);
  EXPECT_NE(a.hash(), b.hash());
  BitVec c = a;
  EXPECT_EQ(a.hash(), c.hash());
  EXPECT_EQ(a, c);
}

TEST(BitVec, ToStringLsbFirst) {
  BitVec a(4);
  a.set(0);
  a.set(2);
  EXPECT_EQ(a.to_string(), "1010");
}

class BitVecRandom : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVecRandom, NextSetEnumeratesExactlySetBits) {
  const std::size_t width = GetParam();
  Rng rng(width * 7919 + 3);
  BitVec b(width);
  std::vector<std::size_t> expected;
  for (std::size_t i = 0; i < width; ++i) {
    if (rng.chance(1, 3)) {
      b.set(i);
      expected.push_back(i);
    }
  }
  std::vector<std::size_t> got;
  for (std::size_t i = b.first_set(); i != BitVec::npos; i = b.next_set(i + 1))
    got.push_back(i);
  EXPECT_EQ(got, expected);
  EXPECT_EQ(b.count(), expected.size());
}

TEST_P(BitVecRandom, DeMorganProperty) {
  const std::size_t width = GetParam();
  Rng rng(width + 11);
  BitVec a(width), b(width), ones(width);
  ones.set_all();
  for (std::size_t i = 0; i < width; ++i) {
    if (rng.flip()) a.set(i);
    if (rng.flip()) b.set(i);
  }
  // ~(a & b) == ~a | ~b  via XOR with ones.
  const BitVec lhs = (a & b) ^ ones;
  const BitVec rhs = (a ^ ones) | (b ^ ones);
  EXPECT_EQ(lhs, rhs);
}

INSTANTIATE_TEST_SUITE_P(Widths, BitVecRandom,
                         ::testing::Values(1, 7, 63, 64, 65, 127, 128, 200, 513));

TEST(BitVec, TailInvariantHoldsAtConstructionAndAfterMaskTail) {
  // The SIMD kernels rely on the unused bits of the final word being zero
  // (count/any/differs read whole words); every constructor and mutator
  // must uphold it, and raw data() writers restore it via mask_tail().
  for (const std::size_t width : {1u, 63u, 64u, 65u, 130u}) {
    BitVec v(width);
    v.assert_tail_clear();
    v.set_all();
    v.assert_tail_clear();
    EXPECT_EQ(v.count(), width);
    v.flip_all();
    v.assert_tail_clear();
    EXPECT_EQ(v.count(), 0u);

    // The raw-writer pattern: scribble whole words through data(), then
    // mask_tail() before handing the vector back to anything that counts.
    for (std::size_t w = 0; w < v.words(); ++w) v.data()[w] = ~uint64_t{0};
    v.mask_tail();
    v.assert_tail_clear();
    EXPECT_EQ(v.count(), width);
  }
}

TEST(BitVec, DiffersMatchesInequalityOnEqualSizes) {
  Rng rng(0xD1FF);
  for (const std::size_t width : {1u, 64u, 65u, 200u}) {
    BitVec a(width), b(width);
    for (std::size_t i = 0; i < width; ++i) {
      if (rng.flip()) a.set(i);
      if (rng.flip()) b.set(i);
    }
    EXPECT_EQ(a.differs(b), !(a == b));
    EXPECT_FALSE(a.differs(a));
    BitVec c = a;
    EXPECT_FALSE(a.differs(c));
    // A single flipped bit anywhere — including the final partial word —
    // must register.
    c.flip(width - 1);
    EXPECT_TRUE(a.differs(c));
  }
}

TEST(BitVec, CountExactAtNonWordMultipleSizes) {
  for (const std::size_t width : {1u, 31u, 63u, 65u, 127u, 321u}) {
    BitVec v(width);
    v.set_all();
    EXPECT_EQ(v.count(), width) << width;
    v.flip_all();
    EXPECT_EQ(v.count(), 0u) << width;
    v.set(width - 1);
    EXPECT_EQ(v.count(), 1u) << width;
    EXPECT_TRUE(v.any());
  }
}

} // namespace
} // namespace rmsyn
