// Cut-rewriting engine tests: NPN canonicalization, the rewrite database,
// priority-cut enumeration, and the DAG-aware replacement pass (equivalence,
// monotone cost, serial-vs-pool bit-identity, governed unwinding).
#include "rewrite/rewrite.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "benchgen/spec.hpp"
#include "equiv/equiv.hpp"
#include "network/io.hpp"
#include "network/stats.hpp"
#include "network/transform.hpp"
#include "rewrite/cuts.hpp"
#include "rewrite/database.hpp"
#include "rewrite/npn.hpp"
#include "sched/pool.hpp"
#include "util/errors.hpp"
#include "util/governor.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace rmsyn {
namespace {

// --- NPN --------------------------------------------------------------------

TEST(Npn, ApplyMatchesDefinition) {
  // c(y) = out_neg ^ f(x), x_j = y_{perm[j]} ^ neg_j, checked minterm by
  // minterm against a direct evaluation.
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const uint16_t f = static_cast<uint16_t>(rng.next() & 0xFFFF);
    rw::NpnTransform t;
    t.perm = {0, 1, 2, 3};
    for (int i = 3; i > 0; --i)
      std::swap(t.perm[i], t.perm[rng.next() % (i + 1)]);
    t.neg = static_cast<uint8_t>(rng.next() & 0xF);
    t.out_neg = (rng.next() & 1) != 0;
    const uint16_t c = rw::npn_apply(f, t);
    for (int m = 0; m < 16; ++m) {
      int x = 0;
      for (int j = 0; j < 4; ++j) {
        const bool yj = ((m >> t.perm[j]) & 1) != 0;
        if (yj != (((t.neg >> j) & 1) != 0)) x |= 1 << j;
      }
      const bool fx = ((f >> x) & 1) != 0;
      EXPECT_EQ(((c >> m) & 1) != 0, t.out_neg != fx);
    }
  }
}

TEST(Npn, CanonicalizeIsClassInvariantAndAchievable) {
  Rng rng(11);
  for (int trial = 0; trial < 100; ++trial) {
    const uint16_t f = static_cast<uint16_t>(rng.next() & 0xFFFF);
    const rw::NpnResult r = rw::npn_canonicalize(f);
    // The returned transform really produces the canonical form.
    EXPECT_EQ(rw::npn_apply(f, r.xform), r.canon);
    // Any random NPN image of f canonicalizes to the same representative.
    rw::NpnTransform t;
    t.perm = {0, 1, 2, 3};
    for (int i = 3; i > 0; --i)
      std::swap(t.perm[i], t.perm[rng.next() % (i + 1)]);
    t.neg = static_cast<uint8_t>(rng.next() & 0xF);
    t.out_neg = (rng.next() & 1) != 0;
    EXPECT_EQ(rw::npn_canonicalize(rw::npn_apply(f, t)).canon, r.canon);
  }
}

TEST(Npn, ClassCountIs222) {
  EXPECT_EQ(rw::npn_class_count(), 222u);
}

TEST(Npn, CacheAgreesWithDirect) {
  rw::NpnCache cache;
  Rng rng(13);
  for (int trial = 0; trial < 500; ++trial) {
    const uint16_t f = static_cast<uint16_t>(rng.next() & 0xFFFF);
    const rw::NpnResult a = cache.canonicalize(f);
    const rw::NpnResult b = rw::npn_canonicalize(f);
    EXPECT_EQ(a.canon, b.canon);
    EXPECT_EQ(rw::npn_apply(f, a.xform), a.canon);
  }
}

TEST(Npn, TtHelpers) {
  // erase_var removes an irrelevant variable, extend pads one back.
  const uint16_t f = 0xAAAA & 0xCCCC; // x0 & x1 over 4 vars
  EXPECT_TRUE(rw::tt16_depends(f, 0));
  EXPECT_FALSE(rw::tt16_depends(f, 2));
  const uint16_t g = rw::tt16_erase_var(f, 2, 4); // over 3 vars now
  EXPECT_EQ(g & 0xFF, (0xAA & 0xCC) & 0xFFu);
  EXPECT_EQ(rw::tt16_extend(g & 0xFF, 3), f);
}

// --- database ---------------------------------------------------------------

TEST(RewriteDb, CoversEveryClassWithCorrectStructures) {
  const rw::RewriteDb& db = rw::RewriteDb::instance();
  EXPECT_EQ(db.size(), 222u);
  const std::array<uint16_t, 4> proj = {rw::kProj4[0], rw::kProj4[1],
                                        rw::kProj4[2], rw::kProj4[3]};
  for (const rw::DbEntry& e : db.entries()) {
    // Stored function is self-canonical and the structure computes it.
    EXPECT_EQ(rw::npn_canonicalize(e.canon).canon, e.canon);
    EXPECT_EQ(rw::RewriteDb::eval_entry(e, proj), e.canon);
    EXPECT_NE(db.lookup(e.canon), nullptr);
  }
  // XOR-heavy classes keep their cheap XOR shape: 2-input XOR costs 3.
  const rw::DbEntry* x2 = db.lookup(rw::npn_canonicalize(0xAAAA ^ 0xCCCC).canon);
  ASSERT_NE(x2, nullptr);
  EXPECT_EQ(x2->cost, 3);
  const rw::DbEntry* a2 = db.lookup(rw::npn_canonicalize(0xAAAA & 0xCCCC).canon);
  ASSERT_NE(a2, nullptr);
  EXPECT_EQ(a2->cost, 1);
}

TEST(RewriteDb, SaveLoadRoundTrips) {
  const rw::RewriteDb& db = rw::RewriteDb::instance();
  std::ostringstream out;
  db.save(out);
  std::istringstream in(out.str());
  const rw::RewriteDb loaded = rw::RewriteDb::load(in);
  ASSERT_EQ(loaded.size(), db.size());
  std::ostringstream out2;
  loaded.save(out2);
  EXPECT_EQ(out.str(), out2.str());
}

TEST(RewriteDb, LoadRejectsCorruptEntries) {
  // A structurally valid line computing the WRONG function must be caught
  // by the load-time re-evaluation.
  std::istringstream wrong("0000 1 1 A 2 4 10\n");
  EXPECT_THROW(rw::RewriteDb::load(wrong), RmsynError);
  std::istringstream garbage("zzzz 1 0 2\n");
  EXPECT_THROW(rw::RewriteDb::load(garbage), RmsynError);
  std::istringstream truncated("0000 0 0");
  EXPECT_THROW(rw::RewriteDb::load(truncated), RmsynError);
}

// --- cuts -------------------------------------------------------------------

TEST(Cuts, EnumeratesCorrectTablesOnASmallCone) {
  // f = (a & b) ^ (c | d) — one 4-cut over the PIs plus smaller ones.
  Network net;
  const NodeId a = net.add_pi("a"), b = net.add_pi("b");
  const NodeId c = net.add_pi("c"), d = net.add_pi("d");
  const NodeId ab = net.add_gate(GateType::And, {a, b});
  const NodeId cd = net.add_gate(GateType::Or, {c, d});
  const NodeId root = net.add_gate(GateType::Xor, {ab, cd});
  net.add_po(root, "f");

  uint64_t kept = 0;
  const auto sets =
      rw::enumerate_cuts(net, net.topo_order(), rw::CutOptions{}, &kept);
  EXPECT_GT(kept, 0u);
  ASSERT_LT(root, sets.size());
  bool found_pi_cut = false;
  for (const rw::Cut& cut : sets[root]) {
    // Every cut's stored table must match an independent cone walk.
    uint16_t tt = 0;
    ASSERT_TRUE(rw::cut_tt(net, root, cut, &tt));
    EXPECT_EQ(tt, cut.tt);
    for (int i = 1; i < cut.nleaves; ++i)
      EXPECT_LT(cut.leaves[i - 1], cut.leaves[i]);
    if (cut.nleaves == 4 && cut.leaves[0] == a && cut.leaves[1] == b &&
        cut.leaves[2] == c && cut.leaves[3] == d) {
      found_pi_cut = true;
      EXPECT_EQ(cut.tt, (0xAAAA & 0xCCCC) ^ (0xF0F0 | 0xFF00));
    }
  }
  EXPECT_TRUE(found_pi_cut);
  // The trivial cut {root} is always kept.
  bool found_trivial = false;
  for (const rw::Cut& cut : sets[root])
    found_trivial |= cut.nleaves == 1 && cut.leaves[0] == root;
  EXPECT_TRUE(found_trivial);
}

TEST(Cuts, BatchedTablesMatchPerCutWalkUnderEveryDispatch) {
  // cut_tts_batch's contract is exactness: for every cut, (ok, tt) must
  // equal the scalar cut_tt walk — whether the lane-packed union-cone
  // path survived or fell back. Checked on real enumerated cut sets under
  // every reachable SIMD dispatch, and with a tiny max_cone to force the
  // fallback path through the same contract.
  const std::string saved = simd::dispatch_name();
  for (const char* name : {"rd53", "mlp4", "z4ml", "my_adder"}) {
    const Network net = decompose2(strash(make_benchmark(name).spec));
    const auto order = net.topo_order();
    const auto sets = rw::enumerate_cuts(net, order, rw::CutOptions{});
    for (const std::string& target : simd::available_dispatches()) {
      ASSERT_TRUE(simd::force_dispatch(target));
      for (const NodeId root : order) {
        if (root >= sets.size() || sets[root].empty()) continue;
        for (const int max_cone : {128, 3}) {
          std::vector<uint16_t> tts;
          std::vector<uint8_t> ok;
          rw::cut_tts_batch(net, root, sets[root], &tts, &ok, max_cone);
          ASSERT_EQ(tts.size(), sets[root].size());
          ASSERT_EQ(ok.size(), sets[root].size());
          for (std::size_t i = 0; i < sets[root].size(); ++i) {
            uint16_t want = 0;
            const bool want_ok =
                rw::cut_tt(net, root, sets[root][i], &want, max_cone);
            ASSERT_EQ(ok[i] != 0, want_ok)
                << name << " " << target << " root " << root << " cut " << i
                << " max_cone " << max_cone;
            if (want_ok)
              ASSERT_EQ(tts[i], want)
                  << name << " " << target << " root " << root << " cut " << i;
          }
        }
      }
    }
  }
  ASSERT_TRUE(simd::force_dispatch(saved));
}

TEST(Rewrite, DispatchTargetsProduceIdenticalNetworks) {
  const std::string saved = simd::dispatch_name();
  for (const char* name : {"rd53", "z4ml"}) {
    ASSERT_TRUE(simd::force_dispatch("scalar"));
    Network ref = make_benchmark(name).spec;
    rw::rewrite_network(ref);
    for (const std::string& target : simd::available_dispatches()) {
      ASSERT_TRUE(simd::force_dispatch(target));
      Network got = make_benchmark(name).spec;
      rw::rewrite_network(got);
      ASSERT_EQ(network_stats(ref).lits, network_stats(got).lits)
          << name << " under " << target;
      ASSERT_EQ(write_blif_string(ref, name), write_blif_string(got, name))
          << name << " under " << target;
    }
  }
  ASSERT_TRUE(simd::force_dispatch(saved));
}

// --- the pass ---------------------------------------------------------------

void expect_identical(const Network& a, const Network& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  for (NodeId i = 0; i < a.node_count(); ++i) {
    ASSERT_EQ(a.is_dead(i), b.is_dead(i)) << "node " << i;
    if (a.is_dead(i)) continue;
    ASSERT_EQ(a.type(i), b.type(i)) << "node " << i;
    const FaninSpan fa = a.fanins(i), fb = b.fanins(i);
    ASSERT_EQ(fa.size(), fb.size()) << "node " << i;
    for (std::size_t j = 0; j < fa.size(); ++j)
      ASSERT_EQ(fa[j], fb[j]) << "node " << i << " fanin " << j;
  }
}

TEST(Rewrite, PreservesEquivalenceAndNeverWorsensCost) {
  for (const char* name : {"rd53", "cc", "cm85a", "mlp4", "pm1", "z4ml"}) {
    const Benchmark bench = make_benchmark(name);
    Network net = bench.spec;
    const NetworkStats before = network_stats(net);
    const rw::RewriteStats st = rw::rewrite_network(net);
    const NetworkStats after = network_stats(net);
    EXPECT_TRUE(net.check_invariants().empty()) << name;
    EXPECT_LE(after.lits, before.lits) << name;
    EXPECT_EQ(st.lits_before, before.lits) << name;
    EXPECT_EQ(st.lits_after, after.lits) << name;
    const EquivResult eq = check_equivalence(bench.spec, net);
    EXPECT_TRUE(eq.equivalent) << name << ": " << eq.reason;
    // PI/PO interface is untouched.
    EXPECT_EQ(net.pi_count(), bench.spec.pi_count()) << name;
    EXPECT_EQ(net.po_count(), bench.spec.po_count()) << name;
  }
}

TEST(Rewrite, FindsKnownSavings) {
  // A mux built the expensive way: (s & a) | (~s & b) as 2-input gates
  // costs 3 AND-equivalents + inverter; the database mux structure costs 3
  // as well, but a chain of two identical muxes sharing s rewrites with
  // sharing. Guard simply that SOME benchmark yields replacements.
  const Benchmark bench = make_benchmark("cc");
  Network net = bench.spec;
  const rw::RewriteStats st = rw::rewrite_network(net);
  EXPECT_GT(st.db_hits, 0u);
  EXPECT_GT(st.replacements, 0u);
  EXPECT_GT(st.gain_lits, 0u);
  EXPECT_EQ(st.sim_rejects, 0u);
  EXPECT_EQ(st.bdd_rejects, 0u);
}

TEST(Rewrite, PoolRunsAreBitIdenticalToSerial) {
  for (const char* name : {"cc", "mlp4", "adder8"}) {
    const Benchmark bench = make_benchmark(name);
    Network serial = bench.spec;
    rw::RewriteOptions opt;
    rw::rewrite_network(serial, opt);
    for (int jobs : {2, 4}) {
      Network par = bench.spec;
      ThreadPool pool(jobs);
      rw::RewriteOptions popt;
      popt.pool = &pool;
      rw::rewrite_network(par, popt);
      expect_identical(serial, par);
    }
  }
}

TEST(Rewrite, GovernedTripsLeaveAValidEquivalentNetwork) {
  // Sweep tiny step budgets: wherever the pass trips, the network must
  // remain structurally valid and equivalent to the input (replacements
  // are atomic: verified-then-committed or fully reverted).
  const Benchmark bench = make_benchmark("cm85a");
  for (const uint64_t steps : {1ull, 5ull, 25ull, 125ull, 625ull}) {
    ResourceLimits limits;
    limits.step_limit = steps;
    ResourceGovernor gov(limits);
    Network net = bench.spec;
    rw::RewriteOptions opt;
    opt.governor = &gov;
    const rw::RewriteStats st = rw::rewrite_network(net, opt);
    (void)st;
    EXPECT_TRUE(net.check_invariants().empty()) << "steps=" << steps;
    const EquivResult eq = check_equivalence(bench.spec, net);
    EXPECT_TRUE(eq.equivalent) << "steps=" << steps << ": " << eq.reason;
  }
}

TEST(Rewrite, HonorsExplicitDbPathAndRejectsMissingFile) {
  rw::RewriteOptions opt;
  opt.db_path = "/nonexistent/rewrite_db.txt";
  Network net = make_benchmark("rd53").spec;
  EXPECT_THROW(rw::rewrite_network(net, opt), RmsynError);
}

} // namespace
} // namespace rmsyn
