// BLIF reader/writer round trips and error handling.
#include "network/io.hpp"

#include <gtest/gtest.h>

#include "benchgen/spec.hpp"
#include "equiv/equiv.hpp"
#include "network/transform.hpp"

namespace rmsyn {
namespace {

TEST(BlifReader, ParsesHandWrittenModel) {
  const std::string text = R"(
# a full adder
.model fa
.inputs a b cin
.outputs sum cout
.names a b t1
01 1
10 1
.names t1 cin sum
01 1
10 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
)";
  const Network net = read_blif_string(text);
  EXPECT_EQ(net.pi_count(), 3u);
  EXPECT_EQ(net.po_count(), 2u);
  for (int a = 0; a < 2; ++a)
    for (int b = 0; b < 2; ++b)
      for (int c = 0; c < 2; ++c) {
        const auto out = net.eval({a != 0, b != 0, c != 0});
        EXPECT_EQ(out[0], ((a + b + c) & 1) != 0);
        EXPECT_EQ(out[1], a + b + c >= 2);
      }
}

TEST(BlifReader, OffsetRowsComplement) {
  // Rows with output 0 enumerate the OFF-set.
  const std::string text = R"(
.model nor
.inputs a b
.outputs f
.names a b f
1- 0
-1 0
.end
)";
  const Network net = read_blif_string(text);
  EXPECT_TRUE(net.eval({false, false})[0]);
  EXPECT_FALSE(net.eval({true, false})[0]);
  EXPECT_FALSE(net.eval({false, true})[0]);
}

TEST(BlifReader, ConstantsAndBuffers) {
  const std::string text = R"(
.model k
.inputs a
.outputs one zero thru
.names one
1
.names zero
.names a thru
1 1
.end
)";
  const Network net = read_blif_string(text);
  EXPECT_TRUE(net.eval({false})[0]);
  EXPECT_FALSE(net.eval({false})[1]);
  EXPECT_TRUE(net.eval({true})[2]);
}

TEST(BlifReader, OutOfOrderBlocksResolve) {
  const std::string text = R"(
.model ooo
.inputs a b
.outputs f
.names t f
0 1
.names a b t
11 1
.end
)";
  const Network net = read_blif_string(text);
  EXPECT_TRUE(net.eval({false, true})[0]);
  EXPECT_FALSE(net.eval({true, true})[0]);
}

TEST(BlifReader, ContinuationLines) {
  const std::string text = ".model c\n.inputs a \\\nb\n.outputs f\n"
                           ".names a b f\n11 1\n.end\n";
  const Network net = read_blif_string(text);
  EXPECT_EQ(net.pi_count(), 2u);
  EXPECT_TRUE(net.eval({true, true})[0]);
}

TEST(BlifReader, RejectsSequentialAndMalformed) {
  EXPECT_THROW(read_blif_string(".model s\n.inputs a\n.outputs q\n"
                                ".latch a q re clk 0\n.end\n"),
               std::runtime_error);
  EXPECT_THROW(read_blif_string(".model m\n.inputs a\n.outputs f\n"
                                ".names a f\n111 1\n.end\n"),
               std::runtime_error);
  EXPECT_THROW(read_blif_string(".model u\n.inputs a\n.outputs f\n.end\n"),
               std::runtime_error); // undriven output
  EXPECT_THROW(read_blif_string(".model x\n.inputs a\n.outputs f\n"
                                ".names f g\n1 1\n.names g f\n1 1\n.end\n"),
               std::runtime_error); // combinational cycle
}

// Diagnostics must name the offending line so malformed decks from external
// tools can be fixed without bisecting the file by hand.
TEST(BlifReader, DiagnosticsCarryLineNumbers) {
  const auto expect_error_with = [](const std::string& text,
                                    const std::string& needle) {
    try {
      read_blif_string(text);
      FAIL() << "accepted: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "message '" << e.what() << "' lacks '" << needle << "'";
    }
  };
  // .names without an output signal (line 4).
  expect_error_with(".model m\n.inputs a\n.outputs f\n.names\n.end\n",
                    "line 4: .names without output");
  // Cube row before any .names block.
  expect_error_with(".model m\n.inputs a\n.outputs f\n1 1\n.end\n",
                    "line 4: cube row outside .names");
  // Mask width mismatch reports both widths and the row's line.
  expect_error_with(".model m\n.inputs a b\n.outputs f\n.names a b f\n"
                    "1 1\n.end\n",
                    "line 5: mask is 1 wide, .names has 2 inputs");
  // Output column must be exactly 0 or 1.
  expect_error_with(".model m\n.inputs a\n.outputs f\n.names a f\n1 x\n.end\n",
                    "line 5: output value must be 0 or 1");
  // Bad character inside the cube mask.
  expect_error_with(".model m\n.inputs a b\n.outputs f\n.names a b f\n"
                    "1z 1\n.end\n",
                    "line 5: bad cube character 'z'");
  // Mixed ON/OFF rows are ambiguous; the message points at the block header.
  expect_error_with(".model m\n.inputs a b\n.outputs f\n.names a b f\n"
                    "11 1\n00 0\n.end\n",
                    "line 4: mixed-phase .names block for f");
  // Sequential constructs name the directive and its line.
  expect_error_with(".model s\n.inputs a\n.outputs q\n"
                    ".latch a q re clk 0\n.end\n",
                    "line 4: sequential/hierarchical BLIF not supported");
}

TEST(BlifReader, RejectsConflictingDrivers) {
  // Two .names blocks for the same signal: the second reports the first.
  try {
    read_blif_string(".model d\n.inputs a b\n.outputs f\n"
                     ".names a f\n1 1\n.names b f\n1 1\n.end\n");
    FAIL() << "duplicate driver accepted";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 6: .names redefines f"), std::string::npos) << msg;
    EXPECT_NE(msg.find("first defined at line 4"), std::string::npos) << msg;
  }
  // A .names block shadowing a primary input.
  EXPECT_THROW(read_blif_string(".model d\n.inputs a b\n.outputs a\n"
                                ".names b a\n1 1\n.end\n"),
               std::runtime_error);
  // The same name listed twice under .inputs.
  EXPECT_THROW(read_blif_string(".model d\n.inputs a a\n.outputs f\n"
                                ".names a f\n1 1\n.end\n"),
               std::runtime_error);
}

class BlifRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(BlifRoundTrip, WriteThenReadIsEquivalent) {
  const Benchmark bench = make_benchmark(GetParam());
  // The writer requires <=2-input XOR gates.
  const Network net = decompose2(strash(bench.spec));
  const Network back = read_blif_string(write_blif_string(net, "rt"));
  const auto check = check_equivalence(net, back);
  EXPECT_TRUE(check.equivalent) << check.reason;
}

INSTANTIATE_TEST_SUITE_P(Circuits, BlifRoundTrip,
                         ::testing::Values("z4ml", "rd53", "t481", "cm85a",
                                           "majority", "tcon", "pcle",
                                           "bcd-div3"));

} // namespace
} // namespace rmsyn
