// FPRM / OFDD tests, including the paper's Figure 1 and the prime-cube
// property of Csanky et al. used in Section 2.
#include "fdd/fprm.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace rmsyn {
namespace {

TruthTable random_tt(int n, Rng& rng) {
  TruthTable f(n);
  for (uint64_t m = 0; m < f.size(); ++m)
    if (rng.flip()) f.set(m);
  return f;
}

BddRef tt_to_bdd(BddManager& mgr, const TruthTable& tt) {
  return mgr.from_cover(Cover::from_truth_table(tt));
}

TEST(Fprm, SpectrumOfAndIsSingleCube) {
  BddManager mgr(2);
  const BddRef f = mgr.bdd_and(mgr.var(0), mgr.var(1));
  BitVec pol(2);
  pol.set_all();
  const Ofdd o = build_ofdd(mgr, f, pol);
  const FprmForm form = extract_fprm(mgr, o, 2);
  ASSERT_EQ(form.cube_count(), 1u);
  EXPECT_EQ(form.cubes[0].count(), 2u);
}

TEST(Fprm, Figure1Example) {
  // f = x̄1 ⊕ x̄1x3 ⊕ x̄1x2 ⊕ x̄1x2x3 ⊕ x3 ⊕ x2 with V = (0 1 1):
  // 6 cubes under this polarity. Variables are 0-indexed here: x1->0 etc.
  const int n = 3;
  const auto x = [&](int i) { return TruthTable::variable(n, i); };
  const auto nx1 = ~x(0);
  const TruthTable f = nx1 ^ (nx1 & x(2)) ^ (nx1 & x(1)) ^
                       (nx1 & x(1) & x(2)) ^ x(2) ^ x(1);

  BddManager mgr(n);
  const BddRef fb = tt_to_bdd(mgr, f);
  BitVec pol(3);
  pol.set(1);
  pol.set(2); // V = (0 1 1): x1 negative, x2 x3 positive
  const Ofdd o = build_ofdd(mgr, fb, pol);
  const FprmForm form = extract_fprm(mgr, o, n);
  EXPECT_EQ(form.cube_count(), 6u);
  EXPECT_EQ(fprm_to_tt(form), f);
  // Figure 1 draws one node per variable (3); with complement edges the
  // x2 ⊕ x3 substructure shares a single x3 node between both phases, so
  // our canonical OFDD matches the figure exactly. The x1-present branch
  // covers the first four cubes directly, as in the paper's path
  // description.
  EXPECT_EQ(mgr.size(o.root), 3u);
  const BddRef present_branch = mgr.hi_of(o.root);
  EXPECT_EQ(present_branch, mgr.bdd_true()); // 4 cubes: all (x2,x3) subsets
}

TEST(Fprm, SpectrumMatchesButterflyOracleAllPolarities) {
  const int n = 4;
  Rng rng(42);
  for (int iter = 0; iter < 10; ++iter) {
    const TruthTable f = random_tt(n, rng);
    BddManager mgr(n);
    const BddRef fb = tt_to_bdd(mgr, f);
    for (uint64_t mask = 0; mask < (1u << n); ++mask) {
      BitVec pol(static_cast<std::size_t>(n));
      for (int v = 0; v < n; ++v)
        if ((mask >> v) & 1) pol.set(static_cast<std::size_t>(v));
      const std::vector<int> vars{0, 1, 2, 3};
      const BddRef spec = rm_spectrum(mgr, fb, vars, pol);
      const TruthTable oracle = fprm_spectrum_tt(f, pol);
      // Compare coefficient by coefficient: spectrum BDD evaluated on the
      // presence assignment == oracle table.
      for (uint64_t s = 0; s < f.size(); ++s) {
        BitVec a(static_cast<std::size_t>(n));
        for (int v = 0; v < n; ++v)
          if ((s >> v) & 1) a.set(static_cast<std::size_t>(v));
        EXPECT_EQ(mgr.eval(spec, a), oracle.get(s))
            << "polarity " << mask << " coeff " << s;
      }
    }
  }
}

TEST(Fprm, InverseRoundTrip) {
  const int n = 5;
  Rng rng(77);
  BddManager mgr(n);
  const std::vector<int> vars{0, 1, 2, 3, 4};
  for (int iter = 0; iter < 20; ++iter) {
    const TruthTable f = random_tt(n, rng);
    const BddRef fb = tt_to_bdd(mgr, f);
    BitVec pol(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v)
      if (rng.flip()) pol.set(static_cast<std::size_t>(v));
    const BddRef spec = rm_spectrum(mgr, fb, vars, pol);
    EXPECT_EQ(rm_inverse(mgr, spec, vars, pol), fb);
  }
}

TEST(Fprm, ExtractedFormEvaluatesToFunction) {
  const int n = 5;
  Rng rng(99);
  for (int iter = 0; iter < 20; ++iter) {
    const TruthTable f = random_tt(n, rng);
    BddManager mgr(n);
    const BddRef fb = tt_to_bdd(mgr, f);
    BitVec pol(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v)
      if (rng.flip()) pol.set(static_cast<std::size_t>(v));
    const Ofdd o = build_ofdd(mgr, fb, pol);
    const FprmForm form = extract_fprm(mgr, o, n);
    EXPECT_EQ(fprm_to_tt(form), f);
    EXPECT_EQ(static_cast<double>(form.cube_count()),
              fprm_cube_count(mgr, o.root, o.support));
  }
}

TEST(Fprm, CubeCountMatchesSpectrumWeight) {
  // XOR of n variables has exactly n PPRM cubes.
  const int n = 6;
  BddManager mgr(n);
  BddRef f = mgr.bdd_false();
  for (int v = 0; v < n; ++v) f = mgr.bdd_xor(f, mgr.var(v));
  BitVec pol(static_cast<std::size_t>(n));
  pol.set_all();
  const Ofdd o = build_ofdd(mgr, f, pol);
  EXPECT_DOUBLE_EQ(fprm_cube_count(mgr, o.root, o.support), 6.0);
}

TEST(Fprm, BestPolarityNeverWorseThanPositive) {
  const int n = 5;
  Rng rng(1234);
  for (int iter = 0; iter < 15; ++iter) {
    const TruthTable f = random_tt(n, rng);
    BddManager mgr(n);
    const BddRef fb = tt_to_bdd(mgr, f);
    BitVec all_pos(static_cast<std::size_t>(n));
    all_pos.set_all();
    const Ofdd pprm = build_ofdd(mgr, fb, all_pos);
    const double pprm_cubes = fprm_cube_count(mgr, pprm.root, pprm.support);
    const BitVec best = best_polarity(mgr, fb);
    const Ofdd opt = build_ofdd(mgr, fb, best);
    EXPECT_LE(fprm_cube_count(mgr, opt.root, opt.support), pprm_cubes);
  }
}

TEST(Fprm, PrimeCubesInvariantUnderPolarity) {
  // Csanky et al.: every prime cube occurs in all 2^n FPRM forms.
  const int n = 4;
  Rng rng(4321);
  for (int iter = 0; iter < 10; ++iter) {
    const TruthTable f = random_tt(n, rng);
    BddManager mgr(n);
    const BddRef fb = tt_to_bdd(mgr, f);

    // Collect prime-cube support sets of the PPRM.
    BitVec all_pos(static_cast<std::size_t>(n));
    all_pos.set_all();
    const FprmForm pprm = extract_fprm(mgr, build_ofdd(mgr, fb, all_pos), n);
    const auto primes = prime_flags(pprm);
    std::vector<BitVec> prime_supports;
    for (std::size_t i = 0; i < pprm.cubes.size(); ++i)
      if (primes[i]) prime_supports.push_back(pprm.cubes[i]);

    // Support sets are positions into pprm.support; map to variable sets.
    const auto to_varset = [](const FprmForm& form, const BitVec& cube) {
      std::vector<int> vars;
      for (std::size_t i = cube.first_set(); i != BitVec::npos;
           i = cube.next_set(i + 1))
        vars.push_back(form.support[i]);
      return vars;
    };

    for (uint64_t mask = 1; mask < (1u << n); mask += 5) { // sample polarities
      BitVec pol(static_cast<std::size_t>(n));
      for (int v = 0; v < n; ++v)
        if ((mask >> v) & 1) pol.set(static_cast<std::size_t>(v));
      const FprmForm form = extract_fprm(mgr, build_ofdd(mgr, fb, pol), n);
      for (const auto& pc : prime_supports) {
        const auto want = to_varset(pprm, pc);
        bool found = false;
        for (const auto& cube : form.cubes) {
          if (to_varset(form, cube) == want) {
            found = true;
            break;
          }
        }
        EXPECT_TRUE(found) << "prime cube missing under polarity " << mask;
      }
    }
  }
}

TEST(Fprm, MultiOutputPolaritySharedVector) {
  const int n = 4;
  Rng rng(555);
  BddManager mgr(n);
  std::vector<BddRef> fs;
  for (int k = 0; k < 3; ++k) fs.push_back(tt_to_bdd(mgr, random_tt(n, rng)));
  const BitVec pol = best_polarity_multi(mgr, fs);
  EXPECT_EQ(pol.size(), static_cast<std::size_t>(n));
  // Must not be worse than PPRM in total cube count.
  BitVec all_pos(static_cast<std::size_t>(n));
  all_pos.set_all();
  double total_best = 0, total_pprm = 0;
  for (const BddRef f : fs) {
    const Ofdd a = build_ofdd(mgr, f, pol);
    const Ofdd b = build_ofdd(mgr, f, all_pos);
    total_best += fprm_cube_count(mgr, a.root, a.support);
    total_pprm += fprm_cube_count(mgr, b.root, b.support);
  }
  EXPECT_LE(total_best, total_pprm);
}

TEST(Fprm, ConstantOneCubeShowsInForm) {
  // f = 1 ⊕ x0x1 (i.e. NAND): the PPRM contains the constant-1 cube.
  BddManager mgr(2);
  const BddRef f = mgr.bdd_not(mgr.bdd_and(mgr.var(0), mgr.var(1)));
  BitVec pol(2);
  pol.set_all();
  const FprmForm form = extract_fprm(mgr, build_ofdd(mgr, f, pol), 2);
  EXPECT_TRUE(form.has_constant_one_cube());
  EXPECT_EQ(form.cube_count(), 2u);
  EXPECT_EQ(fprm_to_tt(form),
            ~(TruthTable::variable(2, 0) & TruthTable::variable(2, 1)));
}

TEST(Fprm, LiteralCountSumsCubeSizes) {
  FprmForm form;
  form.nvars = 3;
  form.support = {0, 1, 2};
  form.polarity = BitVec(3);
  form.polarity.set_all();
  BitVec a(3), b(3);
  a.set(0);
  b.set(1);
  b.set(2);
  form.cubes = {a, b, BitVec(3)};
  EXPECT_EQ(form.literal_count(), 3u);
  EXPECT_TRUE(form.has_constant_one_cube());
}

TEST(Fprm, SingleVariableAndConstantFunctions) {
  BddManager mgr(3);
  BitVec pol(3);
  pol.set_all();
  // f = x1: one cube {x1}.
  const FprmForm fx = extract_fprm(mgr, build_ofdd(mgr, mgr.var(1), pol), 3);
  EXPECT_EQ(fx.cube_count(), 1u);
  EXPECT_EQ(fx.support, (std::vector<int>{1}));
  // f = x̄1 under positive polarity: 1 ⊕ x1 (two cubes).
  const FprmForm fn = extract_fprm(mgr, build_ofdd(mgr, mgr.nvar(1), pol), 3);
  EXPECT_EQ(fn.cube_count(), 2u);
  // f = x̄1 under negative polarity of x1: a single cube.
  BitVec pneg(3);
  pneg.set_all();
  pneg.set(1, false);
  const FprmForm f1 = extract_fprm(mgr, build_ofdd(mgr, mgr.nvar(1), pneg), 3);
  EXPECT_EQ(f1.cube_count(), 1u);
}

TEST(Fprm, TruncationFlag) {
  BddManager mgr(6);
  BddRef f = mgr.bdd_false();
  for (int v = 0; v < 6; ++v) f = mgr.bdd_xor(f, mgr.var(v));
  BitVec pol(6);
  pol.set_all();
  const Ofdd o = build_ofdd(mgr, f, pol);
  const FprmForm form = extract_fprm(mgr, o, 6, /*cube_limit=*/3);
  EXPECT_TRUE(form.truncated);
  EXPECT_EQ(form.cube_count(), 3u);
}

} // namespace
} // namespace rmsyn
