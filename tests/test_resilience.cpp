// Crash-safe batch execution (DESIGN.md §12): checkpoint journal
// round-trips, torn-tail tolerance, kill-and-resume determinism, retry
// with escalated budgets, journal-write fault containment, and the
// AIGER truncation sweep that the IO hardening must survive.
#include "sched/batch.hpp"
#include "sched/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "benchgen/spec.hpp"
#include "network/io.hpp"
#include "util/errors.hpp"
#include "util/faultplan.hpp"

namespace rmsyn {
namespace {

std::string temp_path(const std::string& name) {
  const std::string p = ::testing::TempDir() + "rmsyn_" + name;
  std::remove(p.c_str()); // journals append: stale files would pollute
  return p;
}

/// Fast flow options for the batch tests: mapping and power add nothing to
/// the journal/retry logic under test.
FlowOptions fast_options() {
  FlowOptions opt;
  opt.run_mapping = false;
  opt.run_power = false;
  return opt;
}

/// Row serialization with wall-clock and telemetry columns zeroed — the
/// fields the determinism contract excludes (and the journal does not
/// carry for BddStats/SimStats).
std::string canon(FlowRow row) {
  row.base_seconds = 0.0;
  row.ours_seconds = 0.0;
  row.row_seconds = 0.0;
  row.ours_polls = 0;
  row.base_polls = 0;
  row.stages = StageBreakdown{};
  row.bdd = BddStats{};
  row.sim = SimStats{};
  return flow_row_json(row).dump();
}

std::vector<Benchmark> adder_manifest(int count) {
  std::vector<Benchmark> benches;
  for (int n = 2; n < 2 + count; ++n)
    benches.push_back(make_benchmark("adder" + std::to_string(n)));
  return benches;
}

FlowRow sample_row(const std::string& circuit) {
  FlowRow row;
  row.circuit = circuit;
  row.num_inputs = 5;
  row.num_outputs = 3;
  row.arithmetic = true;
  row.exact_benchmark = true;
  row.base_lits = 92;
  row.ours_lits = 62;
  row.base_gates = 47;
  row.ours_gates = 24;
  row.base_map_lits = 91;
  row.ours_map_lits = 47;
  row.base_power = 1.5;
  row.ours_power = 1.0;
  row.ladder_descents = 1;
  row.attempts = 2;
  row.ours_status = FlowStatus::degraded("polarity-search", "Deadline",
                                         ErrorCode::BudgetDeadline);
  return row;
}

TEST(Journal, AppendReadRoundTrip) {
  const std::string path = temp_path("journal_roundtrip.jsonl");
  {
    BatchJournal j;
    ASSERT_TRUE(j.open(path));
    ASSERT_TRUE(j.append("rd53", 0x0123456789abcdefull, 0xfedcba9876543210ull,
                         sample_row("rd53")));
    ASSERT_TRUE(j.append("z4ml", 42, 7, sample_row("z4ml")));
  }
  const JournalContents jc = read_journal(path);
  EXPECT_EQ(jc.skipped_lines, 0u);
  ASSERT_EQ(jc.records.size(), 2u);
  const JournalRecord& rec = jc.records[0];
  EXPECT_EQ(rec.circuit, "rd53");
  EXPECT_EQ(rec.input_digest, 0x0123456789abcdefull);
  EXPECT_EQ(rec.options_digest, 0xfedcba9876543210ull);
  EXPECT_EQ(rec.status, "degraded");
  EXPECT_EQ(canon(rec.row), canon(sample_row("rd53")));
  EXPECT_EQ(rec.row.attempts, 2);
  EXPECT_EQ(rec.row.ours_status.code, ErrorCode::BudgetDeadline);
  EXPECT_EQ(jc.records[1].circuit, "z4ml");
  std::remove(path.c_str());
}

TEST(Journal, TornTailAndGarbageLinesAreSkippedNotFatal) {
  const std::string path = temp_path("journal_torn.jsonl");
  {
    BatchJournal j;
    ASSERT_TRUE(j.open(path));
    ASSERT_TRUE(j.append("rd53", 1, 2, sample_row("rd53")));
    ASSERT_TRUE(j.append("z4ml", 3, 4, sample_row("z4ml")));
  }
  // Tear the last record mid-line, as a SIGKILL during the write would.
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  in.close();
  std::string bytes = buf.str();
  bytes.resize(bytes.size() - 40);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << "this is not json\n"            // garbage line
      << R"({"v":1,"circuit":"x"})" "\n" // valid JSON, missing fields
      << bytes;                          // record 1 intact, record 2 torn
  out.close();

  const JournalContents jc = read_journal(path);
  ASSERT_EQ(jc.records.size(), 1u);
  EXPECT_EQ(jc.records[0].circuit, "rd53");
  EXPECT_EQ(jc.skipped_lines, 3u);
  std::remove(path.c_str());
}

TEST(Journal, MissingFileThrowsParseError) {
  try {
    read_journal(temp_path("journal_missing.jsonl"));
    FAIL() << "expected RmsynError";
  } catch (const RmsynError& e) {
    EXPECT_EQ(e.code(), ErrorCode::ParseError);
  }
}

TEST(Journal, OptionsDigestTracksResultAffectingKnobs) {
  const FlowOptions base = fast_options();
  FlowOptions changed = base;
  changed.synth.cube_limit = base.synth.cube_limit + 1;
  EXPECT_NE(journal_options_digest(base), journal_options_digest(changed));
  // Wall-clock-only knobs are deliberately excluded.
  FlowOptions same = base;
  EXPECT_EQ(journal_options_digest(base), journal_options_digest(same));
}

TEST(Journal, InputDigestTracksTheSpecNetwork) {
  const Benchmark a = make_benchmark("adder2");
  const Benchmark b = make_benchmark("adder3");
  EXPECT_NE(journal_input_digest(a), journal_input_digest(b));
  EXPECT_EQ(journal_input_digest(a),
            journal_input_digest(make_benchmark("adder2")));
}

TEST(Journal, InputDigestHandlesWideXorSpecs) {
  // The parity and xor10 specs carry XOR gates with arity > 2, which
  // write_blif rejects — the digest must hash the structure directly
  // rather than round-tripping through BLIF (this used to throw).
  uint64_t parity = 0;
  EXPECT_NO_THROW(parity = journal_input_digest(make_benchmark("parity")));
  uint64_t xor10 = 0;
  EXPECT_NO_THROW(xor10 = journal_input_digest(make_benchmark("xor10")));
  EXPECT_NE(parity, xor10);
}

TEST(Resilience, KillAndResumeReproducesTheUninterruptedRun) {
  const std::vector<Benchmark> benches = adder_manifest(10);
  const std::string full_path = temp_path("journal_full.jsonl");

  BatchOptions bo;
  bo.flow = fast_options();
  bo.journal_path = full_path;
  BatchRunner full(bo);
  const BatchResult r0 = full.run(benches);
  ASSERT_EQ(r0.rows.size(), 10u);
  ASSERT_EQ(r0.journal_errors, 0u);
  for (const FlowRow& row : r0.rows)
    ASSERT_FALSE(row.worst_status().is_failed()) << row.circuit;

  // Split the journal into lines: one fsync'd record per row.
  std::ifstream in(full_path, std::ios::binary);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  in.close();
  ASSERT_EQ(lines.size(), 10u);

  for (const std::size_t k : {std::size_t{1}, std::size_t{5}, std::size_t{9}}) {
    // Simulate a SIGKILL after row k settled: keep the first k records.
    const std::string part = temp_path("journal_k" + std::to_string(k));
    std::ofstream out(part, std::ios::binary);
    for (std::size_t i = 0; i < k; ++i) out << lines[i] << "\n";
    out.close();

    BatchOptions ro = bo;
    ro.journal_path = part;
    ro.resume = true;
    BatchRunner resumed(ro);
    const BatchResult rk = resumed.run(benches);
    EXPECT_EQ(rk.rows_replayed, k);
    EXPECT_EQ(rk.journal_skipped_lines, 0u);
    ASSERT_EQ(rk.rows.size(), 10u);
    for (std::size_t i = 0; i < 10; ++i)
      EXPECT_EQ(canon(rk.rows[i]), canon(r0.rows[i]))
          << "k=" << k << " row " << i << " (" << benches[i].name << ")";
    // The resumed run re-journaled what it re-ran: a second resume of the
    // same file replays everything.
    BatchRunner again(ro);
    const BatchResult r2 = again.run(benches);
    EXPECT_EQ(r2.rows_replayed, 10u);
    std::remove(part.c_str());
  }
  std::remove(full_path.c_str());
}

TEST(Resilience, DigestMismatchForcesRerun) {
  const std::vector<Benchmark> benches = adder_manifest(2);
  const std::string path = temp_path("journal_digest.jsonl");
  BatchOptions bo;
  bo.flow = fast_options();
  bo.journal_path = path;
  BatchRunner first(bo);
  (void)first.run(benches);

  // Same circuits, different result-affecting options: nothing replays.
  BatchOptions ro = bo;
  ro.resume = true;
  ro.flow.synth.cube_limit += 1;
  BatchRunner resumed(ro);
  const BatchResult rk = resumed.run(benches);
  EXPECT_EQ(rk.rows_replayed, 0u);
  for (const FlowRow& row : rk.rows)
    EXPECT_FALSE(row.worst_status().is_failed()) << row.circuit;
  std::remove(path.c_str());
}

TEST(Resilience, ResumeWithoutJournalIsAFreshRun) {
  const std::vector<Benchmark> benches = adder_manifest(2);
  BatchOptions bo;
  bo.flow = fast_options();
  bo.journal_path = temp_path("journal_fresh.jsonl");
  bo.resume = true;
  BatchRunner runner(bo);
  const BatchResult r = runner.run(benches);
  EXPECT_EQ(r.rows_replayed, 0u);
  EXPECT_EQ(r.journal_errors, 0u);
  for (const FlowRow& row : r.rows)
    EXPECT_FALSE(row.worst_status().is_failed()) << row.circuit;
  std::remove(bo.journal_path.c_str());
}

TEST(Resilience, RetryRecoversFromAnInjectedTransientFault) {
  const std::vector<Benchmark> benches = adder_manifest(1);
  BatchOptions bo;
  bo.flow = fast_options();
  bo.retries = 1;
  BatchRunner runner(bo);

  // The arena fault is one-shot: the first flow attempt dies with
  // InjectedFault (transient-retryable), the retry runs clean.
  FaultPlan p;
  p.arena_fail_at_node = 10;
  ScopedFaultPlan guard(p);
  const BatchResult r = runner.run(benches);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_FALSE(r.rows[0].worst_status().is_failed());
  EXPECT_EQ(r.rows[0].attempts, 2);
  EXPECT_EQ(r.retries_used, 1u);
}

TEST(Resilience, WithoutRetriesTheInjectedFaultFailsTheRow) {
  const std::vector<Benchmark> benches = adder_manifest(1);
  BatchOptions bo;
  bo.flow = fast_options();
  BatchRunner runner(bo);
  FaultPlan p;
  p.arena_fail_at_node = 10;
  ScopedFaultPlan guard(p);
  const BatchResult r = runner.run(benches);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_TRUE(r.rows[0].worst_status().is_failed());
  EXPECT_EQ(r.rows[0].worst_status().code, ErrorCode::InjectedFault);
  EXPECT_TRUE(is_retryable(r.rows[0].worst_status().code));
  EXPECT_EQ(r.rows[0].attempts, 1);
}

TEST(Resilience, RetriesDoNotPerturbCleanRows) {
  const std::vector<Benchmark> benches = adder_manifest(3);
  BatchOptions plain;
  plain.flow = fast_options();
  BatchRunner a(plain);
  const BatchResult r0 = a.run(benches);

  BatchOptions with_retries = plain;
  with_retries.retries = 3;
  BatchRunner b(with_retries);
  const BatchResult r1 = b.run(benches);
  ASSERT_EQ(r1.rows.size(), r0.rows.size());
  EXPECT_EQ(r1.retries_used, 0u);
  for (std::size_t i = 0; i < r0.rows.size(); ++i) {
    EXPECT_EQ(canon(r1.rows[i]), canon(r0.rows[i])) << benches[i].name;
    EXPECT_EQ(r1.rows[i].attempts, 1);
  }
}

TEST(Resilience, JournalWriteFaultIsCountedNotFatal) {
  const std::vector<Benchmark> benches = adder_manifest(3);
  BatchOptions bo;
  bo.flow = fast_options();
  bo.journal_path = temp_path("journal_fault.jsonl");

  FaultPlan p;
  p.journal_fail_at_record = 1;
  ScopedFaultPlan guard(p);
  BatchRunner runner(bo);
  const BatchResult r = runner.run(benches);
  // The first append fails and disables journaling; the batch still
  // computes every row.
  EXPECT_EQ(r.journal_errors, 1u);
  ASSERT_EQ(r.rows.size(), 3u);
  for (const FlowRow& row : r.rows)
    EXPECT_FALSE(row.worst_status().is_failed()) << row.circuit;
  std::remove(bo.journal_path.c_str());
}

TEST(Resilience, FlowRowFromJsonRejectsMalformedRecords) {
  EXPECT_THROW(flow_row_from_json(obs::Json::parse("[1,2,3]")), RmsynError);
  obs::Json bad = obs::Json::object();
  bad["circuit"] = "x";
  obs::Json status = obs::Json::object();
  obs::Json ours = obs::Json::object();
  ours["outcome"] = "not-an-outcome";
  status["ours"] = std::move(ours);
  bad["status"] = std::move(status);
  EXPECT_THROW(flow_row_from_json(bad), RmsynError);
}

TEST(Resilience, AigerTruncationSweepNeverCrashes) {
  for (const bool binary : {false, true}) {
    const Network net = make_benchmark("adder3").spec;
    const std::string bytes = write_aiger_string(net, binary);
    ASSERT_FALSE(bytes.empty());
    // Every prefix must parse cleanly or throw a classified parse error —
    // never crash, hang, or read out of bounds (ASan enforces the latter).
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      try {
        (void)read_aiger_string(bytes.substr(0, len));
      } catch (const RmsynError& e) {
        EXPECT_EQ(e.code(), ErrorCode::ParseError) << "len=" << len;
      }
    }
    // Single-byte corruption sweep on the header line: same contract.
    const std::size_t header_end = bytes.find('\n');
    ASSERT_NE(header_end, std::string::npos);
    for (std::size_t i = 0; i < header_end; ++i) {
      for (const char replacement : {'\0', '9', ' ', 'x'}) {
        std::string mutated = bytes;
        mutated[i] = replacement;
        try {
          (void)read_aiger_string(mutated);
        } catch (const RmsynError& e) {
          EXPECT_EQ(e.code(), ErrorCode::ParseError) << "byte " << i;
        }
      }
    }
  }
}

} // namespace
} // namespace rmsyn
