// Error taxonomy (util/errors.hpp) and fault plan (util/faultplan.hpp):
// classification, exit-code mapping, string round-trips, exception
// classification, and the deterministic IO fault hooks.
#include "util/errors.hpp"

#include <gtest/gtest.h>

#include <new>
#include <stdexcept>

#include "util/faultplan.hpp"

namespace rmsyn {
namespace {

const ErrorCode kAllCodes[] = {
    ErrorCode::None,           ErrorCode::BudgetDeadline,
    ErrorCode::BudgetNodes,    ErrorCode::BudgetSteps,
    ErrorCode::Cancelled,      ErrorCode::InjectedFault,
    ErrorCode::IoTransient,    ErrorCode::ParseError,
    ErrorCode::InvariantViolation, ErrorCode::VerifyMismatch,
    ErrorCode::Internal,
};

TEST(Errors, ClassificationSplitsTransientFromFatal) {
  for (const ErrorCode c :
       {ErrorCode::BudgetDeadline, ErrorCode::BudgetNodes,
        ErrorCode::BudgetSteps, ErrorCode::Cancelled, ErrorCode::InjectedFault,
        ErrorCode::IoTransient}) {
    EXPECT_EQ(error_class(c), ErrorClass::TransientRetryable) << to_string(c);
    EXPECT_TRUE(is_retryable(c)) << to_string(c);
  }
  for (const ErrorCode c :
       {ErrorCode::ParseError, ErrorCode::InvariantViolation,
        ErrorCode::VerifyMismatch, ErrorCode::Internal}) {
    EXPECT_EQ(error_class(c), ErrorClass::DeterministicFatal) << to_string(c);
    EXPECT_FALSE(is_retryable(c)) << to_string(c);
  }
  EXPECT_EQ(error_class(ErrorCode::None), ErrorClass::None);
  EXPECT_FALSE(is_retryable(ErrorCode::None));
}

TEST(Errors, NamesRoundTripThroughStrings) {
  for (const ErrorCode c : kAllCodes) {
    EXPECT_EQ(error_code_from_string(to_string(c)), c) << to_string(c);
  }
  // Unknown names (journal written by a newer build) degrade to Internal.
  EXPECT_EQ(error_code_from_string("no-such-code"), ErrorCode::Internal);
  EXPECT_EQ(error_code_from_string(""), ErrorCode::Internal);
}

TEST(Errors, ExitCodesAreStable) {
  EXPECT_EQ(exit_code_for_error(ErrorCode::None), ExitCode::Ok);
  EXPECT_EQ(exit_code_for_error(ErrorCode::ParseError), ExitCode::FatalInput);
  EXPECT_EQ(exit_code_for_error(ErrorCode::InvariantViolation),
            ExitCode::InvariantOrVerify);
  EXPECT_EQ(exit_code_for_error(ErrorCode::VerifyMismatch),
            ExitCode::InvariantOrVerify);
  EXPECT_EQ(exit_code_for_error(ErrorCode::Internal), ExitCode::Usage);
  for (const ErrorCode c :
       {ErrorCode::BudgetDeadline, ErrorCode::BudgetNodes,
        ErrorCode::BudgetSteps, ErrorCode::Cancelled, ErrorCode::InjectedFault,
        ErrorCode::IoTransient}) {
    EXPECT_EQ(exit_code_for_error(c), ExitCode::TransientFailure)
        << to_string(c);
  }
  // The numeric values themselves are a CLI contract (README, CI).
  EXPECT_EQ(ExitCode::Ok, 0);
  EXPECT_EQ(ExitCode::Usage, 1);
  EXPECT_EQ(ExitCode::BudgetDegraded, 2);
  EXPECT_EQ(ExitCode::TransientFailure, 3);
  EXPECT_EQ(ExitCode::FatalInput, 4);
  EXPECT_EQ(ExitCode::InvariantOrVerify, 5);
}

TEST(Errors, RmsynErrorCarriesCodeAndMessage) {
  const RmsynError e(ErrorCode::ParseError, "bad PLA at line 3");
  EXPECT_EQ(e.code(), ErrorCode::ParseError);
  EXPECT_STREQ(e.what(), "bad PLA at line 3");
}

TEST(Errors, ClassifyExceptionMapsKnownTypes) {
  const RmsynError re(ErrorCode::InjectedFault, "boom");
  EXPECT_EQ(classify_exception(re), ErrorCode::InjectedFault);
  const std::bad_alloc oom;
  EXPECT_EQ(classify_exception(oom), ErrorCode::BudgetNodes);
  const std::logic_error le("verify");
  EXPECT_EQ(classify_exception(le), ErrorCode::VerifyMismatch);
  const std::runtime_error other("mystery");
  EXPECT_EQ(classify_exception(other), ErrorCode::Internal);
}

TEST(FaultPlanTest, ParseReadsEveryKey) {
  const FaultPlan p =
      FaultPlan::parse("seed=7,truncate=10,corrupt=3,arena=100,journal=2");
  EXPECT_EQ(p.seed, 7u);
  EXPECT_EQ(p.io_truncate_at, 10u);
  EXPECT_EQ(p.io_corrupt_at, 3u);
  EXPECT_EQ(p.arena_fail_at_node, 100u);
  EXPECT_EQ(p.journal_fail_at_record, 2u);
  EXPECT_TRUE(p.any_io());
  const FaultPlan none = FaultPlan::parse("seed=1");
  EXPECT_FALSE(none.any_io());
}

TEST(FaultPlanTest, ParseRejectsMalformedSpecs) {
  for (const char* bad :
       {"bogus=1", "seed", "seed=", "seed=notanum", "=3",
        "arena=18446744073709551616" /* 2^64: overflow */}) {
    try {
      FaultPlan::parse(bad);
      FAIL() << "accepted: " << bad;
    } catch (const RmsynError& e) {
      EXPECT_EQ(e.code(), ErrorCode::ParseError) << bad;
    }
  }
}

TEST(FaultPlanTest, IoFaultsAreDeterministicAndScoped) {
  const std::string original = "abcdefghij";
  // No plan installed: identity.
  EXPECT_EQ(apply_io_faults(original), original);

  FaultPlan p;
  p.seed = 42;
  p.io_truncate_at = 4;
  {
    ScopedFaultPlan guard(p);
    EXPECT_EQ(apply_io_faults(original), "abcd");
    // Truncation point past the end is a no-op.
    FaultPlan p2 = p;
    p2.io_truncate_at = 100;
    install_fault_plan(p2);
    EXPECT_EQ(apply_io_faults(original), original);
  }
  // Guard cleared the plan.
  EXPECT_EQ(apply_io_faults(original), original);

  FaultPlan c;
  c.seed = 42;
  c.io_corrupt_at = 3;
  {
    ScopedFaultPlan guard(c);
    const std::string once = apply_io_faults(original);
    EXPECT_EQ(once.size(), original.size());
    EXPECT_NE(once, original); // XOR value is forced odd: always a change
    EXPECT_EQ(once.substr(0, 2), "ab");
    EXPECT_EQ(once.substr(3), "defghij");
    EXPECT_EQ(apply_io_faults(original), once); // deterministic
  }
}

TEST(FaultPlanTest, ArenaFaultIsOneShot) {
  FaultPlan p;
  p.arena_fail_at_node = 2;
  ScopedFaultPlan guard(p);
  fault_count_node(); // node 1: armed at 2, no throw
  try {
    fault_count_node(); // node 2: fires
    FAIL() << "expected injected fault";
  } catch (const RmsynError& e) {
    EXPECT_EQ(e.code(), ErrorCode::InjectedFault);
  }
  EXPECT_NO_THROW(fault_count_node()); // one-shot: never fires again
  EXPECT_NO_THROW(fault_count_node());
}

TEST(FaultPlanTest, JournalFaultFiresExactlyOnce) {
  FaultPlan p;
  p.journal_fail_at_record = 3;
  ScopedFaultPlan guard(p);
  EXPECT_FALSE(fault_journal_append());
  EXPECT_FALSE(fault_journal_append());
  EXPECT_TRUE(fault_journal_append()); // the 3rd append fails
  EXPECT_FALSE(fault_journal_append());
}

} // namespace
} // namespace rmsyn
