// Section 3 tests: both factorization methods build networks equivalent to
// the FPRM form, and the Reduction-rule shapes (a) and (b) produce the
// expected gate structures.
#include <gtest/gtest.h>

#include "core/factor_cubes.hpp"
#include "core/factor_ofdd.hpp"
#include "core/xor_expr.hpp"
#include "equiv/equiv.hpp"
#include "network/stats.hpp"
#include "util/rng.hpp"

namespace rmsyn {
namespace {

TruthTable random_tt(int n, Rng& rng) {
  TruthTable f(n);
  for (uint64_t m = 0; m < f.size(); ++m)
    if (rng.flip()) f.set(m);
  return f;
}

struct Built {
  Network net;
};

Built build_with(const TruthTable& f, const BitVec& pol, bool use_cubes) {
  BddManager mgr(f.nvars());
  const BddRef fb = mgr.from_cover(Cover::from_truth_table(f));
  const Ofdd o = build_ofdd(mgr, fb, pol);
  Built b;
  std::vector<NodeId> pis;
  for (int v = 0; v < f.nvars(); ++v) pis.push_back(b.net.add_pi());
  NodeId root;
  if (use_cubes) {
    const FprmForm form = extract_fprm(mgr, o, f.nvars());
    root = factor_cubes(b.net, pis, form);
  } else {
    root = factor_ofdd(b.net, pis, mgr, o);
  }
  b.net.add_po(root);
  return b;
}

class FactorRandom
    : public ::testing::TestWithParam<std::tuple<int, uint64_t, bool>> {};

TEST_P(FactorRandom, BuildsEquivalentNetwork) {
  const auto [n, seed, use_cubes] = GetParam();
  Rng rng(seed);
  for (int iter = 0; iter < 8; ++iter) {
    const TruthTable f = random_tt(n, rng);
    BitVec pol(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v)
      if (rng.flip()) pol.set(static_cast<std::size_t>(v));
    const Built b = build_with(f, pol, use_cubes);
    const auto r = check_against_tts(b.net, {f});
    EXPECT_TRUE(r.equivalent) << r.reason;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FactorRandom,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 6), ::testing::Values(11, 22),
                       ::testing::Bool()));

TEST(FactorCubes, RuleA_ProducesAndNotInsteadOfXor) {
  // f = a ⊕ ab = a·b̄ — one AND and one inverter, no XOR.
  Network net;
  std::vector<NodeId> pis{net.add_pi(), net.add_pi()};
  FprmForm form;
  form.nvars = 2;
  form.support = {0, 1};
  form.polarity = BitVec(2);
  form.polarity.set_all();
  BitVec c1(2);
  c1.set(0); // a
  BitVec c2(2);
  c2.set(0);
  c2.set(1); // ab
  form.cubes = {c1, c2};
  net.add_po(factor_cubes(net, pis, form));
  const auto s = network_stats(net);
  EXPECT_EQ(s.num_xor2, 0u);
  EXPECT_EQ(s.gates2, 1u);
  // And the function is right: a AND NOT b.
  const auto tt = TruthTable::variable(2, 0) & ~TruthTable::variable(2, 1);
  EXPECT_TRUE(check_against_tts(net, {tt}).equivalent);
}

TEST(FactorCubes, RuleB_ProducesOr) {
  // f = a ⊕ b ⊕ ab = a + b.
  Network net;
  std::vector<NodeId> pis{net.add_pi(), net.add_pi()};
  FprmForm form;
  form.nvars = 2;
  form.support = {0, 1};
  form.polarity = BitVec(2);
  form.polarity.set_all();
  BitVec a(2), b(2), ab(2);
  a.set(0);
  b.set(1);
  ab.set(0);
  ab.set(1);
  form.cubes = {a, b, ab};
  net.add_po(factor_cubes(net, pis, form));
  const auto s = network_stats(net);
  EXPECT_EQ(s.num_xor2, 0u);
  EXPECT_EQ(s.gates2, 1u);
  const auto tt = TruthTable::variable(2, 0) | TruthTable::variable(2, 1);
  EXPECT_TRUE(check_against_tts(net, {tt}).equivalent);
}

TEST(FactorCubes, DisjointGroupsJoinedByXorTree) {
  // f = ab ⊕ cd: two disjoint groups.
  Network net;
  std::vector<NodeId> pis;
  for (int i = 0; i < 4; ++i) pis.push_back(net.add_pi());
  FprmForm form;
  form.nvars = 4;
  form.support = {0, 1, 2, 3};
  form.polarity = BitVec(4);
  form.polarity.set_all();
  BitVec ab(4), cd(4);
  ab.set(0);
  ab.set(1);
  cd.set(2);
  cd.set(3);
  form.cubes = {ab, cd};
  net.add_po(factor_cubes(net, pis, form));
  const auto s = network_stats(net);
  EXPECT_EQ(s.num_xor2, 1u);
  EXPECT_EQ(s.gates2, 5u); // 2 ANDs + XOR(3)
}

TEST(FactorCubes, DuplicateCubesCancel) {
  Network net;
  std::vector<NodeId> pis{net.add_pi(), net.add_pi()};
  FprmForm form;
  form.nvars = 2;
  form.support = {0, 1};
  form.polarity = BitVec(2);
  form.polarity.set_all();
  BitVec ab(2);
  ab.set(0);
  ab.set(1);
  form.cubes = {ab, ab}; // C ⊕ C = 0
  const NodeId root = factor_cubes(net, pis, form);
  EXPECT_EQ(root, Network::kConst0);
}

TEST(FactorOfdd, NegativePolarityLiteralsAreInverted) {
  // f with all-negative polarity: f = x̄0·x̄1 (single cube).
  const TruthTable f = ~TruthTable::variable(2, 0) & ~TruthTable::variable(2, 1);
  BitVec pol(2); // all negative
  const Built b = build_with(f, pol, /*use_cubes=*/false);
  EXPECT_TRUE(check_against_tts(b.net, {f}).equivalent);
  EXPECT_EQ(network_stats(b.net).num_xor2, 0u);
}

TEST(SharedOfdd, CrossOutputSharingOnAdder) {
  // A 4-bit adder built per-output with the shared builder must be much
  // smaller than the sum of independent per-output constructions, because
  // the carry spectra are shared.
  const int nbits = 4;
  const int n = 2 * nbits; // a,b interleaved per bit, no carry-in
  BddManager mgr(n);
  // MSB-first order benefits sharing (reach-heuristic order); construct
  // directly in that order: var 2k = a_{nbits-1-k}, var 2k+1 = b_...
  std::vector<BddRef> sums;
  {
    // Build with BDD arithmetic: carries LSB-up. LSB vars are the last.
    std::vector<BddRef> av(nbits), bv(nbits);
    for (int k = 0; k < nbits; ++k) {
      av[static_cast<std::size_t>(k)] = mgr.var(2 * (nbits - 1 - k));
      bv[static_cast<std::size_t>(k)] = mgr.var(2 * (nbits - 1 - k) + 1);
    }
    BddRef carry = mgr.bdd_false();
    for (int k = 0; k < nbits; ++k) {
      const BddRef a = av[static_cast<std::size_t>(k)];
      const BddRef b = bv[static_cast<std::size_t>(k)];
      sums.push_back(mgr.bdd_xor(mgr.bdd_xor(a, b), carry));
      carry = mgr.bdd_or(mgr.bdd_and(a, b),
                         mgr.bdd_and(carry, mgr.bdd_xor(a, b)));
    }
    sums.push_back(carry);
  }
  BitVec pol(static_cast<std::size_t>(n));
  pol.set_all();
  std::vector<int> all_vars;
  for (int v = 0; v < n; ++v) all_vars.push_back(v);

  Network shared_net;
  std::vector<NodeId> pis;
  for (int v = 0; v < n; ++v) pis.push_back(shared_net.add_pi());
  SharedOfddBuilder builder(shared_net, pis, mgr, pol);
  for (const BddRef s : sums)
    shared_net.add_po(builder.build(rm_spectrum(mgr, s, all_vars, pol)));

  Network indep_net;
  std::vector<NodeId> pis2;
  for (int v = 0; v < n; ++v) pis2.push_back(indep_net.add_pi());
  for (const BddRef s : sums)
    indep_net.add_po(factor_ofdd(indep_net, pis2, mgr, build_ofdd(mgr, s, pol)));

  EXPECT_TRUE(check_equivalence(shared_net, indep_net).equivalent);
  EXPECT_LT(network_stats(shared_net).gates2,
            network_stats(indep_net).gates2);
}

TEST(XorExpr, GroupByDisjointSupport) {
  std::vector<BitVec> cubes(4, BitVec(6));
  cubes[0].set(0);
  cubes[0].set(1); // {0,1}
  cubes[1].set(1);
  cubes[1].set(2); // {1,2} — connects to cube 0
  cubes[2].set(4); // {4}
  cubes[3].set(5); // {5}
  const auto groups = group_by_disjoint_support(cubes);
  EXPECT_EQ(groups.size(), 3u);
}

TEST(XorExpr, BalancedTreeNeutralElements) {
  Network net;
  EXPECT_EQ(balanced_gate_tree(net, GateType::And, {}), Network::kConst1);
  EXPECT_EQ(balanced_gate_tree(net, GateType::Xor, {}), Network::kConst0);
  const NodeId a = net.add_pi();
  EXPECT_EQ(balanced_gate_tree(net, GateType::Or, {a}), a);
}

} // namespace
} // namespace rmsyn
