#include "tt/truth_table.hpp"

#include <algorithm>
#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace rmsyn {
namespace {

TEST(TruthTable, ConstantsAndVariables) {
  const auto zero = TruthTable::constant(3, false);
  const auto one = TruthTable::constant(3, true);
  EXPECT_TRUE(zero.is_const0());
  EXPECT_TRUE(one.is_const1());
  const auto x1 = TruthTable::variable(3, 1);
  EXPECT_EQ(x1.count_ones(), 4u);
  EXPECT_FALSE(x1.get(0b000));
  EXPECT_TRUE(x1.get(0b010));
}

TEST(TruthTable, BooleanOps) {
  const auto a = TruthTable::variable(2, 0);
  const auto b = TruthTable::variable(2, 1);
  const auto axb = a ^ b;
  EXPECT_FALSE(axb.get(0b00));
  EXPECT_TRUE(axb.get(0b01));
  EXPECT_TRUE(axb.get(0b10));
  EXPECT_FALSE(axb.get(0b11));
  EXPECT_EQ((a & b).count_ones(), 1u);
  EXPECT_EQ((a | b).count_ones(), 3u);
  EXPECT_EQ((~a).count_ones(), 2u);
}

TEST(TruthTable, CofactorAndSupport) {
  // f = x0 ⊕ x1x2
  const auto f = TruthTable::variable(3, 0) ^
                 (TruthTable::variable(3, 1) & TruthTable::variable(3, 2));
  EXPECT_TRUE(f.depends_on(0));
  EXPECT_TRUE(f.depends_on(1));
  EXPECT_TRUE(f.depends_on(2));
  const auto f1 = f.cofactor(1, false); // x1=0: f = x0
  EXPECT_EQ(f1, TruthTable::variable(3, 0));
  EXPECT_EQ(f.support(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(f1.support(), (std::vector<int>{0}));
}

TEST(TruthTable, ReedMullerOfKnownFunctions) {
  // PPRM of AND is the single coefficient x0x1.
  const auto andf = TruthTable::variable(2, 0) & TruthTable::variable(2, 1);
  auto spec = andf.pprm_spectrum();
  EXPECT_EQ(spec.count_ones(), 1u);
  EXPECT_TRUE(spec.get(0b11));

  // PPRM of OR = x0 ⊕ x1 ⊕ x0x1.
  const auto orf = TruthTable::variable(2, 0) | TruthTable::variable(2, 1);
  spec = orf.pprm_spectrum();
  EXPECT_EQ(spec.count_ones(), 3u);
  EXPECT_TRUE(spec.get(0b01));
  EXPECT_TRUE(spec.get(0b10));
  EXPECT_TRUE(spec.get(0b11));
  EXPECT_FALSE(spec.get(0b00));

  // XOR has exactly the two linear coefficients.
  const auto xorf = TruthTable::variable(2, 0) ^ TruthTable::variable(2, 1);
  spec = xorf.pprm_spectrum();
  EXPECT_EQ(spec.count_ones(), 2u);
}

class TTRandom : public ::testing::TestWithParam<int> {};

TEST_P(TTRandom, ReedMullerTransformIsAnInvolution) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 97 + 1);
  TruthTable f(n);
  for (uint64_t m = 0; m < f.size(); ++m)
    if (rng.flip()) f.set(m);
  TruthTable g = f;
  g.reed_muller_transform();
  g.reed_muller_transform();
  EXPECT_EQ(f, g);
}

TEST_P(TTRandom, SpectrumEvaluatesBackToFunction) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 131 + 7);
  TruthTable f(n);
  for (uint64_t m = 0; m < f.size(); ++m)
    if (rng.flip()) f.set(m);
  const TruthTable spec = f.pprm_spectrum();
  // f(x) = XOR over S subseteq x (bitwise) of spec(S).
  for (uint64_t x = 0; x < f.size(); ++x) {
    bool acc = false;
    for (uint64_t s = 0; s < f.size(); ++s)
      if ((s & ~x) == 0 && spec.get(s)) acc = !acc;
    EXPECT_EQ(acc, f.get(x)) << "minterm " << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TTRandom, ::testing::Values(1, 2, 3, 4, 5, 6, 8));

TruthTable table_from_bits(int nvars, uint64_t bits) {
  TruthTable f(nvars);
  for (uint64_t m = 0; m < f.size(); ++m)
    if ((bits >> m) & 1) f.set(m);
  return f;
}

TEST(TruthTable, PermuteInputsExhaustive3) {
  // g = f.permute_inputs(perm) must satisfy g(y) = f(x), x_i = y_{perm[i]},
  // for ALL 256 3-variable functions and all 6 permutations.
  std::vector<int> perm = {0, 1, 2};
  do {
    for (unsigned bits = 0; bits < 256; ++bits) {
      const TruthTable f = table_from_bits(3, bits);
      const TruthTable g = f.permute_inputs(perm);
      for (uint64_t y = 0; y < 8; ++y) {
        uint64_t x = 0;
        for (int i = 0; i < 3; ++i)
          if ((y >> perm[i]) & 1) x |= uint64_t{1} << i;
        EXPECT_EQ(g.get(y), f.get(x));
      }
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
}

TEST(TruthTable, PermuteInverseRoundTrips) {
  Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    TruthTable f(4);
    for (uint64_t m = 0; m < f.size(); ++m)
      if (rng.flip()) f.set(m);
    std::vector<int> perm = {0, 1, 2, 3};
    for (int i = 3; i > 0; --i)
      std::swap(perm[i], perm[rng.below(static_cast<uint64_t>(i) + 1)]);
    std::vector<int> inv(4);
    for (int i = 0; i < 4; ++i) inv[perm[i]] = i;
    EXPECT_EQ(f.permute_inputs(perm).permute_inputs(inv), f);
  }
}

TEST(TruthTable, NegateInputsExhaustive3) {
  // g = f.negate_inputs(mask) must satisfy g(y) = f(y ^ mask), for all 256
  // functions and all 8 masks; negate_input(v) is the single-bit case.
  for (unsigned bits = 0; bits < 256; ++bits) {
    const TruthTable f = table_from_bits(3, bits);
    for (uint64_t mask = 0; mask < 8; ++mask) {
      const TruthTable g = f.negate_inputs(mask);
      for (uint64_t y = 0; y < 8; ++y) EXPECT_EQ(g.get(y), f.get(y ^ mask));
    }
    for (int v = 0; v < 3; ++v)
      EXPECT_EQ(f.negate_input(v), f.negate_inputs(uint64_t{1} << v));
  }
}

TEST(TruthTable, ShrinkToSupportExhaustive3) {
  // Shrinking projects onto the true support: new variable j is fed from
  // old variable support()[j], checked by re-evaluating every minterm.
  for (unsigned bits = 0; bits < 256; ++bits) {
    const TruthTable f = table_from_bits(3, bits);
    const std::vector<int> sup = f.support();
    const TruthTable h = f.shrink_to_support();
    EXPECT_EQ(h.nvars(), static_cast<int>(sup.size()));
    for (uint64_t m = 0; m < 8; ++m) {
      uint64_t packed = 0;
      for (std::size_t j = 0; j < sup.size(); ++j)
        if ((m >> sup[j]) & 1) packed |= uint64_t{1} << j;
      EXPECT_EQ(f.get(m), h.get(packed)) << "bits=" << bits << " m=" << m;
    }
  }
}

TEST(TruthTable, ExtendAddsIrrelevantVariables) {
  for (unsigned bits = 0; bits < 16; ++bits) {
    const TruthTable f = table_from_bits(2, bits);
    const TruthTable g = f.extend(4);
    EXPECT_EQ(g.nvars(), 4);
    for (uint64_t m = 0; m < 16; ++m) EXPECT_EQ(g.get(m), f.get(m & 3));
    EXPECT_FALSE(g.depends_on(2));
    EXPECT_FALSE(g.depends_on(3));
    // Shrinking away the padding vars and re-extending restores g — but
    // only when the support is a variable prefix, because shrink compacts
    // support vars down to the low positions (f = x1 shrinks to x0).
    const TruthTable h = g.shrink_to_support();
    EXPECT_LE(h.nvars(), 2);
    if (f.depends_on(0) || !f.depends_on(1)) EXPECT_EQ(h.extend(4), g);
  }
}

} // namespace
} // namespace rmsyn
