#include "tt/truth_table.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace rmsyn {
namespace {

TEST(TruthTable, ConstantsAndVariables) {
  const auto zero = TruthTable::constant(3, false);
  const auto one = TruthTable::constant(3, true);
  EXPECT_TRUE(zero.is_const0());
  EXPECT_TRUE(one.is_const1());
  const auto x1 = TruthTable::variable(3, 1);
  EXPECT_EQ(x1.count_ones(), 4u);
  EXPECT_FALSE(x1.get(0b000));
  EXPECT_TRUE(x1.get(0b010));
}

TEST(TruthTable, BooleanOps) {
  const auto a = TruthTable::variable(2, 0);
  const auto b = TruthTable::variable(2, 1);
  const auto axb = a ^ b;
  EXPECT_FALSE(axb.get(0b00));
  EXPECT_TRUE(axb.get(0b01));
  EXPECT_TRUE(axb.get(0b10));
  EXPECT_FALSE(axb.get(0b11));
  EXPECT_EQ((a & b).count_ones(), 1u);
  EXPECT_EQ((a | b).count_ones(), 3u);
  EXPECT_EQ((~a).count_ones(), 2u);
}

TEST(TruthTable, CofactorAndSupport) {
  // f = x0 ⊕ x1x2
  const auto f = TruthTable::variable(3, 0) ^
                 (TruthTable::variable(3, 1) & TruthTable::variable(3, 2));
  EXPECT_TRUE(f.depends_on(0));
  EXPECT_TRUE(f.depends_on(1));
  EXPECT_TRUE(f.depends_on(2));
  const auto f1 = f.cofactor(1, false); // x1=0: f = x0
  EXPECT_EQ(f1, TruthTable::variable(3, 0));
  EXPECT_EQ(f.support(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(f1.support(), (std::vector<int>{0}));
}

TEST(TruthTable, ReedMullerOfKnownFunctions) {
  // PPRM of AND is the single coefficient x0x1.
  const auto andf = TruthTable::variable(2, 0) & TruthTable::variable(2, 1);
  auto spec = andf.pprm_spectrum();
  EXPECT_EQ(spec.count_ones(), 1u);
  EXPECT_TRUE(spec.get(0b11));

  // PPRM of OR = x0 ⊕ x1 ⊕ x0x1.
  const auto orf = TruthTable::variable(2, 0) | TruthTable::variable(2, 1);
  spec = orf.pprm_spectrum();
  EXPECT_EQ(spec.count_ones(), 3u);
  EXPECT_TRUE(spec.get(0b01));
  EXPECT_TRUE(spec.get(0b10));
  EXPECT_TRUE(spec.get(0b11));
  EXPECT_FALSE(spec.get(0b00));

  // XOR has exactly the two linear coefficients.
  const auto xorf = TruthTable::variable(2, 0) ^ TruthTable::variable(2, 1);
  spec = xorf.pprm_spectrum();
  EXPECT_EQ(spec.count_ones(), 2u);
}

class TTRandom : public ::testing::TestWithParam<int> {};

TEST_P(TTRandom, ReedMullerTransformIsAnInvolution) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 97 + 1);
  TruthTable f(n);
  for (uint64_t m = 0; m < f.size(); ++m)
    if (rng.flip()) f.set(m);
  TruthTable g = f;
  g.reed_muller_transform();
  g.reed_muller_transform();
  EXPECT_EQ(f, g);
}

TEST_P(TTRandom, SpectrumEvaluatesBackToFunction) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 131 + 7);
  TruthTable f(n);
  for (uint64_t m = 0; m < f.size(); ++m)
    if (rng.flip()) f.set(m);
  const TruthTable spec = f.pprm_spectrum();
  // f(x) = XOR over S subseteq x (bitwise) of spec(S).
  for (uint64_t x = 0; x < f.size(); ++x) {
    bool acc = false;
    for (uint64_t s = 0; s < f.size(); ++s)
      if ((s & ~x) == 0 && spec.get(s)) acc = !acc;
    EXPECT_EQ(acc, f.get(x)) << "minterm " << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TTRandom, ::testing::Values(1, 2, 3, 4, 5, 6, 8));

} // namespace
} // namespace rmsyn
