// Algebraic division and kernel tests (the Brayton-McMullen substrate of
// the baseline).
#include <gtest/gtest.h>

#include "baseline/divide.hpp"
#include "baseline/kernels.hpp"
#include "util/rng.hpp"

namespace rmsyn {
namespace {

Cover cover_of(std::initializer_list<const char*> cubes) {
  Cover f(0);
  bool first = true;
  for (const char* s : cubes) {
    const Cube c = Cube::parse(s);
    if (first) {
      f = Cover(c.nvars());
      first = false;
    }
    f.add(c);
  }
  return f;
}

TEST(Divide, ByCube) {
  // F = abc + abd + e; divide by ab.
  const Cover f = cover_of({"111--", "11-1-", "----1"});
  Cube ab(5);
  ab.add_pos(0);
  ab.add_pos(1);
  const auto [q, r] = divide_by_cube(f, ab);
  EXPECT_EQ(q.size(), 2u); // c + d
  EXPECT_EQ(r.size(), 1u); // e
}

TEST(Divide, ByMultiCubeDivisor) {
  // F = ac + ad + bc + bd + e = (a+b)(c+d) + e; divide by (c+d).
  const Cover f = cover_of({"1-1--", "1--1-", "-11--", "-1-1-", "----1"});
  const Cover d = cover_of({"--1--", "---1-"});
  const auto [q, r] = divide(f, d);
  EXPECT_EQ(q.size(), 2u); // a + b
  EXPECT_EQ(r.size(), 1u); // e
  // Reconstruction: F == Q·D + R as functions.
  const Cover rebuilt = (q & d) | r;
  EXPECT_EQ(rebuilt.to_truth_table(), f.to_truth_table());
}

TEST(Divide, EmptyQuotientLeavesRemainder) {
  const Cover f = cover_of({"1--", "-1-"});
  const Cover d = cover_of({"--1", "0--"});
  const auto [q, r] = divide(f, d);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(r.size(), f.size());
}

TEST(Divide, LargestCommonCube) {
  const Cover f = cover_of({"11-1", "1-11"});
  const Cube c = largest_common_cube(f);
  EXPECT_EQ(c.to_string(), "1--1");
  EXPECT_FALSE(is_cube_free(f));
  EXPECT_TRUE(is_cube_free(cover_of({"1-", "-1"})));
}

TEST(Kernels, TextbookExample) {
  // F = adf + aef + bdf + bef + cdf + cef + g
  //   = (a+b+c)(d+e)f + g. Kernels include (d+e) and (a+b+c) and F itself.
  const int A = 0, B = 1, C = 2, D = 3, E = 4, Fv = 5, G = 6;
  Cover f(7);
  const auto add3 = [&](int x, int y, int z) {
    Cube c(7);
    c.add_pos(x);
    c.add_pos(y);
    c.add_pos(z);
    f.add(c);
  };
  add3(A, D, Fv);
  add3(A, E, Fv);
  add3(B, D, Fv);
  add3(B, E, Fv);
  add3(C, D, Fv);
  add3(C, E, Fv);
  Cube g(7);
  g.add_pos(G);
  f.add(g);

  const auto ks = kernels(f);
  // Look for the (d+e) kernel.
  bool found_de = false, found_abc = false;
  for (const auto& k : ks) {
    if (k.kernel.size() == 2) {
      bool d_found = false, e_found = false;
      for (const auto& c : k.kernel.cubes()) {
        if (c.has_pos(D) && c.literal_count() == 1) d_found = true;
        if (c.has_pos(E) && c.literal_count() == 1) e_found = true;
      }
      found_de |= d_found && e_found;
    }
    if (k.kernel.size() == 3) {
      int singles = 0;
      for (const auto& c : k.kernel.cubes())
        if (c.literal_count() == 1 &&
            (c.has_pos(A) || c.has_pos(B) || c.has_pos(C)))
          ++singles;
      found_abc |= singles == 3;
    }
  }
  EXPECT_TRUE(found_de);
  EXPECT_TRUE(found_abc);
  // Every kernel must be cube-free.
  for (const auto& k : ks)
    EXPECT_TRUE(k.kernel.size() < 2 || is_cube_free(k.kernel));
}

TEST(Kernels, CoKernelReconstruction) {
  // Each kernel satisfies: divide(F, kernel).quotient contains co_kernel.
  const Cover f = cover_of({"11--", "1-1-", "-11-", "---1"});
  for (const auto& k : kernels(f)) {
    if (k.kernel.size() < 2) continue;
    const auto [q, r] = divide(f, k.kernel);
    (void)r;
    bool has_cokernel = false;
    for (const auto& c : q.cubes())
      if (c == k.co_kernel) has_cokernel = true;
    EXPECT_TRUE(has_cokernel);
  }
}

TEST(Kernels, CubeFreeFunctionIsItsOwnKernel) {
  const Cover f = cover_of({"1-", "-1"});
  const auto ks = kernels(f);
  bool self = false;
  for (const auto& k : ks)
    if (k.kernel.size() == f.size() && k.co_kernel.is_universal()) self = true;
  EXPECT_TRUE(self);
}

TEST(Kernels, SingleCubeHasNoKernels) {
  EXPECT_TRUE(kernels(cover_of({"110"})).empty());
  EXPECT_TRUE(level0_kernels(cover_of({"110"})).empty());
}

TEST(Kernels, Level0AreKernelsWithoutSubkernels) {
  const Cover f = cover_of({"11-", "1-1", "-11"});
  for (const auto& k : level0_kernels(f)) {
    // A level-0 kernel has no literal appearing in two of its cubes.
    const auto& cubes = k.kernel.cubes();
    for (int v = 0; v < k.kernel.nvars(); ++v) {
      int pos = 0, neg = 0;
      for (const auto& c : cubes) {
        if (c.has_pos(v)) ++pos;
        if (c.has_neg(v)) ++neg;
      }
      EXPECT_LE(pos, 1);
      EXPECT_LE(neg, 1);
    }
  }
}

TEST(Divide, RandomizedQuotientRemainderInvariant) {
  Rng rng(31337);
  for (int iter = 0; iter < 40; ++iter) {
    const int n = 5;
    Cover f(n);
    const int ncubes = 2 + static_cast<int>(rng.below(6));
    for (int c = 0; c < ncubes; ++c) {
      Cube cube(n);
      for (int v = 0; v < n; ++v) {
        const auto r = rng.below(4);
        if (r == 0) cube.add_pos(v);
        else if (r == 1) cube.add_neg(v);
      }
      f.add(std::move(cube));
    }
    for (const auto& k : kernels(f, 16)) {
      if (k.kernel.empty()) continue;
      const auto [q, r] = divide(f, k.kernel);
      if (q.empty()) continue;
      const Cover rebuilt = (q & k.kernel) | r;
      EXPECT_EQ(rebuilt.to_truth_table(), f.to_truth_table());
    }
  }
}

} // namespace
} // namespace rmsyn
