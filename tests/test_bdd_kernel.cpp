// Kernel-level tests for the production DD features: complement-edge
// canonicity, the bounded computed table, reference-counted GC, and sifting
// reordering. Functional behaviour of the ops themselves is covered by
// test_bdd.cpp; this file exercises the machinery underneath.
#include "bdd/bdd.hpp"

#include <gtest/gtest.h>

#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace rmsyn {
namespace {

TruthTable to_tt(BddManager& mgr, BddRef f, int nvars) {
  TruthTable t(nvars);
  for (uint64_t m = 0; m < t.size(); ++m) {
    BitVec a(static_cast<std::size_t>(nvars));
    for (int v = 0; v < nvars; ++v)
      if ((m >> v) & 1) a.set(static_cast<std::size_t>(v));
    if (mgr.eval(f, a)) t.set(m);
  }
  return t;
}

/// Builds a deterministic pseudo-random function pool, mirroring the oracle
/// test in test_bdd.cpp but returning every intermediate result.
std::vector<BddRef> random_pool(BddManager& mgr, int n, uint64_t seed,
                                int steps) {
  Rng rng(seed);
  std::vector<BddRef> pool;
  for (int v = 0; v < n; ++v) pool.push_back(mgr.var(v));
  for (int s = 0; s < steps; ++s) {
    const BddRef a = pool[rng.below(pool.size())];
    const BddRef b = pool[rng.below(pool.size())];
    switch (rng.below(4)) {
      case 0: pool.push_back(mgr.bdd_and(a, b)); break;
      case 1: pool.push_back(mgr.bdd_or(a, b)); break;
      case 2: pool.push_back(mgr.bdd_xor(a, b)); break;
      default: pool.push_back(mgr.bdd_not(a)); break;
    }
  }
  return pool;
}

// ---------------------------------------------------------------- complement

TEST(BddKernel, ComplementEdgeInvariantsHoldUnderRandomOps) {
  for (const int n : {3, 5, 8}) {
    BddManager mgr(n);
    random_pool(mgr, n, static_cast<uint64_t>(n) * 101 + 7, 60);
    // check_canonical verifies: regular then-edges everywhere, no redundant
    // nodes, strict level ordering, unique (var,lo,hi) triples, consistent
    // subtables, and edge_ref == recomputed in-degree.
    EXPECT_TRUE(mgr.check_canonical()) << "n=" << n;
  }
}

TEST(BddKernel, NegationIsFreeAndInvolutive) {
  BddManager mgr(6);
  const auto pool = random_pool(mgr, 6, 99, 40);
  const std::size_t before = mgr.node_count();
  for (const BddRef f : pool) {
    const BddRef g = mgr.bdd_not(f);
    EXPECT_NE(g, f);
    EXPECT_EQ(mgr.bdd_not(g), f); // involution
    EXPECT_EQ(g, f ^ 1u);         // pure tag flip, no new node
  }
  // bdd_not is const and allocation-free: the node table must not grow.
  EXPECT_EQ(mgr.node_count(), before);
}

TEST(BddKernel, ComplementPairsShareOneNode) {
  BddManager mgr(4);
  const BddRef f = mgr.bdd_xor(mgr.var(0), mgr.bdd_and(mgr.var(1), mgr.var(2)));
  const BddRef g = mgr.bdd_not(f);
  EXPECT_EQ(mgr.size(f), mgr.size(g));
  EXPECT_EQ(mgr.regular(f), mgr.regular(g));
}

// ------------------------------------------------------------ computed table

TEST(BddKernel, ComputedTableHitsRepeatedQueries) {
  BddManager mgr(8);
  const BddRef a = mgr.bdd_xor(mgr.var(0), mgr.var(3));
  const BddRef b = mgr.bdd_or(mgr.var(1), mgr.var(5));
  const BddRef r1 = mgr.bdd_and(a, b);
  const uint64_t hits_before = mgr.stats().cache_hits;
  const BddRef r2 = mgr.bdd_and(a, b);
  EXPECT_EQ(r1, r2);
  EXPECT_GT(mgr.stats().cache_hits, hits_before);
}

TEST(BddKernel, TinyCacheEvictsButStaysCorrect) {
  // cache_bits = 2: four slots, so nearly every insert overwrites a live
  // entry. Results must still match a generous-cache manager bit for bit.
  const int n = 6;
  BddManager small(n, /*cache_bits=*/2);
  BddManager big(n, /*cache_bits=*/16);
  const auto ps = random_pool(small, n, 4242, 80);
  const auto pb = random_pool(big, n, 4242, 80);
  ASSERT_EQ(ps.size(), pb.size());
  for (std::size_t i = 0; i < ps.size(); ++i)
    EXPECT_EQ(to_tt(small, ps[i], n), to_tt(big, pb[i], n)) << "entry " << i;
  // The tiny table must have been forced to overwrite: far more inserts than
  // slots, and it still answered some probes from cache.
  EXPECT_GT(small.stats().cache_inserts, 4u);
  EXPECT_GT(small.stats().cache_hits, 0u);
  EXPECT_TRUE(small.check_canonical());
}

TEST(BddKernel, StatsReportPositiveHitRateAfterWorkload) {
  BddManager mgr(8);
  random_pool(mgr, 8, 31337, 100);
  const BddStats s = mgr.stats();
  EXPECT_GT(s.cache_lookups, 0u);
  EXPECT_GT(s.cache_hit_rate(), 0.0);
  EXPECT_GT(s.unique_lookups, 0u);
  EXPECT_EQ(s.live_nodes, mgr.node_count());
  EXPECT_GE(s.peak_live_nodes, s.live_nodes);
}

// ---------------------------------------------------------------------- gc

TEST(BddKernel, GcKeepsReferencedFunctionsIntact) {
  const int n = 6;
  BddManager mgr(n);
  const auto pool = random_pool(mgr, n, 777, 60);
  const BddRef keep = pool.back();
  const TruthTable want = to_tt(mgr, keep, n);
  mgr.ref(keep);
  const std::size_t freed = mgr.gc();
  EXPECT_GT(freed, 0u); // the unpinned intermediates die
  EXPECT_GT(mgr.stats().gc_runs, 0u);
  EXPECT_EQ(to_tt(mgr, keep, n), want); // the pinned ref is still valid
  EXPECT_TRUE(mgr.check_canonical());
}

TEST(BddKernel, GcThenRebuildReproducesIdenticalRefs) {
  const int n = 5;
  BddManager mgr(n);
  auto build = [&] {
    return mgr.bdd_or(mgr.bdd_and(mgr.var(0), mgr.var(1)),
                      mgr.bdd_xor(mgr.var(2), mgr.bdd_and(mgr.var(3),
                                                          mgr.var(4))));
  };
  const BddRef f = build();
  const TruthTable want = to_tt(mgr, f, n);
  // Drop everything (projection vars stay pinned by the manager) …
  mgr.gc();
  EXPECT_TRUE(mgr.check_canonical());
  // … and rebuild: canonicity means the same function re-interns to a ref
  // with the same semantics, through recycled slots.
  const BddRef g = build();
  EXPECT_EQ(to_tt(mgr, g, n), want);
  EXPECT_TRUE(mgr.check_canonical());
}

TEST(BddKernel, VarProjectionsSurviveEmptyGc) {
  BddManager mgr(4);
  const BddRef v2 = mgr.var(2);
  mgr.gc();
  EXPECT_EQ(mgr.var(2), v2);
  BitVec a(4);
  a.set(2);
  EXPECT_TRUE(mgr.eval(v2, a));
}

// ----------------------------------------------------------------- reorder

/// Interleaved positive-chain function: f = ⋁ (x_i ∧ x_{k+i}) where the two
/// halves interleave badly under the identity order (size ~2^k) and collapse
/// to a linear-size BDD once sifting pairs x_i with x_{k+i}.
BddRef interleaved_and_or(BddManager& mgr, int k) {
  BddRef f = mgr.bdd_false();
  for (int i = 0; i < k; ++i)
    f = mgr.bdd_or(f, mgr.bdd_and(mgr.var(i), mgr.var(k + i)));
  return f;
}

TEST(BddKernel, ReorderShrinksOrderSensitiveFunction) {
  const int k = 8; // identity order: ~2^8 nodes; paired order: ~3k
  BddManager mgr(2 * k);
  const BddRef f = mgr.ref(interleaved_and_or(mgr, k));
  const std::size_t before = mgr.size(f);
  ASSERT_GT(before, 100u); // sanity: the bad order really blows up
  const TruthTable want = to_tt(mgr, f, 2 * k);
  const std::size_t swaps = mgr.reorder();
  EXPECT_GT(swaps, 0u);
  const std::size_t after = mgr.size(f);
  EXPECT_LT(after * 2, before); // at least a 2x reduction
  EXPECT_EQ(to_tt(mgr, f, 2 * k), want); // same function, same ref
  EXPECT_TRUE(mgr.check_canonical());
  EXPECT_GT(mgr.stats().reorder_runs, 0u);
  EXPECT_GT(mgr.stats().reorder_swaps, 0u);
}

TEST(BddKernel, ReorderPreservesRandomFunctions) {
  const int n = 8;
  BddManager mgr(n);
  auto pool = random_pool(mgr, n, 2024, 80);
  std::vector<TruthTable> want;
  for (const BddRef f : pool) {
    want.push_back(to_tt(mgr, f, n));
    mgr.ref(f);
  }
  mgr.reorder();
  EXPECT_TRUE(mgr.check_canonical());
  for (std::size_t i = 0; i < pool.size(); ++i)
    EXPECT_EQ(to_tt(mgr, pool[i], n), want[i]) << "entry " << i;
}

TEST(BddKernel, AutoReorderTriggersOnGrowth) {
  const int k = 13; // identity order peaks well past the 4096-node trigger
  BddManager mgr(2 * k);
  mgr.set_auto_reorder(true);
  const BddRef f = mgr.ref(interleaved_and_or(mgr, k));
  EXPECT_GT(mgr.stats().reorder_runs, 0u);
  // Auto-sifting found the paired order: the result is tiny, not 2^13.
  EXPECT_LT(mgr.size(f), 200u);
  EXPECT_TRUE(mgr.check_canonical());
  // Spot-check the function on a few assignments.
  Rng rng(5);
  for (int t = 0; t < 64; ++t) {
    BitVec a(static_cast<std::size_t>(2 * k));
    bool expect = false;
    for (int i = 0; i < 2 * k; ++i)
      if (rng.below(2)) a.set(static_cast<std::size_t>(i));
    for (int i = 0; i < k; ++i)
      expect = expect || (a.get(static_cast<std::size_t>(i)) &&
                          a.get(static_cast<std::size_t>(k + i)));
    EXPECT_EQ(mgr.eval(f, a), expect);
  }
}

TEST(BddKernel, ReorderHoldBlocksAutoReorder) {
  const int k = 13;
  BddManager mgr(2 * k);
  mgr.set_auto_reorder(true);
  {
    BddManager::ReorderHold hold(mgr);
    mgr.ref(interleaved_and_or(mgr, k));
    EXPECT_EQ(mgr.stats().reorder_runs, 0u);
  }
}

TEST(BddKernel, LevelMapsStayInverse) {
  const int k = 6;
  BddManager mgr(2 * k);
  mgr.ref(interleaved_and_or(mgr, k));
  mgr.reorder();
  for (int v = 0; v < 2 * k; ++v)
    EXPECT_EQ(mgr.var_at_level(mgr.level_of(v)), v);
}

} // namespace
} // namespace rmsyn
