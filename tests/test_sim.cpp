// Incremental simulation engine tests (sim/sim.hpp): the cached state and
// its cone-limited resims must be bit-identical to a fresh full simulate()
// after arbitrary edits, fault dropping must not change the detected set,
// parallel fault chunks must match serial exactly (results AND counters),
// and resub's signature prefilter must not perturb the merged network.
#include "sim/sim.hpp"

#include <gtest/gtest.h>

#include "benchgen/spec.hpp"
#include "core/resub.hpp"
#include "core/synth.hpp"
#include "network/io.hpp"
#include "network/transform.hpp"
#include "sched/pool.hpp"
#include "testability/faults.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace rmsyn {
namespace {

/// Every node a fresh simulate() evaluates must carry the same value in
/// the cached state (dead nodes stay all-zero on both sides).
void expect_state_matches_full(const SimState& sim, const Network& net,
                               const PatternSet& patterns,
                               const std::string& context) {
  const auto full = simulate(net, patterns);
  for (const NodeId n : net.topo_order())
    ASSERT_EQ(sim.value(n), full[n]) << context << ": node " << n;
}

TEST(SimState, MatchesFullSimulateOnEveryBenchmark) {
  for (const auto& name : benchmark_names()) {
    const Network net = make_benchmark(name).spec;
    const PatternSet patterns =
        random_patterns(net.pi_count(), 256, 0xABCD0 + net.pi_count());
    SimState sim(net, patterns);
    expect_state_matches_full(sim, net, patterns, name);
  }
}

TEST(SimState, HandlesNonWordMultiplePatternCounts) {
  const Network net = make_benchmark("z4ml").spec;
  for (const std::size_t np : {1u, 63u, 64u, 65u, 130u}) {
    const PatternSet patterns = random_patterns(net.pi_count(), np, 77);
    SimState sim(net, patterns);
    expect_state_matches_full(sim, net, patterns, "np=" + std::to_string(np));
  }
}

/// Applies one random structural edit to a gate and returns the dirty node.
/// Targets and fanins are restricted to the ORIGINAL id range (ids below
/// `orig_count`), fanins strictly below the target: every edge then drops a
/// potential (original id, or target-id-minus-half for a fresh inverter),
/// so no edit sequence can close a cycle. Fresh inverters still land ABOVE
/// the dirty node in id order — exactly the case where node-id order stops
/// being a topo order and the engine's level repair has to kick in.
NodeId random_edit(Network& net, NodeId orig_count, Rng& rng) {
  std::vector<NodeId> gates;
  for (NodeId n = 2; n < orig_count; ++n)
    if (net.type(n) != GateType::Pi) gates.push_back(n);
  const NodeId n = gates[rng.next() % gates.size()];
  const auto pick_below = [&]() -> NodeId {
    return static_cast<NodeId>(rng.next() % n); // original id < n
  };
  static const GateType kTypes[] = {GateType::And,  GateType::Or,
                                    GateType::Xor,  GateType::Nand,
                                    GateType::Nor,  GateType::Xnor,
                                    GateType::Not,  GateType::Buf};
  const GateType t = kTypes[rng.next() % 8];
  if (t == GateType::Not || t == GateType::Buf) {
    net.rewrite_gate(n, t, {pick_below()});
  } else if (rng.next() % 4 == 0) {
    // New higher-id inverter feeding the rewritten (lower-id) gate.
    const NodeId inv = net.add_not(pick_below());
    net.rewrite_gate(n, t, {pick_below(), inv});
  } else {
    net.rewrite_gate(n, t, {pick_below(), pick_below()});
  }
  return n;
}

TEST(SimState, IncrementalResimMatchesFullAfterRandomEdits) {
  for (const auto& name : {"z4ml", "f2", "adr4", "majority"}) {
    Network net = make_benchmark(name).spec;
    const PatternSet patterns = random_patterns(net.pi_count(), 192, 0xE417);
    SimState sim(net, patterns);
    const NodeId orig_count = static_cast<NodeId>(net.node_count());
    Rng rng(0x5EED ^ net.node_count());
    for (int round = 0; round < 60; ++round) {
      const NodeId dirty = random_edit(net, orig_count, rng);
      sim.resimulate(dirty);
      expect_state_matches_full(sim, net, patterns,
                                std::string(name) + " round " +
                                    std::to_string(round));
    }
    EXPECT_GT(sim.stats().incr_resims, 0u);
  }
}

TEST(SimState, MultiNodeEditsSettleInOneWave) {
  Network net = make_benchmark("my_adder").spec;
  const PatternSet patterns = random_patterns(net.pi_count(), 128, 0xBEE);
  SimState sim(net, patterns);
  const NodeId orig_count = static_cast<NodeId>(net.node_count());
  Rng rng(42);
  for (int round = 0; round < 20; ++round) {
    std::vector<NodeId> dirty;
    for (int k = 0; k < 3; ++k)
      dirty.push_back(random_edit(net, orig_count, rng));
    sim.resimulate(dirty);
    expect_state_matches_full(sim, net, patterns,
                              "round " + std::to_string(round));
  }
}

TEST(SimState, RevertRestoresValuesWithDyingEvents) {
  Network net = make_benchmark("f2").spec;
  const PatternSet patterns = random_patterns(net.pi_count(), 256, 9);
  SimState sim(net, patterns);
  const auto golden = sim.po_values();
  // Find a 2-fanin gate, knock one fanin out, then revert.
  for (NodeId n = 2; n < net.node_count(); ++n) {
    if (net.type(n) == GateType::Pi || net.fanins(n).size() != 2) continue;
    const GateType t = net.type(n);
    const std::vector<NodeId> saved = net.fanins(n);
    net.rewrite_gate(n, GateType::Buf, {saved[0]});
    sim.resimulate(n);
    net.rewrite_gate(n, t, saved);
    sim.resimulate(n);
    break;
  }
  EXPECT_TRUE(sim.po_values_match(golden));
  expect_state_matches_full(sim, net, patterns, "after revert");
}

void expect_same_result(const FaultSimResult& a, const FaultSimResult& b) {
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.detected, b.detected);
  ASSERT_EQ(a.undetected.size(), b.undetected.size());
  for (std::size_t i = 0; i < a.undetected.size(); ++i) {
    EXPECT_EQ(a.undetected[i].node, b.undetected[i].node);
    EXPECT_EQ(a.undetected[i].fanin_index, b.undetected[i].fanin_index);
    EXPECT_EQ(a.undetected[i].stuck_value, b.undetected[i].stuck_value);
  }
}

TEST(FaultSim, DroppingAndConeLimitingMatchFullResim) {
  for (const auto& name : benchmark_names()) {
    const Network net = decompose2(strash(make_benchmark(name).spec));
    // 520 patterns = 3 blocks of 256/256/8 when dropping.
    const PatternSet patterns = random_patterns(net.pi_count(), 520, 0xFA17);
    const FaultSimResult full = fault_simulate_full(net, patterns);
    FaultSimOptions drop;
    const FaultSimResult incr = fault_simulate(net, patterns, drop);
    FaultSimOptions nodrop;
    nodrop.drop_faults = false;
    const FaultSimResult mono = fault_simulate(net, patterns, nodrop);
    expect_same_result(full, incr);
    expect_same_result(full, mono);
  }
}

TEST(FaultSim, ParallelChunksMatchSerialBitIdentically) {
  const Network net = decompose2(strash(make_benchmark("my_adder").spec));
  const PatternSet patterns = random_patterns(net.pi_count(), 1024, 0x9A9A);
  SimStats serial_stats;
  FaultSimOptions serial;
  serial.stats = &serial_stats;
  const FaultSimResult a = fault_simulate(net, patterns, serial);

  ThreadPool pool(3);
  SimStats par_stats;
  FaultSimOptions parallel;
  parallel.pool = &pool;
  parallel.stats = &par_stats;
  const FaultSimResult b = fault_simulate(net, patterns, parallel);

  expect_same_result(a, b);
  // Counters are per-fault sums, so chunking must not change them either.
  EXPECT_EQ(serial_stats.fault_probes, par_stats.fault_probes);
  EXPECT_EQ(serial_stats.cone_nodes, par_stats.cone_nodes);
  EXPECT_EQ(serial_stats.faults_dropped, par_stats.faults_dropped);
  EXPECT_EQ(serial_stats.blocks_skipped, par_stats.blocks_skipped);
  EXPECT_EQ(serial_stats.events_died, par_stats.events_died);
  EXPECT_GT(par_stats.faults_dropped, 0u);
}

TEST(SimState, WordShardedFullPassMatchesSerialBitIdentically) {
  // Sharded construction splits the word range across pool slots; gate
  // evaluation is word-local so the merged rows must equal serial exactly,
  // and simd_blocks is counted per node eval, so counters match too.
  const Network net = decompose2(strash(make_benchmark("my_adder").spec));
  // 1500 patterns = 24 words: enough for several 8-word shards, with a
  // partial tail word to exercise the post-pass mask sweep.
  const PatternSet patterns = random_patterns(net.pi_count(), 1500, 0x5A4D);
  SimState serial(net, patterns);
  for (const int jobs : {1, 2, 3, 7}) {
    ThreadPool pool(jobs);
    SimState sharded(net, patterns, &pool);
    for (const NodeId n : net.topo_order())
      ASSERT_EQ(serial.value(n), sharded.value(n))
          << "jobs=" << jobs << " node " << n;
    EXPECT_EQ(serial.stats().simd_blocks, sharded.stats().simd_blocks)
        << "jobs=" << jobs;
  }
}

TEST(Simulate, PoolShardingIsBitIdentical) {
  for (const auto& name : {"my_adder", "mult8"}) {
    const Network net = decompose2(strash(make_benchmark(name).spec));
    const PatternSet patterns = random_patterns(net.pi_count(), 2048, 0xF00);
    const auto serial = simulate(net, patterns);
    ThreadPool pool(3);
    const auto sharded = simulate(net, patterns, &pool);
    ASSERT_EQ(serial.size(), sharded.size());
    for (std::size_t n = 0; n < serial.size(); ++n)
      ASSERT_EQ(serial[n], sharded[n]) << name << " node " << n;
  }
}

/// Runs `check` once per dispatch target reachable on this host. The
/// layer's contract is that targets differ only in speed, so everything
/// the engines compute must be bit-identical across them.
template <typename Fn>
void for_each_dispatch(Fn&& check) {
  const std::string saved = simd::dispatch_name();
  for (const std::string& target : simd::available_dispatches()) {
    ASSERT_TRUE(simd::force_dispatch(target));
    check();
  }
  ASSERT_TRUE(simd::force_dispatch(saved));
}

TEST(Simulate, DispatchTargetsAgreeOnEveryBenchmark) {
  // Full-pass values under every reachable dispatch target vs forced
  // scalar, across the whole benchgen set plus the large parameterized
  // families — the "a target only changes speed" contract end to end.
  std::vector<std::string> names = benchmark_names();
  names.push_back("adder64");
  names.push_back("mult16");
  for (const auto& name : names) {
    const Network net = make_benchmark(name).spec;
    const PatternSet patterns =
        random_patterns(net.pi_count(), 192, 0x1D0 + net.pi_count());
    ASSERT_TRUE(simd::force_dispatch("scalar"));
    const auto ref = simulate(net, patterns);
    for_each_dispatch([&] {
      const auto got = simulate(net, patterns);
      ASSERT_EQ(ref.size(), got.size());
      for (std::size_t n = 0; n < ref.size(); ++n)
        ASSERT_EQ(ref[n], got[n])
            << name << " node " << n << " under " << simd::dispatch_name();
    });
  }
}

TEST(SimState, DispatchTargetsAgreeOnFullPassesAndIncrementalEdits) {
  for (const auto& name : {"z4ml", "adr4", "adder64", "mult16"}) {
    const Network base = decompose2(strash(make_benchmark(name).spec));
    const PatternSet patterns =
        random_patterns(base.pi_count(), 300, 0xD15 + base.pi_count());

    // Reference under forced scalar: full pass + a deterministic edit
    // sequence of incremental resims.
    ASSERT_TRUE(simd::force_dispatch("scalar"));
    std::vector<std::vector<BitVec>> ref_rounds;
    {
      Network net = base;
      SimState sim(net, patterns);
      const NodeId orig_count = static_cast<NodeId>(net.node_count());
      Rng rng(0xED17);
      ref_rounds.push_back(sim.po_values());
      for (int round = 0; round < 15; ++round) {
        sim.resimulate(random_edit(net, orig_count, rng));
        ref_rounds.push_back(sim.po_values());
      }
    }

    for_each_dispatch([&] {
      Network net = base;
      SimState sim(net, patterns);
      const NodeId orig_count = static_cast<NodeId>(net.node_count());
      Rng rng(0xED17); // same seed => same edit sequence
      ASSERT_EQ(sim.po_values(), ref_rounds[0])
          << name << " under " << simd::dispatch_name();
      for (int round = 0; round < 15; ++round) {
        sim.resimulate(random_edit(net, orig_count, rng));
        ASSERT_EQ(sim.po_values(), ref_rounds[round + 1])
            << name << " round " << round << " under "
            << simd::dispatch_name();
      }
    });
  }
}

TEST(FaultSim, DispatchTargetsAgreeOnDetectionSets) {
  for (const auto& name : {"z4ml", "my_adder", "mult8"}) {
    const Network net = decompose2(strash(make_benchmark(name).spec));
    const PatternSet patterns = random_patterns(net.pi_count(), 520, 0xFA17);
    ASSERT_TRUE(simd::force_dispatch("scalar"));
    const FaultSimResult ref = fault_simulate(net, patterns);
    for_each_dispatch([&] {
      const FaultSimResult got = fault_simulate(net, patterns);
      expect_same_result(ref, got);
    });
  }
}

TEST(SimState, StatsCarrySimdCountersAndDispatch) {
  const Network net = decompose2(strash(make_benchmark("z4ml").spec));
  const PatternSet patterns = random_patterns(net.pi_count(), 200, 0xCAFE);
  SimState sim(net, patterns);
  EXPECT_GT(sim.stats().simd_blocks, 0u);
  EXPECT_EQ(sim.stats().patterns_simulated, 200u);
  ASSERT_NE(sim.stats().simd_dispatch, nullptr);
  EXPECT_EQ(std::string(sim.stats().simd_dispatch), simd::dispatch_name());
  // A timed full pass ran, so the derived rate is well-defined.
  EXPECT_GT(sim.stats().patterns_per_second(), 0.0);
  SimStats zero;
  EXPECT_EQ(zero.patterns_per_second(), 0.0);
}

TEST(PatternSet, ReserveDoesNotChangeAppendResults) {
  Rng rng(123);
  PatternSet plain(17, 0);
  PatternSet reserved(17, 0);
  reserved.reserve(300);
  for (int i = 0; i < 300; ++i) {
    BitVec a(17);
    for (std::size_t v = 0; v < 17; ++v) a.set(v, (rng.next() & 1) != 0);
    plain.append(a);
    reserved.append(a);
  }
  EXPECT_EQ(plain.num_patterns, reserved.num_patterns);
  for (std::size_t i = 0; i < plain.bits.size(); ++i)
    EXPECT_EQ(plain.bits[i], reserved.bits[i]);
}

TEST(PatternSet, WordAlignedBlocksReassembleTheSet) {
  const PatternSet ps = random_patterns(5, 200, 777);
  const PatternSet b0 = pattern_block(ps, 0, 128);
  const PatternSet b1 = pattern_block(ps, 128, 72);
  ASSERT_EQ(b0.num_patterns + b1.num_patterns, ps.num_patterns);
  for (std::size_t i = 0; i < ps.bits.size(); ++i) {
    for (std::size_t p = 0; p < 128; ++p)
      EXPECT_EQ(b0.bits[i].get(p), ps.bits[i].get(p));
    for (std::size_t p = 0; p < 72; ++p)
      EXPECT_EQ(b1.bits[i].get(p), ps.bits[i].get(128 + p));
  }
}

TEST(BitVec, FlipAllMasksTail) {
  BitVec v(70);
  v.set(3);
  v.set(69);
  v.flip_all();
  EXPECT_EQ(v.size(), 70u);
  EXPECT_EQ(v.count(), 68u);
  EXPECT_FALSE(v.get(3));
  EXPECT_TRUE(v.get(0));
  v.flip_all();
  EXPECT_EQ(v.count(), 2u);
  EXPECT_TRUE(v.get(3));
  EXPECT_TRUE(v.get(69));
}

TEST(Resub, SignaturePrefilterIsBitIdentical) {
  for (const auto& name : benchmark_names()) {
    // decompose2 bounds gate arity so write_blif can serialize the result.
    const Network net = decompose2(make_benchmark(name).spec);
    ResubOptions with;
    SimStats stats;
    with.sim_stats = &stats;
    ResubOptions without;
    without.sim_prefilter = false;
    const Network a = resub_merge(net, with);
    const Network b = resub_merge(net, without);
    EXPECT_EQ(write_blif_string(a, name), write_blif_string(b, name)) << name;
  }
}

TEST(Synth, ReportCarriesSimCounters) {
  SynthReport rep;
  synthesize(make_benchmark("z4ml").spec, {}, &rep);
  // Redundancy's step-1/step-4 states always run at least one full pass.
  EXPECT_GT(rep.sim.full_passes, 0u);
}

} // namespace
} // namespace rmsyn
