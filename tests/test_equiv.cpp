#include "equiv/equiv.hpp"

#include <gtest/gtest.h>

namespace rmsyn {
namespace {

Network xor_via_andor() {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  net.add_po(net.add_or(net.add_and(a, net.add_not(b)),
                        net.add_and(net.add_not(a), b)));
  return net;
}

Network xor_direct() {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  net.add_po(net.add_xor(a, b));
  return net;
}

TEST(Equiv, EquivalentImplementationsAccepted) {
  const auto r = check_equivalence(xor_direct(), xor_via_andor());
  EXPECT_TRUE(r.equivalent) << r.reason;
}

TEST(Equiv, InequivalentDetectedWithWitness) {
  Network wrong;
  const NodeId a = wrong.add_pi();
  const NodeId b = wrong.add_pi();
  wrong.add_po(wrong.add_or(a, b)); // OR != XOR at (1,1)
  const auto r = check_equivalence(xor_direct(), wrong);
  EXPECT_FALSE(r.equivalent);
  EXPECT_FALSE(r.reason.empty());
}

TEST(Equiv, InterfaceMismatchReported) {
  Network one_pi;
  one_pi.add_po(one_pi.add_pi());
  EXPECT_FALSE(check_equivalence(one_pi, xor_direct()).equivalent);
  Network two_pos = xor_direct();
  two_pos.add_po(two_pos.po(0));
  EXPECT_FALSE(check_equivalence(xor_direct(), two_pos).equivalent);
}

TEST(Equiv, AgainstTruthTables) {
  const auto tt = TruthTable::variable(2, 0) ^ TruthTable::variable(2, 1);
  EXPECT_TRUE(check_against_tts(xor_via_andor(), {tt}).equivalent);
  EXPECT_FALSE(check_against_tts(xor_via_andor(), {~tt}).equivalent);
}

TEST(Equiv, NodeBddsMatchSimulation) {
  const Network net = xor_via_andor();
  BddManager mgr(2);
  const auto f = output_bdds(mgr, net);
  ASSERT_EQ(f.size(), 1u);
  for (uint64_t m = 0; m < 4; ++m) {
    BitVec a(2);
    if (m & 1) a.set(0);
    if (m & 2) a.set(1);
    EXPECT_EQ(mgr.eval(f[0], a), net.eval({(m & 1) != 0, (m & 2) != 0})[0]);
  }
}

TEST(Equiv, ConstantOutputs) {
  Network c0;
  c0.add_pi();
  c0.add_po(Network::kConst0);
  Network c0b;
  const NodeId a = c0b.add_pi();
  c0b.add_po(c0b.add_and(a, c0b.add_not(a)));
  EXPECT_TRUE(check_equivalence(c0, c0b).equivalent);
}

} // namespace
} // namespace rmsyn
