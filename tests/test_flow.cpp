// Integration tests over the shared experiment runner (both flows +
// mapping + power), checking the qualitative Table-2 shape on a few
// representative circuits.
#include "flow/flow.hpp"

#include <gtest/gtest.h>

namespace rmsyn {
namespace {

TEST(Flow, T481OursWinsDecisively) {
  const FlowRow row = run_flow("t481");
  EXPECT_LT(row.ours_lits, row.base_lits);
  EXPECT_LT(row.ours_map_lits, row.base_map_lits);
  // Paper: 89% mapped-literal improvement; shape check: > 30%.
  EXPECT_GT(row.improve_lits_pct(), 30.0);
  // Run-time: the FPRM flow is far faster on t481 (paper: 1372s vs 0.7s).
  EXPECT_LT(row.ours_seconds, row.base_seconds);
}

TEST(Flow, AdderFamilyWins) {
  for (const char* name : {"z4ml", "adr4"}) {
    const FlowRow row = run_flow(name);
    EXPECT_LE(row.ours_lits, row.base_lits) << name;
    EXPECT_LE(row.ours_map_lits, row.base_map_lits) << name;
  }
}

TEST(Flow, RowCarriesMetadata) {
  const FlowRow row = run_flow("z4ml");
  EXPECT_EQ(row.circuit, "z4ml");
  EXPECT_EQ(row.num_inputs, 7);
  EXPECT_EQ(row.num_outputs, 4);
  EXPECT_TRUE(row.arithmetic);
  EXPECT_TRUE(row.exact_benchmark);
  EXPECT_GT(row.base_power, 0.0);
  EXPECT_GT(row.ours_power, 0.0);
}

TEST(Flow, MappingAndPowerCanBeSkipped) {
  FlowOptions opt;
  opt.run_mapping = false;
  opt.run_power = false;
  const FlowRow row = run_flow("rd53", opt);
  EXPECT_EQ(row.ours_gates, 0u);
  EXPECT_EQ(row.ours_power, 0.0);
  EXPECT_GT(row.ours_lits, 0u);
}

TEST(Flow, FormatTable2ContainsRowsAndTotals) {
  std::vector<FlowRow> rows;
  rows.push_back(run_flow("z4ml"));
  rows.push_back(run_flow("majority"));
  const std::string table = format_table2(rows);
  EXPECT_NE(table.find("z4ml"), std::string::npos);
  EXPECT_NE(table.find("majority"), std::string::npos);
  EXPECT_NE(table.find("Tot.arith"), std::string::npos);
  EXPECT_NE(table.find("Tot.all"), std::string::npos);
}

TEST(Flow, ImprovementPercentagesConsistent) {
  FlowRow row;
  row.base_map_lits = 100;
  row.ours_map_lits = 80;
  EXPECT_DOUBLE_EQ(row.improve_lits_pct(), 20.0);
  row.base_power = 50.0;
  row.ours_power = 60.0;
  EXPECT_DOUBLE_EQ(row.improve_power_pct(), -20.0);
}

} // namespace
} // namespace rmsyn
