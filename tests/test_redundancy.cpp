// Section 4 tests: the paper's Table 1 semantics, the worked example
// (B ⊕ C) ⊕ BC → B + C, pattern-set construction, irreducibility of parity,
// and function preservation on random XOR networks.
#include "core/redundancy.hpp"

#include <gtest/gtest.h>

#include "equiv/equiv.hpp"
#include "network/stats.hpp"
#include "network/transform.hpp"
#include "util/rng.hpp"

namespace rmsyn {
namespace {

TEST(Table1, ImpliedFunctionsMatchXorOnReducedDomains) {
  // Table 1 of the paper: when a pattern can never occur, XOR coincides
  // with one of {OR, g·h̄, ḡ·h} on the remaining patterns.
  const auto xor_v = [](bool g, bool h) { return g != h; };
  const auto or_v = [](bool g, bool h) { return g || h; };
  const auto gnh = [](bool g, bool h) { return g && !h; };
  const auto ngh = [](bool g, bool h) { return !g && h; };
  for (const auto& [g, h] : {std::pair{false, false}, {false, true},
                             {true, false}, {true, true}}) {
    if (!(g && h)) {
      EXPECT_EQ(xor_v(g, h), or_v(g, h)); // (1,1) missing
    }
    if (!(!g && h)) {
      EXPECT_EQ(xor_v(g, h), gnh(g, h)); // (0,1) missing
    }
    if (!(g && !h)) {
      EXPECT_EQ(xor_v(g, h), ngh(g, h)); // (1,0) missing
    }
  }
}

TEST(PatternSets, AzAoOcSa1Construction) {
  // One form: support {0,2}, polarity: x0 positive, x2 negative; one cube
  // containing both literals.
  FprmForm form;
  form.nvars = 3;
  form.support = {0, 2};
  form.polarity = BitVec(3);
  form.polarity.set(0); // x0 positive, x2 negative (bit 2 clear)
  BitVec cube(2);
  cube.set(0);
  cube.set(1);
  form.cubes = {cube};

  const PatternSet ps = fprm_pattern_set(3, {form}, /*include_sa1=*/true, 100);
  // global AZ + per-form AZ + AO + OC + 2 SA1 = 6 patterns.
  EXPECT_EQ(ps.num_patterns, 6u);
  // Per-form AZ: literals at 0 → x0=0, x2=1 (negative literal off means
  // the variable is 1... literal x̄2=0 → x2=1).
  EXPECT_FALSE(ps.bits[0].get(1));
  EXPECT_TRUE(ps.bits[2].get(1));
  // AO: x0=1, x2=0.
  EXPECT_TRUE(ps.bits[0].get(2));
  EXPECT_FALSE(ps.bits[2].get(2));
  // OC (same as AO here since the only cube holds both literals).
  EXPECT_TRUE(ps.bits[0].get(3));
  EXPECT_FALSE(ps.bits[2].get(3));
  // SA1 patterns flip exactly one literal of the cube each.
  EXPECT_FALSE(ps.bits[0].get(4)); // x0 literal dropped
  EXPECT_FALSE(ps.bits[2].get(4));
  EXPECT_TRUE(ps.bits[0].get(5));
  EXPECT_TRUE(ps.bits[2].get(5)); // x2 literal dropped -> x2=1
}

TEST(PatternSets, CapIsHonored) {
  FprmForm form;
  form.nvars = 4;
  form.support = {0, 1, 2, 3};
  form.polarity = BitVec(4);
  form.polarity.set_all();
  for (int i = 0; i < 10; ++i) {
    BitVec c(4);
    c.set(static_cast<std::size_t>(i % 4));
    form.cubes.push_back(c);
  }
  const PatternSet ps = fprm_pattern_set(4, {form}, true, 7);
  EXPECT_EQ(ps.num_patterns, 7u);
}

/// The paper's end-of-Section-4 example:
/// (B ⊕ C) ⊕ BC  →  (B ⊕ C) + BC  →  (B + C) + BC  →  B + C.
TEST(Redundancy, PaperExampleCollapsesToSingleOr) {
  Network net;
  const NodeId b = net.add_pi("B");
  const NodeId c = net.add_pi("C");
  const NodeId inner = net.add_xor(b, c);
  const NodeId bc = net.add_and(b, c);
  net.add_po(net.add_xor(inner, bc), "f");

  // The FPRM of f = B + C (PPRM: B ⊕ C ⊕ BC).
  FprmForm form;
  form.nvars = 2;
  form.support = {0, 1};
  form.polarity = BitVec(2);
  form.polarity.set_all();
  BitVec cb(2), cc(2), cbc(2);
  cb.set(0);
  cc.set(1);
  cbc.set(0);
  cbc.set(1);
  form.cubes = {cb, cc, cbc};

  RedundancyStats stats;
  const Network out = remove_xor_redundancy(net, {form}, {}, &stats);
  const auto s = network_stats(out);
  EXPECT_EQ(s.num_xor2, 0u);
  EXPECT_EQ(s.gates2, 1u) << "expected a single OR gate";
  EXPECT_GE(stats.reduced_to_or, 1u);          // Property 3 fired
  EXPECT_GE(stats.observability_reductions +
                stats.fanins_removed, 1u);      // the domino + cleanup
  const auto tt = TruthTable::variable(2, 0) | TruthTable::variable(2, 1);
  EXPECT_TRUE(check_against_tts(out, {tt}).equivalent);
}

TEST(Redundancy, ParityIsIrreducible) {
  // All XOR gates of a parity tree must survive (the paper: "all the XOR
  // gates in a parity function are not reducible").
  Network net;
  std::vector<NodeId> xs;
  for (int i = 0; i < 8; ++i) xs.push_back(net.add_pi());
  NodeId acc = xs[0];
  for (int i = 1; i < 8; ++i) acc = net.add_xor(acc, xs[static_cast<std::size_t>(i)]);
  net.add_po(acc);

  FprmForm form;
  form.nvars = 8;
  form.support = {0, 1, 2, 3, 4, 5, 6, 7};
  form.polarity = BitVec(8);
  form.polarity.set_all();
  for (int i = 0; i < 8; ++i) {
    BitVec c(8);
    c.set(static_cast<std::size_t>(i));
    form.cubes.push_back(c);
  }
  RedundancyStats stats;
  const Network out = remove_xor_redundancy(net, {form}, {}, &stats);
  EXPECT_EQ(network_stats(out).num_xor2, 7u);
  EXPECT_EQ(stats.xor_gates_after, stats.xor_gates_before);
}

TEST(Redundancy, Property3UncontrollableOneOne) {
  // f = ab ⊕ āc: (1,1) needs ab=1 and āc=1 — impossible → OR.
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId c = net.add_pi();
  const NodeId g = net.add_and(a, b);
  const NodeId h = net.add_and(net.add_not(a), c);
  net.add_po(net.add_xor(g, h));
  RedundancyStats stats;
  const Network out = remove_xor_redundancy(net, {}, {}, &stats);
  EXPECT_EQ(network_stats(out).num_xor2, 0u);
  EXPECT_GE(stats.reduced_to_or, 1u);
}

TEST(Redundancy, Property4UncontrollablePattern) {
  // f = a ⊕ ab: (0,1) impossible (ab=1 forces a=1) → f = a·(ab)'... which
  // simplifies to a·b̄.
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  net.add_po(net.add_xor(a, net.add_and(a, b)));
  const Network out = remove_xor_redundancy(net, {}, {}, nullptr);
  EXPECT_EQ(network_stats(out).num_xor2, 0u);
  const auto tt = TruthTable::variable(2, 0) & ~TruthTable::variable(2, 1);
  EXPECT_TRUE(check_against_tts(out, {tt}).equivalent);
}

TEST(Redundancy, AndFaninStuckAtRemoval) {
  // f = (a+b)·(a+b+c): the second term's c (indeed the whole second gate)
  // is redundant; the pass must shrink it to a + b.
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId c = net.add_pi();
  const NodeId t1 = net.add_or(a, b);
  const NodeId t2 = net.add_gate(GateType::Or, {a, b, c});
  net.add_po(net.add_and(t1, t2));
  RedundancyStats stats;
  const Network out = remove_xor_redundancy(net, {}, {}, &stats);
  EXPECT_EQ(network_stats(out).gates2, 1u);
  EXPECT_GE(stats.fanins_removed, 1u);
  const auto tt = TruthTable::variable(3, 0) | TruthTable::variable(3, 1);
  EXPECT_TRUE(check_against_tts(out, {tt}).equivalent);
}

class RedundancyRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RedundancyRandom, PreservesFunctionAndNeverGrows) {
  Rng rng(GetParam());
  Network net;
  std::vector<NodeId> pool;
  for (int i = 0; i < 5; ++i) pool.push_back(net.add_pi());
  for (int g = 0; g < 30; ++g) {
    const NodeId a = pool[rng.below(pool.size())];
    const NodeId b = pool[rng.below(pool.size())];
    switch (rng.below(4)) {
      case 0: pool.push_back(net.add_and(a, b)); break;
      case 1: pool.push_back(net.add_or(a, b)); break;
      case 2: pool.push_back(net.add_not(a)); break;
      default: pool.push_back(net.add_xor(a, b)); break;
    }
  }
  net.add_po(pool[pool.size() - 1]);
  net.add_po(pool[pool.size() - 2]);

  const Network reference = strash(net);
  const Network out = remove_xor_redundancy(net, {}, {}, nullptr);
  EXPECT_TRUE(check_equivalence(reference, out).equivalent);
  EXPECT_LE(network_stats(out).gates2, network_stats(decompose2(reference)).gates2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RedundancyRandom,
                         ::testing::Values(10, 20, 30, 40, 50, 60, 70, 80, 90, 100));

/// Every combination of the pass toggles must stay sound.
class RedundancyOptionCombos
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {};

TEST_P(RedundancyOptionCombos, AllTogglesPreserveFunction) {
  const auto [patterns, observability, fanins] = GetParam();
  RedundancyOptions opt;
  opt.use_pattern_filter = patterns;
  opt.observability_pass = observability;
  opt.and_fanin_pass = fanins;

  Rng rng(1234 + (patterns ? 1 : 0) + (observability ? 2 : 0) +
          (fanins ? 4 : 0));
  for (int iter = 0; iter < 5; ++iter) {
    Network net;
    std::vector<NodeId> pool;
    for (int i = 0; i < 5; ++i) pool.push_back(net.add_pi());
    for (int g = 0; g < 25; ++g) {
      const NodeId a = pool[rng.below(pool.size())];
      const NodeId b = pool[rng.below(pool.size())];
      switch (rng.below(4)) {
        case 0: pool.push_back(net.add_and(a, b)); break;
        case 1: pool.push_back(net.add_or(a, b)); break;
        case 2: pool.push_back(net.add_not(a)); break;
        default: pool.push_back(net.add_xor(a, b)); break;
      }
    }
    net.add_po(pool.back());
    const Network out = remove_xor_redundancy(net, {}, opt, nullptr);
    EXPECT_TRUE(check_equivalence(strash(net), out).equivalent);
  }
}

INSTANTIATE_TEST_SUITE_P(Toggles, RedundancyOptionCombos,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

TEST(Redundancy, PatternFilterReportsPrunes) {
  // On a parity tree the OC set demonstrates all four patterns at every
  // XOR gate, so every gate should be pruned without exact checks.
  Network net;
  std::vector<NodeId> xs;
  for (int i = 0; i < 6; ++i) xs.push_back(net.add_pi());
  NodeId acc = xs[0];
  for (int i = 1; i < 6; ++i) acc = net.add_xor(acc, xs[static_cast<std::size_t>(i)]);
  net.add_po(acc);
  FprmForm form;
  form.nvars = 6;
  form.support = {0, 1, 2, 3, 4, 5};
  form.polarity = BitVec(6);
  form.polarity.set_all();
  for (int i = 0; i < 6; ++i) {
    BitVec cc(6);
    cc.set(static_cast<std::size_t>(i));
    form.cubes.push_back(cc);
  }
  RedundancyStats with_filter;
  (void)remove_xor_redundancy(net, {form}, {}, &with_filter);
  EXPECT_GT(with_filter.pattern_pruned, 0u);

  RedundancyOptions no_filter;
  no_filter.use_pattern_filter = false;
  RedundancyStats without;
  (void)remove_xor_redundancy(net, {form}, no_filter, &without);
  EXPECT_GT(without.exact_checks, with_filter.exact_checks);
}

} // namespace
} // namespace rmsyn
