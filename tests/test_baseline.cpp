// Baseline (SIS-style conventional synthesis) integration tests.
#include "baseline/script.hpp"

#include <gtest/gtest.h>

#include "baseline/extract.hpp"
#include "benchgen/spec.hpp"
#include "equiv/equiv.hpp"
#include "network/stats.hpp"
#include "network/transform.hpp"

namespace rmsyn {
namespace {

class BaselineCircuit : public ::testing::TestWithParam<const char*> {};

TEST_P(BaselineCircuit, EquivalentToSpec) {
  const Benchmark bench = make_benchmark(GetParam());
  BaselineReport rep;
  const Network out = baseline_synthesize(bench.spec, {}, &rep);
  const auto check = check_equivalence(bench.spec, out);
  EXPECT_TRUE(check.equivalent) << check.reason;
  EXPECT_GT(rep.sop_lits_initial, 0);
}

INSTANTIATE_TEST_SUITE_P(SmallCircuits, BaselineCircuit,
                         ::testing::Values("z4ml", "adr4", "rd53", "majority",
                                           "cm82a", "f2", "bcd-div3", "tcon",
                                           "pcle", "cm85a", "squar5", "rd73",
                                           "co14", "shift", "i5", "m181",
                                           "pcler8", "cm163a", "mlp4",
                                           "my_adder", "parity", "i1", "cc"));

TEST(Baseline, ExtractionReducesSopLiterals) {
  const Benchmark bench = make_benchmark("adr4");
  BaselineReport rep;
  (void)baseline_synthesize(bench.spec, {}, &rep);
  EXPECT_LT(rep.sop_lits_final, rep.sop_lits_initial);
  EXPECT_GT(rep.nodes_extracted, 0);
}

TEST(Baseline, ExtractKernelsSharesAcrossNodes) {
  // Two nodes both containing (c+d): one kernel extraction suffices.
  SopNetwork sn(4);
  Cover f1(4);
  f1.add(Cube::parse("1-1-"));
  f1.add(Cube::parse("1--1")); // a(c+d)
  Cover f2(4);
  f2.add(Cube::parse("-11-"));
  f2.add(Cube::parse("-1-1")); // b(c+d)
  sn.add_po(sn.add_node(f1), "f1");
  sn.add_po(sn.add_node(f2), "f2");
  const int before = sn.literal_count();
  const int created = extract_kernels(sn);
  EXPECT_GE(created, 1);
  EXPECT_LT(sn.literal_count(), before);
  // Function preserved.
  Network net = sn.to_network();
  Cover g1(4);
  g1.add(Cube::parse("1-1-"));
  g1.add(Cube::parse("1--1"));
  Cover g2(4);
  g2.add(Cube::parse("-11-"));
  g2.add(Cube::parse("-1-1"));
  EXPECT_TRUE(check_against_tts(net, {g1.to_truth_table(), g2.to_truth_table()})
                  .equivalent);
}

TEST(Baseline, ExtractCubesSharesPairs) {
  // Three cubes all containing the pair ab.
  SopNetwork sn(4);
  Cover f(4);
  f.add(Cube::parse("111-"));
  f.add(Cube::parse("11-1"));
  f.add(Cube::parse("1100"));
  sn.add_po(sn.add_node(f), "f");
  const int created = extract_cubes(sn);
  EXPECT_GE(created, 1);
  Cover orig(4);
  orig.add(Cube::parse("111-"));
  orig.add(Cube::parse("11-1"));
  orig.add(Cube::parse("1100"));
  EXPECT_TRUE(
      check_against_tts(sn.to_network(), {orig.to_truth_table()}).equivalent);
}

TEST(Baseline, NoXorGatesInResult) {
  // The conventional flow is pure AND/OR factorization (the paper's
  // premise): XOR can only appear if the spec's structure is kept, which
  // flattening removes on small circuits.
  const Benchmark bench = make_benchmark("rd53");
  const Network out = baseline_synthesize(bench.spec, {}, nullptr);
  EXPECT_EQ(network_stats(out).num_xor2, 0u);
}

TEST(Baseline, RedRemovalNeverIncreasesSize) {
  BaselineOptions with, without;
  without.run_redundancy_removal = false;
  const Benchmark bench = make_benchmark("cm85a");
  BaselineReport r1, r2;
  (void)baseline_synthesize(bench.spec, with, &r1);
  (void)baseline_synthesize(bench.spec, without, &r2);
  EXPECT_LE(r1.stats.gates2, r2.stats.gates2);
}

TEST(Baseline, MultilevelInputWhenFlattenBails) {
  // parity cannot be flattened at the default cap; the baseline must still
  // produce an equivalent circuit from the structural network.
  const Benchmark bench = make_benchmark("xor10");
  const Network out = baseline_synthesize(bench.spec, {}, nullptr);
  EXPECT_TRUE(check_equivalence(bench.spec, out).equivalent);
}

} // namespace
} // namespace rmsyn
