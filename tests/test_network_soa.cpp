// SoA network core tests: the maintained structure (ref counts, fanout
// lists, levels, free-list recycling) must track a naive shadow model
// through arbitrary build/rewrite/recycle sequences; compact() must remap
// ids densely while preserving PI/PO order, names and semantics; and the
// AIGER reader/writer must round-trip through both the ascii and binary
// encodings (cross-checked against BLIF) with full functional equivalence.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <stdexcept>
#include <vector>

#include "benchgen/spec.hpp"
#include "equiv/equiv.hpp"
#include "network/io.hpp"
#include "network/network.hpp"
#include "network/simulate.hpp"
#include "util/rng.hpp"

namespace rmsyn {
namespace {

// --- shadow model ------------------------------------------------------------

/// Naive AoS mirror of a Network: every maintained quantity is recomputed
/// from scratch, so any divergence pinpoints broken incremental updates.
struct Shadow {
  struct Node {
    GateType type = GateType::Const0;
    std::vector<NodeId> fanins;
    bool alive = true;
  };
  std::vector<Node> nodes{{/*const0*/}, {GateType::Const1, {}, true}};
  std::vector<NodeId> pis, pos;

  NodeId add_pi() {
    nodes.push_back({GateType::Pi, {}, true});
    pis.push_back(static_cast<NodeId>(nodes.size() - 1));
    return pis.back();
  }
  NodeId add_gate_at(NodeId id, GateType t, std::vector<NodeId> fi) {
    if (id == nodes.size()) nodes.emplace_back();
    nodes[id] = {t, std::move(fi), true};
    return id;
  }
  void rewrite(NodeId n, GateType t, std::vector<NodeId> fi) {
    nodes[n].type = t;
    nodes[n].fanins = std::move(fi);
  }
  void recycle(NodeId n) { nodes[n] = {GateType::Const0, {}, false}; }

  uint32_t ref_count(NodeId n) const {
    uint32_t c = 0;
    for (const auto& node : nodes)
      if (node.alive)
        for (const NodeId f : node.fanins) c += f == n ? 1 : 0;
    return c;
  }
  uint32_t po_refs(NodeId n) const {
    uint32_t c = 0;
    for (const NodeId p : pos) c += p == n ? 1 : 0;
    return c;
  }
  std::vector<NodeId> fanout_owners(NodeId n) const {
    std::vector<NodeId> out;
    for (NodeId m = 0; m < nodes.size(); ++m)
      if (nodes[m].alive)
        for (const NodeId f : nodes[m].fanins)
          if (f == n) out.push_back(m);
    return out;
  }
  uint32_t level(NodeId n) const {
    if (nodes[n].fanins.empty()) return 0;
    uint32_t lv = 0;
    for (const NodeId f : nodes[n].fanins) lv = std::max(lv, level(f) + 1);
    return lv;
  }
};

void expect_matches_shadow(const Network& net, const Shadow& sh,
                           const std::string& context) {
  ASSERT_EQ(net.node_count(), sh.nodes.size()) << context;
  for (NodeId n = 0; n < net.node_count(); ++n) {
    if (!sh.nodes[n].alive) {
      EXPECT_TRUE(net.is_dead(n)) << context << ": node " << n;
      continue;
    }
    ASSERT_FALSE(net.is_dead(n)) << context << ": node " << n;
    EXPECT_EQ(net.type(n), sh.nodes[n].type) << context << ": node " << n;
    EXPECT_EQ(net.fanins(n), sh.nodes[n].fanins) << context << ": node " << n;
    EXPECT_EQ(net.ref_count(n), sh.ref_count(n)) << context << ": node " << n;
    EXPECT_EQ(net.po_ref_count(n), sh.po_refs(n)) << context << ": node " << n;
    EXPECT_EQ(net.level(n), sh.level(n)) << context << ": node " << n;
    // Fanout lists carry the same edge multiset (order is maintenance
    // order, so compare sorted).
    std::vector<NodeId> got = net.fanout_list(n);
    std::vector<NodeId> want = sh.fanout_owners(n);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << context << ": node " << n;
  }
}

TEST(NetworkSoa, RandomizedMutationsMatchShadow) {
  static const GateType kBinary[] = {GateType::And,  GateType::Or,
                                     GateType::Xor,  GateType::Nand,
                                     GateType::Nor,  GateType::Xnor};
  for (const uint64_t seed : {1ull, 7ull, 0xBADC0DEull}) {
    Rng rng(seed);
    Network net;
    Shadow sh;
    // rank[n] = creation stamp; fanins always point at strictly older
    // stamps, so no mutation sequence can close a cycle.
    std::vector<uint64_t> rank{0, 0};
    uint64_t stamp = 1;
    for (int i = 0; i < 6; ++i) {
      net.add_pi("p" + std::to_string(i));
      sh.add_pi();
      rank.push_back(stamp++);
    }
    const auto pick_older_than = [&](uint64_t bound) {
      // Uniform over alive nodes with rank < bound (constants qualify).
      NodeId best = Network::kConst0;
      for (int tries = 0; tries < 32; ++tries) {
        const NodeId c = static_cast<NodeId>(rng.next() % sh.nodes.size());
        if (sh.nodes[c].alive && rank[c] < bound) return c;
      }
      return best;
    };

    std::vector<NodeId> recyclable;
    for (int step = 0; step < 400; ++step) {
      const unsigned op = rng.next() % 10;
      if (op < 5 || net.node_count() < 12) {
        // add_gate (possibly reusing a recycled slot)
        const GateType t = kBinary[rng.next() % 6];
        const std::vector<NodeId> fi = {pick_older_than(stamp),
                                        pick_older_than(stamp)};
        const NodeId n = net.add_gate(t, fi);
        sh.add_gate_at(n, t, fi);
        if (n >= rank.size()) rank.resize(n + 1, 0);
        rank[n] = stamp++;
      } else if (op < 8) {
        // rewrite a random alive gate with fanins older than itself
        std::vector<NodeId> gates;
        for (NodeId n = 2; n < net.node_count(); ++n)
          if (sh.nodes[n].alive && sh.nodes[n].type != GateType::Pi)
            gates.push_back(n);
        if (gates.empty()) continue;
        const NodeId n = gates[rng.next() % gates.size()];
        if (rng.next() % 4 == 0) {
          const std::vector<NodeId> fi = {pick_older_than(rank[n])};
          net.rewrite_gate(n, GateType::Not, fi);
          sh.rewrite(n, GateType::Not, fi);
        } else {
          const GateType t = kBinary[rng.next() % 6];
          // Grow/shrink arity between 1 and 3 to exercise in-place reuse
          // and arena re-append.
          std::vector<NodeId> fi;
          const std::size_t arity = 1 + rng.next() % 3;
          for (std::size_t k = 0; k < arity; ++k)
            fi.push_back(pick_older_than(rank[n]));
          net.rewrite_gate(n, t, fi);
          sh.rewrite(n, t, fi);
        }
      } else {
        // recycle an unreferenced non-PI node, if any
        std::vector<NodeId> cand;
        for (NodeId n = 2; n < net.node_count(); ++n)
          if (sh.nodes[n].alive && sh.nodes[n].type != GateType::Pi &&
              sh.ref_count(n) == 0 && sh.po_refs(n) == 0)
            cand.push_back(n);
        if (cand.empty()) continue;
        const NodeId n = cand[rng.next() % cand.size()];
        net.recycle(n);
        sh.recycle(n);
      }
      if (step % 50 == 49)
        expect_matches_shadow(net, sh, "seed " + std::to_string(seed) +
                                           " step " + std::to_string(step));
    }
    // POs on a couple of live gates, then a final full compare.
    for (NodeId n = 2; n < net.node_count() && sh.pos.size() < 3; ++n) {
      if (!sh.nodes[n].alive || sh.nodes[n].type == GateType::Pi) continue;
      net.add_po(n, "po" + std::to_string(sh.pos.size()));
      sh.pos.push_back(n);
    }
    expect_matches_shadow(net, sh, "seed " + std::to_string(seed) + " final");
  }
}

TEST(NetworkSoa, RecycleGuardsAndReuse) {
  Network net;
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId g = net.add_and(a, b);
  const NodeId h = net.add_not(g);
  net.add_po(h, "f");

  EXPECT_THROW(net.recycle(g), std::logic_error); // still referenced by h
  EXPECT_THROW(net.recycle(h), std::logic_error); // PO-referenced
  EXPECT_THROW(net.recycle(a), std::logic_error); // PIs never recycle

  net.rewrite_gate(h, GateType::Not, {a}); // g drops to 0 refs
  net.recycle(g);
  EXPECT_TRUE(net.is_dead(g));
  const std::size_t before = net.node_count();
  const NodeId reused = net.add_or(a, b); // must reuse g's slot
  EXPECT_EQ(reused, g);
  EXPECT_EQ(net.node_count(), before);
  EXPECT_FALSE(net.is_dead(reused));
  EXPECT_EQ(net.ref_count(a), 2u); // h and the reused gate
}

// --- compact -----------------------------------------------------------------

TEST(NetworkSoa, CompactPreservesOrderNamesAndFunction) {
  for (const auto& name : {"z4ml", "rd53", "mlp4", "t481"}) {
    Network net = make_benchmark(name).spec;
    // Orphan some structure so compact() has something to drop: rewrite a
    // few gates down to buffers of their first fanin.
    Rng rng(0xC0DE ^ net.node_count());
    std::vector<NodeId> gates;
    for (NodeId n = 2; n < net.node_count(); ++n)
      if (net.type(n) != GateType::Pi) gates.push_back(n);
    for (int i = 0; i < 3 && !gates.empty(); ++i) {
      const NodeId n = gates[rng.next() % gates.size()];
      net.rewrite_gate(n, GateType::Buf, {net.fanins(n)[0]});
    }

    const Network before = net; // copy for the semantic comparison
    const std::vector<NodeId> old_pis = net.pis();
    const std::vector<NodeId> old_pos = net.pos();

    const std::vector<NodeId> remap = net.compact();
    ASSERT_EQ(remap.size(), before.node_count()) << name;

    // Dense: constants first, then PIs in pi order.
    EXPECT_EQ(remap[Network::kConst0], Network::kConst0) << name;
    EXPECT_EQ(remap[Network::kConst1], Network::kConst1) << name;
    ASSERT_EQ(net.pi_count(), old_pis.size()) << name;
    for (std::size_t i = 0; i < old_pis.size(); ++i) {
      EXPECT_EQ(net.pis()[i], static_cast<NodeId>(2 + i)) << name;
      EXPECT_EQ(remap[old_pis[i]], net.pis()[i]) << name;
      EXPECT_EQ(net.name(net.pis()[i]), before.name(old_pis[i])) << name;
      EXPECT_EQ(net.pi_index(net.pis()[i]), i) << name;
    }
    ASSERT_EQ(net.po_count(), old_pos.size()) << name;
    for (std::size_t i = 0; i < old_pos.size(); ++i) {
      EXPECT_EQ(net.po(i), remap[old_pos[i]]) << name;
      EXPECT_EQ(net.po_name(i), before.po_name(i)) << name;
    }
    // Every live node maps; its type survives the move.
    const auto live = before.live_mask();
    for (NodeId n = 0; n < before.node_count(); ++n) {
      if (!live[n]) continue;
      ASSERT_NE(remap[n], Network::kNoNode) << name << ": node " << n;
      EXPECT_EQ(net.type(remap[n]), before.type(n)) << name << ": node " << n;
    }
    EXPECT_LE(net.node_count(), before.node_count()) << name;
    EXPECT_LE(net.edge_capacity(), before.edge_capacity()) << name;

    // Same function on random patterns.
    const PatternSet patterns = random_patterns(net.pi_count(), 128, 0xFADE);
    const auto va = simulate(before, patterns);
    const auto vb = simulate(net, patterns);
    for (std::size_t i = 0; i < net.po_count(); ++i)
      EXPECT_EQ(va[before.po(i)], vb[net.po(i)]) << name << ": po " << i;

    // A second compact of an already-dense network is id-stable.
    const std::size_t count = net.node_count();
    const std::vector<NodeId> remap2 = net.compact();
    EXPECT_EQ(net.node_count(), count) << name;
    for (NodeId n = 0; n < count; ++n)
      EXPECT_EQ(remap2[n], n) << name << ": node " << n;
  }
}

// --- AIGER -------------------------------------------------------------------

TEST(NetworkSoa, AigerAsciiRoundTripIsEquivalent) {
  for (const auto& name : {"z4ml", "rd53", "f2", "majority", "mlp4", "t481"}) {
    const Network net = make_benchmark(name).spec;
    const std::string text = write_aiger_string(net, /*binary=*/false);
    ASSERT_EQ(text.compare(0, 4, "aag "), 0) << name;
    const Network back = read_aiger_string(text);
    ASSERT_EQ(back.pi_count(), net.pi_count()) << name;
    ASSERT_EQ(back.po_count(), net.po_count()) << name;
    for (std::size_t i = 0; i < net.pi_count(); ++i)
      EXPECT_EQ(back.name(back.pis()[i]), net.name(net.pis()[i])) << name;
    for (std::size_t i = 0; i < net.po_count(); ++i)
      EXPECT_EQ(back.po_name(i), net.po_name(i)) << name;
    const auto eq = check_equivalence(net, back);
    EXPECT_TRUE(eq.decided && eq.equivalent) << name << ": " << eq.reason;
  }
}

TEST(NetworkSoa, AigerBinaryRoundTripIsEquivalent) {
  for (const auto& name : {"z4ml", "rd53", "f2", "mlp4"}) {
    const Network net = make_benchmark(name).spec;
    const std::string text = write_aiger_string(net, /*binary=*/true);
    ASSERT_EQ(text.compare(0, 4, "aig "), 0) << name;
    const Network back = read_aiger_string(text);
    const auto eq = check_equivalence(net, back);
    EXPECT_TRUE(eq.decided && eq.equivalent) << name << ": " << eq.reason;
    // Binary and ascii encodings decode to identical structure.
    const Network ascii_back =
        read_aiger_string(write_aiger_string(net, /*binary=*/false));
    EXPECT_EQ(write_blif_string(back, name), write_blif_string(ascii_back, name))
        << name;
  }
}

TEST(NetworkSoa, AigerBlifCrossRoundTripIsEquivalent) {
  for (const auto& name : {"z4ml", "rd53", "f2"}) {
    const Network net = make_benchmark(name).spec;
    // Network -> AIGER -> Network -> BLIF -> Network keeps the function.
    const Network via_aiger = read_aiger_string(write_aiger_string(net));
    const Network via_blif =
        read_blif_string(write_blif_string(via_aiger, name));
    const auto eq = check_equivalence(net, via_blif);
    EXPECT_TRUE(eq.decided && eq.equivalent) << name << ": " << eq.reason;
  }
}

TEST(NetworkSoa, AigerGeneratedLargeBenchmarkRoundTrips) {
  // The parameterized families feed the scale bench; make sure a mid-size
  // instance survives the binary encoding bit-exactly (structural compare
  // via BLIF text, no BDDs at this size).
  const Network net = make_benchmark("adder64").spec;
  const Network back = read_aiger_string(write_aiger_string(net, true));
  ASSERT_EQ(back.pi_count(), net.pi_count());
  ASSERT_EQ(back.po_count(), net.po_count());
  const PatternSet patterns = random_patterns(net.pi_count(), 256, 0xADD);
  const auto va = simulate(net, patterns);
  const auto vb = simulate(back, patterns);
  for (std::size_t i = 0; i < net.po_count(); ++i)
    EXPECT_EQ(va[net.po(i)], vb[back.po(i)]) << "po " << i;
}

TEST(NetworkSoa, AigerRejectsMalformedInput) {
  // Latches are combinational-only territory.
  EXPECT_THROW(read_aiger_string("aag 3 1 1 1 0\n2\n4 2\n4\n"),
               std::runtime_error);
  // Bad magic.
  EXPECT_THROW(read_aiger_string("agg 1 1 0 1 0\n2\n2\n"), std::runtime_error);
  // Variable defined twice.
  EXPECT_THROW(
      read_aiger_string("aag 3 2 0 1 1\n2\n4\n6\n4 2 2\n"),
      std::runtime_error);
  // Output reads an undefined variable.
  EXPECT_THROW(read_aiger_string("aag 3 1 0 1 0\n2\n6\n"), std::runtime_error);
  // Truncated binary and-gate section.
  EXPECT_THROW(read_aiger_string("aig 2 1 0 1 1\n4\n"), std::runtime_error);
  // Binary header must satisfy M = I + A.
  EXPECT_THROW(read_aiger_string("aig 5 1 0 1 1\n4\n\x02\x02"),
               std::runtime_error);
  // And-gate underflow in the delta encoding (rhs0 would exceed lhs).
  EXPECT_THROW(read_aiger_string(std::string("aig 2 1 0 1 1\n4\n\x00\x00", 18)),
               std::runtime_error);
}

TEST(NetworkSoa, AigerAcceptsOutOfOrderAscii) {
  // aag allows and-gates in any order; the reader resolves iteratively.
  const Network net = read_aiger_string(
      "aag 4 2 0 1 2\n2\n4\n8\n8 6 2\n6 2 4\ni0 a\ni1 b\no0 f\n");
  ASSERT_EQ(net.pi_count(), 2u);
  ASSERT_EQ(net.po_count(), 1u);
  // f = (a & b) & a = a & b.
  EXPECT_EQ(net.eval({true, true}), std::vector<bool>{true});
  EXPECT_EQ(net.eval({true, false}), std::vector<bool>{false});
  EXPECT_EQ(net.eval({false, true}), std::vector<bool>{false});
}

// --- BLIF diagnostics (PLA-parity hardening) --------------------------------

void expect_blif_error_contains(const std::string& text,
                                const std::string& needle) {
  try {
    read_blif_string(text);
    FAIL() << "expected read_blif to reject: " << text;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(NetworkSoa, BlifDiagnosticsCarryLineNumbers) {
  expect_blif_error_contains(
      ".model m\n.inputs a a\n.outputs f\n.names a f\n1 1\n.end\n",
      "line 2: duplicate input a");
  expect_blif_error_contains(".model m\n.inputs a\n.outputs f\n.end\n",
                             "line 3: undriven output f");
  expect_blif_error_contains(
      ".model m\n.inputs a\n.outputs f\n.names a g f\n11 1\n.end\n",
      "line 4: unresolved");
}

TEST(NetworkSoa, BlifMultiCubeNamesRoundTrip) {
  // A multi-cube OR-of-ANDs block must survive write->read->write.
  const std::string src =
      ".model m\n.inputs a b c\n.outputs f\n"
      ".names a b c f\n11- 1\n--1 1\n0-0 1\n.end\n";
  const Network net = read_blif_string(src);
  const Network back = read_blif_string(write_blif_string(net, "m"));
  const auto eq = check_equivalence(net, back);
  EXPECT_TRUE(eq.decided && eq.equivalent) << eq.reason;
}

} // namespace
} // namespace rmsyn
