// Quality-floor regression tests: the flow's results on the deterministic
// arithmetic circuits must stay within loose bounds of the currently
// measured quality (about +20% headroom). These are deliberately not exact
// pins — heuristics may shift — but a regression that doubles an adder or
// loses t481's two-orders-of-magnitude win must fail loudly.
#include <gtest/gtest.h>

#include "baseline/script.hpp"
#include "benchgen/spec.hpp"
#include "core/synth.hpp"

namespace rmsyn {
namespace {

struct Bound {
  const char* circuit;
  std::size_t max_ours_lits; // measured * ~1.2
};

// Measured values (see EXPERIMENTS.md): z4ml 54, adr4 62, add6 98,
// my_adder 288, rd53 62, rd73 114, rd84 152, 9sym 230, t481 54, mlp4 492,
// cm82a 36, f2 20, parity 90, xor10 54, sym10 276, squar5 90, sqr6 230.
constexpr Bound kBounds[] = {
    {"z4ml", 66},    {"adr4", 75},   {"add6", 118},  {"my_adder", 350},
    {"rd53", 75},    {"rd73", 137},  {"rd84", 183},  {"9sym", 276},
    {"t481", 65},    {"mlp4", 591},  {"cm82a", 44},  {"f2", 24},
    {"parity", 108}, {"xor10", 65},  {"sym10", 332}, {"squar5", 108},
    {"sqr6", 276},
};

class QualityFloor : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QualityFloor, OursStaysWithinMeasuredQuality) {
  const Bound& b = kBounds[GetParam()];
  SynthReport rep;
  (void)synthesize(make_benchmark(b.circuit).spec, {}, &rep);
  EXPECT_LE(rep.stats.lits, b.max_ours_lits) << b.circuit;
}

INSTANTIATE_TEST_SUITE_P(Arithmetic, QualityFloor,
                         ::testing::Range<std::size_t>(0, std::size(kBounds)));

TEST(QualityFloor, OursBeatsBaselineOnArithmeticHeadliners) {
  // The core claim of the paper, as a regression test.
  for (const char* name : {"z4ml", "adr4", "add6", "rd73", "rd84", "9sym",
                           "sym10", "t481", "mlp4", "f51m", "5xp1"}) {
    SynthReport ours;
    BaselineReport base;
    const Benchmark bench = make_benchmark(name);
    (void)synthesize(bench.spec, {}, &ours);
    (void)baseline_synthesize(bench.spec, {}, &base);
    EXPECT_LT(ours.stats.lits, base.stats.lits) << name;
  }
}

TEST(QualityFloor, RuntimeStaysInteractive) {
  // The paper's speed claim, loosely: every arithmetic circuit synthesizes
  // in a few seconds on a laptop-class machine.
  for (const char* name : {"z4ml", "t481", "sym10", "rd84", "mlp4"}) {
    SynthReport rep;
    (void)synthesize(make_benchmark(name).spec, {}, &rep);
    EXPECT_LT(rep.seconds, 10.0) << name;
  }
}

} // namespace
} // namespace rmsyn
