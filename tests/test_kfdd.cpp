// Kronecker-FDD extension tests: mixed Shannon/Davio expansions must stay
// functionally exact and beat pure-Davio on control-dominated functions.
#include "fdd/kfdd.hpp"

#include <gtest/gtest.h>

#include "benchgen/spec.hpp"
#include "equiv/equiv.hpp"
#include "network/stats.hpp"
#include "network/transform.hpp"
#include "util/rng.hpp"

namespace rmsyn {
namespace {

TruthTable random_tt(int n, Rng& rng) {
  TruthTable f(n);
  for (uint64_t m = 0; m < f.size(); ++m)
    if (rng.flip()) f.set(m);
  return f;
}

class KfddExpansion : public ::testing::TestWithParam<Expansion> {};

TEST_P(KfddExpansion, UniformExpansionIsExact) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 101 + 5);
  for (int iter = 0; iter < 15; ++iter) {
    const int n = 4 + static_cast<int>(rng.below(2));
    const TruthTable f = random_tt(n, rng);
    BddManager mgr(n);
    const BddRef fb = mgr.from_cover(Cover::from_truth_table(f));
    Network net;
    std::vector<NodeId> pis;
    for (int v = 0; v < n; ++v) pis.push_back(net.add_pi());
    KfddBuilder builder(net, pis, mgr,
                        std::vector<Expansion>(static_cast<std::size_t>(n),
                                               GetParam()));
    net.add_po(builder.build(fb));
    const auto check = check_against_tts(net, {f});
    EXPECT_TRUE(check.equivalent) << check.reason;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, KfddExpansion,
                         ::testing::Values(Expansion::Shannon,
                                           Expansion::PositiveDavio,
                                           Expansion::NegativeDavio));

TEST(Kfdd, MixedExpansionsAreExact) {
  Rng rng(777);
  for (int iter = 0; iter < 20; ++iter) {
    const int n = 5;
    const TruthTable f = random_tt(n, rng);
    BddManager mgr(n);
    const BddRef fb = mgr.from_cover(Cover::from_truth_table(f));
    std::vector<Expansion> exp;
    for (int v = 0; v < n; ++v)
      exp.push_back(static_cast<Expansion>(rng.below(3)));
    Network net;
    std::vector<NodeId> pis;
    for (int v = 0; v < n; ++v) pis.push_back(net.add_pi());
    KfddBuilder builder(net, pis, mgr, exp);
    net.add_po(builder.build(fb));
    EXPECT_TRUE(check_against_tts(net, {f}).equivalent);
  }
}

TEST(Kfdd, SynthesizeIsEquivalentOnBenchmarks) {
  for (const char* name : {"z4ml", "rd53", "majority", "cm85a", "pcle"}) {
    const Benchmark bench = make_benchmark(name);
    const Network out = kfdd_synthesize(bench.spec);
    const auto check = check_equivalence(bench.spec, out);
    EXPECT_TRUE(check.equivalent) << name << ": " << check.reason;
  }
}

TEST(Kfdd, ShannonWinsOnMultiplexers) {
  // A 4:1 mux: pure Davio pays XOR cost, Shannon on the selects does not.
  Network spec;
  const NodeId s0 = spec.add_pi("s0");
  const NodeId s1 = spec.add_pi("s1");
  std::vector<NodeId> d;
  for (int i = 0; i < 4; ++i) d.push_back(spec.add_pi("d" + std::to_string(i)));
  const NodeId ns0 = spec.add_not(s0);
  const NodeId ns1 = spec.add_not(s1);
  const NodeId y = spec.add_gate(
      GateType::Or,
      {spec.add_gate(GateType::And, {ns1, ns0, d[0]}),
       spec.add_gate(GateType::And, {ns1, s0, d[1]}),
       spec.add_gate(GateType::And, {s1, ns0, d[2]}),
       spec.add_gate(GateType::And, {s1, s0, d[3]})});
  spec.add_po(y, "y");

  BddManager mgr(static_cast<int>(spec.pi_count()));
  const auto outs = output_bdds(mgr, spec);
  const std::vector<Expansion> chosen = best_kfdd_decomposition(mgr, outs);
  // The greedy search must not be worse than pure positive Davio.
  Network davio_net, kfdd_net;
  std::vector<NodeId> pis1, pis2;
  for (std::size_t i = 0; i < spec.pi_count(); ++i) {
    pis1.push_back(davio_net.add_pi());
    pis2.push_back(kfdd_net.add_pi());
  }
  KfddBuilder davio(davio_net, pis1, mgr,
                    std::vector<Expansion>(spec.pi_count(),
                                           Expansion::PositiveDavio));
  davio_net.add_po(davio.build(outs[0]));
  KfddBuilder mixed(kfdd_net, pis2, mgr, chosen);
  kfdd_net.add_po(mixed.build(outs[0]));
  EXPECT_LT(network_stats(strash(kfdd_net)).gates2,
            network_stats(strash(davio_net)).gates2);
  EXPECT_TRUE(check_equivalence(davio_net, kfdd_net).equivalent);
}

TEST(Kfdd, CrossOutputSharing) {
  // Two adder outputs share carry logic through the shared memo.
  const Network spec = ripple_adder(4, true, true);
  const Network out = kfdd_synthesize(spec);
  EXPECT_TRUE(check_equivalence(spec, out).equivalent);
  // Cost must be in the same class as the FPRM flow (not exponential).
  EXPECT_LE(network_stats(out).gates2, 80u);
}

} // namespace
} // namespace rmsyn
