// Benchmark-generator tests: Table-2 interface compliance and functional
// oracles for the exactly-regenerated arithmetic circuits.
#include "benchgen/spec.hpp"

#include <gtest/gtest.h>

#include "network/simulate.hpp"
#include "util/rng.hpp"

namespace rmsyn {
namespace {

struct Io {
  const char* name;
  int in, out;
};

// The I/O column of Table 2.
constexpr Io kTable2Io[] = {
    {"5xp1", 7, 10},   {"9sym", 9, 1},    {"adr4", 8, 5},    {"add6", 12, 7},
    {"addm4", 9, 8},   {"bcd-div3", 4, 4},{"cc", 21, 20},    {"co14", 14, 1},
    {"cm163a", 16, 5}, {"cm82a", 5, 3},   {"cm85a", 11, 3},  {"cmb", 16, 4},
    {"f2", 4, 4},      {"f51m", 8, 8},    {"frg1", 28, 3},   {"i1", 25, 13},
    {"i3", 132, 6},    {"i4", 192, 6},    {"i5", 133, 66},   {"m181", 15, 9},
    {"majority", 5, 1},{"misg", 56, 23},  {"mish", 94, 34},  {"mlp4", 8, 8},
    {"my_adder", 33, 17}, {"parity", 16, 1}, {"pcle", 19, 9},
    {"pcler8", 27, 17},{"pm1", 16, 13},   {"radd", 8, 5},    {"rd53", 5, 3},
    {"rd73", 7, 3},    {"rd84", 8, 4},    {"shift", 19, 16}, {"sqr6", 6, 12},
    {"squar5", 5, 8},  {"sym10", 10, 1},  {"t481", 16, 1},   {"tcon", 17, 16},
    {"xor10", 10, 1},  {"z4ml", 7, 4},
};

TEST(Benchgen, RegistryCoversAllOfTable2) {
  EXPECT_EQ(benchmark_names().size(), std::size(kTable2Io));
  for (const auto& io : kTable2Io) EXPECT_TRUE(has_benchmark(io.name)) << io.name;
  EXPECT_FALSE(has_benchmark("nonexistent"));
  EXPECT_THROW(make_benchmark("nonexistent"), std::invalid_argument);
}

class BenchgenIo : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BenchgenIo, InterfaceMatchesTable2) {
  const Io& io = kTable2Io[GetParam()];
  const Benchmark b = make_benchmark(io.name);
  EXPECT_EQ(b.num_inputs, io.in) << io.name;
  EXPECT_EQ(b.num_outputs, io.out) << io.name;
  EXPECT_FALSE(b.description.empty());
  EXPECT_EQ(b.spec.pi_count(), static_cast<std::size_t>(io.in));
  EXPECT_EQ(b.spec.po_count(), static_cast<std::size_t>(io.out));
}

INSTANTIATE_TEST_SUITE_P(AllCircuits, BenchgenIo,
                         ::testing::Range<std::size_t>(0, std::size(kTable2Io)));

uint64_t eval_bus(const Network& net, uint64_t input_bits, int first_out,
                  int num_out) {
  std::vector<bool> pis(net.pi_count());
  for (std::size_t i = 0; i < pis.size(); ++i)
    pis[i] = ((input_bits >> i) & 1) != 0;
  const auto outs = net.eval(pis);
  uint64_t v = 0;
  for (int k = 0; k < num_out; ++k)
    if (outs[static_cast<std::size_t>(first_out + k)]) v |= uint64_t{1} << k;
  return v;
}

TEST(Benchgen, RippleAdderAdds) {
  // adr4: PIs interleaved a0 b0 a1 b1 ...; outputs s0..s3, cout.
  const Benchmark b = make_benchmark("adr4");
  Rng rng(1);
  for (int iter = 0; iter < 50; ++iter) {
    const uint64_t a = rng.below(16), bb = rng.below(16);
    uint64_t input = 0;
    for (int k = 0; k < 4; ++k) {
      if ((a >> k) & 1) input |= uint64_t{1} << (2 * k);
      if ((bb >> k) & 1) input |= uint64_t{1} << (2 * k + 1);
    }
    EXPECT_EQ(eval_bus(b.spec, input, 0, 5), a + bb);
  }
}

TEST(Benchgen, Z4mlAddsWithCarryIn) {
  const Benchmark b = make_benchmark("z4ml");
  for (uint64_t a = 0; a < 8; ++a)
    for (uint64_t bb = 0; bb < 8; ++bb)
      for (uint64_t cin = 0; cin < 2; ++cin) {
        uint64_t input = cin << 6;
        for (int k = 0; k < 3; ++k) {
          if ((a >> k) & 1) input |= uint64_t{1} << (2 * k);
          if ((bb >> k) & 1) input |= uint64_t{1} << (2 * k + 1);
        }
        EXPECT_EQ(eval_bus(b.spec, input, 0, 4), a + bb + cin);
      }
}

TEST(Benchgen, MultiplierMultiplies) {
  const Benchmark b = make_benchmark("mlp4");
  for (uint64_t a = 0; a < 16; ++a)
    for (uint64_t bb = 0; bb < 16; ++bb) {
      const uint64_t input = a | (bb << 4);
      EXPECT_EQ(eval_bus(b.spec, input, 0, 8), a * bb);
    }
}

TEST(Benchgen, SquarerSquares) {
  const Benchmark b = make_benchmark("sqr6");
  for (uint64_t x = 0; x < 64; ++x)
    EXPECT_EQ(eval_bus(b.spec, x, 0, 12), x * x);
  const Benchmark s5 = make_benchmark("squar5");
  for (uint64_t x = 0; x < 32; ++x)
    EXPECT_EQ(eval_bus(s5.spec, x, 0, 8), (x * x) & 0xFF);
}

TEST(Benchgen, OnesCountersCount) {
  for (const auto& [name, n, bits] :
       {std::tuple{"rd53", 5, 3}, {"rd73", 7, 3}, {"rd84", 8, 4}}) {
    const Benchmark b = make_benchmark(name);
    for (uint64_t x = 0; x < (uint64_t{1} << n); ++x)
      EXPECT_EQ(eval_bus(b.spec, x, 0, bits),
                static_cast<uint64_t>(__builtin_popcountll(x)))
          << name;
  }
}

TEST(Benchgen, SymmetricBands) {
  const Benchmark b9 = make_benchmark("9sym");
  for (uint64_t x = 0; x < 512; ++x) {
    const int w = __builtin_popcountll(x);
    EXPECT_EQ(eval_bus(b9.spec, x, 0, 1), static_cast<uint64_t>(w >= 3 && w <= 6));
  }
}

TEST(Benchgen, ParityIsParity) {
  const Benchmark b = make_benchmark("xor10");
  Rng rng(3);
  for (int iter = 0; iter < 100; ++iter) {
    const uint64_t x = rng.below(1 << 10);
    EXPECT_EQ(eval_bus(b.spec, x, 0, 1),
              static_cast<uint64_t>(__builtin_popcountll(x) & 1));
  }
}

TEST(Benchgen, MajorityIsMajority) {
  const Benchmark b = make_benchmark("majority");
  for (uint64_t x = 0; x < 32; ++x)
    EXPECT_EQ(eval_bus(b.spec, x, 0, 1),
              static_cast<uint64_t>(__builtin_popcountll(x) >= 3));
}

TEST(Benchgen, T481HasPaperFprmScale) {
  // The function printed in the paper has 481 primes in SOP but a 16-cube
  // FPRM — sanity: it is a real 16-input function depending on all inputs.
  const Benchmark b = make_benchmark("t481");
  const auto patterns = random_patterns(16, 4096, 99);
  const auto values = simulate(b.spec, patterns);
  const auto& out = values[b.spec.po(0)];
  const auto cnt = out.count();
  EXPECT_GT(cnt, 0u);
  EXPECT_LT(cnt, patterns.num_patterns);
}

TEST(Benchgen, MyAdder16BitSpotChecks) {
  const Benchmark b = make_benchmark("my_adder");
  Rng rng(7);
  for (int iter = 0; iter < 30; ++iter) {
    const uint64_t a = rng.below(uint64_t{1} << 16);
    const uint64_t bb = rng.below(uint64_t{1} << 16);
    const uint64_t cin = rng.below(2);
    uint64_t input = cin << 32;
    for (int k = 0; k < 16; ++k) {
      if ((a >> k) & 1) input |= uint64_t{1} << (2 * k);
      if ((bb >> k) & 1) input |= uint64_t{1} << (2 * k + 1);
    }
    EXPECT_EQ(eval_bus(b.spec, input, 0, 17), a + bb + cin);
  }
}

TEST(Benchgen, I5IsMuxBank) {
  const Benchmark b = make_benchmark("i5");
  Rng rng(11);
  std::vector<bool> pis(133);
  for (int iter = 0; iter < 20; ++iter) {
    for (std::size_t i = 0; i < pis.size(); ++i) pis[i] = rng.flip();
    const auto outs = b.spec.eval(pis);
    for (int k = 0; k < 66; ++k) {
      const bool expect = pis[0] ? pis[static_cast<std::size_t>(1 + k)]
                                 : pis[static_cast<std::size_t>(67 + k)];
      EXPECT_EQ(outs[static_cast<std::size_t>(k)], expect);
    }
  }
}

TEST(Benchgen, ShiftShifts) {
  const Benchmark b = make_benchmark("shift");
  Rng rng(13);
  std::vector<bool> pis(19);
  for (int iter = 0; iter < 50; ++iter) {
    uint64_t data = 0;
    for (int i = 0; i < 16; ++i) {
      pis[static_cast<std::size_t>(i)] = rng.flip();
      if (pis[static_cast<std::size_t>(i)]) data |= uint64_t{1} << i;
    }
    const unsigned amt = static_cast<unsigned>(rng.below(8));
    for (int i = 0; i < 3; ++i)
      pis[static_cast<std::size_t>(16 + i)] = ((amt >> i) & 1) != 0;
    const auto outs = b.spec.eval(pis);
    const uint64_t shifted = (data << amt) & 0xFFFF;
    for (int k = 0; k < 16; ++k)
      EXPECT_EQ(outs[static_cast<std::size_t>(k)], ((shifted >> k) & 1) != 0);
  }
}

TEST(Benchgen, Cm85aBehavesLikeA7485Comparator) {
  const Benchmark b = make_benchmark("cm85a");
  Rng rng(17);
  std::vector<bool> pis(11, false);
  for (int iter = 0; iter < 100; ++iter) {
    uint64_t av = rng.below(16), bv = rng.below(16);
    for (int i = 0; i < 4; ++i) {
      pis[static_cast<std::size_t>(i)] = ((av >> i) & 1) != 0;
      pis[static_cast<std::size_t>(4 + i)] = ((bv >> i) & 1) != 0;
    }
    // Cascade inputs: i_lt=0, i_eq=1, i_gt=0 (the standalone configuration).
    pis[8] = false;
    pis[9] = true;
    pis[10] = false;
    const auto out = b.spec.eval(pis); // ogt, oeq, olt
    EXPECT_EQ(out[0], av > bv);
    EXPECT_EQ(out[1], av == bv);
    EXPECT_EQ(out[2], av < bv);
  }
}

TEST(Benchgen, T481MatchesItsOwnClosedForm) {
  // Evaluate the paper's equation independently and compare.
  const Benchmark b = make_benchmark("t481");
  Rng rng(5);
  std::vector<bool> v(16);
  for (int iter = 0; iter < 200; ++iter) {
    for (auto&& bit : v) bit = rng.flip();
    const auto t1 = (!v[0] && v[1]) != (v[2] && !v[3]);
    const auto t2 = (!v[4] && v[5]) != (!v[6] || v[7]);
    const auto t3 = (v[8] || !v[9]) != (v[10] && !v[11]);
    const auto t4 = (!v[12] && v[13]) != (v[14] && !v[15]);
    const bool expect = (t1 && t2) != (t3 && t4);
    EXPECT_EQ(b.spec.eval(v)[0], expect);
  }
}

TEST(Benchgen, SyntheticCircuitsAreDeterministic) {
  const Benchmark a = make_benchmark("cc");
  const Benchmark b = make_benchmark("cc");
  const auto pa = random_patterns(21, 256, 5);
  const auto va = simulate(a.spec, pa);
  const auto vb = simulate(b.spec, pa);
  for (std::size_t i = 0; i < a.spec.po_count(); ++i)
    EXPECT_EQ(va[a.spec.po(i)], vb[b.spec.po(i)]);
}

TEST(Benchgen, ArithmeticFlagsAndExactness) {
  EXPECT_TRUE(make_benchmark("z4ml").arithmetic);
  EXPECT_TRUE(make_benchmark("z4ml").exact);
  EXPECT_TRUE(make_benchmark("t481").exact);
  EXPECT_FALSE(make_benchmark("cc").exact);
  EXPECT_FALSE(make_benchmark("cc").arithmetic);
  EXPECT_FALSE(make_benchmark("5xp1").exact); // documented substitution
  EXPECT_TRUE(make_benchmark("5xp1").arithmetic);
}

} // namespace
} // namespace rmsyn
