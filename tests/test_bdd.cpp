#include "bdd/bdd.hpp"

#include <gtest/gtest.h>

#include "tt/truth_table.hpp"
#include "util/rng.hpp"

namespace rmsyn {
namespace {

/// Oracle: converts a BDD to a truth table by evaluation.
TruthTable to_tt(BddManager& mgr, BddRef f, int nvars) {
  TruthTable t(nvars);
  for (uint64_t m = 0; m < t.size(); ++m) {
    BitVec a(static_cast<std::size_t>(nvars));
    for (int v = 0; v < nvars; ++v)
      if ((m >> v) & 1) a.set(static_cast<std::size_t>(v));
    if (mgr.eval(f, a)) t.set(m);
  }
  return t;
}

TEST(Bdd, TerminalsAndLiterals) {
  BddManager mgr(3);
  EXPECT_EQ(mgr.bdd_not(mgr.bdd_true()), mgr.bdd_false());
  EXPECT_EQ(mgr.var(0), mgr.var(0)); // interned
  EXPECT_EQ(mgr.bdd_not(mgr.bdd_not(mgr.var(1))), mgr.var(1));
  EXPECT_EQ(to_tt(mgr, mgr.var(2), 3), TruthTable::variable(3, 2));
  EXPECT_EQ(to_tt(mgr, mgr.nvar(2), 3), ~TruthTable::variable(3, 2));
}

TEST(Bdd, CanonicityMergesEqualFunctions) {
  BddManager mgr(2);
  // a ⊕ b built two different ways must intern to the same node.
  const BddRef x1 = mgr.bdd_xor(mgr.var(0), mgr.var(1));
  const BddRef x2 = mgr.bdd_or(mgr.bdd_and(mgr.var(0), mgr.nvar(1)),
                               mgr.bdd_and(mgr.nvar(0), mgr.var(1)));
  EXPECT_EQ(x1, x2);
}

TEST(Bdd, IteMatchesDefinition) {
  BddManager mgr(3);
  const BddRef f = mgr.bdd_ite(mgr.var(0), mgr.var(1), mgr.var(2));
  const auto tt = to_tt(mgr, f, 3);
  for (uint64_t m = 0; m < 8; ++m) {
    const bool expect = (m & 1) ? ((m >> 1) & 1) : ((m >> 2) & 1);
    EXPECT_EQ(tt.get(m), expect);
  }
}

TEST(Bdd, CofactorAndSupport) {
  BddManager mgr(3);
  const BddRef f =
      mgr.bdd_xor(mgr.var(0), mgr.bdd_and(mgr.var(1), mgr.var(2)));
  EXPECT_EQ(mgr.cofactor(f, 1, false), mgr.var(0));
  EXPECT_TRUE(mgr.depends_on(f, 2));
  EXPECT_FALSE(mgr.depends_on(mgr.cofactor(f, 2, false), 1));
  const BitVec sup = mgr.support(f);
  EXPECT_EQ(sup.count(), 3u);
}

TEST(Bdd, SatCountAndDensity) {
  BddManager mgr(4);
  const BddRef f = mgr.bdd_and(mgr.var(0), mgr.var(1));
  EXPECT_DOUBLE_EQ(mgr.sat_count(f), 4.0); // 2^2 free vars
  EXPECT_DOUBLE_EQ(mgr.density(f), 0.25);
  EXPECT_DOUBLE_EQ(mgr.density(mgr.bdd_true()), 1.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.bdd_false()), 0.0);
}

TEST(Bdd, PickSatSatisfies) {
  BddManager mgr(5);
  const BddRef f = mgr.bdd_and(mgr.bdd_xor(mgr.var(0), mgr.var(3)),
                               mgr.nvar(2));
  const BitVec a = mgr.pick_sat(f);
  EXPECT_TRUE(mgr.eval(f, a));
}

TEST(Bdd, EnumerateSatExpandsFreeVariables) {
  BddManager mgr(3);
  const BddRef f = mgr.var(0); // free in vars {0,1}: two assignments
  std::vector<std::string> seen;
  EXPECT_TRUE(mgr.enumerate_sat(f, {0, 1}, 100, [&](const BitVec& a) {
    seen.push_back(a.to_string());
    return true;
  }));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "10");
  EXPECT_EQ(seen[1], "11");
}

TEST(Bdd, EnumerateSatHonorsLimit) {
  BddManager mgr(4);
  std::size_t count = 0;
  const bool complete = mgr.enumerate_sat(
      mgr.bdd_true(), {0, 1, 2, 3}, 5, [&](const BitVec&) {
        ++count;
        return true;
      });
  EXPECT_FALSE(complete);
  EXPECT_EQ(count, 5u);
}

TEST(Bdd, FromCubeAndCover) {
  BddManager mgr(3);
  const Cube c = Cube::parse("1-0");
  const BddRef f = mgr.from_cube(c);
  EXPECT_EQ(to_tt(mgr, f, 3),
            TruthTable::from_function(3, [&](uint64_t m) { return c.eval(m); }));
  Cover cov(3);
  cov.add(Cube::parse("11-"));
  cov.add(Cube::parse("--0"));
  EXPECT_EQ(to_tt(mgr, mgr.from_cover(cov), 3), cov.to_truth_table());
}

TEST(Bdd, SizeCountsUniqueNodes) {
  BddManager mgr(2);
  EXPECT_EQ(mgr.size(mgr.bdd_true()), 0u);
  EXPECT_EQ(mgr.size(mgr.var(0)), 1u);
  // With complement edges XOR shares a single x1 node between both phases:
  // one x0 node plus one x1 node.
  EXPECT_EQ(mgr.size(mgr.bdd_xor(mgr.var(0), mgr.var(1))), 2u);
}

TEST(Bdd, EnumerateSatRejectsUncoveredSupport) {
  BddManager mgr(3);
  const BddRef f = mgr.bdd_and(mgr.var(0), mgr.var(2));
  // vars {0,1} do not cover support {0,2}: precondition violation.
  EXPECT_THROW(mgr.enumerate_sat(f, {0, 1}, 100,
                                 [](const BitVec&) { return true; }),
               std::logic_error);
}

TEST(Bdd, CofactorOfLowerVariableRebuilds) {
  BddManager mgr(3);
  const BddRef f =
      mgr.bdd_or(mgr.bdd_and(mgr.var(0), mgr.var(1)), mgr.var(2));
  // Cofactor on var 2, which sits below the root var.
  EXPECT_EQ(mgr.cofactor(f, 2, true), mgr.bdd_true());
  EXPECT_EQ(mgr.cofactor(f, 2, false), mgr.bdd_and(mgr.var(0), mgr.var(1)));
}

TEST(Bdd, CofactorOfIrrelevantVariableIsIdentity) {
  BddManager mgr(4);
  const BddRef f = mgr.bdd_xor(mgr.var(1), mgr.var(3));
  EXPECT_EQ(mgr.cofactor(f, 0, true), f);
  EXPECT_EQ(mgr.cofactor(f, 2, false), f);
}

TEST(Bdd, DotOutputMentionsNodes) {
  BddManager mgr(2);
  const std::string dot = mgr.to_dot(mgr.bdd_and(mgr.var(0), mgr.var(1)), "g");
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("x0"), std::string::npos);
  EXPECT_NE(dot.find("x1"), std::string::npos);
}

class BddRandom : public ::testing::TestWithParam<int> {};

TEST_P(BddRandom, OpsMatchTruthTableOracle) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 77 + 13);
  BddManager mgr(n);

  // Build random expressions bottom-up, in parallel on TT and BDD.
  for (int iter = 0; iter < 15; ++iter) {
    std::vector<std::pair<BddRef, TruthTable>> pool;
    for (int v = 0; v < n; ++v)
      pool.emplace_back(mgr.var(v), TruthTable::variable(n, v));
    for (int step = 0; step < 12; ++step) {
      const auto& a = pool[rng.below(pool.size())];
      const auto& b = pool[rng.below(pool.size())];
      switch (rng.below(4)) {
        case 0:
          pool.emplace_back(mgr.bdd_and(a.first, b.first), a.second & b.second);
          break;
        case 1:
          pool.emplace_back(mgr.bdd_or(a.first, b.first), a.second | b.second);
          break;
        case 2:
          pool.emplace_back(mgr.bdd_xor(a.first, b.first), a.second ^ b.second);
          break;
        default:
          pool.emplace_back(mgr.bdd_not(a.first), ~a.second);
          break;
      }
    }
    const auto& [f, tt] = pool.back();
    EXPECT_EQ(to_tt(mgr, f, n), tt);
    EXPECT_DOUBLE_EQ(mgr.sat_count(f), static_cast<double>(tt.count_ones()));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BddRandom, ::testing::Values(2, 3, 4, 5, 6, 8, 10));

} // namespace
} // namespace rmsyn
