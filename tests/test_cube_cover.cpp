#include <gtest/gtest.h>

#include "sop/cover.hpp"
#include "sop/cube.hpp"
#include "util/rng.hpp"

namespace rmsyn {
namespace {

TEST(Cube, ParseAndToString) {
  const Cube c = Cube::parse("1-0-");
  EXPECT_EQ(c.nvars(), 4);
  EXPECT_TRUE(c.has_pos(0));
  EXPECT_FALSE(c.has_var(1));
  EXPECT_TRUE(c.has_neg(2));
  EXPECT_EQ(c.to_string(), "1-0-");
  EXPECT_EQ(c.literal_count(), 2);
}

TEST(Cube, EvalAgainstMinterms) {
  const Cube c = Cube::parse("1-0");
  EXPECT_TRUE(c.eval(uint64_t{0b001}));  // x0=1 x2=0
  EXPECT_TRUE(c.eval(uint64_t{0b011}));
  EXPECT_FALSE(c.eval(uint64_t{0b000})); // x0=0
  EXPECT_FALSE(c.eval(uint64_t{0b101})); // x2=1
}

TEST(Cube, CoversAndClash) {
  const Cube wide = Cube::parse("1--");
  const Cube narrow = Cube::parse("110");
  EXPECT_TRUE(wide.covers(narrow));
  EXPECT_FALSE(narrow.covers(wide));
  EXPECT_FALSE(wide.clashes(narrow));
  const Cube neg = Cube::parse("0--");
  EXPECT_TRUE(wide.clashes(neg));
  EXPECT_EQ(wide.distance(neg), 1);
}

TEST(Cube, IntersectAndDivide) {
  const Cube a = Cube::parse("1--");
  const Cube b = Cube::parse("-0-");
  const Cube ab = a.intersect(b);
  EXPECT_EQ(ab.to_string(), "10-");
  EXPECT_TRUE(ab.divisible_by(a));
  EXPECT_EQ(ab.divide(a).to_string(), "-0-");
}

TEST(Cube, CofactorInplace) {
  Cube c = Cube::parse("10-");
  EXPECT_TRUE(c.cofactor_inplace(0, true));
  EXPECT_EQ(c.to_string(), "-0-");
  EXPECT_FALSE(c.cofactor_inplace(1, true)); // clashes with the 0 literal
}

TEST(Cover, TautologyBasics) {
  Cover f(2);
  f.add(Cube::parse("1-"));
  EXPECT_FALSE(f.is_tautology());
  f.add(Cube::parse("0-"));
  EXPECT_TRUE(f.is_tautology());
  EXPECT_TRUE(Cover::constant(3, true).is_tautology());
  EXPECT_FALSE(Cover(3).is_tautology());
}

TEST(Cover, CoversCube) {
  Cover f(3);
  f.add(Cube::parse("11-"));
  f.add(Cube::parse("10-"));
  EXPECT_TRUE(f.covers_cube(Cube::parse("1--")));
  EXPECT_FALSE(f.covers_cube(Cube::parse("0--")));
}

class CoverRandom : public ::testing::TestWithParam<int> {};

Cover random_cover(int nvars, int ncubes, Rng& rng) {
  Cover f(nvars);
  for (int c = 0; c < ncubes; ++c) {
    Cube cube(nvars);
    for (int v = 0; v < nvars; ++v) {
      const auto r = rng.below(3);
      if (r == 0) cube.add_pos(v);
      else if (r == 1) cube.add_neg(v);
    }
    f.add(std::move(cube));
  }
  return f;
}

TEST_P(CoverRandom, ComplementMatchesTruthTable) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 1000 + 17);
  for (int iter = 0; iter < 20; ++iter) {
    const Cover f = random_cover(n, 1 + static_cast<int>(rng.below(6)), rng);
    const Cover fc = f.complement();
    const TruthTable tf = f.to_truth_table();
    const TruthTable tfc = fc.to_truth_table();
    EXPECT_EQ(tfc, ~tf);
  }
}

TEST_P(CoverRandom, TautologyMatchesTruthTable) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 2000 + 29);
  for (int iter = 0; iter < 30; ++iter) {
    const Cover f = random_cover(n, 1 + static_cast<int>(rng.below(8)), rng);
    EXPECT_EQ(f.is_tautology(), f.to_truth_table().is_const1());
  }
}

TEST_P(CoverRandom, AndOrMatchTruthTables) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 3000 + 31);
  const Cover f = random_cover(n, 4, rng);
  const Cover g = random_cover(n, 4, rng);
  EXPECT_EQ((f | g).to_truth_table(), f.to_truth_table() | g.to_truth_table());
  EXPECT_EQ((f & g).to_truth_table(), f.to_truth_table() & g.to_truth_table());
}

TEST_P(CoverRandom, CofactorMatchesTruthTable) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 4000 + 37);
  const Cover f = random_cover(n, 5, rng);
  for (int v = 0; v < n; ++v) {
    EXPECT_EQ(f.cofactor(v, true).to_truth_table(),
              f.to_truth_table().cofactor(v, true));
    EXPECT_EQ(f.cofactor(v, false).to_truth_table(),
              f.to_truth_table().cofactor(v, false));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CoverRandom, ::testing::Values(2, 3, 4, 5, 6));

TEST(Cover, FromTruthTableRoundTrip) {
  Rng rng(123);
  for (int iter = 0; iter < 10; ++iter) {
    TruthTable f(4);
    for (uint64_t m = 0; m < f.size(); ++m)
      if (rng.flip()) f.set(m);
    EXPECT_EQ(Cover::from_truth_table(f).to_truth_table(), f);
  }
}

TEST(Cover, BoundedTautologyReportsUndecided) {
  // A binate cover large enough to exceed a tiny budget.
  Rng rng(7);
  const Cover f = random_cover(6, 12, rng);
  bool decided = true;
  (void)f.is_tautology_bounded(1, &decided);
  EXPECT_FALSE(decided);
  bool decided2 = false;
  const bool r = f.is_tautology_bounded(1'000'000, &decided2);
  EXPECT_TRUE(decided2);
  EXPECT_EQ(r, f.is_tautology());
}

} // namespace
} // namespace rmsyn
