// QoR regression diffing tests: verdict classification per metric class
// (zero-tolerance QoR, banded timing, higher-better rates, non-gating
// telemetry), report-mode row matching, status severity, schema-mismatch
// structural errors, the generic BENCH walk, formatting and exit codes.
#include <gtest/gtest.h>

#include "obs/diff.hpp"
#include "obs/json.hpp"

namespace rmsyn {
namespace {

using obs::DiffOptions;
using obs::DiffResult;
using obs::Json;
using obs::Verdict;

/// Minimal well-formed run report with one row; callers tweak fields.
Json tiny_report() {
  return Json::parse(R"({
    "tool": "rmsyn",
    "schema_version": 3,
    "command": "table2",
    "jobs": 1,
    "wall_seconds": 1.0,
    "worst_status": "ok",
    "rows": [
      {
        "circuit": "rd53",
        "inputs": 5,
        "outputs": 3,
        "base_lits": 92,
        "ours_lits": 62,
        "base_seconds": 0.25,
        "ours_seconds": 0.5,
        "ours_power": 1.0,
        "improve_lits_pct": 32.6,
        "row_seconds": 0.6,
        "status": {"worst": "ok"}
      }
    ],
    "metrics": {}
  })");
}

DiffResult run_diff(const Json& base, const Json& ours) {
  return obs::diff_documents(base, ours, DiffOptions{});
}

const obs::DiffEntry* find_entry(const DiffResult& r, const std::string& p) {
  for (const auto& e : r.entries)
    if (e.path == p) return &e;
  return nullptr;
}

// --- verdict classes ---------------------------------------------------------

TEST(DiffVerdicts, IdenticalReportsAreSameAndExitZero) {
  const Json a = tiny_report();
  const DiffResult r = run_diff(a, a);
  EXPECT_EQ(r.worst, Verdict::Same);
  EXPECT_TRUE(r.entries.empty());
  EXPECT_TRUE(r.errors.empty());
  EXPECT_EQ(obs::diff_exit_code(r), 0);
}

TEST(DiffVerdicts, LiteralIncreaseIsZeroToleranceRegress) {
  const Json base = tiny_report();
  // Bump ours_lits by the smallest possible amount: still a regression.
  std::string text = base.dump();
  const std::size_t pos = text.find("\"ours_lits\":62");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 14, "\"ours_lits\":63");
  const DiffResult r = run_diff(base, Json::parse(text));
  EXPECT_EQ(r.worst, Verdict::Regress);
  const obs::DiffEntry* e = find_entry(r, "rows[rd53].ours_lits");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->verdict, Verdict::Regress);
  EXPECT_DOUBLE_EQ(e->base, 62.0);
  EXPECT_DOUBLE_EQ(e->ours, 63.0);
  EXPECT_EQ(obs::diff_exit_code(r), 2);
}

TEST(DiffVerdicts, LiteralDecreaseIsImprove) {
  const Json base = tiny_report();
  std::string text = base.dump();
  const std::size_t pos = text.find("\"ours_lits\":62");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 14, "\"ours_lits\":60");
  const DiffResult r = run_diff(base, Json::parse(text));
  EXPECT_EQ(r.worst, Verdict::Improve);
  EXPECT_EQ(obs::diff_exit_code(r), 0);
}

TEST(DiffVerdicts, TimingJitterInsideBandIsNoise) {
  const Json base = tiny_report();
  std::string text = base.dump();
  // ours_seconds 0.5 -> 0.55: +10%, inside the default 25% band.
  const std::size_t pos = text.find("\"ours_seconds\":0.5");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 18, "\"ours_seconds\":0.55");
  const DiffResult r = run_diff(base, Json::parse(text));
  EXPECT_EQ(r.worst, Verdict::Noise);
  EXPECT_EQ(obs::diff_exit_code(r), 0);
}

TEST(DiffVerdicts, TimingBeyondBandGates) {
  const Json base = tiny_report();
  std::string text = base.dump();
  // 0.5 -> 0.9: +80%, far outside the 25% band.
  const std::size_t pos = text.find("\"ours_seconds\":0.5");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 18, "\"ours_seconds\":0.9");
  const DiffResult r = run_diff(base, Json::parse(text));
  EXPECT_EQ(r.worst, Verdict::Regress);

  DiffOptions ignore;
  ignore.ignore_timing = true;
  const DiffResult r2 =
      obs::diff_documents(base, Json::parse(text), ignore);
  EXPECT_EQ(r2.worst, Verdict::Same) << "--ignore-timing must skip it";
}

TEST(DiffVerdicts, SubFloorTimingNeverGates) {
  // 1ms -> 40ms is a 40x slowdown but under the 50ms absolute floor.
  const Json base = Json::parse(R"({"stage_seconds": 0.001})");
  const Json ours = Json::parse(R"({"stage_seconds": 0.040})");
  const DiffResult r = run_diff(base, ours);
  EXPECT_EQ(r.worst, Verdict::Noise);
}

TEST(DiffVerdicts, RatesAreHigherBetter) {
  const Json base = Json::parse(R"({"cuts_per_second": 1000.0})");
  const Json faster = Json::parse(R"({"cuts_per_second": 2000.0})");
  const Json slower = Json::parse(R"({"cuts_per_second": 100.0})");
  EXPECT_EQ(run_diff(base, faster).worst, Verdict::Improve);
  EXPECT_EQ(run_diff(base, slower).worst, Verdict::Regress);
}

TEST(DiffVerdicts, UnknownCountersAreNonGatingNoise) {
  const Json base = Json::parse(R"({"events": 100})");
  const Json ours = Json::parse(R"({"events": 90000})");
  const DiffResult r = run_diff(base, ours);
  EXPECT_EQ(r.worst, Verdict::Noise);
  EXPECT_EQ(obs::diff_exit_code(r), 0);
}

TEST(DiffVerdicts, InvariantFlagFlipIsRegress) {
  const Json base = Json::parse(R"({"results_identical": true})");
  const Json ours = Json::parse(R"({"results_identical": false})");
  EXPECT_EQ(run_diff(base, ours).worst, Verdict::Regress);
  // false -> true is an improvement, not noise.
  EXPECT_EQ(run_diff(ours, base).worst, Verdict::Improve);
}

// --- report-mode structure ---------------------------------------------------

TEST(DiffReports, MissingCircuitIsSchemaMismatchAndExitFour) {
  const Json base = tiny_report();
  std::string text = base.dump();
  const std::size_t pos = text.find("\"circuit\":\"rd53\"");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 16, "\"circuit\":\"rd73\"");
  const DiffResult r = run_diff(base, Json::parse(text));
  EXPECT_EQ(r.worst, Verdict::SchemaMismatch);
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_NE(r.errors[0].find("rows[rd53]"), std::string::npos);
  EXPECT_EQ(obs::diff_exit_code(r), 4);
}

TEST(DiffReports, NonReportVsReportIsSchemaMismatch) {
  const Json report = tiny_report();
  const Json bench = Json::parse(R"({"bench": "obs", "plain_seconds": 1.0})");
  const DiffResult r = run_diff(report, bench);
  EXPECT_EQ(r.worst, Verdict::SchemaMismatch);
  EXPECT_EQ(obs::diff_exit_code(r), 4);
}

TEST(DiffReports, StatusSeverityIncreaseIsRegress) {
  const Json base = tiny_report();
  std::string text = base.dump();
  const std::size_t pos = text.find("{\"worst\":\"ok\"}");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 14, "{\"worst\":\"degraded\"}");
  const DiffResult r = run_diff(base, Json::parse(text));
  EXPECT_EQ(r.worst, Verdict::Regress);
  ASSERT_NE(find_entry(r, "rows[rd53].status.worst"), nullptr);
  // And the reverse direction is an improvement.
  const DiffResult r2 = run_diff(Json::parse(text), base);
  EXPECT_EQ(r2.worst, Verdict::Improve);
}

TEST(DiffReports, DerivedPercentagesAreSkipped) {
  const Json base = tiny_report();
  std::string text = base.dump();
  const std::size_t pos = text.find("\"improve_lits_pct\":32.6");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 23, "\"improve_lits_pct\":99.9");
  const DiffResult r = run_diff(base, Json::parse(text));
  // The percentage restates ours_lits; changing it alone reports nothing.
  EXPECT_EQ(r.worst, Verdict::Same);
}

TEST(DiffReports, AdditiveEvolutionToleratesMissingTelemetry) {
  // v3 baseline vs v2-era candidate: row_seconds missing from the
  // candidate is tolerated (telemetry), a missing QoR column is not.
  const Json base = tiny_report();
  std::string no_latency = base.dump();
  const std::size_t lp = no_latency.find("\"row_seconds\":0.6,");
  ASSERT_NE(lp, std::string::npos);
  no_latency.erase(lp, 18);
  EXPECT_EQ(run_diff(base, Json::parse(no_latency)).worst, Verdict::Same);

  std::string no_lits = base.dump();
  const std::size_t qp = no_lits.find("\"ours_lits\":62,");
  ASSERT_NE(qp, std::string::npos);
  no_lits.erase(qp, 15);
  const DiffResult r = run_diff(base, Json::parse(no_lits));
  EXPECT_EQ(r.worst, Verdict::SchemaMismatch);
}

// --- formatting --------------------------------------------------------------

TEST(DiffFormat, SummaryLineCountsVerdicts) {
  const Json base = tiny_report();
  std::string text = base.dump();
  const std::size_t pos = text.find("\"ours_lits\":62");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 14, "\"ours_lits\":63");
  const std::string out = obs::format_diff(run_diff(base, Json::parse(text)));
  EXPECT_NE(out.find("regress  rows[rd53].ours_lits: 62 -> 63"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("verdict: regress (1 regressed"), std::string::npos);
}

TEST(DiffFormat, VerdictSeverityOrderMatchesGatePolicy) {
  EXPECT_LT(Verdict::Same, Verdict::Improve);
  EXPECT_LT(Verdict::Improve, Verdict::Noise);
  EXPECT_LT(Verdict::Noise, Verdict::Regress);
  EXPECT_LT(Verdict::Regress, Verdict::SchemaMismatch);
}

} // namespace
} // namespace rmsyn
