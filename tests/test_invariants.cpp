// Deep invariant checker (Network::check_invariants, DESIGN.md §12): a
// clean network reports nothing, and corrupting each SoA column through the
// test-only backdoor makes the checker name the right invariant at the
// right node. Also covers assert_invariants' throw contract and the
// process-wide paranoid mode.
#include "network/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "benchgen/spec.hpp"
#include "network/transform.hpp"
#include "util/errors.hpp"

namespace rmsyn {

/// Test-only backdoor declared as a friend in network.hpp: hands out
/// mutable references to individual SoA columns so each corruption test
/// can break exactly one invariant.
struct NetworkTestAccess {
  static std::vector<uint32_t>& packed(Network& n) { return n.packed_; }
  static std::vector<uint32_t>& fanin_off(Network& n) { return n.fanin_off_; }
  static std::vector<uint32_t>& fanin_cnt(Network& n) { return n.fanin_cnt_; }
  static std::vector<uint32_t>& first_out(Network& n) { return n.first_out_; }
  static std::vector<uint32_t>& ref_count(Network& n) { return n.ref_count_; }
  static std::vector<uint32_t>& po_refs(Network& n) { return n.po_refs_; }
  static std::vector<uint32_t>& pi_pos(Network& n) { return n.pi_pos_; }
  static std::vector<NodeId>& arena(Network& n) { return n.arena_; }
  static std::vector<NodeId>& edge_owner(Network& n) { return n.edge_owner_; }
  static std::vector<uint32_t>& next_out(Network& n) { return n.next_out_; }
  static std::vector<uint32_t>& prev_out(Network& n) { return n.prev_out_; }
  static std::vector<NodeId>& pis(Network& n) { return n.pis_; }
  static std::vector<NodeId>& free_list(Network& n) { return n.free_; }
  static constexpr uint32_t level_shift() { return Network::kLevelShift; }
  static constexpr uint32_t dead_flag() { return Network::kDeadFlag; }
};

namespace {

using A = NetworkTestAccess;

/// Two PIs, three gates, one PO: small enough that every corrupted column
/// index is easy to reason about.
Network small_net() {
  Network net;
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId g1 = net.add_and(a, b);
  const NodeId g2 = net.add_xor(g1, b);
  const NodeId g3 = net.add_or(g1, g2);
  net.add_po(g3, "f");
  return net;
}

/// True when some violation names `invariant` (optionally at `node`).
bool names(const std::vector<InvariantViolation>& vs, const char* invariant,
           NodeId node = Network::kNoNode) {
  return std::any_of(vs.begin(), vs.end(), [&](const InvariantViolation& v) {
    return v.invariant == invariant &&
           (node == Network::kNoNode || v.node == node);
  });
}

TEST(Invariants, CleanNetworksReportNothing) {
  EXPECT_TRUE(small_net().check_invariants().empty());
  for (const char* name : {"rd53", "z4ml", "t481"}) {
    const Benchmark bench = make_benchmark(name);
    EXPECT_TRUE(bench.spec.check_invariants().empty()) << name;
  }
}

TEST(Invariants, CleanAfterMutationAndCompaction) {
  Network net = small_net();
  const NodeId g1 = 4; // AND(a, b) in small_net
  net.rewrite_gate(g1, GateType::Or, {2, 3});
  EXPECT_TRUE(net.check_invariants().empty());
  // Recycle an unreferenced node and check the free list stays coherent.
  const NodeId dead = net.add_and(2, 3); // never referenced
  net.recycle(dead);
  EXPECT_TRUE(net.check_invariants().empty());
  net.compact();
  EXPECT_TRUE(net.check_invariants().empty());
  EXPECT_NO_THROW(net.assert_invariants("test"));
}

TEST(Invariants, CorruptLevelIsNamed) {
  Network net = small_net();
  const NodeId g3 = 6;
  A::packed(net)[g3] += 1u << A::level_shift(); // level off by one
  const auto vs = net.check_invariants();
  ASSERT_FALSE(vs.empty());
  EXPECT_TRUE(names(vs, "level", g3));
}

TEST(Invariants, CorruptRefCountIsNamed) {
  Network net = small_net();
  const NodeId g1 = 4; // read by g2 and g3: ref_count 2
  ++A::ref_count(net)[g1];
  const auto vs = net.check_invariants();
  EXPECT_TRUE(names(vs, "ref-count", g1));
}

TEST(Invariants, CorruptPoRefIsNamed) {
  Network net = small_net();
  const NodeId g3 = 6;
  ++A::po_refs(net)[g3];
  const auto vs = net.check_invariants();
  EXPECT_TRUE(names(vs, "po-ref", g3));
}

TEST(Invariants, BrokenFanoutChainLinkIsNamed) {
  Network net = small_net();
  // g1 = AND(a, b) has two readers; its chain has two edges. Break the
  // prev link of the second one.
  const NodeId g1 = 4;
  uint32_t e = A::first_out(net)[g1];
  ASSERT_NE(e, Network::kNoNode);
  const uint32_t second = A::next_out(net)[e];
  ASSERT_NE(second, Network::kNoNode);
  A::prev_out(net)[second] = second; // self-referential prev: asymmetric
  const auto vs = net.check_invariants();
  EXPECT_TRUE(names(vs, "fanout-chain", g1));
}

TEST(Invariants, RetargetedArenaEdgeIsNamed) {
  Network net = small_net();
  // Point g3's first fanin at an out-of-range id without updating any of
  // the maintained structure.
  const NodeId g3 = 6;
  A::arena(net)[A::fanin_off(net)[g3]] = 1000;
  const auto vs = net.check_invariants();
  EXPECT_TRUE(names(vs, "arena-span", g3));
}

TEST(Invariants, FaninCycleIsNamed) {
  Network net = small_net();
  // Rewire g1's first fanin from PI a to g3, closing g1 -> g2/g3 -> g1.
  const NodeId g1 = 4, g3 = 6;
  A::arena(net)[A::fanin_off(net)[g1]] = g3;
  const auto vs = net.check_invariants(64);
  EXPECT_TRUE(names(vs, "acyclic"));
}

TEST(Invariants, LiveNodeOnFreeListIsNamed) {
  Network net = small_net();
  const NodeId g2 = 5;
  A::free_list(net).push_back(g2); // live node listed as free
  const auto vs = net.check_invariants();
  EXPECT_TRUE(names(vs, "free-list", g2));
}

TEST(Invariants, DeadNodeMissingFromFreeListIsNamed) {
  Network net = small_net();
  const NodeId dead = net.add_and(2, 3);
  net.recycle(dead);
  ASSERT_TRUE(net.check_invariants().empty());
  A::free_list(net).clear(); // lose the free list, keep the dead flag
  const auto vs = net.check_invariants();
  EXPECT_TRUE(names(vs, "free-list", dead));
}

TEST(Invariants, CorruptPiIndexIsNamed) {
  Network net = small_net();
  // Swap the two PI ordinals in the column only; pis_ keeps its order.
  std::swap(A::pi_pos(net)[2], A::pi_pos(net)[3]);
  const auto vs = net.check_invariants();
  EXPECT_TRUE(names(vs, "pi-index"));
}

TEST(Invariants, ViolationLimitStopsTheCascade) {
  Network net = small_net();
  for (NodeId n = 2; n <= 6; ++n) ++A::ref_count(net)[n];
  const auto vs = net.check_invariants(2);
  EXPECT_EQ(vs.size(), 2u);
}

TEST(Invariants, AssertThrowsRmsynErrorNamingTheSite) {
  Network net = small_net();
  ++A::ref_count(net)[4];
  try {
    net.assert_invariants("after-rewrite");
    FAIL() << "expected RmsynError";
  } catch (const RmsynError& e) {
    EXPECT_EQ(e.code(), ErrorCode::InvariantViolation);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("after-rewrite"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ref-count"), std::string::npos) << msg;
    EXPECT_NE(msg.find("node 4"), std::string::npos) << msg;
  }
}

TEST(Invariants, ViolationToStringNamesInvariantAndNode) {
  const InvariantViolation v{"level", 7, "maintained 3, recomputed 2"};
  const std::string s = v.to_string();
  EXPECT_NE(s.find("level"), std::string::npos);
  EXPECT_NE(s.find("node 7"), std::string::npos);
  EXPECT_NE(s.find("recomputed 2"), std::string::npos);
  // Global findings carry no node id.
  const InvariantViolation g{"arena-span", Network::kNoNode, "detail"};
  EXPECT_EQ(g.to_string().find("node"), std::string::npos);
}

TEST(Invariants, ParanoidModeArmsTransformChecks) {
  EXPECT_FALSE(paranoid_checks_enabled());
  set_paranoid_checks(true);
  EXPECT_TRUE(paranoid_checks_enabled());
  // maybe_check_invariants throws only when armed AND the net is broken.
  Network ok = small_net();
  EXPECT_NO_THROW(maybe_check_invariants(ok, "test"));
  Network bad = small_net();
  ++A::ref_count(bad)[4];
  EXPECT_THROW(maybe_check_invariants(bad, "test"), RmsynError);
  set_paranoid_checks(false);
  EXPECT_NO_THROW(maybe_check_invariants(bad, "test"));
  // A full transform pipeline under paranoid mode stays clean.
  set_paranoid_checks(true);
  Network net = make_benchmark("rd53").spec;
  EXPECT_NO_THROW({
    Network s = strash(net);
    Network d = decompose2(s);
    (void)d;
  });
  set_paranoid_checks(false);
}

} // namespace
} // namespace rmsyn
