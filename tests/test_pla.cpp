#include <gtest/gtest.h>

#include "sop/pla.hpp"

namespace rmsyn {
namespace {

TEST(Pla, ParseBasicDocument) {
  const std::string text = R"(
# a 2-in 2-out example
.i 2
.o 2
.ilb a b
.ob f g
.p 3
11 10
0- 01
-1 01
.e
)";
  const PlaFile pla = read_pla_string(text);
  EXPECT_EQ(pla.num_inputs, 2);
  EXPECT_EQ(pla.num_outputs, 2);
  ASSERT_EQ(pla.outputs.size(), 2u);
  EXPECT_EQ(pla.outputs[0].size(), 1u);
  EXPECT_EQ(pla.outputs[1].size(), 2u);
  EXPECT_EQ(pla.input_names, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(pla.output_names, (std::vector<std::string>{"f", "g"}));
  // f = ab
  EXPECT_TRUE(pla.outputs[0].eval(uint64_t{0b11}));
  EXPECT_FALSE(pla.outputs[0].eval(uint64_t{0b01}));
  // g = ā + b
  EXPECT_TRUE(pla.outputs[1].eval(uint64_t{0b00}));
  EXPECT_TRUE(pla.outputs[1].eval(uint64_t{0b10}));
  EXPECT_FALSE(pla.outputs[1].eval(uint64_t{0b01}));
}

TEST(Pla, RoundTripPreservesFunctions) {
  PlaFile pla;
  pla.num_inputs = 3;
  pla.num_outputs = 2;
  pla.outputs.assign(2, Cover(3));
  pla.outputs[0].add(Cube::parse("1-0"));
  pla.outputs[0].add(Cube::parse("01-"));
  pla.outputs[1].add(Cube::parse("1-0")); // shared cube with output 0
  const std::string text = write_pla_string(pla);
  const PlaFile back = read_pla_string(text);
  ASSERT_EQ(back.outputs.size(), 2u);
  for (int o = 0; o < 2; ++o) {
    EXPECT_EQ(back.outputs[static_cast<std::size_t>(o)].to_truth_table(),
              pla.outputs[static_cast<std::size_t>(o)].to_truth_table());
  }
  // The shared cube must have been merged into one row.
  EXPECT_NE(text.find(".p 2"), std::string::npos);
}

TEST(Pla, RejectsMalformedInput) {
  EXPECT_THROW(read_pla_string("11 1\n"), std::runtime_error);
  EXPECT_THROW(read_pla_string(".i 2\n.o 1\n111 1\n"), std::runtime_error);
  EXPECT_THROW(read_pla_string(".i 2\n.o 1\n.kiss\n"), std::runtime_error);
}

TEST(Pla, EmptyOnSetIsAccepted) {
  const PlaFile pla = read_pla_string(".i 2\n.o 1\n.e\n");
  ASSERT_EQ(pla.outputs.size(), 1u);
  EXPECT_TRUE(pla.outputs[0].is_const0());
}

} // namespace
} // namespace rmsyn
