#include <gtest/gtest.h>

#include "sop/pla.hpp"

namespace rmsyn {
namespace {

TEST(Pla, ParseBasicDocument) {
  const std::string text = R"(
# a 2-in 2-out example
.i 2
.o 2
.ilb a b
.ob f g
.p 3
11 10
0- 01
-1 01
.e
)";
  const PlaFile pla = read_pla_string(text);
  EXPECT_EQ(pla.num_inputs, 2);
  EXPECT_EQ(pla.num_outputs, 2);
  ASSERT_EQ(pla.outputs.size(), 2u);
  EXPECT_EQ(pla.outputs[0].size(), 1u);
  EXPECT_EQ(pla.outputs[1].size(), 2u);
  EXPECT_EQ(pla.input_names, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(pla.output_names, (std::vector<std::string>{"f", "g"}));
  // f = ab
  EXPECT_TRUE(pla.outputs[0].eval(uint64_t{0b11}));
  EXPECT_FALSE(pla.outputs[0].eval(uint64_t{0b01}));
  // g = ā + b
  EXPECT_TRUE(pla.outputs[1].eval(uint64_t{0b00}));
  EXPECT_TRUE(pla.outputs[1].eval(uint64_t{0b10}));
  EXPECT_FALSE(pla.outputs[1].eval(uint64_t{0b01}));
}

TEST(Pla, RoundTripPreservesFunctions) {
  PlaFile pla;
  pla.num_inputs = 3;
  pla.num_outputs = 2;
  pla.outputs.assign(2, Cover(3));
  pla.outputs[0].add(Cube::parse("1-0"));
  pla.outputs[0].add(Cube::parse("01-"));
  pla.outputs[1].add(Cube::parse("1-0")); // shared cube with output 0
  const std::string text = write_pla_string(pla);
  const PlaFile back = read_pla_string(text);
  ASSERT_EQ(back.outputs.size(), 2u);
  for (int o = 0; o < 2; ++o) {
    EXPECT_EQ(back.outputs[static_cast<std::size_t>(o)].to_truth_table(),
              pla.outputs[static_cast<std::size_t>(o)].to_truth_table());
  }
  // The shared cube must have been merged into one row.
  EXPECT_NE(text.find(".p 2"), std::string::npos);
}

TEST(Pla, RejectsMalformedInput) {
  EXPECT_THROW(read_pla_string("11 1\n"), std::runtime_error);
  EXPECT_THROW(read_pla_string(".i 2\n.o 1\n111 1\n"), std::runtime_error);
  EXPECT_THROW(read_pla_string(".i 2\n.o 1\n.kiss\n"), std::runtime_error);
}

// Every malformed-header shape must fail with a clear, line-numbered
// diagnostic — never std::stoi's bare invalid_argument/out_of_range, and
// never a silent misparse.
TEST(Pla, RejectsMalformedHeaders) {
  const auto expect_error_with = [](const std::string& text,
                                    const std::string& needle) {
    try {
      read_pla_string(text);
      FAIL() << "accepted: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "message '" << e.what() << "' lacks '" << needle << "'";
      EXPECT_NE(std::string(e.what()).find("line "), std::string::npos)
          << "message '" << e.what() << "' lacks a line number";
    }
  };
  expect_error_with(".i\n.o 1\n", "missing value");
  expect_error_with(".i abc\n.o 1\n", "not an integer");
  expect_error_with(".i 2x\n.o 1\n", "not an integer"); // stoi would take 2
  expect_error_with(".i 99999999999999999999\n.o 1\n", "not an integer");
  expect_error_with(".i -3\n.o 1\n", "must be positive");
  expect_error_with(".i 0\n.o 1\n", "must be positive");
  expect_error_with(".i 2000000\n.o 1\n", "implausible");
  expect_error_with(".i 2 3\n.o 1\n", "expected one value");
  expect_error_with(".i 2\n.o 1\n11 1\n.i 3\n", ".i after the first cube");
}

TEST(Pla, RejectsBadPlaneCharacters) {
  EXPECT_THROW(read_pla_string(".i 2\n.o 1\n1z 1\n"), std::runtime_error);
  EXPECT_THROW(read_pla_string(".i 2\n.o 1\n11 x\n"), std::runtime_error);
  // Error messages carry the offending line number.
  try {
    read_pla_string(".i 2\n.o 1\n11 1\n1z 1\n");
    FAIL() << "bad cube accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
  // The espresso don't-care and output alphabets stay accepted.
  const PlaFile ok = read_pla_string(".i 3\n.o 2\n1-2 1~\n021 -4\n.e\n");
  EXPECT_EQ(ok.outputs[0].size() + ok.outputs[1].size(), 2u);
}

TEST(Pla, EmptyOnSetIsAccepted) {
  const PlaFile pla = read_pla_string(".i 2\n.o 1\n.e\n");
  ASSERT_EQ(pla.outputs.size(), 1u);
  EXPECT_TRUE(pla.outputs[0].is_const0());
}

} // namespace
} // namespace rmsyn
