// Utility substrate tests: deterministic RNG, stopwatch, and the cost
// metric corner cases the experiment harness depends on.
#include <gtest/gtest.h>

#include <thread>

#include "mapping/mapper.hpp"
#include "network/stats.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace rmsyn {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  Rng a2(42), c2(43);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= a2.next() != c2.next();
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, ChanceIsRoughlyCalibrated) {
  Rng rng(99);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i)
    if (rng.chance(1, 4)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double t = sw.seconds();
  EXPECT_GE(t, 0.015);
  EXPECT_LT(t, 5.0);
  sw.restart();
  EXPECT_LT(sw.seconds(), 0.015);
}

TEST(Stats, DepthOfXorChainCountsTwoLevelsPerXor) {
  Network net;
  NodeId acc = net.add_pi();
  for (int i = 0; i < 4; ++i) acc = net.add_xor(acc, net.add_pi());
  net.add_po(acc);
  const auto s = network_stats(net);
  EXPECT_EQ(s.depth, 8u); // 4 XOR2 x 2 levels
  EXPECT_EQ(s.gates2, 12u);
}

TEST(Stats, EmptyNetworkHasZeroCost) {
  Network net;
  net.add_pi();
  net.add_po(Network::kConst0);
  const auto s = network_stats(net);
  EXPECT_EQ(s.gates2, 0u);
  EXPECT_EQ(s.depth, 0u);
  EXPECT_EQ(s.lits, 0u);
}

TEST(MapperDepth, SingleCellHasDepthOne) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  net.add_po(net.add_xor(a, b));
  const MapResult r = map_network(net, mcnc_library());
  EXPECT_EQ(r.depth, 1u);
}

TEST(MapperDepth, ChainsAccumulate) {
  Network net;
  NodeId acc = net.add_pi();
  for (int i = 0; i < 3; ++i) acc = net.add_xor(acc, net.add_pi());
  net.add_po(acc);
  const MapResult r = map_network(net, mcnc_library());
  EXPECT_EQ(r.gate_count, 3u); // three xor2 cells
  EXPECT_EQ(r.depth, 3u);
}

TEST(Genlib, WideCellsCarryMultipleShapes) {
  // nand4 must match both the balanced and the caterpillar subject trees,
  // which requires at least two pattern variants.
  const CellLibrary& lib = mcnc_library();
  for (const auto& cell : lib.cells) {
    if (cell.name == "nand4" || cell.name == "nor4") {
      EXPECT_GE(cell.patterns.size(), 2u) << cell.name;
    }
    if (cell.name == "nand2") {
      EXPECT_EQ(cell.patterns.size(), 1u);
    }
  }
}

} // namespace
} // namespace rmsyn
