// Testability tests: the paper's Sections 1/6 claims — synthesized networks
// are irredundant, and the FPRM-derived pattern set (AZ, AO, OC, SA1) is a
// complete single-stuck-at test set, obtained without ATPG.
#include "testability/faults.hpp"

#include <gtest/gtest.h>

#include "benchgen/spec.hpp"
#include "core/redundancy.hpp"
#include "core/synth.hpp"
#include "network/transform.hpp"

namespace rmsyn {
namespace {

TEST(Faults, EnumerationCounts) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  net.add_po(net.add_and(a, b));
  const auto faults = enumerate_faults(net);
  // 2 PI stems + 1 gate stem + 2 gate pins, each s-a-0/1.
  EXPECT_EQ(faults.size(), 10u);
}

TEST(Faults, ExhaustivePatternsDetectAllFaultsOfIrredundantGate) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  net.add_po(net.add_xor(a, b));
  PatternSet all(2, 0);
  for (uint64_t m = 0; m < 4; ++m) {
    BitVec v(2);
    if (m & 1) v.set(0);
    if (m & 2) v.set(1);
    all.append(v);
  }
  const auto r = fault_simulate(net, all);
  EXPECT_EQ(r.detected, r.total);
  EXPECT_TRUE(r.undetected.empty());
}

TEST(Faults, RedundantWireIsUndetectable) {
  // f = (a+b)(a+b+c): the c pin fault s-a-0/1 cannot be tested.
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId c = net.add_pi();
  const NodeId t1 = net.add_or(a, b);
  const NodeId t2 = net.add_gate(GateType::Or, {a, b, c});
  net.add_po(net.add_and(t1, t2));
  EXPECT_FALSE(is_irredundant(net));
}

TEST(Faults, IrredundancyOfSimpleCircuits) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  net.add_po(net.add_xor(a, b));
  EXPECT_TRUE(is_irredundant(net));
}

class TestabilityCircuit : public ::testing::TestWithParam<const char*> {};

TEST_P(TestabilityCircuit, SynthesizedNetworkIrredundantWithCompleteFprmTestSet) {
  const Benchmark bench = make_benchmark(GetParam());
  SynthReport rep;
  const Network ours = synthesize(bench.spec, {}, &rep);

  // Irredundancy (the redundancy-removal pass plus exact confirmation
  // should leave no untestable stuck-at fault on these small circuits).
  EXPECT_TRUE(is_irredundant(ours)) << GetParam();

  // The FPRM pattern set detects every fault — the paper's "test set
  // without test generation".
  const PatternSet tests =
      fprm_pattern_set(ours.pi_count(), rep.forms, /*include_sa1=*/true,
                       std::size_t{1} << 16);
  const auto r = fault_simulate(ours, tests);
  EXPECT_EQ(r.detected, r.total)
      << GetParam() << ": " << r.undetected.size() << " faults missed, e.g. "
      << (r.undetected.empty() ? std::string("-")
                               : to_string(r.undetected[0], ours));
}

INSTANTIATE_TEST_SUITE_P(Circuits, TestabilityCircuit,
                         ::testing::Values("z4ml", "rd53", "majority", "f2",
                                           "cm82a", "t481"));

TEST(Faults, CoverageImprovesWithPatterns) {
  const Benchmark bench = make_benchmark("rd53");
  const Network net = decompose2(strash(bench.spec));
  const auto one = fault_simulate(net, random_patterns(net.pi_count(), 1, 9));
  const auto many = fault_simulate(net, random_patterns(net.pi_count(), 256, 9));
  EXPECT_GE(many.detected, one.detected);
  EXPECT_EQ(one.total, many.total);
}

} // namespace
} // namespace rmsyn
