#include "power/power.hpp"

#include <gtest/gtest.h>

#include "benchgen/spec.hpp"
#include "core/synth.hpp"

namespace rmsyn {
namespace {

TEST(Power, ExactProbabilitiesOnKnownGates) {
  // Single AND gate: p = 1/4, activity = 2·(1/4)·(3/4) = 3/8; load = PO
  // fanout 1 + 1 = 2.
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  net.add_po(net.add_and(a, b));
  const PowerReport r = estimate_power(net);
  EXPECT_TRUE(r.exact);
  // Nets: two PIs (activity 1/2 each) + the AND output.
  EXPECT_EQ(r.nets, 3u);
  const double and_act = 2.0 * 0.25 * 0.75;
  EXPECT_NEAR(r.switching_sum, 0.5 + 0.5 + and_act, 1e-12);
}

TEST(Power, SimulationFallbackApproximatesExact) {
  const Benchmark bench = make_benchmark("rd53");
  PowerOptions exact_opt;
  PowerOptions sim_opt;
  sim_opt.exact = false;
  sim_opt.sim_patterns = 1 << 15;
  const PowerReport pe = estimate_power(bench.spec, exact_opt);
  const PowerReport ps = estimate_power(bench.spec, sim_opt);
  EXPECT_TRUE(pe.exact);
  EXPECT_FALSE(ps.exact);
  EXPECT_NEAR(ps.total / pe.total, 1.0, 0.05);
}

TEST(Power, ConstantsContributeNothing) {
  Network net;
  net.add_pi();
  net.add_po(Network::kConst1);
  const PowerReport r = estimate_power(net);
  // Only the PI net remains, activity 1/2, load 1 (no readers).
  EXPECT_NEAR(r.switching_sum, 0.5, 1e-12);
}

TEST(Power, RedundancyRemovalDoesNotIncreasePower) {
  // The Section-4 pass shrinks the network (and converts maximal-activity
  // XOR nets to AND/OR nets), so the power estimate must not grow.
  const Benchmark bench = make_benchmark("adr4");
  SynthOptions with, without;
  without.run_redundancy_removal = false;
  const Network net_with = synthesize(bench.spec, with, nullptr);
  const Network net_without = synthesize(bench.spec, without, nullptr);
  EXPECT_LE(estimate_power(net_with).total,
            estimate_power(net_without).total * 1.02);
}

TEST(Power, FanoutWeightsLoad) {
  // One driver feeding two readers carries load 3 (two fanins + PO... the
  // driver has fanout 2 and no PO, so load 1+2; each reader 1+1).
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId t = net.add_and(a, b);
  net.add_po(net.add_or(t, a));
  net.add_po(net.add_and(t, b));
  const PowerReport r = estimate_power(net);
  EXPECT_TRUE(r.exact);
  EXPECT_GT(r.total, r.switching_sum); // loads > 1 somewhere
}

TEST(Power, DeterministicSimulationFallback) {
  const Network net = make_benchmark("cm85a").spec;
  PowerOptions o;
  o.exact = false;
  const PowerReport a = estimate_power(net, o);
  const PowerReport b = estimate_power(net, o);
  EXPECT_DOUBLE_EQ(a.total, b.total);
}

TEST(Power, XorChainActivityIsMaximal) {
  // Every net of a parity chain has p = 1/2 → activity exactly 1/2.
  const Benchmark bench = make_benchmark("xor10");
  const PowerReport r = estimate_power(bench.spec);
  EXPECT_TRUE(r.exact);
  EXPECT_NEAR(r.switching_sum, 0.5 * static_cast<double>(r.nets), 1e-9);
}

} // namespace
} // namespace rmsyn
