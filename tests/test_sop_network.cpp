// SopNetwork (the SIS network model) tests: conversion round-trips,
// collapse/flatten semantics and factoring.
#include "baseline/sop_network.hpp"

#include <gtest/gtest.h>

#include "baseline/factor.hpp"
#include "benchgen/spec.hpp"
#include "equiv/equiv.hpp"
#include "network/transform.hpp"
#include "util/rng.hpp"

namespace rmsyn {
namespace {

Network small_multilevel() {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId c = net.add_pi();
  const NodeId t = net.add_and(a, b);
  net.add_po(net.add_or(t, c), "f");
  net.add_po(net.add_xor(t, c), "g");
  return net;
}

TEST(SopNetwork, FromNetworkRoundTrip) {
  const Network net = small_multilevel();
  const SopNetwork sn = SopNetwork::from_network(decompose2(strash(net)));
  const Network back = sn.to_network();
  EXPECT_TRUE(check_equivalence(net, back).equivalent);
  EXPECT_GT(sn.literal_count(), 0);
}

TEST(SopNetwork, CollapseNodePreservesFunction) {
  const Network net = small_multilevel();
  SopNetwork sn = SopNetwork::from_network(decompose2(strash(net)));
  // Collapse the first internal non-PO node we can find.
  for (const int n : sn.topo_nodes()) {
    bool is_po = false;
    for (const int po : sn.po_vars()) is_po |= po == n;
    if (!is_po) {
      EXPECT_TRUE(sn.collapse_node(n));
      break;
    }
  }
  EXPECT_TRUE(check_equivalence(net, sn.to_network()).equivalent);
}

TEST(SopNetwork, FlattenReachesTwoLevel) {
  const Network net = small_multilevel();
  SopNetwork sn = SopNetwork::from_network(decompose2(strash(net)));
  EXPECT_TRUE(sn.flatten(1000));
  for (const int po : sn.po_vars())
    for (const int f : sn.fanins(po)) EXPECT_TRUE(sn.is_pi(f));
  EXPECT_TRUE(check_equivalence(net, sn.to_network()).equivalent);
}

TEST(SopNetwork, FlattenBailsOnCubeCap) {
  // A 12-input parity chain explodes exponentially when flattened.
  const Network net = decompose2(strash(make_benchmark("parity").spec));
  SopNetwork sn = SopNetwork::from_network(net);
  EXPECT_FALSE(sn.flatten(64));
}

TEST(SopNetwork, FanoutCountsIncludePos) {
  const Network net = small_multilevel();
  const SopNetwork sn = SopNetwork::from_network(decompose2(strash(net)));
  const auto fo = sn.fanout_counts();
  for (const int po : sn.po_vars()) EXPECT_GE(fo[static_cast<std::size_t>(po)], 1);
}

TEST(SopNetwork, ConstantOutputs) {
  Network net;
  const NodeId a = net.add_pi();
  net.add_po(Network::kConst1, "one");
  net.add_po(net.add_and(a, net.add_not(a)), "zero");
  const SopNetwork sn = SopNetwork::from_network(strash(net));
  const Network back = sn.to_network();
  EXPECT_TRUE(check_equivalence(strash(net), back).equivalent);
}

TEST(SopNetwork, CollapseGrowthPredictsXorBlowup) {
  // An XOR node feeding an XOR reader: collapsing doubles the cubes, so
  // the growth value must be positive (keep the node) — this is what
  // preserves parity chains in the baseline.
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId c = net.add_pi();
  net.add_po(net.add_xor(net.add_xor(a, b), c));
  SopNetwork sn = SopNetwork::from_network(decompose2(strash(net)));
  int inner = -1;
  for (const int n : sn.topo_nodes()) {
    bool is_po = false;
    for (const int po : sn.po_vars()) is_po |= po == n;
    if (!is_po) inner = n;
  }
  ASSERT_GE(inner, 0);
  EXPECT_GT(sn.collapse_growth(inner), 0);

  // A buffer-like single-literal node must have non-positive growth.
  Cover wire(sn.num_vars());
  Cube cb(sn.num_vars());
  cb.add_pos(0);
  wire.add(cb);
  const int w = sn.add_node(wire);
  Cover reader(sn.num_vars());
  Cube rc(sn.num_vars());
  rc.add_pos(w);
  reader.add(rc);
  sn.add_po(sn.add_node(reader), "p");
  EXPECT_LE(sn.collapse_growth(w), 0);
}

TEST(Factor, BuildFactoredMatchesCover) {
  Rng rng(777);
  for (int iter = 0; iter < 30; ++iter) {
    const int n = 5;
    Cover f(n);
    const int ncubes = 1 + static_cast<int>(rng.below(7));
    for (int c = 0; c < ncubes; ++c) {
      Cube cube(n);
      for (int v = 0; v < n; ++v) {
        const auto r = rng.below(3);
        if (r == 0) cube.add_pos(v);
        else if (r == 1) cube.add_neg(v);
      }
      f.add(std::move(cube));
    }
    Network net;
    std::vector<NodeId> vars;
    for (int v = 0; v < n; ++v) vars.push_back(net.add_pi());
    net.add_po(build_factored(net, f, vars));
    EXPECT_TRUE(check_against_tts(net, {f.to_truth_table()}).equivalent);
  }
}

TEST(Factor, FactoredLiteralsNoWorseThanFlat) {
  // (ab + ac) factors to a(b+c): 3 factored literals vs 4 flat.
  Cover f(3);
  f.add(Cube::parse("11-"));
  f.add(Cube::parse("1-1"));
  EXPECT_EQ(factored_literals(f), 3);
  EXPECT_LE(factored_literals(f), f.literal_count());
}

TEST(Factor, ConstantsAndEmptyCovers) {
  Network net;
  std::vector<NodeId> vars{net.add_pi()};
  EXPECT_EQ(build_factored(net, Cover(1), vars), Network::kConst0);
  EXPECT_EQ(build_factored(net, Cover::constant(1, true), vars),
            Network::kConst1);
  EXPECT_EQ(factored_literals(Cover(1)), 0);
  EXPECT_EQ(factored_literals(Cover::constant(1, true)), 0);
}

} // namespace
} // namespace rmsyn
