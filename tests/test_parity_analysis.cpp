// Tests for the Section-4 parity-of-cubes controllability procedure:
// soundness (every reported pattern has a genuine witness), agreement with
// the exact BDD decision, and the paper's Properties 8/9 as corollaries.
#include "core/parity_analysis.hpp"

#include <gtest/gtest.h>

#include "equiv/equiv.hpp"
#include "network/simulate.hpp"
#include "util/rng.hpp"

namespace rmsyn {
namespace {

FprmForm form_of(const TruthTable& f, const BitVec& polarity) {
  BddManager mgr(f.nvars());
  const BddRef fb = mgr.from_cover(Cover::from_truth_table(f));
  return extract_fprm(mgr, build_ofdd(mgr, fb, polarity), f.nvars());
}

TruthTable random_tt(int n, Rng& rng) {
  TruthTable f(n);
  for (uint64_t m = 0; m < f.size(); ++m)
    if (rng.flip()) f.set(m);
  return f;
}

TEST(AnnotatedTree, ComputesTheFunction) {
  Rng rng(31);
  for (int iter = 0; iter < 20; ++iter) {
    const int n = 4 + static_cast<int>(rng.below(2));
    const TruthTable f = random_tt(n, rng);
    BitVec pol(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v)
      if (rng.flip()) pol.set(static_cast<std::size_t>(v));
    const AnnotatedXorTree tree = build_annotated_tree(form_of(f, pol));
    EXPECT_TRUE(check_against_tts(tree.net, {f}).equivalent);
    // Cube-set bookkeeping: the root XOR covers all non-constant cubes.
    if (!tree.xor_gates.empty()) {
      const NodeId root = tree.xor_gates.back();
      std::size_t nonconst = 0;
      for (const auto& c : tree.form.cubes)
        if (c.any()) ++nonconst;
      const auto& fi = tree.net.fanins(root);
      EXPECT_EQ(tree.cube_sets[fi[0]].size() + tree.cube_sets[fi[1]].size(),
                nonconst);
    }
  }
}

TEST(ParityAnalysis, WitnessesAreGenuine) {
  Rng rng(77);
  for (int iter = 0; iter < 25; ++iter) {
    const int n = 5;
    const TruthTable f = random_tt(n, rng);
    BitVec pol(static_cast<std::size_t>(n));
    pol.set_all();
    const AnnotatedXorTree tree = build_annotated_tree(form_of(f, pol));
    const auto verdicts = analyze_tree(tree);
    for (std::size_t k = 0; k < verdicts.size(); ++k) {
      const NodeId gate = tree.xor_gates[k];
      const auto& fi = tree.net.fanins(gate);
      for (unsigned idx = 0; idx < 4; ++idx) {
        if ((verdicts[k].achieved & (1u << idx)) == 0) continue;
        PatternSet ps(tree.net.pi_count(), 0);
        ps.append(verdicts[k].witness[idx]);
        const auto values = simulate(tree.net, ps);
        const unsigned got = (values[fi[0]].get(0) ? 2u : 0u) +
                             (values[fi[1]].get(0) ? 1u : 0u);
        EXPECT_EQ(got, idx) << "bogus witness at gate " << gate;
      }
    }
  }
}

TEST(ParityAnalysis, NeverClaimsMoreThanExactControllability) {
  Rng rng(99);
  for (int iter = 0; iter < 20; ++iter) {
    const int n = 5;
    const TruthTable f = random_tt(n, rng);
    BitVec pol(static_cast<std::size_t>(n));
    pol.set_all();
    const AnnotatedXorTree tree = build_annotated_tree(form_of(f, pol));
    const auto verdicts = analyze_tree(tree);
    BddManager mgr(n);
    const auto fn = node_bdds(mgr, tree.net);
    for (std::size_t k = 0; k < verdicts.size(); ++k) {
      const auto& fi = tree.net.fanins(tree.xor_gates[k]);
      uint8_t exact = 0;
      for (unsigned idx = 0; idx < 4; ++idx) {
        const BddRef eg = (idx & 2u) ? fn[fi[0]] : mgr.bdd_not(fn[fi[0]]);
        const BddRef eh = (idx & 1u) ? fn[fi[1]] : mgr.bdd_not(fn[fi[1]]);
        if (mgr.bdd_and(eg, eh) != mgr.bdd_false()) exact |= (1u << idx);
      }
      EXPECT_EQ(verdicts[k].achieved & ~exact, 0)
          << "parity method claimed an uncontrollable pattern";
    }
  }
}

TEST(ParityAnalysis, DecidesParityTreeCompletely) {
  // n-input parity: every XOR gate has all four patterns controllable and
  // the subset enumeration proves it (Property 2 + the paper's claim that
  // parity trees are irreducible).
  FprmForm form;
  form.nvars = 8;
  form.support = {0, 1, 2, 3, 4, 5, 6, 7};
  form.polarity = BitVec(8);
  form.polarity.set_all();
  for (int i = 0; i < 8; ++i) {
    BitVec c(8);
    c.set(static_cast<std::size_t>(i));
    form.cubes.push_back(c);
  }
  const AnnotatedXorTree tree = build_annotated_tree(form);
  for (const auto& v : analyze_tree(tree)) EXPECT_EQ(v.achieved, 0b1111);
}

TEST(ParityAnalysis, FindsUncontrollablePatternOfContainedCube) {
  // f = a ⊕ ab: at the XOR gate the pattern (g=0, h=1) — a=0 with ab=1 —
  // is impossible; everything else must be demonstrated.
  FprmForm form;
  form.nvars = 2;
  form.support = {0, 1};
  form.polarity = BitVec(2);
  form.polarity.set_all();
  BitVec ca(2), cab(2);
  ca.set(0);
  cab.set(0);
  cab.set(1);
  form.cubes = {ca, cab};
  const AnnotatedXorTree tree = build_annotated_tree(form);
  ASSERT_EQ(tree.xor_gates.size(), 1u);
  const auto v = analyze_tree(tree)[0];
  // Leaf order: g = a (cube 0), h = ab (cube 1).
  EXPECT_EQ(v.achieved & 0b0010, 0) << "(g=0,h=1) must stay unreachable";
  EXPECT_EQ(v.achieved, 0b1101);
}

TEST(ParityAnalysis, Property9FollowsFromSingletons) {
  // At least two of the three nonzero patterns come from the singleton
  // (OC) activations alone — cap the subsets at 1 and check.
  Rng rng(123);
  for (int iter = 0; iter < 15; ++iter) {
    const TruthTable f = random_tt(5, rng);
    BitVec pol(5);
    pol.set_all();
    const FprmForm form = form_of(f, pol);
    if (form.cube_count() < 2) continue;
    const AnnotatedXorTree tree = build_annotated_tree(form);
    ParityAnalysisOptions oc_only;
    oc_only.max_subset = 1;
    for (const auto& v : analyze_tree(tree, oc_only)) {
      int nonzero = 0;
      for (unsigned idx = 1; idx < 4; ++idx)
        if (v.achieved & (1u << idx)) ++nonzero;
      EXPECT_GE(nonzero, 2);
    }
  }
}

} // namespace
} // namespace rmsyn
