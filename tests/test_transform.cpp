// Structural transform tests: every rewrite must preserve the function and
// establish its advertised structural postcondition.
#include "network/transform.hpp"

#include <gtest/gtest.h>

#include "equiv/equiv.hpp"
#include "network/stats.hpp"
#include "util/rng.hpp"

namespace rmsyn {
namespace {

Network random_network(int npis, int ngates, uint64_t seed) {
  Rng rng(seed);
  Network net;
  std::vector<NodeId> pool;
  for (int i = 0; i < npis; ++i) pool.push_back(net.add_pi());
  for (int g = 0; g < ngates; ++g) {
    const NodeId a = pool[rng.below(pool.size())];
    const NodeId b = pool[rng.below(pool.size())];
    NodeId n;
    switch (rng.below(6)) {
      case 0: n = net.add_and(a, b); break;
      case 1: n = net.add_or(a, b); break;
      case 2: n = net.add_xor(a, b); break;
      case 3: n = net.add_not(a); break;
      case 4: n = net.add_gate(GateType::Nand, {a, b}); break;
      default: n = net.add_gate(GateType::Xnor, {a, b}); break;
    }
    pool.push_back(n);
  }
  for (int o = 0; o < 3; ++o)
    net.add_po(pool[pool.size() - 1 - static_cast<std::size_t>(o)]);
  return net;
}

class TransformRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TransformRandom, StrashPreservesFunctionAndNormalizes) {
  const Network net = random_network(5, 25, GetParam());
  const Network s = strash(net);
  EXPECT_TRUE(check_equivalence(net, s).equivalent);
  for (NodeId n = 0; n < s.node_count(); ++n) {
    const GateType t = s.type(n);
    EXPECT_TRUE(t != GateType::Nand && t != GateType::Nor && t != GateType::Xnor)
        << "strash must normalize to And/Or/Xor/Not";
  }
}

TEST_P(TransformRandom, Decompose2PreservesAndBounds) {
  const Network net = random_network(6, 20, GetParam() + 1);
  const Network d = decompose2(net);
  EXPECT_TRUE(check_equivalence(net, d).equivalent);
  const auto live = d.live_mask();
  for (NodeId n = 0; n < d.node_count(); ++n)
    if (live[n]) {
      EXPECT_LE(d.fanins(n).size(), 2u);
    }
}

TEST_P(TransformRandom, ExpandXorPreservesAndRemovesXors) {
  const Network net = decompose2(random_network(5, 20, GetParam() + 2));
  const Network e = expand_xor(net);
  EXPECT_TRUE(check_equivalence(net, e).equivalent);
  const auto live = e.live_mask();
  for (NodeId n = 0; n < e.node_count(); ++n)
    if (live[n]) {
      EXPECT_FALSE(is_xor_like(e.type(n)));
    }
  // The paper's cost metric is consistent with explicit expansion.
  EXPECT_EQ(network_stats(net).gates2, network_stats(e).gates2);
}

TEST_P(TransformRandom, PermutePisRoundTrip) {
  const Network net = random_network(6, 18, GetParam() + 3);
  Rng rng(GetParam());
  std::vector<std::size_t> perm(net.pi_count());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  for (std::size_t i = perm.size(); i > 1; --i)
    std::swap(perm[i - 1], perm[rng.below(i)]);
  const Network p = permute_pis(net, perm);
  std::vector<std::size_t> inverse(perm.size());
  for (std::size_t k = 0; k < perm.size(); ++k) inverse[perm[k]] = k;
  const Network back = permute_pis(p, inverse);
  EXPECT_TRUE(check_equivalence(net, back).equivalent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Transform, StrashFoldsConstantsAndComplements) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId na = net.add_not(a);
  net.add_po(net.add_and(a, na));                    // == 0
  net.add_po(net.add_or(a, na));                     // == 1
  net.add_po(net.add_xor(a, a));                     // == 0
  net.add_po(net.add_and(a, Network::kConst1));      // == a
  net.add_po(net.add_not(net.add_not(a)));           // == a
  const Network s = strash(net);
  EXPECT_EQ(s.po(0), Network::kConst0);
  EXPECT_EQ(s.po(1), Network::kConst1);
  EXPECT_EQ(s.po(2), Network::kConst0);
  EXPECT_EQ(s.type(s.po(3)), GateType::Pi);
  EXPECT_EQ(s.type(s.po(4)), GateType::Pi);
}

TEST(Transform, StrashSharesIdenticalGates) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId g1 = net.add_and(a, b);
  const NodeId g2 = net.add_and(b, a); // same gate, swapped fanins
  net.add_po(g1);
  net.add_po(g2);
  const Network s = strash(net);
  EXPECT_EQ(s.po(0), s.po(1));
}

TEST(Transform, StrashPullsInvertersOutOfXor) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  // x̄ ⊕ y == NOT(x ⊕ y): both sides must hash to complements of one node.
  net.add_po(net.add_xor(net.add_not(a), b));
  net.add_po(net.add_gate(GateType::Xnor, {a, b}));
  const Network s = strash(net);
  EXPECT_EQ(s.po(0), s.po(1));
}

TEST(Transform, SweepDropsDeadNodes) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  (void)net.add_xor(a, b); // dead
  net.add_po(net.add_and(a, b));
  const Network s = sweep(net);
  EXPECT_EQ(network_stats(s).num_xor2, 0u);
}

} // namespace
} // namespace rmsyn
