// Technology mapping tests: genlib parsing, subject-graph correctness and
// tree-covering behaviour (the XOR-cell match in particular — the paper's
// mapped results depend on XOR structures surviving into cells).
#include "mapping/mapper.hpp"

#include <gtest/gtest.h>

#include "benchgen/spec.hpp"
#include "core/synth.hpp"
#include "equiv/equiv.hpp"

namespace rmsyn {
namespace {

TEST(Genlib, ParsesBuiltInLibrary) {
  const CellLibrary& lib = mcnc_library();
  EXPECT_EQ(lib.cells.size(), 17u);
  const auto find = [&](const std::string& name) -> const Cell* {
    for (const auto& c : lib.cells)
      if (c.name == name) return &c;
    return nullptr;
  };
  ASSERT_NE(find("inv1"), nullptr);
  EXPECT_EQ(find("inv1")->num_inputs, 1);
  EXPECT_DOUBLE_EQ(find("inv1")->area, 1.0);
  ASSERT_NE(find("xor2"), nullptr);
  EXPECT_EQ(find("xor2")->num_inputs, 2);
  ASSERT_NE(find("aoi22"), nullptr);
  EXPECT_EQ(find("aoi22")->num_inputs, 4);
  // The paper's cost premise: XOR cell >> simple gate.
  EXPECT_GT(find("xor2")->area, find("nand2")->area * 2);
}

TEST(Genlib, ParserHandlesOperatorsAndErrors) {
  const CellLibrary lib =
      parse_genlib("GATE g 2.5 O=!(a*(b+!c));\nGATE h 1 O=a'*b;");
  ASSERT_EQ(lib.cells.size(), 2u);
  EXPECT_EQ(lib.cells[0].num_inputs, 3);
  EXPECT_EQ(lib.cells[1].num_inputs, 2);
  EXPECT_THROW(parse_genlib("NOTGATE x"), std::runtime_error);
  EXPECT_THROW(parse_genlib("GATE g 1 O=a"), std::runtime_error);  // no ';'
  EXPECT_THROW(parse_genlib("GATE g 1 O=(a;"), std::runtime_error); // bad expr
}

TEST(Genlib, DoubleInverterCollapse) {
  // a*b compiles to INV(NAND(a,b)) — three pattern nodes, not five.
  const CellLibrary lib = parse_genlib("GATE and2 2 O=a*b;");
  ASSERT_EQ(lib.cells[0].patterns.size(), 1u);
  const PatNode* p = lib.cells[0].patterns[0].get();
  ASSERT_EQ(p->kind, PatNode::Kind::Inv);
  ASSERT_EQ(p->a->kind, PatNode::Kind::Nand);
  EXPECT_EQ(p->a->a->kind, PatNode::Kind::Input);
  EXPECT_EQ(p->a->b->kind, PatNode::Kind::Input);
}

TEST(SubjectGraph, EquivalentAndNandInvOnly) {
  const Benchmark bench = make_benchmark("rd53");
  const Network sg = subject_graph(bench.spec);
  EXPECT_TRUE(check_equivalence(bench.spec, sg).equivalent);
  const auto live = sg.live_mask();
  for (NodeId n = 0; n < sg.node_count(); ++n) {
    if (!live[n]) continue;
    const GateType t = sg.type(n);
    EXPECT_TRUE(t == GateType::Pi || t == GateType::Const0 ||
                t == GateType::Const1 || t == GateType::Not ||
                t == GateType::Nand)
        << gate_type_name(t);
  }
}

TEST(Mapper, SingleXorMapsToOneXorCell) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  net.add_po(net.add_xor(a, b));
  const MapResult r = map_network(net, mcnc_library());
  ASSERT_EQ(r.gate_count, 1u);
  EXPECT_EQ(r.gates[0].cell, "xor2");
  EXPECT_EQ(r.literal_count, 2u);
}

TEST(Mapper, XnorMapsToOneCell) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  net.add_po(net.add_gate(GateType::Xnor, {a, b}));
  const MapResult r = map_network(net, mcnc_library());
  EXPECT_EQ(r.gate_count, 1u);
  EXPECT_EQ(r.gates[0].cell, "xnor2");
}

TEST(Mapper, AoiPatternBeatsDiscreteGates) {
  // f = !(ab + c) should map to a single aoi21 (area 3), not three gates.
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId c = net.add_pi();
  net.add_po(net.add_gate(GateType::Nor, {net.add_and(a, b), c}));
  const MapResult r = map_network(net, mcnc_library());
  EXPECT_EQ(r.gate_count, 1u);
  EXPECT_EQ(r.gates[0].cell, "aoi21");
}

TEST(Mapper, WideAndUsesNand4) {
  Network net;
  std::vector<NodeId> pis;
  for (int i = 0; i < 4; ++i) pis.push_back(net.add_pi());
  net.add_po(net.add_gate(GateType::Nand, pis));
  const MapResult r = map_network(net, mcnc_library());
  EXPECT_EQ(r.gate_count, 1u);
  EXPECT_EQ(r.gates[0].cell, "nand4");
}

TEST(Mapper, MultiFanoutSplitsTrees) {
  // t = ab feeds two consumers: t must be mapped once (3 cells total).
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId c = net.add_pi();
  const NodeId t = net.add_and(a, b);
  net.add_po(net.add_or(t, c));
  net.add_po(net.add_and(t, c));
  const MapResult r = map_network(net, mcnc_library());
  // The mapper optimizes area: shared t (nand2, area 2) + the OR cone
  // (nand2+inv, 3) + the AND cone (area 4 either as and2+inv or
  // inv+nand2+inv). Anything above 9 would mean t was duplicated.
  EXPECT_LE(r.area, 9.0);
  EXPECT_GE(r.gate_count, 3u);
  EXPECT_LE(r.gate_count, 6u);
}

TEST(Mapper, CustomLibraryWithoutComplexCellsStillCovers) {
  const CellLibrary tiny = parse_genlib(
      "GATE inv 1 O=!a;\nGATE nand2 2 O=!(a*b);\n");
  const Benchmark bench = make_benchmark("rd53");
  const MapResult r = map_network(bench.spec, tiny);
  EXPECT_GT(r.gate_count, 0u);
  for (const auto& g : r.gates)
    EXPECT_TRUE(g.cell == "inv" || g.cell == "nand2");
}

TEST(Mapper, RicherLibraryNeverCostsMoreArea) {
  const CellLibrary tiny = parse_genlib(
      "GATE inv 1 O=!a;\nGATE nand2 2 O=!(a*b);\n");
  for (const char* name : {"z4ml", "majority", "cm85a"}) {
    const Network spec = make_benchmark(name).spec;
    const MapResult full = map_network(spec, mcnc_library());
    const MapResult small = map_network(spec, tiny);
    EXPECT_LE(full.area, small.area) << name;
  }
}

TEST(Mapper, ConstantOutputsProduceNoCells) {
  Network net;
  net.add_pi();
  net.add_po(Network::kConst1);
  net.add_po(Network::kConst0);
  const MapResult r = map_network(net, mcnc_library());
  EXPECT_EQ(r.gate_count, 0u);
}

TEST(Mapper, FullFlowMappedCircuitsHaveReasonableSize) {
  for (const char* name : {"z4ml", "rd53", "t481"}) {
    const Benchmark bench = make_benchmark(name);
    const Network ours = synthesize(bench.spec, {}, nullptr);
    const MapResult r = map_network(ours, mcnc_library());
    EXPECT_GT(r.gate_count, 0u) << name;
    EXPECT_GT(r.area, 0.0) << name;
    EXPECT_GE(r.literal_count, r.gate_count) << name;
  }
}

TEST(Mapper, XorHeavyNetworkUsesXorCells) {
  // A synthesized adder must keep XOR cells after mapping — the whole point
  // of the paper's standard-cell argument.
  const Benchmark bench = make_benchmark("z4ml");
  const Network ours = synthesize(bench.spec, {}, nullptr);
  const MapResult r = map_network(ours, mcnc_library());
  std::size_t xor_cells = 0;
  for (const auto& g : r.gates)
    if (g.cell == "xor2" || g.cell == "xnor2") ++xor_cells;
  EXPECT_GE(xor_cells, 3u);
}

} // namespace
} // namespace rmsyn
