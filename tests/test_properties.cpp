// Property tests for the theoretical claims of Sections 2 and 4:
//  * exhaustive flow correctness over ALL 3-variable functions;
//  * Properties 1, 8 and 9 (the pattern-set guarantees) on factored
//    all-positive-polarity tree networks, exactly under the paper's
//    assumptions (1)-(3);
//  * idempotence/monotonicity of the structural passes.
#include <gtest/gtest.h>

#include "benchgen/spec.hpp"
#include "core/factor_cubes.hpp"
#include "core/redundancy.hpp"
#include "core/resub.hpp"
#include "core/synth.hpp"
#include "equiv/equiv.hpp"
#include "network/stats.hpp"
#include "network/transform.hpp"
#include "util/rng.hpp"

namespace rmsyn {
namespace {

TEST(Exhaustive, AllThreeVariableFunctions) {
  // Every one of the 256 3-input functions must synthesize correctly.
  for (uint32_t code = 0; code < 256; ++code) {
    TruthTable f(3);
    for (uint64_t m = 0; m < 8; ++m)
      if ((code >> m) & 1) f.set(m);
    const Network spec = network_from_tts({f});
    const Network out = synthesize(spec, {}, nullptr);
    const auto check = check_against_tts(out, {f});
    ASSERT_TRUE(check.equivalent) << "function code " << code << ": "
                                  << check.reason;
  }
}

TEST(Exhaustive, SampledFourVariableFunctions) {
  Rng rng(0xF00D);
  for (int iter = 0; iter < 64; ++iter) {
    TruthTable f(4);
    for (uint64_t m = 0; m < 16; ++m)
      if (rng.flip()) f.set(m);
    const Network spec = network_from_tts({f});
    const Network out = synthesize(spec, {}, nullptr);
    ASSERT_TRUE(check_against_tts(out, {f}).equivalent);
  }
}

/// Builds the paper's N_x: a positive-polarity FPRM factored by the cube
/// method (assumptions (1)-(3): positive polarities, no constant-1 cube,
/// algebraic factorization only). Returns the network and the form.
struct TreeCase {
  Network net;
  FprmForm form;
};

TreeCase make_tree_case(const TruthTable& f) {
  TreeCase tc;
  BddManager mgr(f.nvars());
  const BddRef fb = mgr.from_cover(Cover::from_truth_table(f));
  BitVec pol(static_cast<std::size_t>(f.nvars()));
  pol.set_all();
  const Ofdd o = build_ofdd(mgr, fb, pol);
  tc.form = extract_fprm(mgr, o, f.nvars());
  std::vector<NodeId> pis;
  for (int v = 0; v < f.nvars(); ++v) pis.push_back(tc.net.add_pi());
  tc.net.add_po(factor_cubes(tc.net, pis, tc.form));
  tc.net = decompose2(tc.net);
  return tc;
}

TEST(PaperProperties, Property1AllZeroPatternZerosEveryXor) {
  // With positive polarities and no constant-1 cube, the AZ pattern sets
  // the inputs and output of every XOR gate to 0.
  Rng rng(808);
  for (int iter = 0; iter < 40; ++iter) {
    TruthTable f(5);
    for (uint64_t m = 1; m < 32; ++m)
      if (rng.flip()) f.set(m);
    f.set(0, false); // no constant-1 cube in the PPRM (f(0) = coefficient of 1)
    const TreeCase tc = make_tree_case(f);
    PatternSet az(tc.net.pi_count(), 0);
    az.append(BitVec(tc.net.pi_count()));
    const auto values = simulate(tc.net, az);
    for (NodeId n = 0; n < tc.net.node_count(); ++n) {
      if (tc.net.type(n) != GateType::Xor) continue;
      EXPECT_FALSE(values[n].get(0));
      for (const NodeId fi : tc.net.fanins(n)) EXPECT_FALSE(values[fi].get(0));
    }
  }
}

TEST(PaperProperties, Property8OcSetDerivesOneAtEveryXor) {
  // At least one OC pattern drives every XOR gate's output to 1.
  Rng rng(909);
  for (int iter = 0; iter < 40; ++iter) {
    TruthTable f(5);
    for (uint64_t m = 1; m < 32; ++m)
      if (rng.flip()) f.set(m);
    f.set(0, false);
    const TreeCase tc = make_tree_case(f);
    if (tc.form.cube_count() < 2) continue;
    const PatternSet oc = fprm_pattern_set(tc.net.pi_count(), {tc.form},
                                           /*include_sa1=*/false, 4096);
    const auto values = simulate(tc.net, oc);
    for (NodeId n = 0; n < tc.net.node_count(); ++n) {
      if (tc.net.type(n) != GateType::Xor) continue;
      EXPECT_TRUE(values[n].any())
          << "XOR gate " << n << " never 1 under the OC set";
    }
  }
}

TEST(PaperProperties, Property9AtLeastTwoInputPatternsFromOc) {
  // The OC/AZ/AO set derives at least two of the three nonzero input
  // patterns at every 2-input XOR gate.
  Rng rng(1010);
  for (int iter = 0; iter < 40; ++iter) {
    TruthTable f(5);
    for (uint64_t m = 1; m < 32; ++m)
      if (rng.flip()) f.set(m);
    f.set(0, false);
    const TreeCase tc = make_tree_case(f);
    if (tc.form.cube_count() < 2) continue;
    const PatternSet oc = fprm_pattern_set(tc.net.pi_count(), {tc.form},
                                           /*include_sa1=*/false, 4096);
    const auto values = simulate(tc.net, oc);
    for (NodeId n = 0; n < tc.net.node_count(); ++n) {
      if (tc.net.type(n) != GateType::Xor || tc.net.fanins(n).size() != 2)
        continue;
      const BitVec& g = values[tc.net.fanins(n)[0]];
      const BitVec& h = values[tc.net.fanins(n)[1]];
      bool saw[4] = {false, false, false, false};
      for (std::size_t p = 0; p < oc.num_patterns; ++p)
        saw[(g.get(p) ? 2 : 0) + (h.get(p) ? 1 : 0)] = true;
      const int nonzero = (saw[1] ? 1 : 0) + (saw[2] ? 1 : 0) + (saw[3] ? 1 : 0);
      EXPECT_GE(nonzero, 2) << "XOR gate " << n;
    }
  }
}

TEST(Passes, RedundancyRemovalIsIdempotent) {
  Rng rng(3030);
  for (int iter = 0; iter < 10; ++iter) {
    TruthTable f(5);
    for (uint64_t m = 0; m < 32; ++m)
      if (rng.flip()) f.set(m);
    const Network spec = network_from_tts({f});
    const Network once = synthesize(spec, {}, nullptr);
    const Network twice = remove_xor_redundancy(once, {}, {}, nullptr);
    EXPECT_EQ(network_stats(strash(twice)).gates2,
              network_stats(strash(once)).gates2);
  }
}

TEST(Passes, ResubMergeNeverGrowsAndPreserves) {
  Rng rng(4040);
  for (int iter = 0; iter < 10; ++iter) {
    Network net;
    std::vector<NodeId> pool;
    for (int i = 0; i < 5; ++i) pool.push_back(net.add_pi());
    for (int g = 0; g < 25; ++g) {
      const NodeId a = pool[rng.below(pool.size())];
      const NodeId b = pool[rng.below(pool.size())];
      switch (rng.below(3)) {
        case 0: pool.push_back(net.add_and(a, b)); break;
        case 1: pool.push_back(net.add_or(a, b)); break;
        default: pool.push_back(net.add_xor(a, b)); break;
      }
    }
    net.add_po(pool.back());
    net.add_po(pool[pool.size() - 3]);
    const Network merged = resub_merge(net);
    EXPECT_TRUE(check_equivalence(net, merged).equivalent);
    EXPECT_LE(network_stats(merged).gates2, network_stats(strash(net)).gates2);
  }
}

TEST(Passes, ResubMergesFunctionalDuplicatesAcrossStructures) {
  // a⊕b built two structurally different ways must merge to one node.
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId x1 = net.add_xor(a, b);
  const NodeId x2 = net.add_or(net.add_and(a, net.add_not(b)),
                               net.add_and(net.add_not(a), b));
  net.add_po(net.add_and(x1, net.add_pi()));
  net.add_po(net.add_and(x2, net.add_pi()));
  const Network merged = resub_merge(net);
  // After merging, only one XOR-like structure should remain.
  const auto s = network_stats(merged);
  EXPECT_LE(s.gates2, 5u); // one xor (3) + two ANDs
}

} // namespace
} // namespace rmsyn
