// Observability subsystem tests: span tracer (lock-free thread buffers,
// Chrome export), stage breakdowns, the metrics registry and its absorbers,
// the unified summary formatter, the JSON model, the report builder plus
// subset-schema validation, golden-file schema stability, FlowStatus
// ordering, the heartbeat, and the serialized output sink.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <thread>
#include <vector>

#include "flow/flow.hpp"
#include "obs/heartbeat.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "obs/sink.hpp"
#include "obs/stage.hpp"
#include "obs/trace.hpp"
#include "sched/pool.hpp"
#include "util/governor.hpp"
#include "util/progress.hpp"

#ifndef RMSYN_SOURCE_DIR
#define RMSYN_SOURCE_DIR "."
#endif

namespace rmsyn {
namespace {

// --- tracer -----------------------------------------------------------------

class TracerTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::Tracer::instance().reset();
    obs::Tracer::instance().enable();
  }
  void TearDown() override {
    obs::Tracer::instance().disable();
    obs::Tracer::instance().reset();
  }
};

TEST_F(TracerTest, RecordsNestedSpansWithDepth) {
  {
    RMSYN_SPAN("outer");
    RMSYN_SPAN("inner");
  }
  const auto snap = obs::Tracer::instance().snapshot();
  std::size_t events = 0;
  bool saw_outer = false, saw_inner = false;
  for (const auto& t : snap.threads) {
    events += t.events.size();
    for (const auto& e : t.events) {
      if (std::string(e.name) == "outer") {
        saw_outer = true;
        EXPECT_EQ(e.depth, 0);
      }
      if (std::string(e.name) == "inner") {
        saw_inner = true;
        EXPECT_EQ(e.depth, 1);
      }
    }
  }
  EXPECT_EQ(events, 2u);
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
}

TEST_F(TracerTest, DisabledSpansRecordNothing) {
  obs::Tracer::instance().disable();
  { RMSYN_SPAN("ghost"); }
  EXPECT_EQ(obs::Tracer::instance().summary().events, 0u);
}

TEST_F(TracerTest, MergesSpansFromManyThreads) {
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([] {
      for (int k = 0; k < 10; ++k) RMSYN_SPAN("worker-span");
    });
  for (auto& t : threads) t.join();
  const auto sum = obs::Tracer::instance().summary();
  EXPECT_EQ(sum.events, 40u);
  EXPECT_GE(sum.threads, kThreads);
  EXPECT_EQ(sum.dropped, 0u);
}

TEST_F(TracerTest, OverflowDropsAndCounts) {
  for (std::size_t i = 0; i < obs::Tracer::kThreadCapacity + 100; ++i)
    RMSYN_SPAN("tiny");
  const auto snap = obs::Tracer::instance().snapshot();
  uint64_t dropped = 0;
  std::size_t events = 0;
  for (const auto& t : snap.threads) {
    dropped += t.dropped;
    events += t.events.size();
  }
  EXPECT_EQ(dropped, 100u);
  EXPECT_EQ(events, obs::Tracer::kThreadCapacity);
}

TEST_F(TracerTest, ChromeExportIsValidJsonWithThreadNames) {
  {
    RMSYN_SPAN("exported \"span\"\n");
  }
  const std::string json = obs::Tracer::instance().chrome_trace_json();
  const obs::Json doc = obs::Json::parse(json); // must parse
  ASSERT_TRUE(doc.get("traceEvents").is_array());
  bool meta = false, span = false;
  for (const obs::Json& ev : doc.get("traceEvents").items()) {
    if (ev.get("ph").as_string() == "M") meta = true;
    if (ev.get("ph").as_string() == "X") {
      span = true;
      EXPECT_TRUE(ev.contains("ts"));
      EXPECT_TRUE(ev.contains("dur"));
    }
  }
  EXPECT_TRUE(meta);
  EXPECT_TRUE(span);
}

TEST_F(TracerTest, ResetDiscardsEverything) {
  { RMSYN_SPAN("before-reset"); }
  EXPECT_GT(obs::Tracer::instance().summary().events, 0u);
  obs::Tracer::instance().reset();
  EXPECT_EQ(obs::Tracer::instance().summary().events, 0u);
}

// --- stage breakdown --------------------------------------------------------

TEST(StageBreakdown, MergesByNameAndSorts) {
  StageBreakdown sb;
  sb.add("verify", 0.5);
  sb.add("factor", 2.0);
  sb.add("verify", 0.25, 2);
  EXPECT_EQ(sb.entries.size(), 2u);
  EXPECT_DOUBLE_EQ(sb.seconds_for("verify"), 0.75);
  EXPECT_EQ(sb.find("verify")->calls, 3u);
  EXPECT_DOUBLE_EQ(sb.total_seconds(), 2.75);
  // to_string sorts descending by seconds: factor first.
  const std::string s = sb.to_string();
  EXPECT_LT(s.find("factor"), s.find("verify"));

  StageBreakdown other;
  other.add("factor", 1.0);
  other.add("mapping", 0.1);
  sb.accumulate(other);
  EXPECT_DOUBLE_EQ(sb.seconds_for("factor"), 3.0);
  EXPECT_EQ(sb.entries.size(), 3u);
}

TEST(ScopedStage, TimesIntoBreakdownAndTracksGovernorStage) {
  StageBreakdown sb;
  ResourceGovernor gov{ResourceLimits{}};
  {
    obs::ScopedStage stage(&gov, &sb, "unit-stage");
    EXPECT_EQ(gov.current_stage(), "unit-stage");
  }
  EXPECT_EQ(gov.current_stage(), "");
  ASSERT_NE(sb.find("unit-stage"), nullptr);
  EXPECT_EQ(sb.find("unit-stage")->calls, 1u);
  EXPECT_GE(sb.find("unit-stage")->seconds, 0.0);
}

TEST(ScopedStage, WorksWithoutGovernorOrBreakdown) {
  obs::ScopedStage a(nullptr, nullptr, "nothing");
  StageBreakdown sb;
  obs::ScopedStage b(nullptr, &sb, "only-sb");
}

// --- profiler ---------------------------------------------------------------

class ProfilerTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::Tracer::instance().disable();
    obs::Profiler::instance().reset();
    obs::Profiler::instance().enable();
  }
  void TearDown() override {
    obs::Profiler::instance().disable();
    obs::Profiler::instance().reset();
  }
};

const obs::Profiler::Node* find_child(const obs::Profiler::Node& n,
                                      const std::string& name) {
  for (const auto& c : n.children)
    if (c.name == name) return &c;
  return nullptr;
}

TEST_F(ProfilerTest, BuildsAttributionTreeWithExclusiveTime) {
  {
    RMSYN_SPAN("outer");
    {
      RMSYN_SPAN("inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }
    { RMSYN_SPAN("inner"); } // same name, same parent -> same node
    { RMSYN_SPAN("other"); }
  }
  const obs::Profiler::Node root = obs::Profiler::instance().merged();
  EXPECT_EQ(root.name, "root");
  const obs::Profiler::Node* outer = find_child(root, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->calls, 1u);
  ASSERT_EQ(outer->children.size(), 2u);
  const obs::Profiler::Node* inner = find_child(*outer, "inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->calls, 2u);
  EXPECT_GE(inner->incl_ns, uint64_t{3'000'000}); // the sleep is inclusive
  EXPECT_EQ(inner->excl_ns, inner->incl_ns);      // leaf: excl == incl
  ASSERT_NE(find_child(*outer, "other"), nullptr);
  // Parent exclusive time = inclusive minus the children's inclusive sum.
  uint64_t child_incl = 0;
  for (const auto& c : outer->children) child_incl += c.incl_ns;
  EXPECT_GE(outer->incl_ns, child_incl);
  EXPECT_EQ(outer->excl_ns, outer->incl_ns - child_incl);
}

TEST_F(ProfilerTest, FoldedOutputEmitsSemicolonPaths) {
  {
    RMSYN_SPAN("alpha");
    {
      RMSYN_SPAN("beta");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  const std::string folded = obs::Profiler::instance().folded();
  // beta's sleep is exclusive time on the "alpha;beta" stack.
  EXPECT_NE(folded.find("alpha;beta "), std::string::npos) << folded;
  // Every line is "<path> <integer_us>".
  std::size_t pos = 0;
  while (pos < folded.size()) {
    const std::size_t eol = folded.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    const std::string line = folded.substr(pos, eol - pos);
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::string us = line.substr(sp + 1);
    EXPECT_FALSE(us.empty()) << line;
    EXPECT_EQ(us.find_first_not_of("0123456789"), std::string::npos) << line;
    pos = eol + 1;
  }
}

TEST_F(ProfilerTest, JsonExportParsesAndMirrorsTheTree) {
  {
    RMSYN_SPAN("stage-x");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const obs::Json doc = obs::Json::parse(obs::Profiler::instance().json());
  EXPECT_EQ(doc.get("name").as_string(), "root");
  ASSERT_TRUE(doc.contains("children"));
  EXPECT_EQ(doc.get("children").at(0).get("name").as_string(), "stage-x");
  EXPECT_GT(doc.get("children").at(0).get("incl_ms").as_number(), 0.0);
}

TEST_F(ProfilerTest, ResetDropsFramesAndDisabledSpansRecordNothing) {
  { RMSYN_SPAN("gone"); }
  EXPECT_FALSE(obs::Profiler::instance().merged().children.empty());
  obs::Profiler::instance().reset();
  EXPECT_TRUE(obs::Profiler::instance().merged().children.empty());

  obs::Profiler::instance().disable();
  { RMSYN_SPAN("ghost"); }
  EXPECT_TRUE(obs::Profiler::instance().merged().children.empty());
  obs::Profiler::instance().enable();
}

TEST_F(ProfilerTest, WorkerThreadTreesMergeByName) {
  auto work = [] {
    RMSYN_SPAN("shared-stage");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  std::thread t1(work), t2(work);
  t1.join();
  t2.join();
  const obs::Profiler::Node root = obs::Profiler::instance().merged();
  const obs::Profiler::Node* stage = find_child(root, "shared-stage");
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(stage->calls, 2u); // both threads fold into one node
  EXPECT_GE(stage->incl_ns, uint64_t{2'000'000});
}

// --- metrics registry -------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesHistograms) {
  obs::MetricsRegistry m;
  m.add("c");
  m.add("c", 4);
  m.set("g", 2.0);
  m.set("g", 1.0); // set = last wins
  m.set_max("p", 5.0);
  m.set_max("p", 3.0); // set_max keeps the max
  m.observe("h", 1.0);
  m.observe("h", 3.0);
  EXPECT_EQ(m.counter("c"), 5u);
  EXPECT_DOUBLE_EQ(m.gauge("g"), 1.0);
  EXPECT_DOUBLE_EQ(m.gauge("p"), 5.0);
  EXPECT_DOUBLE_EQ(m.hist_sum("h"), 4.0);
  EXPECT_TRUE(m.contains("c"));
  EXPECT_FALSE(m.contains("missing"));
  EXPECT_EQ(m.counter("missing"), 0u);

  obs::MetricsRegistry o;
  o.add("c", 10);
  o.set_max("p", 9.0);
  o.observe("h", 0.5);
  m.merge(o);
  EXPECT_EQ(m.counter("c"), 15u);
  EXPECT_DOUBLE_EQ(m.gauge("p"), 9.0);
  EXPECT_DOUBLE_EQ(m.hist_sum("h"), 4.5);

  const auto snap = m.snapshot();
  for (std::size_t i = 1; i < snap.size(); ++i)
    EXPECT_LT(snap[i - 1].name, snap[i].name); // name-sorted
  m.clear();
  EXPECT_FALSE(m.contains("c"));
}

// --- histogram percentiles --------------------------------------------------

TEST(HistogramPercentile, KnownDistributionWithinBucketResolution) {
  obs::MetricValue h;
  h.kind = obs::MetricKind::Histogram;
  for (int i = 1; i <= 100; ++i) h.observe_value(0.001 * i); // 1ms..100ms
  // Extremes clamp to the observed range exactly.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.001);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.1);
  // Interior quantiles land within one log bucket (ratio 10^(1/8) ~ 1.33)
  // of the true nearest-rank value.
  EXPECT_NEAR(h.percentile(0.5), 0.050, 0.050 * 0.34);
  EXPECT_NEAR(h.percentile(0.99), 0.099, 0.099 * 0.34);
  // Monotone in q.
  EXPECT_LE(h.percentile(0.5), h.percentile(0.9));
  EXPECT_LE(h.percentile(0.9), h.percentile(0.99));
  EXPECT_LE(h.percentile(0.99), h.percentile(1.0));
}

TEST(HistogramPercentile, SingleValueIsExactAtEveryQuantile) {
  obs::MetricValue h;
  h.kind = obs::MetricKind::Histogram;
  h.observe_value(0.007);
  h.observe_value(0.007);
  h.observe_value(0.007);
  // min == max clamps every quantile to the one observed value.
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(h.percentile(q), 0.007) << "q=" << q;
}

TEST(HistogramPercentile, EmptyAndMissingHistogramsReturnZero) {
  obs::MetricValue h;
  h.kind = obs::MetricKind::Histogram;
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 0.0);

  obs::MetricsRegistry m;
  EXPECT_DOUBLE_EQ(m.percentile("missing", 0.5), 0.0);
  m.add("a.counter"); // wrong kind, not a histogram
  EXPECT_DOUBLE_EQ(m.percentile("a.counter", 0.5), 0.0);
}

TEST(HistogramPercentile, LegacyBucketlessFallsBackToLinear) {
  // A histogram deserialized from a pre-v3 report carries count/sum/min/max
  // but no buckets; percentile degrades to linear interpolation over the
  // observed range instead of returning garbage.
  obs::MetricValue h;
  h.kind = obs::MetricKind::Histogram;
  h.count = 10;
  h.sum = 5.0;
  h.min = 1.0;
  h.max = 3.0;
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 3.0);
}

TEST(HistogramPercentile, UnderflowAndOverflowBucketsClampToObservedRange) {
  obs::MetricValue h;
  h.kind = obs::MetricKind::Histogram;
  h.observe_value(1e-9); // below kMinBound: underflow bucket
  h.observe_value(1e9);  // past the top decade: overflow bucket
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1e-9);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1e9);
  EXPECT_GE(h.percentile(0.5), 1e-9);
  EXPECT_LE(h.percentile(0.5), 1e9);
}

TEST(HistogramPercentile, ShardMergeIsAssociativeAndOrderIndependent) {
  // Three per-worker shards with disjoint value ranges; because every
  // shard shares the global bucket layout, merge must be exact: any
  // grouping/order yields identical buckets and identical percentiles.
  auto make_shard = [](double lo, int n) {
    obs::MetricValue h;
    h.kind = obs::MetricKind::Histogram;
    for (int i = 0; i < n; ++i) h.observe_value(lo * (1.0 + 0.1 * i));
    return h;
  };
  const obs::MetricValue a = make_shard(1e-4, 7);
  const obs::MetricValue b = make_shard(1e-2, 5);
  const obs::MetricValue c = make_shard(1.0, 9);

  obs::MetricValue ab_c = a; // (a+b)+c
  ab_c.merge_histogram(b);
  ab_c.merge_histogram(c);
  obs::MetricValue bc = b; // a+(b+c)
  bc.merge_histogram(c);
  obs::MetricValue a_bc = a;
  a_bc.merge_histogram(bc);
  obs::MetricValue cba = c; // reversed order
  cba.merge_histogram(b);
  cba.merge_histogram(a);

  for (const obs::MetricValue* m : {&a_bc, &cba}) {
    EXPECT_EQ(ab_c.count, m->count);
    EXPECT_DOUBLE_EQ(ab_c.sum, m->sum);
    EXPECT_DOUBLE_EQ(ab_c.min, m->min);
    EXPECT_DOUBLE_EQ(ab_c.max, m->max);
    ASSERT_EQ(ab_c.buckets.size(), m->buckets.size());
    for (std::size_t i = 0; i < ab_c.buckets.size(); ++i)
      EXPECT_EQ(ab_c.buckets[i], m->buckets[i]) << "bucket " << i;
    for (const double q : {0.1, 0.5, 0.9, 0.99})
      EXPECT_DOUBLE_EQ(ab_c.percentile(q), m->percentile(q)) << "q=" << q;
  }
  EXPECT_EQ(ab_c.count, 21u);

  // Merging an empty shard is the identity.
  obs::MetricValue empty;
  empty.kind = obs::MetricKind::Histogram;
  obs::MetricValue with_empty = ab_c;
  with_empty.merge_histogram(empty);
  EXPECT_EQ(with_empty.count, ab_c.count);
  EXPECT_DOUBLE_EQ(with_empty.percentile(0.5), ab_c.percentile(0.5));
}

TEST(HistogramPercentile, RegistryObserveFeedsBucketsAndSummaryLine) {
  obs::MetricsRegistry m;
  for (int i = 0; i < 100; ++i) m.observe("lat", 0.010);
  m.observe("lat", 1.0); // one outlier: p50 stays ~10ms, p99+ sees it
  EXPECT_NEAR(m.percentile("lat", 0.5), 0.010, 0.004);
  EXPECT_GT(m.percentile("lat", 0.995), 0.5);
  const std::string out = obs::format_metrics_summary(m);
  EXPECT_NE(out.find("p50="), std::string::npos);
  EXPECT_NE(out.find("p99="), std::string::npos);
}

TEST(MetricsRegistry, AbsorbersPopulateWellKnownGroups) {
  obs::MetricsRegistry m;
  BddStats bdd;
  bdd.cache_lookups = 100;
  bdd.cache_hits = 60;
  bdd.unique_lookups = 50;
  bdd.unique_hits = 25;
  bdd.peak_live_nodes = 42;
  bdd.gc_runs = 3;
  m.absorb_bdd(bdd);
  EXPECT_EQ(m.counter("dd.cache_lookups"), 100u);
  EXPECT_DOUBLE_EQ(m.gauge("dd.peak_live_nodes"), 42.0);

  SchedStats sched;
  sched.workers = 2;
  sched.per_worker.resize(3); // 2 workers + external slot
  sched.per_worker[0].tasks_run = 7;
  sched.per_worker[0].busy_seconds = 0.5;
  sched.per_worker[1].tasks_run = 5;
  sched.per_worker[1].steals = 2;
  sched.per_worker[1].tasks_stolen = 2;
  sched.per_worker[1].steal_attempts = 4;
  sched.per_worker[2].tasks_run = 1;
  sched.per_worker[2].peak_queue_depth = 9;
  m.absorb_sched(sched);
  EXPECT_EQ(m.counter("sched.tasks"), 13u);
  EXPECT_EQ(m.counter("sched.w1.steals"), 2u);
  EXPECT_EQ(m.counter("sched.ext.tasks"), 1u);
  EXPECT_DOUBLE_EQ(m.gauge("sched.peak_queue_depth"), 9.0);

  m.absorb_status(FlowStatus::ok());
  m.absorb_status(FlowStatus::degraded("factor"));
  m.absorb_status(FlowStatus::failed("verify", "boom"));
  EXPECT_EQ(m.counter("flow.rows"), 3u);
  EXPECT_EQ(m.counter("flow.ok"), 1u);
  EXPECT_EQ(m.counter("flow.degraded"), 1u);
  EXPECT_EQ(m.counter("flow.failed"), 1u);

  StageBreakdown sb;
  sb.add("factor", 1.5, 3);
  m.absorb_stages(sb);
  EXPECT_DOUBLE_EQ(m.hist_sum("stage.factor"), 1.5);

  const std::string out = obs::format_metrics_summary(m);
  EXPECT_NE(out.find("DD kernel: 100 cache lookups (hit rate 60.0%)"),
            std::string::npos);
  EXPECT_NE(out.find("Scheduler: 2 workers, 13 tasks"), std::string::npos);
  EXPECT_NE(out.find("ext0"), std::string::npos);
  EXPECT_NE(out.find("Flow: 3 rows (1 ok, 1 degraded, 1 failed)"),
            std::string::npos);
  EXPECT_NE(out.find("Stages: factor 1.500s (3)"), std::string::npos);
}

TEST(MetricsRegistry, FormatterOmitsEmptyGroupsAndRendersUnknownOnes) {
  obs::MetricsRegistry m;
  m.add("custom.counter", 7);
  const std::string out = obs::format_metrics_summary(m);
  EXPECT_EQ(out.find("DD kernel"), std::string::npos);
  EXPECT_EQ(out.find("Scheduler"), std::string::npos);
  EXPECT_NE(out.find("custom.counter=7"), std::string::npos);
}

// --- json -------------------------------------------------------------------

TEST(Json, RoundTripsAndPreservesKeyOrder) {
  obs::Json doc = obs::Json::object();
  doc["zeta"] = 1;
  doc["alpha"] = "text with \"quotes\" and\nnewline";
  doc["pi"] = 3.141592653589793;
  doc["big"] = uint64_t{1} << 40;
  doc["neg"] = -17;
  doc["flag"] = true;
  doc["nothing"] = nullptr;
  obs::Json arr = obs::Json::array();
  arr.push_back(1);
  arr.push_back("two");
  doc["arr"] = std::move(arr);

  const std::string compact = doc.dump();
  // Insertion order, not alphabetical.
  EXPECT_LT(compact.find("zeta"), compact.find("alpha"));
  EXPECT_EQ(obs::Json::parse(compact), doc);
  EXPECT_EQ(obs::Json::parse(doc.dump(2)), doc); // pretty form too
  // Integers serialize without a decimal point.
  EXPECT_NE(compact.find("\"big\":1099511627776"), std::string::npos);
  // Doubles round-trip exactly.
  EXPECT_DOUBLE_EQ(
      obs::Json::parse(compact).get("pi").as_number(), 3.141592653589793);
}

TEST(Json, ParseErrorsCarryByteOffsets) {
  EXPECT_THROW(obs::Json::parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("[1, 2"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("{} trailing"), std::runtime_error);
  try {
    obs::Json::parse("[tru]");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

TEST(Json, EscapesControlCharacters) {
  EXPECT_EQ(obs::Json::escape("a\tb\x01"), "a\\tb\\u0001");
  const obs::Json round = obs::Json::parse(obs::Json("a\tb\x01").dump());
  EXPECT_EQ(round.as_string(), "a\tb\x01");
}

// --- schema validation ------------------------------------------------------

TEST(Validate, AcceptsGoodAndRejectsBadDocuments) {
  const obs::Json schema = obs::Json::parse(R"({
    "type": "object",
    "required": ["name", "count", "rows"],
    "properties": {
      "name": {"type": "string"},
      "count": {"type": "integer"},
      "rows": {"type": "array", "items": {"type": "number"}}
    }
  })");
  std::vector<std::string> errors;
  EXPECT_TRUE(obs::validate_json(
      obs::Json::parse(R"({"name":"x","count":3,"rows":[1,2.5]})"), schema,
      &errors));
  EXPECT_TRUE(errors.empty());

  // Missing required key.
  EXPECT_FALSE(obs::validate_json(
      obs::Json::parse(R"({"name":"x","count":3})"), schema, &errors));
  EXPECT_NE(errors.back().find("rows"), std::string::npos);

  // "integer" rejects a fractional number.
  errors.clear();
  EXPECT_FALSE(obs::validate_json(
      obs::Json::parse(R"({"name":"x","count":3.5,"rows":[]})"), schema,
      &errors));
  EXPECT_NE(errors.back().find("count"), std::string::npos);

  // Bad array element, with its index in the path.
  errors.clear();
  EXPECT_FALSE(obs::validate_json(
      obs::Json::parse(R"({"name":"x","count":1,"rows":[1,"two"]})"), schema,
      &errors));
  EXPECT_NE(errors.back().find("rows[1]"), std::string::npos);

  // Unknown keys are allowed (additive schema evolution).
  errors.clear();
  EXPECT_TRUE(obs::validate_json(
      obs::Json::parse(R"({"name":"x","count":1,"rows":[],"extra":true})"),
      schema, &errors));
}

// --- report -----------------------------------------------------------------

/// Deterministic report document; also used to (re)generate the golden
/// file, so every value is fixed.
obs::Json golden_report() {
  FlowRow a;
  a.circuit = "rd53";
  a.num_inputs = 5;
  a.num_outputs = 3;
  a.arithmetic = true;
  a.exact_benchmark = true;
  a.base_lits = 92;
  a.base_seconds = 0.25;
  a.ours_lits = 62;
  a.ours_seconds = 0.5;
  a.base_gates = 47;
  a.base_map_lits = 91;
  a.ours_gates = 24;
  a.ours_map_lits = 47;
  a.base_power = 1.5;
  a.ours_power = 1.0;
  a.ours_polls = 1000;
  a.base_polls = 500;
  a.rewrite.passes = 2;
  a.rewrite.roots = 30;
  a.rewrite.cuts_enumerated = 120;
  a.rewrite.db_hits = 90;
  a.rewrite.candidates = 6;
  a.rewrite.stale_skips = 1;
  a.rewrite.replacements = 4;
  a.rewrite.sim_rejects = 0;
  a.rewrite.bdd_rejects = 0;
  a.rewrite.lits_before = 70;
  a.rewrite.lits_after = 62;
  a.rewrite.gain_lits = 8;
  a.stages.add("spec-bdd", 0.125, 2);
  a.stages.add("factor", 0.25, 8);
  a.row_seconds = 0.75;

  FlowRow b;
  b.circuit = "t481";
  b.num_inputs = 16;
  b.num_outputs = 1;
  b.ours_status = FlowStatus::degraded("polarity-search", "Deadline");
  b.ladder_descents = 1;
  b.row_seconds = 0.125;

  obs::ReportBuilder rb("table2", 2);
  rb.add_row(flow_row_json(a));
  rb.add_row(flow_row_json(b));
  obs::MetricsRegistry m;
  m.add("dd.cache_lookups", 1234);
  m.set_max("dd.peak_live_nodes", 42.0);
  m.observe("stage.factor", 0.25);
  rb.set_metrics(m);
  obs::Tracer::Summary ts;
  ts.events = 4;
  ts.dropped = 0;
  ts.threads = 2;
  ts.span_seconds = 1.5;
  ts.wall_seconds = 2.0;
  rb.set_trace(ts, 4.0, "t.json");
  // Hand-built attribution tree: pins the profile block's serialization
  // (incl/excl ms, optional gauges, nested children) without depending on
  // real timings.
  obs::Profiler::Node proot;
  proot.name = "root";
  proot.calls = 0;
  proot.incl_ns = 2'000'000;
  proot.excl_ns = 0;
  obs::Profiler::Node stage;
  stage.name = "flow:rd53";
  stage.calls = 1;
  stage.incl_ns = 2'000'000;
  stage.excl_ns = 500'000;
  stage.peak_rss_mb = 64.0;
  stage.dd_live_nodes = 42.0;
  obs::Profiler::Node leaf;
  leaf.name = "factor";
  leaf.calls = 8;
  leaf.incl_ns = 1'500'000;
  leaf.excl_ns = 1'500'000;
  stage.children.push_back(leaf);
  proot.children.push_back(stage);
  rb.set_profile(proot, "p.folded");
  return rb.finish(3.25);
}

TEST(Report, BuilderComputesWorstStatusAndValidatesAgainstSchema) {
  const obs::Json doc = golden_report();
  EXPECT_EQ(doc.get("worst_status").as_string(), "degraded");
  EXPECT_EQ(doc.get("rows").size(), 2u);
  EXPECT_DOUBLE_EQ(doc.get("trace").get("coverage_pct").as_number(), 50.0);

  const obs::Json schema = obs::Json::parse(obs::read_file(
      std::string(RMSYN_SOURCE_DIR) + "/data/report_schema.json"));
  std::vector<std::string> errors;
  EXPECT_TRUE(obs::validate_json(doc, schema, &errors));
  for (const auto& e : errors) ADD_FAILURE() << e;
}

TEST(Report, GoldenFilePinsTheSerialization) {
  // Byte-for-byte stability of the serialized report is the schema
  // contract: if this fails, either fix the regression or consciously
  // regenerate the golden (and bump kReportSchemaVersion on incompatible
  // changes). Regenerate with RMSYN_REGEN_GOLDEN=1 in the environment.
  const std::string path =
      std::string(RMSYN_SOURCE_DIR) + "/tests/golden/report_golden.json";
  if (std::getenv("RMSYN_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << golden_report().dump(2);
    return;
  }
  const std::string golden = obs::read_file(path);
  EXPECT_EQ(golden_report().dump(2), golden);
}

TEST(Report, MetricsJsonCarriesKindSpecificFields) {
  obs::MetricsRegistry m;
  m.add("c", 3);
  m.set("g", 1.5);
  m.observe("h", 2.0);
  m.observe("h", 4.0);
  const obs::Json j = obs::metrics_json(m);
  EXPECT_EQ(j.get("c").get("kind").as_string(), "counter");
  EXPECT_DOUBLE_EQ(j.get("c").get("count").as_number(), 3.0);
  EXPECT_EQ(j.get("g").get("kind").as_string(), "gauge");
  EXPECT_EQ(j.get("h").get("kind").as_string(), "histogram");
  EXPECT_DOUBLE_EQ(j.get("h").get("mean").as_number(), 3.0);
}

// --- FlowStatus ordering (exit codes / worst_status) ------------------------

TEST(FlowStatus, SeverityOrdersOkDegradedFailed) {
  const FlowStatus ok = FlowStatus::ok();
  const FlowStatus deg = FlowStatus::degraded("factor");
  const FlowStatus fail = FlowStatus::failed("verify", "boom");
  EXPECT_LT(ok.severity(), deg.severity());
  EXPECT_LT(deg.severity(), fail.severity());

  EXPECT_EQ(worse(ok, deg).severity(), deg.severity());
  EXPECT_EQ(worse(fail, deg).severity(), fail.severity());
  EXPECT_EQ(worse(ok, ok).severity(), ok.severity());
  // worse() is symmetric in severity.
  EXPECT_EQ(worse(deg, fail).severity(), worse(fail, deg).severity());
}

TEST(FlowStatus, FlowRowWorstStatusPicksTheWorseFlow) {
  FlowRow row;
  row.ours_status = FlowStatus::degraded("factor");
  row.base_status = FlowStatus::ok();
  EXPECT_TRUE(row.worst_status().is_degraded());
  row.base_status = FlowStatus::failed("baseline-verify", "x");
  EXPECT_TRUE(row.worst_status().is_failed());
}

// --- flow integration -------------------------------------------------------

TEST(FlowIntegration, RunFlowFillsStageBreakdownAndRowJson) {
  const FlowRow row = run_flow("majority");
  ASSERT_FALSE(row.stages.empty());
  // Both flows contribute their stages.
  EXPECT_NE(row.stages.find("spec-bdd"), nullptr);
  EXPECT_NE(row.stages.find("baseline-simplify"), nullptr);
  EXPECT_NE(row.stages.find("mapping"), nullptr);
  EXPECT_NE(row.stages.find("power"), nullptr);
  EXPECT_GT(row.stages.total_seconds(), 0.0);

  const obs::Json j = flow_row_json(row);
  const obs::Json schema = obs::Json::parse(obs::read_file(
      std::string(RMSYN_SOURCE_DIR) + "/data/report_schema.json"));
  std::vector<std::string> errors;
  EXPECT_TRUE(obs::validate_json(
      j, schema.get("properties").get("rows").get("items"), &errors));
  for (const auto& e : errors) ADD_FAILURE() << e;

  obs::MetricsRegistry m = collect_flow_metrics({row});
  EXPECT_EQ(m.counter("flow.rows"), 1u);
  EXPECT_GT(m.counter("dd.cache_lookups"), 0u);
  EXPECT_GT(m.hist_sum("stage.spec-bdd"), 0.0);
}

TEST(FlowIntegration, GovernedFlowReportsPolls) {
  FlowOptions opt;
  opt.limits.step_limit = 1u << 22; // generous: never trips on majority
  const FlowRow row = run_flow("majority", opt);
  EXPECT_GT(row.ours_polls, 0u);
  EXPECT_GT(row.base_polls, 0u);
  EXPECT_TRUE(row.worst_status().is_ok());
}

// --- output sink ------------------------------------------------------------

TEST(OutputSink, ConcurrentWritersNeverInterleaveLines) {
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  {
    obs::OutputSink sink(f);
    constexpr int kThreads = 8, kLines = 50;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
      threads.emplace_back([&sink, t] {
        for (int i = 0; i < kLines; ++i)
          sink.printf("writer-%d line %d end\n", t, i);
      });
    for (auto& t : threads) t.join();
  }
  std::rewind(f);
  char line[256];
  int count = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    ++count;
    std::string s(line);
    // Every line must be exactly "writer-T line I end".
    EXPECT_EQ(s.rfind("writer-", 0), 0u) << s;
    EXPECT_NE(s.find(" end\n"), std::string::npos) << s;
  }
  EXPECT_EQ(count, 8 * 50);
  std::fclose(f);
}

// --- heartbeat --------------------------------------------------------------

TEST(Heartbeat, EmitsProgressLinesAndTogglesBoard) {
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  obs::OutputSink sink(f);
  EXPECT_FALSE(ProgressBoard::active());
  {
    obs::Heartbeat hb(sink, 0.01);
    EXPECT_TRUE(ProgressBoard::active());
    ProgressBoard::instance().reset(5);
    ProgressBoard::instance().rows_done.store(2);
    ProgressBoard::instance().set_circuit("rd53");
    ProgressBoard::instance().set_stage("factor");
    ProgressBoard::instance().note_live_nodes(123);
    // Wait until at least one beat lands (bounded).
    for (int i = 0; i < 500 && hb.beats() == 0; ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_GT(hb.beats(), 0u);
    hb.stop();
  }
  EXPECT_FALSE(ProgressBoard::active());
  std::rewind(f);
  std::string all;
  char buf[512];
  while (std::fgets(buf, sizeof buf, f) != nullptr) all += buf;
  std::fclose(f);
  EXPECT_NE(all.find("[hb "), std::string::npos);
  EXPECT_NE(all.find("rows 2/5"), std::string::npos);
  EXPECT_NE(all.find("circuit=rd53"), std::string::npos);
  EXPECT_NE(all.find("stage=factor"), std::string::npos);
  EXPECT_NE(all.find("live nodes 123"), std::string::npos);
}

} // namespace
} // namespace rmsyn
