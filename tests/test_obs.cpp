// Observability subsystem tests: span tracer (lock-free thread buffers,
// Chrome export), stage breakdowns, the metrics registry and its absorbers,
// the unified summary formatter, the JSON model, the report builder plus
// subset-schema validation, golden-file schema stability, FlowStatus
// ordering, the heartbeat, and the serialized output sink.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <thread>
#include <vector>

#include "flow/flow.hpp"
#include "obs/heartbeat.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/sink.hpp"
#include "obs/stage.hpp"
#include "obs/trace.hpp"
#include "sched/pool.hpp"
#include "util/governor.hpp"
#include "util/progress.hpp"

#ifndef RMSYN_SOURCE_DIR
#define RMSYN_SOURCE_DIR "."
#endif

namespace rmsyn {
namespace {

// --- tracer -----------------------------------------------------------------

class TracerTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::Tracer::instance().reset();
    obs::Tracer::instance().enable();
  }
  void TearDown() override {
    obs::Tracer::instance().disable();
    obs::Tracer::instance().reset();
  }
};

TEST_F(TracerTest, RecordsNestedSpansWithDepth) {
  {
    RMSYN_SPAN("outer");
    RMSYN_SPAN("inner");
  }
  const auto snap = obs::Tracer::instance().snapshot();
  std::size_t events = 0;
  bool saw_outer = false, saw_inner = false;
  for (const auto& t : snap.threads) {
    events += t.events.size();
    for (const auto& e : t.events) {
      if (std::string(e.name) == "outer") {
        saw_outer = true;
        EXPECT_EQ(e.depth, 0);
      }
      if (std::string(e.name) == "inner") {
        saw_inner = true;
        EXPECT_EQ(e.depth, 1);
      }
    }
  }
  EXPECT_EQ(events, 2u);
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
}

TEST_F(TracerTest, DisabledSpansRecordNothing) {
  obs::Tracer::instance().disable();
  { RMSYN_SPAN("ghost"); }
  EXPECT_EQ(obs::Tracer::instance().summary().events, 0u);
}

TEST_F(TracerTest, MergesSpansFromManyThreads) {
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([] {
      for (int k = 0; k < 10; ++k) RMSYN_SPAN("worker-span");
    });
  for (auto& t : threads) t.join();
  const auto sum = obs::Tracer::instance().summary();
  EXPECT_EQ(sum.events, 40u);
  EXPECT_GE(sum.threads, kThreads);
  EXPECT_EQ(sum.dropped, 0u);
}

TEST_F(TracerTest, OverflowDropsAndCounts) {
  for (std::size_t i = 0; i < obs::Tracer::kThreadCapacity + 100; ++i)
    RMSYN_SPAN("tiny");
  const auto snap = obs::Tracer::instance().snapshot();
  uint64_t dropped = 0;
  std::size_t events = 0;
  for (const auto& t : snap.threads) {
    dropped += t.dropped;
    events += t.events.size();
  }
  EXPECT_EQ(dropped, 100u);
  EXPECT_EQ(events, obs::Tracer::kThreadCapacity);
}

TEST_F(TracerTest, ChromeExportIsValidJsonWithThreadNames) {
  {
    RMSYN_SPAN("exported \"span\"\n");
  }
  const std::string json = obs::Tracer::instance().chrome_trace_json();
  const obs::Json doc = obs::Json::parse(json); // must parse
  ASSERT_TRUE(doc.get("traceEvents").is_array());
  bool meta = false, span = false;
  for (const obs::Json& ev : doc.get("traceEvents").items()) {
    if (ev.get("ph").as_string() == "M") meta = true;
    if (ev.get("ph").as_string() == "X") {
      span = true;
      EXPECT_TRUE(ev.contains("ts"));
      EXPECT_TRUE(ev.contains("dur"));
    }
  }
  EXPECT_TRUE(meta);
  EXPECT_TRUE(span);
}

TEST_F(TracerTest, ResetDiscardsEverything) {
  { RMSYN_SPAN("before-reset"); }
  EXPECT_GT(obs::Tracer::instance().summary().events, 0u);
  obs::Tracer::instance().reset();
  EXPECT_EQ(obs::Tracer::instance().summary().events, 0u);
}

// --- stage breakdown --------------------------------------------------------

TEST(StageBreakdown, MergesByNameAndSorts) {
  StageBreakdown sb;
  sb.add("verify", 0.5);
  sb.add("factor", 2.0);
  sb.add("verify", 0.25, 2);
  EXPECT_EQ(sb.entries.size(), 2u);
  EXPECT_DOUBLE_EQ(sb.seconds_for("verify"), 0.75);
  EXPECT_EQ(sb.find("verify")->calls, 3u);
  EXPECT_DOUBLE_EQ(sb.total_seconds(), 2.75);
  // to_string sorts descending by seconds: factor first.
  const std::string s = sb.to_string();
  EXPECT_LT(s.find("factor"), s.find("verify"));

  StageBreakdown other;
  other.add("factor", 1.0);
  other.add("mapping", 0.1);
  sb.accumulate(other);
  EXPECT_DOUBLE_EQ(sb.seconds_for("factor"), 3.0);
  EXPECT_EQ(sb.entries.size(), 3u);
}

TEST(ScopedStage, TimesIntoBreakdownAndTracksGovernorStage) {
  StageBreakdown sb;
  ResourceGovernor gov{ResourceLimits{}};
  {
    obs::ScopedStage stage(&gov, &sb, "unit-stage");
    EXPECT_EQ(gov.current_stage(), "unit-stage");
  }
  EXPECT_EQ(gov.current_stage(), "");
  ASSERT_NE(sb.find("unit-stage"), nullptr);
  EXPECT_EQ(sb.find("unit-stage")->calls, 1u);
  EXPECT_GE(sb.find("unit-stage")->seconds, 0.0);
}

TEST(ScopedStage, WorksWithoutGovernorOrBreakdown) {
  obs::ScopedStage a(nullptr, nullptr, "nothing");
  StageBreakdown sb;
  obs::ScopedStage b(nullptr, &sb, "only-sb");
}

// --- metrics registry -------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesHistograms) {
  obs::MetricsRegistry m;
  m.add("c");
  m.add("c", 4);
  m.set("g", 2.0);
  m.set("g", 1.0); // set = last wins
  m.set_max("p", 5.0);
  m.set_max("p", 3.0); // set_max keeps the max
  m.observe("h", 1.0);
  m.observe("h", 3.0);
  EXPECT_EQ(m.counter("c"), 5u);
  EXPECT_DOUBLE_EQ(m.gauge("g"), 1.0);
  EXPECT_DOUBLE_EQ(m.gauge("p"), 5.0);
  EXPECT_DOUBLE_EQ(m.hist_sum("h"), 4.0);
  EXPECT_TRUE(m.contains("c"));
  EXPECT_FALSE(m.contains("missing"));
  EXPECT_EQ(m.counter("missing"), 0u);

  obs::MetricsRegistry o;
  o.add("c", 10);
  o.set_max("p", 9.0);
  o.observe("h", 0.5);
  m.merge(o);
  EXPECT_EQ(m.counter("c"), 15u);
  EXPECT_DOUBLE_EQ(m.gauge("p"), 9.0);
  EXPECT_DOUBLE_EQ(m.hist_sum("h"), 4.5);

  const auto snap = m.snapshot();
  for (std::size_t i = 1; i < snap.size(); ++i)
    EXPECT_LT(snap[i - 1].name, snap[i].name); // name-sorted
  m.clear();
  EXPECT_FALSE(m.contains("c"));
}

TEST(MetricsRegistry, AbsorbersPopulateWellKnownGroups) {
  obs::MetricsRegistry m;
  BddStats bdd;
  bdd.cache_lookups = 100;
  bdd.cache_hits = 60;
  bdd.unique_lookups = 50;
  bdd.unique_hits = 25;
  bdd.peak_live_nodes = 42;
  bdd.gc_runs = 3;
  m.absorb_bdd(bdd);
  EXPECT_EQ(m.counter("dd.cache_lookups"), 100u);
  EXPECT_DOUBLE_EQ(m.gauge("dd.peak_live_nodes"), 42.0);

  SchedStats sched;
  sched.workers = 2;
  sched.per_worker.resize(3); // 2 workers + external slot
  sched.per_worker[0].tasks_run = 7;
  sched.per_worker[0].busy_seconds = 0.5;
  sched.per_worker[1].tasks_run = 5;
  sched.per_worker[1].steals = 2;
  sched.per_worker[1].tasks_stolen = 2;
  sched.per_worker[1].steal_attempts = 4;
  sched.per_worker[2].tasks_run = 1;
  sched.per_worker[2].peak_queue_depth = 9;
  m.absorb_sched(sched);
  EXPECT_EQ(m.counter("sched.tasks"), 13u);
  EXPECT_EQ(m.counter("sched.w1.steals"), 2u);
  EXPECT_EQ(m.counter("sched.ext.tasks"), 1u);
  EXPECT_DOUBLE_EQ(m.gauge("sched.peak_queue_depth"), 9.0);

  m.absorb_status(FlowStatus::ok());
  m.absorb_status(FlowStatus::degraded("factor"));
  m.absorb_status(FlowStatus::failed("verify", "boom"));
  EXPECT_EQ(m.counter("flow.rows"), 3u);
  EXPECT_EQ(m.counter("flow.ok"), 1u);
  EXPECT_EQ(m.counter("flow.degraded"), 1u);
  EXPECT_EQ(m.counter("flow.failed"), 1u);

  StageBreakdown sb;
  sb.add("factor", 1.5, 3);
  m.absorb_stages(sb);
  EXPECT_DOUBLE_EQ(m.hist_sum("stage.factor"), 1.5);

  const std::string out = obs::format_metrics_summary(m);
  EXPECT_NE(out.find("DD kernel: 100 cache lookups (hit rate 60.0%)"),
            std::string::npos);
  EXPECT_NE(out.find("Scheduler: 2 workers, 13 tasks"), std::string::npos);
  EXPECT_NE(out.find("ext0"), std::string::npos);
  EXPECT_NE(out.find("Flow: 3 rows (1 ok, 1 degraded, 1 failed)"),
            std::string::npos);
  EXPECT_NE(out.find("Stages: factor 1.500s (3)"), std::string::npos);
}

TEST(MetricsRegistry, FormatterOmitsEmptyGroupsAndRendersUnknownOnes) {
  obs::MetricsRegistry m;
  m.add("custom.counter", 7);
  const std::string out = obs::format_metrics_summary(m);
  EXPECT_EQ(out.find("DD kernel"), std::string::npos);
  EXPECT_EQ(out.find("Scheduler"), std::string::npos);
  EXPECT_NE(out.find("custom.counter=7"), std::string::npos);
}

// --- json -------------------------------------------------------------------

TEST(Json, RoundTripsAndPreservesKeyOrder) {
  obs::Json doc = obs::Json::object();
  doc["zeta"] = 1;
  doc["alpha"] = "text with \"quotes\" and\nnewline";
  doc["pi"] = 3.141592653589793;
  doc["big"] = uint64_t{1} << 40;
  doc["neg"] = -17;
  doc["flag"] = true;
  doc["nothing"] = nullptr;
  obs::Json arr = obs::Json::array();
  arr.push_back(1);
  arr.push_back("two");
  doc["arr"] = std::move(arr);

  const std::string compact = doc.dump();
  // Insertion order, not alphabetical.
  EXPECT_LT(compact.find("zeta"), compact.find("alpha"));
  EXPECT_EQ(obs::Json::parse(compact), doc);
  EXPECT_EQ(obs::Json::parse(doc.dump(2)), doc); // pretty form too
  // Integers serialize without a decimal point.
  EXPECT_NE(compact.find("\"big\":1099511627776"), std::string::npos);
  // Doubles round-trip exactly.
  EXPECT_DOUBLE_EQ(
      obs::Json::parse(compact).get("pi").as_number(), 3.141592653589793);
}

TEST(Json, ParseErrorsCarryByteOffsets) {
  EXPECT_THROW(obs::Json::parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("[1, 2"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("{} trailing"), std::runtime_error);
  try {
    obs::Json::parse("[tru]");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

TEST(Json, EscapesControlCharacters) {
  EXPECT_EQ(obs::Json::escape("a\tb\x01"), "a\\tb\\u0001");
  const obs::Json round = obs::Json::parse(obs::Json("a\tb\x01").dump());
  EXPECT_EQ(round.as_string(), "a\tb\x01");
}

// --- schema validation ------------------------------------------------------

TEST(Validate, AcceptsGoodAndRejectsBadDocuments) {
  const obs::Json schema = obs::Json::parse(R"({
    "type": "object",
    "required": ["name", "count", "rows"],
    "properties": {
      "name": {"type": "string"},
      "count": {"type": "integer"},
      "rows": {"type": "array", "items": {"type": "number"}}
    }
  })");
  std::vector<std::string> errors;
  EXPECT_TRUE(obs::validate_json(
      obs::Json::parse(R"({"name":"x","count":3,"rows":[1,2.5]})"), schema,
      &errors));
  EXPECT_TRUE(errors.empty());

  // Missing required key.
  EXPECT_FALSE(obs::validate_json(
      obs::Json::parse(R"({"name":"x","count":3})"), schema, &errors));
  EXPECT_NE(errors.back().find("rows"), std::string::npos);

  // "integer" rejects a fractional number.
  errors.clear();
  EXPECT_FALSE(obs::validate_json(
      obs::Json::parse(R"({"name":"x","count":3.5,"rows":[]})"), schema,
      &errors));
  EXPECT_NE(errors.back().find("count"), std::string::npos);

  // Bad array element, with its index in the path.
  errors.clear();
  EXPECT_FALSE(obs::validate_json(
      obs::Json::parse(R"({"name":"x","count":1,"rows":[1,"two"]})"), schema,
      &errors));
  EXPECT_NE(errors.back().find("rows[1]"), std::string::npos);

  // Unknown keys are allowed (additive schema evolution).
  errors.clear();
  EXPECT_TRUE(obs::validate_json(
      obs::Json::parse(R"({"name":"x","count":1,"rows":[],"extra":true})"),
      schema, &errors));
}

// --- report -----------------------------------------------------------------

/// Deterministic report document; also used to (re)generate the golden
/// file, so every value is fixed.
obs::Json golden_report() {
  FlowRow a;
  a.circuit = "rd53";
  a.num_inputs = 5;
  a.num_outputs = 3;
  a.arithmetic = true;
  a.exact_benchmark = true;
  a.base_lits = 92;
  a.base_seconds = 0.25;
  a.ours_lits = 62;
  a.ours_seconds = 0.5;
  a.base_gates = 47;
  a.base_map_lits = 91;
  a.ours_gates = 24;
  a.ours_map_lits = 47;
  a.base_power = 1.5;
  a.ours_power = 1.0;
  a.ours_polls = 1000;
  a.base_polls = 500;
  a.rewrite.passes = 2;
  a.rewrite.roots = 30;
  a.rewrite.cuts_enumerated = 120;
  a.rewrite.db_hits = 90;
  a.rewrite.candidates = 6;
  a.rewrite.stale_skips = 1;
  a.rewrite.replacements = 4;
  a.rewrite.sim_rejects = 0;
  a.rewrite.bdd_rejects = 0;
  a.rewrite.lits_before = 70;
  a.rewrite.lits_after = 62;
  a.rewrite.gain_lits = 8;
  a.stages.add("spec-bdd", 0.125, 2);
  a.stages.add("factor", 0.25, 8);

  FlowRow b;
  b.circuit = "t481";
  b.num_inputs = 16;
  b.num_outputs = 1;
  b.ours_status = FlowStatus::degraded("polarity-search", "Deadline");
  b.ladder_descents = 1;

  obs::ReportBuilder rb("table2", 2);
  rb.add_row(flow_row_json(a));
  rb.add_row(flow_row_json(b));
  obs::MetricsRegistry m;
  m.add("dd.cache_lookups", 1234);
  m.set_max("dd.peak_live_nodes", 42.0);
  m.observe("stage.factor", 0.25);
  rb.set_metrics(m);
  obs::Tracer::Summary ts;
  ts.events = 4;
  ts.dropped = 0;
  ts.threads = 2;
  ts.span_seconds = 1.5;
  ts.wall_seconds = 2.0;
  rb.set_trace(ts, 4.0, "t.json");
  return rb.finish(3.25);
}

TEST(Report, BuilderComputesWorstStatusAndValidatesAgainstSchema) {
  const obs::Json doc = golden_report();
  EXPECT_EQ(doc.get("worst_status").as_string(), "degraded");
  EXPECT_EQ(doc.get("rows").size(), 2u);
  EXPECT_DOUBLE_EQ(doc.get("trace").get("coverage_pct").as_number(), 50.0);

  const obs::Json schema = obs::Json::parse(obs::read_file(
      std::string(RMSYN_SOURCE_DIR) + "/data/report_schema.json"));
  std::vector<std::string> errors;
  EXPECT_TRUE(obs::validate_json(doc, schema, &errors));
  for (const auto& e : errors) ADD_FAILURE() << e;
}

TEST(Report, GoldenFilePinsTheSerialization) {
  // Byte-for-byte stability of the serialized report is the schema
  // contract: if this fails, either fix the regression or consciously
  // regenerate the golden (and bump kReportSchemaVersion on incompatible
  // changes). Regenerate with RMSYN_REGEN_GOLDEN=1 in the environment.
  const std::string path =
      std::string(RMSYN_SOURCE_DIR) + "/tests/golden/report_golden.json";
  if (std::getenv("RMSYN_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << golden_report().dump(2);
    return;
  }
  const std::string golden = obs::read_file(path);
  EXPECT_EQ(golden_report().dump(2), golden);
}

TEST(Report, MetricsJsonCarriesKindSpecificFields) {
  obs::MetricsRegistry m;
  m.add("c", 3);
  m.set("g", 1.5);
  m.observe("h", 2.0);
  m.observe("h", 4.0);
  const obs::Json j = obs::metrics_json(m);
  EXPECT_EQ(j.get("c").get("kind").as_string(), "counter");
  EXPECT_DOUBLE_EQ(j.get("c").get("count").as_number(), 3.0);
  EXPECT_EQ(j.get("g").get("kind").as_string(), "gauge");
  EXPECT_EQ(j.get("h").get("kind").as_string(), "histogram");
  EXPECT_DOUBLE_EQ(j.get("h").get("mean").as_number(), 3.0);
}

// --- FlowStatus ordering (exit codes / worst_status) ------------------------

TEST(FlowStatus, SeverityOrdersOkDegradedFailed) {
  const FlowStatus ok = FlowStatus::ok();
  const FlowStatus deg = FlowStatus::degraded("factor");
  const FlowStatus fail = FlowStatus::failed("verify", "boom");
  EXPECT_LT(ok.severity(), deg.severity());
  EXPECT_LT(deg.severity(), fail.severity());

  EXPECT_EQ(worse(ok, deg).severity(), deg.severity());
  EXPECT_EQ(worse(fail, deg).severity(), fail.severity());
  EXPECT_EQ(worse(ok, ok).severity(), ok.severity());
  // worse() is symmetric in severity.
  EXPECT_EQ(worse(deg, fail).severity(), worse(fail, deg).severity());
}

TEST(FlowStatus, FlowRowWorstStatusPicksTheWorseFlow) {
  FlowRow row;
  row.ours_status = FlowStatus::degraded("factor");
  row.base_status = FlowStatus::ok();
  EXPECT_TRUE(row.worst_status().is_degraded());
  row.base_status = FlowStatus::failed("baseline-verify", "x");
  EXPECT_TRUE(row.worst_status().is_failed());
}

// --- flow integration -------------------------------------------------------

TEST(FlowIntegration, RunFlowFillsStageBreakdownAndRowJson) {
  const FlowRow row = run_flow("majority");
  ASSERT_FALSE(row.stages.empty());
  // Both flows contribute their stages.
  EXPECT_NE(row.stages.find("spec-bdd"), nullptr);
  EXPECT_NE(row.stages.find("baseline-simplify"), nullptr);
  EXPECT_NE(row.stages.find("mapping"), nullptr);
  EXPECT_NE(row.stages.find("power"), nullptr);
  EXPECT_GT(row.stages.total_seconds(), 0.0);

  const obs::Json j = flow_row_json(row);
  const obs::Json schema = obs::Json::parse(obs::read_file(
      std::string(RMSYN_SOURCE_DIR) + "/data/report_schema.json"));
  std::vector<std::string> errors;
  EXPECT_TRUE(obs::validate_json(
      j, schema.get("properties").get("rows").get("items"), &errors));
  for (const auto& e : errors) ADD_FAILURE() << e;

  obs::MetricsRegistry m = collect_flow_metrics({row});
  EXPECT_EQ(m.counter("flow.rows"), 1u);
  EXPECT_GT(m.counter("dd.cache_lookups"), 0u);
  EXPECT_GT(m.hist_sum("stage.spec-bdd"), 0.0);
}

TEST(FlowIntegration, GovernedFlowReportsPolls) {
  FlowOptions opt;
  opt.limits.step_limit = 1u << 22; // generous: never trips on majority
  const FlowRow row = run_flow("majority", opt);
  EXPECT_GT(row.ours_polls, 0u);
  EXPECT_GT(row.base_polls, 0u);
  EXPECT_TRUE(row.worst_status().is_ok());
}

// --- output sink ------------------------------------------------------------

TEST(OutputSink, ConcurrentWritersNeverInterleaveLines) {
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  {
    obs::OutputSink sink(f);
    constexpr int kThreads = 8, kLines = 50;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
      threads.emplace_back([&sink, t] {
        for (int i = 0; i < kLines; ++i)
          sink.printf("writer-%d line %d end\n", t, i);
      });
    for (auto& t : threads) t.join();
  }
  std::rewind(f);
  char line[256];
  int count = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    ++count;
    std::string s(line);
    // Every line must be exactly "writer-T line I end".
    EXPECT_EQ(s.rfind("writer-", 0), 0u) << s;
    EXPECT_NE(s.find(" end\n"), std::string::npos) << s;
  }
  EXPECT_EQ(count, 8 * 50);
  std::fclose(f);
}

// --- heartbeat --------------------------------------------------------------

TEST(Heartbeat, EmitsProgressLinesAndTogglesBoard) {
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  obs::OutputSink sink(f);
  EXPECT_FALSE(ProgressBoard::active());
  {
    obs::Heartbeat hb(sink, 0.01);
    EXPECT_TRUE(ProgressBoard::active());
    ProgressBoard::instance().reset(5);
    ProgressBoard::instance().rows_done.store(2);
    ProgressBoard::instance().set_circuit("rd53");
    ProgressBoard::instance().set_stage("factor");
    ProgressBoard::instance().note_live_nodes(123);
    // Wait until at least one beat lands (bounded).
    for (int i = 0; i < 500 && hb.beats() == 0; ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_GT(hb.beats(), 0u);
    hb.stop();
  }
  EXPECT_FALSE(ProgressBoard::active());
  std::rewind(f);
  std::string all;
  char buf[512];
  while (std::fgets(buf, sizeof buf, f) != nullptr) all += buf;
  std::fclose(f);
  EXPECT_NE(all.find("[hb "), std::string::npos);
  EXPECT_NE(all.find("rows 2/5"), std::string::npos);
  EXPECT_NE(all.find("circuit=rd53"), std::string::npos);
  EXPECT_NE(all.find("stage=factor"), std::string::npos);
  EXPECT_NE(all.find("live nodes 123"), std::string::npos);
}

} // namespace
} // namespace rmsyn
