// SIMD kernel layer tests (util/simd.hpp): every kernel must be
// bit-identical to a plain word-loop reference under EVERY dispatch
// target reachable on the host — the whole contract of the layer is that
// a target only changes speed, never a single bit. Sizes sweep across
// block boundaries (0, sub-block tails, exact blocks, long arrays) and
// aliased dst==a calls, since the kernels promise aliasing safety.
#include "util/simd.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace rmsyn {
namespace {

using simd::Ops;

std::vector<uint64_t> random_words(std::size_t n, Rng& rng) {
  std::vector<uint64_t> v(n);
  for (auto& w : v) w = rng.next();
  return v;
}

const std::size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 17, 31, 64, 100};

/// Runs `check` once per reachable dispatch target, with the target
/// forced, and restores the default dispatch afterwards.
void for_each_dispatch(const std::function<void(const std::string&)>& check) {
  const std::string saved = simd::dispatch_name();
  for (const std::string& target : simd::available_dispatches()) {
    ASSERT_TRUE(simd::force_dispatch(target));
    ASSERT_EQ(target, simd::dispatch_name());
    check(target);
  }
  ASSERT_TRUE(simd::force_dispatch(saved));
}

TEST(Simd, BinaryKernelsMatchReferenceUnderEveryDispatch) {
  for_each_dispatch([](const std::string& target) {
    Rng rng(0x51AD ^ target.size());
    for (const std::size_t n : kSizes) {
      const auto a = random_words(n, rng);
      const auto b = random_words(n, rng);
      std::vector<uint64_t> dst(n, 0), want(n, 0);
      for (const bool inv : {false, true}) {
        const Ops& k = simd::ops();
        k.v_and(dst.data(), a.data(), b.data(), n, inv);
        for (std::size_t i = 0; i < n; ++i)
          want[i] = inv ? ~(a[i] & b[i]) : (a[i] & b[i]);
        EXPECT_EQ(dst, want) << target << " v_and n=" << n << " inv=" << inv;

        k.v_or(dst.data(), a.data(), b.data(), n, inv);
        for (std::size_t i = 0; i < n; ++i)
          want[i] = inv ? ~(a[i] | b[i]) : (a[i] | b[i]);
        EXPECT_EQ(dst, want) << target << " v_or n=" << n << " inv=" << inv;

        k.v_xor(dst.data(), a.data(), b.data(), n, inv);
        for (std::size_t i = 0; i < n; ++i)
          want[i] = inv ? ~(a[i] ^ b[i]) : (a[i] ^ b[i]);
        EXPECT_EQ(dst, want) << target << " v_xor n=" << n << " inv=" << inv;
      }
      const Ops& k = simd::ops();
      k.v_andnot(dst.data(), a.data(), b.data(), n);
      for (std::size_t i = 0; i < n; ++i) want[i] = a[i] & ~b[i];
      EXPECT_EQ(dst, want) << target << " v_andnot n=" << n;

      k.v_not(dst.data(), a.data(), n);
      for (std::size_t i = 0; i < n; ++i) want[i] = ~a[i];
      EXPECT_EQ(dst, want) << target << " v_not n=" << n;

      const auto m = random_words(n, rng);
      k.v_mux(dst.data(), m.data(), a.data(), b.data(), n);
      for (std::size_t i = 0; i < n; ++i)
        want[i] = (m[i] & a[i]) | (~m[i] & b[i]);
      EXPECT_EQ(dst, want) << target << " v_mux n=" << n;
    }
  });
}

TEST(Simd, AccumulateKernelsMatchReferenceAndTolerateAliasing) {
  for_each_dispatch([](const std::string& target) {
    Rng rng(0xACC ^ target.size());
    for (const std::size_t n : kSizes) {
      const auto a = random_words(n, rng);
      const auto base = random_words(n, rng);
      std::vector<uint64_t> dst, want(n);
      const Ops& k = simd::ops();

      dst = base;
      k.v_and_acc(dst.data(), a.data(), n);
      for (std::size_t i = 0; i < n; ++i) want[i] = base[i] & a[i];
      EXPECT_EQ(dst, want) << target << " v_and_acc n=" << n;

      dst = base;
      k.v_or_acc(dst.data(), a.data(), n);
      for (std::size_t i = 0; i < n; ++i) want[i] = base[i] | a[i];
      EXPECT_EQ(dst, want) << target << " v_or_acc n=" << n;

      dst = base;
      k.v_xor_acc(dst.data(), a.data(), n);
      for (std::size_t i = 0; i < n; ++i) want[i] = base[i] ^ a[i];
      EXPECT_EQ(dst, want) << target << " v_xor_acc n=" << n;

      // dst aliasing a is allowed in every kernel (pure word-wise ops).
      dst = base;
      k.v_xor(dst.data(), dst.data(), dst.data(), n, false);
      EXPECT_EQ(dst, std::vector<uint64_t>(n, 0))
          << target << " aliased self-xor n=" << n;
    }
  });
}

TEST(Simd, PredicatesAndPopcountMatchReference) {
  for_each_dispatch([](const std::string& target) {
    Rng rng(0xB17 ^ target.size());
    for (const std::size_t n : kSizes) {
      const Ops& k = simd::ops();
      // All-zero / all-ones baselines.
      const std::vector<uint64_t> zero(n, 0), ones(n, ~uint64_t{0});
      EXPECT_FALSE(k.v_any(zero.data(), n)) << target << " n=" << n;
      EXPECT_EQ(k.v_any(ones.data(), n), n > 0) << target << " n=" << n;
      EXPECT_TRUE(k.v_all(ones.data(), n)) << target << " n=" << n;
      EXPECT_EQ(k.v_all(zero.data(), n), n == 0) << target << " n=" << n;
      EXPECT_EQ(k.v_popcount(ones.data(), n), 64u * n) << target;

      // A single bit planted at every word position must be seen by
      // v_any / v_any_diff / v_all regardless of which block it's in.
      for (std::size_t at = 0; at < n; ++at) {
        auto one = zero;
        one[at] = uint64_t{1} << (at % 64);
        EXPECT_TRUE(k.v_any(one.data(), n)) << target << " at=" << at;
        EXPECT_TRUE(k.v_any_diff(one.data(), zero.data(), n))
            << target << " at=" << at;
        auto hole = ones;
        hole[at] &= ~(uint64_t{1} << (at % 64));
        EXPECT_FALSE(k.v_all(hole.data(), n)) << target << " at=" << at;
        EXPECT_EQ(k.v_popcount(hole.data(), n), 64u * n - 1) << target;
      }

      const auto a = random_words(n, rng);
      EXPECT_FALSE(k.v_any_diff(a.data(), a.data(), n)) << target;
      uint64_t pc = 0;
      for (const uint64_t w : a) pc += static_cast<uint64_t>(__builtin_popcountll(w));
      EXPECT_EQ(k.v_popcount(a.data(), n), pc) << target << " n=" << n;
    }
  });
}

TEST(Simd, ForceDispatchRejectsUnknownAndUnavailableTargets) {
  const std::string saved = simd::dispatch_name();
  EXPECT_FALSE(simd::force_dispatch("avx512"));
  EXPECT_FALSE(simd::force_dispatch(""));
  EXPECT_FALSE(simd::force_dispatch("SCALAR")); // names are lowercase
  EXPECT_EQ(saved, simd::dispatch_name()) << "failed force must not switch";
#if defined(__x86_64__)
  EXPECT_FALSE(simd::force_dispatch("neon"));
#elif defined(__aarch64__)
  EXPECT_FALSE(simd::force_dispatch("avx2"));
#endif
  EXPECT_EQ(saved, simd::dispatch_name());
  ASSERT_TRUE(simd::force_dispatch(saved));
}

TEST(Simd, AvailableDispatchesAlwaysContainScalar) {
  const auto targets = simd::available_dispatches();
  ASSERT_FALSE(targets.empty());
  bool has_scalar = false;
  for (const auto& t : targets) {
    has_scalar = has_scalar || t == "scalar";
    EXPECT_TRUE(simd::force_dispatch(t)) << t;
  }
  EXPECT_TRUE(has_scalar);
  // Best target first: the default selection matches the head of the list.
  ASSERT_TRUE(simd::force_dispatch(targets.front()));
}

} // namespace
} // namespace rmsyn
