#include <gtest/gtest.h>

#include "sop/minimize.hpp"
#include "util/rng.hpp"

namespace rmsyn {
namespace {

Cover random_cover(int nvars, int ncubes, Rng& rng) {
  Cover f(nvars);
  for (int c = 0; c < ncubes; ++c) {
    Cube cube(nvars);
    for (int v = 0; v < nvars; ++v) {
      const auto r = rng.below(3);
      if (r == 0) cube.add_pos(v);
      else if (r == 1) cube.add_neg(v);
    }
    f.add(std::move(cube));
  }
  return f;
}

TEST(Minimize, SingleCubeContainmentDropsContained) {
  Cover f(3);
  f.add(Cube::parse("1--"));
  f.add(Cube::parse("11-")); // contained in the first
  f.add(Cube::parse("0-1"));
  const Cover r = single_cube_containment(f);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.to_truth_table(), f.to_truth_table());
}

TEST(Minimize, MergeDistanceOneCombines) {
  Cover f(2);
  f.add(Cube::parse("10"));
  f.add(Cube::parse("11"));
  const Cover r = merge_distance_one(f);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r.cubes()[0].to_string(), "1-");
}

TEST(Minimize, MergeChainsToSingleCube) {
  // All four minterms of two variables merge to the universal cube.
  Cover f(2);
  f.add(Cube::parse("00"));
  f.add(Cube::parse("01"));
  f.add(Cube::parse("10"));
  f.add(Cube::parse("11"));
  const Cover r = merge_distance_one(f);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.cubes()[0].is_universal());
}

TEST(Minimize, IrredundantRemovesConsensusCube) {
  // ab + āc + bc: the bc cube is redundant.
  Cover f(3);
  f.add(Cube::parse("11-"));
  f.add(Cube::parse("0-1"));
  f.add(Cube::parse("-11"));
  const Cover r = irredundant(f);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.to_truth_table(), f.to_truth_table());
}

TEST(Minimize, ExpandWidensAgainstOffset) {
  // f = ab + āb ≡ b: expansion of either cube should reach "b".
  Cover f(2);
  f.add(Cube::parse("11"));
  f.add(Cube::parse("01"));
  const Cover r = expand(f);
  EXPECT_EQ(r.to_truth_table(), f.to_truth_table());
  EXPECT_LE(r.literal_count(), f.literal_count());
}

class MinimizeRandom : public ::testing::TestWithParam<int> {};

TEST_P(MinimizeRandom, EspressoLitePreservesFunctionAndNeverGrows) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 555 + 5);
  for (int iter = 0; iter < 25; ++iter) {
    const Cover f = random_cover(n, 2 + static_cast<int>(rng.below(10)), rng);
    const Cover g = espresso_lite(f);
    EXPECT_EQ(g.to_truth_table(), f.to_truth_table());
    EXPECT_LE(g.literal_count(), f.literal_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MinimizeRandom, ::testing::Values(2, 3, 4, 5, 6, 7));

} // namespace
} // namespace rmsyn
