// Cross-flow fuzzing: randomized multi-output specifications pushed through
// every pipeline in the repository, with functional equivalence asserted at
// each stage. This is the broadest failure-injection net in the suite —
// any unsound rewrite anywhere (factorization, redundancy removal, resub,
// baseline passes, ESOP/KFDD extensions, subject-graph construction) shows
// up here as an equivalence failure.
#include <gtest/gtest.h>

#include "baseline/script.hpp"
#include "core/synth.hpp"
#include "equiv/equiv.hpp"
#include "fdd/esop.hpp"
#include "fdd/kfdd.hpp"
#include "mapping/mapper.hpp"
#include "network/io.hpp"
#include "network/transform.hpp"
#include "power/power.hpp"
#include "rewrite/rewrite.hpp"
#include "testability/faults.hpp"
#include "util/rng.hpp"

namespace rmsyn {
namespace {

/// Random DAG spec with a mix of gate types and arities.
Network random_spec(uint64_t seed) {
  Rng rng(seed);
  Network net;
  std::vector<NodeId> pool;
  const int npis = 4 + static_cast<int>(rng.below(4));
  for (int i = 0; i < npis; ++i) pool.push_back(net.add_pi());
  const int ngates = 10 + static_cast<int>(rng.below(25));
  for (int g = 0; g < ngates; ++g) {
    const std::size_t arity = 2 + rng.below(2);
    std::vector<NodeId> fi;
    for (std::size_t k = 0; k < arity; ++k)
      fi.push_back(pool[rng.below(pool.size())]);
    switch (rng.below(7)) {
      case 0: pool.push_back(net.add_gate(GateType::And, fi)); break;
      case 1: pool.push_back(net.add_gate(GateType::Or, fi)); break;
      case 2: pool.push_back(net.add_gate(GateType::Xor, fi)); break;
      case 3: pool.push_back(net.add_gate(GateType::Nand, fi)); break;
      case 4: pool.push_back(net.add_gate(GateType::Nor, fi)); break;
      case 5: pool.push_back(net.add_gate(GateType::Xnor, fi)); break;
      default: pool.push_back(net.add_not(fi[0])); break;
    }
  }
  const int npos = 2 + static_cast<int>(rng.below(3));
  for (int o = 0; o < npos; ++o)
    net.add_po(pool[pool.size() - 1 - static_cast<std::size_t>(o)]);
  return net;
}

class Fuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Fuzz, FprmFlowIsSound) {
  const Network spec = random_spec(GetParam());
  // synthesize() self-verifies (throws on mismatch); double-check anyway.
  const Network out = synthesize(spec, {}, nullptr);
  EXPECT_TRUE(check_equivalence(spec, out).equivalent);
}

TEST_P(Fuzz, BaselineFlowIsSound) {
  const Network spec = random_spec(GetParam() + 1000);
  const Network out = baseline_synthesize(spec, {}, nullptr);
  EXPECT_TRUE(check_equivalence(spec, out).equivalent);
}

TEST_P(Fuzz, KfddAndEsopAreSound) {
  const Network spec = random_spec(GetParam() + 2000);
  EXPECT_TRUE(check_equivalence(spec, kfdd_synthesize(spec)).equivalent);
  EXPECT_TRUE(check_equivalence(spec, esop_synthesize(spec)).equivalent);
}

TEST_P(Fuzz, SubjectGraphAndBlifRoundTripAreSound) {
  const Network spec = random_spec(GetParam() + 3000);
  EXPECT_TRUE(check_equivalence(spec, subject_graph(spec)).equivalent);
  const Network rt = read_blif_string(
      write_blif_string(decompose2(strash(spec)), "fz"));
  EXPECT_TRUE(check_equivalence(spec, rt).equivalent);
}

TEST_P(Fuzz, MappingCoversEveryNetwork) {
  const Network spec = random_spec(GetParam() + 4000);
  const Network ours = synthesize(spec, {}, nullptr);
  const MapResult r = map_network(ours, mcnc_library());
  // Mapping must succeed and account for all pins consistently.
  EXPECT_GE(r.literal_count, r.gate_count);
  EXPECT_GE(r.area, static_cast<double>(r.gate_count));
}

TEST_P(Fuzz, InjectedFaultsAreDetectedOrRedundant) {
  // Failure injection: flip a random gate's type; either the equivalence
  // checker reports a mismatch or the change was functionally neutral —
  // which the checker must then confirm.
  const Network spec = random_spec(GetParam() + 5000);
  Rng rng(GetParam() + 6000);
  Network broken = spec;
  std::vector<NodeId> gates;
  const auto live = broken.live_mask();
  for (NodeId n = 0; n < broken.node_count(); ++n) {
    const GateType t = broken.type(n);
    if (live[n] && (t == GateType::And || t == GateType::Or))
      gates.push_back(n);
  }
  if (gates.empty()) return;
  const NodeId victim = gates[rng.below(gates.size())];
  broken.rewrite_gate(victim,
                      broken.type(victim) == GateType::And ? GateType::Or
                                                           : GateType::And,
                      broken.fanins(victim));
  const auto r = check_equivalence(spec, broken);
  if (!r.equivalent) {
    EXPECT_FALSE(r.reason.empty());
  } else {
    // Truly neutral flip (e.g. masked cone) — fine, but then both still
    // synthesize to equivalent circuits.
    EXPECT_TRUE(check_equivalence(broken, synthesize(spec, {}, nullptr))
                    .equivalent);
  }
}

TEST_P(Fuzz, GovernedFlowsAreSoundUnderRandomBudgets) {
  // Resource-exhaustion fuzzing: every random budget — however starved —
  // must yield ok/degraded/failed with a network equivalent to the spec
  // (a failed FPRM flow hands the spec back), and must never crash or
  // report ok after a trip.
  const Network spec = random_spec(GetParam() + 7000);
  Rng rng(GetParam() + 8000);
  for (int round = 0; round < 4; ++round) {
    ResourceLimits lim;
    // Budgets from near-starvation to roomy; sometimes node-capped too.
    lim.step_limit = uint64_t{1} << (8 + rng.below(14));
    if (rng.below(2) == 0) lim.node_limit = 64 + rng.below(4096);
    if (rng.below(4) == 0) lim.faults.overflow_computed_table = true;

    {
      SynthOptions opt;
      ResourceGovernor gov(lim);
      opt.governor = &gov;
      SynthReport rep;
      const Network out = synthesize(spec, opt, &rep);
      const auto check = check_equivalence(spec, out);
      EXPECT_TRUE(check.equivalent)
          << "status " << rep.status.to_string() << ": " << check.reason;
      if (rep.status.is_ok()) {
        EXPECT_EQ(gov.trip_kind(), TripKind::None);
      }
    }
    {
      BaselineOptions opt;
      ResourceGovernor gov(lim);
      opt.governor = &gov;
      BaselineReport rep;
      const Network out = baseline_synthesize(spec, opt, &rep);
      EXPECT_FALSE(rep.status.is_failed());
      EXPECT_TRUE(check_equivalence(spec, out).equivalent)
          << "status " << rep.status.to_string();
    }
  }
}

TEST_P(Fuzz, GovernedRewriteIsSoundUnderRandomBudgets) {
  // Cut-rewriting under starved budgets: wherever the governor trips —
  // mid-enumeration, mid-evaluation, between phase-C commits — the pass
  // must unwind to a structurally valid network equivalent to its input
  // (replacements are atomic: verified-then-committed or fully reverted).
  const Network spec = random_spec(GetParam() + 11000);
  Rng rng(GetParam() + 12000);
  for (int round = 0; round < 4; ++round) {
    ResourceLimits lim;
    lim.step_limit = uint64_t{1} << (1 + rng.below(12));
    ResourceGovernor gov(lim);
    rw::RewriteOptions opt;
    opt.governor = &gov;
    Network net = strash(spec);
    const rw::RewriteStats st = rw::rewrite_network(net, opt);
    const auto problems = net.check_invariants();
    EXPECT_TRUE(problems.empty())
        << "steps=" << lim.step_limit << ": " << problems.front().to_string();
    const auto check = check_equivalence(spec, net);
    EXPECT_TRUE(check.equivalent)
        << "steps=" << lim.step_limit << " replacements=" << st.replacements
        << ": " << check.reason;
  }
}

TEST_P(Fuzz, GovernedFaultInjectionIsSound) {
  // Deterministic allocation faults at random depths: the trip may land in
  // any stage of any rung, but the delivered network is always equivalent.
  const Network spec = random_spec(GetParam() + 9000);
  Rng rng(GetParam() + 10000);
  for (int round = 0; round < 3; ++round) {
    SynthOptions opt;
    ResourceLimits lim;
    lim.faults.fail_at_allocation = 1 + rng.below(5000);
    ResourceGovernor gov(lim);
    opt.governor = &gov;
    SynthReport rep;
    const Network out = synthesize(spec, opt, &rep);
    EXPECT_TRUE(check_equivalence(spec, out).equivalent)
        << "fault at allocation " << lim.faults.fail_at_allocation
        << ", status " << rep.status.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99,
                                           110, 121, 132));

} // namespace
} // namespace rmsyn
