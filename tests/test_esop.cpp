// ESOP extension tests: exorlink identities, minimization invariants, and
// the mixed-polarity factorizer.
#include "fdd/esop.hpp"

#include <gtest/gtest.h>

#include "benchgen/spec.hpp"
#include "equiv/equiv.hpp"
#include "network/stats.hpp"
#include "util/rng.hpp"

namespace rmsyn {
namespace {

Esop random_esop(int nvars, int ncubes, Rng& rng) {
  Esop e;
  e.nvars = nvars;
  for (int c = 0; c < ncubes; ++c) {
    Cube cube(nvars);
    for (int v = 0; v < nvars; ++v) {
      const auto r = rng.below(3);
      if (r == 0) cube.add_pos(v);
      else if (r == 1) cube.add_neg(v);
    }
    e.cubes.push_back(std::move(cube));
  }
  return e;
}

TEST(Esop, EvalXorSemantics) {
  Esop e;
  e.nvars = 2;
  e.cubes.push_back(Cube::parse("1-")); // a
  e.cubes.push_back(Cube::parse("-1")); // b
  // a ⊕ b
  EXPECT_FALSE(e.eval(0b00));
  EXPECT_TRUE(e.eval(0b01));
  EXPECT_TRUE(e.eval(0b10));
  EXPECT_FALSE(e.eval(0b11));
}

TEST(Esop, FromFprmMaterializesPolarities) {
  FprmForm form;
  form.nvars = 3;
  form.support = {0, 2};
  form.polarity = BitVec(3);
  form.polarity.set(0); // x0 positive, x2 negative
  BitVec mask(2);
  mask.set(0);
  mask.set(1);
  form.cubes = {mask};
  const Esop e = esop_from_fprm(form);
  ASSERT_EQ(e.cubes.size(), 1u);
  EXPECT_TRUE(e.cubes[0].has_pos(0));
  EXPECT_TRUE(e.cubes[0].has_neg(2));
}

TEST(EsopMinimize, DistanceZeroCancels) {
  Esop e;
  e.nvars = 3;
  e.cubes.push_back(Cube::parse("1-0"));
  e.cubes.push_back(Cube::parse("1-0"));
  esop_minimize(e);
  EXPECT_TRUE(e.cubes.empty());
}

TEST(EsopMinimize, DistanceOneMergesToThirdState) {
  // x·C ⊕ x̄·C = C.
  Esop e;
  e.nvars = 2;
  e.cubes.push_back(Cube::parse("11"));
  e.cubes.push_back(Cube::parse("01"));
  esop_minimize(e);
  ASSERT_EQ(e.cubes.size(), 1u);
  EXPECT_EQ(e.cubes[0].to_string(), "-1");

  // x·C ⊕ C = x̄·C.
  Esop f;
  f.nvars = 2;
  f.cubes.push_back(Cube::parse("11"));
  f.cubes.push_back(Cube::parse("-1"));
  esop_minimize(f);
  ASSERT_EQ(f.cubes.size(), 1u);
  EXPECT_EQ(f.cubes[0].to_string(), "01");
}

TEST(EsopMinimize, Distance2ExorlinkIdentity) {
  // xy ⊕ x̄ȳ = y ⊕ x̄ (checked through minimization + truth tables).
  Esop e;
  e.nvars = 2;
  e.cubes.push_back(Cube::parse("11"));
  e.cubes.push_back(Cube::parse("00"));
  const TruthTable before = e.to_truth_table();
  esop_minimize(e);
  EXPECT_EQ(e.to_truth_table(), before);
  EXPECT_LE(e.literal_count(), 2u);
}

class EsopRandom : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EsopRandom, MinimizePreservesFunctionAndNeverGrows) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 25; ++iter) {
    const int n = 3 + static_cast<int>(rng.below(3));
    Esop e = random_esop(n, 2 + static_cast<int>(rng.below(8)), rng);
    const TruthTable before = e.to_truth_table();
    const std::size_t cubes_before = e.cubes.size();
    esop_minimize(e);
    EXPECT_EQ(e.to_truth_table(), before);
    EXPECT_LE(e.cubes.size(), cubes_before);
  }
}

TEST_P(EsopRandom, FactorEsopBuildsEquivalentNetwork) {
  Rng rng(GetParam() + 99);
  for (int iter = 0; iter < 20; ++iter) {
    const int n = 4;
    Esop e = random_esop(n, 2 + static_cast<int>(rng.below(6)), rng);
    Network net;
    std::vector<NodeId> pis;
    for (int v = 0; v < n; ++v) pis.push_back(net.add_pi());
    net.add_po(factor_esop(net, pis, e));
    const auto check = check_against_tts(net, {e.to_truth_table()});
    EXPECT_TRUE(check.equivalent) << check.reason;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EsopRandom, ::testing::Values(1, 2, 3, 4, 5));

TEST(Esop, MinimizationBeatsOrMatchesFprmOnMixedPolarityFunctions) {
  // f = ab ⊕ āb̄ (XNOR) needs 2 cubes in any FPRM but its ESOP is
  // minimized via exorlink into <= 2 literals' worth of cubes.
  Esop e;
  e.nvars = 2;
  e.cubes.push_back(Cube::parse("11"));
  e.cubes.push_back(Cube::parse("00"));
  esop_minimize(e);
  EXPECT_EQ(e.cubes.size(), 2u);
  EXPECT_LE(e.literal_count(), 2u); // e.g. x̄ ⊕ y
}

TEST(Esop, SynthesizeEquivalentOnBenchmarks) {
  for (const char* name : {"z4ml", "rd53", "majority", "t481", "bcd-div3"}) {
    const Benchmark bench = make_benchmark(name);
    const Network out = esop_synthesize(bench.spec);
    const auto check = check_equivalence(bench.spec, out);
    EXPECT_TRUE(check.equivalent) << name << ": " << check.reason;
  }
}

TEST(Esop, TruncatedOutputsFallBackToDavio) {
  // my_adder's carry-out has ~2^16 FPRM cubes: the explicit ESOP path must
  // bail to the decision-diagram construction and stay correct.
  const Benchmark bench = make_benchmark("my_adder");
  const Network out = esop_synthesize(bench.spec);
  EXPECT_TRUE(check_equivalence(bench.spec, out).equivalent);
}

TEST(Esop, CubeCountsNeverExceedFprm) {
  // ESOP minimization starts from the best FPRM, so the reported cube
  // counts can only stay equal or shrink.
  const Benchmark bench = make_benchmark("rd53");
  std::vector<std::size_t> esop_cubes;
  (void)esop_synthesize(bench.spec, {}, &esop_cubes);

  BddManager mgr(static_cast<int>(bench.spec.pi_count()));
  const auto outs = output_bdds(mgr, bench.spec);
  for (std::size_t j = 0; j < outs.size(); ++j) {
    const BitVec pol = best_polarity(mgr, outs[j]);
    const Ofdd o = build_ofdd(mgr, outs[j], pol);
    EXPECT_LE(static_cast<double>(esop_cubes[j]),
              fprm_cube_count(mgr, o.root, o.support));
  }
}

} // namespace
} // namespace rmsyn
