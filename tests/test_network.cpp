#include "network/network.hpp"

#include <gtest/gtest.h>

#include "network/io.hpp"
#include "network/simulate.hpp"
#include "network/stats.hpp"
#include "util/rng.hpp"

namespace rmsyn {
namespace {

Network full_adder_net() {
  Network net;
  const NodeId a = net.add_pi("a");
  const NodeId b = net.add_pi("b");
  const NodeId c = net.add_pi("c");
  const NodeId axb = net.add_xor(a, b);
  net.add_po(net.add_xor(axb, c), "sum");
  net.add_po(net.add_or(net.add_and(a, b), net.add_and(axb, c)), "cout");
  return net;
}

TEST(Network, EvalFullAdder) {
  const Network net = full_adder_net();
  for (int a = 0; a < 2; ++a)
    for (int b = 0; b < 2; ++b)
      for (int c = 0; c < 2; ++c) {
        const auto out = net.eval({a != 0, b != 0, c != 0});
        const int total = a + b + c;
        EXPECT_EQ(out[0], (total & 1) != 0);
        EXPECT_EQ(out[1], total >= 2);
      }
}

TEST(Network, TopoOrderRespectsFanins) {
  const Network net = full_adder_net();
  const auto order = net.topo_order();
  std::vector<std::size_t> pos(net.node_count());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const NodeId n : order)
    for (const NodeId f : net.fanins(n)) EXPECT_LT(pos[f], pos[n]);
}

TEST(Network, FanoutCountsAndLiveMask) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  const NodeId g = net.add_and(a, b);
  const NodeId dead = net.add_or(a, b);
  (void)dead;
  net.add_po(g);
  const auto live = net.live_mask();
  EXPECT_TRUE(live[g]);
  EXPECT_FALSE(live[dead]);
  const auto fo = net.fanout_counts();
  EXPECT_EQ(fo[g], 1u); // the PO
  EXPECT_EQ(fo[a], 1u); // only via the live AND
}

TEST(Network, RejectsBadGates) {
  Network net;
  const NodeId a = net.add_pi();
  EXPECT_THROW(net.add_gate(GateType::Not, {a, a}), std::invalid_argument);
  EXPECT_THROW(net.add_gate(GateType::And, {}), std::invalid_argument);
  EXPECT_THROW(net.add_gate(GateType::And, {999}), std::invalid_argument);
}

TEST(Simulate, MatchesEvalOnRandomPatterns) {
  const Network net = full_adder_net();
  const auto patterns = random_patterns(3, 100, 5);
  const auto values = simulate(net, patterns);
  for (std::size_t p = 0; p < 100; ++p) {
    std::vector<bool> pi(3);
    for (int i = 0; i < 3; ++i) pi[static_cast<std::size_t>(i)] =
        patterns.bits[static_cast<std::size_t>(i)].get(p);
    const auto out = net.eval(pi);
    EXPECT_EQ(values[net.po(0)].get(p), out[0]);
    EXPECT_EQ(values[net.po(1)].get(p), out[1]);
  }
}

TEST(Simulate, PatternSetAppend) {
  PatternSet ps(2, 0);
  BitVec a(2);
  a.set(1);
  ps.append(a);
  BitVec b(2);
  b.set(0);
  ps.append(b);
  EXPECT_EQ(ps.num_patterns, 2u);
  EXPECT_FALSE(ps.bits[0].get(0));
  EXPECT_TRUE(ps.bits[1].get(0));
  EXPECT_TRUE(ps.bits[0].get(1));
  EXPECT_FALSE(ps.bits[1].get(1));
}

TEST(Stats, PaperMetricCountsXorAsThree) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  net.add_po(net.add_xor(a, b));
  const auto s = network_stats(net);
  EXPECT_EQ(s.gates2, 3u);
  EXPECT_EQ(s.lits, 6u);
  EXPECT_EQ(s.num_xor2, 1u);
}

TEST(Stats, InvertersAreFree) {
  Network net;
  const NodeId a = net.add_pi();
  const NodeId b = net.add_pi();
  net.add_po(net.add_and(net.add_not(a), b));
  const auto s = network_stats(net);
  EXPECT_EQ(s.gates2, 1u);
  EXPECT_EQ(s.num_inverters, 1u);
}

TEST(Stats, NaryGatesCountAsTrees) {
  Network net;
  std::vector<NodeId> pis;
  for (int i = 0; i < 5; ++i) pis.push_back(net.add_pi());
  net.add_po(net.add_gate(GateType::And, pis));
  EXPECT_EQ(network_stats(net).gates2, 4u);
}

TEST(Stats, T481ClosedFormIsTwentyFiveGates) {
  // The paper's Example 1: the final t481 network is 25 2-input AND/OR
  // gates (50 literals) when each XOR costs three gates.
  Network net;
  std::vector<NodeId> v;
  for (int i = 0; i < 16; ++i) v.push_back(net.add_pi());
  const auto nv = [&](int i) { return net.add_not(v[static_cast<std::size_t>(i)]); };
  const auto pv = [&](int i) { return v[static_cast<std::size_t>(i)]; };
  const NodeId t1 = net.add_xor(net.add_and(nv(0), pv(1)), net.add_and(pv(2), nv(3)));
  const NodeId t2 = net.add_xor(net.add_and(nv(4), pv(5)), net.add_or(nv(6), pv(7)));
  const NodeId t3 = net.add_xor(net.add_or(pv(8), nv(9)), net.add_and(pv(10), nv(11)));
  const NodeId t4 = net.add_xor(net.add_and(nv(12), pv(13)), net.add_and(pv(14), nv(15)));
  net.add_po(net.add_xor(net.add_and(t1, t2), net.add_and(t3, t4)));
  const auto s = network_stats(net);
  EXPECT_EQ(s.gates2, 25u);
  EXPECT_EQ(s.lits, 50u);
}

TEST(Io, BlifContainsStructure) {
  const Network net = full_adder_net();
  const std::string blif = write_blif_string(net, "fa");
  EXPECT_NE(blif.find(".model fa"), std::string::npos);
  EXPECT_NE(blif.find(".inputs a b c"), std::string::npos);
  EXPECT_NE(blif.find(".outputs sum cout"), std::string::npos);
  EXPECT_NE(blif.find("01 1"), std::string::npos); // an XOR cover row
  EXPECT_NE(blif.find(".end"), std::string::npos);
}

TEST(Io, DotContainsNodes) {
  const std::string dot = to_dot(full_adder_net(), "fa");
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("xor"), std::string::npos);
}

} // namespace
} // namespace rmsyn
