// ResourceGovernor unit coverage plus end-to-end degradation-ladder and
// fault-injection runs through synthesize / baseline_synthesize / run_flow.
#include "util/governor.hpp"

#include <gtest/gtest.h>

#include <set>

#include "baseline/script.hpp"
#include "benchgen/spec.hpp"
#include "core/synth.hpp"
#include "equiv/equiv.hpp"
#include "flow/flow.hpp"
#include "network/transform.hpp"

namespace rmsyn {
namespace {

// Drives poll() until it reports exhaustion or `max` steps pass. The wall
// clock and the step budget are only consulted every kCheckInterval polls,
// so a trip is guaranteed to surface within one interval.
bool poll_until_trip(ResourceGovernor& gov,
                     uint64_t max = 4 * ResourceGovernor::kCheckInterval) {
  for (uint64_t i = 0; i < max; ++i)
    if (!gov.poll()) return true;
  return false;
}

TEST(Governor, UnlimitedNeverTrips) {
  ResourceGovernor gov; // all limits off
  for (int i = 0; i < 10000; ++i) EXPECT_TRUE(gov.poll());
  EXPECT_FALSE(gov.exhausted());
  EXPECT_EQ(gov.trip_kind(), TripKind::None);
  EXPECT_TRUE(ResourceLimits{}.unlimited());
}

TEST(Governor, StepLimitTripsWithinOneCheckInterval) {
  ResourceLimits lim;
  lim.step_limit = 1;
  ResourceGovernor gov(lim);
  EXPECT_FALSE(lim.unlimited());
  uint64_t granted = 0;
  while (gov.poll()) ++granted;
  // Cheap polls pass until the next interval boundary forces the check.
  EXPECT_LT(granted, ResourceGovernor::kCheckInterval);
  EXPECT_TRUE(gov.exhausted());
  EXPECT_EQ(gov.trip_kind(), TripKind::StepLimit);
  EXPECT_EQ(gov.trip_reason(), "step budget exhausted");
  // Once tripped, every poll is refused.
  EXPECT_FALSE(gov.poll());
}

TEST(Governor, DeadlineTrips) {
  ResourceLimits lim;
  lim.deadline_seconds = 1e-9; // already elapsed by the first slow poll
  ResourceGovernor gov(lim);
  EXPECT_TRUE(poll_until_trip(gov));
  EXPECT_EQ(gov.trip_kind(), TripKind::Deadline);
}

TEST(Governor, CancelIsObservedAtNextCheck) {
  ResourceGovernor gov(ResourceLimits{});
  EXPECT_TRUE(gov.poll());
  gov.cancel();
  EXPECT_TRUE(poll_until_trip(gov));
  EXPECT_EQ(gov.trip_kind(), TripKind::Cancelled);
}

TEST(Governor, NodeLimitTripsImmediately) {
  ResourceLimits lim;
  lim.node_limit = 100;
  ResourceGovernor gov(lim);
  EXPECT_TRUE(gov.note_nodes(100)); // at the limit: fine
  EXPECT_TRUE(gov.poll());
  EXPECT_FALSE(gov.note_nodes(101)); // over: trips with no poll needed
  EXPECT_TRUE(gov.exhausted());
  EXPECT_FALSE(gov.poll());
  EXPECT_EQ(gov.trip_kind(), TripKind::NodeLimit);
}

TEST(Governor, AllocationFaultFiresOnExactNth) {
  ResourceLimits lim;
  lim.faults.fail_at_allocation = 5;
  ResourceGovernor gov(lim);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(gov.count_allocation());
  EXPECT_FALSE(gov.count_allocation()); // the 5th
  EXPECT_EQ(gov.trip_kind(), TripKind::FaultInjected);
  EXPECT_NE(gov.trip_reason().find("allocation"), std::string::npos);
}

TEST(Governor, StageFaultTripsOnNamedStageAndRecordsIt) {
  ResourceLimits lim;
  lim.faults.trip_at_stage = "ofdd-build";
  ResourceGovernor gov(lim);
  {
    ResourceGovernor::StageScope outer(&gov, "polarity-search");
    EXPECT_EQ(gov.current_stage(), "polarity-search");
    EXPECT_FALSE(gov.exhausted());
    {
      ResourceGovernor::StageScope inner(&gov, "ofdd-build");
      EXPECT_TRUE(gov.exhausted());
      EXPECT_EQ(gov.current_stage(), "ofdd-build");
    }
    EXPECT_EQ(gov.current_stage(), "polarity-search");
  }
  EXPECT_EQ(gov.current_stage(), "");
  EXPECT_EQ(gov.trip_kind(), TripKind::FaultInjected);
  EXPECT_EQ(gov.trip_stage(), "ofdd-build");
}

TEST(Governor, StageScopeIsNullSafe) {
  ResourceGovernor::StageScope a(nullptr, "anything");
  ResourceGovernor::StageScope b(nullptr, "nested");
  SUCCEED();
}

TEST(Governor, CacheOverflowFaultIsAdvertised) {
  ResourceLimits lim;
  lim.faults.overflow_computed_table = true;
  EXPECT_FALSE(lim.unlimited());
  ResourceGovernor gov(lim);
  EXPECT_TRUE(gov.cache_overflow_fault());
  EXPECT_TRUE(gov.poll()); // the fault degrades the cache, never trips
  EXPECT_FALSE(ResourceGovernor().cache_overflow_fault());
}

TEST(Governor, FallbackReArmsAndPreservesFirstTrip) {
  ResourceLimits lim;
  lim.step_limit = 1;
  ResourceGovernor gov(lim);
  // Untripped fallback is a free no-op.
  EXPECT_TRUE(gov.grant_fallback());
  EXPECT_EQ(gov.fallbacks_granted(), 0);

  ASSERT_TRUE(poll_until_trip(gov));
  EXPECT_EQ(gov.trip_kind(), TripKind::StepLimit);
  ASSERT_TRUE(gov.grant_fallback());
  EXPECT_EQ(gov.fallbacks_granted(), 1);
  EXPECT_FALSE(gov.exhausted());
  EXPECT_TRUE(gov.poll()); // fresh slice: budget is live again

  // A second trip of a different kind must not overwrite the first record.
  gov.cancel();
  ASSERT_TRUE(poll_until_trip(gov));
  EXPECT_EQ(gov.trip_kind(), TripKind::StepLimit);
  EXPECT_EQ(gov.trip_reason(), "step budget exhausted");
}

TEST(Governor, FallbackAllowanceIsBounded) {
  ResourceLimits lim;
  lim.step_limit = 1;
  ResourceGovernor gov(lim);
  for (int i = 0; i < ResourceGovernor::kMaxFallbacks; ++i) {
    ASSERT_TRUE(poll_until_trip(gov)) << "round " << i;
    ASSERT_TRUE(gov.grant_fallback()) << "round " << i;
  }
  ASSERT_TRUE(poll_until_trip(gov));
  EXPECT_FALSE(gov.grant_fallback()); // allowance spent: ladder must stop
  EXPECT_EQ(gov.fallbacks_granted(), ResourceGovernor::kMaxFallbacks);
}

TEST(FlowStatusTest, FormattingAndOrdering) {
  EXPECT_EQ(FlowStatus::ok().to_string(), "ok");
  EXPECT_EQ(FlowStatus::degraded("resub").to_string(), "degraded:resub");
  EXPECT_EQ(FlowStatus::failed("spec-bdd", "deadline").to_string(),
            "failed:deadline");
  EXPECT_EQ(FlowStatus::failed("spec-bdd", "").to_string(), "failed:spec-bdd");

  const FlowStatus ok = FlowStatus::ok();
  const FlowStatus deg = FlowStatus::degraded("verify");
  const FlowStatus bad = FlowStatus::failed("x", "y");
  EXPECT_TRUE(ok.is_ok());
  EXPECT_TRUE(deg.is_degraded());
  EXPECT_TRUE(bad.is_failed());
  EXPECT_LT(ok.severity(), deg.severity());
  EXPECT_LT(deg.severity(), bad.severity());
  EXPECT_EQ(worse(ok, deg).to_string(), deg.to_string());
  EXPECT_EQ(worse(bad, deg).to_string(), bad.to_string());
  EXPECT_EQ(worse(ok, ok).to_string(), "ok");

  EXPECT_STREQ(to_string(TripKind::None), "none");
  EXPECT_STREQ(to_string(TripKind::Deadline), "deadline");
  EXPECT_STREQ(to_string(TripKind::NodeLimit), "node-limit");
  EXPECT_STREQ(to_string(TripKind::StepLimit), "step-limit");
  EXPECT_STREQ(to_string(TripKind::Cancelled), "cancelled");
  EXPECT_STREQ(to_string(TripKind::FaultInjected), "fault-injected");
}

// --- end-to-end: the degradation ladder --------------------------------------

// Verified-or-absent: whatever a governed flow returns must be equivalent
// to the spec — a failed flow hands back the spec itself, which trivially is.
void expect_equivalent(const Network& spec, const Network& out) {
  const auto check = check_equivalence(spec, out); // ungoverned: always decides
  EXPECT_TRUE(check.equivalent) << check.reason;
}

TEST(GovernedSynth, UnlimitedGovernorMatchesUngovernedResult) {
  const Benchmark bench = make_benchmark("rd53");
  SynthReport plain, governed;
  const Network a = synthesize(bench.spec, {}, &plain);
  SynthOptions opt;
  ResourceGovernor gov; // attached but unlimited
  opt.governor = &gov;
  const Network b = synthesize(bench.spec, opt, &governed);
  EXPECT_TRUE(plain.status.is_ok());
  EXPECT_TRUE(governed.status.is_ok());
  EXPECT_EQ(governed.ladder_descents, 0u);
  EXPECT_EQ(network_stats(a).lits, network_stats(b).lits);
  expect_equivalent(bench.spec, b);
}

TEST(GovernedSynth, StageFaultInSpecBddFailsEveryRungToPassthrough) {
  const Benchmark bench = make_benchmark("rd53");
  SynthOptions opt;
  ResourceLimits lim;
  lim.faults.trip_at_stage = "spec-bdd"; // every rung starts here → all die
  ResourceGovernor gov(lim);
  opt.governor = &gov;
  SynthReport rep;
  const Network out = synthesize(bench.spec, opt, &rep);
  EXPECT_TRUE(rep.status.is_failed()) << rep.status.to_string();
  EXPECT_EQ(rep.status.stage, "spec-bdd");
  EXPECT_NE(rep.status.reason.find("fault-injected"), std::string::npos)
      << rep.status.reason;
  EXPECT_EQ(rep.ladder_descents, 3u); // Full, FixedPolarity, OfddOnly all died
  expect_equivalent(bench.spec, out); // passthrough of the spec
}

TEST(GovernedSynth, StageFaultInRedundancyDegradesButStaysCorrect) {
  const Benchmark bench = make_benchmark("rd53");
  SynthOptions opt;
  ResourceLimits lim;
  lim.faults.trip_at_stage = "redundancy";
  ResourceGovernor gov(lim);
  opt.governor = &gov;
  SynthReport rep;
  const Network out = synthesize(bench.spec, opt, &rep);
  EXPECT_TRUE(rep.status.is_degraded()) << rep.status.to_string();
  EXPECT_EQ(rep.status.stage, "redundancy");
  expect_equivalent(bench.spec, out);
}

TEST(GovernedSynth, StageFaultInResubDegradesButStaysCorrect) {
  const Benchmark bench = make_benchmark("rd53");
  SynthOptions opt;
  ResourceLimits lim;
  lim.faults.trip_at_stage = "resub";
  ResourceGovernor gov(lim);
  opt.governor = &gov;
  SynthReport rep;
  const Network out = synthesize(bench.spec, opt, &rep);
  EXPECT_FALSE(rep.status.is_failed()) << rep.status.to_string();
  expect_equivalent(bench.spec, out);
}

TEST(GovernedSynth, AllocationFaultProducesVerifiedOrPassthroughResult) {
  const Benchmark bench = make_benchmark("rd53");
  for (const uint64_t nth : {1u, 50u, 2000u}) {
    SynthOptions opt;
    ResourceLimits lim;
    lim.faults.fail_at_allocation = nth;
    ResourceGovernor gov(lim);
    opt.governor = &gov;
    SynthReport rep;
    const Network out = synthesize(bench.spec, opt, &rep);
    // The fault is one-shot, so later rungs can complete: any status is
    // permitted, the result must always be equivalent.
    expect_equivalent(bench.spec, out);
    if (rep.status.is_ok()) {
      EXPECT_EQ(gov.trip_kind(), TripKind::None);
    }
  }
}

TEST(GovernedSynth, CacheOverflowFaultOnlySlowsTheFlow) {
  const Benchmark bench = make_benchmark("rd53");
  SynthOptions opt;
  ResourceLimits lim;
  lim.faults.overflow_computed_table = true;
  ResourceGovernor gov(lim);
  opt.governor = &gov;
  SynthReport rep;
  const Network out = synthesize(bench.spec, opt, &rep);
  EXPECT_TRUE(rep.status.is_ok()) << rep.status.to_string();
  expect_equivalent(bench.spec, out);
}

// Sweeping the step budget from starvation to plenty must walk every rung
// of the ladder: failed at the bottom, ok at the top, degraded in between —
// and every returned network equivalent to the spec regardless.
TEST(GovernedSynth, StepBudgetSweepCoversTheLadder) {
  const Benchmark bench = make_benchmark("z4ml");
  std::set<FlowOutcome> outcomes;
  std::set<std::size_t> descents;
  for (uint64_t budget = ResourceGovernor::kCheckInterval;
       budget <= (uint64_t{1} << 26); budget *= 8) {
    SynthOptions opt;
    ResourceLimits lim;
    lim.step_limit = budget;
    ResourceGovernor gov(lim);
    opt.governor = &gov;
    SynthReport rep;
    const Network out = synthesize(bench.spec, opt, &rep);
    outcomes.insert(rep.status.outcome);
    descents.insert(rep.ladder_descents);
    expect_equivalent(bench.spec, out);
  }
  EXPECT_TRUE(outcomes.count(FlowOutcome::Failed)); // starved budget
  EXPECT_TRUE(outcomes.count(FlowOutcome::Ok));     // ample budget
  EXPECT_TRUE(descents.count(0u));
  EXPECT_GT(descents.size(), 1u); // at least one run actually descended
}

// --- end-to-end: the baseline script -----------------------------------------

TEST(GovernedBaseline, StageFaultDegradesButPrefixStaysEquivalent) {
  const Benchmark bench = make_benchmark("rd53");
  for (const char* stage : {"baseline-simplify", "baseline-extract",
                            "baseline-redundancy"}) {
    BaselineOptions opt;
    ResourceLimits lim;
    lim.faults.trip_at_stage = stage;
    ResourceGovernor gov(lim);
    opt.governor = &gov;
    BaselineReport rep;
    const Network out = baseline_synthesize(bench.spec, opt, &rep);
    EXPECT_TRUE(rep.status.is_degraded()) << stage << ": "
                                          << rep.status.to_string();
    EXPECT_EQ(rep.status.stage, stage);
    expect_equivalent(bench.spec, out);
  }
}

TEST(GovernedBaseline, TinyStepBudgetStillReturnsEquivalentNetwork) {
  const Benchmark bench = make_benchmark("z4ml");
  BaselineOptions opt;
  ResourceLimits lim;
  lim.step_limit = ResourceGovernor::kCheckInterval;
  ResourceGovernor gov(lim);
  opt.governor = &gov;
  BaselineReport rep;
  const Network out = baseline_synthesize(bench.spec, opt, &rep);
  EXPECT_FALSE(rep.status.is_failed()); // the script cannot fail
  expect_equivalent(bench.spec, out);
}

// --- end-to-end: run_flow (satellite: no all-or-nothing) ---------------------

TEST(GovernedFlow, OneFlowFailingKeepsTheOtherFlowsColumns) {
  FlowOptions opt;
  // Kills only the FPRM flow: the baseline never enters a "spec-bdd" stage.
  opt.limits.faults.trip_at_stage = "spec-bdd";
  const FlowRow row = run_flow("rd53", opt);
  EXPECT_TRUE(row.ours_status.is_failed()) << row.ours_status.to_string();
  EXPECT_TRUE(row.base_status.is_ok()) << row.base_status.to_string();
  EXPECT_GT(row.base_lits, 0u);
  // Bottom rung of the ladder: the delivered network is the baseline's.
  EXPECT_GT(row.ours_lits, 0u);
  EXPECT_TRUE(row.worst_status().is_failed());
}

TEST(GovernedFlow, PerFlowGovernorsAreIndependent) {
  FlowOptions opt;
  opt.limits.step_limit = uint64_t{1} << 22; // plenty for rd53, per flow
  const FlowRow row = run_flow("rd53", opt);
  // Neither flow inherits the other's spent budget.
  EXPECT_FALSE(row.ours_status.is_failed()) << row.ours_status.to_string();
  EXPECT_FALSE(row.base_status.is_failed()) << row.base_status.to_string();
  EXPECT_GT(row.ours_lits, 0u);
  EXPECT_GT(row.base_lits, 0u);
}

TEST(GovernedFlow, UnlimitedLimitsReportOkEverywhere) {
  const FlowRow row = run_flow("majority", FlowOptions{});
  EXPECT_TRUE(row.ours_status.is_ok()) << row.ours_status.to_string();
  EXPECT_TRUE(row.base_status.is_ok()) << row.base_status.to_string();
  EXPECT_TRUE(row.worst_status().is_ok());
}

} // namespace
} // namespace rmsyn
