// Full-flow tests: Sections 2-4 end to end. Every synthesized circuit is
// verified against its specification (the flow also self-verifies), and the
// headline examples of the paper are checked for size.
#include "core/synth.hpp"

#include <gtest/gtest.h>

#include "benchgen/spec.hpp"
#include "equiv/equiv.hpp"
#include "network/stats.hpp"
#include "util/rng.hpp"

namespace rmsyn {
namespace {

class SynthCircuit : public ::testing::TestWithParam<const char*> {};

TEST_P(SynthCircuit, EquivalentAndReported) {
  const Benchmark bench = make_benchmark(GetParam());
  SynthReport rep;
  const Network out = synthesize(bench.spec, {}, &rep);
  const auto check = check_equivalence(bench.spec, out);
  EXPECT_TRUE(check.equivalent) << check.reason;
  EXPECT_EQ(out.pi_count(), bench.spec.pi_count());
  EXPECT_EQ(out.po_count(), bench.spec.po_count());
  EXPECT_EQ(rep.forms.size(), bench.spec.po_count());
  EXPECT_GT(rep.stats.lits, 0u);
  EXPECT_EQ(rep.stats.lits, network_stats(out).lits);
}

INSTANTIATE_TEST_SUITE_P(SmallCircuits, SynthCircuit,
                         ::testing::Values("z4ml", "adr4", "rd53", "rd73",
                                           "majority", "t481", "cm82a", "f2",
                                           "bcd-div3", "xor10", "parity",
                                           "squar5", "cm85a", "tcon", "pcle",
                                           "9sym", "co14", "cmb"));

/// Every Table-2 circuit — including the wide ones — must synthesize and
/// verify. This is the broadest integration property in the suite.
class SynthAll : public ::testing::TestWithParam<std::string> {};

TEST_P(SynthAll, WholeRegistrySynthesizesAndVerifies) {
  const Benchmark bench = make_benchmark(GetParam());
  // `verify` is on by default and throws on mismatch.
  const Network out = synthesize(bench.spec, {}, nullptr);
  EXPECT_EQ(out.pi_count(), bench.spec.pi_count());
  EXPECT_EQ(out.po_count(), bench.spec.po_count());
}

INSTANTIATE_TEST_SUITE_P(Registry, SynthAll,
                         ::testing::ValuesIn(benchmark_names()));

TEST(Synth, T481MatchesPaperScale) {
  // Paper: 25 two-input gates / 50 lits after redundancy removal. Allow a
  // small margin; the key claim is the two-orders-of-magnitude gap to the
  // SOP flow (which lands in the hundreds).
  SynthReport rep;
  const Network out = synthesize(make_benchmark("t481").spec, {}, &rep);
  EXPECT_LE(rep.stats.gates2, 30u);
  // FPRM compactness: 16 cubes in the paper's polarity; polarity search may
  // find fewer, never more.
  ASSERT_EQ(rep.fprm_cube_counts.size(), 1u);
  EXPECT_LE(rep.fprm_cube_counts[0], 16u);
  (void)out;
}

TEST(Synth, Z4mlMatchesPaperScale) {
  // Paper: 21 2-input gates (42 lits); SIS: 24 (48). Our flow must land in
  // the same region — well under the ~59-prime SOP direct form.
  SynthReport rep;
  (void)synthesize(make_benchmark("z4ml").spec, {}, &rep);
  EXPECT_LE(rep.stats.gates2, 30u);
  // z4ml FPRM: 32 cubes total over the 4 outputs (paper, Section 1).
  std::size_t total = 0;
  for (const auto c : rep.fprm_cube_counts) total += c;
  EXPECT_LE(total, 32u);
  EXPECT_GE(total, 20u);
}

TEST(Synth, Z4mlFprmCubesMatchPaperCounts) {
  // Under all-positive polarity the 3-bit adder outputs have 3/5/9/15
  // cubes (sum 32), every one of them prime (Section 2).
  const Benchmark bench = make_benchmark("z4ml");
  SynthOptions opt;
  opt.polarity.exhaustive_limit = 0; // force PPRM (greedy starts positive)
  opt.polarity.greedy_passes = 0;
  SynthReport rep;
  (void)synthesize(bench.spec, opt, &rep);
  std::vector<std::size_t> counts = rep.fprm_cube_counts;
  std::sort(counts.begin(), counts.end());
  EXPECT_EQ(counts, (std::vector<std::size_t>{3, 5, 9, 15}));
  for (const auto& form : rep.forms) {
    if (form.cubes.empty()) continue;
    const auto primes = prime_flags(form);
    for (const bool p : primes) EXPECT_TRUE(p) << "adder cubes are all prime";
  }
}

TEST(Synth, MethodsBothWork) {
  for (const auto method : {FactorMethod::Cubes, FactorMethod::Ofdd}) {
    SynthOptions opt;
    opt.method = method;
    const Benchmark bench = make_benchmark("rd53");
    const Network out = synthesize(bench.spec, opt, nullptr);
    EXPECT_TRUE(check_equivalence(bench.spec, out).equivalent);
  }
}

TEST(Synth, RedundancyRemovalReducesOrKeeps) {
  SynthOptions with, without;
  without.run_redundancy_removal = false;
  const Benchmark bench = make_benchmark("adr4");
  SynthReport r1, r2;
  (void)synthesize(bench.spec, with, &r1);
  (void)synthesize(bench.spec, without, &r2);
  EXPECT_LE(r1.stats.gates2, r2.stats.gates2);
}

TEST(Synth, ConstantAndTrivialOutputs) {
  Network spec;
  const NodeId a = spec.add_pi();
  const NodeId b = spec.add_pi();
  spec.add_po(Network::kConst1, "one");
  spec.add_po(spec.add_and(a, spec.add_not(a)), "zero");
  spec.add_po(b, "wire");
  const Network out = synthesize(spec, {}, nullptr);
  EXPECT_TRUE(check_equivalence(spec, out).equivalent);
  EXPECT_EQ(network_stats(out).gates2, 0u);
}

TEST(Synth, RandomMultiOutputFunctions) {
  Rng rng(2026);
  for (int iter = 0; iter < 6; ++iter) {
    const int n = 4 + static_cast<int>(rng.below(3));
    std::vector<TruthTable> tts;
    for (int o = 0; o < 3; ++o) {
      TruthTable f(n);
      for (uint64_t m = 0; m < f.size(); ++m)
        if (rng.flip()) f.set(m);
      tts.push_back(f);
    }
    const Network spec = network_from_tts(tts);
    const Network out = synthesize(spec, {}, nullptr);
    const auto check = check_against_tts(out, tts);
    EXPECT_TRUE(check.equivalent) << check.reason;
  }
}

TEST(Synth, ReportsRuntime) {
  SynthReport rep;
  (void)synthesize(make_benchmark("rd53").spec, {}, &rep);
  EXPECT_GT(rep.seconds, 0.0);
  EXPECT_LT(rep.seconds, 60.0);
}

} // namespace
} // namespace rmsyn
