# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "/root/repo/build/tools/rmsyn_cli" "list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_synth "/root/repo/build/tools/rmsyn_cli" "synth" "z4ml")
set_tests_properties(cli_synth PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_synth_methods "/root/repo/build/tools/rmsyn_cli" "synth" "rd53" "--method" "cubes")
set_tests_properties(cli_synth_methods PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_baseline "/root/repo/build/tools/rmsyn_cli" "baseline" "majority")
set_tests_properties(cli_baseline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_map "/root/repo/build/tools/rmsyn_cli" "map" "z4ml")
set_tests_properties(cli_map PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_verify "/root/repo/build/tools/rmsyn_cli" "verify" "rd53" "rd53")
set_tests_properties(cli_verify PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_power "/root/repo/build/tools/rmsyn_cli" "power" "majority")
set_tests_properties(cli_power PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_atpg "/root/repo/build/tools/rmsyn_cli" "atpg" "f2")
set_tests_properties(cli_atpg PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_table2_row "/root/repo/build/tools/rmsyn_cli" "table2" "majority")
set_tests_properties(cli_table2_row PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_command "/root/repo/build/tools/rmsyn_cli" "frobnicate")
set_tests_properties(cli_bad_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_synth_blif_file "/root/repo/build/tools/rmsyn_cli" "synth" "/root/repo/data/fulladder.blif")
set_tests_properties(cli_synth_blif_file PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_synth_pla_file "/root/repo/build/tools/rmsyn_cli" "synth" "/root/repo/data/rd53.pla")
set_tests_properties(cli_synth_pla_file PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_verify_pla_vs_builtin "/root/repo/build/tools/rmsyn_cli" "verify" "/root/repo/data/rd53.pla" "rd53")
set_tests_properties(cli_verify_pla_vs_builtin PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_dump "/root/repo/build/tools/rmsyn_cli" "dump" "z4ml")
set_tests_properties(cli_dump PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
