file(REMOVE_RECURSE
  "CMakeFiles/rmsyn_cli.dir/rmsyn_cli.cpp.o"
  "CMakeFiles/rmsyn_cli.dir/rmsyn_cli.cpp.o.d"
  "rmsyn_cli"
  "rmsyn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmsyn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
