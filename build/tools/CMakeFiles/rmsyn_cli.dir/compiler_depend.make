# Empty compiler generated dependencies file for rmsyn_cli.
# This may be replaced when dependencies are built.
