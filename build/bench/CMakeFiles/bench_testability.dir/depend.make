# Empty dependencies file for bench_testability.
# This may be replaced when dependencies are built.
