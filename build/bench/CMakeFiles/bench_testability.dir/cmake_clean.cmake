file(REMOVE_RECURSE
  "CMakeFiles/bench_testability.dir/bench_testability.cpp.o"
  "CMakeFiles/bench_testability.dir/bench_testability.cpp.o.d"
  "bench_testability"
  "bench_testability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_testability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
