# Empty compiler generated dependencies file for bench_extension_kfdd.
# This may be replaced when dependencies are built.
