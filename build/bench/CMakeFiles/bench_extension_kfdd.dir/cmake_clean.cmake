file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_kfdd.dir/bench_extension_kfdd.cpp.o"
  "CMakeFiles/bench_extension_kfdd.dir/bench_extension_kfdd.cpp.o.d"
  "bench_extension_kfdd"
  "bench_extension_kfdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_kfdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
