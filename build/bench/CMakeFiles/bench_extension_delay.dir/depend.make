# Empty dependencies file for bench_extension_delay.
# This may be replaced when dependencies are built.
