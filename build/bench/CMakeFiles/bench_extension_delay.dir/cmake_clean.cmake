file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_delay.dir/bench_extension_delay.cpp.o"
  "CMakeFiles/bench_extension_delay.dir/bench_extension_delay.cpp.o.d"
  "bench_extension_delay"
  "bench_extension_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
