file(REMOVE_RECURSE
  "CMakeFiles/bench_example1_t481.dir/bench_example1_t481.cpp.o"
  "CMakeFiles/bench_example1_t481.dir/bench_example1_t481.cpp.o.d"
  "bench_example1_t481"
  "bench_example1_t481.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example1_t481.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
