# Empty compiler generated dependencies file for bench_example1_t481.
# This may be replaced when dependencies are built.
