# Empty dependencies file for bench_example2_z4ml.
# This may be replaced when dependencies are built.
