file(REMOVE_RECURSE
  "CMakeFiles/bench_example2_z4ml.dir/bench_example2_z4ml.cpp.o"
  "CMakeFiles/bench_example2_z4ml.dir/bench_example2_z4ml.cpp.o.d"
  "bench_example2_z4ml"
  "bench_example2_z4ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example2_z4ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
