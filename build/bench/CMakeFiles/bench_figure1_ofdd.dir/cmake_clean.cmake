file(REMOVE_RECURSE
  "CMakeFiles/bench_figure1_ofdd.dir/bench_figure1_ofdd.cpp.o"
  "CMakeFiles/bench_figure1_ofdd.dir/bench_figure1_ofdd.cpp.o.d"
  "bench_figure1_ofdd"
  "bench_figure1_ofdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure1_ofdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
