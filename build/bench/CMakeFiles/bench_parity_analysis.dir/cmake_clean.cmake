file(REMOVE_RECURSE
  "CMakeFiles/bench_parity_analysis.dir/bench_parity_analysis.cpp.o"
  "CMakeFiles/bench_parity_analysis.dir/bench_parity_analysis.cpp.o.d"
  "bench_parity_analysis"
  "bench_parity_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parity_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
