# Empty dependencies file for bench_parity_analysis.
# This may be replaced when dependencies are built.
