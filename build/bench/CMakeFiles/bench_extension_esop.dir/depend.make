# Empty dependencies file for bench_extension_esop.
# This may be replaced when dependencies are built.
