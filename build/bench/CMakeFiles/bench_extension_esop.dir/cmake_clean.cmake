file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_esop.dir/bench_extension_esop.cpp.o"
  "CMakeFiles/bench_extension_esop.dir/bench_extension_esop.cpp.o.d"
  "bench_extension_esop"
  "bench_extension_esop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_esop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
