file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_mapped.dir/bench_table2_mapped.cpp.o"
  "CMakeFiles/bench_table2_mapped.dir/bench_table2_mapped.cpp.o.d"
  "bench_table2_mapped"
  "bench_table2_mapped.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_mapped.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
