# Empty dependencies file for bench_table2_mapped.
# This may be replaced when dependencies are built.
