file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_premap.dir/bench_table2_premap.cpp.o"
  "CMakeFiles/bench_table2_premap.dir/bench_table2_premap.cpp.o.d"
  "bench_table2_premap"
  "bench_table2_premap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_premap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
