file(REMOVE_RECURSE
  "librmsyn_fdd.a"
)
