# Empty compiler generated dependencies file for rmsyn_fdd.
# This may be replaced when dependencies are built.
