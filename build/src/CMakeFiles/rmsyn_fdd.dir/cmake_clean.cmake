file(REMOVE_RECURSE
  "CMakeFiles/rmsyn_fdd.dir/fdd/esop.cpp.o"
  "CMakeFiles/rmsyn_fdd.dir/fdd/esop.cpp.o.d"
  "CMakeFiles/rmsyn_fdd.dir/fdd/fprm.cpp.o"
  "CMakeFiles/rmsyn_fdd.dir/fdd/fprm.cpp.o.d"
  "CMakeFiles/rmsyn_fdd.dir/fdd/kfdd.cpp.o"
  "CMakeFiles/rmsyn_fdd.dir/fdd/kfdd.cpp.o.d"
  "librmsyn_fdd.a"
  "librmsyn_fdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmsyn_fdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
