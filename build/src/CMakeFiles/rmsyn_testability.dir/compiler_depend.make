# Empty compiler generated dependencies file for rmsyn_testability.
# This may be replaced when dependencies are built.
