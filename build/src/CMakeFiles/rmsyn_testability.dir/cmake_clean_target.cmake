file(REMOVE_RECURSE
  "librmsyn_testability.a"
)
