file(REMOVE_RECURSE
  "CMakeFiles/rmsyn_testability.dir/testability/faults.cpp.o"
  "CMakeFiles/rmsyn_testability.dir/testability/faults.cpp.o.d"
  "librmsyn_testability.a"
  "librmsyn_testability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmsyn_testability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
