file(REMOVE_RECURSE
  "CMakeFiles/rmsyn_sop.dir/sop/cover.cpp.o"
  "CMakeFiles/rmsyn_sop.dir/sop/cover.cpp.o.d"
  "CMakeFiles/rmsyn_sop.dir/sop/cube.cpp.o"
  "CMakeFiles/rmsyn_sop.dir/sop/cube.cpp.o.d"
  "CMakeFiles/rmsyn_sop.dir/sop/minimize.cpp.o"
  "CMakeFiles/rmsyn_sop.dir/sop/minimize.cpp.o.d"
  "CMakeFiles/rmsyn_sop.dir/sop/pla.cpp.o"
  "CMakeFiles/rmsyn_sop.dir/sop/pla.cpp.o.d"
  "librmsyn_sop.a"
  "librmsyn_sop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmsyn_sop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
