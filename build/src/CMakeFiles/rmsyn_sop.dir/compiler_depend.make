# Empty compiler generated dependencies file for rmsyn_sop.
# This may be replaced when dependencies are built.
