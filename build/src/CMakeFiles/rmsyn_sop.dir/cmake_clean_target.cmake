file(REMOVE_RECURSE
  "librmsyn_sop.a"
)
