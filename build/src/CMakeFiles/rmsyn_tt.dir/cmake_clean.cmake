file(REMOVE_RECURSE
  "CMakeFiles/rmsyn_tt.dir/tt/truth_table.cpp.o"
  "CMakeFiles/rmsyn_tt.dir/tt/truth_table.cpp.o.d"
  "librmsyn_tt.a"
  "librmsyn_tt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmsyn_tt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
