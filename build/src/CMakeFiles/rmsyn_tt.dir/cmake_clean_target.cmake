file(REMOVE_RECURSE
  "librmsyn_tt.a"
)
