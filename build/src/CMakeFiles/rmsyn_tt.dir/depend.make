# Empty dependencies file for rmsyn_tt.
# This may be replaced when dependencies are built.
