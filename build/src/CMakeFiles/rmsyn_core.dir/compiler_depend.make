# Empty compiler generated dependencies file for rmsyn_core.
# This may be replaced when dependencies are built.
