file(REMOVE_RECURSE
  "librmsyn_core.a"
)
