
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/factor_cubes.cpp" "src/CMakeFiles/rmsyn_core.dir/core/factor_cubes.cpp.o" "gcc" "src/CMakeFiles/rmsyn_core.dir/core/factor_cubes.cpp.o.d"
  "/root/repo/src/core/factor_ofdd.cpp" "src/CMakeFiles/rmsyn_core.dir/core/factor_ofdd.cpp.o" "gcc" "src/CMakeFiles/rmsyn_core.dir/core/factor_ofdd.cpp.o.d"
  "/root/repo/src/core/parity_analysis.cpp" "src/CMakeFiles/rmsyn_core.dir/core/parity_analysis.cpp.o" "gcc" "src/CMakeFiles/rmsyn_core.dir/core/parity_analysis.cpp.o.d"
  "/root/repo/src/core/redundancy.cpp" "src/CMakeFiles/rmsyn_core.dir/core/redundancy.cpp.o" "gcc" "src/CMakeFiles/rmsyn_core.dir/core/redundancy.cpp.o.d"
  "/root/repo/src/core/resub.cpp" "src/CMakeFiles/rmsyn_core.dir/core/resub.cpp.o" "gcc" "src/CMakeFiles/rmsyn_core.dir/core/resub.cpp.o.d"
  "/root/repo/src/core/synth.cpp" "src/CMakeFiles/rmsyn_core.dir/core/synth.cpp.o" "gcc" "src/CMakeFiles/rmsyn_core.dir/core/synth.cpp.o.d"
  "/root/repo/src/core/xor_expr.cpp" "src/CMakeFiles/rmsyn_core.dir/core/xor_expr.cpp.o" "gcc" "src/CMakeFiles/rmsyn_core.dir/core/xor_expr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rmsyn_fdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_network.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_equiv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_sop.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
