file(REMOVE_RECURSE
  "CMakeFiles/rmsyn_core.dir/core/factor_cubes.cpp.o"
  "CMakeFiles/rmsyn_core.dir/core/factor_cubes.cpp.o.d"
  "CMakeFiles/rmsyn_core.dir/core/factor_ofdd.cpp.o"
  "CMakeFiles/rmsyn_core.dir/core/factor_ofdd.cpp.o.d"
  "CMakeFiles/rmsyn_core.dir/core/parity_analysis.cpp.o"
  "CMakeFiles/rmsyn_core.dir/core/parity_analysis.cpp.o.d"
  "CMakeFiles/rmsyn_core.dir/core/redundancy.cpp.o"
  "CMakeFiles/rmsyn_core.dir/core/redundancy.cpp.o.d"
  "CMakeFiles/rmsyn_core.dir/core/resub.cpp.o"
  "CMakeFiles/rmsyn_core.dir/core/resub.cpp.o.d"
  "CMakeFiles/rmsyn_core.dir/core/synth.cpp.o"
  "CMakeFiles/rmsyn_core.dir/core/synth.cpp.o.d"
  "CMakeFiles/rmsyn_core.dir/core/xor_expr.cpp.o"
  "CMakeFiles/rmsyn_core.dir/core/xor_expr.cpp.o.d"
  "librmsyn_core.a"
  "librmsyn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmsyn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
