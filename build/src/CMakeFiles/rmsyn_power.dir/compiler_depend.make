# Empty compiler generated dependencies file for rmsyn_power.
# This may be replaced when dependencies are built.
