file(REMOVE_RECURSE
  "CMakeFiles/rmsyn_power.dir/power/power.cpp.o"
  "CMakeFiles/rmsyn_power.dir/power/power.cpp.o.d"
  "librmsyn_power.a"
  "librmsyn_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmsyn_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
