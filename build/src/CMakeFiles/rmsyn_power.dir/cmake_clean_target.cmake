file(REMOVE_RECURSE
  "librmsyn_power.a"
)
