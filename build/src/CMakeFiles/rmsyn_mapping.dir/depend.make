# Empty dependencies file for rmsyn_mapping.
# This may be replaced when dependencies are built.
