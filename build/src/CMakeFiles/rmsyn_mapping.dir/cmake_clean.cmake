file(REMOVE_RECURSE
  "CMakeFiles/rmsyn_mapping.dir/mapping/genlib.cpp.o"
  "CMakeFiles/rmsyn_mapping.dir/mapping/genlib.cpp.o.d"
  "CMakeFiles/rmsyn_mapping.dir/mapping/mapper.cpp.o"
  "CMakeFiles/rmsyn_mapping.dir/mapping/mapper.cpp.o.d"
  "librmsyn_mapping.a"
  "librmsyn_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmsyn_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
