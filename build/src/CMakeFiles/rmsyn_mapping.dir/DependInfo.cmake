
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/genlib.cpp" "src/CMakeFiles/rmsyn_mapping.dir/mapping/genlib.cpp.o" "gcc" "src/CMakeFiles/rmsyn_mapping.dir/mapping/genlib.cpp.o.d"
  "/root/repo/src/mapping/mapper.cpp" "src/CMakeFiles/rmsyn_mapping.dir/mapping/mapper.cpp.o" "gcc" "src/CMakeFiles/rmsyn_mapping.dir/mapping/mapper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rmsyn_network.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
