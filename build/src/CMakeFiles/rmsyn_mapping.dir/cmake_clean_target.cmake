file(REMOVE_RECURSE
  "librmsyn_mapping.a"
)
