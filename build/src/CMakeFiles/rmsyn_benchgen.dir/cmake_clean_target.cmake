file(REMOVE_RECURSE
  "librmsyn_benchgen.a"
)
