# Empty dependencies file for rmsyn_benchgen.
# This may be replaced when dependencies are built.
