file(REMOVE_RECURSE
  "CMakeFiles/rmsyn_benchgen.dir/benchgen/arith.cpp.o"
  "CMakeFiles/rmsyn_benchgen.dir/benchgen/arith.cpp.o.d"
  "CMakeFiles/rmsyn_benchgen.dir/benchgen/misc.cpp.o"
  "CMakeFiles/rmsyn_benchgen.dir/benchgen/misc.cpp.o.d"
  "CMakeFiles/rmsyn_benchgen.dir/benchgen/registry.cpp.o"
  "CMakeFiles/rmsyn_benchgen.dir/benchgen/registry.cpp.o.d"
  "CMakeFiles/rmsyn_benchgen.dir/benchgen/synthetic.cpp.o"
  "CMakeFiles/rmsyn_benchgen.dir/benchgen/synthetic.cpp.o.d"
  "librmsyn_benchgen.a"
  "librmsyn_benchgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmsyn_benchgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
