file(REMOVE_RECURSE
  "librmsyn_util.a"
)
