file(REMOVE_RECURSE
  "CMakeFiles/rmsyn_util.dir/util/bitvec.cpp.o"
  "CMakeFiles/rmsyn_util.dir/util/bitvec.cpp.o.d"
  "librmsyn_util.a"
  "librmsyn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmsyn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
