# Empty dependencies file for rmsyn_util.
# This may be replaced when dependencies are built.
