file(REMOVE_RECURSE
  "librmsyn_equiv.a"
)
