# Empty dependencies file for rmsyn_equiv.
# This may be replaced when dependencies are built.
