file(REMOVE_RECURSE
  "CMakeFiles/rmsyn_equiv.dir/equiv/equiv.cpp.o"
  "CMakeFiles/rmsyn_equiv.dir/equiv/equiv.cpp.o.d"
  "librmsyn_equiv.a"
  "librmsyn_equiv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmsyn_equiv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
