file(REMOVE_RECURSE
  "CMakeFiles/rmsyn_flow.dir/flow/flow.cpp.o"
  "CMakeFiles/rmsyn_flow.dir/flow/flow.cpp.o.d"
  "librmsyn_flow.a"
  "librmsyn_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmsyn_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
