file(REMOVE_RECURSE
  "librmsyn_flow.a"
)
