# Empty dependencies file for rmsyn_flow.
# This may be replaced when dependencies are built.
