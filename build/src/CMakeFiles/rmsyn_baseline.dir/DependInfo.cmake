
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/divide.cpp" "src/CMakeFiles/rmsyn_baseline.dir/baseline/divide.cpp.o" "gcc" "src/CMakeFiles/rmsyn_baseline.dir/baseline/divide.cpp.o.d"
  "/root/repo/src/baseline/extract.cpp" "src/CMakeFiles/rmsyn_baseline.dir/baseline/extract.cpp.o" "gcc" "src/CMakeFiles/rmsyn_baseline.dir/baseline/extract.cpp.o.d"
  "/root/repo/src/baseline/factor.cpp" "src/CMakeFiles/rmsyn_baseline.dir/baseline/factor.cpp.o" "gcc" "src/CMakeFiles/rmsyn_baseline.dir/baseline/factor.cpp.o.d"
  "/root/repo/src/baseline/kernels.cpp" "src/CMakeFiles/rmsyn_baseline.dir/baseline/kernels.cpp.o" "gcc" "src/CMakeFiles/rmsyn_baseline.dir/baseline/kernels.cpp.o.d"
  "/root/repo/src/baseline/script.cpp" "src/CMakeFiles/rmsyn_baseline.dir/baseline/script.cpp.o" "gcc" "src/CMakeFiles/rmsyn_baseline.dir/baseline/script.cpp.o.d"
  "/root/repo/src/baseline/sop_network.cpp" "src/CMakeFiles/rmsyn_baseline.dir/baseline/sop_network.cpp.o" "gcc" "src/CMakeFiles/rmsyn_baseline.dir/baseline/sop_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rmsyn_sop.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_network.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_fdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_equiv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
