file(REMOVE_RECURSE
  "CMakeFiles/rmsyn_baseline.dir/baseline/divide.cpp.o"
  "CMakeFiles/rmsyn_baseline.dir/baseline/divide.cpp.o.d"
  "CMakeFiles/rmsyn_baseline.dir/baseline/extract.cpp.o"
  "CMakeFiles/rmsyn_baseline.dir/baseline/extract.cpp.o.d"
  "CMakeFiles/rmsyn_baseline.dir/baseline/factor.cpp.o"
  "CMakeFiles/rmsyn_baseline.dir/baseline/factor.cpp.o.d"
  "CMakeFiles/rmsyn_baseline.dir/baseline/kernels.cpp.o"
  "CMakeFiles/rmsyn_baseline.dir/baseline/kernels.cpp.o.d"
  "CMakeFiles/rmsyn_baseline.dir/baseline/script.cpp.o"
  "CMakeFiles/rmsyn_baseline.dir/baseline/script.cpp.o.d"
  "CMakeFiles/rmsyn_baseline.dir/baseline/sop_network.cpp.o"
  "CMakeFiles/rmsyn_baseline.dir/baseline/sop_network.cpp.o.d"
  "librmsyn_baseline.a"
  "librmsyn_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmsyn_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
