# Empty compiler generated dependencies file for rmsyn_baseline.
# This may be replaced when dependencies are built.
