file(REMOVE_RECURSE
  "librmsyn_baseline.a"
)
