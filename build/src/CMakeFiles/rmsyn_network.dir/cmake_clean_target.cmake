file(REMOVE_RECURSE
  "librmsyn_network.a"
)
