file(REMOVE_RECURSE
  "CMakeFiles/rmsyn_network.dir/network/io.cpp.o"
  "CMakeFiles/rmsyn_network.dir/network/io.cpp.o.d"
  "CMakeFiles/rmsyn_network.dir/network/network.cpp.o"
  "CMakeFiles/rmsyn_network.dir/network/network.cpp.o.d"
  "CMakeFiles/rmsyn_network.dir/network/simulate.cpp.o"
  "CMakeFiles/rmsyn_network.dir/network/simulate.cpp.o.d"
  "CMakeFiles/rmsyn_network.dir/network/stats.cpp.o"
  "CMakeFiles/rmsyn_network.dir/network/stats.cpp.o.d"
  "CMakeFiles/rmsyn_network.dir/network/transform.cpp.o"
  "CMakeFiles/rmsyn_network.dir/network/transform.cpp.o.d"
  "librmsyn_network.a"
  "librmsyn_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmsyn_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
