
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/network/io.cpp" "src/CMakeFiles/rmsyn_network.dir/network/io.cpp.o" "gcc" "src/CMakeFiles/rmsyn_network.dir/network/io.cpp.o.d"
  "/root/repo/src/network/network.cpp" "src/CMakeFiles/rmsyn_network.dir/network/network.cpp.o" "gcc" "src/CMakeFiles/rmsyn_network.dir/network/network.cpp.o.d"
  "/root/repo/src/network/simulate.cpp" "src/CMakeFiles/rmsyn_network.dir/network/simulate.cpp.o" "gcc" "src/CMakeFiles/rmsyn_network.dir/network/simulate.cpp.o.d"
  "/root/repo/src/network/stats.cpp" "src/CMakeFiles/rmsyn_network.dir/network/stats.cpp.o" "gcc" "src/CMakeFiles/rmsyn_network.dir/network/stats.cpp.o.d"
  "/root/repo/src/network/transform.cpp" "src/CMakeFiles/rmsyn_network.dir/network/transform.cpp.o" "gcc" "src/CMakeFiles/rmsyn_network.dir/network/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rmsyn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
