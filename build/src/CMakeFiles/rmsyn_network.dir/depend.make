# Empty dependencies file for rmsyn_network.
# This may be replaced when dependencies are built.
