file(REMOVE_RECURSE
  "CMakeFiles/rmsyn_bdd.dir/bdd/bdd.cpp.o"
  "CMakeFiles/rmsyn_bdd.dir/bdd/bdd.cpp.o.d"
  "librmsyn_bdd.a"
  "librmsyn_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmsyn_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
