# Empty dependencies file for rmsyn_bdd.
# This may be replaced when dependencies are built.
