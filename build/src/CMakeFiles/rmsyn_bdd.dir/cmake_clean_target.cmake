file(REMOVE_RECURSE
  "librmsyn_bdd.a"
)
