file(REMOVE_RECURSE
  "CMakeFiles/test_cube_cover.dir/test_cube_cover.cpp.o"
  "CMakeFiles/test_cube_cover.dir/test_cube_cover.cpp.o.d"
  "test_cube_cover"
  "test_cube_cover.pdb"
  "test_cube_cover[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cube_cover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
