# Empty dependencies file for test_cube_cover.
# This may be replaced when dependencies are built.
