file(REMOVE_RECURSE
  "CMakeFiles/test_fprm.dir/test_fprm.cpp.o"
  "CMakeFiles/test_fprm.dir/test_fprm.cpp.o.d"
  "test_fprm"
  "test_fprm.pdb"
  "test_fprm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fprm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
