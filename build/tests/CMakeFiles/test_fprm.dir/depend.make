# Empty dependencies file for test_fprm.
# This may be replaced when dependencies are built.
