file(REMOVE_RECURSE
  "CMakeFiles/test_testability.dir/test_testability.cpp.o"
  "CMakeFiles/test_testability.dir/test_testability.cpp.o.d"
  "test_testability"
  "test_testability.pdb"
  "test_testability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_testability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
