# Empty compiler generated dependencies file for test_testability.
# This may be replaced when dependencies are built.
