
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_equiv.cpp" "tests/CMakeFiles/test_equiv.dir/test_equiv.cpp.o" "gcc" "tests/CMakeFiles/test_equiv.dir/test_equiv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rmsyn_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_fdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_testability.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_benchgen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_equiv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_network.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_sop.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rmsyn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
