file(REMOVE_RECURSE
  "CMakeFiles/test_kfdd.dir/test_kfdd.cpp.o"
  "CMakeFiles/test_kfdd.dir/test_kfdd.cpp.o.d"
  "test_kfdd"
  "test_kfdd.pdb"
  "test_kfdd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kfdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
