# Empty compiler generated dependencies file for test_kfdd.
# This may be replaced when dependencies are built.
