file(REMOVE_RECURSE
  "CMakeFiles/test_parity_analysis.dir/test_parity_analysis.cpp.o"
  "CMakeFiles/test_parity_analysis.dir/test_parity_analysis.cpp.o.d"
  "test_parity_analysis"
  "test_parity_analysis.pdb"
  "test_parity_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parity_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
