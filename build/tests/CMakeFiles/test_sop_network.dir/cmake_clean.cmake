file(REMOVE_RECURSE
  "CMakeFiles/test_sop_network.dir/test_sop_network.cpp.o"
  "CMakeFiles/test_sop_network.dir/test_sop_network.cpp.o.d"
  "test_sop_network"
  "test_sop_network.pdb"
  "test_sop_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sop_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
