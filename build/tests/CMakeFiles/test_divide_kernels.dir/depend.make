# Empty dependencies file for test_divide_kernels.
# This may be replaced when dependencies are built.
