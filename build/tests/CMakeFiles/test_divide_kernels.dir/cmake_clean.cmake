file(REMOVE_RECURSE
  "CMakeFiles/test_divide_kernels.dir/test_divide_kernels.cpp.o"
  "CMakeFiles/test_divide_kernels.dir/test_divide_kernels.cpp.o.d"
  "test_divide_kernels"
  "test_divide_kernels.pdb"
  "test_divide_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_divide_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
