# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/example_quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adder_flow "/root/repo/build/examples/example_adder_flow")
set_tests_properties(example_adder_flow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multiplier_flow "/root/repo/build/examples/example_multiplier_flow")
set_tests_properties(example_multiplier_flow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_t481_casestudy "/root/repo/build/examples/example_t481_casestudy")
set_tests_properties(example_t481_casestudy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_testability_demo "/root/repo/build/examples/example_testability_demo")
set_tests_properties(example_testability_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
