file(REMOVE_RECURSE
  "CMakeFiles/example_adder_flow.dir/adder_flow.cpp.o"
  "CMakeFiles/example_adder_flow.dir/adder_flow.cpp.o.d"
  "example_adder_flow"
  "example_adder_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_adder_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
