# Empty dependencies file for example_adder_flow.
# This may be replaced when dependencies are built.
