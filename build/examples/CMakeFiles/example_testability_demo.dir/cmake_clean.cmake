file(REMOVE_RECURSE
  "CMakeFiles/example_testability_demo.dir/testability_demo.cpp.o"
  "CMakeFiles/example_testability_demo.dir/testability_demo.cpp.o.d"
  "example_testability_demo"
  "example_testability_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_testability_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
