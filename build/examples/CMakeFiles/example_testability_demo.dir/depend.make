# Empty dependencies file for example_testability_demo.
# This may be replaced when dependencies are built.
