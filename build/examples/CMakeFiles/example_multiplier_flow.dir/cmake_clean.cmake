file(REMOVE_RECURSE
  "CMakeFiles/example_multiplier_flow.dir/multiplier_flow.cpp.o"
  "CMakeFiles/example_multiplier_flow.dir/multiplier_flow.cpp.o.d"
  "example_multiplier_flow"
  "example_multiplier_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multiplier_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
