# Empty compiler generated dependencies file for example_multiplier_flow.
# This may be replaced when dependencies are built.
