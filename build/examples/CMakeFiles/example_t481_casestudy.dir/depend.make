# Empty dependencies file for example_t481_casestudy.
# This may be replaced when dependencies are built.
