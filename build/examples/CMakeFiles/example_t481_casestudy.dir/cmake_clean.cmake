file(REMOVE_RECURSE
  "CMakeFiles/example_t481_casestudy.dir/t481_casestudy.cpp.o"
  "CMakeFiles/example_t481_casestudy.dir/t481_casestudy.cpp.o.d"
  "example_t481_casestudy"
  "example_t481_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_t481_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
