// rmsyn command-line driver.
//
//   rmsyn_cli synth    <input> [-o out.blif] [--method cubes|ofdd|best]
//                      [--no-redundancy] [--no-resub] [--rewrite]
//                      [--trace out.json]
//                      [--timeout sec] [--node-limit n] [--step-limit n]
//   rmsyn_cli rewrite  <input> [-o out.blif] [--jobs N] [--passes N]
//                      [--cut-limit N] [--db file]
//                      [--timeout sec] [--node-limit n] [--step-limit n]
//   rmsyn_cli rewrite-dbgen [-o out.txt]
//   rmsyn_cli baseline <input> [-o out.blif]
//                      [--timeout sec] [--node-limit n] [--step-limit n]
//   rmsyn_cli map      <input> [--lib file.genlib]
//   rmsyn_cli verify   <input-a> <input-b>
//   rmsyn_cli power    <input>
//   rmsyn_cli atpg     <input> [--jobs N] [--no-drop]
//   rmsyn_cli dump     <input> [-o out.blif]   (spec as BLIF, unsynthesized)
//   rmsyn_cli table2   [circuit ...] [--keep-going] [--jobs N] [--retries N]
//                      [--rewrite]
//                      [--timeout sec] [--node-limit n] [--step-limit n]
//                      [--trace out.json] [--report out.json]
//                      [--profile out.folded] [--heartbeat sec]
//   rmsyn_cli batch    <manifest> [--jobs N] [--keep-going] [--retries N]
//                      [--journal out.jsonl | --resume journal.jsonl]
//                      [--timeout sec] [--node-limit n] [--step-limit n]
//                      [--batch-timeout sec] [--batch-node-limit n]
//                      [--no-mapping] [--no-power]
//                      [--trace out.json] [--report out.json]
//                      [--profile out.folded] [--heartbeat sec]
//   rmsyn_cli validate-report <report.json> <schema.json>
//   rmsyn_cli report-diff <baseline.json> <candidate.json>
//                      [--ignore-timing] [--noise-pct P] [--noise-floor sec]
//   rmsyn_cli list
//
// <input> is a .blif file, a .pla file, or the name of a built-in Table-2
// benchmark circuit (see `rmsyn_cli list`). The batch manifest is a text
// file with one input per line ('#' comments and blank lines skipped).
//
// Resource budgets (--timeout wall-clock seconds per budget slice,
// --node-limit peak live DD nodes, --step-limit cooperative polls) put the
// flow on the degradation ladder instead of running unbounded; the status
// is printed and reflected in the exit code. Exit codes are stable (see
// util/errors.hpp and README "Exit codes"): 0 ok, 1 usage, 2 degraded,
// 3 transient failure, 4 fatal input (parse error), 5 invariant/verify.
//
// Resilience (DESIGN.md §12): --retries N re-runs transient-retryable
// failed rows with x2-escalated budget slices; batch --journal FILE
// appends one fsync'd JSONL checkpoint per settled row; batch --resume
// FILE replays completed journal rows and re-runs the rest; --paranoid
// (any command) runs the deep network invariant checker after every
// structural transform; --fault-plan seed=S,truncate=N,corrupt=N,arena=N,
// journal=N arms deterministic fault injection for testing. --jobs N runs N circuits concurrently
// on the work-stealing scheduler (sched/batch.hpp); every result column is
// bit-identical to --jobs 1. --batch-timeout/--batch-node-limit are budgets
// for the whole batch, shared by all workers.
//
// Observability (src/obs): --trace writes a Chrome trace-event JSON
// (chrome://tracing / Perfetto) merged from every worker thread's spans;
// --report writes the machine-readable run report (schema:
// data/report_schema.json, checked by `validate-report`); --profile writes
// a folded-stack attribution profile (flamegraph.pl / speedscope input)
// and embeds the tree in the report; --heartbeat N prints a progress line
// (rows done, current circuit/stage, live DD nodes) every N seconds while
// the run is in flight. None of them perturbs the result columns.
// `report-diff` compares two reports (or BENCH_*.json files) and exits 0
// on no regression, 2 on a regression, 4 on schema mismatch — the CI
// baseline gate runs it with --ignore-timing against data/baselines/.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/script.hpp"
#include "benchgen/spec.hpp"
#include "core/synth.hpp"
#include "equiv/equiv.hpp"
#include "flow/flow.hpp"
#include "mapping/mapper.hpp"
#include "network/io.hpp"
#include "network/stats.hpp"
#include "network/transform.hpp"
#include "obs/diff.hpp"
#include "obs/heartbeat.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "obs/sink.hpp"
#include "obs/trace.hpp"
#include "power/power.hpp"
#include "rewrite/database.hpp"
#include "rewrite/rewrite.hpp"
#include "sched/batch.hpp"
#include "sched/pool.hpp"
#include "util/errors.hpp"
#include "util/faultplan.hpp"
#include "util/osinfo.hpp"
#include "util/stopwatch.hpp"
#include "sop/pla.hpp"
#include "testability/faults.hpp"

namespace {

using namespace rmsyn;

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Reads a whole file, routing the bytes through the FaultPlan's IO
/// corruption/truncation points (a no-op unless --fault-plan armed them).
std::string load_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return apply_io_faults(ss.str());
}

Network load_input(const std::string& spec) {
  if (ends_with(spec, ".blif")) return read_blif_string(load_file_bytes(spec));
  if (ends_with(spec, ".pla")) {
    const PlaFile pla = read_pla_string(load_file_bytes(spec));
    return network_from_covers(pla.outputs, pla.num_inputs);
  }
  if (ends_with(spec, ".aag") || ends_with(spec, ".aig"))
    return read_aiger_string(load_file_bytes(spec));
  if (has_benchmark(spec)) return make_benchmark(spec).spec;
  throw std::runtime_error("unknown input '" + spec +
                           "' (not a .blif/.pla/.aag/.aig file or benchmark "
                           "name)");
}

double parse_seconds(const std::string& flag, const std::string& v) {
  try {
    std::size_t pos = 0;
    const double d = std::stod(v, &pos);
    if (pos != v.size() || !(d > 0.0)) throw std::invalid_argument(v);
    return d;
  } catch (const std::exception&) {
    throw std::runtime_error(flag + ": bad value '" + v +
                             "' (want seconds > 0, e.g. 0.001)");
  }
}

std::size_t parse_count(const std::string& flag, const std::string& v) {
  try {
    std::size_t pos = 0;
    const unsigned long long n = std::stoull(v, &pos);
    if (pos != v.size() || n == 0) throw std::invalid_argument(v);
    return static_cast<std::size_t>(n);
  } catch (const std::exception&) {
    throw std::runtime_error(flag + ": bad value '" + v +
                             "' (want a positive integer)");
  }
}

/// Consumes --timeout/--node-limit/--step-limit at args[i]; returns true
/// (with i advanced past the value) when it did.
bool parse_limit_flag(const std::vector<std::string>& args, std::size_t& i,
                      ResourceLimits& limits) {
  const std::string& a = args[i];
  if (a == "--timeout" && i + 1 < args.size()) {
    limits.deadline_seconds = parse_seconds(a, args[++i]);
    return true;
  }
  if (a == "--node-limit" && i + 1 < args.size()) {
    limits.node_limit = parse_count(a, args[++i]);
    return true;
  }
  if (a == "--step-limit" && i + 1 < args.size()) {
    limits.step_limit = static_cast<uint64_t>(parse_count(a, args[++i]));
    return true;
  }
  return false;
}

int status_exit_code(const FlowStatus& st);

void write_output(const Network& net, const std::string& path,
                  const std::string& model) {
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  write_blif(out, decompose2(net), model);
  std::printf("wrote %s\n", path.c_str());
}

int cmd_synth(const std::vector<std::string>& args) {
  if (args.empty()) throw std::runtime_error("synth: missing input");
  SynthOptions opt;
  ResourceLimits limits;
  std::string out_path;
  std::string trace_path;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "-o" && i + 1 < args.size()) out_path = args[++i];
    else if (args[i] == "--trace" && i + 1 < args.size()) trace_path = args[++i];
    else if (args[i] == "--method" && i + 1 < args.size()) {
      const std::string m = args[++i];
      if (m == "cubes") opt.method = FactorMethod::Cubes;
      else if (m == "ofdd") opt.method = FactorMethod::Ofdd;
      else if (m == "best") opt.method = FactorMethod::Best;
      else throw std::runtime_error("synth: bad method " + m);
    } else if (args[i] == "--no-redundancy") {
      opt.run_redundancy_removal = false;
    } else if (args[i] == "--no-resub") {
      opt.run_resub = false;
    } else if (args[i] == "--rewrite") {
      opt.run_rewrite = true;
    } else if (parse_limit_flag(args, i, limits)) {
      // consumed
    } else {
      throw std::runtime_error("synth: unknown option " + args[i]);
    }
  }
  std::optional<ResourceGovernor> gov;
  if (!limits.unlimited()) {
    gov.emplace(limits);
    opt.governor = &*gov;
  }
  const Network spec = load_input(args[0]);
  if (!trace_path.empty()) {
    obs::Tracer::instance().reset();
    obs::Tracer::instance().enable();
  }
  SynthReport rep;
  Network result;
  {
    RMSYN_SPAN("synth");
    result = synthesize(spec, opt, &rep);
  }
  if (!trace_path.empty()) {
    obs::Tracer::instance().disable();
    obs::Tracer::instance().write_chrome_trace(trace_path);
    std::printf("wrote trace %s\n", trace_path.c_str());
  }
  std::printf("synthesized %s: %s in %.3fs (status %s)\n", args[0].c_str(),
              to_string(rep.stats).c_str(), rep.seconds,
              rep.status.to_string().c_str());
  std::printf("FPRM cubes per output:");
  for (const auto c : rep.fprm_cube_counts) std::printf(" %zu", c);
  std::printf("\nredundancy: %zu XOR->OR, %zu XOR->AND, %zu fanins removed "
              "(%zu gates proven irreducible by pattern simulation)\n",
              rep.redundancy.reduced_to_or, rep.redundancy.reduced_to_andnot,
              rep.redundancy.fanins_removed, rep.redundancy.pattern_pruned);
  std::printf("dd kernel: cache hit rate %.1f%%, peak live nodes %zu, "
              "%llu gc runs, %llu reorders\n",
              100.0 * rep.bdd.cache_hit_rate(), rep.bdd.peak_live_nodes,
              static_cast<unsigned long long>(rep.bdd.gc_runs),
              static_cast<unsigned long long>(rep.bdd.reorder_runs));
  if (!rep.rewrite.empty()) {
    obs::MetricsRegistry m;
    m.absorb_rewrite(rep.rewrite);
    std::printf("%s", obs::format_metrics_summary(m).c_str());
  }
  if (!rep.stages.empty()) std::printf("%s", rep.stages.to_string().c_str());
  write_output(result, out_path, "rmsyn_synth");
  return status_exit_code(rep.status);
}

int cmd_baseline(const std::vector<std::string>& args) {
  if (args.empty()) throw std::runtime_error("baseline: missing input");
  BaselineOptions opt;
  ResourceLimits limits;
  std::string out_path;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "-o" && i + 1 < args.size()) out_path = args[++i];
    else if (parse_limit_flag(args, i, limits)) {
      // consumed
    } else {
      throw std::runtime_error("baseline: unknown option " + args[i]);
    }
  }
  std::optional<ResourceGovernor> gov;
  if (!limits.unlimited()) {
    gov.emplace(limits);
    opt.governor = &*gov;
  }
  const Network spec = load_input(args[0]);
  BaselineReport rep;
  const Network result = baseline_synthesize(spec, opt, &rep);
  std::printf("baseline %s: %s in %.3fs (SOP lits %d -> %d, %d divisors "
              "extracted, status %s)\n",
              args[0].c_str(), to_string(rep.stats).c_str(), rep.seconds,
              rep.sop_lits_initial, rep.sop_lits_final, rep.nodes_extracted,
              rep.status.to_string().c_str());
  write_output(result, out_path, "rmsyn_baseline");
  return status_exit_code(rep.status);
}

int cmd_map(const std::vector<std::string>& args) {
  if (args.empty()) throw std::runtime_error("map: missing input");
  const CellLibrary* lib = &mcnc_library();
  CellLibrary custom;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--lib" && i + 1 < args.size()) {
      std::ifstream in(args[++i]);
      if (!in) throw std::runtime_error("cannot open library");
      std::ostringstream ss;
      ss << in.rdbuf();
      custom = parse_genlib(ss.str());
      lib = &custom;
    } else {
      throw std::runtime_error("map: unknown option " + args[i]);
    }
  }
  const Network net = load_input(args[0]);
  const MapResult r = map_network(net, *lib);
  std::printf("mapped %s: %zu cells, %zu literals, area %.1f\n",
              args[0].c_str(), r.gate_count, r.literal_count, r.area);
  // Cell histogram.
  std::map<std::string, int> hist;
  for (const auto& g : r.gates) ++hist[g.cell];
  for (const auto& [name, count] : hist)
    std::printf("  %-8s x%d\n", name.c_str(), count);
  return 0;
}

int cmd_verify(const std::vector<std::string>& args) {
  if (args.size() != 2) throw std::runtime_error("verify: need two inputs");
  const Network a = load_input(args[0]);
  const Network b = load_input(args[1]);
  const auto r = check_equivalence(a, b);
  std::printf("%s\n", r.equivalent ? "EQUIVALENT" : ("NOT EQUIVALENT: " + r.reason).c_str());
  return r.equivalent ? ExitCode::Ok : ExitCode::InvariantOrVerify;
}

int cmd_power(const std::vector<std::string>& args) {
  if (args.empty()) throw std::runtime_error("power: missing input");
  const Network net = load_input(args[0]);
  const PowerReport r = estimate_power(net);
  std::printf("power %s: total %.4f (switching sum %.4f over %zu nets, %s "
              "probabilities)\n",
              args[0].c_str(), r.total, r.switching_sum, r.nets,
              r.exact ? "exact BDD" : "simulated");
  return 0;
}

int parse_jobs(const std::string& flag, const std::string& v) {
  const std::size_t n = parse_count(flag, v);
  if (n > 256) throw std::runtime_error(flag + ": at most 256 jobs");
  return static_cast<int>(n);
}

int cmd_atpg(const std::vector<std::string>& args) {
  if (args.empty()) throw std::runtime_error("atpg: missing input");
  int jobs = 1;
  FaultSimOptions fo;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--jobs" && i + 1 < args.size())
      jobs = parse_jobs("--jobs", args[++i]);
    else if (args[i] == "--no-drop")
      fo.drop_faults = false;
    else
      throw std::runtime_error("atpg: unknown option " + args[i]);
  }
  const Network spec = load_input(args[0]);
  SynthReport rep;
  const Network net = synthesize(spec, {}, &rep);
  const PatternSet tests = fprm_pattern_set(
      net.pi_count(), rep.forms, /*include_sa1=*/true, std::size_t{1} << 16);
  SimStats stats;
  fo.stats = &stats;
  std::optional<ThreadPool> pool;
  if (jobs > 1) {
    pool.emplace(jobs - 1); // the caller helps, as in table2/batch
    fo.pool = &*pool;
  }
  const auto sim = fault_simulate(net, tests, fo);
  std::printf("synthesized network: %zu faults, FPRM-derived test set of %zu "
              "patterns detects %zu (%.1f%% coverage)\n",
              sim.total, tests.num_patterns, sim.detected,
              100.0 * sim.coverage());
  for (const auto& f : sim.undetected)
    std::printf("  undetected: %s\n", to_string(f, net).c_str());
  obs::MetricsRegistry m;
  m.absorb_sim(stats);
  std::printf("%s", obs::format_metrics_summary(m).c_str());
  return 0;
}

int cmd_dump(const std::vector<std::string>& args) {
  if (args.empty()) throw std::runtime_error("dump: missing input");
  std::string out_path;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "-o" && i + 1 < args.size()) out_path = args[++i];
    else throw std::runtime_error("dump: unknown option " + args[i]);
  }
  const Network net = load_input(args[0]);
  if (out_path.empty()) {
    std::printf("%s", write_blif_string(decompose2(net), args[0]).c_str());
  } else {
    write_output(net, out_path, args[0]);
  }
  return 0;
}

int cmd_rewrite(const std::vector<std::string>& args) {
  if (args.empty()) throw std::runtime_error("rewrite: missing input");
  rw::RewriteOptions opt;
  ResourceLimits limits;
  std::string out_path;
  int jobs = 1;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "-o" && i + 1 < args.size()) out_path = args[++i];
    else if (args[i] == "--jobs" && i + 1 < args.size())
      jobs = parse_jobs("--jobs", args[++i]);
    else if (args[i] == "--passes" && i + 1 < args.size())
      opt.max_passes = static_cast<int>(parse_count("--passes", args[++i]));
    else if (args[i] == "--cut-limit" && i + 1 < args.size())
      opt.cut_limit = static_cast<int>(parse_count("--cut-limit", args[++i]));
    else if (args[i] == "--db" && i + 1 < args.size())
      opt.db_path = args[++i];
    else if (parse_limit_flag(args, i, limits)) {
      // consumed
    } else {
      throw std::runtime_error("rewrite: unknown option " + args[i]);
    }
  }
  const Network spec = load_input(args[0]);
  std::optional<ResourceGovernor> gov;
  if (!limits.unlimited()) {
    gov.emplace(limits);
    opt.governor = &*gov;
  }
  std::optional<ThreadPool> pool;
  if (jobs > 1) {
    pool.emplace(jobs);
    opt.pool = &*pool;
  }
  Network net = spec;
  Stopwatch sw;
  const rw::RewriteStats st = rw::rewrite_network(net, opt);
  const double seconds = sw.seconds();
  // Every replacement was verified in-pass; this is the belt-and-braces
  // whole-network check the paper's flow runs (SIS `verify`). It shares
  // the run's budget: on exhaustion the BDD phase comes back undecided
  // (the simulation miter still runs) instead of hanging on BDD-hostile
  // functions like wide multipliers.
  const auto check =
      check_equivalence(spec, net, 0xC0FFEE, gov ? &*gov : nullptr);
  if (check.decided && !check.equivalent)
    throw RmsynError(ErrorCode::VerifyMismatch,
                     "rewrite: result not equivalent to input: " +
                         check.reason);
  obs::MetricsRegistry m;
  m.absorb_rewrite(st);
  std::printf("%s", obs::format_metrics_summary(m).c_str());
  std::printf("rewrite %s: %s in %.3fs (equivalence %s)\n", args[0].c_str(),
              to_string(network_stats(net)).c_str(), seconds,
              check.decided ? "verified" : "undecided");
  write_output(net, out_path, "rmsyn_rewrite");
  const bool tripped =
      gov.has_value() && gov->trip_kind() != TripKind::None;
  return tripped ? ExitCode::BudgetDegraded : ExitCode::Ok;
}

int cmd_rewrite_dbgen(const std::vector<std::string>& args) {
  std::string out_path = "data/rewrite_db_k4.txt";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-o" && i + 1 < args.size()) out_path = args[++i];
    else throw std::runtime_error("rewrite-dbgen: unknown option " + args[i]);
  }
  Stopwatch sw;
  const rw::RewriteDb db = rw::RewriteDb::generate();
  std::ofstream out(out_path);
  if (!out) throw std::runtime_error("cannot write " + out_path);
  db.save(out);
  int max_cost = 0;
  long total_cost = 0;
  for (const auto& e : db.entries()) {
    max_cost = std::max(max_cost, e.cost);
    total_cost += e.cost;
  }
  std::printf("rewrite-dbgen: %zu NPN classes in %.2fs (max cost %d, "
              "total %ld) -> %s\n",
              db.size(), sw.seconds(), max_cost, total_cost,
              out_path.c_str());
  return 0;
}

/// Observability switches shared by table2 and batch.
struct RunObs {
  std::string trace_path;   ///< --trace: Chrome trace-event JSON
  std::string report_path;  ///< --report: machine-readable run report
  std::string profile_path; ///< --profile: folded-stack attribution tree
  double heartbeat_seconds = 0.0; ///< --heartbeat: progress-line period
  bool tracing() const { return !trace_path.empty(); }
  bool profiling() const { return !profile_path.empty(); }
};

/// Consumes --trace/--report/--profile/--heartbeat at args[i]; returns
/// true (with i advanced past the value) when it did.
bool parse_obs_flag(const std::vector<std::string>& args, std::size_t& i,
                    RunObs& o) {
  const std::string& a = args[i];
  if (a == "--trace" && i + 1 < args.size()) {
    o.trace_path = args[++i];
    return true;
  }
  if (a == "--report" && i + 1 < args.size()) {
    o.report_path = args[++i];
    return true;
  }
  if (a == "--profile" && i + 1 < args.size()) {
    o.profile_path = args[++i];
    return true;
  }
  if (a == "--heartbeat" && i + 1 < args.size()) {
    o.heartbeat_seconds = parse_seconds(a, args[++i]);
    return true;
  }
  return false;
}

/// Arms the tracer and/or profiler for a run (idempotent reset + enable).
void start_tracing(const RunObs& o) {
  if (o.tracing()) {
    obs::Tracer::instance().reset();
    obs::Tracer::instance().enable();
  }
  if (o.profiling()) {
    obs::Profiler::instance().reset();
    obs::Profiler::instance().enable();
  }
}

/// Writes the --trace/--profile/--report artifacts after a run. `command`
/// names the subcommand for the report; `sched` is null when the run was
/// serial.
void write_run_artifacts(const RunObs& o, const char* command, int jobs,
                         const std::vector<FlowRow>& rows,
                         const SchedStats* sched, double wall_seconds) {
  if (o.tracing()) {
    obs::Tracer::instance().disable();
    obs::Tracer::instance().write_chrome_trace(o.trace_path);
    std::printf("wrote trace %s\n", o.trace_path.c_str());
  }
  if (o.profiling()) {
    obs::Profiler::instance().disable();
    obs::Profiler::instance().write_folded(o.profile_path);
    std::printf("wrote profile %s\n", o.profile_path.c_str());
  }
  if (o.report_path.empty()) return;
  obs::ReportBuilder rb(command, jobs);
  for (const FlowRow& r : rows) rb.add_row(flow_row_json(r));
  obs::MetricsRegistry m = collect_flow_metrics(rows);
  if (sched != nullptr) m.absorb_sched(*sched);
  m.set("os.peak_rss_mb", peak_rss_mb());
  rb.set_metrics(m);
  if (o.tracing())
    rb.set_trace(obs::Tracer::instance().summary(), wall_seconds,
                 o.trace_path);
  if (o.profiling())
    rb.set_profile(obs::Profiler::instance().merged(), o.profile_path);
  obs::write_json_file(o.report_path, rb.finish(wall_seconds));
  std::printf("wrote report %s\n", o.report_path.c_str());
}

/// Prints the p50/p99 row-latency line batch and table2 share (the ROADMAP
/// service-era SLO numbers, from the flow.row_seconds histogram).
void print_row_latency(const std::vector<FlowRow>& rows) {
  obs::MetricValue lat;
  lat.kind = obs::MetricKind::Histogram;
  for (const FlowRow& r : rows)
    if (r.row_seconds > 0.0) lat.observe_value(r.row_seconds);
  if (lat.count == 0) return;
  std::printf("row latency: p50 %.3fs, p99 %.3fs, max %.3fs over %llu rows\n",
              lat.percentile(0.5), lat.percentile(0.99), lat.max,
              static_cast<unsigned long long>(lat.count));
}

/// A row the batch runner never started because the budget was cancelled
/// (keep_going=false after a failure, batch deadline, or explicit cancel).
bool row_was_cancelled(const FlowRow& r) {
  return r.ours_status.is_failed() && r.ours_status.stage == "batch";
}

/// Exit code from the worst status (stable contract, see util/errors.hpp):
/// ok = 0, degraded = 2, failed = the taxonomy mapping of its error code
/// (3 transient, 4 fatal input, 5 invariant/verify).
int status_exit_code(const FlowStatus& st) {
  if (st.severity() == 0) return ExitCode::Ok;
  if (st.severity() == 1) return ExitCode::BudgetDegraded;
  return st.code == ErrorCode::None ? ExitCode::TransientFailure
                                    : exit_code_for_error(st.code);
}

int cmd_table2(const std::vector<std::string>& args) {
  BatchOptions bopt;
  bopt.keep_going = false;
  RunObs obs_opt;
  std::vector<std::string> names;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--keep-going") bopt.keep_going = true;
    else if (args[i] == "--jobs" && i + 1 < args.size()) {
      ++i;
      bopt.jobs = parse_jobs("--jobs", args[i]);
    } else if (args[i] == "--retries" && i + 1 < args.size()) {
      ++i;
      bopt.retries = static_cast<int>(parse_count("--retries", args[i]));
    } else if (args[i] == "--rewrite") {
      bopt.flow.synth.run_rewrite = true;
    } else if (parse_limit_flag(args, i, bopt.flow.limits)) {
      // consumed
    } else if (parse_obs_flag(args, i, obs_opt)) {
      // consumed
    } else if (!args[i].empty() && args[i][0] == '-') {
      throw std::runtime_error("table2: unknown option " + args[i]);
    } else {
      names.push_back(args[i]);
    }
  }
  if (names.empty()) names = benchmark_names();
  std::vector<Benchmark> benches;
  benches.reserve(names.size());
  for (const auto& n : names) benches.push_back(make_benchmark(n));

  obs::OutputSink sink;
  std::optional<obs::Heartbeat> heartbeat;
  if (obs_opt.heartbeat_seconds > 0.0)
    heartbeat.emplace(sink, obs_opt.heartbeat_seconds);
  start_tracing(obs_opt);
  Stopwatch sw;
  BatchResult result;
  {
    RMSYN_SPAN("table2"); // root span: must close before the trace export
    BatchRunner runner(bopt);
    result = runner.run(benches);
  }
  const double wall = sw.seconds();
  if (heartbeat.has_value()) heartbeat->stop();
  write_run_artifacts(obs_opt, "table2", bopt.jobs, result.rows,
                      bopt.jobs > 1 ? &result.sched : nullptr, wall);

  if (result.worst.is_failed() && !bopt.keep_going) {
    // Print what actually ran (everything up to the failure in serial
    // order; possibly more under --jobs) and abort, as the serial sweep
    // always has.
    std::vector<FlowRow> ran;
    std::string culprit;
    for (const auto& r : result.rows) {
      if (row_was_cancelled(r)) continue;
      ran.push_back(r);
      if (r.worst_status().is_failed() && culprit.empty())
        culprit = r.circuit + " failed (" + r.worst_status().to_string() + ")";
    }
    std::printf("%s", format_table2(ran).c_str());
    std::fprintf(stderr,
                 "table2: %s; aborting sweep (use --keep-going to continue)\n",
                 culprit.c_str());
    return 3;
  }
  std::printf("%s", format_table2(result.rows).c_str());
  print_row_latency(result.rows);
  if (bopt.jobs > 1) {
    std::printf("%s", format_dd_kernel_summary(result.rows).c_str());
    std::printf("%s", format_sched_summary(result.sched).c_str());
  }
  return status_exit_code(result.worst);
}

int cmd_batch(const std::vector<std::string>& args) {
  if (args.empty()) throw std::runtime_error("batch: missing manifest file");
  BatchOptions bopt;
  RunObs obs_opt;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--keep-going") bopt.keep_going = true;
    else if (args[i] == "--jobs" && i + 1 < args.size()) {
      ++i;
      bopt.jobs = parse_jobs("--jobs", args[i]);
    } else if (args[i] == "--batch-timeout" && i + 1 < args.size()) {
      ++i;
      bopt.batch_deadline_seconds = parse_seconds("--batch-timeout", args[i]);
    } else if (args[i] == "--batch-node-limit" && i + 1 < args.size()) {
      ++i;
      bopt.batch_allocation_budget =
          static_cast<uint64_t>(parse_count("--batch-node-limit", args[i]));
    } else if (args[i] == "--retries" && i + 1 < args.size()) {
      ++i;
      bopt.retries = static_cast<int>(parse_count("--retries", args[i]));
    } else if (args[i] == "--journal" && i + 1 < args.size()) {
      ++i;
      bopt.journal_path = args[i];
    } else if (args[i] == "--resume" && i + 1 < args.size()) {
      ++i;
      bopt.journal_path = args[i];
      bopt.resume = true;
    } else if (args[i] == "--no-mapping") bopt.flow.run_mapping = false;
    else if (args[i] == "--no-power") bopt.flow.run_power = false;
    else if (args[i] == "--rewrite") bopt.flow.synth.run_rewrite = true;
    else if (parse_limit_flag(args, i, bopt.flow.limits)) {
      // consumed
    } else if (parse_obs_flag(args, i, obs_opt)) {
      // consumed
    } else {
      throw std::runtime_error("batch: unknown option " + args[i]);
    }
  }

  // Manifest: one benchmark name or .pla/.blif path per line.
  std::ifstream in(args[0]);
  if (!in) throw std::runtime_error("cannot open manifest " + args[0]);
  std::vector<Benchmark> benches;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::size_t a = line.find_first_not_of(" \t\r");
    if (a == std::string::npos) continue;
    const std::size_t b = line.find_last_not_of(" \t\r");
    const std::string entry = line.substr(a, b - a + 1);
    if (has_benchmark(entry)) {
      benches.push_back(make_benchmark(entry));
    } else {
      Benchmark bench;
      bench.name = entry;
      bench.spec = load_input(entry);
      bench.num_inputs = static_cast<int>(bench.spec.pi_count());
      bench.num_outputs = static_cast<int>(bench.spec.po_count());
      bench.description = "manifest input";
      benches.push_back(std::move(bench));
    }
  }
  if (benches.empty()) throw std::runtime_error("batch: empty manifest");

  // Per-row status lines and heartbeat lines funnel through one sink, so
  // concurrent writers under --jobs N cannot interleave mid-line.
  obs::OutputSink sink;
  std::optional<obs::Heartbeat> heartbeat;
  if (obs_opt.heartbeat_seconds > 0.0)
    heartbeat.emplace(sink, obs_opt.heartbeat_seconds);
  start_tracing(obs_opt);
  Stopwatch sw;
  BatchRunner runner(bopt);
  std::size_t done = 0;
  runner.on_row = [&](const FlowRow& r, std::size_t) {
    // Rows settle in completion order under --jobs; the index printed is
    // a completion counter, not the manifest position. (The counter needs
    // no lock: on_row is already serialized by the runner's settle mutex.)
    sink.printf("[%zu/%zu] %-12s %-24s lits %zu vs %zu  power %.4f vs %.4f\n",
                ++done, benches.size(), r.circuit.c_str(),
                r.worst_status().to_string().c_str(), r.ours_lits,
                r.base_lits, r.ours_power, r.base_power);
  };
  BatchResult result;
  {
    RMSYN_SPAN("batch-run"); // root span: must close before the export
    result = runner.run(benches);
  }
  const double wall = sw.seconds();
  if (heartbeat.has_value()) heartbeat->stop();
  write_run_artifacts(obs_opt, "batch", bopt.jobs, result.rows,
                      bopt.jobs > 1 ? &result.sched : nullptr, wall);

  std::size_t ok = 0, degraded = 0, failed = 0, cancelled = 0;
  for (const auto& r : result.rows) {
    if (row_was_cancelled(r)) ++cancelled;
    else if (r.worst_status().is_failed()) ++failed;
    else if (r.worst_status().is_degraded()) ++degraded;
    else ++ok;
  }
  std::printf("batch: %zu circuits in %.2fs at --jobs %d: "
              "%zu ok, %zu degraded, %zu failed, %zu cancelled\n",
              result.rows.size(), result.seconds, bopt.jobs, ok, degraded,
              failed, cancelled);
  print_row_latency(result.rows);
  if (bopt.resume || !bopt.journal_path.empty() || bopt.retries > 0)
    std::printf("resilience: %zu rows replayed from journal, %zu retries "
                "used, %zu journal errors, %zu journal lines skipped\n",
                result.rows_replayed, result.retries_used,
                result.journal_errors, result.journal_skipped_lines);
  if (bopt.jobs > 1) {
    std::printf("%s", format_dd_kernel_summary(result.rows).c_str());
    std::printf("%s", format_sched_summary(result.sched).c_str());
  }
  return status_exit_code(result.worst);
}

int cmd_validate_report(const std::vector<std::string>& args) {
  if (args.size() != 2)
    throw std::runtime_error(
        "validate-report: need <report.json> <schema.json>");
  const obs::Json doc = obs::Json::parse(obs::read_file(args[0]));
  const obs::Json schema = obs::Json::parse(obs::read_file(args[1]));
  std::vector<std::string> errors;
  if (!obs::validate_json(doc, schema, &errors)) {
    for (const std::string& e : errors)
      std::fprintf(stderr, "validate-report: %s\n", e.c_str());
    return 1;
  }
  std::printf("report OK: schema_version %d, %zu rows, worst status %s\n",
              static_cast<int>(doc.get("schema_version").as_number()),
              doc.get("rows").size(),
              doc.get("worst_status").as_string().c_str());
  return 0;
}

int cmd_report_diff(const std::vector<std::string>& args) {
  obs::DiffOptions opt;
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--ignore-timing") {
      opt.ignore_timing = true;
    } else if (args[i] == "--noise-pct" && i + 1 < args.size()) {
      opt.seconds_noise_frac =
          parse_seconds("--noise-pct", args[++i]) / 100.0;
    } else if (args[i] == "--noise-floor" && i + 1 < args.size()) {
      opt.seconds_noise_floor = parse_seconds("--noise-floor", args[++i]);
    } else if (!args[i].empty() && args[i][0] == '-') {
      throw std::runtime_error("report-diff: unknown option " + args[i]);
    } else {
      paths.push_back(args[i]);
    }
  }
  if (paths.size() != 2)
    throw std::runtime_error(
        "report-diff: need <baseline.json> <candidate.json>");
  const obs::Json base = obs::Json::parse(obs::read_file(paths[0]));
  const obs::Json ours = obs::Json::parse(obs::read_file(paths[1]));
  const obs::DiffResult r = obs::diff_documents(base, ours, opt);
  std::printf("%s", obs::format_diff(r).c_str());
  return obs::diff_exit_code(r);
}

int cmd_list() {
  for (const auto& name : benchmark_names()) {
    const Benchmark b = make_benchmark(name);
    std::printf("%-10s %4d/%-4d %s%s%s\n", b.name.c_str(), b.num_inputs,
                b.num_outputs, b.arithmetic ? "[arith] " : "        ",
                b.exact ? "" : "[synthetic] ", b.description.c_str());
  }
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s synth|baseline|map|verify|power|atpg|rewrite|"
                 "rewrite-dbgen|table2|batch|validate-report|report-diff|"
                 "list ...\n",
                 argv[0]);
    return ExitCode::Usage;
  }
  const std::string cmd = argv[1];
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);
  try {
    // Global resilience switches, valid for every subcommand.
    for (std::size_t i = 0; i < args.size();) {
      if (args[i] == "--paranoid") {
        set_paranoid_checks(true);
        args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      } else if (args[i] == "--fault-plan" && i + 1 < args.size()) {
        install_fault_plan(FaultPlan::parse(args[i + 1]));
        args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                   args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      } else {
        ++i;
      }
    }
    if (cmd == "synth") return cmd_synth(args);
    if (cmd == "baseline") return cmd_baseline(args);
    if (cmd == "map") return cmd_map(args);
    if (cmd == "verify") return cmd_verify(args);
    if (cmd == "power") return cmd_power(args);
    if (cmd == "atpg") return cmd_atpg(args);
    if (cmd == "dump") return cmd_dump(args);
    if (cmd == "rewrite") return cmd_rewrite(args);
    if (cmd == "rewrite-dbgen") return cmd_rewrite_dbgen(args);
    if (cmd == "table2") return cmd_table2(args);
    if (cmd == "batch") return cmd_batch(args);
    if (cmd == "validate-report") return cmd_validate_report(args);
    if (cmd == "report-diff") return cmd_report_diff(args);
    if (cmd == "list") return cmd_list();
    std::fprintf(stderr, "unknown command %s\n", cmd.c_str());
    return ExitCode::Usage;
  } catch (const RmsynError& e) {
    std::fprintf(stderr, "error [%s]: %s\n", to_string(e.code()), e.what());
    return exit_code_for_error(e.code());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return exit_code_for_error(classify_exception(e));
  }
}
