#include "flow/flow.hpp"

#include <cstdio>
#include <sstream>

#include "network/stats.hpp"
#include "network/transform.hpp"
#include "obs/trace.hpp"
#include "util/errors.hpp"
#include "util/progress.hpp"

namespace rmsyn {

namespace {

uint64_t fnv1a64(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

} // namespace

FlowRow run_flow(const Benchmark& bench, const FlowOptions& opt) {
  obs::Span flow_span("flow:" + bench.name);
  const uint64_t row_start_ns = obs::now_ns();
  if (ProgressBoard::active())
    ProgressBoard::instance().set_circuit(bench.name);
  FlowRow row;
  row.circuit = bench.name;
  row.num_inputs = bench.num_inputs;
  row.num_outputs = bench.num_outputs;
  row.arithmetic = bench.arithmetic;
  row.exact_benchmark = bench.exact;

  // Each flow runs under its own governor (fresh budget) and its own
  // try/catch: a verification throw in one flow must not discard the
  // other's result.
  std::optional<Network> ours;
  {
    SynthOptions so = opt.synth;
    std::optional<ResourceGovernor> gov;
    if (so.governor == nullptr && !opt.limits.unlimited()) {
      gov.emplace(opt.limits);
      so.governor = &*gov;
    }
    try {
      SynthReport rep;
      Network n = synthesize(bench.spec, so, &rep);
      row.ours_lits = rep.stats.lits;
      row.ours_seconds = rep.seconds;
      row.bdd = rep.bdd;
      row.sim = rep.sim;
      row.rewrite = rep.rewrite;
      row.ours_status = rep.status;
      row.stages.accumulate(rep.stages);
      row.ours_polls = rep.governor_polls;
      row.ladder_descents = rep.ladder_descents;
      if (!rep.status.is_failed()) ours = std::move(n);
    } catch (const std::exception& e) {
      row.ours_status =
          FlowStatus::failed("verify", e.what(), classify_exception(e));
      row.ours_lits = 0;
      row.ours_seconds = 0.0;
    }
  }

  std::optional<Network> base;
  {
    BaselineOptions bo = opt.baseline;
    std::optional<ResourceGovernor> gov;
    if (bo.governor == nullptr && !opt.limits.unlimited()) {
      gov.emplace(opt.limits);
      bo.governor = &*gov;
    }
    try {
      BaselineReport rep;
      Network n = baseline_synthesize(bench.spec, bo, &rep);
      row.base_lits = rep.stats.lits;
      row.base_seconds = rep.seconds;
      row.base_status = rep.status;
      row.stages.accumulate(rep.stages);
      row.base_polls = rep.governor_polls;
      base = std::move(n);
    } catch (const std::exception& e) {
      row.base_status = FlowStatus::failed("baseline-verify", e.what(),
                                           classify_exception(e));
      row.base_lits = 0;
      row.base_seconds = 0.0;
    }
  }

  // Bottom rung of the degradation ladder: when our flow failed outright,
  // the delivered result is the baseline's network (status stays failed so
  // the table shows what happened).
  if (!ours.has_value() && base.has_value()) {
    ours = base;
    row.ours_lits = network_stats(*ours).lits;
  }

  if (opt.run_mapping) {
    obs::ScopedStage stage(nullptr, &row.stages, "mapping");
    if (ours.has_value()) {
      const auto mo = map_network(*ours, mcnc_library());
      row.ours_gates = mo.gate_count;
      row.ours_map_lits = mo.literal_count;
    }
    if (base.has_value()) {
      const auto mb = map_network(*base, mcnc_library());
      row.base_gates = mb.gate_count;
      row.base_map_lits = mb.literal_count;
    }
  }
  if (opt.run_power) {
    obs::ScopedStage stage(nullptr, &row.stages, "power");
    // Power is compared on XOR-expanded AND/OR networks so that a kept XOR
    // primitive (one net here, one cell after mapping) does not get an
    // artificial 3x advantage over the baseline's discrete implementation.
    const auto nets_of = [](const Network& n) {
      return expand_xor(decompose2(strash(n)));
    };
    // Derive the simulation seed from the circuit name so the column is a
    // pure function of the circuit: rows computed concurrently (or in any
    // order) match the serial table exactly.
    PowerOptions po = opt.power;
    po.sim_seed = opt.power.sim_seed ^ fnv1a64(bench.name);
    if (ours.has_value()) {
      const PowerReport pr = estimate_power(nets_of(*ours), po);
      row.ours_power = pr.total;
      row.sim.accumulate(pr.sim);
    }
    if (base.has_value()) {
      const PowerReport pr = estimate_power(nets_of(*base), po);
      row.base_power = pr.total;
      row.sim.accumulate(pr.sim);
    }
  }
  row.row_seconds =
      1e-9 * static_cast<double>(obs::now_ns() - row_start_ns);
  return row;
}

FlowRow run_flow(const std::string& circuit, const FlowOptions& opt) {
  return run_flow(make_benchmark(circuit), opt);
}

std::string format_table2(const std::vector<FlowRow>& rows) {
  std::ostringstream out;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%-10s %-8s | %-7s %-8s | %-7s %-8s | %-6s %-6s | %-6s %-6s | "
                "%-8s %-8s\n",
                "circuit", "i/o", "SISlits", "SIStime", "ourlits", "ourtime",
                "SISgts", "SISlit", "ourgts", "ourlit", "impr%lit",
                "impr%pow");
  out << buf;
  out << std::string(110, '-') << "\n";

  const auto emit = [&](const FlowRow& r, const char* mark) {
    char io[32];
    std::snprintf(io, sizeof io, "%d/%d", r.num_inputs, r.num_outputs);
    std::string tags = mark;
    if (!r.ours_status.is_ok())
      tags += " [ours:" + r.ours_status.to_string() + "]";
    if (!r.base_status.is_ok())
      tags += " [sis:" + r.base_status.to_string() + "]";
    std::snprintf(buf, sizeof buf,
                  "%-10s %-8s | %-7zu %-8.2f | %-7zu %-8.2f | %-6zu %-6zu | "
                  "%-6zu %-6zu | %-8.1f %-8.1f %s\n",
                  r.circuit.c_str(), io, r.base_lits, r.base_seconds,
                  r.ours_lits, r.ours_seconds, r.base_gates, r.base_map_lits,
                  r.ours_gates, r.ours_map_lits, r.improve_lits_pct(),
                  r.improve_power_pct(), tags.c_str());
    out << buf;
  };

  FlowRow arith_total, all_total;
  double arith_impr_l = 0, arith_impr_p = 0, all_impr_l = 0, all_impr_p = 0;
  std::size_t n_arith = 0;
  for (const auto& r : rows) {
    emit(r, r.arithmetic ? (r.exact_benchmark ? "[arith]" : "[arith,sub]")
                         : (r.exact_benchmark ? "" : "[sub]"));
    const auto acc = [&](FlowRow& t) {
      t.base_lits += r.base_lits;
      t.base_seconds += r.base_seconds;
      t.ours_lits += r.ours_lits;
      t.ours_seconds += r.ours_seconds;
      t.base_gates += r.base_gates;
      t.base_map_lits += r.base_map_lits;
      t.ours_gates += r.ours_gates;
      t.ours_map_lits += r.ours_map_lits;
    };
    acc(all_total);
    all_impr_l += r.improve_lits_pct();
    all_impr_p += r.improve_power_pct();
    if (r.arithmetic) {
      acc(arith_total);
      arith_impr_l += r.improve_lits_pct();
      arith_impr_p += r.improve_power_pct();
      ++n_arith;
    }
  }
  out << std::string(110, '-') << "\n";
  const auto emit_total = [&](const char* name, const FlowRow& t, double il,
                              double ip, std::size_t n) {
    if (n == 0) return;
    std::snprintf(buf, sizeof buf,
                  "%-10s %-8s | %-7zu %-8.2f | %-7zu %-8.2f | %-6zu %-6zu | "
                  "%-6zu %-6zu | %-8.1f %-8.1f\n",
                  name, "", t.base_lits, t.base_seconds, t.ours_lits,
                  t.ours_seconds, t.base_gates, t.base_map_lits, t.ours_gates,
                  t.ours_map_lits, il / static_cast<double>(n),
                  ip / static_cast<double>(n));
    out << buf;
  };
  emit_total("Tot.arith", arith_total, arith_impr_l, arith_impr_p, n_arith);
  emit_total("Tot.all", all_total, all_impr_l, all_impr_p, rows.size());
  return out.str();
}

std::string format_dd_kernel_summary(const std::vector<FlowRow>& rows) {
  obs::MetricsRegistry m;
  for (const FlowRow& r : rows) m.absorb_bdd(r.bdd);
  return obs::format_metrics_summary(m);
}

obs::MetricsRegistry collect_flow_metrics(const std::vector<FlowRow>& rows) {
  obs::MetricsRegistry m;
  for (const FlowRow& r : rows) {
    m.absorb_bdd(r.bdd);
    m.absorb_sim(r.sim);
    m.absorb_rewrite(r.rewrite);
    m.absorb_status(r.worst_status());
    m.absorb_stages(r.stages);
    m.add("flow.governor_polls", r.ours_polls + r.base_polls);
    m.add("flow.ladder_descents", r.ladder_descents);
    // Rows spliced from a pre-v3 resume journal carry no latency; skip
    // them rather than pull the percentiles toward zero.
    if (r.row_seconds > 0.0) m.observe("flow.row_seconds", r.row_seconds);
  }
  return m;
}

namespace {

obs::Json status_json(const FlowStatus& st) {
  obs::Json j = obs::Json::object();
  j["outcome"] = st.is_failed() ? "failed"
                                : (st.is_degraded() ? "degraded" : "ok");
  j["stage"] = st.stage;
  j["reason"] = st.reason;
  j["code"] = to_string(st.code);
  return j;
}

} // namespace

obs::Json flow_row_json(const FlowRow& row) {
  obs::Json j = obs::Json::object();
  j["circuit"] = row.circuit;
  j["inputs"] = row.num_inputs;
  j["outputs"] = row.num_outputs;
  j["arithmetic"] = row.arithmetic;
  j["exact_benchmark"] = row.exact_benchmark;
  j["base_lits"] = row.base_lits;
  j["base_seconds"] = row.base_seconds;
  j["ours_lits"] = row.ours_lits;
  j["ours_seconds"] = row.ours_seconds;
  j["base_gates"] = row.base_gates;
  j["base_map_lits"] = row.base_map_lits;
  j["ours_gates"] = row.ours_gates;
  j["ours_map_lits"] = row.ours_map_lits;
  j["base_power"] = row.base_power;
  j["ours_power"] = row.ours_power;
  j["improve_lits_pct"] = row.improve_lits_pct();
  j["improve_power_pct"] = row.improve_power_pct();
  obs::Json status = obs::Json::object();
  status["ours"] = status_json(row.ours_status);
  status["base"] = status_json(row.base_status);
  status["worst"] = row.worst_status().is_failed()
                        ? "failed"
                        : (row.worst_status().is_degraded() ? "degraded"
                                                            : "ok");
  j["status"] = std::move(status);
  j["governor_polls"] = row.ours_polls + row.base_polls;
  j["ladder_descents"] = row.ladder_descents;
  j["attempts"] = row.attempts;
  j["row_seconds"] = row.row_seconds;
  if (!row.rewrite.empty()) {
    obs::Json rw = obs::Json::object();
    rw["passes"] = row.rewrite.passes;
    rw["roots"] = row.rewrite.roots;
    rw["cuts_enumerated"] = row.rewrite.cuts_enumerated;
    rw["db_hits"] = row.rewrite.db_hits;
    rw["candidates"] = row.rewrite.candidates;
    rw["stale_skips"] = row.rewrite.stale_skips;
    rw["replacements"] = row.rewrite.replacements;
    rw["sim_rejects"] = row.rewrite.sim_rejects;
    rw["bdd_rejects"] = row.rewrite.bdd_rejects;
    rw["lits_before"] = row.rewrite.lits_before;
    rw["lits_after"] = row.rewrite.lits_after;
    rw["gain_lits"] = row.rewrite.gain_lits;
    j["rewrite"] = std::move(rw);
  }
  obs::Json stages = obs::Json::array();
  for (const StageBreakdown::Entry& e : row.stages.entries) {
    obs::Json st = obs::Json::object();
    st["name"] = e.name;
    st["seconds"] = e.seconds;
    st["calls"] = e.calls;
    stages.push_back(std::move(st));
  }
  j["stages"] = std::move(stages);
  return j;
}

namespace {

FlowStatus status_from_json(const obs::Json& j, const char* what) {
  if (!j.is_object())
    throw RmsynError(ErrorCode::ParseError,
                     std::string("flow_row_from_json: ") + what +
                         " is not an object");
  FlowStatus st;
  const std::string outcome =
      j.contains("outcome") ? j.get("outcome").as_string() : "ok";
  if (outcome == "ok") st.outcome = FlowOutcome::Ok;
  else if (outcome == "degraded") st.outcome = FlowOutcome::Degraded;
  else if (outcome == "failed") st.outcome = FlowOutcome::Failed;
  else
    throw RmsynError(ErrorCode::ParseError,
                     "flow_row_from_json: bad outcome '" + outcome + "'");
  if (j.contains("stage")) st.stage = j.get("stage").as_string();
  if (j.contains("reason")) st.reason = j.get("reason").as_string();
  if (j.contains("code"))
    st.code = error_code_from_string(j.get("code").as_string());
  return st;
}

} // namespace

FlowRow flow_row_from_json(const obs::Json& j) {
  if (!j.is_object())
    throw RmsynError(ErrorCode::ParseError,
                     "flow_row_from_json: row is not an object");
  FlowRow row;
  const auto num = [&](const char* key) -> double {
    return j.contains(key) && j.get(key).is_number() ? j.get(key).as_number()
                                                     : 0.0;
  };
  const auto count = [&](const char* key) -> std::size_t {
    const double v = num(key);
    return v <= 0.0 ? 0 : static_cast<std::size_t>(v);
  };
  if (j.contains("circuit")) row.circuit = j.get("circuit").as_string();
  row.num_inputs = static_cast<int>(num("inputs"));
  row.num_outputs = static_cast<int>(num("outputs"));
  row.arithmetic = j.contains("arithmetic") && j.get("arithmetic").as_bool();
  row.exact_benchmark =
      j.contains("exact_benchmark") && j.get("exact_benchmark").as_bool();
  row.base_lits = count("base_lits");
  row.base_seconds = num("base_seconds");
  row.ours_lits = count("ours_lits");
  row.ours_seconds = num("ours_seconds");
  row.base_gates = count("base_gates");
  row.base_map_lits = count("base_map_lits");
  row.ours_gates = count("ours_gates");
  row.ours_map_lits = count("ours_map_lits");
  row.base_power = num("base_power");
  row.ours_power = num("ours_power");
  if (j.contains("status")) {
    const obs::Json& st = j.get("status");
    if (st.contains("ours"))
      row.ours_status = status_from_json(st.get("ours"), "status.ours");
    if (st.contains("base"))
      row.base_status = status_from_json(st.get("base"), "status.base");
  }
  if (j.contains("rewrite") && j.get("rewrite").is_object()) {
    const obs::Json& rw = j.get("rewrite");
    const auto rcount = [&](const char* key) -> uint64_t {
      if (!rw.contains(key) || !rw.get(key).is_number()) return 0;
      const double v = rw.get(key).as_number();
      return v <= 0.0 ? 0 : static_cast<uint64_t>(v);
    };
    row.rewrite.passes = rcount("passes");
    row.rewrite.roots = rcount("roots");
    row.rewrite.cuts_enumerated = rcount("cuts_enumerated");
    row.rewrite.db_hits = rcount("db_hits");
    row.rewrite.candidates = rcount("candidates");
    row.rewrite.stale_skips = rcount("stale_skips");
    row.rewrite.replacements = rcount("replacements");
    row.rewrite.sim_rejects = rcount("sim_rejects");
    row.rewrite.bdd_rejects = rcount("bdd_rejects");
    row.rewrite.lits_before = rcount("lits_before");
    row.rewrite.lits_after = rcount("lits_after");
    row.rewrite.gain_lits = rcount("gain_lits");
  }
  row.ours_polls = static_cast<uint64_t>(num("governor_polls"));
  row.ladder_descents = count("ladder_descents");
  row.attempts = j.contains("attempts")
                     ? static_cast<int>(num("attempts"))
                     : 1;
  if (row.attempts < 1) row.attempts = 1;
  row.row_seconds = num("row_seconds");
  if (j.contains("stages") && j.get("stages").is_array()) {
    const obs::Json& stages = j.get("stages");
    for (std::size_t i = 0; i < stages.size(); ++i) {
      const obs::Json& e = stages.at(i);
      if (!e.is_object() || !e.contains("name")) continue;
      const double calls = e.contains("calls") ? e.get("calls").as_number() : 1.0;
      row.stages.add(e.get("name").as_string(),
                     e.contains("seconds") ? e.get("seconds").as_number() : 0.0,
                     calls < 1.0 ? 1 : static_cast<uint64_t>(calls));
    }
  }
  return row;
}

} // namespace rmsyn
