#include "flow/flow.hpp"

#include <cstdio>
#include <sstream>

#include "network/stats.hpp"
#include "network/transform.hpp"

namespace rmsyn {

namespace {

uint64_t fnv1a64(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

} // namespace

FlowRow run_flow(const Benchmark& bench, const FlowOptions& opt) {
  FlowRow row;
  row.circuit = bench.name;
  row.num_inputs = bench.num_inputs;
  row.num_outputs = bench.num_outputs;
  row.arithmetic = bench.arithmetic;
  row.exact_benchmark = bench.exact;

  // Each flow runs under its own governor (fresh budget) and its own
  // try/catch: a verification throw in one flow must not discard the
  // other's result.
  std::optional<Network> ours;
  {
    SynthOptions so = opt.synth;
    std::optional<ResourceGovernor> gov;
    if (so.governor == nullptr && !opt.limits.unlimited()) {
      gov.emplace(opt.limits);
      so.governor = &*gov;
    }
    try {
      SynthReport rep;
      Network n = synthesize(bench.spec, so, &rep);
      row.ours_lits = rep.stats.lits;
      row.ours_seconds = rep.seconds;
      row.bdd = rep.bdd;
      row.ours_status = rep.status;
      if (!rep.status.is_failed()) ours = std::move(n);
    } catch (const std::exception& e) {
      row.ours_status = FlowStatus::failed("verify", e.what());
      row.ours_lits = 0;
      row.ours_seconds = 0.0;
    }
  }

  std::optional<Network> base;
  {
    BaselineOptions bo = opt.baseline;
    std::optional<ResourceGovernor> gov;
    if (bo.governor == nullptr && !opt.limits.unlimited()) {
      gov.emplace(opt.limits);
      bo.governor = &*gov;
    }
    try {
      BaselineReport rep;
      Network n = baseline_synthesize(bench.spec, bo, &rep);
      row.base_lits = rep.stats.lits;
      row.base_seconds = rep.seconds;
      row.base_status = rep.status;
      base = std::move(n);
    } catch (const std::exception& e) {
      row.base_status = FlowStatus::failed("baseline-verify", e.what());
      row.base_lits = 0;
      row.base_seconds = 0.0;
    }
  }

  // Bottom rung of the degradation ladder: when our flow failed outright,
  // the delivered result is the baseline's network (status stays failed so
  // the table shows what happened).
  if (!ours.has_value() && base.has_value()) {
    ours = base;
    row.ours_lits = network_stats(*ours).lits;
  }

  if (opt.run_mapping) {
    if (ours.has_value()) {
      const auto mo = map_network(*ours, mcnc_library());
      row.ours_gates = mo.gate_count;
      row.ours_map_lits = mo.literal_count;
    }
    if (base.has_value()) {
      const auto mb = map_network(*base, mcnc_library());
      row.base_gates = mb.gate_count;
      row.base_map_lits = mb.literal_count;
    }
  }
  if (opt.run_power) {
    // Power is compared on XOR-expanded AND/OR networks so that a kept XOR
    // primitive (one net here, one cell after mapping) does not get an
    // artificial 3x advantage over the baseline's discrete implementation.
    const auto nets_of = [](const Network& n) {
      return expand_xor(decompose2(strash(n)));
    };
    // Derive the simulation seed from the circuit name so the column is a
    // pure function of the circuit: rows computed concurrently (or in any
    // order) match the serial table exactly.
    PowerOptions po = opt.power;
    po.sim_seed = opt.power.sim_seed ^ fnv1a64(bench.name);
    if (ours.has_value())
      row.ours_power = estimate_power(nets_of(*ours), po).total;
    if (base.has_value())
      row.base_power = estimate_power(nets_of(*base), po).total;
  }
  return row;
}

FlowRow run_flow(const std::string& circuit, const FlowOptions& opt) {
  return run_flow(make_benchmark(circuit), opt);
}

std::string format_table2(const std::vector<FlowRow>& rows) {
  std::ostringstream out;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%-10s %-8s | %-7s %-8s | %-7s %-8s | %-6s %-6s | %-6s %-6s | "
                "%-8s %-8s\n",
                "circuit", "i/o", "SISlits", "SIStime", "ourlits", "ourtime",
                "SISgts", "SISlit", "ourgts", "ourlit", "impr%lit",
                "impr%pow");
  out << buf;
  out << std::string(110, '-') << "\n";

  const auto emit = [&](const FlowRow& r, const char* mark) {
    char io[32];
    std::snprintf(io, sizeof io, "%d/%d", r.num_inputs, r.num_outputs);
    std::string tags = mark;
    if (!r.ours_status.is_ok())
      tags += " [ours:" + r.ours_status.to_string() + "]";
    if (!r.base_status.is_ok())
      tags += " [sis:" + r.base_status.to_string() + "]";
    std::snprintf(buf, sizeof buf,
                  "%-10s %-8s | %-7zu %-8.2f | %-7zu %-8.2f | %-6zu %-6zu | "
                  "%-6zu %-6zu | %-8.1f %-8.1f %s\n",
                  r.circuit.c_str(), io, r.base_lits, r.base_seconds,
                  r.ours_lits, r.ours_seconds, r.base_gates, r.base_map_lits,
                  r.ours_gates, r.ours_map_lits, r.improve_lits_pct(),
                  r.improve_power_pct(), tags.c_str());
    out << buf;
  };

  FlowRow arith_total, all_total;
  double arith_impr_l = 0, arith_impr_p = 0, all_impr_l = 0, all_impr_p = 0;
  std::size_t n_arith = 0;
  for (const auto& r : rows) {
    emit(r, r.arithmetic ? (r.exact_benchmark ? "[arith]" : "[arith,sub]")
                         : (r.exact_benchmark ? "" : "[sub]"));
    const auto acc = [&](FlowRow& t) {
      t.base_lits += r.base_lits;
      t.base_seconds += r.base_seconds;
      t.ours_lits += r.ours_lits;
      t.ours_seconds += r.ours_seconds;
      t.base_gates += r.base_gates;
      t.base_map_lits += r.base_map_lits;
      t.ours_gates += r.ours_gates;
      t.ours_map_lits += r.ours_map_lits;
    };
    acc(all_total);
    all_impr_l += r.improve_lits_pct();
    all_impr_p += r.improve_power_pct();
    if (r.arithmetic) {
      acc(arith_total);
      arith_impr_l += r.improve_lits_pct();
      arith_impr_p += r.improve_power_pct();
      ++n_arith;
    }
  }
  out << std::string(110, '-') << "\n";
  const auto emit_total = [&](const char* name, const FlowRow& t, double il,
                              double ip, std::size_t n) {
    if (n == 0) return;
    std::snprintf(buf, sizeof buf,
                  "%-10s %-8s | %-7zu %-8.2f | %-7zu %-8.2f | %-6zu %-6zu | "
                  "%-6zu %-6zu | %-8.1f %-8.1f\n",
                  name, "", t.base_lits, t.base_seconds, t.ours_lits,
                  t.ours_seconds, t.base_gates, t.base_map_lits, t.ours_gates,
                  t.ours_map_lits, il / static_cast<double>(n),
                  ip / static_cast<double>(n));
    out << buf;
  };
  emit_total("Tot.arith", arith_total, arith_impr_l, arith_impr_p, n_arith);
  emit_total("Tot.all", all_total, all_impr_l, all_impr_p, rows.size());
  return out.str();
}

std::string format_dd_kernel_summary(const std::vector<FlowRow>& rows) {
  BddStats s;
  for (const auto& r : rows) s.accumulate(r.bdd);
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "DD kernel: %llu cache lookups (hit rate %.1f%%), "
                "%llu unique-table probes (%.1f%% hits), peak live nodes %zu, "
                "%llu gc runs freeing %llu nodes, %llu reorders (%llu swaps)\n",
                static_cast<unsigned long long>(s.cache_lookups),
                100.0 * s.cache_hit_rate(),
                static_cast<unsigned long long>(s.unique_lookups),
                s.unique_lookups == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(s.unique_hits) /
                          static_cast<double>(s.unique_lookups),
                s.peak_live_nodes,
                static_cast<unsigned long long>(s.gc_runs),
                static_cast<unsigned long long>(s.nodes_freed),
                static_cast<unsigned long long>(s.reorder_runs),
                static_cast<unsigned long long>(s.reorder_swaps));
  return std::string(buf);
}

} // namespace rmsyn
