// End-to-end experiment runner shared by the bench harnesses and examples:
// runs one Table-2 circuit through both flows (ours and the SIS-style
// baseline), technology-maps both onto the mcnc-flavoured library, and
// collects every column of the paper's Table 2.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "baseline/script.hpp"
#include "benchgen/spec.hpp"
#include "core/synth.hpp"
#include "mapping/mapper.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "power/power.hpp"

namespace rmsyn {

struct FlowRow {
  std::string circuit;
  int num_inputs = 0;
  int num_outputs = 0;
  bool arithmetic = false;
  bool exact_benchmark = false;

  // Pre-mapping (Table 2 columns 3-4): 2-input AND/OR literals + seconds.
  std::size_t base_lits = 0;
  double base_seconds = 0.0;
  std::size_t ours_lits = 0;
  double ours_seconds = 0.0;

  // Post-mapping (columns 5-8).
  std::size_t base_gates = 0;
  std::size_t base_map_lits = 0;
  std::size_t ours_gates = 0;
  std::size_t ours_map_lits = 0;

  // Power (improve%power).
  double base_power = 0.0;
  double ours_power = 0.0;

  // End-to-end wall time of this row (both flows + mapping + power), the
  // unit of the flow.row_seconds latency histogram batch prints p50/p99
  // of. 0 for rows spliced from a pre-v3 resume journal.
  double row_seconds = 0.0;

  // DD-kernel observability for the FPRM flow (accumulated over every
  // manager synthesize() created for this circuit).
  BddStats bdd;

  // Incremental-simulation counters (sim/sim.hpp): the FPRM flow's resub
  // prefilters + redundancy resims, plus both power estimates' sampled
  // fallbacks.
  SimStats sim;

  // Cut-rewriting post-pass counters (all-zero unless the FPRM flow ran
  // with synth.run_rewrite).
  rw::RewriteStats rewrite;

  // Per-stage wall clock, merged across both flows plus mapping and power
  // (stage names match the trace spans and the governor stage stack).
  StageBreakdown stages;
  // Cooperative governor polls consumed by each flow (0 = ungoverned).
  uint64_t ours_polls = 0;
  uint64_t base_polls = 0;
  // Degradation-ladder descents the FPRM flow consumed (0 = full flow).
  std::size_t ladder_descents = 0;
  // Attempts the batch runner spent on this row (1 = first try succeeded;
  // >1 = transient-retryable failures were retried with escalated budgets).
  int attempts = 1;

  // Per-flow outcome. A failed flow keeps its columns at zero (or, for the
  // FPRM flow, mirrors the baseline columns when the baseline survived —
  // the last rung of the degradation ladder ships the baseline result).
  FlowStatus ours_status;
  FlowStatus base_status;
  const FlowStatus& worst_status() const {
    return worse(ours_status, base_status);
  }

  double improve_lits_pct() const {
    return base_map_lits == 0
               ? 0.0
               : 100.0 * (1.0 - static_cast<double>(ours_map_lits) /
                                    static_cast<double>(base_map_lits));
  }
  double improve_power_pct() const {
    return base_power == 0.0 ? 0.0
                             : 100.0 * (1.0 - ours_power / base_power);
  }
};

struct FlowOptions {
  SynthOptions synth;
  BaselineOptions baseline;
  bool run_mapping = true;
  bool run_power = true;
  /// Power-estimator settings. The simulation seed actually used for a
  /// circuit is power.sim_seed XOR hash(circuit name), so the power columns
  /// depend only on the circuit, never on which worker ran it or in what
  /// order — a batch at --jobs N reproduces the serial table bit-for-bit.
  PowerOptions power;
  /// Resource budget, applied to each flow with its own fresh governor so
  /// one flow's exhaustion cannot starve the other. Ignored for a flow
  /// whose options already carry an explicit governor.
  ResourceLimits limits;
};

/// Runs one circuit through both flows. An internal verification failure
/// (or any other exception) in one flow is captured into that flow's
/// FlowStatus instead of propagating, so the surviving flow's columns are
/// kept. run_flow itself only throws for spec-construction errors.
FlowRow run_flow(const Benchmark& bench, const FlowOptions& opt = {});
FlowRow run_flow(const std::string& circuit, const FlowOptions& opt = {});

/// Pretty-prints rows in the paper's Table-2 layout, with Total-arith and
/// Total-all summary rows (sums for counts/time, averages for the
/// improvement columns, as in the paper).
std::string format_table2(const std::vector<FlowRow>& rows);

/// One-line DD-kernel summary over a set of rows: computed-table hit rate,
/// peak live nodes, GC and reorder activity. Appended by the bench
/// harnesses below their tables. (A thin wrapper over the obs metrics
/// registry: absorbs the accumulated BddStats and renders the dd.* group
/// through obs::format_metrics_summary.)
std::string format_dd_kernel_summary(const std::vector<FlowRow>& rows);

/// Serializes one row for the machine-readable run report (obs/report.hpp):
/// every Table-2 column, both FlowStatus values (plus the worst), governor
/// poll counts, and the per-stage breakdown. Key order is schema-stable —
/// data/report_schema.json is the contract.
obs::Json flow_row_json(const FlowRow& row);

/// Inverse of flow_row_json for the checkpoint journal (sched/journal.hpp):
/// rebuilds a FlowRow from a journal record so `batch --resume` can splice
/// completed rows into the report without re-running them. Telemetry that
/// the row JSON does not carry (BddStats/SimStats counters) stays
/// default-initialized. Throws RmsynError(ParseError) on a malformed value.
FlowRow flow_row_from_json(const obs::Json& j);

/// Aggregates a run's rows into a metrics registry: dd.* from the
/// accumulated BddStats, flow.* outcome/poll/descent counters, stage.*
/// histograms from the merged breakdowns.
obs::MetricsRegistry collect_flow_metrics(const std::vector<FlowRow>& rows);

} // namespace rmsyn
