// A production-grade ROBDD kernel (Bryant/Brace-Rudell-Bryant style),
// standing in for the SIS 1.2 BDD package the paper used.
//
// Kernel features:
//  * Complement edges. A BddRef is (node index << 1) | complement bit; only
//    the 1-terminal exists (kTrue = regular edge to it, kFalse = the
//    complemented edge). Canonical form: the then-edge of every node is
//    regular, so equal functions intern to equal refs and bdd_not is O(1).
//  * A bounded computed table: open-addressed, power-of-two sized, lossy
//    (direct-mapped replacement), shared across and/xor/ite/cofactor/
//    density/sat_count. Replaces the old unbounded unordered_map memo.
//  * Reference-counted garbage collection. Consumers pin long-lived
//    functions with ref()/deref(); gc() mark-sweeps from the pinned roots,
//    reclaims dead nodes into a free list, and unlinks them from the
//    unique subtables. Edge reference counts are maintained internally so
//    reordering can reclaim nodes eagerly mid-sift.
//  * Dynamic variable reordering by sifting (Rudell), with a reorder()
//    entry point and an optional auto-trigger on node-count growth.
//    Reordering rewrites nodes in place, so BddRefs remain valid across
//    reorder() and keep denoting the same function.
//  * BddStats observability: unique/computed-table traffic, GC runs,
//    reorder swaps, live/peak node counts.
//
// The FPRM/OFDD machinery in src/fdd is layered directly on top of this
// package: the paper's OFDD is isomorphic to the ROBDD of the Reed-Muller
// coefficient function (see fdd/fprm.hpp).
//
// Threading: a BddManager is single-threaded — one thread mutates it at a
// time. The parallel candidate search (src/sched) gives each worker its own
// manager clone and moves functions across with import_bdd(), which only
// READS the source manager (structure accessors; no cache or stats
// mutation), so concurrent imports from one quiescent source manager are
// safe.
//
// GC protocol. Operations never collect on their own; gc() frees exactly
// the nodes unreachable from ref()'d roots (variable projection nodes are
// permanently pinned). Any ref held across a gc() call must be ref()'d
// first. Auto-reordering never frees pinned or operand nodes, but a sift
// can reclaim unpinned dead nodes — flows that enable it must pin what
// they hold (node_bdds/output_bdds do this for their results).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sop/cover.hpp"
#include "util/governor.hpp"

namespace rmsyn {

/// A BDD edge: (node index << 1) | complement bit. kTrue and kFalse are the
/// two phases of the single terminal node (index 0).
using BddRef = uint32_t;

/// Kernel observability counters, surfaced through flow reports and the
/// bench harnesses.
struct BddStats {
  uint64_t unique_lookups = 0;  ///< unique-table probes in mk()
  uint64_t unique_hits = 0;     ///< probes answered by an existing node
  uint64_t cache_lookups = 0;   ///< computed-table probes
  uint64_t cache_hits = 0;      ///< computed-table hits
  uint64_t cache_inserts = 0;   ///< entries written (lossy overwrite)
  uint64_t gc_runs = 0;
  uint64_t nodes_freed = 0;     ///< by gc() and by eager reclaim in sifting
  uint64_t reorder_runs = 0;
  uint64_t reorder_swaps = 0;   ///< adjacent-level swaps performed
  std::size_t live_nodes = 0;   ///< nonterminal nodes currently interned
  std::size_t peak_live_nodes = 0;

  double cache_hit_rate() const {
    return cache_lookups == 0
               ? 0.0
               : static_cast<double>(cache_hits) /
                     static_cast<double>(cache_lookups);
  }
  /// Accumulates another manager's counters (peak/live take the max/sum
  /// convention useful for multi-manager flows).
  void accumulate(const BddStats& o);
};

class BddManager {
public:
  static constexpr BddRef kTrue = 0;  ///< regular edge to the terminal
  static constexpr BddRef kFalse = 1; ///< complemented edge to the terminal
  /// Sentinel returned by governed operations when the attached
  /// ResourceGovernor trips mid-recursion (the CUDD NULL-return protocol:
  /// no exception ever crosses the kernel boundary). Both phases of the
  /// sentinel are invalid so bdd_not() cannot launder it back into a real
  /// ref; no legal ref collides (node_index would exceed kMaxIndex).
  static constexpr BddRef kInvalid = 0xFFFFFFFFu;

  /// True for either phase of the kInvalid sentinel. Callers must test
  /// results of governed ops with this before structural use.
  static bool is_invalid(BddRef f) { return (f | 1u) == kInvalid; }

  /// Creates a manager over `nvars` variables with the identity order
  /// (variable i starts at level i). The computed table holds
  /// 2^cache_bits entries and never grows (lossy replacement).
  explicit BddManager(int nvars, int cache_bits = 16);

  int nvars() const { return nvars_; }
  /// Number of live (interned, nonterminal) nodes.
  std::size_t node_count() const { return live_; }

  BddRef bdd_false() const { return kFalse; }
  BddRef bdd_true() const { return kTrue; }
  BddRef var(int v);
  BddRef nvar(int v) { return var(v) ^ 1u; }
  /// The literal of variable v with the given phase.
  BddRef literal(int v, bool positive) { return positive ? var(v) : nvar(v); }

  BddRef bdd_and(BddRef a, BddRef b);
  BddRef bdd_or(BddRef a, BddRef b);
  BddRef bdd_xor(BddRef a, BddRef b);
  /// O(1): complement edges make negation a bit flip.
  BddRef bdd_not(BddRef a) const { return a ^ 1u; }
  /// if-then-else, built from the two-operand kernels (shares their cache).
  BddRef bdd_ite(BddRef f, BddRef g, BddRef h);

  /// Shannon cofactor with variable v fixed to `value`.
  BddRef cofactor(BddRef f, int v, bool value);

  /// True iff f depends on variable v.
  bool depends_on(BddRef f, int v);
  /// Mask of variables f depends on.
  BitVec support(BddRef f);

  /// Number of satisfying assignments over all nvars variables, as a double
  /// (exact up to 2^53).
  double sat_count(BddRef f);

  /// Fraction of assignments satisfying f (signal probability under
  /// independent uniform inputs); never overflows regardless of nvars.
  double density(BddRef f);

  /// Enumerates the satisfying assignments of f projected onto `vars`.
  /// Requires support(f) ⊆ vars; a variable of `vars` unconstrained along a
  /// BDD path is expanded into both values (the paper's 2^(n-k) cubes per
  /// OFDD path). `cb` receives a BitVec indexed like `vars`; returning false
  /// aborts. Returns false when `limit` assignments were produced before
  /// finishing. Enumeration descends in level order but assignment slots
  /// follow the order of `vars` as given.
  bool enumerate_sat(BddRef f, const std::vector<int>& vars, std::size_t limit,
                     const std::function<bool(const BitVec&)>& cb);

  /// One satisfying assignment (any), as a full nvars-wide assignment;
  /// valid only when f != false.
  BitVec pick_sat(BddRef f);

  /// Creates (or reuses) the node ITE(var, hi, lo). `var` must lie strictly
  /// above both children's levels; used by the Reed-Muller transform in
  /// src/fdd which constructs spectra level by level.
  BddRef mk_node(int var, BddRef lo, BddRef hi);

  /// Builds the BDD of an SOP cover.
  BddRef from_cover(const Cover& c);
  /// Builds the BDD of a single cube.
  BddRef from_cube(const Cube& c);

  /// Evaluates f under a full assignment.
  bool eval(BddRef f, const BitVec& assignment) const;

  /// Number of nodes in the subgraph rooted at f (excluding the terminal;
  /// the two phases of a node count once).
  std::size_t size(BddRef f) const;

  /// Graphviz rendering for debugging/documentation; complemented edges are
  /// drawn with a dot arrowhead.
  std::string to_dot(BddRef f, const std::string& name = "f") const;

  // --- structure accessors (complement-propagating) ---------------------
  /// Top variable of f; terminals report nvars() (below every level).
  int var_of(BddRef f) const { return nodes_[f >> 1].var; }
  /// Else-edge of f with f's complement bit pushed onto it, so that
  /// f == ITE(var_of(f), hi_of(f), lo_of(f)) always holds.
  BddRef lo_of(BddRef f) const { return nodes_[f >> 1].lo ^ (f & 1u); }
  /// Then-edge of f with f's complement bit pushed onto it.
  BddRef hi_of(BddRef f) const { return nodes_[f >> 1].hi ^ (f & 1u); }
  bool is_terminal(BddRef f) const { return f <= kFalse; }
  static bool is_complement(BddRef f) { return (f & 1u) != 0; }
  /// The positive phase of f (complement bit cleared).
  static BddRef regular(BddRef f) { return f & ~1u; }

  // --- variable order ---------------------------------------------------
  /// Level (0 = top) variable v currently sits at.
  int level_of(int v) const { return perm_[static_cast<std::size_t>(v)]; }
  /// Variable at level l.
  int var_at_level(int l) const { return order_[static_cast<std::size_t>(l)]; }
  /// Level of f's top node; terminals report nvars().
  int level_of_ref(BddRef f) const {
    return perm_[static_cast<std::size_t>(nodes_[f >> 1].var)];
  }

  // --- garbage collection ----------------------------------------------
  /// Pins f as a GC root (returns f for chaining). Pin anything held
  /// across gc()/reorder(); variable projection nodes are always pinned.
  BddRef ref(BddRef f);
  void deref(BddRef f);
  /// Mark-sweep from the pinned roots: reclaims dead nodes into the free
  /// list, unlinks them from the unique subtables, and flushes the
  /// computed table. Returns the number of nodes freed.
  std::size_t gc();

  // --- dynamic reordering -----------------------------------------------
  /// Sifts every variable to its locally best level (Rudell). Refs stay
  /// valid and keep their function; unpinned dead nodes may be reclaimed.
  /// Call gc() first for the most accurate sift decisions. Returns the
  /// live node count afterwards.
  std::size_t reorder();
  /// Enables the auto-trigger: public operations reorder when the live
  /// node count crosses an adaptive threshold. Flows enabling this must
  /// pin (ref) every BddRef they hold.
  void set_auto_reorder(bool on) { auto_reorder_ = on; }
  bool auto_reorder() const { return auto_reorder_; }

  /// RAII guard deferring auto-reordering, for algorithms that capture the
  /// variable order across multiple kernel calls (e.g. spectrum builders).
  class ReorderHold {
  public:
    explicit ReorderHold(BddManager& m) : m_(&m) { ++m_->hold_; }
    ~ReorderHold() { --m_->hold_; }
    ReorderHold(const ReorderHold&) = delete;
    ReorderHold& operator=(const ReorderHold&) = delete;

  private:
    BddManager* m_;
  };

  // --- resource governance ----------------------------------------------
  /// Attaches (or detaches, with nullptr) a cooperative resource governor.
  /// Governed recursive operations poll it and return kInvalid once it
  /// trips; mk() itself never fails on a trip (so sifting stays safe) but
  /// reports allocations and the live count so node limits and allocation
  /// faults surface at the next poll. Ungoverned managers behave exactly
  /// as before.
  void set_governor(ResourceGovernor* g) { gov_ = g; }
  ResourceGovernor* governor() const { return gov_; }

  // --- observability ----------------------------------------------------
  /// Counters; live_nodes/peak_live_nodes are filled in on access.
  BddStats stats() const;
  /// Debug invariant check: canonical then-edges, reduced nodes, level
  /// ordering, unique triples, consistent subtable membership.
  bool check_canonical() const;

private:
  struct Node {
    int32_t var;       // variable index; nvars_ for the terminal, -1 = free
    BddRef lo;         // else-edge (may be complemented)
    BddRef hi;         // then-edge (always regular)
    uint32_t next;     // unique-subtable chain (node index; 0 = end)
    uint32_t edge_ref; // parent-edge count (internal)
    uint32_t ext_ref;  // external pins (GC roots)
  };

  struct Subtable {
    std::vector<uint32_t> buckets; // node indices, 0 = empty
    std::size_t count = 0;
  };

  enum class Op : uint32_t { None = 0, And, Xor, Cof0, Cof1, Density };
  struct CacheEntry {
    BddRef a = 0, b = 0, c = 0;
    Op op = Op::None;
    uint64_t val = 0;
  };

  static constexpr uint32_t kMaxIndex = (1u << 28) - 1;
  static constexpr int32_t kFreeVar = -1;
  static constexpr std::size_t kAutoReorderMin = 4096;

  static uint32_t node_index(BddRef f) { return f >> 1; }
  static std::size_t hash2(uint64_t a, uint64_t b) {
    uint64_t z = a * 0x9e3779b97f4a7c15ull + b + 0x7f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }

  BddRef mk(int var, BddRef lo, BddRef hi);
  void rehash(Subtable& st);
  void unlink(uint32_t i);

  BddRef and_rec(BddRef a, BddRef b);
  BddRef xor_rec(BddRef a, BddRef b);
  BddRef cof_rec(BddRef f, int v, int lv, bool value);
  double density_rec(BddRef f_reg);

  bool cache_find(Op op, BddRef a, BddRef b, BddRef c, uint64_t* out);
  void cache_put(Op op, BddRef a, BddRef b, BddRef c, uint64_t val);
  void cache_clear();

  void inc_edge(BddRef e) {
    if (e > kFalse) ++nodes_[node_index(e)].edge_ref;
  }
  /// Decrements a parent-edge count; cascades an eager free when the node
  /// becomes dead (used only during sifting swaps).
  void dec_edge_reclaim(BddRef e);
  void free_node(uint32_t i);

  void maybe_reorder(BddRef a = kTrue, BddRef b = kTrue);
  void swap_levels(int l);
  void sift_one(int v);

  int nvars_;
  std::vector<Node> nodes_;
  std::vector<Subtable> tables_; // one unique subtable per variable
  std::vector<uint32_t> free_;   // reclaimed node indices
  std::vector<CacheEntry> cache_;
  std::size_t cache_mask_;
  std::vector<BddRef> var_refs_;
  std::vector<int> perm_;  // var -> level (perm_[nvars_] = nvars_: terminal)
  std::vector<int> order_; // level -> var
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
  bool auto_reorder_ = false;
  int hold_ = 0;
  std::size_t next_reorder_at_ = kAutoReorderMin;
  ResourceGovernor* gov_ = nullptr;
  mutable BddStats stats_;
};

/// Copies `f` from `src` into `dst` under the shared variable numbering
/// (dst.nvars() >= src's top referenced variable). Rebuilds bottom-up with
/// ITE composition, so the two managers' variable ORDERS need not match;
/// the result is canonical in dst. Only reads `src` (see the threading note
/// above), which makes it the transfer primitive for per-worker manager
/// clones in the parallel candidate search. Returns kInvalid when a
/// governed `dst` trips mid-copy. Do not run with auto-reordering enabled
/// on `dst` (intermediate refs are unpinned).
BddRef import_bdd(BddManager& dst, const BddManager& src, BddRef f);

} // namespace rmsyn
