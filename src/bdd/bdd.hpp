// A from-scratch ROBDD package (Bryant-style), standing in for the SIS 1.2
// BDD package the paper used. Reduced, ordered, no complement edges; nodes
// are interned in a unique table and live for the manager's lifetime (the
// circuits in this reproduction are small enough that garbage collection is
// unnecessary — managers are created per task and discarded).
//
// The FPRM/OFDD machinery in src/fdd is layered directly on top of this
// package: the paper's OFDD is isomorphic to the ROBDD of the Reed-Muller
// coefficient function (see fdd/fprm.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sop/cover.hpp"

namespace rmsyn {

/// Index of a BDD node inside its manager. 0 and 1 are the terminals.
using BddRef = uint32_t;

class BddManager {
public:
  static constexpr BddRef kFalse = 0;
  static constexpr BddRef kTrue = 1;

  /// Creates a manager over `nvars` variables with the identity order
  /// (variable i is at level i).
  explicit BddManager(int nvars);

  int nvars() const { return nvars_; }
  std::size_t node_count() const { return nodes_.size(); }

  BddRef bdd_false() const { return kFalse; }
  BddRef bdd_true() const { return kTrue; }
  BddRef var(int v);
  BddRef nvar(int v);
  /// The literal of variable v with the given phase.
  BddRef literal(int v, bool positive) { return positive ? var(v) : nvar(v); }

  BddRef bdd_and(BddRef a, BddRef b);
  BddRef bdd_or(BddRef a, BddRef b);
  BddRef bdd_xor(BddRef a, BddRef b);
  BddRef bdd_not(BddRef a);
  /// if-then-else, built from the two-operand kernel.
  BddRef bdd_ite(BddRef f, BddRef g, BddRef h);

  /// Shannon cofactor with variable v fixed to `value`.
  BddRef cofactor(BddRef f, int v, bool value);

  /// True iff f depends on variable v.
  bool depends_on(BddRef f, int v);
  /// Mask of variables f depends on.
  BitVec support(BddRef f);

  /// Number of satisfying assignments over all nvars variables, as a double
  /// (exact up to 2^53).
  double sat_count(BddRef f);

  /// Fraction of assignments satisfying f (signal probability under
  /// independent uniform inputs); never overflows regardless of nvars.
  double density(BddRef f);

  /// Enumerates the satisfying assignments of f projected onto `vars`.
  /// Requires support(f) ⊆ vars; a variable of `vars` unconstrained along a
  /// BDD path is expanded into both values (the paper's 2^(n-k) cubes per
  /// OFDD path). `cb` receives a BitVec indexed like `vars`; returning false
  /// aborts. Returns false when `limit` assignments were produced before
  /// finishing.
  bool enumerate_sat(BddRef f, const std::vector<int>& vars, std::size_t limit,
                     const std::function<bool(const BitVec&)>& cb);

  /// One satisfying assignment (any), as a full nvars-wide assignment;
  /// valid only when f != false.
  BitVec pick_sat(BddRef f);

  /// Creates (or reuses) the node ITE(var, hi, lo). `var` must lie strictly
  /// above both children's levels; used by the Reed-Muller transform in
  /// src/fdd which constructs spectra level by level.
  BddRef mk_node(int var, BddRef lo, BddRef hi);

  /// Builds the BDD of an SOP cover.
  BddRef from_cover(const Cover& c);
  /// Builds the BDD of a single cube.
  BddRef from_cube(const Cube& c);

  /// Evaluates f under a full assignment.
  bool eval(BddRef f, const BitVec& assignment) const;

  /// Number of nodes in the subgraph rooted at f (excluding terminals).
  std::size_t size(BddRef f) const;

  /// Graphviz rendering for debugging/documentation.
  std::string to_dot(BddRef f, const std::string& name = "f") const;

  int var_of(BddRef f) const { return nodes_[f].var; }
  BddRef lo_of(BddRef f) const { return nodes_[f].lo; }
  BddRef hi_of(BddRef f) const { return nodes_[f].hi; }
  bool is_terminal(BddRef f) const { return f <= kTrue; }

private:
  struct Node {
    int var; // level == var index; terminals use nvars_ (below everything)
    BddRef lo;
    BddRef hi;
  };

  struct KeyHash {
    std::size_t operator()(const uint64_t& k) const {
      uint64_t z = k + 0x9e3779b97f4a7c15ull;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return static_cast<std::size_t>(z ^ (z >> 31));
    }
  };

  BddRef mk(int var, BddRef lo, BddRef hi);

  enum class Op : uint8_t { And, Or, Xor };
  BddRef apply(Op op, BddRef a, BddRef b);

  int nvars_;
  std::vector<Node> nodes_;
  // Keys are exact bit-packings (see pack_* below), so lookups can never
  // alias distinct triples.
  std::unordered_map<uint64_t, BddRef, KeyHash> unique_; // (var,lo,hi)
  std::unordered_map<uint64_t, BddRef, KeyHash> cache_;  // (op,a,b)
  std::vector<BddRef> var_refs_;

  // Node references are capped at 2^23 so (var, lo, hi) packs exactly into
  // 64 bits. 8M nodes is far beyond anything this reproduction creates; the
  // cap is enforced in mk().
  static constexpr BddRef kMaxRef = (1u << 23) - 1;
  static uint64_t pack_unique(int var, BddRef lo, BddRef hi) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(var)) << 46) |
           (static_cast<uint64_t>(lo) << 23) | static_cast<uint64_t>(hi);
  }
  static uint64_t pack_cache(Op op, BddRef a, BddRef b) {
    return (static_cast<uint64_t>(op) << 46) |
           (static_cast<uint64_t>(a) << 23) | static_cast<uint64_t>(b);
  }
};

} // namespace rmsyn
