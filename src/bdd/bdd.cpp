#include "bdd/bdd.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <unordered_map>

namespace rmsyn {

void BddStats::accumulate(const BddStats& o) {
  unique_lookups += o.unique_lookups;
  unique_hits += o.unique_hits;
  cache_lookups += o.cache_lookups;
  cache_hits += o.cache_hits;
  cache_inserts += o.cache_inserts;
  gc_runs += o.gc_runs;
  nodes_freed += o.nodes_freed;
  reorder_runs += o.reorder_runs;
  reorder_swaps += o.reorder_swaps;
  live_nodes += o.live_nodes;
  peak_live_nodes = std::max(peak_live_nodes, o.peak_live_nodes);
}

BddManager::BddManager(int nvars, int cache_bits)
    : nvars_(nvars),
      cache_(std::size_t{1} << cache_bits),
      cache_mask_((std::size_t{1} << cache_bits) - 1) {
  nodes_.reserve(1024);
  // The single terminal lives at index 0, below every variable level; its
  // regular phase is kTrue and its complemented phase kFalse.
  nodes_.push_back(Node{nvars_, 0, 0, 0, 0, 1});
  tables_.resize(static_cast<std::size_t>(nvars_));
  for (auto& t : tables_) t.buckets.assign(4, 0);
  perm_.resize(static_cast<std::size_t>(nvars_) + 1);
  order_.resize(static_cast<std::size_t>(nvars_) + 1);
  std::iota(perm_.begin(), perm_.end(), 0);
  std::iota(order_.begin(), order_.end(), 0);
  var_refs_.resize(static_cast<std::size_t>(nvars_));
  for (int v = 0; v < nvars_; ++v) {
    const BddRef r = mk(v, kFalse, kTrue);
    nodes_[node_index(r)].ext_ref = 1; // projection nodes are permanent roots
    var_refs_[static_cast<std::size_t>(v)] = r;
  }
}

BddRef BddManager::var(int v) {
  assert(v >= 0 && v < nvars_);
  return var_refs_[static_cast<std::size_t>(v)];
}

// ---------------------------------------------------------------------------
// Unique table
// ---------------------------------------------------------------------------

BddRef BddManager::mk(int var, BddRef lo, BddRef hi) {
  if (lo == hi) return lo;
  // Canonical form: the then-edge is regular. A complemented then-edge is
  // absorbed by complementing the whole node.
  BddRef out_c = 0;
  if (hi & 1u) {
    lo ^= 1u;
    hi ^= 1u;
    out_c = 1u;
  }
  Subtable& st = tables_[static_cast<std::size_t>(var)];
  ++stats_.unique_lookups;
  const std::size_t b = hash2(lo, hi) & (st.buckets.size() - 1);
  for (uint32_t i = st.buckets[b]; i != 0; i = nodes_[i].next)
    if (nodes_[i].lo == lo && nodes_[i].hi == hi) {
      ++stats_.unique_hits;
      return (i << 1) | out_c;
    }
  uint32_t i;
  if (!free_.empty()) {
    i = free_.back();
    free_.pop_back();
  } else {
    if (nodes_.size() > kMaxIndex)
      throw std::runtime_error("BddManager: node limit exceeded");
    i = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  nodes_[i] = Node{var, lo, hi, st.buckets[b], 0, 0};
  inc_edge(lo);
  inc_edge(hi);
  st.buckets[b] = i;
  ++st.count;
  ++live_;
  peak_live_ = std::max(peak_live_, live_);
  if (gov_ != nullptr) {
    // Report only: mk() must stay infallible so reordering can always
    // rewrite nodes in place. A node-limit/allocation-fault trip recorded
    // here unwinds the caller at its next poll.
    gov_->count_allocation();
    gov_->note_nodes(live_);
  }
  if (st.count > st.buckets.size()) rehash(st);
  return (i << 1) | out_c;
}

void BddManager::rehash(Subtable& st) {
  std::vector<uint32_t> old = std::move(st.buckets);
  st.buckets.assign(old.size() * 2, 0);
  for (const uint32_t head : old)
    for (uint32_t i = head; i != 0;) {
      const uint32_t nx = nodes_[i].next;
      const std::size_t b =
          hash2(nodes_[i].lo, nodes_[i].hi) & (st.buckets.size() - 1);
      nodes_[i].next = st.buckets[b];
      st.buckets[b] = i;
      i = nx;
    }
}

void BddManager::unlink(uint32_t i) {
  Subtable& st = tables_[static_cast<std::size_t>(nodes_[i].var)];
  const std::size_t b =
      hash2(nodes_[i].lo, nodes_[i].hi) & (st.buckets.size() - 1);
  uint32_t* p = &st.buckets[b];
  while (*p != i) p = &nodes_[*p].next;
  *p = nodes_[i].next;
  --st.count;
}

void BddManager::free_node(uint32_t i) {
  nodes_[i] = Node{kFreeVar, 0, 0, 0, 0, 0};
  free_.push_back(i);
  --live_;
  ++stats_.nodes_freed;
}

void BddManager::dec_edge_reclaim(BddRef e) {
  if (e <= kFalse) return;
  const uint32_t i = node_index(e);
  assert(nodes_[i].edge_ref > 0);
  if (--nodes_[i].edge_ref == 0 && nodes_[i].ext_ref == 0) {
    unlink(i);
    const BddRef lo = nodes_[i].lo;
    const BddRef hi = nodes_[i].hi;
    free_node(i);
    dec_edge_reclaim(lo);
    dec_edge_reclaim(hi);
  }
}

// ---------------------------------------------------------------------------
// Computed table
// ---------------------------------------------------------------------------

bool BddManager::cache_find(Op op, BddRef a, BddRef b, BddRef c,
                            uint64_t* out) {
  ++stats_.cache_lookups;
  // Fault injection: behave as if the table permanently overflowed.
  if (gov_ != nullptr && gov_->cache_overflow_fault()) return false;
  const std::size_t idx =
      hash2((uint64_t{a} << 32) | b,
            (uint64_t{c} << 8) | static_cast<uint32_t>(op)) &
      cache_mask_;
  const CacheEntry& e = cache_[idx];
  if (e.op == op && e.a == a && e.b == b && e.c == c) {
    ++stats_.cache_hits;
    *out = e.val;
    return true;
  }
  return false;
}

void BddManager::cache_put(Op op, BddRef a, BddRef b, BddRef c, uint64_t val) {
  const std::size_t idx =
      hash2((uint64_t{a} << 32) | b,
            (uint64_t{c} << 8) | static_cast<uint32_t>(op)) &
      cache_mask_;
  cache_[idx] = CacheEntry{a, b, c, op, val};
  ++stats_.cache_inserts;
}

void BddManager::cache_clear() {
  std::fill(cache_.begin(), cache_.end(), CacheEntry{});
}

// ---------------------------------------------------------------------------
// Boolean operations
// ---------------------------------------------------------------------------

BddRef BddManager::and_rec(BddRef a, BddRef b) {
  if (is_invalid(a) || is_invalid(b)) return kInvalid;
  if (a == b) return a;
  if (a == (b ^ 1u)) return kFalse;
  if (a == kTrue) return b;
  if (b == kTrue) return a;
  if (a == kFalse || b == kFalse) return kFalse;
  if (gov_ != nullptr && !gov_->poll()) return kInvalid;
  if (a > b) std::swap(a, b);
  uint64_t hit;
  if (cache_find(Op::And, a, b, 0, &hit)) return static_cast<BddRef>(hit);
  const int la = level_of_ref(a);
  const int lb = level_of_ref(b);
  const int l = std::min(la, lb);
  const BddRef a0 = la == l ? lo_of(a) : a;
  const BddRef a1 = la == l ? hi_of(a) : a;
  const BddRef b0 = lb == l ? lo_of(b) : b;
  const BddRef b1 = lb == l ? hi_of(b) : b;
  const BddRef r0 = and_rec(a0, b0);
  if (is_invalid(r0)) return kInvalid;
  const BddRef r1 = and_rec(a1, b1);
  if (is_invalid(r1)) return kInvalid;
  const BddRef r = mk(order_[static_cast<std::size_t>(l)], r0, r1);
  cache_put(Op::And, a, b, 0, r);
  return r;
}

BddRef BddManager::xor_rec(BddRef a, BddRef b) {
  if (is_invalid(a) || is_invalid(b)) return kInvalid;
  if (a == kFalse) return b;
  if (b == kFalse) return a;
  if (a == kTrue) return b ^ 1u;
  if (b == kTrue) return a ^ 1u;
  if (a == b) return kFalse;
  if (a == (b ^ 1u)) return kTrue;
  if (gov_ != nullptr && !gov_->poll()) return kInvalid;
  // XOR ignores operand phases up to an output flip: normalise to regular
  // operands so all four phase combinations share one cache entry.
  const BddRef comp = (a & 1u) ^ (b & 1u);
  a &= ~1u;
  b &= ~1u;
  if (a > b) std::swap(a, b);
  uint64_t hit;
  if (cache_find(Op::Xor, a, b, 0, &hit))
    return static_cast<BddRef>(hit) ^ comp;
  const int la = level_of_ref(a);
  const int lb = level_of_ref(b);
  const int l = std::min(la, lb);
  const BddRef a0 = la == l ? lo_of(a) : a;
  const BddRef a1 = la == l ? hi_of(a) : a;
  const BddRef b0 = lb == l ? lo_of(b) : b;
  const BddRef b1 = lb == l ? hi_of(b) : b;
  const BddRef r0 = xor_rec(a0, b0);
  if (is_invalid(r0)) return kInvalid;
  const BddRef r1 = xor_rec(a1, b1);
  if (is_invalid(r1)) return kInvalid;
  const BddRef r = mk(order_[static_cast<std::size_t>(l)], r0, r1);
  cache_put(Op::Xor, a, b, 0, r);
  return r ^ comp;
}

BddRef BddManager::bdd_and(BddRef a, BddRef b) {
  maybe_reorder(a, b);
  return and_rec(a, b);
}

BddRef BddManager::bdd_or(BddRef a, BddRef b) {
  maybe_reorder(a, b);
  const BddRef r = and_rec(a ^ 1u, b ^ 1u); // De Morgan, shares the AND cache
  return is_invalid(r) ? kInvalid : r ^ 1u;
}

BddRef BddManager::bdd_xor(BddRef a, BddRef b) {
  maybe_reorder(a, b);
  return xor_rec(a, b);
}

BddRef BddManager::bdd_ite(BddRef f, BddRef g, BddRef h) {
  ref(h);
  maybe_reorder(f, g);
  deref(h);
  ReorderHold hold(*this); // the composition holds unpinned intermediates
  const BddRef fg = and_rec(f, g);
  if (is_invalid(fg)) return kInvalid;
  const BddRef fh = and_rec(f ^ 1u, h);
  if (is_invalid(fh)) return kInvalid;
  const BddRef r = and_rec(fg ^ 1u, fh ^ 1u);
  return is_invalid(r) ? kInvalid : r ^ 1u;
}

BddRef BddManager::cof_rec(BddRef f, int v, int lv, bool value) {
  if (is_invalid(f)) return kInvalid;
  if (is_terminal(f) || level_of_ref(f) > lv) return f;
  if (gov_ != nullptr && !gov_->poll()) return kInvalid;
  const BddRef c = f & 1u;
  const BddRef fr = f ^ c; // cache on the regular phase
  if (nodes_[node_index(fr)].var == v)
    return (value ? hi_of(fr) : lo_of(fr)) ^ c;
  const Op op = value ? Op::Cof1 : Op::Cof0;
  uint64_t hit;
  if (cache_find(op, fr, static_cast<BddRef>(v), 0, &hit))
    return static_cast<BddRef>(hit) ^ c;
  const BddRef r0 = cof_rec(lo_of(fr), v, lv, value);
  if (is_invalid(r0)) return kInvalid;
  const BddRef r1 = cof_rec(hi_of(fr), v, lv, value);
  if (is_invalid(r1)) return kInvalid;
  const BddRef r = mk(nodes_[node_index(fr)].var, r0, r1);
  cache_put(op, fr, static_cast<BddRef>(v), 0, r);
  return r ^ c;
}

BddRef BddManager::cofactor(BddRef f, int v, bool value) {
  maybe_reorder(f);
  return cof_rec(f, v, perm_[static_cast<std::size_t>(v)], value);
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

BitVec BddManager::support(BddRef f) {
  BitVec s(static_cast<std::size_t>(nvars_));
  if (is_invalid(f)) return s;
  std::vector<uint32_t> stack{node_index(f)};
  std::vector<uint8_t> seen(nodes_.size(), 0);
  while (!stack.empty()) {
    const uint32_t i = stack.back();
    stack.pop_back();
    if (i == 0 || seen[i]) continue;
    seen[i] = 1;
    s.set(static_cast<std::size_t>(nodes_[i].var));
    stack.push_back(node_index(nodes_[i].lo));
    stack.push_back(node_index(nodes_[i].hi));
  }
  return s;
}

bool BddManager::depends_on(BddRef f, int v) {
  if (is_invalid(f)) return false;
  const int lv = perm_[static_cast<std::size_t>(v)];
  std::vector<uint32_t> stack{node_index(f)};
  std::vector<uint8_t> seen(nodes_.size(), 0);
  while (!stack.empty()) {
    const uint32_t i = stack.back();
    stack.pop_back();
    if (i == 0 || seen[i]) continue;
    seen[i] = 1;
    const int l = perm_[static_cast<std::size_t>(nodes_[i].var)];
    if (l > lv) continue; // whole subgraph sits below v's level
    if (nodes_[i].var == v) return true;
    stack.push_back(node_index(nodes_[i].lo));
    stack.push_back(node_index(nodes_[i].hi));
  }
  return false;
}

double BddManager::density_rec(BddRef f) {
  assert(!is_complement(f));
  if (f == kTrue) return 1.0;
  if (gov_ != nullptr && !gov_->poll())
    return std::numeric_limits<double>::quiet_NaN();
  uint64_t hit;
  if (cache_find(Op::Density, f, 0, 0, &hit)) return std::bit_cast<double>(hit);
  const BddRef lo = nodes_[node_index(f)].lo;
  const BddRef hi = nodes_[node_index(f)].hi; // regular by canonical form
  const double dl = (lo & 1u) ? 1.0 - density_rec(lo ^ 1u) : density_rec(lo);
  const double d = 0.5 * (dl + density_rec(hi));
  if (std::isnan(d)) return d; // governor tripped below; never cache
  cache_put(Op::Density, f, 0, 0, std::bit_cast<uint64_t>(d));
  return d;
}

double BddManager::density(BddRef f) {
  if (is_invalid(f)) return std::numeric_limits<double>::quiet_NaN();
  const double d = density_rec(regular(f));
  return is_complement(f) ? 1.0 - d : d;
}

double BddManager::sat_count(BddRef f) {
  return std::ldexp(density(f), nvars_);
}

bool BddManager::enumerate_sat(BddRef f, const std::vector<int>& vars,
                               std::size_t limit,
                               const std::function<bool(const BitVec&)>& cb) {
  // Enumeration descends the diagram, so visit `vars` in level order; the
  // assignment slot of each variable still follows `vars` as given.
  std::vector<std::size_t> slots(vars.size());
  std::iota(slots.begin(), slots.end(), std::size_t{0});
  std::sort(slots.begin(), slots.end(), [&](std::size_t a, std::size_t b) {
    return perm_[static_cast<std::size_t>(vars[a])] <
           perm_[static_cast<std::size_t>(vars[b])];
  });

  BitVec assign(vars.size());
  std::size_t produced = 0;
  bool ok = true;

  if (is_invalid(f)) return false;

  const std::function<bool(BddRef, std::size_t)> rec =
      [&](BddRef g, std::size_t depth) -> bool {
    if (!ok) return false;
    if (g == kFalse) return true;
    if (gov_ != nullptr && !gov_->poll()) {
      ok = false; // reported as an incomplete enumeration, like `limit`
      return false;
    }
    if (depth == slots.size()) {
      if (g != kTrue) {
        // Function still depends on variables outside `vars` — precondition
        // violated.
        throw std::logic_error("enumerate_sat: support not contained in vars");
      }
      if (produced++ >= limit) {
        ok = false;
        return false;
      }
      if (!cb(assign)) {
        ok = false;
        return false;
      }
      return true;
    }
    const std::size_t slot = slots[depth];
    const int lv = perm_[static_cast<std::size_t>(vars[slot])];
    BddRef g0 = g;
    BddRef g1 = g;
    if (!is_terminal(g)) {
      if (level_of_ref(g) < lv)
        throw std::logic_error("enumerate_sat: node above enumeration range");
      if (level_of_ref(g) == lv) {
        g0 = lo_of(g);
        g1 = hi_of(g);
      }
    }
    assign.set(slot, false);
    if (!rec(g0, depth + 1)) return false;
    assign.set(slot, true);
    if (!rec(g1, depth + 1)) return false;
    assign.set(slot, false);
    return true;
  };
  rec(f, 0);
  return ok;
}

BitVec BddManager::pick_sat(BddRef f) {
  assert(f != kFalse);
  BitVec assign(static_cast<std::size_t>(nvars_));
  BddRef g = f;
  while (!is_terminal(g)) {
    // Any ref other than kFalse is satisfiable, so follow a living branch.
    if (hi_of(g) != kFalse) {
      assign.set(static_cast<std::size_t>(var_of(g)), true);
      g = hi_of(g);
    } else {
      g = lo_of(g);
    }
  }
  return assign;
}

BddRef BddManager::mk_node(int var, BddRef lo, BddRef hi) {
  if (is_invalid(lo) || is_invalid(hi)) return kInvalid;
  assert(var >= 0 && var < nvars_);
  assert(is_terminal(lo) ||
         level_of_ref(lo) > perm_[static_cast<std::size_t>(var)]);
  assert(is_terminal(hi) ||
         level_of_ref(hi) > perm_[static_cast<std::size_t>(var)]);
  return mk(var, lo, hi);
}

BddRef BddManager::from_cube(const Cube& c) {
  // Build bottom-up (deepest level first) to keep mk() linear.
  std::vector<int> lits;
  for (int v = 0; v < nvars_; ++v)
    if (c.has_pos(v) || c.has_neg(v)) lits.push_back(v);
  std::sort(lits.begin(), lits.end(), [&](int a, int b) {
    return perm_[static_cast<std::size_t>(a)] >
           perm_[static_cast<std::size_t>(b)];
  });
  BddRef r = kTrue;
  for (const int v : lits)
    r = c.has_pos(v) ? mk(v, kFalse, r) : mk(v, r, kFalse);
  return r;
}

BddRef BddManager::from_cover(const Cover& c) {
  maybe_reorder();
  ReorderHold hold(*this); // the partial ORs below are unpinned
  // Balanced OR reduction keeps intermediate BDDs small.
  std::vector<BddRef> parts;
  parts.reserve(c.size());
  for (const auto& cube : c.cubes()) parts.push_back(from_cube(cube));
  if (parts.empty()) return kFalse;
  while (parts.size() > 1) {
    std::vector<BddRef> next;
    next.reserve((parts.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < parts.size(); i += 2) {
      const BddRef r = and_rec(parts[i] ^ 1u, parts[i + 1] ^ 1u);
      if (is_invalid(r)) return kInvalid;
      next.push_back(r ^ 1u);
    }
    if (parts.size() % 2 == 1) next.push_back(parts.back());
    parts.swap(next);
  }
  return parts[0];
}

bool BddManager::eval(BddRef f, const BitVec& assignment) const {
  assert(!is_invalid(f));
  BddRef g = f;
  while (!is_terminal(g))
    g = assignment.get(static_cast<std::size_t>(var_of(g))) ? hi_of(g)
                                                            : lo_of(g);
  return g == kTrue;
}

std::size_t BddManager::size(BddRef f) const {
  if (is_terminal(f) || is_invalid(f)) return 0;
  std::vector<uint32_t> stack{node_index(f)};
  std::vector<uint8_t> seen(nodes_.size(), 0);
  std::size_t count = 0;
  while (!stack.empty()) {
    const uint32_t i = stack.back();
    stack.pop_back();
    if (i == 0 || seen[i]) continue;
    seen[i] = 1;
    ++count;
    stack.push_back(node_index(nodes_[i].lo));
    stack.push_back(node_index(nodes_[i].hi));
  }
  return count;
}

std::string BddManager::to_dot(BddRef f, const std::string& name) const {
  std::ostringstream out;
  out << "digraph \"" << name << "\" {\n";
  out << "  node0 [label=\"1\", shape=box];\n";
  if (is_complement(f))
    out << "  f [shape=none]; f -> node" << node_index(f)
        << " [style=dotted, arrowhead=odot];\n";
  std::vector<uint32_t> stack{node_index(f)};
  std::vector<uint8_t> seen(nodes_.size(), 0);
  while (!stack.empty()) {
    const uint32_t i = stack.back();
    stack.pop_back();
    if (i == 0 || seen[i]) continue;
    seen[i] = 1;
    const Node& n = nodes_[i];
    out << "  node" << i << " [label=\"x" << n.var << "\"];\n";
    out << "  node" << i << " -> node" << node_index(n.lo) << " [style=dashed"
        << (is_complement(n.lo) ? ", arrowhead=odot" : "") << "];\n";
    out << "  node" << i << " -> node" << node_index(n.hi) << ";\n";
    stack.push_back(node_index(n.lo));
    stack.push_back(node_index(n.hi));
  }
  out << "}\n";
  return out.str();
}

// ---------------------------------------------------------------------------
// Garbage collection
// ---------------------------------------------------------------------------

BddRef BddManager::ref(BddRef f) {
  if (f > kFalse && !is_invalid(f)) ++nodes_[node_index(f)].ext_ref;
  return f;
}

void BddManager::deref(BddRef f) {
  if (f > kFalse && !is_invalid(f)) {
    assert(nodes_[node_index(f)].ext_ref > 0);
    --nodes_[node_index(f)].ext_ref;
  }
}

std::size_t BddManager::gc() {
  ++stats_.gc_runs;
  // Mark everything reachable from an externally pinned root.
  std::vector<uint8_t> mark(nodes_.size(), 0);
  mark[0] = 1;
  std::vector<uint32_t> stack;
  for (uint32_t i = 1; i < nodes_.size(); ++i)
    if (nodes_[i].var != kFreeVar && nodes_[i].ext_ref > 0) stack.push_back(i);
  while (!stack.empty()) {
    const uint32_t i = stack.back();
    stack.pop_back();
    if (mark[i]) continue;
    mark[i] = 1;
    stack.push_back(node_index(nodes_[i].lo));
    stack.push_back(node_index(nodes_[i].hi));
  }
  // Sweep, rebuilding each unique subtable from its survivors.
  for (auto& t : tables_) {
    std::fill(t.buckets.begin(), t.buckets.end(), 0);
    t.count = 0;
  }
  std::size_t freed = 0;
  for (uint32_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].var == kFreeVar) continue;
    if (mark[i]) {
      Subtable& st = tables_[static_cast<std::size_t>(nodes_[i].var)];
      const std::size_t b =
          hash2(nodes_[i].lo, nodes_[i].hi) & (st.buckets.size() - 1);
      nodes_[i].next = st.buckets[b];
      st.buckets[b] = i;
      ++st.count;
    } else {
      // Dead parents release their edges; liveness was already decided by
      // the mark phase, so no cascading is needed here.
      if (nodes_[i].lo > kFalse) --nodes_[node_index(nodes_[i].lo)].edge_ref;
      if (nodes_[i].hi > kFalse) --nodes_[node_index(nodes_[i].hi)].edge_ref;
      free_node(i);
      ++freed;
    }
  }
  cache_clear(); // freed slots can be reused; cached refs would alias
  return freed;
}

// ---------------------------------------------------------------------------
// Dynamic reordering (Rudell sifting)
// ---------------------------------------------------------------------------

void BddManager::swap_levels(int l) {
  const int x = order_[static_cast<std::size_t>(l)];
  const int y = order_[static_cast<std::size_t>(l) + 1];
  Subtable& sx = tables_[static_cast<std::size_t>(x)];

  std::vector<uint32_t> xs;
  xs.reserve(sx.count);
  for (const uint32_t head : sx.buckets)
    for (uint32_t i = head; i != 0; i = nodes_[i].next) xs.push_back(i);
  std::fill(sx.buckets.begin(), sx.buckets.end(), 0);
  sx.count = 0;

  // Pass 1: x-nodes not touching y keep their structure (they simply sink
  // one level). Reinsert them first so pass 2 interns against them instead
  // of creating duplicates.
  std::vector<uint32_t> rewrite;
  for (const uint32_t i : xs) {
    const Node& nd = nodes_[i];
    if (nodes_[node_index(nd.lo)].var == y ||
        nodes_[node_index(nd.hi)].var == y) {
      rewrite.push_back(i);
    } else {
      const std::size_t b = hash2(nd.lo, nd.hi) & (sx.buckets.size() - 1);
      nodes_[i].next = sx.buckets[b];
      sx.buckets[b] = i;
      ++sx.count;
    }
  }

  order_[static_cast<std::size_t>(l)] = y;
  order_[static_cast<std::size_t>(l) + 1] = x;
  perm_[static_cast<std::size_t>(x)] = l + 1;
  perm_[static_cast<std::size_t>(y)] = l;

  // Pass 2: rewrite each remaining node in place from an x-node into the
  // equivalent y-node. Node identity (and therefore every outstanding
  // BddRef) is preserved; only the internal structure changes.
  for (const uint32_t i : rewrite) {
    const BddRef L = nodes_[i].lo;
    const BddRef H = nodes_[i].hi;
    BddRef l0, l1, h0, h1;
    if (nodes_[node_index(L)].var == y) {
      l0 = lo_of(L);
      l1 = hi_of(L);
    } else {
      l0 = l1 = L;
    }
    if (nodes_[node_index(H)].var == y) {
      h0 = lo_of(H);
      h1 = hi_of(H);
    } else {
      h0 = h1 = H;
    }
    const BddRef g0 = mk(x, l0, h0);
    inc_edge(g0);
    const BddRef g1 = mk(x, l1, h1);
    inc_edge(g1);
    assert(!is_complement(g1)); // h1 is regular, so mk cannot complement
    assert(g0 != g1);
    // The old children may now be dead; reclaim eagerly so the sifting
    // size metric tracks the true live count.
    dec_edge_reclaim(L);
    dec_edge_reclaim(H);
    Node& nd = nodes_[i];
    nd.var = y;
    nd.lo = g0;
    nd.hi = g1;
    Subtable& sy = tables_[static_cast<std::size_t>(y)];
    const std::size_t b = hash2(g0, g1) & (sy.buckets.size() - 1);
    nd.next = sy.buckets[b];
    sy.buckets[b] = i;
    ++sy.count;
    if (sy.count > sy.buckets.size()) rehash(sy);
  }
}

void BddManager::sift_one(int v) {
  const int n = nvars_;
  std::size_t best = live_;
  int best_level = perm_[static_cast<std::size_t>(v)];
  const std::size_t limit = live_ + live_ / 5 + 4; // 1.2x growth abort

  const auto sweep = [&](bool down) {
    while (down ? perm_[static_cast<std::size_t>(v)] < n - 1
                : perm_[static_cast<std::size_t>(v)] > 0) {
      // A sweep may stop between swaps at any point; the return-to-best
      // loops below always run to completion, so the structure stays
      // canonical even when the governor trips mid-sift.
      if (gov_ != nullptr && !gov_->poll()) break;
      const int at = perm_[static_cast<std::size_t>(v)];
      swap_levels(down ? at : at - 1);
      ++stats_.reorder_swaps;
      if (live_ < best) {
        best = live_;
        best_level = perm_[static_cast<std::size_t>(v)];
      }
      if (live_ > limit) break;
    }
  };
  // Visit the nearer end first, then sweep across to the other.
  const bool down_first = (n - 1 - best_level) <= best_level;
  sweep(down_first);
  sweep(!down_first);
  // Return to the best level seen.
  while (perm_[static_cast<std::size_t>(v)] > best_level) {
    swap_levels(perm_[static_cast<std::size_t>(v)] - 1);
    ++stats_.reorder_swaps;
  }
  while (perm_[static_cast<std::size_t>(v)] < best_level) {
    swap_levels(perm_[static_cast<std::size_t>(v)]);
    ++stats_.reorder_swaps;
  }
}

std::size_t BddManager::reorder() {
  ++stats_.reorder_runs;
  ++hold_; // no re-entry while levels are in motion
  // Sift the largest subtables first; they have the most to gain.
  std::vector<int> vs(static_cast<std::size_t>(nvars_));
  std::iota(vs.begin(), vs.end(), 0);
  std::sort(vs.begin(), vs.end(), [&](int a, int b) {
    return tables_[static_cast<std::size_t>(a)].count >
           tables_[static_cast<std::size_t>(b)].count;
  });
  for (const int v : vs) {
    if (gov_ != nullptr && gov_->exhausted()) break;
    sift_one(v);
  }
  --hold_;
  // Node slots freed during sifting can be recycled; cached refs to them
  // would alias new functions.
  cache_clear();
  next_reorder_at_ = std::max(kAutoReorderMin, live_ * 2);
  return live_;
}

void BddManager::maybe_reorder(BddRef a, BddRef b) {
  if (!auto_reorder_ || hold_ != 0 || live_ < next_reorder_at_) return;
  if (gov_ != nullptr && gov_->exhausted()) return;
  ref(a);
  ref(b);
  reorder();
  deref(a);
  deref(b);
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

BddStats BddManager::stats() const {
  BddStats s = stats_;
  s.live_nodes = live_;
  s.peak_live_nodes = peak_live_;
  return s;
}

bool BddManager::check_canonical() const {
  std::set<std::tuple<int, BddRef, BddRef>> triples;
  std::vector<uint32_t> edge_counts(nodes_.size(), 0);
  std::size_t live_seen = 0;
  for (uint32_t i = 1; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.var == kFreeVar) continue;
    ++live_seen;
    if (n.var < 0 || n.var >= nvars_) return false;
    if (is_complement(n.hi)) return false; // canonical then-edge
    if (n.lo == n.hi) return false;        // reduced
    const int l = perm_[static_cast<std::size_t>(n.var)];
    for (const BddRef child : {n.lo, n.hi}) {
      const uint32_t ci = node_index(child);
      if (ci != 0) {
        if (nodes_[ci].var == kFreeVar) return false; // dangling edge
        if (perm_[static_cast<std::size_t>(nodes_[ci].var)] <= l) return false;
        ++edge_counts[ci];
      }
    }
    if (!triples.emplace(n.var, n.lo, n.hi).second) return false; // duplicate
  }
  if (live_seen != live_) return false;
  // Every live node must be reachable through its own subtable, and edge
  // reference counts must match the real in-degree.
  std::size_t chained = 0;
  for (int v = 0; v < nvars_; ++v) {
    const Subtable& st = tables_[static_cast<std::size_t>(v)];
    std::size_t in_table = 0;
    for (const uint32_t head : st.buckets)
      for (uint32_t i = head; i != 0; i = nodes_[i].next) {
        if (nodes_[i].var != v) return false;
        ++in_table;
      }
    if (in_table != st.count) return false;
    chained += in_table;
  }
  if (chained != live_) return false;
  for (uint32_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i].var == kFreeVar) continue;
    if (nodes_[i].edge_ref != edge_counts[i]) return false;
  }
  return true;
}

BddRef import_bdd(BddManager& dst, const BddManager& src, BddRef f) {
  if (&dst == &src) return f;
  // Memo on regular source refs; the complement bit transfers directly
  // because both managers use the same (index << 1) | complement encoding
  // of phases.
  std::unordered_map<BddRef, BddRef> memo;
  const std::function<BddRef(BddRef)> rec = [&](BddRef g) -> BddRef {
    if (src.is_terminal(g)) return g; // kTrue/kFalse are manager-invariant
    const BddRef reg = BddManager::regular(g);
    const BddRef phase = g & 1u;
    if (const auto it = memo.find(reg); it != memo.end())
      return it->second ^ phase;
    const BddRef lo = rec(src.lo_of(reg));
    if (BddManager::is_invalid(lo)) return BddManager::kInvalid;
    const BddRef hi = rec(src.hi_of(reg));
    if (BddManager::is_invalid(hi)) return BddManager::kInvalid;
    const BddRef r =
        dst.bdd_ite(dst.var(src.var_of(reg)), hi, lo);
    if (BddManager::is_invalid(r)) return BddManager::kInvalid;
    memo.emplace(reg, r);
    return r ^ phase;
  };
  return rec(f);
}

} // namespace rmsyn
