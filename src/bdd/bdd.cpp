#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace rmsyn {

BddManager::BddManager(int nvars) : nvars_(nvars) {
  // Terminals live at level nvars_ (below every variable).
  nodes_.push_back({nvars_, kFalse, kFalse}); // 0
  nodes_.push_back({nvars_, kTrue, kTrue});   // 1
  var_refs_.assign(static_cast<std::size_t>(nvars_), kFalse);
}

BddRef BddManager::mk(int var, BddRef lo, BddRef hi) {
  if (lo == hi) return lo;
  const uint64_t key = pack_unique(var, lo, hi);
  if (const auto it = unique_.find(key); it != unique_.end()) return it->second;
  if (nodes_.size() > kMaxRef)
    throw std::runtime_error("BddManager: node limit exceeded");
  const BddRef ref = static_cast<BddRef>(nodes_.size());
  nodes_.push_back({var, lo, hi});
  unique_.emplace(key, ref);
  return ref;
}

BddRef BddManager::var(int v) {
  assert(v >= 0 && v < nvars_);
  auto& cached = var_refs_[static_cast<std::size_t>(v)];
  if (cached == kFalse) cached = mk(v, kFalse, kTrue);
  return cached;
}

BddRef BddManager::nvar(int v) { return bdd_not(var(v)); }

BddRef BddManager::apply(Op op, BddRef a, BddRef b) {
  // Terminal rules.
  switch (op) {
    case Op::And:
      if (a == kFalse || b == kFalse) return kFalse;
      if (a == kTrue) return b;
      if (b == kTrue) return a;
      if (a == b) return a;
      break;
    case Op::Or:
      if (a == kTrue || b == kTrue) return kTrue;
      if (a == kFalse) return b;
      if (b == kFalse) return a;
      if (a == b) return a;
      break;
    case Op::Xor:
      if (a == kFalse) return b;
      if (b == kFalse) return a;
      if (a == b) return kFalse;
      break;
  }
  if (a > b) std::swap(a, b); // all three ops are commutative
  const uint64_t key = pack_cache(op, a, b);
  if (const auto it = cache_.find(key); it != cache_.end()) return it->second;

  const Node& na = nodes_[a];
  const Node& nb = nodes_[b];
  const int v = std::min(na.var, nb.var);
  const BddRef a0 = na.var == v ? na.lo : a;
  const BddRef a1 = na.var == v ? na.hi : a;
  const BddRef b0 = nb.var == v ? nb.lo : b;
  const BddRef b1 = nb.var == v ? nb.hi : b;
  const BddRef r = mk(v, apply(op, a0, b0), apply(op, a1, b1));
  cache_.emplace(key, r);
  return r;
}

BddRef BddManager::bdd_and(BddRef a, BddRef b) { return apply(Op::And, a, b); }
BddRef BddManager::bdd_or(BddRef a, BddRef b) { return apply(Op::Or, a, b); }
BddRef BddManager::bdd_xor(BddRef a, BddRef b) { return apply(Op::Xor, a, b); }
BddRef BddManager::bdd_not(BddRef a) { return apply(Op::Xor, a, kTrue); }

BddRef BddManager::bdd_ite(BddRef f, BddRef g, BddRef h) {
  return bdd_or(bdd_and(f, g), bdd_and(bdd_not(f), h));
}

BddRef BddManager::cofactor(BddRef f, int v, bool value) {
  if (is_terminal(f)) return f;
  const Node& n = nodes_[f];
  if (n.var > v) return f;
  if (n.var == v) return value ? n.hi : n.lo;
  // n.var < v: rebuild below. Use a local recursion with the apply cache
  // keyed via an op trick is not safe; recurse with memo map.
  std::unordered_map<BddRef, BddRef> memo;
  const std::function<BddRef(BddRef)> rec = [&](BddRef g) -> BddRef {
    if (is_terminal(g)) return g;
    const Node& gn = nodes_[g];
    if (gn.var > v) return g;
    if (gn.var == v) return value ? gn.hi : gn.lo;
    if (const auto it = memo.find(g); it != memo.end()) return it->second;
    const BddRef r = mk(gn.var, rec(gn.lo), rec(gn.hi));
    memo.emplace(g, r);
    return r;
  };
  return rec(f);
}

bool BddManager::depends_on(BddRef f, int v) {
  return support(f).get(static_cast<std::size_t>(v));
}

BitVec BddManager::support(BddRef f) {
  BitVec s(static_cast<std::size_t>(nvars_));
  std::vector<BddRef> stack{f};
  std::unordered_map<BddRef, bool> seen;
  while (!stack.empty()) {
    const BddRef g = stack.back();
    stack.pop_back();
    if (is_terminal(g) || seen[g]) continue;
    seen[g] = true;
    s.set(static_cast<std::size_t>(nodes_[g].var));
    stack.push_back(nodes_[g].lo);
    stack.push_back(nodes_[g].hi);
  }
  return s;
}

double BddManager::density(BddRef f) {
  std::unordered_map<BddRef, double> memo;
  const std::function<double(BddRef)> dens = [&](BddRef g) -> double {
    if (g == kFalse) return 0.0;
    if (g == kTrue) return 1.0;
    if (const auto it = memo.find(g); it != memo.end()) return it->second;
    const Node& n = nodes_[g];
    const double d = 0.5 * (dens(n.lo) + dens(n.hi));
    memo.emplace(g, d);
    return d;
  };
  return dens(f);
}

double BddManager::sat_count(BddRef f) {
  double scale = 1.0;
  for (int i = 0; i < nvars_; ++i) scale *= 2.0;
  return density(f) * scale;
}

bool BddManager::enumerate_sat(BddRef f, const std::vector<int>& vars,
                               std::size_t limit,
                               const std::function<bool(const BitVec&)>& cb) {
  // Map variable index -> position in `vars` (must be sorted ascending for
  // the walk below; we sort a copy and remap).
  std::vector<int> order = vars;
  std::sort(order.begin(), order.end());
  std::unordered_map<int, std::size_t> pos;
  for (std::size_t i = 0; i < vars.size(); ++i)
    pos[vars[i]] = i;

  BitVec assign(vars.size());
  std::size_t produced = 0;
  bool ok = true;

  const std::function<bool(BddRef, std::size_t)> rec = [&](BddRef g,
                                                           std::size_t depth) -> bool {
    if (!ok) return false;
    if (g == kFalse) return true;
    if (depth == order.size()) {
      if (g != kTrue) {
        // Function still depends on variables outside `vars` — precondition
        // violated.
        throw std::logic_error("enumerate_sat: support not contained in vars");
      }
      if (produced++ >= limit) { ok = false; return false; }
      if (!cb(assign)) { ok = false; return false; }
      return true;
    }
    const int v = order[depth];
    const std::size_t slot = pos[v];
    BddRef g0 = g, g1 = g;
    if (!is_terminal(g) && nodes_[g].var == v) {
      g0 = nodes_[g].lo;
      g1 = nodes_[g].hi;
    } else if (!is_terminal(g) && nodes_[g].var < v) {
      throw std::logic_error("enumerate_sat: node above enumeration range");
    }
    assign.set(slot, false);
    if (!rec(g0, depth + 1)) return false;
    assign.set(slot, true);
    if (!rec(g1, depth + 1)) return false;
    assign.set(slot, false);
    return true;
  };
  rec(f, 0);
  return ok;
}

BitVec BddManager::pick_sat(BddRef f) {
  assert(f != kFalse);
  BitVec assign(static_cast<std::size_t>(nvars_));
  BddRef g = f;
  while (!is_terminal(g)) {
    const Node& n = nodes_[g];
    if (n.hi != kFalse) {
      assign.set(static_cast<std::size_t>(n.var), true);
      g = n.hi;
    } else {
      g = n.lo;
    }
  }
  return assign;
}

BddRef BddManager::mk_node(int var, BddRef lo, BddRef hi) {
  assert(var >= 0 && var < nvars_);
  assert(var < nodes_[lo].var && var < nodes_[hi].var);
  return mk(var, lo, hi);
}

BddRef BddManager::from_cube(const Cube& c) {
  BddRef r = kTrue;
  // Build bottom-up (highest variable first) to keep mk() linear.
  for (int v = nvars_ - 1; v >= 0; --v) {
    if (c.has_pos(v)) r = mk(v, kFalse, r);
    else if (c.has_neg(v)) r = mk(v, r, kFalse);
  }
  return r;
}

BddRef BddManager::from_cover(const Cover& c) {
  // Balanced OR reduction keeps intermediate BDDs small.
  std::vector<BddRef> parts;
  parts.reserve(c.size());
  for (const auto& cube : c.cubes()) parts.push_back(from_cube(cube));
  if (parts.empty()) return kFalse;
  while (parts.size() > 1) {
    std::vector<BddRef> next;
    next.reserve((parts.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < parts.size(); i += 2)
      next.push_back(bdd_or(parts[i], parts[i + 1]));
    if (parts.size() % 2 == 1) next.push_back(parts.back());
    parts.swap(next);
  }
  return parts[0];
}

bool BddManager::eval(BddRef f, const BitVec& assignment) const {
  BddRef g = f;
  while (!is_terminal(g)) {
    const Node& n = nodes_[g];
    g = assignment.get(static_cast<std::size_t>(n.var)) ? n.hi : n.lo;
  }
  return g == kTrue;
}

std::size_t BddManager::size(BddRef f) const {
  if (is_terminal(f)) return 0;
  std::vector<BddRef> stack{f};
  std::unordered_map<BddRef, bool> seen;
  std::size_t count = 0;
  while (!stack.empty()) {
    const BddRef g = stack.back();
    stack.pop_back();
    if (is_terminal(g) || seen[g]) continue;
    seen[g] = true;
    ++count;
    stack.push_back(nodes_[g].lo);
    stack.push_back(nodes_[g].hi);
  }
  return count;
}

std::string BddManager::to_dot(BddRef f, const std::string& name) const {
  std::ostringstream out;
  out << "digraph \"" << name << "\" {\n";
  out << "  node0 [label=\"0\", shape=box];\n  node1 [label=\"1\", shape=box];\n";
  std::vector<BddRef> stack{f};
  std::unordered_map<BddRef, bool> seen;
  while (!stack.empty()) {
    const BddRef g = stack.back();
    stack.pop_back();
    if (is_terminal(g) || seen[g]) continue;
    seen[g] = true;
    const Node& n = nodes_[g];
    out << "  node" << g << " [label=\"x" << n.var << "\"];\n";
    out << "  node" << g << " -> node" << n.lo << " [style=dashed];\n";
    out << "  node" << g << " -> node" << n.hi << ";\n";
    stack.push_back(n.lo);
    stack.push_back(n.hi);
  }
  out << "}\n";
  return out.str();
}

} // namespace rmsyn
