#include "equiv/equiv.hpp"

#include <sstream>
#include <stdexcept>

#include "network/simulate.hpp"
#include "sim/sim.hpp"

namespace rmsyn {

std::vector<BddRef> node_bdds(BddManager& mgr, const Network& net) {
  if (mgr.nvars() < static_cast<int>(net.pi_count()))
    throw std::invalid_argument("node_bdds: manager too narrow");
  std::vector<BddRef> f(net.node_count(), mgr.bdd_false());
  f[Network::kConst1] = mgr.bdd_true();
  for (std::size_t i = 0; i < net.pi_count(); ++i)
    f[net.pis()[i]] = mgr.var(static_cast<int>(i));
  for (const NodeId n : net.topo_order()) {
    const auto& fi = net.fanins(n);
    switch (net.type(n)) {
      case GateType::Const0: case GateType::Const1: case GateType::Pi:
        break;
      case GateType::Buf: f[n] = f[fi[0]]; break;
      case GateType::Not: f[n] = mgr.bdd_not(f[fi[0]]); break;
      case GateType::And: case GateType::Nand: {
        BddRef acc = mgr.bdd_true();
        for (const NodeId g : fi) acc = mgr.bdd_and(acc, f[g]);
        f[n] = net.type(n) == GateType::Nand ? mgr.bdd_not(acc) : acc;
        break;
      }
      case GateType::Or: case GateType::Nor: {
        BddRef acc = mgr.bdd_false();
        for (const NodeId g : fi) acc = mgr.bdd_or(acc, f[g]);
        f[n] = net.type(n) == GateType::Nor ? mgr.bdd_not(acc) : acc;
        break;
      }
      case GateType::Xor: case GateType::Xnor: {
        BddRef acc = mgr.bdd_false();
        for (const NodeId g : fi) acc = mgr.bdd_xor(acc, f[g]);
        f[n] = net.type(n) == GateType::Xnor ? mgr.bdd_not(acc) : acc;
        break;
      }
    }
    // Pin each node function: later gates (and any auto-reordering the
    // caller enabled) must not reclaim it from under the vector.
    mgr.ref(f[n]);
  }
  return f;
}

std::vector<BddRef> output_bdds(BddManager& mgr, const Network& net) {
  const auto all = node_bdds(mgr, net);
  std::vector<BddRef> out;
  out.reserve(net.po_count());
  for (std::size_t i = 0; i < net.po_count(); ++i)
    out.push_back(mgr.ref(all[net.po(i)]));
  // Keep only the outputs pinned; internal node functions may be collected
  // once nothing downstream reaches them.
  for (const BddRef g : all) mgr.deref(g);
  return out;
}

EquivResult check_equivalence(const Network& a, const Network& b,
                              uint64_t sim_seed, ResourceGovernor* governor) {
  if (a.pi_count() != b.pi_count())
    return {false, "PI count differs"};
  if (a.po_count() != b.po_count())
    return {false, "PO count differs"};

  // Cheap random-simulation miter first, on the cached-value engine (one
  // good pass per side; PO reads come out of the cache).
  const auto patterns = random_patterns(a.pi_count(), 256, sim_seed);
  const SimState sa(a, patterns);
  const SimState sb(b, patterns);
  for (std::size_t i = 0; i < a.po_count(); ++i) {
    if (!(sa.value(a.po(i)) == sb.value(b.po(i)))) {
      std::ostringstream msg;
      msg << "random simulation mismatch on output " << i << " (" << a.po_name(i)
          << ")";
      return {false, msg.str()};
    }
  }

  BddManager mgr(static_cast<int>(a.pi_count()));
  mgr.set_governor(governor);
  // Wide interfaces are where the identity order blows up; let the kernel
  // sift. node_bdds pins every intermediate, so reordering is safe here.
  if (a.pi_count() > 16) mgr.set_auto_reorder(true);
  const EquivResult undecided{false, "equivalence undecided: resource budget "
                                     "exhausted", false};
  const auto fa = output_bdds(mgr, a);
  const auto fb = output_bdds(mgr, b);
  for (std::size_t i = 0; i < fa.size(); ++i) {
    if (BddManager::is_invalid(fa[i]) || BddManager::is_invalid(fb[i]))
      return undecided;
    if (fa[i] != fb[i]) {
      const BddRef diff = mgr.bdd_xor(fa[i], fb[i]);
      if (BddManager::is_invalid(diff)) return undecided;
      const BitVec witness = mgr.pick_sat(diff);
      std::ostringstream msg;
      msg << "BDD mismatch on output " << i << " (" << a.po_name(i)
          << "), witness " << witness.to_string();
      return {false, msg.str()};
    }
  }
  return {true, {}};
}

EquivResult check_against_tts(const Network& net,
                              const std::vector<TruthTable>& tts) {
  if (net.po_count() != tts.size()) return {false, "PO count differs"};
  BddManager mgr(static_cast<int>(net.pi_count()));
  const auto fn = output_bdds(mgr, net);
  for (std::size_t i = 0; i < tts.size(); ++i) {
    const BddRef spec = mgr.from_cover(Cover::from_truth_table(tts[i]));
    if (fn[i] != spec) {
      std::ostringstream msg;
      msg << "mismatch vs truth table on output " << i;
      return {false, msg.str()};
    }
  }
  return {true, {}};
}

} // namespace rmsyn
