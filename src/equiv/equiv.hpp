// Combinational equivalence checking — the reproduction of SIS's `verify`,
// which the paper runs on every synthesized circuit. A fast 64-pattern
// random-simulation miter rejects obvious mismatches; the decision procedure
// is BDD-based (both networks' primary outputs are canonicalized in one
// manager under the shared PI order).
#pragma once

#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "network/network.hpp"
#include "tt/truth_table.hpp"

namespace rmsyn {

/// Builds the BDD of every live node; returns one ref per node id (dead
/// nodes map to kFalse). `mgr` must have at least net.pi_count() variables;
/// PI i maps to manager variable i.
std::vector<BddRef> node_bdds(BddManager& mgr, const Network& net);

/// BDDs of the primary outputs only.
std::vector<BddRef> output_bdds(BddManager& mgr, const Network& net);

struct EquivResult {
  bool equivalent = false;
  std::string reason; ///< human-readable mismatch description when not
  /// False when a governed check ran out of budget before reaching a
  /// verdict; `equivalent` is then meaningless. Ungoverned checks always
  /// decide.
  bool decided = true;
};

/// Checks functional equivalence of two networks with identical PI/PO
/// counts, matching PIs and POs by position. With a governor attached the
/// BDD phase is budgeted: on a trip the result comes back undecided
/// (decided == false) rather than as a spurious NOT-EQUIVALENT. The
/// random-simulation prepass always runs, so genuine mismatches it can see
/// are decided even on an exhausted budget.
EquivResult check_equivalence(const Network& a, const Network& b,
                              uint64_t sim_seed = 0xC0FFEE,
                              ResourceGovernor* governor = nullptr);

/// Checks a network against explicit truth tables (PO i vs tts[i]).
EquivResult check_against_tts(const Network& net,
                              const std::vector<TruthTable>& tts);

} // namespace rmsyn
