// Cover: a sum (OR) of cubes — the classic two-level SOP representation used
// by the SIS-style baseline. Provides the recursive unate/Shannon algorithms
// (tautology, complement, cofactor) that two-level minimization and the
// redundancy checks are built on.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sop/cube.hpp"
#include "tt/truth_table.hpp"

namespace rmsyn {

class Cover {
public:
  Cover() = default;
  explicit Cover(int nvars) : nvars_(nvars) {}
  Cover(int nvars, std::vector<Cube> cubes)
      : nvars_(nvars), cubes_(std::move(cubes)) {}

  static Cover constant(int nvars, bool value);
  /// One positive (or negative) literal.
  static Cover literal(int nvars, int var, bool positive);
  /// Exact SOP of a truth table: one cube per minterm, then merged/reduced.
  static Cover from_truth_table(const TruthTable& tt);

  int nvars() const { return nvars_; }
  const std::vector<Cube>& cubes() const { return cubes_; }
  std::vector<Cube>& cubes() { return cubes_; }
  std::size_t size() const { return cubes_.size(); }
  bool empty() const { return cubes_.empty(); }

  void add(Cube c) { cubes_.push_back(std::move(c)); }

  /// Widens the variable space of the cover and all its cubes.
  void resize_vars(int nvars) {
    nvars_ = nvars;
    for (auto& c : cubes_) c.resize_vars(nvars);
  }

  int literal_count() const;
  bool is_const0() const { return cubes_.empty(); }
  /// True when the cover contains a universal cube (cheap check only).
  bool has_universal_cube() const;

  bool eval(uint64_t minterm) const;
  bool eval(const BitVec& assignment) const;

  /// Shannon cofactor with respect to var=value.
  Cover cofactor(int var, bool value) const;
  /// Cofactor with respect to a cube (all its literal assignments).
  Cover cofactor(const Cube& c) const;

  /// Exact tautology check (unate reduction + Shannon expansion).
  bool is_tautology() const;

  /// Bounded-effort tautology: explores at most `budget` recursion nodes.
  /// When the budget runs out, returns false and clears *decided — callers
  /// must treat that as "unknown", which is conservative for redundancy
  /// tests (a cube is kept unless proven covered).
  bool is_tautology_bounded(long budget, bool* decided = nullptr) const;

  /// Exact complement via Shannon expansion.
  Cover complement() const;

  /// Bounded-effort complement: nullopt when more than `budget` recursion
  /// nodes would be needed.
  std::optional<Cover> complement_bounded(long budget) const;

  /// True when this cover implies/contains the given cube (the cube's
  /// cofactor of the cover is a tautology).
  bool covers_cube(const Cube& c) const;

  /// Variables occurring in any cube, as a mask.
  BitVec support() const;

  Cover operator|(const Cover& o) const;
  Cover operator&(const Cover& o) const;

  /// Converts to a truth table (nvars must be small).
  TruthTable to_truth_table() const;

  std::string to_string() const;

private:
  int nvars_ = 0;
  std::vector<Cube> cubes_;
};

} // namespace rmsyn
