#include "sop/cover.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace rmsyn {
namespace {
struct TautologyBudgetExceeded {};
} // namespace
} // namespace rmsyn

namespace rmsyn {

Cover Cover::constant(int nvars, bool value) {
  Cover c(nvars);
  if (value) c.add(Cube(nvars));
  return c;
}

Cover Cover::literal(int nvars, int var, bool positive) {
  Cube cube(nvars);
  if (positive) cube.add_pos(var); else cube.add_neg(var);
  Cover c(nvars);
  c.add(cube);
  return c;
}

Cover Cover::from_truth_table(const TruthTable& tt) {
  Cover c(tt.nvars());
  for (uint64_t m = 0; m < tt.size(); ++m) {
    if (!tt.get(m)) continue;
    Cube cube(tt.nvars());
    for (int v = 0; v < tt.nvars(); ++v) {
      if ((m >> v) & 1) cube.add_pos(v); else cube.add_neg(v);
    }
    c.add(std::move(cube));
  }
  return c;
}

int Cover::literal_count() const {
  int n = 0;
  for (const auto& c : cubes_) n += c.literal_count();
  return n;
}

bool Cover::has_universal_cube() const {
  return std::any_of(cubes_.begin(), cubes_.end(),
                     [](const Cube& c) { return c.is_universal(); });
}

bool Cover::eval(uint64_t minterm) const {
  return std::any_of(cubes_.begin(), cubes_.end(),
                     [&](const Cube& c) { return c.eval(minterm); });
}

bool Cover::eval(const BitVec& assignment) const {
  return std::any_of(cubes_.begin(), cubes_.end(),
                     [&](const Cube& c) { return c.eval(assignment); });
}

Cover Cover::cofactor(int var, bool value) const {
  Cover r(nvars_);
  for (Cube c : cubes_) {
    if (c.cofactor_inplace(var, value)) r.add(std::move(c));
  }
  return r;
}

Cover Cover::cofactor(const Cube& cube) const {
  Cover r = *this;
  for (int v = 0; v < nvars_; ++v) {
    if (cube.has_pos(v)) r = r.cofactor(v, true);
    else if (cube.has_neg(v)) r = r.cofactor(v, false);
  }
  return r;
}

namespace {

// Selects the most binate variable (appears in both polarities, maximizing
// total occurrences); returns -1 when the cover is unate.
int most_binate_var(const Cover& f) {
  const int n = f.nvars();
  std::vector<int> pos_cnt(static_cast<std::size_t>(n), 0);
  std::vector<int> neg_cnt(static_cast<std::size_t>(n), 0);
  for (const auto& c : f.cubes()) {
    for (int v = 0; v < n; ++v) {
      if (c.has_pos(v)) ++pos_cnt[static_cast<std::size_t>(v)];
      else if (c.has_neg(v)) ++neg_cnt[static_cast<std::size_t>(v)];
    }
  }
  int best = -1, best_score = -1;
  for (int v = 0; v < n; ++v) {
    const auto iv = static_cast<std::size_t>(v);
    if (pos_cnt[iv] > 0 && neg_cnt[iv] > 0) {
      const int score = pos_cnt[iv] + neg_cnt[iv];
      if (score > best_score) { best_score = score; best = v; }
    }
  }
  return best;
}

// Any variable with a literal (used for complementing unate covers).
int any_var(const Cover& f) {
  for (const auto& c : f.cubes()) {
    const auto sup = c.support();
    const auto v = sup.first_set();
    if (v != BitVec::npos) return static_cast<int>(v);
  }
  return -1;
}

bool tautology_rec(const Cover& f, long& budget) {
  if (f.has_universal_cube()) return true;
  if (f.empty()) return false;
  if (--budget < 0) throw TautologyBudgetExceeded{};
  const int v = most_binate_var(f);
  if (v < 0) {
    // Unate cover: tautology iff it contains the universal cube (already
    // checked above).
    return false;
  }
  return tautology_rec(f.cofactor(v, false), budget) &&
         tautology_rec(f.cofactor(v, true), budget);
}

struct ComplementBudgetExceeded {};

Cover complement_rec(const Cover& f, long& budget) {
  const int n = f.nvars();
  if (--budget < 0) throw ComplementBudgetExceeded{};
  if (f.empty()) return Cover::constant(n, true);
  if (f.has_universal_cube()) return Cover(n);
  if (f.size() == 1) {
    // De Morgan on a single cube.
    Cover r(n);
    const Cube& c = f.cubes()[0];
    for (int v = 0; v < n; ++v) {
      if (c.has_pos(v)) r.add(Cube::parse(std::string(static_cast<std::size_t>(v), '-') + "0" + std::string(static_cast<std::size_t>(n - v - 1), '-')));
      else if (c.has_neg(v)) r.add(Cube::parse(std::string(static_cast<std::size_t>(v), '-') + "1" + std::string(static_cast<std::size_t>(n - v - 1), '-')));
    }
    return r;
  }
  int v = most_binate_var(f);
  if (v < 0) v = any_var(f);
  if (v < 0) return Cover(n); // only universal cubes; handled above
  const Cover c0 = complement_rec(f.cofactor(v, false), budget);
  const Cover c1 = complement_rec(f.cofactor(v, true), budget);
  Cover r(n);
  for (Cube c : c0.cubes()) {
    if (!c.has_var(v)) c.add_neg(v);
    r.add(std::move(c));
  }
  for (Cube c : c1.cubes()) {
    if (!c.has_var(v)) c.add_pos(v);
    r.add(std::move(c));
  }
  return r;
}

} // namespace

bool Cover::is_tautology() const {
  long budget = std::numeric_limits<long>::max();
  return tautology_rec(*this, budget);
}

bool Cover::is_tautology_bounded(long budget, bool* decided) const {
  try {
    const bool r = tautology_rec(*this, budget);
    if (decided != nullptr) *decided = true;
    return r;
  } catch (const TautologyBudgetExceeded&) {
    if (decided != nullptr) *decided = false;
    return false;
  }
}

Cover Cover::complement() const {
  long budget = std::numeric_limits<long>::max();
  return complement_rec(*this, budget);
}

std::optional<Cover> Cover::complement_bounded(long budget) const {
  try {
    return complement_rec(*this, budget);
  } catch (const ComplementBudgetExceeded&) {
    return std::nullopt;
  }
}

bool Cover::covers_cube(const Cube& c) const {
  return cofactor(c).is_tautology();
}

BitVec Cover::support() const {
  BitVec s(static_cast<std::size_t>(nvars_));
  for (const auto& c : cubes_) s |= c.support();
  return s;
}

Cover Cover::operator|(const Cover& o) const {
  assert(nvars_ == o.nvars_);
  Cover r = *this;
  for (const auto& c : o.cubes_) r.add(c);
  return r;
}

Cover Cover::operator&(const Cover& o) const {
  assert(nvars_ == o.nvars_);
  Cover r(nvars_);
  for (const auto& a : cubes_) {
    for (const auto& b : o.cubes_) {
      if (!a.clashes(b)) r.add(a.intersect(b));
    }
  }
  return r;
}

TruthTable Cover::to_truth_table() const {
  return TruthTable::from_function(nvars_, [this](uint64_t m) { return eval(m); });
}

std::string Cover::to_string() const {
  std::string s;
  for (const auto& c : cubes_) {
    s += c.to_string();
    s += '\n';
  }
  return s;
}

} // namespace rmsyn
