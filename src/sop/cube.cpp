#include "sop/cube.hpp"

#include <cassert>
#include <stdexcept>

namespace rmsyn {

Cube::Cube(int nvars)
    : nvars_(nvars), pos_(static_cast<std::size_t>(nvars)),
      neg_(static_cast<std::size_t>(nvars)) {}

void Cube::resize_vars(int nvars) {
  nvars_ = nvars;
  pos_.resize(static_cast<std::size_t>(nvars));
  neg_.resize(static_cast<std::size_t>(nvars));
}

Cube Cube::parse(const std::string& s) {
  Cube c(static_cast<int>(s.size()));
  for (std::size_t i = 0; i < s.size(); ++i) {
    switch (s[i]) {
      case '1': c.add_pos(static_cast<int>(i)); break;
      case '0': c.add_neg(static_cast<int>(i)); break;
      case '-': case '2': break;
      default: throw std::invalid_argument("Cube::parse: bad character");
    }
  }
  return c;
}

bool Cube::eval(uint64_t minterm) const {
  assert(nvars_ <= 64);
  for (std::size_t w = 0; w < pos_.words(); ++w) {
    const uint64_t vals = minterm; // single word when nvars_ <= 64
    if ((pos_.word(w) & ~vals) != 0) return false;
    if ((neg_.word(w) & vals) != 0) return false;
  }
  return true;
}

bool Cube::eval(const BitVec& assignment) const {
  for (std::size_t w = 0; w < pos_.words(); ++w) {
    if ((pos_.word(w) & ~assignment.word(w)) != 0) return false;
    if ((neg_.word(w) & assignment.word(w)) != 0) return false;
  }
  return true;
}

bool Cube::covers(const Cube& other) const {
  return pos_.is_subset_of(other.pos_) && neg_.is_subset_of(other.neg_);
}

bool Cube::clashes(const Cube& other) const {
  return !pos_.disjoint(other.neg_) || !neg_.disjoint(other.pos_);
}

int Cube::distance(const Cube& other) const {
  int d = 0;
  for (std::size_t w = 0; w < pos_.words(); ++w) {
    uint64_t clash = (pos_.word(w) & other.neg_.word(w)) |
                     (neg_.word(w) & other.pos_.word(w));
    d += static_cast<int>(__builtin_popcountll(clash));
  }
  return d;
}

Cube Cube::intersect(const Cube& other) const {
  assert(!clashes(other));
  Cube r = *this;
  r.pos_ |= other.pos_;
  r.neg_ |= other.neg_;
  return r;
}

bool Cube::cofactor_inplace(int v, bool value) {
  if (value) {
    if (neg_.get(v)) return false;
    pos_.set(v, false);
  } else {
    if (pos_.get(v)) return false;
    neg_.set(v, false);
  }
  return true;
}

bool Cube::divisible_by(const Cube& divisor) const {
  return divisor.pos_.is_subset_of(pos_) && divisor.neg_.is_subset_of(neg_);
}

Cube Cube::divide(const Cube& divisor) const {
  assert(divisible_by(divisor));
  Cube r = *this;
  r.pos_ ^= divisor.pos_;
  r.neg_ ^= divisor.neg_;
  return r;
}

bool Cube::operator<(const Cube& o) const {
  if (pos_ == o.pos_) return neg_ < o.neg_;
  return pos_ < o.pos_;
}

std::string Cube::to_string() const {
  std::string s(static_cast<std::size_t>(nvars_), '-');
  for (int v = 0; v < nvars_; ++v) {
    if (pos_.get(v)) s[static_cast<std::size_t>(v)] = '1';
    else if (neg_.get(v)) s[static_cast<std::size_t>(v)] = '0';
  }
  return s;
}

std::size_t Cube::hash() const {
  return pos_.hash() * 0x9e3779b97f4a7c15ull + neg_.hash();
}

} // namespace rmsyn
