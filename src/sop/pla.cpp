#include "sop/pla.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rmsyn {

namespace {

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream ss(line);
  std::string tok;
  while (ss >> tok) out.push_back(tok);
  return out;
}

} // namespace

PlaFile read_pla(std::istream& in) {
  PlaFile pla;
  std::string line;
  bool sized = false;
  while (std::getline(in, line)) {
    // Strip comments.
    if (const auto pos = line.find('#'); pos != std::string::npos)
      line.erase(pos);
    const auto toks = split_ws(line);
    if (toks.empty()) continue;
    if (toks[0] == ".i") {
      pla.num_inputs = std::stoi(toks.at(1));
    } else if (toks[0] == ".o") {
      pla.num_outputs = std::stoi(toks.at(1));
    } else if (toks[0] == ".ilb") {
      pla.input_names.assign(toks.begin() + 1, toks.end());
    } else if (toks[0] == ".ob") {
      pla.output_names.assign(toks.begin() + 1, toks.end());
    } else if (toks[0] == ".p" || toks[0] == ".type") {
      // cube count / type hints — ignored; we accept fd semantics.
    } else if (toks[0] == ".e" || toks[0] == ".end") {
      break;
    } else if (toks[0][0] == '.') {
      throw std::runtime_error("read_pla: unsupported directive " + toks[0]);
    } else {
      if (!sized) {
        if (pla.num_inputs <= 0 || pla.num_outputs <= 0)
          throw std::runtime_error("read_pla: cube before .i/.o");
        pla.outputs.assign(static_cast<std::size_t>(pla.num_outputs),
                           Cover(pla.num_inputs));
        sized = true;
      }
      if (toks.size() != 2)
        throw std::runtime_error("read_pla: bad cube line: " + line);
      const std::string& in_part = toks[0];
      const std::string& out_part = toks[1];
      if (static_cast<int>(in_part.size()) != pla.num_inputs ||
          static_cast<int>(out_part.size()) != pla.num_outputs)
        throw std::runtime_error("read_pla: cube width mismatch: " + line);
      const Cube cube = Cube::parse(in_part);
      for (int o = 0; o < pla.num_outputs; ++o) {
        const char c = out_part[static_cast<std::size_t>(o)];
        if (c == '1' || c == '4')
          pla.outputs[static_cast<std::size_t>(o)].add(cube);
        // '0' and '~' mean "not in this output's ON-set"; '-'/'2' (don't
        // care) is treated as OFF for type fd reproducibility.
      }
    }
  }
  if (!sized) {
    if (pla.num_inputs <= 0 || pla.num_outputs <= 0)
      throw std::runtime_error("read_pla: missing .i/.o");
    pla.outputs.assign(static_cast<std::size_t>(pla.num_outputs),
                       Cover(pla.num_inputs));
  }
  return pla;
}

PlaFile read_pla_string(const std::string& text) {
  std::istringstream ss(text);
  return read_pla(ss);
}

void write_pla(std::ostream& out, const PlaFile& pla) {
  out << ".i " << pla.num_inputs << "\n.o " << pla.num_outputs << "\n";
  if (!pla.input_names.empty()) {
    out << ".ilb";
    for (const auto& n : pla.input_names) out << ' ' << n;
    out << "\n";
  }
  if (!pla.output_names.empty()) {
    out << ".ob";
    for (const auto& n : pla.output_names) out << ' ' << n;
    out << "\n";
  }
  // Merge identical input cubes across outputs for compactness.
  std::vector<std::pair<Cube, std::string>> rows;
  for (int o = 0; o < pla.num_outputs; ++o) {
    for (const auto& cube : pla.outputs[static_cast<std::size_t>(o)].cubes()) {
      bool found = false;
      for (auto& [c, bits] : rows) {
        if (c == cube) {
          bits[static_cast<std::size_t>(o)] = '1';
          found = true;
          break;
        }
      }
      if (!found) {
        std::string bits(static_cast<std::size_t>(pla.num_outputs), '0');
        bits[static_cast<std::size_t>(o)] = '1';
        rows.emplace_back(cube, std::move(bits));
      }
    }
  }
  out << ".p " << rows.size() << "\n";
  for (const auto& [c, bits] : rows) out << c.to_string() << ' ' << bits << "\n";
  out << ".e\n";
}

std::string write_pla_string(const PlaFile& pla) {
  std::ostringstream ss;
  write_pla(ss, pla);
  return ss.str();
}

} // namespace rmsyn
