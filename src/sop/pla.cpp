#include "sop/pla.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/errors.hpp"

namespace rmsyn {

namespace {

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream ss(line);
  std::string tok;
  while (ss >> tok) out.push_back(tok);
  return out;
}

[[noreturn]] void pla_error(int lineno, const std::string& what) {
  throw RmsynError(ErrorCode::ParseError, "read_pla: line " +
                                              std::to_string(lineno) + ": " +
                                              what);
}

/// Width cap for .i/.o — far above any PLA this code meets, low enough
/// that a corrupt header cannot drive a multi-gigabyte allocation.
constexpr int kMaxPlaWidth = 1 << 20;

int parse_width(const std::vector<std::string>& toks, const char* directive,
                int lineno) {
  if (toks.size() < 2) pla_error(lineno, std::string(directive) + ": missing value");
  if (toks.size() > 2)
    pla_error(lineno, std::string(directive) + ": expected one value, got '" +
                          toks[2] + "'");
  const std::string& v = toks[1];
  int n = 0;
  try {
    std::size_t pos = 0;
    n = std::stoi(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
  } catch (const std::exception&) {
    pla_error(lineno,
              std::string(directive) + ": not an integer: '" + v + "'");
  }
  if (n <= 0)
    pla_error(lineno, std::string(directive) + ": must be positive, got " + v);
  if (n > kMaxPlaWidth)
    pla_error(lineno, std::string(directive) + ": implausible width " + v);
  return n;
}

} // namespace

PlaFile read_pla(std::istream& in) {
  PlaFile pla;
  std::string line;
  bool sized = false;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments.
    if (const auto pos = line.find('#'); pos != std::string::npos)
      line.erase(pos);
    const auto toks = split_ws(line);
    if (toks.empty()) continue;
    if (toks[0] == ".i") {
      if (sized) pla_error(lineno, ".i after the first cube");
      pla.num_inputs = parse_width(toks, ".i", lineno);
    } else if (toks[0] == ".o") {
      if (sized) pla_error(lineno, ".o after the first cube");
      pla.num_outputs = parse_width(toks, ".o", lineno);
    } else if (toks[0] == ".ilb") {
      pla.input_names.assign(toks.begin() + 1, toks.end());
    } else if (toks[0] == ".ob") {
      pla.output_names.assign(toks.begin() + 1, toks.end());
    } else if (toks[0] == ".p" || toks[0] == ".type") {
      // cube count / type hints — ignored; we accept fd semantics.
    } else if (toks[0] == ".e" || toks[0] == ".end") {
      break;
    } else if (toks[0][0] == '.') {
      pla_error(lineno, "unsupported directive " + toks[0]);
    } else {
      if (!sized) {
        if (pla.num_inputs <= 0 || pla.num_outputs <= 0)
          pla_error(lineno, "cube before .i/.o");
        pla.outputs.assign(static_cast<std::size_t>(pla.num_outputs),
                           Cover(pla.num_inputs));
        sized = true;
      }
      if (toks.size() != 2)
        pla_error(lineno, "expected '<inputs> <outputs>', got " +
                              std::to_string(toks.size()) + " fields: " + line);
      const std::string& in_part = toks[0];
      const std::string& out_part = toks[1];
      if (static_cast<int>(in_part.size()) != pla.num_inputs)
        pla_error(lineno, "input part is " + std::to_string(in_part.size()) +
                              " wide, .i says " +
                              std::to_string(pla.num_inputs) + ": " + line);
      if (static_cast<int>(out_part.size()) != pla.num_outputs)
        pla_error(lineno, "output part is " + std::to_string(out_part.size()) +
                              " wide, .o says " +
                              std::to_string(pla.num_outputs) + ": " + line);
      for (const char c : in_part)
        if (c != '0' && c != '1' && c != '-' && c != '2')
          pla_error(lineno,
                    std::string("bad input-plane character '") + c + "': " + line);
      const Cube cube = Cube::parse(in_part);
      for (int o = 0; o < pla.num_outputs; ++o) {
        const char c = out_part[static_cast<std::size_t>(o)];
        if (c == '1' || c == '4')
          pla.outputs[static_cast<std::size_t>(o)].add(cube);
        else if (c != '0' && c != '~' && c != '-' && c != '2' && c != '3')
          pla_error(lineno, std::string("bad output-plane character '") + c +
                                "': " + line);
        // '0' and '~' mean "not in this output's ON-set"; '-'/'2' (don't
        // care) is treated as OFF for type fd reproducibility.
      }
    }
  }
  if (!sized) {
    if (pla.num_inputs <= 0 || pla.num_outputs <= 0)
      throw RmsynError(ErrorCode::ParseError, "read_pla: missing .i/.o");
    pla.outputs.assign(static_cast<std::size_t>(pla.num_outputs),
                       Cover(pla.num_inputs));
  }
  return pla;
}

PlaFile read_pla_string(const std::string& text) {
  std::istringstream ss(text);
  return read_pla(ss);
}

void write_pla(std::ostream& out, const PlaFile& pla) {
  out << ".i " << pla.num_inputs << "\n.o " << pla.num_outputs << "\n";
  if (!pla.input_names.empty()) {
    out << ".ilb";
    for (const auto& n : pla.input_names) out << ' ' << n;
    out << "\n";
  }
  if (!pla.output_names.empty()) {
    out << ".ob";
    for (const auto& n : pla.output_names) out << ' ' << n;
    out << "\n";
  }
  // Merge identical input cubes across outputs for compactness.
  std::vector<std::pair<Cube, std::string>> rows;
  for (int o = 0; o < pla.num_outputs; ++o) {
    for (const auto& cube : pla.outputs[static_cast<std::size_t>(o)].cubes()) {
      bool found = false;
      for (auto& [c, bits] : rows) {
        if (c == cube) {
          bits[static_cast<std::size_t>(o)] = '1';
          found = true;
          break;
        }
      }
      if (!found) {
        std::string bits(static_cast<std::size_t>(pla.num_outputs), '0');
        bits[static_cast<std::size_t>(o)] = '1';
        rows.emplace_back(cube, std::move(bits));
      }
    }
  }
  out << ".p " << rows.size() << "\n";
  for (const auto& [c, bits] : rows) out << c.to_string() << ' ' << bits << "\n";
  out << ".e\n";
}

std::string write_pla_string(const PlaFile& pla) {
  std::ostringstream ss;
  write_pla(ss, pla);
  return ss.str();
}

} // namespace rmsyn
