#include "sop/minimize.hpp"

#include <algorithm>

namespace rmsyn {

Cover single_cube_containment(const Cover& f) {
  const auto& cs = f.cubes();
  std::vector<bool> dead(cs.size(), false);
  for (std::size_t i = 0; i < cs.size(); ++i) {
    if (dead[i]) continue;
    for (std::size_t j = 0; j < cs.size(); ++j) {
      if (i == j || dead[j]) continue;
      if (cs[i].covers(cs[j])) {
        // cs[j] is inside cs[i]; drop j. Identical cubes: keep lower index.
        if (cs[j].covers(cs[i]) && j < i) continue;
        dead[j] = true;
      }
    }
  }
  Cover r(f.nvars());
  for (std::size_t i = 0; i < cs.size(); ++i)
    if (!dead[i]) r.add(cs[i]);
  return r;
}

Cover merge_distance_one(const Cover& f) {
  Cover cur = single_cube_containment(f);
  bool changed = true;
  while (changed) {
    changed = false;
    auto& cs = cur.cubes();
    for (std::size_t i = 0; i < cs.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < cs.size() && !changed; ++j) {
        if (cs[i].distance(cs[j]) != 1) continue;
        // Find the clashing variable; merge when the rest is identical.
        Cube a = cs[i], b = cs[j];
        int clash_var = -1;
        for (int v = 0; v < cur.nvars(); ++v) {
          if ((a.has_pos(v) && b.has_neg(v)) || (a.has_neg(v) && b.has_pos(v))) {
            clash_var = v;
            break;
          }
        }
        a.drop_var(clash_var);
        b.drop_var(clash_var);
        if (a == b) {
          cs[i] = a;
          cs.erase(cs.begin() + static_cast<std::ptrdiff_t>(j));
          changed = true;
        }
      }
    }
    if (changed) cur = single_cube_containment(cur);
  }
  return cur;
}

Cover irredundant(const Cover& f) {
  Cover cur = single_cube_containment(f);
  // Greedy: try removing cubes largest-first; a cube is redundant when the
  // remaining cover still covers it.
  auto order = std::vector<std::size_t>(cur.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return cur.cubes()[a].literal_count() > cur.cubes()[b].literal_count();
  });
  std::vector<bool> dead(cur.size(), false);
  for (const std::size_t i : order) {
    Cover rest(cur.nvars());
    for (std::size_t j = 0; j < cur.size(); ++j)
      if (j != i && !dead[j]) rest.add(cur.cubes()[j]);
    // Bounded effort: an undecided check keeps the cube (safe).
    if (rest.cofactor(cur.cubes()[i]).is_tautology_bounded(20000))
      dead[i] = true;
  }
  Cover r(cur.nvars());
  for (std::size_t j = 0; j < cur.size(); ++j)
    if (!dead[j]) r.add(cur.cubes()[j]);
  return r;
}

Cover expand(const Cover& f, const Cover* offset) {
  Cover off_local;
  if (offset == nullptr) {
    off_local = f.complement();
    offset = &off_local;
  }
  Cover r(f.nvars());
  for (Cube c : f.cubes()) {
    // Try dropping literals one at a time; the expansion is valid when the
    // expanded cube stays disjoint from the OFF-set.
    for (int v = 0; v < f.nvars(); ++v) {
      if (!c.has_var(v)) continue;
      Cube wider = c;
      wider.drop_var(v);
      bool hits_off = false;
      for (const auto& oc : offset->cubes()) {
        if (!wider.clashes(oc)) { hits_off = true; break; }
      }
      if (!hits_off) c = wider;
    }
    r.add(std::move(c));
  }
  return single_cube_containment(r);
}

Cover espresso_lite(const Cover& f) {
  Cover cur = merge_distance_one(single_cube_containment(f));
  // Guard against complement blow-up: expansion is an optimization, not
  // needed for correctness, so an undecided complement simply skips it.
  if (cur.size() <= 2048) {
    if (const auto off = cur.complement_bounded(200'000);
        off && off->size() <= 16384) {
      cur = expand(cur, &*off);
      // Expansion opens new merge opportunities.
      cur = merge_distance_one(cur);
    }
  }
  return irredundant(cur);
}

} // namespace rmsyn
