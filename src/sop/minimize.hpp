// Light-weight two-level minimization ("espresso-lite"): single-cube
// containment, distance-1 merging, cube expansion against the complement and
// irredundant-cover extraction. The SIS-style baseline calls this on node
// covers exactly as SIS's `simplify` calls espresso on node functions.
#pragma once

#include "sop/cover.hpp"

namespace rmsyn {

/// Removes cubes covered by a single other cube (SCC).
Cover single_cube_containment(const Cover& f);

/// Merges pairs of cubes at distance 1 that differ in exactly one literal
/// and agree elsewhere (e.g. a·b + a·b̄ = a). Iterates to fixpoint.
Cover merge_distance_one(const Cover& f);

/// Removes cubes that are covered by the rest of the cover (exact
/// irredundant via tautology checks). Order-dependent greedy, as in SIS.
Cover irredundant(const Cover& f);

/// Expands each cube against the complement of the cover (drops literals
/// while the cube stays inside the ON-set). `offset` may be precomputed;
/// when null it is derived internally.
Cover expand(const Cover& f, const Cover* offset = nullptr);

/// The composite pass the baseline uses: SCC → merge → expand → irredundant.
Cover espresso_lite(const Cover& f);

} // namespace rmsyn
