// Reader/writer for the espresso PLA format (type fd), the interchange
// format the IWLS'91 two-level benchmarks ship in. The benchmark generators
// can emit PLA so a user can diff against original benchmark files, and the
// flow can consume user-supplied PLA specs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sop/cover.hpp"

namespace rmsyn {

struct PlaFile {
  int num_inputs = 0;
  int num_outputs = 0;
  std::vector<std::string> input_names;  // may be empty
  std::vector<std::string> output_names; // may be empty
  /// One ON-set cover per output, all over num_inputs variables.
  std::vector<Cover> outputs;
};

/// Parses a PLA document. Throws std::runtime_error on malformed input.
PlaFile read_pla(std::istream& in);
PlaFile read_pla_string(const std::string& text);

void write_pla(std::ostream& out, const PlaFile& pla);
std::string write_pla_string(const PlaFile& pla);

} // namespace rmsyn
