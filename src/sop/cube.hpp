// Cube: a product term over n Boolean variables, stored as two bit masks
// (positive-literal mask, negative-literal mask). This is the unit of both
// the SOP algebra used by the SIS-style baseline and the FPRM (AND/XOR)
// algebra used by the paper's flow — an FPRM cube is simply a cube whose
// literal polarities agree with the function's polarity vector.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bitvec.hpp"

namespace rmsyn {

class Cube {
public:
  Cube() = default;
  /// Universal cube (no literals) over nvars variables.
  explicit Cube(int nvars);

  /// Parses espresso notation: one char per variable, '1' positive literal,
  /// '0' negative literal, '-' absent.
  static Cube parse(const std::string& s);

  int nvars() const { return nvars_; }

  /// Widens the variable space (new variables carry no literal).
  void resize_vars(int nvars);

  bool has_pos(int v) const { return pos_.get(v); }
  bool has_neg(int v) const { return neg_.get(v); }
  bool has_var(int v) const { return pos_.get(v) || neg_.get(v); }

  void add_pos(int v) { pos_.set(v); neg_.set(v, false); }
  void add_neg(int v) { neg_.set(v); pos_.set(v, false); }
  void drop_var(int v) { pos_.set(v, false); neg_.set(v, false); }

  /// Number of literals in the cube.
  int literal_count() const { return static_cast<int>(pos_.count() + neg_.count()); }
  bool is_universal() const { return pos_.none() && neg_.none(); }

  /// Variables with a literal in this cube, as a mask.
  BitVec support() const { return pos_ | neg_; }

  /// True when this cube evaluates to 1 on the minterm (bit i = value of
  /// variable i, variables beyond 64 not supported by this overload).
  bool eval(uint64_t minterm) const;
  /// General overload for wide inputs.
  bool eval(const BitVec& assignment) const;

  /// Cube containment: *this covers `other` iff every literal of *this
  /// appears in `other` (i.e. other is a sub-cube / more specific).
  bool covers(const Cube& other) const;

  /// True when the two cubes share a variable with opposite polarity.
  bool clashes(const Cube& other) const;

  /// Number of variables in which the cubes have opposite literals.
  int distance(const Cube& other) const;

  /// Intersection (AND) of two cubes; valid only when !clashes(other).
  Cube intersect(const Cube& other) const;

  /// Cofactor of this cube with respect to variable v = value: drops the
  /// matching literal. Returns false when the cube vanishes (clashing
  /// literal).
  bool cofactor_inplace(int v, bool value);

  /// Algebraic quotient *this / divisor: removes the divisor's literals.
  /// Valid only when divisor's literals are all present with same polarity.
  bool divisible_by(const Cube& divisor) const;
  Cube divide(const Cube& divisor) const;

  const BitVec& pos_mask() const { return pos_; }
  const BitVec& neg_mask() const { return neg_; }

  bool operator==(const Cube& o) const = default;
  bool operator<(const Cube& o) const;

  /// espresso-style rendering, e.g. "1-0-".
  std::string to_string() const;

  std::size_t hash() const;

private:
  int nvars_ = 0;
  BitVec pos_;
  BitVec neg_;
};

struct CubeHash {
  std::size_t operator()(const Cube& c) const { return c.hash(); }
};

} // namespace rmsyn
