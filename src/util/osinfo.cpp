#include "util/osinfo.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace rmsyn {

double peak_rss_mb() {
#if defined(__APPLE__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0); // bytes
#elif defined(__unix__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  return static_cast<double>(ru.ru_maxrss) / 1024.0; // kilobytes
#else
  return 0.0;
#endif
}

} // namespace rmsyn
