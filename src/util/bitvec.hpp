// Dynamic fixed-width bit vector used throughout rmsyn for cube supports,
// simulation pattern blocks and truth-table words.
//
// Unlike std::vector<bool> this exposes the underlying 64-bit words, which
// the simulator and the Reed-Muller transform rely on, and it supports the
// set-algebra queries (subset / disjoint / first difference) that cube
// manipulation needs.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace rmsyn {

class BitVec {
public:
  BitVec() = default;
  explicit BitVec(std::size_t nbits, bool value = false);

  std::size_t size() const { return nbits_; }
  std::size_t words() const { return words_.size(); }
  uint64_t word(std::size_t w) const { return words_[w]; }
  uint64_t& word(std::size_t w) { return words_[w]; }

  /// Raw word storage, for the SIMD kernels and sharded writers.
  /// Callers writing through data() must re-establish the tail invariant
  /// (unused bits of the last word zero) with mask_tail() when done.
  const uint64_t* data() const { return words_.data(); }
  uint64_t* data() { return words_.data(); }

  bool get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i, bool v = true) {
    const uint64_t mask = uint64_t{1} << (i & 63);
    if (v)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }
  void flip(std::size_t i) { words_[i >> 6] ^= uint64_t{1} << (i & 63); }

  void clear_all();
  void set_all();
  /// Complements every bit in place (tail bits of the last word stay 0).
  void flip_all();
  void resize(std::size_t nbits, bool value = false);
  /// Pre-allocates word storage for `nbits` bits; size() is unchanged.
  void reserve(std::size_t nbits);

  std::size_t count() const;
  bool any() const;
  bool none() const { return !any(); }

  /// Early-exit word compare: true when the two vectors differ anywhere.
  /// Equivalent to !(*this == o) for same-sized vectors but vectorized,
  /// and the primitive behind fault detection and event firing.
  bool differs(const BitVec& o) const;

  /// Zeroes the unused bits of the last word. Storage-level invariant:
  /// every BitVec keeps those bits zero so popcount/hash/compare are
  /// exact for any bit count; only raw data() writers need to call this.
  void mask_tail();

  /// Debug check of the tail invariant (no-op in release builds).
  void assert_tail_clear() const;

  /// True when every bit set in *this is also set in other.
  bool is_subset_of(const BitVec& other) const;
  /// True when no bit is set in both.
  bool disjoint(const BitVec& other) const;
  /// Index of the first set bit, or npos when empty.
  std::size_t first_set() const;
  /// Index of the first set bit at or after `from`, or npos.
  std::size_t next_set(std::size_t from) const;

  BitVec& operator&=(const BitVec& o);
  BitVec& operator|=(const BitVec& o);
  BitVec& operator^=(const BitVec& o);
  friend BitVec operator&(BitVec a, const BitVec& b) { return a &= b; }
  friend BitVec operator|(BitVec a, const BitVec& b) { return a |= b; }
  friend BitVec operator^(BitVec a, const BitVec& b) { return a ^= b; }

  bool operator==(const BitVec& o) const = default;
  /// Lexicographic order on the word array; usable as a map key.
  bool operator<(const BitVec& o) const;

  /// "0101..." LSB-first rendering, handy in diagnostics and tests.
  std::string to_string() const;

  std::size_t hash() const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

private:
  std::size_t nbits_ = 0;
  std::vector<uint64_t> words_;
};

struct BitVecHash {
  std::size_t operator()(const BitVec& b) const { return b.hash(); }
};

} // namespace rmsyn
