#include "util/governor.hpp"

#include <utility>

namespace rmsyn {

const char* to_string(TripKind k) {
  switch (k) {
    case TripKind::None: return "none";
    case TripKind::Deadline: return "deadline";
    case TripKind::NodeLimit: return "node-limit";
    case TripKind::StepLimit: return "step-limit";
    case TripKind::Cancelled: return "cancelled";
    case TripKind::FaultInjected: return "fault-injected";
  }
  return "?";
}

ResourceGovernor::ResourceGovernor(ResourceLimits limits)
    : limits_(std::move(limits)), slice_start_(Clock::now()) {}

bool ResourceGovernor::slow_poll() {
  if (cancel_requested_.load(std::memory_order_relaxed)) {
    trip(TripKind::Cancelled, "cancel requested");
    return false;
  }
  if (limits_.step_limit != 0 &&
      steps_ - slice_step_base_ >= limits_.step_limit) {
    trip(TripKind::StepLimit, "step budget exhausted");
    return false;
  }
  if (limits_.deadline_seconds > 0.0) {
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - slice_start_).count();
    if (elapsed >= limits_.deadline_seconds) {
      trip(TripKind::Deadline, "deadline exceeded");
      return false;
    }
  }
  return true;
}

bool ResourceGovernor::note_nodes(std::size_t live) {
  if (tripped_.load(std::memory_order_relaxed)) return false;
  if (limits_.node_limit != 0 && live > limits_.node_limit) {
    trip(TripKind::NodeLimit, "live node limit exceeded");
    return false;
  }
  return true;
}

bool ResourceGovernor::count_allocation() {
  ++allocations_;
  if (limits_.faults.fail_at_allocation != 0 &&
      allocations_ == limits_.faults.fail_at_allocation) {
    trip(TripKind::FaultInjected, "fault: allocation budget");
    return false;
  }
  return !tripped_.load(std::memory_order_relaxed);
}

void ResourceGovernor::begin_stage(const char* stage) {
  stage_stack_.emplace_back(stage);
  if (!limits_.faults.trip_at_stage.empty() &&
      limits_.faults.trip_at_stage == stage) {
    trip(TripKind::FaultInjected,
         "fault: forced deadline at stage '" + std::string(stage) + "'");
  }
}

void ResourceGovernor::end_stage() {
  if (!stage_stack_.empty()) stage_stack_.pop_back();
}

std::string ResourceGovernor::current_stage() const {
  return stage_stack_.empty() ? std::string() : stage_stack_.back();
}

bool ResourceGovernor::grant_fallback() {
  if (!tripped_.load(std::memory_order_relaxed)) return true;
  if (fallbacks_ >= kMaxFallbacks) return false;
  ++fallbacks_;
  // Fresh slice: restart the clock and the step counter; the allocation
  // fault stays armed only if it has not fired yet (it is one-shot).
  slice_start_ = Clock::now();
  slice_step_base_ = steps_;
  tripped_.store(false, std::memory_order_relaxed);
  return true;
}

void ResourceGovernor::trip(TripKind kind, std::string reason) {
  if (!tripped_.exchange(true, std::memory_order_relaxed) &&
      first_trip_kind_ == TripKind::None) {
    first_trip_kind_ = kind;
    first_trip_stage_ = current_stage();
    first_trip_reason_ = std::move(reason);
  }
}

// --- FlowStatus -------------------------------------------------------------

FlowStatus FlowStatus::degraded(std::string stage, std::string reason) {
  FlowStatus s;
  s.outcome = FlowOutcome::Degraded;
  s.stage = std::move(stage);
  s.reason = std::move(reason);
  return s;
}

FlowStatus FlowStatus::failed(std::string stage, std::string reason) {
  FlowStatus s;
  s.outcome = FlowOutcome::Failed;
  s.stage = std::move(stage);
  s.reason = std::move(reason);
  return s;
}

std::string FlowStatus::to_string() const {
  switch (outcome) {
    case FlowOutcome::Ok: return "ok";
    case FlowOutcome::Degraded:
      return "degraded:" + (stage.empty() ? std::string("?") : stage);
    case FlowOutcome::Failed:
      return "failed:" + (reason.empty()
                              ? (stage.empty() ? std::string("?") : stage)
                              : reason);
  }
  return "?";
}

const FlowStatus& worse(const FlowStatus& a, const FlowStatus& b) {
  return b.severity() > a.severity() ? b : a;
}

} // namespace rmsyn
