#include "util/governor.hpp"

#include <utility>

#include "util/progress.hpp"

namespace rmsyn {

const char* to_string(TripKind k) {
  switch (k) {
    case TripKind::None: return "none";
    case TripKind::Deadline: return "deadline";
    case TripKind::NodeLimit: return "node-limit";
    case TripKind::StepLimit: return "step-limit";
    case TripKind::Cancelled: return "cancelled";
    case TripKind::FaultInjected: return "fault-injected";
  }
  return "?";
}

ErrorCode error_code_for(TripKind k) {
  switch (k) {
    case TripKind::None: return ErrorCode::None;
    case TripKind::Deadline: return ErrorCode::BudgetDeadline;
    case TripKind::NodeLimit: return ErrorCode::BudgetNodes;
    case TripKind::StepLimit: return ErrorCode::BudgetSteps;
    case TripKind::Cancelled: return ErrorCode::Cancelled;
    case TripKind::FaultInjected: return ErrorCode::InjectedFault;
  }
  return ErrorCode::Internal;
}

ResourceGovernor::ResourceGovernor(ResourceLimits limits)
    : limits_(std::move(limits)), slice_start_(Clock::now()) {}

bool ResourceGovernor::slow_poll() {
  if (cancel_requested_.load(std::memory_order_relaxed)) {
    trip(TripKind::Cancelled, "cancel requested");
    return false;
  }
  if (limits_.shared != nullptr) {
    if (limits_.shared->cancelled()) {
      trip(TripKind::Cancelled, "batch cancelled");
      return false;
    }
    if (limits_.shared->past_deadline()) {
      trip(TripKind::Deadline, "batch deadline exceeded");
      return false;
    }
  }
  if (limits_.step_limit != 0 &&
      steps_.load(std::memory_order_relaxed) -
              slice_step_base_.load(std::memory_order_relaxed) >=
          limits_.step_limit) {
    trip(TripKind::StepLimit, "step budget exhausted");
    return false;
  }
  if (limits_.deadline_seconds > 0.0) {
    Clock::time_point start;
    {
      std::lock_guard<std::mutex> lk(cold_mu_);
      start = slice_start_;
    }
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (elapsed >= limits_.deadline_seconds) {
      trip(TripKind::Deadline, "deadline exceeded");
      return false;
    }
  }
  return true;
}

bool ResourceGovernor::note_nodes(std::size_t live) {
  // Heartbeat feed: one relaxed load when no heartbeat runs, one relaxed
  // store when one does (the board is advisory; see util/progress.hpp).
  if (ProgressBoard::active()) ProgressBoard::instance().note_live_nodes(live);
  if (tripped_.load(std::memory_order_relaxed)) return false;
  if (limits_.node_limit != 0 && live > limits_.node_limit) {
    trip(TripKind::NodeLimit, "live node limit exceeded");
    return false;
  }
  return true;
}

bool ResourceGovernor::count_allocation() {
  const uint64_t n = allocations_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (limits_.faults.fail_at_allocation != 0 &&
      n == limits_.faults.fail_at_allocation) {
    trip(TripKind::FaultInjected, "fault: allocation budget");
    return false;
  }
  if (limits_.shared != nullptr && limits_.shared->allocation_pool_enabled()) {
    if (shared_slice_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
      int64_t grain = 0;
      if (!limits_.shared->draw_allocations(&grain)) {
        trip(TripKind::NodeLimit, "shared allocation pool exhausted");
        return false;
      }
      shared_slice_.fetch_add(grain, std::memory_order_relaxed);
    }
  }
  return !tripped_.load(std::memory_order_relaxed);
}

void ResourceGovernor::begin_stage(const char* stage) {
  bool fire = false;
  {
    std::lock_guard<std::mutex> lk(cold_mu_);
    stage_stack_.emplace_back(stage);
    fire = !limits_.faults.trip_at_stage.empty() &&
           limits_.faults.trip_at_stage == stage;
  }
  if (fire)
    trip(TripKind::FaultInjected,
         "fault: forced deadline at stage '" + std::string(stage) + "'");
}

void ResourceGovernor::end_stage() {
  std::lock_guard<std::mutex> lk(cold_mu_);
  if (!stage_stack_.empty()) stage_stack_.pop_back();
}

std::string ResourceGovernor::current_stage() const {
  std::lock_guard<std::mutex> lk(cold_mu_);
  return stage_stack_.empty() ? std::string() : stage_stack_.back();
}

std::string ResourceGovernor::trip_stage() const {
  std::lock_guard<std::mutex> lk(cold_mu_);
  return first_trip_stage_;
}

std::string ResourceGovernor::trip_reason() const {
  std::lock_guard<std::mutex> lk(cold_mu_);
  return first_trip_reason_;
}

bool ResourceGovernor::grant_fallback() {
  if (!tripped_.load(std::memory_order_relaxed)) return true;
  if (fallbacks_ >= kMaxFallbacks) return false;
  ++fallbacks_;
  // Fresh slice: restart the clock and the step counter; the allocation
  // fault stays armed only if it has not fired yet (it is one-shot). A
  // shared budget is deliberately NOT re-armed — a cancelled or timed-out
  // batch re-trips at the next slow poll.
  {
    std::lock_guard<std::mutex> lk(cold_mu_);
    slice_start_ = Clock::now();
  }
  slice_step_base_.store(steps_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  tripped_.store(false, std::memory_order_relaxed);
  return true;
}

void ResourceGovernor::trip(TripKind kind, std::string reason) {
  if (tripped_.exchange(true, std::memory_order_relaxed)) return;
  // First tripper of this slice; record metadata only for the first trip
  // of the governor's lifetime (preserved across grant_fallback slices).
  if (first_trip_kind_.load(std::memory_order_acquire) != TripKind::None)
    return;
  std::lock_guard<std::mutex> lk(cold_mu_);
  first_trip_stage_ =
      stage_stack_.empty() ? std::string() : stage_stack_.back();
  first_trip_reason_ = std::move(reason);
  first_trip_kind_.store(kind, std::memory_order_release);
}

// --- FlowStatus -------------------------------------------------------------

FlowStatus FlowStatus::degraded(std::string stage, std::string reason,
                                ErrorCode code) {
  FlowStatus s;
  s.outcome = FlowOutcome::Degraded;
  s.stage = std::move(stage);
  s.reason = std::move(reason);
  s.code = code;
  return s;
}

FlowStatus FlowStatus::failed(std::string stage, std::string reason,
                              ErrorCode code) {
  FlowStatus s;
  s.outcome = FlowOutcome::Failed;
  s.stage = std::move(stage);
  s.reason = std::move(reason);
  s.code = code;
  return s;
}

std::string FlowStatus::to_string() const {
  switch (outcome) {
    case FlowOutcome::Ok: return "ok";
    case FlowOutcome::Degraded:
      return "degraded:" + (stage.empty() ? std::string("?") : stage);
    case FlowOutcome::Failed:
      return "failed:" + (reason.empty()
                              ? (stage.empty() ? std::string("?") : stage)
                              : reason);
  }
  return "?";
}

const FlowStatus& worse(const FlowStatus& a, const FlowStatus& b) {
  return b.severity() > a.severity() ? b : a;
}

} // namespace rmsyn
