#include "util/faultplan.hpp"

#include <mutex>

#include "util/errors.hpp"

namespace rmsyn {

namespace faultdetail {

std::atomic<bool> g_active{false};

namespace {
std::mutex g_mu; // guards g_plan installation (hooks read atomics only)
FaultPlan g_plan;
std::atomic<uint64_t> g_nodes{0};
std::atomic<uint64_t> g_journal{0};
std::atomic<uint64_t> g_arena_at{0};
std::atomic<uint64_t> g_journal_at{0};

uint64_t splitmix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}
} // namespace

void count_node_slow() {
  const uint64_t at = g_arena_at.load(std::memory_order_relaxed);
  if (at == 0) return;
  const uint64_t n = g_nodes.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n == at)
    throw RmsynError(ErrorCode::InjectedFault,
                     "fault-plan: arena allocation failed at node " +
                         std::to_string(n));
}

bool journal_append_slow() {
  const uint64_t at = g_journal_at.load(std::memory_order_relaxed);
  if (at == 0) return false;
  const uint64_t n = g_journal.fetch_add(1, std::memory_order_relaxed) + 1;
  return n == at;
}

} // namespace faultdetail

void install_fault_plan(const FaultPlan& p) {
  std::lock_guard<std::mutex> lk(faultdetail::g_mu);
  faultdetail::g_plan = p;
  faultdetail::g_nodes.store(0, std::memory_order_relaxed);
  faultdetail::g_journal.store(0, std::memory_order_relaxed);
  faultdetail::g_arena_at.store(p.arena_fail_at_node,
                                std::memory_order_relaxed);
  faultdetail::g_journal_at.store(p.journal_fail_at_record,
                                  std::memory_order_relaxed);
  faultdetail::g_active.store(true, std::memory_order_release);
}

void clear_fault_plan() {
  std::lock_guard<std::mutex> lk(faultdetail::g_mu);
  faultdetail::g_active.store(false, std::memory_order_release);
  faultdetail::g_plan = FaultPlan{};
  faultdetail::g_arena_at.store(0, std::memory_order_relaxed);
  faultdetail::g_journal_at.store(0, std::memory_order_relaxed);
}

FaultPlan active_fault_plan() {
  std::lock_guard<std::mutex> lk(faultdetail::g_mu);
  return fault_plan_active() ? faultdetail::g_plan : FaultPlan{};
}

std::string apply_io_faults(std::string bytes) {
  if (!fault_plan_active()) return bytes;
  const FaultPlan p = active_fault_plan();
  if (p.io_corrupt_at != 0 && p.io_corrupt_at <= bytes.size()) {
    // Never XOR with 0 (that would be a no-op "corruption").
    const uint8_t x = static_cast<uint8_t>(
        faultdetail::splitmix64(p.seed ^ p.io_corrupt_at) | 1u);
    bytes[p.io_corrupt_at - 1] = static_cast<char>(
        static_cast<uint8_t>(bytes[p.io_corrupt_at - 1]) ^ x);
  }
  if (p.io_truncate_at != 0 && p.io_truncate_at < bytes.size())
    bytes.resize(p.io_truncate_at);
  return bytes;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan p;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos)
      throw RmsynError(ErrorCode::ParseError,
                       "fault-plan: expected key=value, got '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    uint64_t v = 0;
    if (val.empty())
      throw RmsynError(ErrorCode::ParseError,
                       "fault-plan: empty value for '" + key + "'");
    for (const char c : val) {
      if (c < '0' || c > '9')
        throw RmsynError(ErrorCode::ParseError,
                         "fault-plan: bad number '" + val + "' for '" + key +
                             "'");
      if (v > (~0ull - static_cast<uint64_t>(c - '0')) / 10)
        throw RmsynError(ErrorCode::ParseError,
                         "fault-plan: value overflow for '" + key + "'");
      v = v * 10 + static_cast<uint64_t>(c - '0');
    }
    if (key == "seed") p.seed = v;
    else if (key == "truncate") p.io_truncate_at = v;
    else if (key == "corrupt") p.io_corrupt_at = v;
    else if (key == "arena") p.arena_fail_at_node = v;
    else if (key == "journal") p.journal_fail_at_record = v;
    else
      throw RmsynError(ErrorCode::ParseError,
                       "fault-plan: unknown key '" + key +
                           "' (want seed/truncate/corrupt/arena/journal)");
  }
  return p;
}

} // namespace rmsyn
