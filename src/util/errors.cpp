#include "util/errors.hpp"

#include <new>

namespace rmsyn {

const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::None: return "none";
    case ErrorCode::BudgetDeadline: return "budget-deadline";
    case ErrorCode::BudgetNodes: return "budget-nodes";
    case ErrorCode::BudgetSteps: return "budget-steps";
    case ErrorCode::Cancelled: return "cancelled";
    case ErrorCode::InjectedFault: return "injected-fault";
    case ErrorCode::IoTransient: return "io-transient";
    case ErrorCode::ParseError: return "parse-error";
    case ErrorCode::InvariantViolation: return "invariant-violation";
    case ErrorCode::VerifyMismatch: return "verify-mismatch";
    case ErrorCode::Internal: return "internal";
  }
  return "?";
}

const char* to_string(ErrorClass c) {
  switch (c) {
    case ErrorClass::None: return "none";
    case ErrorClass::TransientRetryable: return "transient-retryable";
    case ErrorClass::DeterministicFatal: return "deterministic-fatal";
  }
  return "?";
}

ErrorClass error_class(ErrorCode c) {
  switch (c) {
    case ErrorCode::None:
      return ErrorClass::None;
    case ErrorCode::BudgetDeadline:
    case ErrorCode::BudgetNodes:
    case ErrorCode::BudgetSteps:
    case ErrorCode::Cancelled:
    case ErrorCode::InjectedFault:
    case ErrorCode::IoTransient:
      return ErrorClass::TransientRetryable;
    case ErrorCode::ParseError:
    case ErrorCode::InvariantViolation:
    case ErrorCode::VerifyMismatch:
    case ErrorCode::Internal:
      return ErrorClass::DeterministicFatal;
  }
  return ErrorClass::DeterministicFatal;
}

ErrorCode error_code_from_string(const std::string& name) {
  for (const ErrorCode c :
       {ErrorCode::None, ErrorCode::BudgetDeadline, ErrorCode::BudgetNodes,
        ErrorCode::BudgetSteps, ErrorCode::Cancelled, ErrorCode::InjectedFault,
        ErrorCode::IoTransient, ErrorCode::ParseError,
        ErrorCode::InvariantViolation, ErrorCode::VerifyMismatch,
        ErrorCode::Internal}) {
    if (name == to_string(c)) return c;
  }
  return ErrorCode::Internal;
}

int exit_code_for_error(ErrorCode c) {
  switch (c) {
    case ErrorCode::None:
      return ExitCode::Ok;
    case ErrorCode::ParseError:
      return ExitCode::FatalInput;
    case ErrorCode::InvariantViolation:
    case ErrorCode::VerifyMismatch:
      return ExitCode::InvariantOrVerify;
    case ErrorCode::Internal:
      return ExitCode::Usage;
    default:
      return ExitCode::TransientFailure;
  }
}

ErrorCode classify_exception(const std::exception& e) {
  if (const auto* re = dynamic_cast<const RmsynError*>(&e)) return re->code();
  if (dynamic_cast<const std::bad_alloc*>(&e) != nullptr)
    return ErrorCode::BudgetNodes;
  if (dynamic_cast<const std::logic_error*>(&e) != nullptr)
    return ErrorCode::VerifyMismatch;
  return ErrorCode::Internal;
}

} // namespace rmsyn
