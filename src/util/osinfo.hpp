// Process-level OS gauges for observability: peak resident set size.
//
// Promoted out of bench/bench_network_scale.cpp so the run-report path,
// the profiler and every bench can record the same `os.peak_rss_mb`
// gauge instead of re-rolling getrusage. Values are advisory telemetry —
// a platform without getrusage reports 0 rather than failing.
#pragma once

namespace rmsyn {

/// Peak resident set of this process so far, in MB (Linux ru_maxrss is KB,
/// macOS reports bytes; both are normalized here). Returns 0.0 when the
/// platform has no getrusage.
double peak_rss_mb();

} // namespace rmsyn
