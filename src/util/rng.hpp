// Deterministic RNG used by tests, benchmark-circuit generators and the
// random-simulation pre-pass of the equivalence checker. All randomness in
// rmsyn is seeded so that every experiment is reproducible run-to-run.
#pragma once

#include <cstdint>

namespace rmsyn {

/// xoshiro256** — small, fast, and good enough for pattern generation.
class Rng {
public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 expansion of the seed into the four lanes.
    uint64_t x = seed;
    for (auto& lane : s_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      lane = z ^ (z >> 31);
    }
  }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound).
  uint64_t below(uint64_t bound) { return bound == 0 ? 0 : next() % bound; }

  bool flip() { return (next() >> 63) != 0; }

  /// Bernoulli with probability num/den.
  bool chance(uint64_t num, uint64_t den) { return below(den) < num; }

private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

} // namespace rmsyn
