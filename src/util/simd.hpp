// Portable SIMD layer for the bit-parallel hot paths (DESIGN.md §15).
//
// Everything performance-critical in rmsyn is word-parallel Boolean
// algebra over arrays of 64-bit pattern words: good-value simulation,
// fault probing, signature compares and the packed cut truth-table
// kernels. This header exposes those inner loops as a small fixed set of
// kernels — and/or/xor (with fused complement), accumulate variants for
// n-ary gates, andnot, mux, any-bit / all-bits tests, an early-exit
// "do these differ" compare and a popcount — behind one dispatch table.
//
// Dispatch: the best target the host supports is selected exactly once
// (AVX2 on x86-64, NEON on aarch64, scalar everywhere else) and can be
// overridden with RMSYN_SIMD=scalar|avx2|neon for testing, CI legs and
// benchmarking. All targets are bit-identical by contract: a kernel is a
// pure word-wise function, so the only thing a target changes is speed.
// The forced-scalar fallback is compiled with auto-vectorization disabled
// so "scalar" really measures one word per operation — it is the honesty
// baseline the bench_sim throughput gate compares against, not just a
// portability shim.
//
// The logical block is 256 bits (kBlockWords x 64); AVX2 maps it onto one
// ymm op, NEON onto two 128-bit ops, scalar onto four word ops. Arrays
// need no alignment (unaligned loads throughout) and tails shorter than a
// block fall back to word ops inside every kernel.
//
// Thread safety: ops() is safe to call from any thread after the first
// call. force_dispatch() swaps the active table and must only be called
// while no other thread is inside a kernel (tests and benches call it
// between phases).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rmsyn::simd {

/// Words per logical SIMD block (256 bits).
inline constexpr std::size_t kBlockWords = 4;

enum class Dispatch : uint8_t { Scalar = 0, Avx2 = 1, Neon = 2 };

const char* to_string(Dispatch d);

/// The kernel table. `invert` fuses the trailing complement (NAND/NOR/
/// XNOR gates) into the same pass over memory. dst may alias a or b in
/// every kernel (pure word-wise operations).
struct Ops {
  Dispatch dispatch = Dispatch::Scalar;

  // dst[i] = a[i] OP b[i], complemented when invert.
  void (*v_and)(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                std::size_t n, bool invert);
  void (*v_or)(uint64_t* dst, const uint64_t* a, const uint64_t* b,
               std::size_t n, bool invert);
  void (*v_xor)(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                std::size_t n, bool invert);
  // dst[i] OP= a[i] (n-ary gate folds).
  void (*v_and_acc)(uint64_t* dst, const uint64_t* a, std::size_t n);
  void (*v_or_acc)(uint64_t* dst, const uint64_t* a, std::size_t n);
  void (*v_xor_acc)(uint64_t* dst, const uint64_t* a, std::size_t n);
  // dst[i] = ~a[i] (callers re-mask the tail word).
  void (*v_not)(uint64_t* dst, const uint64_t* a, std::size_t n);
  // dst[i] = a[i] & ~b[i].
  void (*v_andnot)(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                   std::size_t n);
  // dst[i] = (m[i] & a[i]) | (~m[i] & b[i]) — lane select, used by the
  // batched cut truth-table kernel to splice leaf projections in.
  void (*v_mux)(uint64_t* dst, const uint64_t* m, const uint64_t* a,
                const uint64_t* b, std::size_t n);
  // True when any bit of a[0..n) is set (early exit per block).
  bool (*v_any)(const uint64_t* a, std::size_t n);
  // True when every bit of every word is set (tail handling is the
  // caller's problem — pass full words only).
  bool (*v_all)(const uint64_t* a, std::size_t n);
  // True when a and b differ anywhere: fused XOR + any-bit with early
  // exit, the fault-detection primitive.
  bool (*v_any_diff)(const uint64_t* a, const uint64_t* b, std::size_t n);
  // Population count over the array (signature stats, fault coverage).
  uint64_t (*v_popcount)(const uint64_t* a, std::size_t n);
};

/// The active kernel table. First call selects the best target the host
/// supports, honoring RMSYN_SIMD=scalar|avx2|neon (an unavailable request
/// falls back to the best available and warns once on stderr).
const Ops& ops();

/// Name of the active dispatch target: "scalar", "avx2" or "neon".
const char* dispatch_name();

/// Targets reachable on this host, best first (always contains "scalar").
std::vector<std::string> available_dispatches();

/// Forces a specific target (for tests and benches). Returns false and
/// leaves the dispatch unchanged when the target is unknown or the host
/// cannot run it. Not safe concurrently with running kernels.
bool force_dispatch(const std::string& name);

} // namespace rmsyn::simd
