#include "util/bitvec.hpp"

#include <bit>
#include <cassert>

#include "util/simd.hpp"

namespace rmsyn {

BitVec::BitVec(std::size_t nbits, bool value)
    : nbits_(nbits), words_((nbits + 63) / 64, value ? ~uint64_t{0} : 0) {
  if (value) mask_tail();
}

void BitVec::mask_tail() {
  const std::size_t rem = nbits_ & 63;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << rem) - 1;
  }
}

void BitVec::assert_tail_clear() const {
#ifndef NDEBUG
  const std::size_t rem = nbits_ & 63;
  if (rem != 0 && !words_.empty()) {
    assert((words_.back() & ~((uint64_t{1} << rem) - 1)) == 0 &&
           "BitVec tail invariant violated: unused bits of last word set");
  }
#endif
}

void BitVec::clear_all() {
  for (auto& w : words_) w = 0;
}

void BitVec::set_all() {
  for (auto& w : words_) w = ~uint64_t{0};
  mask_tail();
}

void BitVec::flip_all() {
  simd::ops().v_not(words_.data(), words_.data(), words_.size());
  mask_tail();
}

void BitVec::reserve(std::size_t nbits) { words_.reserve((nbits + 63) / 64); }

void BitVec::resize(std::size_t nbits, bool value) {
  const std::size_t old_bits = nbits_;
  nbits_ = nbits;
  words_.resize((nbits + 63) / 64, value ? ~uint64_t{0} : 0);
  if (value && nbits > old_bits) {
    // Fill the partial word at the old boundary.
    for (std::size_t i = old_bits; i < nbits && (i & 63) != 0; ++i) set(i, true);
  }
  mask_tail();
}

std::size_t BitVec::count() const {
  assert_tail_clear();
  return static_cast<std::size_t>(
      simd::ops().v_popcount(words_.data(), words_.size()));
}

bool BitVec::any() const {
  assert_tail_clear();
  return simd::ops().v_any(words_.data(), words_.size());
}

bool BitVec::differs(const BitVec& o) const {
  assert_tail_clear();
  o.assert_tail_clear();
  if (nbits_ != o.nbits_) return true;
  return simd::ops().v_any_diff(words_.data(), o.words_.data(), words_.size());
}

bool BitVec::is_subset_of(const BitVec& other) const {
  for (std::size_t i = 0; i < words_.size(); ++i)
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  return true;
}

bool BitVec::disjoint(const BitVec& other) const {
  for (std::size_t i = 0; i < words_.size(); ++i)
    if ((words_[i] & other.words_[i]) != 0) return false;
  return true;
}

std::size_t BitVec::first_set() const { return next_set(0); }

std::size_t BitVec::next_set(std::size_t from) const {
  if (from >= nbits_) return npos;
  std::size_t w = from >> 6;
  uint64_t cur = words_[w] & (~uint64_t{0} << (from & 63));
  while (true) {
    if (cur != 0) {
      const std::size_t bit = (w << 6) + static_cast<std::size_t>(std::countr_zero(cur));
      return bit < nbits_ ? bit : npos;
    }
    if (++w >= words_.size()) return npos;
    cur = words_[w];
  }
}

BitVec& BitVec::operator&=(const BitVec& o) {
  simd::ops().v_and_acc(words_.data(), o.words_.data(), words_.size());
  return *this;
}
BitVec& BitVec::operator|=(const BitVec& o) {
  simd::ops().v_or_acc(words_.data(), o.words_.data(), words_.size());
  return *this;
}
BitVec& BitVec::operator^=(const BitVec& o) {
  simd::ops().v_xor_acc(words_.data(), o.words_.data(), words_.size());
  return *this;
}

bool BitVec::operator<(const BitVec& o) const {
  if (nbits_ != o.nbits_) return nbits_ < o.nbits_;
  for (std::size_t i = words_.size(); i-- > 0;) {
    if (words_[i] != o.words_[i]) return words_[i] < o.words_[i];
  }
  return false;
}

std::string BitVec::to_string() const {
  std::string s;
  s.reserve(nbits_);
  for (std::size_t i = 0; i < nbits_; ++i) s.push_back(get(i) ? '1' : '0');
  return s;
}

std::size_t BitVec::hash() const {
  assert_tail_clear();
  // FNV-1a over the words; the tail word is already masked.
  uint64_t h = 1469598103934665603ull;
  for (auto w : words_) {
    h ^= w;
    h *= 1099511628211ull;
  }
  h ^= nbits_;
  h *= 1099511628211ull;
  return static_cast<std::size_t>(h);
}

} // namespace rmsyn
