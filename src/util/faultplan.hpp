// Deterministic fault-injection plan (DESIGN.md §12).
//
// PR 2's GovernorFaults cover the *budget* edges (allocation trips, forced
// stage deadlines, computed-table overflow). This plan covers the rest of
// the failure surface the resilience layer must survive, all driven from
// one seeded struct so CI can sweep them reproducibly:
//
//   * IO faults — truncate a loaded input file at byte N and/or XOR one
//     byte, before parsing. Exercises the PLA/BLIF/AIGER hardening: a
//     damaged file must yield ErrorCode::ParseError (or, if the damage
//     happens to keep the file well-formed, a verified parse), never a
//     crash, hang, or out-of-bounds read.
//   * Arena fault — the Nth Network node creation throws
//     RmsynError(InjectedFault), modelling an allocation failure inside a
//     transform. Classified transient-retryable: `batch --retries` re-runs
//     the row (the plan is one-shot per install).
//   * Journal fault — the Nth journal append reports failure, modelling a
//     full disk / fsync error mid-batch. The batch must keep running and
//     surface the count, never abort.
//
// Installation is process-wide (the CLI's --fault-plan flag; tests install
// and clear around each case). Counters are atomic: parallel batches hit
// the arena/journal points from several workers. When no plan is
// installed, every hook is one relaxed atomic load.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace rmsyn {

struct FaultPlan {
  /// Seed: documents the sweep point and derives the corruption byte
  /// (splitmix64), so two sweeps with different seeds damage differently.
  uint64_t seed = 0;
  /// Keep only the first N bytes of every loaded input (1-based count;
  /// 0 = off). N larger than the file is a no-op.
  uint64_t io_truncate_at = 0;
  /// XOR byte N (1-based) of every loaded input with a seed-derived value
  /// (0 = off). N past the end is a no-op.
  uint64_t io_corrupt_at = 0;
  /// Throw RmsynError(InjectedFault) at the Nth Network node creation
  /// (1-based, counted process-wide from install; 0 = off). One-shot.
  uint64_t arena_fail_at_node = 0;
  /// Fail the Nth journal append (1-based, from install; 0 = off). One-shot.
  uint64_t journal_fail_at_record = 0;

  bool any_io() const { return io_truncate_at != 0 || io_corrupt_at != 0; }

  /// Parses "key=value[,key=value...]" with keys seed, truncate, corrupt,
  /// arena, journal. Throws RmsynError(ParseError) on unknown keys or
  /// malformed numbers (this is CLI input).
  static FaultPlan parse(const std::string& spec);
};

/// Installs `p` process-wide and resets the arena/journal counters.
void install_fault_plan(const FaultPlan& p);
/// Removes any installed plan (hooks become no-ops again).
void clear_fault_plan();
/// Snapshot of the installed plan (a default plan when none is installed).
FaultPlan active_fault_plan();

namespace faultdetail {
extern std::atomic<bool> g_active;
void count_node_slow();
bool journal_append_slow();
} // namespace faultdetail

inline bool fault_plan_active() {
  return faultdetail::g_active.load(std::memory_order_relaxed);
}

/// Applies the installed plan's IO faults to a loaded input buffer
/// (identity when no plan / no IO faults are armed).
std::string apply_io_faults(std::string bytes);

/// Arena hook, called by Network node creation. Throws
/// RmsynError(InjectedFault) when the armed count is reached.
inline void fault_count_node() {
  if (fault_plan_active()) faultdetail::count_node_slow();
}

/// Journal hook: true when this append must fail.
inline bool fault_journal_append() {
  return fault_plan_active() && faultdetail::journal_append_slow();
}

/// RAII installer for tests: installs on construction, clears on scope exit.
class ScopedFaultPlan {
public:
  explicit ScopedFaultPlan(const FaultPlan& p) { install_fault_plan(p); }
  ~ScopedFaultPlan() { clear_fault_plan(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

} // namespace rmsyn
