// Cooperative resource governor for the synthesis flow.
//
// The paper's flow is worst-case exponential at three points — ROBDD
// construction, the OFDD polarity search, and FPRM cube enumeration — so
// every long-running loop in the stack polls a shared ResourceGovernor and
// unwinds with a *status*, never an exception crossing a module boundary.
// The DD kernel signals exhaustion by returning BddManager::kInvalid from
// its recursive operations; higher layers translate that into a
// degradation-ladder step (see core/synth.cpp) and ultimately into the
// FlowStatus carried by SynthReport/FlowRow.
//
// Budgets:
//  * wall-clock deadline (checked every kCheckInterval polls to keep the
//    hot-path cost to a counter increment and a mask),
//  * peak live DD nodes (note_nodes(), called by BddManager::mk),
//  * a step budget (every poll is one step; deterministic, used by tests
//    and the fuzzer),
//  * an external cancel() flag (thread-safe; e.g. a signal handler),
//  * an optional SharedBudget — batch-wide cancellation, an absolute
//    wall-clock deadline, and a global DD-allocation pool that every
//    governor in the batch draws slices from (see src/sched/batch.hpp).
//
// Thread safety. One governor may be polled concurrently from several
// worker threads (the parallel polarity/KFDD search shares the flow's
// governor across per-worker manager clones). The hot path — poll(),
// note_nodes(), count_allocation(), exhausted(), cancel() — is lock-free:
// plain relaxed atomics, no mutex. The cold paths (stage tracking, trip
// bookkeeping, grant_fallback) serialize on a small mutex. Trip metadata
// (trip_kind/stage/reason) is written once by the winning tripper; read it
// after the parallel region has joined (the flow thread does).
//
// Fault injection (GovernorFaults) makes every fallback edge reachable
// deterministically: fail the Nth node allocation, force-trip the deadline
// when a named stage begins, or make the computed table behave as if it
// always overflowed (every lookup misses).
//
// Degradation ladder support: after a trip, grant_fallback() re-arms a
// fresh budget slice so the next (cheaper) rung gets a real chance instead
// of inheriting an already-dead budget. The first trip's kind/stage/reason
// are preserved for reporting. A SharedBudget is batch-scoped and never
// re-armed: a cancelled or out-of-deadline batch re-trips on the next
// slow poll regardless of fallback slices.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/errors.hpp"

namespace rmsyn {

/// Deterministic fault-injection hooks; all off by default.
struct GovernorFaults {
  /// Trip when the Nth DD-node allocation happens (1-based; 0 = off).
  uint64_t fail_at_allocation = 0;
  /// Force a deadline trip whenever this stage begins (empty = off).
  std::string trip_at_stage;
  /// Make every computed-table lookup miss, as if the table permanently
  /// overflowed (stresses the uncached recursion paths).
  bool overflow_computed_table = false;
};

/// Batch-wide budget shared by every governor of a parallel batch: a
/// cancellation flag, an absolute deadline, and a global pool of DD-node
/// allocations that per-flow governors carve local slices from (one atomic
/// fetch per kAllocationGrain allocations, so the hot path stays a local
/// counter decrement). All members are safe to touch from any thread.
class SharedBudget {
public:
  SharedBudget() = default;
  SharedBudget(const SharedBudget&) = delete;
  SharedBudget& operator=(const SharedBudget&) = delete;

  /// Broadcast cancellation: every attached governor trips at its next
  /// slow poll.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Absolute wall-clock deadline `seconds` from now for the whole batch.
  void set_deadline_in(double seconds) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(seconds));
    has_deadline_.store(true, std::memory_order_release);
  }
  bool past_deadline() const {
    return has_deadline_.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() >= deadline_;
  }

  /// Arms the global allocation pool: at most `total` DD-node allocations
  /// across every governor sharing this budget.
  void set_allocation_pool(uint64_t total) {
    pool_.store(static_cast<int64_t>(total), std::memory_order_relaxed);
    pool_enabled_.store(true, std::memory_order_release);
  }
  bool allocation_pool_enabled() const {
    return pool_enabled_.load(std::memory_order_acquire);
  }
  /// Carves one grain from the pool; false when the pool is dry.
  bool draw_allocations(int64_t* grain_out) {
    const int64_t got =
        pool_.fetch_sub(kAllocationGrain, std::memory_order_relaxed);
    if (got <= 0) return false;
    *grain_out = got < kAllocationGrain ? got : kAllocationGrain;
    return true;
  }
  /// Allocations still in the pool (clamped at 0; racy, for reporting).
  uint64_t allocations_remaining() const {
    const int64_t p = pool_.load(std::memory_order_relaxed);
    return p > 0 ? static_cast<uint64_t>(p) : 0;
  }

  static constexpr int64_t kAllocationGrain = 4096;

private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> has_deadline_{false};
  std::atomic<bool> pool_enabled_{false};
  std::atomic<int64_t> pool_{0};
  std::chrono::steady_clock::time_point deadline_{};
};

struct ResourceLimits {
  double deadline_seconds = 0.0; ///< wall clock per budget slice; 0 = off
  std::size_t node_limit = 0;    ///< peak live DD nodes; 0 = off
  uint64_t step_limit = 0;       ///< cooperative polls per slice; 0 = off
  GovernorFaults faults;
  /// Batch-wide budget this governor also answers to (not owned; must
  /// outlive the governor). Null = standalone.
  SharedBudget* shared = nullptr;

  bool unlimited() const {
    return deadline_seconds <= 0.0 && node_limit == 0 && step_limit == 0 &&
           shared == nullptr && faults.fail_at_allocation == 0 &&
           faults.trip_at_stage.empty() && !faults.overflow_computed_table;
  }
};

enum class TripKind : uint8_t {
  None,
  Deadline,
  NodeLimit,
  StepLimit,
  Cancelled,
  FaultInjected,
};

const char* to_string(TripKind k);

/// Taxonomy classification of a trip (util/errors.hpp): every TripKind is
/// transient-retryable — a bigger budget slice or a fault-free re-run can
/// succeed.
ErrorCode error_code_for(TripKind k);

class ResourceGovernor {
public:
  explicit ResourceGovernor(ResourceLimits limits = {});

  /// One cooperative step. Returns true while budget remains; once it
  /// returns false every subsequent call returns false until
  /// grant_fallback() re-arms the budget. The wall clock is consulted only
  /// every kCheckInterval polls; a trip from any other source (node limit,
  /// allocation fault, cancel) is visible on the very next poll.
  /// Safe to call concurrently from multiple worker threads.
  bool poll() {
    if (tripped_.load(std::memory_order_relaxed)) return false;
    const uint64_t s = steps_.fetch_add(1, std::memory_order_relaxed) + 1;
    if ((s & (kCheckInterval - 1)) != 0) return true;
    return slow_poll();
  }

  /// True once any budget has tripped (does not consume a step).
  bool exhausted() const { return tripped_.load(std::memory_order_relaxed); }

  /// Thread-safe external cancellation; observed at the next poll.
  void cancel() { cancel_requested_.store(true, std::memory_order_relaxed); }

  /// Peak-live-node check; called by the DD kernel after each allocation.
  /// Returns false (and trips) when `live` exceeds the node limit.
  bool note_nodes(std::size_t live);

  /// Counts one DD-node allocation against the fail_at_allocation fault
  /// and the shared allocation pool. Returns false (and trips) when either
  /// budget dies.
  bool count_allocation();

  /// True when the computed table should behave as permanently overflowed.
  bool cache_overflow_fault() const {
    return limits_.faults.overflow_computed_table;
  }

  // --- stage tracking ----------------------------------------------------
  /// Pushes a named stage (see StageScope). Checks the trip_at_stage fault.
  void begin_stage(const char* stage);
  void end_stage();
  /// Innermost active stage name ("" when outside any stage).
  std::string current_stage() const;

  /// RAII stage marker.
  class StageScope {
  public:
    StageScope(ResourceGovernor* g, const char* stage) : g_(g) {
      if (g_ != nullptr) g_->begin_stage(stage);
    }
    ~StageScope() {
      if (g_ != nullptr) g_->end_stage();
    }
    StageScope(const StageScope&) = delete;
    StageScope& operator=(const StageScope&) = delete;

  private:
    ResourceGovernor* g_;
  };

  // --- trip reporting -----------------------------------------------------
  /// Kind/stage/reason of the FIRST trip; preserved across grant_fallback().
  /// Stage/reason strings are returned by value (they are written under the
  /// cold-path mutex by whichever thread wins the trip race).
  TripKind trip_kind() const {
    return first_trip_kind_.load(std::memory_order_acquire);
  }
  std::string trip_stage() const;
  std::string trip_reason() const;

  // --- degradation ladder ------------------------------------------------
  /// Re-arms a fresh budget slice for the next ladder rung. Returns false
  /// once kMaxFallbacks slices have been consumed (the ladder must stop).
  /// A no-op (returning true) when nothing has tripped yet. Shared-budget
  /// exhaustion is not re-armed: a dead batch re-trips immediately.
  bool grant_fallback();
  int fallbacks_granted() const { return fallbacks_; }

  uint64_t steps() const { return steps_.load(std::memory_order_relaxed); }
  /// DD-node allocations counted so far (count_allocation calls).
  uint64_t allocations() const {
    return allocations_.load(std::memory_order_relaxed);
  }
  const ResourceLimits& limits() const { return limits_; }
  SharedBudget* shared_budget() const { return limits_.shared; }

  static constexpr uint64_t kCheckInterval = 256; // must be a power of two
  static constexpr int kMaxFallbacks = 8;

private:
  bool slow_poll();
  void trip(TripKind kind, std::string reason);

  using Clock = std::chrono::steady_clock;

  ResourceLimits limits_;
  Clock::time_point slice_start_;
  std::atomic<uint64_t> steps_{0};
  std::atomic<uint64_t> slice_step_base_{0}; ///< steps_ when slice started
  std::atomic<uint64_t> allocations_{0};
  /// Allocations left in the locally carved shared-pool slice. May go
  /// slightly negative under contention before the next carve; the budget
  /// is approximate by design.
  std::atomic<int64_t> shared_slice_{0};
  int fallbacks_ = 0;
  std::atomic<bool> tripped_{false};
  std::atomic<bool> cancel_requested_{false};
  std::atomic<TripKind> first_trip_kind_{TripKind::None};
  /// Guards the cold-path state: stage stack, trip strings, slice clock.
  mutable std::mutex cold_mu_;
  std::vector<std::string> stage_stack_;
  std::string first_trip_stage_;
  std::string first_trip_reason_;
};

// --- flow status -----------------------------------------------------------

enum class FlowOutcome : uint8_t { Ok = 0, Degraded = 1, Failed = 2 };

/// Outcome classification carried by SynthReport/BaselineReport/FlowRow.
/// Renders as "ok", "degraded:<stage>", or "failed:<reason>". `code` is the
/// machine-readable taxonomy entry (util/errors.hpp) the retry machinery
/// and the CLI exit codes key on.
struct FlowStatus {
  FlowOutcome outcome = FlowOutcome::Ok;
  std::string stage;  ///< where the budget died (empty when ok)
  std::string reason; ///< trip/error detail (empty when ok)
  ErrorCode code = ErrorCode::None; ///< taxonomy classification

  static FlowStatus ok() { return {}; }
  static FlowStatus degraded(std::string stage, std::string reason = "",
                             ErrorCode code = ErrorCode::None);
  static FlowStatus failed(std::string stage, std::string reason,
                           ErrorCode code = ErrorCode::Internal);

  bool is_ok() const { return outcome == FlowOutcome::Ok; }
  bool is_degraded() const { return outcome == FlowOutcome::Degraded; }
  bool is_failed() const { return outcome == FlowOutcome::Failed; }
  /// ok < degraded < failed; used for worst-status exit codes.
  int severity() const { return static_cast<int>(outcome); }

  std::string to_string() const;
};

/// The more severe of the two statuses.
const FlowStatus& worse(const FlowStatus& a, const FlowStatus& b);

} // namespace rmsyn
