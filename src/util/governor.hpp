// Cooperative resource governor for the synthesis flow.
//
// The paper's flow is worst-case exponential at three points — ROBDD
// construction, the OFDD polarity search, and FPRM cube enumeration — so
// every long-running loop in the stack polls a shared ResourceGovernor and
// unwinds with a *status*, never an exception crossing a module boundary.
// The DD kernel signals exhaustion by returning BddManager::kInvalid from
// its recursive operations; higher layers translate that into a
// degradation-ladder step (see core/synth.cpp) and ultimately into the
// FlowStatus carried by SynthReport/FlowRow.
//
// Budgets:
//  * wall-clock deadline (checked every kCheckInterval polls to keep the
//    hot-path cost to a counter increment and a mask),
//  * peak live DD nodes (note_nodes(), called by BddManager::mk),
//  * a step budget (every poll is one step; deterministic, used by tests
//    and the fuzzer),
//  * an external cancel() flag (thread-safe; e.g. a signal handler).
//
// Fault injection (GovernorFaults) makes every fallback edge reachable
// deterministically: fail the Nth node allocation, force-trip the deadline
// when a named stage begins, or make the computed table behave as if it
// always overflowed (every lookup misses).
//
// Degradation ladder support: after a trip, grant_fallback() re-arms a
// fresh budget slice so the next (cheaper) rung gets a real chance instead
// of inheriting an already-dead budget. The first trip's kind/stage/reason
// are preserved for reporting.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rmsyn {

/// Deterministic fault-injection hooks; all off by default.
struct GovernorFaults {
  /// Trip when the Nth DD-node allocation happens (1-based; 0 = off).
  uint64_t fail_at_allocation = 0;
  /// Force a deadline trip whenever this stage begins (empty = off).
  std::string trip_at_stage;
  /// Make every computed-table lookup miss, as if the table permanently
  /// overflowed (stresses the uncached recursion paths).
  bool overflow_computed_table = false;
};

struct ResourceLimits {
  double deadline_seconds = 0.0; ///< wall clock per budget slice; 0 = off
  std::size_t node_limit = 0;    ///< peak live DD nodes; 0 = off
  uint64_t step_limit = 0;       ///< cooperative polls per slice; 0 = off
  GovernorFaults faults;

  bool unlimited() const {
    return deadline_seconds <= 0.0 && node_limit == 0 && step_limit == 0 &&
           faults.fail_at_allocation == 0 && faults.trip_at_stage.empty() &&
           !faults.overflow_computed_table;
  }
};

enum class TripKind : uint8_t {
  None,
  Deadline,
  NodeLimit,
  StepLimit,
  Cancelled,
  FaultInjected,
};

const char* to_string(TripKind k);

class ResourceGovernor {
public:
  explicit ResourceGovernor(ResourceLimits limits = {});

  /// One cooperative step. Returns true while budget remains; once it
  /// returns false every subsequent call returns false until
  /// grant_fallback() re-arms the budget. The wall clock is consulted only
  /// every kCheckInterval polls; a trip from any other source (node limit,
  /// allocation fault, cancel) is visible on the very next poll.
  bool poll() {
    if (tripped_.load(std::memory_order_relaxed)) return false;
    ++steps_;
    if ((steps_ & (kCheckInterval - 1)) != 0) return true;
    return slow_poll();
  }

  /// True once any budget has tripped (does not consume a step).
  bool exhausted() const { return tripped_.load(std::memory_order_relaxed); }

  /// Thread-safe external cancellation; observed at the next poll.
  void cancel() { cancel_requested_.store(true, std::memory_order_relaxed); }

  /// Peak-live-node check; called by the DD kernel after each allocation.
  /// Returns false (and trips) when `live` exceeds the node limit.
  bool note_nodes(std::size_t live);

  /// Counts one DD-node allocation against the fail_at_allocation fault.
  /// Returns false (and trips) when the fault fires.
  bool count_allocation();

  /// True when the computed table should behave as permanently overflowed.
  bool cache_overflow_fault() const {
    return limits_.faults.overflow_computed_table;
  }

  // --- stage tracking ----------------------------------------------------
  /// Pushes a named stage (see StageScope). Checks the trip_at_stage fault.
  void begin_stage(const char* stage);
  void end_stage();
  /// Innermost active stage name ("" when outside any stage).
  std::string current_stage() const;

  /// RAII stage marker.
  class StageScope {
  public:
    StageScope(ResourceGovernor* g, const char* stage) : g_(g) {
      if (g_ != nullptr) g_->begin_stage(stage);
    }
    ~StageScope() {
      if (g_ != nullptr) g_->end_stage();
    }
    StageScope(const StageScope&) = delete;
    StageScope& operator=(const StageScope&) = delete;

  private:
    ResourceGovernor* g_;
  };

  // --- trip reporting -----------------------------------------------------
  /// Kind/stage/reason of the FIRST trip; preserved across grant_fallback().
  TripKind trip_kind() const { return first_trip_kind_; }
  const std::string& trip_stage() const { return first_trip_stage_; }
  const std::string& trip_reason() const { return first_trip_reason_; }

  // --- degradation ladder ------------------------------------------------
  /// Re-arms a fresh budget slice for the next ladder rung. Returns false
  /// once kMaxFallbacks slices have been consumed (the ladder must stop).
  /// A no-op (returning true) when nothing has tripped yet.
  bool grant_fallback();
  int fallbacks_granted() const { return fallbacks_; }

  uint64_t steps() const { return steps_; }
  const ResourceLimits& limits() const { return limits_; }

  static constexpr uint64_t kCheckInterval = 256; // must be a power of two
  static constexpr int kMaxFallbacks = 8;

private:
  bool slow_poll();
  void trip(TripKind kind, std::string reason);

  using Clock = std::chrono::steady_clock;

  ResourceLimits limits_;
  Clock::time_point slice_start_;
  uint64_t steps_ = 0;
  uint64_t slice_step_base_ = 0; ///< steps_ value when this slice started
  uint64_t allocations_ = 0;
  int fallbacks_ = 0;
  std::atomic<bool> tripped_{false};
  std::atomic<bool> cancel_requested_{false};
  std::vector<std::string> stage_stack_;
  TripKind first_trip_kind_ = TripKind::None;
  std::string first_trip_stage_;
  std::string first_trip_reason_;
};

// --- flow status -----------------------------------------------------------

enum class FlowOutcome : uint8_t { Ok = 0, Degraded = 1, Failed = 2 };

/// Outcome classification carried by SynthReport/BaselineReport/FlowRow.
/// Renders as "ok", "degraded:<stage>", or "failed:<reason>".
struct FlowStatus {
  FlowOutcome outcome = FlowOutcome::Ok;
  std::string stage;  ///< where the budget died (empty when ok)
  std::string reason; ///< trip/error detail (empty when ok)

  static FlowStatus ok() { return {}; }
  static FlowStatus degraded(std::string stage, std::string reason = "");
  static FlowStatus failed(std::string stage, std::string reason);

  bool is_ok() const { return outcome == FlowOutcome::Ok; }
  bool is_degraded() const { return outcome == FlowOutcome::Degraded; }
  bool is_failed() const { return outcome == FlowOutcome::Failed; }
  /// ok < degraded < failed; used for worst-status exit codes.
  int severity() const { return static_cast<int>(outcome); }

  std::string to_string() const;
};

/// The more severe of the two statuses.
const FlowStatus& worse(const FlowStatus& a, const FlowStatus& b);

} // namespace rmsyn
