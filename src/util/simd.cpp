#include "util/simd.hpp"

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define RMSYN_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define RMSYN_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace rmsyn::simd {

const char* to_string(Dispatch d) {
  switch (d) {
    case Dispatch::Scalar: return "scalar";
    case Dispatch::Avx2: return "avx2";
    case Dispatch::Neon: return "neon";
  }
  return "scalar";
}

// ---------------------------------------------------------------------------
// Scalar kernels. Auto-vectorization is disabled per-function so the
// forced-scalar dispatch genuinely processes one word per operation:
// the bench_sim ≥1.5x throughput gate compares against this baseline,
// and a compiler-vectorized "scalar" would make the gate meaningless.
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define RMSYN_NO_AUTOVEC _Pragma("clang loop vectorize(disable) interleave(disable)")
#define RMSYN_SCALAR_FN
#elif defined(__GNUC__)
#define RMSYN_NO_AUTOVEC
#define RMSYN_SCALAR_FN __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define RMSYN_NO_AUTOVEC
#define RMSYN_SCALAR_FN
#endif

namespace {

RMSYN_SCALAR_FN
void s_and(uint64_t* dst, const uint64_t* a, const uint64_t* b, std::size_t n,
           bool invert) {
  const uint64_t flip = invert ? ~0ull : 0ull;
  RMSYN_NO_AUTOVEC
  for (std::size_t i = 0; i < n; ++i) dst[i] = (a[i] & b[i]) ^ flip;
}

RMSYN_SCALAR_FN
void s_or(uint64_t* dst, const uint64_t* a, const uint64_t* b, std::size_t n,
          bool invert) {
  const uint64_t flip = invert ? ~0ull : 0ull;
  RMSYN_NO_AUTOVEC
  for (std::size_t i = 0; i < n; ++i) dst[i] = (a[i] | b[i]) ^ flip;
}

RMSYN_SCALAR_FN
void s_xor(uint64_t* dst, const uint64_t* a, const uint64_t* b, std::size_t n,
           bool invert) {
  const uint64_t flip = invert ? ~0ull : 0ull;
  RMSYN_NO_AUTOVEC
  for (std::size_t i = 0; i < n; ++i) dst[i] = (a[i] ^ b[i]) ^ flip;
}

RMSYN_SCALAR_FN
void s_and_acc(uint64_t* dst, const uint64_t* a, std::size_t n) {
  RMSYN_NO_AUTOVEC
  for (std::size_t i = 0; i < n; ++i) dst[i] &= a[i];
}

RMSYN_SCALAR_FN
void s_or_acc(uint64_t* dst, const uint64_t* a, std::size_t n) {
  RMSYN_NO_AUTOVEC
  for (std::size_t i = 0; i < n; ++i) dst[i] |= a[i];
}

RMSYN_SCALAR_FN
void s_xor_acc(uint64_t* dst, const uint64_t* a, std::size_t n) {
  RMSYN_NO_AUTOVEC
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= a[i];
}

RMSYN_SCALAR_FN
void s_not(uint64_t* dst, const uint64_t* a, std::size_t n) {
  RMSYN_NO_AUTOVEC
  for (std::size_t i = 0; i < n; ++i) dst[i] = ~a[i];
}

RMSYN_SCALAR_FN
void s_andnot(uint64_t* dst, const uint64_t* a, const uint64_t* b,
              std::size_t n) {
  RMSYN_NO_AUTOVEC
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] & ~b[i];
}

RMSYN_SCALAR_FN
void s_mux(uint64_t* dst, const uint64_t* m, const uint64_t* a,
           const uint64_t* b, std::size_t n) {
  RMSYN_NO_AUTOVEC
  for (std::size_t i = 0; i < n; ++i) dst[i] = (m[i] & a[i]) | (~m[i] & b[i]);
}

RMSYN_SCALAR_FN
bool s_any(const uint64_t* a, std::size_t n) {
  RMSYN_NO_AUTOVEC
  for (std::size_t i = 0; i < n; ++i)
    if (a[i]) return true;
  return false;
}

RMSYN_SCALAR_FN
bool s_all(const uint64_t* a, std::size_t n) {
  RMSYN_NO_AUTOVEC
  for (std::size_t i = 0; i < n; ++i)
    if (a[i] != ~0ull) return false;
  return true;
}

RMSYN_SCALAR_FN
bool s_any_diff(const uint64_t* a, const uint64_t* b, std::size_t n) {
  RMSYN_NO_AUTOVEC
  for (std::size_t i = 0; i < n; ++i)
    if (a[i] != b[i]) return true;
  return false;
}

RMSYN_SCALAR_FN
uint64_t s_popcount(const uint64_t* a, std::size_t n) {
  uint64_t total = 0;
  RMSYN_NO_AUTOVEC
  for (std::size_t i = 0; i < n; ++i)
    total += static_cast<uint64_t>(std::popcount(a[i]));
  return total;
}

constexpr Ops kScalarOps = {
    Dispatch::Scalar, s_and,    s_or,  s_xor, s_and_acc,  s_or_acc,
    s_xor_acc,        s_not,    s_andnot, s_mux, s_any,   s_all,
    s_any_diff,       s_popcount,
};

// ---------------------------------------------------------------------------
// AVX2 kernels: one 256-bit ymm op per logical block, word-op tail.
// Compiled with a per-function target attribute so the file builds
// without -mavx2 and the functions are only ever called after the
// runtime __builtin_cpu_supports check.
// ---------------------------------------------------------------------------

#if defined(RMSYN_SIMD_X86) && (defined(__GNUC__) || defined(__clang__))
#define RMSYN_HAVE_AVX2 1
#define RMSYN_AVX2_FN __attribute__((target("avx2")))

RMSYN_AVX2_FN
void a_and(uint64_t* dst, const uint64_t* a, const uint64_t* b, std::size_t n,
           bool invert) {
  std::size_t i = 0;
  const __m256i flip = invert ? _mm256_set1_epi64x(-1) : _mm256_setzero_si256();
  for (; i + kBlockWords <= n; i += kBlockWords) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(_mm256_and_si256(va, vb), flip));
  }
  const uint64_t f = invert ? ~0ull : 0ull;
  for (; i < n; ++i) dst[i] = (a[i] & b[i]) ^ f;
}

RMSYN_AVX2_FN
void a_or(uint64_t* dst, const uint64_t* a, const uint64_t* b, std::size_t n,
          bool invert) {
  std::size_t i = 0;
  const __m256i flip = invert ? _mm256_set1_epi64x(-1) : _mm256_setzero_si256();
  for (; i + kBlockWords <= n; i += kBlockWords) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(_mm256_or_si256(va, vb), flip));
  }
  const uint64_t f = invert ? ~0ull : 0ull;
  for (; i < n; ++i) dst[i] = (a[i] | b[i]) ^ f;
}

RMSYN_AVX2_FN
void a_xor(uint64_t* dst, const uint64_t* a, const uint64_t* b, std::size_t n,
           bool invert) {
  std::size_t i = 0;
  const __m256i flip = invert ? _mm256_set1_epi64x(-1) : _mm256_setzero_si256();
  for (; i + kBlockWords <= n; i += kBlockWords) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(_mm256_xor_si256(va, vb), flip));
  }
  const uint64_t f = invert ? ~0ull : 0ull;
  for (; i < n; ++i) dst[i] = (a[i] ^ b[i]) ^ f;
}

RMSYN_AVX2_FN
void a_and_acc(uint64_t* dst, const uint64_t* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + kBlockWords <= n; i += kBlockWords) {
    __m256i vd = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(vd, va));
  }
  for (; i < n; ++i) dst[i] &= a[i];
}

RMSYN_AVX2_FN
void a_or_acc(uint64_t* dst, const uint64_t* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + kBlockWords <= n; i += kBlockWords) {
    __m256i vd = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(vd, va));
  }
  for (; i < n; ++i) dst[i] |= a[i];
}

RMSYN_AVX2_FN
void a_xor_acc(uint64_t* dst, const uint64_t* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + kBlockWords <= n; i += kBlockWords) {
    __m256i vd = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(vd, va));
  }
  for (; i < n; ++i) dst[i] ^= a[i];
}

RMSYN_AVX2_FN
void a_not(uint64_t* dst, const uint64_t* a, std::size_t n) {
  std::size_t i = 0;
  const __m256i ones = _mm256_set1_epi64x(-1);
  for (; i + kBlockWords <= n; i += kBlockWords) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(va, ones));
  }
  for (; i < n; ++i) dst[i] = ~a[i];
}

RMSYN_AVX2_FN
void a_andnot(uint64_t* dst, const uint64_t* a, const uint64_t* b,
              std::size_t n) {
  std::size_t i = 0;
  for (; i + kBlockWords <= n; i += kBlockWords) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // _mm256_andnot_si256(x, y) = ~x & y
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(vb, va));
  }
  for (; i < n; ++i) dst[i] = a[i] & ~b[i];
}

RMSYN_AVX2_FN
void a_mux(uint64_t* dst, const uint64_t* m, const uint64_t* a,
           const uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + kBlockWords <= n; i += kBlockWords) {
    __m256i vm = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(m + i));
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_or_si256(_mm256_and_si256(vm, va), _mm256_andnot_si256(vm, vb)));
  }
  for (; i < n; ++i) dst[i] = (m[i] & a[i]) | (~m[i] & b[i]);
}

RMSYN_AVX2_FN
bool a_any(const uint64_t* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + kBlockWords <= n; i += kBlockWords) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    if (!_mm256_testz_si256(va, va)) return true;
  }
  for (; i < n; ++i)
    if (a[i]) return true;
  return false;
}

RMSYN_AVX2_FN
bool a_all(const uint64_t* a, std::size_t n) {
  std::size_t i = 0;
  const __m256i ones = _mm256_set1_epi64x(-1);
  for (; i + kBlockWords <= n; i += kBlockWords) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    // testc(a, ones): CF set iff (~a & ones) == 0, i.e. all bits of a set.
    if (!_mm256_testc_si256(va, ones)) return false;
  }
  for (; i < n; ++i)
    if (a[i] != ~0ull) return false;
  return true;
}

RMSYN_AVX2_FN
bool a_any_diff(const uint64_t* a, const uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + kBlockWords <= n; i += kBlockWords) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i vx = _mm256_xor_si256(va, vb);
    if (!_mm256_testz_si256(vx, vx)) return true;
  }
  for (; i < n; ++i)
    if (a[i] != b[i]) return true;
  return false;
}

RMSYN_AVX2_FN
uint64_t a_popcount(const uint64_t* a, std::size_t n) {
  // Hardware popcnt per word is the fastest portable-ish option short of
  // the Harley-Seal AVX2 lookup kernel; the arrays here are small (tens
  // to hundreds of words), so per-word popcnt with 4x unroll wins.
  uint64_t t0 = 0, t1 = 0, t2 = 0, t3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    t0 += static_cast<uint64_t>(_mm_popcnt_u64(a[i]));
    t1 += static_cast<uint64_t>(_mm_popcnt_u64(a[i + 1]));
    t2 += static_cast<uint64_t>(_mm_popcnt_u64(a[i + 2]));
    t3 += static_cast<uint64_t>(_mm_popcnt_u64(a[i + 3]));
  }
  uint64_t total = t0 + t1 + t2 + t3;
  for (; i < n; ++i) total += static_cast<uint64_t>(_mm_popcnt_u64(a[i]));
  return total;
}

constexpr Ops kAvx2Ops = {
    Dispatch::Avx2, a_and,    a_or,  a_xor, a_and_acc,  a_or_acc,
    a_xor_acc,      a_not,    a_andnot, a_mux, a_any,   a_all,
    a_any_diff,     a_popcount,
};
#endif // RMSYN_HAVE_AVX2

// ---------------------------------------------------------------------------
// NEON kernels: two 128-bit q-register ops per logical block. NEON is
// baseline on aarch64, so no runtime feature check is needed.
// ---------------------------------------------------------------------------

#if defined(RMSYN_SIMD_NEON)
#define RMSYN_HAVE_NEON 1

void n_and(uint64_t* dst, const uint64_t* a, const uint64_t* b, std::size_t n,
           bool invert) {
  std::size_t i = 0;
  const uint64x2_t flip = vdupq_n_u64(invert ? ~0ull : 0ull);
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, veorq_u64(vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)),
                                 flip));
  }
  const uint64_t f = invert ? ~0ull : 0ull;
  for (; i < n; ++i) dst[i] = (a[i] & b[i]) ^ f;
}

void n_or(uint64_t* dst, const uint64_t* a, const uint64_t* b, std::size_t n,
          bool invert) {
  std::size_t i = 0;
  const uint64x2_t flip = vdupq_n_u64(invert ? ~0ull : 0ull);
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, veorq_u64(vorrq_u64(vld1q_u64(a + i), vld1q_u64(b + i)),
                                 flip));
  }
  const uint64_t f = invert ? ~0ull : 0ull;
  for (; i < n; ++i) dst[i] = (a[i] | b[i]) ^ f;
}

void n_xor(uint64_t* dst, const uint64_t* a, const uint64_t* b, std::size_t n,
           bool invert) {
  std::size_t i = 0;
  const uint64x2_t flip = vdupq_n_u64(invert ? ~0ull : 0ull);
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, veorq_u64(veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i)),
                                 flip));
  }
  const uint64_t f = invert ? ~0ull : 0ull;
  for (; i < n; ++i) dst[i] = (a[i] ^ b[i]) ^ f;
}

void n_and_acc(uint64_t* dst, const uint64_t* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_u64(dst + i, vandq_u64(vld1q_u64(dst + i), vld1q_u64(a + i)));
  for (; i < n; ++i) dst[i] &= a[i];
}

void n_or_acc(uint64_t* dst, const uint64_t* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_u64(dst + i, vorrq_u64(vld1q_u64(dst + i), vld1q_u64(a + i)));
  for (; i < n; ++i) dst[i] |= a[i];
}

void n_xor_acc(uint64_t* dst, const uint64_t* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_u64(dst + i, veorq_u64(vld1q_u64(dst + i), vld1q_u64(a + i)));
  for (; i < n; ++i) dst[i] ^= a[i];
}

void n_not(uint64_t* dst, const uint64_t* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_u64(dst + i,
              veorq_u64(vld1q_u64(a + i), vdupq_n_u64(~0ull)));
  for (; i < n; ++i) dst[i] = ~a[i];
}

void n_andnot(uint64_t* dst, const uint64_t* a, const uint64_t* b,
              std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_u64(dst + i, vbicq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  for (; i < n; ++i) dst[i] = a[i] & ~b[i];
}

void n_mux(uint64_t* dst, const uint64_t* m, const uint64_t* a,
           const uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_u64(dst + i,
              vbslq_u64(vld1q_u64(m + i), vld1q_u64(a + i), vld1q_u64(b + i)));
  for (; i < n; ++i) dst[i] = (m[i] & a[i]) | (~m[i] & b[i]);
}

bool n_any(const uint64_t* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t v = vld1q_u64(a + i);
    if (vgetq_lane_u64(v, 0) | vgetq_lane_u64(v, 1)) return true;
  }
  for (; i < n; ++i)
    if (a[i]) return true;
  return false;
}

bool n_all(const uint64_t* a, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t v = vld1q_u64(a + i);
    if ((vgetq_lane_u64(v, 0) & vgetq_lane_u64(v, 1)) != ~0ull) return false;
  }
  for (; i < n; ++i)
    if (a[i] != ~0ull) return false;
  return true;
}

bool n_any_diff(const uint64_t* a, const uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t v = veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    if (vgetq_lane_u64(v, 0) | vgetq_lane_u64(v, 1)) return true;
  }
  for (; i < n; ++i)
    if (a[i] != b[i]) return true;
  return false;
}

uint64_t n_popcount(const uint64_t* a, std::size_t n) {
  std::size_t i = 0;
  uint64_t total = 0;
  for (; i + 2 <= n; i += 2) {
    uint8x16_t bytes = vcntq_u8(vreinterpretq_u8_u64(vld1q_u64(a + i)));
    total += vaddvq_u8(bytes);
  }
  for (; i < n; ++i) total += static_cast<uint64_t>(std::popcount(a[i]));
  return total;
}

constexpr Ops kNeonOps = {
    Dispatch::Neon, n_and,    n_or,  n_xor, n_and_acc,  n_or_acc,
    n_xor_acc,      n_not,    n_andnot, n_mux, n_any,   n_all,
    n_any_diff,     n_popcount,
};
#endif // RMSYN_HAVE_NEON

// ---------------------------------------------------------------------------
// Dispatch selection.
// ---------------------------------------------------------------------------

bool host_supports(Dispatch d) {
  switch (d) {
    case Dispatch::Scalar:
      return true;
    case Dispatch::Avx2:
#if defined(RMSYN_HAVE_AVX2)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Dispatch::Neon:
#if defined(RMSYN_HAVE_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

const Ops* table_for(Dispatch d) {
  switch (d) {
    case Dispatch::Scalar:
      return &kScalarOps;
    case Dispatch::Avx2:
#if defined(RMSYN_HAVE_AVX2)
      return &kAvx2Ops;
#else
      return nullptr;
#endif
    case Dispatch::Neon:
#if defined(RMSYN_HAVE_NEON)
      return &kNeonOps;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

Dispatch best_available() {
  if (host_supports(Dispatch::Avx2)) return Dispatch::Avx2;
  if (host_supports(Dispatch::Neon)) return Dispatch::Neon;
  return Dispatch::Scalar;
}

bool parse_dispatch(const char* s, Dispatch* out) {
  if (std::strcmp(s, "scalar") == 0) { *out = Dispatch::Scalar; return true; }
  if (std::strcmp(s, "avx2") == 0) { *out = Dispatch::Avx2; return true; }
  if (std::strcmp(s, "neon") == 0) { *out = Dispatch::Neon; return true; }
  return false;
}

const Ops* select_initial() {
  Dispatch d = best_available();
  if (const char* env = std::getenv("RMSYN_SIMD")) {
    Dispatch want;
    if (!parse_dispatch(env, &want)) {
      std::fprintf(stderr,
                   "rmsyn: RMSYN_SIMD=%s is not a known target "
                   "(scalar|avx2|neon); using %s\n",
                   env, to_string(d));
    } else if (!host_supports(want)) {
      std::fprintf(stderr,
                   "rmsyn: RMSYN_SIMD=%s is not available on this host; "
                   "using %s\n",
                   env, to_string(d));
    } else {
      d = want;
    }
  }
  return table_for(d);
}

std::atomic<const Ops*> g_ops{nullptr};

const Ops* active() {
  const Ops* t = g_ops.load(std::memory_order_acquire);
  if (!t) {
    // Benign race: every thread computes the same answer from the same
    // env/CPUID inputs, so last-writer-wins is fine.
    t = select_initial();
    g_ops.store(t, std::memory_order_release);
  }
  return t;
}

} // namespace

const Ops& ops() { return *active(); }

const char* dispatch_name() { return to_string(active()->dispatch); }

std::vector<std::string> available_dispatches() {
  std::vector<std::string> out;
  if (host_supports(Dispatch::Avx2)) out.emplace_back("avx2");
  if (host_supports(Dispatch::Neon)) out.emplace_back("neon");
  out.emplace_back("scalar");
  return out;
}

bool force_dispatch(const std::string& name) {
  Dispatch want;
  if (!parse_dispatch(name.c_str(), &want)) return false;
  if (!host_supports(want)) return false;
  g_ops.store(table_for(want), std::memory_order_release);
  return true;
}

} // namespace rmsyn::simd
