// Wall-clock stopwatch for the run-time columns of Table 2.
#pragma once

#include <chrono>

namespace rmsyn {

class Stopwatch {
public:
  Stopwatch() : start_(clock::now()) {}
  void restart() { start_ = clock::now(); }
  /// Elapsed seconds since construction or last restart().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

} // namespace rmsyn
