// Structured error taxonomy for the whole flow (DESIGN.md §12).
//
// Every failure that can surface from parse/synthesize/map/sim/batch is
// classified along one axis that the batch runner, the retry machinery and
// the CLI exit codes all agree on:
//
//   * transient-retryable — a re-run can succeed: the budget tripped
//     (deadline/node/step), the batch was cancelled, a deterministic fault
//     injection fired, or a journal/report write failed. `batch --retries N`
//     re-runs these rows with escalating budget slices.
//   * deterministic-fatal — a re-run with the same input must fail again:
//     malformed PLA/BLIF/AIGER input, a network invariant violation, an
//     internal verification mismatch. Retrying is never attempted.
//
// The code travels on FlowStatus (util/governor.hpp) next to the
// human-readable stage/reason strings, so machine consumers (the journal,
// the retry loop, CI scripts reading exit codes) never have to parse
// English.
//
// Stable process exit codes (tools/rmsyn_cli.cpp, asserted by CI):
//   0  ok
//   1  usage / unclassified CLI error
//   2  budget-degraded (every row completed, at least one degraded)
//   3  transient failure (a failed row whose code is transient-retryable)
//   4  deterministic-fatal input (parse error in a file or manifest)
//   5  invariant violation or internal verification mismatch
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace rmsyn {

enum class ErrorCode : uint8_t {
  None = 0,
  // --- transient-retryable --------------------------------------------------
  BudgetDeadline,  ///< wall-clock budget slice tripped
  BudgetNodes,     ///< live-node limit / shared allocation pool / OOM watermark
  BudgetSteps,     ///< deterministic step budget tripped
  Cancelled,       ///< external or batch-wide cancellation
  InjectedFault,   ///< a deterministic fault-injection point fired
  IoTransient,     ///< journal/report/artifact write failure (fsync, disk)
  // --- deterministic-fatal --------------------------------------------------
  ParseError,         ///< malformed PLA/BLIF/AIGER/genlib/manifest input
  InvariantViolation, ///< Network::check_invariants() found corruption
  VerifyMismatch,     ///< internal equivalence check failed
  Internal,           ///< unclassified exception escaping a flow
};

enum class ErrorClass : uint8_t {
  None = 0,
  TransientRetryable,
  DeterministicFatal,
};

const char* to_string(ErrorCode c);
const char* to_string(ErrorClass c);

ErrorClass error_class(ErrorCode c);

/// True when `batch --retries` may re-run a row that failed with this code.
inline bool is_retryable(ErrorCode c) {
  return error_class(c) == ErrorClass::TransientRetryable;
}

/// Inverse of to_string(ErrorCode); ErrorCode::Internal for unknown names
/// (forward compatibility when replaying a journal written by a newer build).
ErrorCode error_code_from_string(const std::string& name);

/// Stable CLI exit codes (see the table in the header comment). Keep in
/// sync with README "Exit codes" and the CI assertions.
struct ExitCode {
  enum : int {
    Ok = 0,
    Usage = 1,
    BudgetDegraded = 2,
    TransientFailure = 3,
    FatalInput = 4,
    InvariantOrVerify = 5,
  };
};

/// Exit code for a *failed* terminal error of the given code (used by the
/// CLI catch block; per-row exit codes go through status_exit_code in the
/// CLI, which also handles ok/degraded).
int exit_code_for_error(ErrorCode c);

/// Exception carrying a taxonomy code across module boundaries. Parsers
/// throw it for malformed input, the invariant checker for corruption, the
/// fault plan for injected failures.
class RmsynError : public std::runtime_error {
public:
  RmsynError(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  ErrorCode code() const { return code_; }

private:
  ErrorCode code_;
};

/// Maps a caught exception to a taxonomy code: RmsynError's own code,
/// std::bad_alloc → BudgetNodes (OOM watermark, transient-retryable),
/// std::logic_error → VerifyMismatch (the verifier's historical throw
/// type), anything else → Internal.
ErrorCode classify_exception(const std::exception& e);

} // namespace rmsyn
