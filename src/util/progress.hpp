// Global progress board: the low-frequency rendezvous between the running
// flow and the obs heartbeat (src/obs/heartbeat.hpp).
//
// Producers are the layers that already know where the run is — the batch
// runner (rows done/total), obs::ScopedStage (current stage + circuit), and
// ResourceGovernor::note_nodes (live DD nodes) — and they publish only when
// a heartbeat has switched the board on, so the disabled cost on the DD
// allocation path is a single relaxed atomic load. The consumer is the
// heartbeat thread, which samples the board once per period; everything here
// is advisory and approximate by design (a stale stage name for one period
// is fine, a lock on the allocation path is not).
//
// Lives in util (not obs) so the governor can publish live-node counts
// without util depending on the obs library.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

namespace rmsyn {

class ProgressBoard {
public:
  static ProgressBoard& instance() {
    static ProgressBoard board;
    return board;
  }
  /// Hot-path guard: publishers skip every store while no heartbeat runs.
  static bool active() {
    return instance().enabled_.load(std::memory_order_relaxed);
  }

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Re-arms the board for a new run of `total_rows` rows.
  void reset(uint64_t total_rows) {
    rows_total.store(total_rows, std::memory_order_relaxed);
    rows_done.store(0, std::memory_order_relaxed);
    live_nodes.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(mu_);
    stage_.clear();
    circuit_.clear();
  }

  std::atomic<uint64_t> rows_done{0};
  std::atomic<uint64_t> rows_total{0};
  /// Latest live-node count any governed DD manager reported.
  std::atomic<std::size_t> live_nodes{0};

  void note_live_nodes(std::size_t n) {
    live_nodes.store(n, std::memory_order_relaxed);
  }

  void set_stage(const char* stage) {
    std::lock_guard<std::mutex> lk(mu_);
    stage_ = stage;
  }
  void set_circuit(const std::string& circuit) {
    std::lock_guard<std::mutex> lk(mu_);
    circuit_ = circuit;
  }
  std::string stage() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stage_;
  }
  std::string circuit() const {
    std::lock_guard<std::mutex> lk(mu_);
    return circuit_;
  }

private:
  ProgressBoard() = default;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::string stage_;
  std::string circuit_;
};

} // namespace rmsyn
