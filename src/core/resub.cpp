#include "core/resub.hpp"

#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "bdd/bdd.hpp"
#include "util/errors.hpp"
#include "equiv/equiv.hpp"
#include "network/simulate.hpp"
#include "network/transform.hpp"

namespace rmsyn {

namespace {

/// True when some pair of live nodes shares a simulation signature (or a
/// complemented one, when complement merging is on) — i.e. the exact sweep
/// MIGHT merge something. No collision ⇒ all node functions are pairwise
/// distinct ⇒ the sweep is the identity rebuild.
bool signatures_collide(const Network& hashed, const ResubOptions& opt) {
  SimState sim(hashed,
               random_patterns(hashed.pi_count(), opt.prefilter_patterns,
                               opt.prefilter_seed));
  bool collision = false;
  std::unordered_set<BitVec, BitVecHash> seen;
  // Mirrors the rep-map seeding of the exact sweep: constants, then PIs.
  seen.insert(sim.value(Network::kConst0));
  seen.insert(sim.value(Network::kConst1));
  for (const NodeId pi : hashed.pis()) seen.insert(sim.value(pi));
  BitVec flipped;
  for (const NodeId n : hashed.topo_order()) {
    const GateType t = hashed.type(n);
    if (t == GateType::Pi || t == GateType::Const0 || t == GateType::Const1)
      continue;
    const BitVec& v = sim.value(n);
    if (seen.count(v) != 0) {
      collision = true;
      break;
    }
    if (opt.merge_complements) {
      flipped = v;
      flipped.flip_all();
      if (seen.count(flipped) != 0) {
        collision = true;
        break;
      }
    }
    seen.insert(v);
  }
  if (opt.sim_stats != nullptr) opt.sim_stats->accumulate(sim.take_stats());
  return collision;
}

/// The exact sweep's rebuild with an empty merge set: live cone copied in
/// topo order, then strashed. Byte-identical to what the BDD path emits
/// when no rep lookup ever hits.
Network rebuild_unmerged(const Network& hashed) {
  Network out;
  std::vector<NodeId> map(hashed.node_count(), Network::kConst0);
  map[Network::kConst1] = Network::kConst1;
  for (std::size_t i = 0; i < hashed.pi_count(); ++i)
    map[hashed.pis()[i]] = out.add_pi(hashed.name(hashed.pis()[i]));
  const auto live = hashed.live_mask();
  for (const NodeId n : hashed.topo_order()) {
    if (!live[n]) continue;
    const GateType t = hashed.type(n);
    if (t == GateType::Pi || t == GateType::Const0 || t == GateType::Const1)
      continue;
    std::vector<NodeId> fi;
    fi.reserve(hashed.fanins(n).size());
    for (const NodeId g : hashed.fanins(n)) fi.push_back(map[g]);
    map[n] = out.add_gate(t, std::move(fi));
  }
  for (std::size_t i = 0; i < hashed.po_count(); ++i)
    out.add_po(map[hashed.po(i)], hashed.po_name(i));
  return strash(out);
}

} // namespace

Network resub_merge(const Network& net, const ResubOptions& opt) {
  Network hashed = strash(net);

  // Signature screen before any BDD is built. Skipped under an exhausted
  // governor so a budget-starved call keeps its pre-screen behavior.
  if (opt.sim_prefilter && hashed.pi_count() > 0 &&
      opt.prefilter_patterns > 0 &&
      (opt.governor == nullptr || !opt.governor->exhausted()) &&
      !signatures_collide(hashed, opt))
    return rebuild_unmerged(hashed);

  try {
    BddManager mgr(static_cast<int>(hashed.pi_count()));
    mgr.set_governor(opt.governor);
    const std::vector<BddRef> f = node_bdds(mgr, hashed);
    if (mgr.node_count() > opt.bdd_node_limit) return hashed;
    // A governed sweep that ran out of budget leaves invalid refs; merging
    // on them would conflate distinct functions, so keep the strashed net.
    for (const BddRef r : f)
      if (BddManager::is_invalid(r)) return hashed;

    // Representative per function; complements map through an inverter.
    std::unordered_map<BddRef, NodeId> rep;
    Network out;
    std::vector<NodeId> map(hashed.node_count(), Network::kConst0);
    map[Network::kConst1] = Network::kConst1;
    rep[mgr.bdd_false()] = Network::kConst0;
    rep[mgr.bdd_true()] = Network::kConst1;
    for (std::size_t i = 0; i < hashed.pi_count(); ++i) {
      const NodeId pi = out.add_pi(hashed.name(hashed.pis()[i]));
      map[hashed.pis()[i]] = pi;
      rep.emplace(f[hashed.pis()[i]], pi);
    }
    const auto live = hashed.live_mask();
    for (const NodeId n : hashed.topo_order()) {
      if (!live[n]) continue;
      const GateType t = hashed.type(n);
      if (t == GateType::Pi || t == GateType::Const0 || t == GateType::Const1)
        continue;
      if (const auto it = rep.find(f[n]); it != rep.end()) {
        map[n] = it->second;
        continue;
      }
      if (opt.merge_complements) {
        const BddRef nf = mgr.bdd_not(f[n]);
        if (const auto it = rep.find(nf); it != rep.end()) {
          const NodeId inv = out.add_not(it->second);
          map[n] = inv;
          rep.emplace(f[n], inv);
          continue;
        }
      }
      std::vector<NodeId> fi;
      fi.reserve(hashed.fanins(n).size());
      for (const NodeId g : hashed.fanins(n)) fi.push_back(map[g]);
      const NodeId nn = out.add_gate(t, std::move(fi));
      map[n] = nn;
      rep.emplace(f[n], nn);
    }
    for (std::size_t i = 0; i < hashed.po_count(); ++i)
      out.add_po(map[hashed.po(i)], hashed.po_name(i));
    return strash(out);
  } catch (const RmsynError&) {
    throw; // injected faults / invariant violations must not be swallowed
  } catch (const std::runtime_error&) {
    // BDD node limit inside the manager: fall back to structural hashing.
    return hashed;
  }
}

} // namespace rmsyn
