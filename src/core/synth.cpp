#include "core/synth.hpp"

#include <stdexcept>

#include "core/factor_cubes.hpp"
#include "core/factor_ofdd.hpp"
#include "core/resub.hpp"
#include "equiv/equiv.hpp"
#include "network/transform.hpp"
#include "util/stopwatch.hpp"

namespace rmsyn {

namespace {

struct Candidate {
  Network net;
  std::vector<FprmForm> forms;
  std::vector<std::size_t> cube_counts;
  std::size_t via_cubes = 0;
  std::size_t via_ofdd = 0;
  std::size_t cost = 0; // gates2 after resub
};

std::vector<NodeId> add_spec_pis(Network& out, const Network& spec) {
  std::vector<NodeId> pi_nodes;
  pi_nodes.reserve(spec.pi_count());
  for (std::size_t i = 0; i < spec.pi_count(); ++i)
    pi_nodes.push_back(out.add_pi(spec.name(spec.pis()[i])));
  return pi_nodes;
}

/// Method 1 (cube factoring), per-output polarity search. Outputs whose
/// cube list exceeds the cap fall back to a per-output OFDD construction.
Candidate build_cubes_candidate(const Network& spec, BddManager& mgr,
                                const std::vector<BddRef>& spec_fn,
                                const SynthOptions& opt) {
  Candidate cand;
  const std::vector<NodeId> pi_nodes = add_spec_pis(cand.net, spec);
  for (std::size_t j = 0; j < spec.po_count(); ++j) {
    const BddRef f = spec_fn[j];
    if (f == mgr.bdd_false() || f == mgr.bdd_true()) {
      cand.net.add_po(cand.net.constant(f == mgr.bdd_true()), spec.po_name(j));
      cand.forms.emplace_back();
      cand.cube_counts.push_back(f == mgr.bdd_true() ? 1 : 0);
      continue;
    }
    const BitVec polarity = best_polarity(mgr, f, opt.polarity);
    const Ofdd ofdd = build_ofdd(mgr, f, polarity);
    const FprmForm form = extract_fprm(
        mgr, ofdd, static_cast<int>(spec.pi_count()), opt.cube_limit);
    cand.cube_counts.push_back(static_cast<std::size_t>(
        fprm_cube_count(mgr, ofdd.root, ofdd.support)));
    NodeId root;
    if (form.truncated) {
      root = factor_ofdd(cand.net, pi_nodes, mgr, ofdd);
      ++cand.via_ofdd;
    } else {
      root = factor_cubes(cand.net, pi_nodes, form);
      ++cand.via_cubes;
    }
    cand.net.add_po(root, spec.po_name(j));
    cand.forms.push_back(form);
    // This output's polarity-search spectra are dead; the spec functions
    // stay pinned by output_bdds.
    mgr.gc();
  }
  return cand;
}

/// Method 2 (OFDD construction) with one global polarity vector and a
/// construction memo shared across outputs, so common spectrum subgraphs —
/// carry chains in particular — become shared subnetworks.
Candidate build_ofdd_candidate(const Network& spec, BddManager& mgr,
                               const std::vector<BddRef>& spec_fn,
                               const SynthOptions& opt) {
  Candidate cand;
  const std::vector<NodeId> pi_nodes = add_spec_pis(cand.net, spec);
  const BitVec polarity = best_polarity_multi(mgr, spec_fn, opt.polarity);

  std::vector<int> all_vars;
  all_vars.reserve(spec.pi_count());
  for (int v = 0; v < static_cast<int>(spec.pi_count()); ++v)
    all_vars.push_back(v);

  SharedOfddBuilder builder(cand.net, pi_nodes, mgr, polarity);
  for (std::size_t j = 0; j < spec.po_count(); ++j) {
    const BddRef f = spec_fn[j];
    if (f == mgr.bdd_false() || f == mgr.bdd_true()) {
      cand.net.add_po(cand.net.constant(f == mgr.bdd_true()), spec.po_name(j));
      cand.forms.emplace_back();
      cand.cube_counts.push_back(f == mgr.bdd_true() ? 1 : 0);
      continue;
    }
    const BddRef full_spec = rm_spectrum(mgr, f, all_vars, polarity);
    cand.net.add_po(builder.build(full_spec), spec.po_name(j));
    ++cand.via_ofdd;

    // Support-restricted form for pattern generation / reporting.
    const Ofdd ofdd = build_ofdd(mgr, f, polarity);
    cand.forms.push_back(extract_fprm(
        mgr, ofdd, static_cast<int>(spec.pi_count()), opt.cube_limit));
    cand.cube_counts.push_back(static_cast<std::size_t>(
        fprm_cube_count(mgr, ofdd.root, ofdd.support)));
  }
  return cand;
}

} // namespace

Network synthesize(const Network& spec, const SynthOptions& opt,
                   SynthReport* report) {
  Stopwatch sw;
  SynthReport rep;

  // Candidate PI orders: the spec's natural order plus the reach heuristic.
  std::vector<std::vector<std::size_t>> orders;
  {
    std::vector<std::size_t> identity(spec.pi_count());
    for (std::size_t i = 0; i < identity.size(); ++i) identity[i] = i;
    orders.push_back(identity);
    if (opt.try_reach_order) {
      if (auto h = spectrum_friendly_pi_order(spec); h != identity)
        orders.push_back(std::move(h));
    }
  }

  struct Best {
    Candidate cand;
    std::vector<std::size_t> perm;
    bool valid = false;
  } best;

  for (const auto& perm : orders) {
    const bool identity = perm == orders[0];
    const Network spec_p = identity ? spec : permute_pis(spec, perm);
    BddManager mgr(static_cast<int>(spec_p.pi_count()));
    const std::vector<BddRef> spec_fn = output_bdds(mgr, spec_p);

    // Section 3: build the factored candidates and keep the cheapest
    // (the paper: "the results are comparable but the second method has
    // better results on a few more test cases").
    std::vector<Candidate> cands;
    if (opt.method == FactorMethod::Cubes || opt.method == FactorMethod::Best)
      cands.push_back(build_cubes_candidate(spec_p, mgr, spec_fn, opt));
    if (opt.method == FactorMethod::Ofdd || opt.method == FactorMethod::Best)
      cands.push_back(build_ofdd_candidate(spec_p, mgr, spec_fn, opt));

    for (auto& c : cands) {
      c.net = opt.run_resub ? resub_merge(c.net) : strash(c.net);
      c.cost = network_stats(c.net).gates2;
      if (!best.valid || c.cost < best.cand.cost) {
        best.cand = std::move(c);
        best.perm = perm;
        best.valid = true;
      }
    }
    rep.bdd.accumulate(mgr.stats());
  }

  Candidate& chosen = best.cand;
  Network out = std::move(chosen.net);
  rep.fprm_cube_counts = std::move(chosen.cube_counts);
  rep.outputs_via_cubes = chosen.via_cubes;
  rep.outputs_via_ofdd = chosen.via_ofdd;

  // Section 4: redundancy removal (still in the permuted variable space —
  // the FPRM forms refer to permuted PI indices).
  if (opt.run_redundancy_removal) {
    out = remove_xor_redundancy(out, chosen.forms, opt.redundancy,
                                &rep.redundancy);
  }
  out = strash(out);

  // Restore the spec's PI order.
  const bool permuted = best.perm != orders[0];
  if (permuted) {
    std::vector<std::size_t> inverse(best.perm.size());
    for (std::size_t k = 0; k < best.perm.size(); ++k)
      inverse[best.perm[k]] = k;
    out = permute_pis(out, inverse);
    // Remap the reported forms back to original variable ids, keeping the
    // cube masks aligned with the (re-sorted) support positions.
    for (auto& form : chosen.forms) {
      if (form.polarity.size() == 0) continue; // constant output: no form
      std::vector<int> new_ids(form.support.size());
      for (std::size_t i = 0; i < form.support.size(); ++i)
        new_ids[i] = static_cast<int>(
            best.perm[static_cast<std::size_t>(form.support[i])]);
      std::vector<std::size_t> by_id(form.support.size());
      for (std::size_t i = 0; i < by_id.size(); ++i) by_id[i] = i;
      std::sort(by_id.begin(), by_id.end(), [&](std::size_t a, std::size_t b) {
        return new_ids[a] < new_ids[b];
      });
      std::vector<int> sorted_ids(form.support.size());
      std::vector<std::size_t> new_pos(form.support.size());
      for (std::size_t r = 0; r < by_id.size(); ++r) {
        sorted_ids[r] = new_ids[by_id[r]];
        new_pos[by_id[r]] = r;
      }
      for (auto& cube : form.cubes) {
        BitVec remapped(cube.size());
        for (std::size_t i = cube.first_set(); i != BitVec::npos;
             i = cube.next_set(i + 1))
          remapped.set(new_pos[i]);
        cube = remapped;
      }
      form.support = std::move(sorted_ids);
      BitVec pol(form.polarity.size());
      for (std::size_t k = 0; k < best.perm.size(); ++k)
        pol.set(best.perm[k], form.polarity.get(k));
      form.polarity = pol;
    }
  }
  rep.forms = std::move(chosen.forms);

  if (opt.verify) {
    const auto check = check_equivalence(spec, out);
    if (!check.equivalent)
      throw std::logic_error("synthesize: result not equivalent to spec: " +
                             check.reason);
  }

  rep.seconds = sw.seconds();
  rep.stats = network_stats(out);
  if (report != nullptr) *report = rep;
  return out;
}

} // namespace rmsyn
