#include "core/synth.hpp"

#include <limits>
#include <optional>
#include <stdexcept>

#include "util/errors.hpp"

#include "core/factor_cubes.hpp"
#include "core/factor_ofdd.hpp"
#include "core/resub.hpp"
#include "equiv/equiv.hpp"
#include "network/transform.hpp"
#include "util/stopwatch.hpp"

namespace rmsyn {

namespace {

struct Candidate {
  Network net;
  std::vector<FprmForm> forms;
  std::vector<std::size_t> cube_counts;
  std::size_t via_cubes = 0;
  std::size_t via_ofdd = 0;
  std::size_t cost = 0; // gates2 after resub
};

std::vector<NodeId> add_spec_pis(Network& out, const Network& spec) {
  std::vector<NodeId> pi_nodes;
  pi_nodes.reserve(spec.pi_count());
  for (std::size_t i = 0; i < spec.pi_count(); ++i)
    pi_nodes.push_back(out.add_pi(spec.name(spec.pis()[i])));
  return pi_nodes;
}

/// Saturating double→size_t for cube counts: sat_count can legitimately
/// exceed 2^64 on wide supports, and casting a non-finite double is UB.
std::size_t saturating_count(double d) {
  constexpr auto kMax = std::numeric_limits<std::size_t>::max();
  if (!(d >= 0.0)) return kMax; // negative or NaN: treat as unknown/huge
  if (d >= static_cast<double>(kMax)) return kMax;
  return static_cast<std::size_t>(d);
}

/// Method 1 (cube factoring), per-output polarity search. Outputs whose
/// cube list exceeds the cap fall back to a per-output OFDD construction.
/// `fixed_polarity` skips the search (degradation-ladder rungs). Returns
/// nullopt when the governor tripped mid-build: a half-built candidate
/// must never compete on cost.
std::optional<Candidate> build_cubes_candidate(const Network& spec,
                                               BddManager& mgr,
                                               const std::vector<BddRef>& spec_fn,
                                               const SynthOptions& opt,
                                               const BitVec* fixed_polarity,
                                               StageBreakdown* sb) {
  ResourceGovernor* gov = mgr.governor();
  Candidate cand;
  const std::vector<NodeId> pi_nodes = add_spec_pis(cand.net, spec);
  for (std::size_t j = 0; j < spec.po_count(); ++j) {
    const BddRef f = spec_fn[j];
    if (BddManager::is_invalid(f)) return std::nullopt;
    if (f == mgr.bdd_false() || f == mgr.bdd_true()) {
      cand.net.add_po(cand.net.constant(f == mgr.bdd_true()), spec.po_name(j));
      cand.forms.emplace_back();
      cand.cube_counts.push_back(f == mgr.bdd_true() ? 1 : 0);
      continue;
    }
    BitVec polarity;
    {
      obs::ScopedStage stage(gov, sb, "polarity-search");
      polarity = fixed_polarity != nullptr ? *fixed_polarity
                                           : best_polarity(mgr, f, opt.polarity);
    }
    Ofdd ofdd;
    {
      obs::ScopedStage stage(gov, sb, "ofdd-build");
      ofdd = build_ofdd(mgr, f, polarity);
    }
    if (BddManager::is_invalid(ofdd.root)) return std::nullopt;
    FprmForm form;
    {
      obs::ScopedStage stage(gov, sb, "fprm-extract");
      form = extract_fprm(mgr, ofdd, static_cast<int>(spec.pi_count()),
                          opt.cube_limit);
      cand.cube_counts.push_back(
          saturating_count(fprm_cube_count(mgr, ofdd.root, ofdd.support)));
    }
    NodeId root;
    {
      // A governed enumeration cut short also sets `truncated`, which
      // routes the output through the (exact, structural) OFDD factoring —
      // the result stays correct, only the cube list in the report is a
      // prefix.
      obs::ScopedStage stage(gov, sb, "factor");
      if (form.truncated) {
        root = factor_ofdd(cand.net, pi_nodes, mgr, ofdd);
        ++cand.via_ofdd;
      } else {
        root = factor_cubes(cand.net, pi_nodes, form);
        ++cand.via_cubes;
      }
    }
    cand.net.add_po(root, spec.po_name(j));
    cand.forms.push_back(std::move(form));
    // This output's polarity-search spectra are dead; the spec functions
    // stay pinned by output_bdds.
    mgr.gc();
  }
  return cand;
}

/// Method 2 (OFDD construction) with one global polarity vector and a
/// construction memo shared across outputs, so common spectrum subgraphs —
/// carry chains in particular — become shared subnetworks.
std::optional<Candidate> build_ofdd_candidate(const Network& spec,
                                              BddManager& mgr,
                                              const std::vector<BddRef>& spec_fn,
                                              const SynthOptions& opt,
                                              const BitVec* fixed_polarity,
                                              StageBreakdown* sb) {
  ResourceGovernor* gov = mgr.governor();
  Candidate cand;
  const std::vector<NodeId> pi_nodes = add_spec_pis(cand.net, spec);
  BitVec polarity;
  {
    obs::ScopedStage stage(gov, sb, "polarity-search");
    polarity = fixed_polarity != nullptr
                   ? *fixed_polarity
                   : best_polarity_multi(mgr, spec_fn, opt.polarity);
  }

  std::vector<int> all_vars;
  all_vars.reserve(spec.pi_count());
  for (int v = 0; v < static_cast<int>(spec.pi_count()); ++v)
    all_vars.push_back(v);

  SharedOfddBuilder builder(cand.net, pi_nodes, mgr, polarity);
  for (std::size_t j = 0; j < spec.po_count(); ++j) {
    const BddRef f = spec_fn[j];
    if (BddManager::is_invalid(f)) return std::nullopt;
    if (f == mgr.bdd_false() || f == mgr.bdd_true()) {
      cand.net.add_po(cand.net.constant(f == mgr.bdd_true()), spec.po_name(j));
      cand.forms.emplace_back();
      cand.cube_counts.push_back(f == mgr.bdd_true() ? 1 : 0);
      continue;
    }
    BddRef full_spec;
    {
      obs::ScopedStage stage(gov, sb, "ofdd-build");
      full_spec = rm_spectrum(mgr, f, all_vars, polarity);
    }
    if (BddManager::is_invalid(full_spec)) return std::nullopt;
    {
      obs::ScopedStage stage(gov, sb, "factor");
      cand.net.add_po(builder.build(full_spec), spec.po_name(j));
    }
    ++cand.via_ofdd;

    // Support-restricted form for pattern generation / reporting. Failure
    // here only degrades the report (redundancy removal falls back to
    // random patterns for an empty form), so it does not kill the
    // candidate.
    obs::ScopedStage stage(gov, sb, "fprm-extract");
    const Ofdd ofdd = build_ofdd(mgr, f, polarity);
    if (BddManager::is_invalid(ofdd.root)) {
      cand.forms.emplace_back();
      cand.cube_counts.push_back(std::numeric_limits<std::size_t>::max());
      return std::nullopt; // the *next* rm_spectrum would fail anyway
    }
    cand.forms.push_back(extract_fprm(
        mgr, ofdd, static_cast<int>(spec.pi_count()), opt.cube_limit));
    cand.cube_counts.push_back(
        saturating_count(fprm_cube_count(mgr, ofdd.root, ofdd.support)));
  }
  return cand;
}

/// Degradation-ladder rungs, cheapest-last. Each rung is attempted under a
/// fresh budget slice (ResourceGovernor::grant_fallback); the first rung
/// that completes a candidate wins.
enum class Rung {
  Full,          ///< the paper's flow: polarity search, both methods, both orders
  FixedPolarity, ///< skip the search: PPRM (all-positive), natural order only
  OfddOnly,      ///< Method 2 only, PPRM, natural order, no resub
};

} // namespace

Network synthesize(const Network& spec, const SynthOptions& opt,
                   SynthReport* report) {
  Stopwatch sw;
  SynthReport rep;
  ResourceGovernor* gov = opt.governor;
  StageBreakdown* const sb = &rep.stages;

  // Candidate PI orders: the spec's natural order plus the reach heuristic.
  std::vector<std::vector<std::size_t>> orders;
  {
    std::vector<std::size_t> identity(spec.pi_count());
    for (std::size_t i = 0; i < identity.size(); ++i) identity[i] = i;
    orders.push_back(identity);
    if (opt.try_reach_order) {
      if (auto h = spectrum_friendly_pi_order(spec); h != identity)
        orders.push_back(std::move(h));
    }
  }

  struct Best {
    Candidate cand;
    std::vector<std::size_t> perm;
    bool valid = false;
  } best;

  // Runs one ladder rung; fills `best` with the cheapest completed
  // candidate (if any survives the budget).
  const auto run_rung = [&](Rung rung) {
    BitVec pprm(spec.pi_count());
    pprm.set_all(); // all-positive polarity
    const BitVec* fixed = rung == Rung::Full ? nullptr : &pprm;
    const std::size_t num_orders = rung == Rung::Full ? orders.size() : 1;

    for (std::size_t oi = 0; oi < num_orders; ++oi) {
      if (gov != nullptr && gov->exhausted()) break;
      const auto& perm = orders[oi];
      const bool identity = oi == 0;
      const Network spec_p = identity ? spec : permute_pis(spec, perm);
      BddManager mgr(static_cast<int>(spec_p.pi_count()));
      mgr.set_governor(gov);
      std::vector<BddRef> spec_fn;
      {
        obs::ScopedStage stage(gov, sb, "spec-bdd");
        spec_fn = output_bdds(mgr, spec_p);
      }
      bool fn_ok = true;
      for (const BddRef f : spec_fn)
        if (BddManager::is_invalid(f)) fn_ok = false;
      if (!fn_ok) {
        rep.bdd.accumulate(mgr.stats());
        continue;
      }

      // Section 3: build the factored candidates and keep the cheapest
      // (the paper: "the results are comparable but the second method has
      // better results on a few more test cases").
      std::vector<std::optional<Candidate>> cands;
      if (rung != Rung::OfddOnly &&
          (opt.method == FactorMethod::Cubes || opt.method == FactorMethod::Best))
        cands.push_back(
            build_cubes_candidate(spec_p, mgr, spec_fn, opt, fixed, sb));
      if (rung == Rung::OfddOnly || opt.method == FactorMethod::Ofdd ||
          opt.method == FactorMethod::Best)
        cands.push_back(
            build_ofdd_candidate(spec_p, mgr, spec_fn, opt, fixed, sb));

      for (auto& oc : cands) {
        if (!oc.has_value()) continue; // tripped mid-build: discard
        Candidate& c = *oc;
        if (opt.run_resub && rung != Rung::OfddOnly) {
          obs::ScopedStage stage(gov, sb, "resub");
          ResubOptions ro;
          ro.governor = gov;
          ro.sim_stats = &rep.sim;
          c.net = resub_merge(c.net, ro);
        } else {
          c.net = strash(c.net);
        }
        c.cost = network_stats(c.net).gates2;
        if (!best.valid || c.cost < best.cand.cost) {
          best.cand = std::move(c);
          best.perm = perm;
          best.valid = true;
        }
      }
      rep.bdd.accumulate(mgr.stats());
    }
  };

  // Walk the ladder until a rung completes. Each descent re-arms the
  // budget; a rung that completed nothing under a *fresh* slice hands over
  // to the next, cheaper rung.
  constexpr Rung kLadder[] = {Rung::Full, Rung::FixedPolarity, Rung::OfddOnly};
  // Ensures a live budget slice before a phase that still has work to do.
  // Returns false when the ladder allowance is spent.
  const auto regain = [&]() -> bool {
    if (gov == nullptr || !gov->exhausted()) return true;
    return gov->grant_fallback();
  };
  for (const Rung rung : kLadder) {
    if (!regain()) break;
    run_rung(rung);
    if (best.valid) break;
    ++rep.ladder_descents;
    if (gov == nullptr) break; // ungoverned builds cannot fail; don't loop
  }

  const bool tripped = gov != nullptr && gov->trip_kind() != TripKind::None;

  if (!best.valid) {
    // Every rung died inside the budget: hand back the specification
    // itself (trivially equivalent) and report failure.
    Network out = strash(spec);
    rep.status = FlowStatus::failed(
        tripped ? gov->trip_stage() : "synthesis",
        tripped ? std::string(to_string(gov->trip_kind())) + ": " +
                      gov->trip_reason()
                : "no candidate completed",
        tripped ? error_code_for(gov->trip_kind()) : ErrorCode::Internal);
    rep.seconds = sw.seconds();
    rep.stats = network_stats(out);
    rep.governor_polls = gov != nullptr ? gov->steps() : 0;
    if (report != nullptr) *report = rep;
    return out;
  }

  Candidate& chosen = best.cand;
  Network out = std::move(chosen.net);
  rep.fprm_cube_counts = std::move(chosen.cube_counts);
  rep.outputs_via_cubes = chosen.via_cubes;
  rep.outputs_via_ofdd = chosen.via_ofdd;

  // Section 4: redundancy removal (still in the permuted variable space —
  // the FPRM forms refer to permuted PI indices). Skipped when the ladder
  // allowance is spent; the pass is optional for correctness.
  if (opt.run_redundancy_removal && regain()) {
    obs::ScopedStage stage(gov, sb, "redundancy");
    RedundancyOptions rdo = opt.redundancy;
    rdo.governor = gov;
    out = remove_xor_redundancy(out, chosen.forms, rdo, &rep.redundancy);
    rep.sim.accumulate(rep.redundancy.sim);
  }
  out = strash(out);

  // Restore the spec's PI order.
  const bool permuted = best.perm != orders[0];
  if (permuted) {
    std::vector<std::size_t> inverse(best.perm.size());
    for (std::size_t k = 0; k < best.perm.size(); ++k)
      inverse[best.perm[k]] = k;
    out = permute_pis(out, inverse);
    // Remap the reported forms back to original variable ids, keeping the
    // cube masks aligned with the (re-sorted) support positions.
    for (auto& form : chosen.forms) {
      if (form.polarity.size() == 0) continue; // constant output: no form
      std::vector<int> new_ids(form.support.size());
      for (std::size_t i = 0; i < form.support.size(); ++i)
        new_ids[i] = static_cast<int>(
            best.perm[static_cast<std::size_t>(form.support[i])]);
      std::vector<std::size_t> by_id(form.support.size());
      for (std::size_t i = 0; i < by_id.size(); ++i) by_id[i] = i;
      std::sort(by_id.begin(), by_id.end(), [&](std::size_t a, std::size_t b) {
        return new_ids[a] < new_ids[b];
      });
      std::vector<int> sorted_ids(form.support.size());
      std::vector<std::size_t> new_pos(form.support.size());
      for (std::size_t r = 0; r < by_id.size(); ++r) {
        sorted_ids[r] = new_ids[by_id[r]];
        new_pos[by_id[r]] = r;
      }
      for (auto& cube : form.cubes) {
        BitVec remapped(cube.size());
        for (std::size_t i = cube.first_set(); i != BitVec::npos;
             i = cube.next_set(i + 1))
          remapped.set(new_pos[i]);
        cube = remapped;
      }
      form.support = std::move(sorted_ids);
      BitVec pol(form.polarity.size());
      for (std::size_t k = 0; k < best.perm.size(); ++k)
        pol.set(best.perm[k], form.polarity.get(k));
      form.polarity = pol;
    }
  }
  rep.forms = std::move(chosen.forms);

  // Optional post-pass: DAG-aware cut rewriting against the NPN database
  // (DESIGN.md §13). Runs after the PI order is restored so the pass sees
  // the final network. Best-of pick: every replacement is individually
  // verified inside the pass, but we still only keep the rewritten network
  // when it strictly improves the paper cost, so the option can never
  // worsen a circuit. Skipped when the ladder allowance is spent.
  if (opt.run_rewrite && regain()) {
    obs::ScopedStage stage(gov, sb, "rewrite");
    rw::RewriteOptions rwo = opt.rewrite;
    if (rwo.pool == nullptr) rwo.pool = opt.polarity.pool;
    if (rwo.governor == nullptr) rwo.governor = gov;
    Network trial = out;
    rw::RewriteStats rst = rw::rewrite_network(trial, rwo, &rep.sim);
    const NetworkStats before = network_stats(out);
    const NetworkStats after = network_stats(trial);
    if (after.lits < before.lits ||
        (after.lits == before.lits && after.num_nodes < before.num_nodes)) {
      out = std::move(trial);
    } else {
      // Original kept: report the attempt with zero realized gain.
      rst.lits_after = rst.lits_before;
      rst.gain_lits = 0;
    }
    rep.rewrite = rst;
  }

  if (opt.verify) {
    // Give the verifier a fresh slice when the budget already died: an
    // undecided internal check on a degraded result is acceptable, but we
    // should at least try. Real mismatches still throw — degradation never
    // excuses a wrong network.
    (void)regain();
    obs::ScopedStage stage(gov, sb, "verify");
    const auto check = check_equivalence(spec, out, 0xC0FFEE, gov);
    if (check.decided && !check.equivalent)
      throw RmsynError(ErrorCode::VerifyMismatch,
                       "synthesize: result not equivalent to spec: " +
                           check.reason);
  }

  rep.status = (gov != nullptr && gov->trip_kind() != TripKind::None)
                   ? FlowStatus::degraded(gov->trip_stage(),
                                          to_string(gov->trip_kind()),
                                          error_code_for(gov->trip_kind()))
                   : FlowStatus::ok();
  rep.seconds = sw.seconds();
  rep.stats = network_stats(out);
  rep.governor_polls = gov != nullptr ? gov->steps() : 0;
  if (report != nullptr) *report = rep;
  return out;
}

} // namespace rmsyn
