// Shared helpers for the two algebraic factorization methods of Section 3:
// literal materialization under a polarity vector, cube AND-trees, and the
// balanced binary XOR trees the paper joins subnetworks with.
#pragma once

#include <vector>

#include "fdd/fprm.hpp"
#include "network/network.hpp"
#include "util/bitvec.hpp"

namespace rmsyn {

/// Binds an FPRM form's literal space to nodes of a network under
/// construction: position i corresponds to variable support[i] with the
/// form's fixed polarity (a negative-polarity literal is an inverter on the
/// PI, which the paper's cost metric treats as free).
class LiteralContext {
public:
  /// `pi_nodes[v]` must be the PI node of global variable v.
  LiteralContext(Network& net, const std::vector<NodeId>& pi_nodes,
                 const std::vector<int>& support, const BitVec& polarity);

  Network& net() { return *net_; }
  std::size_t width() const { return lit_nodes_.size(); }

  /// Node computing the literal at support position i.
  NodeId literal(std::size_t i) const { return lit_nodes_[i]; }

  /// AND of the cube's literals as a balanced tree; the empty cube is
  /// constant 1.
  NodeId build_cube(const BitVec& cube);

private:
  Network* net_;
  std::vector<NodeId> lit_nodes_;
};

/// Balanced binary tree of `type` gates over `leaves`; returns the root.
/// An empty leaf list yields the neutral element (0 for XOR/OR, 1 for AND).
NodeId balanced_gate_tree(Network& net, GateType type, std::vector<NodeId> leaves);

/// Partitions cube indices into groups whose supports are connected
/// (step 2 of the cube method: every two groups have disjoint supports).
std::vector<std::vector<std::size_t>> group_by_disjoint_support(
    const std::vector<BitVec>& cubes);

} // namespace rmsyn
