#include "core/factor_ofdd.hpp"

#include <algorithm>
#include <functional>
#include <numeric>

namespace rmsyn {

NodeId factor_ofdd(Network& net, const std::vector<NodeId>& pi_nodes,
                   BddManager& mgr, const Ofdd& ofdd) {
  LiteralContext ctx(net, pi_nodes, ofdd.support, ofdd.polarity);

  // The diagram descends in the manager's level order, which need not be
  // the (index-ascending) order of ofdd.support; walk the support
  // positions level by level, holding the order fixed meanwhile.
  BddManager::ReorderHold hold(mgr);
  std::vector<std::size_t> pos(ofdd.support.size());
  std::iota(pos.begin(), pos.end(), std::size_t{0});
  std::sort(pos.begin(), pos.end(), [&](std::size_t a, std::size_t b) {
    return mgr.level_of(ofdd.support[a]) < mgr.level_of(ofdd.support[b]);
  });

  // Memo key: (spectrum node, depth).
  std::unordered_map<uint64_t, NodeId> memo;
  const auto key_of = [](BddRef r, std::size_t depth) {
    return (static_cast<uint64_t>(depth) << 32) | r;
  };

  const std::function<NodeId(BddRef, std::size_t)> build =
      [&](BddRef r, std::size_t depth) -> NodeId {
    if (depth == ofdd.support.size())
      return r == BddManager::kTrue ? Network::kConst1 : Network::kConst0;
    const uint64_t key = key_of(r, depth);
    if (const auto it = memo.find(key); it != memo.end()) return it->second;

    const std::size_t p = pos[depth];
    const int v = ofdd.support[p];
    const NodeId lit = ctx.literal(p);
    NodeId result;
    if (!mgr.is_terminal(r) && mgr.var_of(r) == v) {
      const BddRef lo = mgr.lo_of(r);
      const BddRef hi = mgr.hi_of(r);
      const NodeId f_lo = build(lo, depth + 1);
      const NodeId f_hi = build(hi, depth + 1);
      if (f_hi == Network::kConst0) {
        // No cube below contains the literal.
        result = f_lo;
      } else if (f_lo == Network::kConst0) {
        // f = lit · f_hi; no XOR needed.
        result = f_hi == Network::kConst1 ? lit : net.add_and(lit, f_hi);
      } else {
        const NodeId prod =
            f_hi == Network::kConst1 ? lit : net.add_and(lit, f_hi);
        result = net.add_xor(f_lo, prod);
      }
    } else {
      // Variable skipped: both "with literal" and "without" cubes exist —
      // f = (1 ⊕ lit)·g = lit̄·g (Reduction rule (a) materialized by the
      // diagram itself).
      const NodeId g = build(r, depth + 1);
      if (g == Network::kConst0) result = Network::kConst0;
      else {
        const NodeId nlit = net.add_not(lit);
        result = g == Network::kConst1 ? nlit : net.add_and(nlit, g);
      }
    }
    memo.emplace(key, result);
    return result;
  };

  return build(ofdd.root, 0);
}

SharedOfddBuilder::SharedOfddBuilder(Network& net,
                                     const std::vector<NodeId>& pi_nodes,
                                     BddManager& mgr, const BitVec& polarity)
    : net_(&net), pi_nodes_(&pi_nodes), mgr_(&mgr), hold_(mgr),
      polarity_(polarity),
      lit_cache_(static_cast<std::size_t>(mgr.nvars()), Network::kConst0),
      nlit_cache_(static_cast<std::size_t>(mgr.nvars()), Network::kConst0) {}

NodeId SharedOfddBuilder::literal(int var) {
  auto& slot = lit_cache_[static_cast<std::size_t>(var)];
  if (slot == Network::kConst0) {
    const NodeId pi = (*pi_nodes_)[static_cast<std::size_t>(var)];
    slot = polarity_.get(static_cast<std::size_t>(var)) ? pi : net_->add_not(pi);
  }
  return slot;
}

NodeId SharedOfddBuilder::build(BddRef spectrum) {
  return build_rec(spectrum, 0);
}

NodeId SharedOfddBuilder::build_rec(BddRef r, int level) {
  const int n = mgr_->nvars();
  if (level == n)
    return r == BddManager::kTrue ? Network::kConst1 : Network::kConst0;
  // Terminal-0 short-circuit: no cubes below.
  if (r == BddManager::kFalse) return Network::kConst0;
  const uint64_t key = (static_cast<uint64_t>(level) << 32) | r;
  if (const auto it = memo_.find(key); it != memo_.end()) return it->second;

  const int var = mgr_->var_at_level(level);
  const NodeId lit = literal(var);
  NodeId result;
  if (!mgr_->is_terminal(r) && mgr_->var_of(r) == var) {
    const BddRef lo = mgr_->lo_of(r);
    const BddRef hi = mgr_->hi_of(r);
    const NodeId f_lo = build_rec(lo, level + 1);
    const NodeId f_hi = build_rec(hi, level + 1);
    if (f_hi == Network::kConst0) {
      result = f_lo;
    } else if (f_lo == Network::kConst0) {
      result = f_hi == Network::kConst1 ? lit : net_->add_and(lit, f_hi);
    } else {
      const NodeId prod = f_hi == Network::kConst1 ? lit : net_->add_and(lit, f_hi);
      result = net_->add_xor(f_lo, prod);
    }
  } else {
    // Skipped presence bit: cube pairs {C, C·lit} — multiply by lit̄.
    const NodeId g = build_rec(r, level + 1);
    if (g == Network::kConst0) {
      result = Network::kConst0;
    } else {
      auto& nslot = nlit_cache_[static_cast<std::size_t>(var)];
      if (nslot == Network::kConst0) nslot = net_->add_not(lit);
      result = g == Network::kConst1 ? nslot : net_->add_and(nslot, g);
    }
  }
  memo_.emplace(key, result);
  return result;
}

} // namespace rmsyn
