// Factorization Method 2 — the OFDD method of Section 3.
//
// The initial multilevel network is constructed by a single traversal of
// the OFDD: each node is replaced by one AND gate and one XOR gate
// implementing its Davio expansion  f = f_lo ⊕ lit·f_hi.  OFDD nodes shared
// between several parents become shared subnetworks — the factored
// subexpressions of rule (d) the paper reads off "any set of nodes that
// share a common child node".
//
// The paper's note about variables missing along a path is handled exactly:
// in the coefficient-function view a skipped variable v means the pair of
// cubes {C, C·lit_v} both occur, and  C ⊕ C·lit_v = C·lit̄_v, so the
// construction inserts AND(NOT lit_v, ...) — which is precisely Reduction
// rule (a) applied for free by the diagram.
//
// Multi-output sharing. The paper observes that the multioutput OFDD cannot
// be used directly because shared nodes may sit under different support
// sets; the per-output networks are merged by resubstitution instead. We
// get the same effect constructively: SharedOfddBuilder constructs all
// outputs from spectra computed over the *full* variable list under one
// polarity vector, with a construction memo shared across outputs. Spectrum
// subgraphs common to several outputs (e.g. the carry chains of an adder,
// which appear inside every more-significant sum bit) then become shared
// subnetworks — this is what lets my_adder come out as a ripple structure
// instead of 17 independent carry look-aheads.
#pragma once

#include <unordered_map>
#include <vector>

#include "core/xor_expr.hpp"
#include "fdd/fprm.hpp"
#include "network/network.hpp"

namespace rmsyn {

/// Single-output convenience wrapper (support-restricted OFDD).
NodeId factor_ofdd(Network& net, const std::vector<NodeId>& pi_nodes,
                   BddManager& mgr, const Ofdd& ofdd);

/// Multi-output Method-2 construction with cross-output sharing.
class SharedOfddBuilder {
public:
  /// `polarity` applies to all outputs; spectra passed to build() must have
  /// been computed by rm_spectrum over all mgr.nvars() variables (0..n-1)
  /// under the same polarity.
  SharedOfddBuilder(Network& net, const std::vector<NodeId>& pi_nodes,
                    BddManager& mgr, const BitVec& polarity);

  /// Builds (or reuses) the subnetwork for one output's spectrum.
  NodeId build(BddRef spectrum);

private:
  NodeId build_rec(BddRef r, int level);
  NodeId literal(int var);

  Network* net_;
  const std::vector<NodeId>* pi_nodes_;
  BddManager* mgr_;
  BddManager::ReorderHold hold_; ///< level order is captured by the memo
  BitVec polarity_;
  std::vector<NodeId> lit_cache_;  ///< per var; kConst0 = not yet built
  std::vector<NodeId> nlit_cache_;
  std::unordered_map<uint64_t, NodeId> memo_; ///< (spectrum, var) -> node
};

} // namespace rmsyn
