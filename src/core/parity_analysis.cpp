#include "core/parity_analysis.hpp"

#include <algorithm>

#include "core/xor_expr.hpp"

namespace rmsyn {

AnnotatedXorTree build_annotated_tree(const FprmForm& form) {
  AnnotatedXorTree tree;
  tree.form = form;
  std::vector<NodeId> pis;
  for (int v = 0; v < form.nvars; ++v) pis.push_back(tree.net.add_pi());
  LiteralContext ctx(tree.net, pis, form.support, form.polarity);

  const auto cube_sets_of = [&](NodeId n) -> std::vector<uint32_t>& {
    if (tree.cube_sets.size() < tree.net.node_count())
      tree.cube_sets.resize(tree.net.node_count());
    return tree.cube_sets[n];
  };

  // Leaves: one AND node per (non-constant) cube. The constant-1 cube, if
  // present, becomes an inverter at the output (the paper's assumption (2)).
  std::vector<NodeId> leaves;
  bool has_one = false;
  for (uint32_t i = 0; i < form.cubes.size(); ++i) {
    if (form.cubes[i].none()) {
      has_one = true;
      continue;
    }
    const NodeId leaf = ctx.build_cube(form.cubes[i]);
    cube_sets_of(leaf).push_back(i);
    leaves.push_back(leaf);
  }

  // Balanced binary XOR tree (step 5 of the cube method).
  while (leaves.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < leaves.size(); i += 2) {
      const NodeId x = tree.net.add_xor(leaves[i], leaves[i + 1]);
      auto& set = cube_sets_of(x);
      const auto& a = tree.cube_sets[leaves[i]];
      const auto& b = tree.cube_sets[leaves[i + 1]];
      set.insert(set.end(), a.begin(), a.end());
      set.insert(set.end(), b.begin(), b.end());
      std::sort(set.begin(), set.end());
      tree.xor_gates.push_back(x);
      next.push_back(x);
    }
    if (leaves.size() % 2 == 1) next.push_back(leaves.back());
    leaves = std::move(next);
  }

  NodeId root = leaves.empty() ? Network::kConst0 : leaves[0];
  if (has_one) root = tree.net.add_not(root);
  tree.net.add_po(root);
  tree.cube_sets.resize(tree.net.node_count());
  return tree;
}

namespace {

/// PI assignment realizing "literals of exactly the support-position union
/// U at 1, every other literal at 0" under the form's polarity.
BitVec witness_from_union(const FprmForm& form, const BitVec& u) {
  BitVec assign(static_cast<std::size_t>(form.nvars));
  for (std::size_t i = 0; i < form.support.size(); ++i) {
    const auto v = static_cast<std::size_t>(form.support[i]);
    const bool lit = u.get(i);
    assign.set(v, form.polarity.get(v) == lit);
  }
  return assign;
}

} // namespace

ParityVerdict parity_controllability(const FprmForm& form,
                                     const std::vector<uint32_t>& g_cubes,
                                     const std::vector<uint32_t>& h_cubes,
                                     const ParityAnalysisOptions& opt) {
  ParityVerdict verdict;
  const std::size_t m = form.cubes.size();
  std::size_t budget = opt.max_enumerations;

  // Evaluates the pattern P_T for the activation union U: a cube is 1 iff
  // its literal set is contained in U (the closure effect).
  const auto try_union = [&](const BitVec& u) {
    const auto parity_over = [&](const std::vector<uint32_t>& set) {
      bool p = false;
      for (const uint32_t c : set)
        if (form.cubes[c].is_subset_of(u)) p = !p;
      return p;
    };
    const unsigned idx = (parity_over(g_cubes) ? 2u : 0u) +
                         (parity_over(h_cubes) ? 1u : 0u);
    if ((verdict.achieved & (1u << idx)) == 0) {
      verdict.achieved |= static_cast<uint8_t>(1u << idx);
      verdict.witness[idx] = witness_from_union(form, u);
    }
  };

  const BitVec empty_u(form.support.size());
  try_union(empty_u); // AZ: the paper's Property 1

  // AO.
  {
    BitVec all(form.support.size());
    all.set_all();
    try_union(all);
  }

  // Subsets of cubes up to the size cap, smallest first (the singletons are
  // the OC patterns). Early exit once all four patterns are achieved.
  std::vector<uint32_t> stack;
  const std::function<void(uint32_t, const BitVec&)> rec =
      [&](uint32_t first, const BitVec& u) {
        if (verdict.achieved == 0b1111 || budget == 0) return;
        for (uint32_t c = first; c < m; ++c) {
          if (budget == 0) return;
          --budget;
          BitVec u2 = u;
          u2 |= form.cubes[c];
          try_union(u2);
          if (stack.size() + 1 < opt.max_subset) {
            stack.push_back(c);
            rec(c + 1, u2);
            stack.pop_back();
          }
          if (verdict.achieved == 0b1111) return;
        }
      };
  rec(0, empty_u);
  return verdict;
}

std::vector<ParityVerdict> analyze_tree(const AnnotatedXorTree& tree,
                                        const ParityAnalysisOptions& opt) {
  std::vector<ParityVerdict> out;
  out.reserve(tree.xor_gates.size());
  for (const NodeId x : tree.xor_gates) {
    const auto& fi = tree.net.fanins(x);
    out.push_back(parity_controllability(tree.form, tree.cube_sets[fi[0]],
                                         tree.cube_sets[fi[1]], opt));
  }
  return out;
}

} // namespace rmsyn
