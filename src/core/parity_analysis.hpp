// The paper's Section-4 parity-of-cubes controllability procedure.
//
// In a network built by algebraic factorization without the reduction rules
// (the paper's assumption (3)), every XOR gate's two fanin functions are
// XOR-sums of disjoint subsets of the output's FPRM cubes. Whether an input
// pattern (a, b) can occur at the gate is then a question about achievable
// *cube parities*: which pairs (parity of true cubes in g, parity of true
// cubes in h) some PI assignment realizes.
//
// The paper enumerates candidate assignments of a decidable shape — "set
// all the variables in all the related cubes to 1 and all other variables
// to 0" — i.e. patterns P_T parameterized by a cube subset T, under which a
// cube C evaluates to 1 iff support(C) ⊆ support(∪T) (activating T can turn
// other, covered cubes on as well; that closure is what makes the
// enumeration non-trivial and is exactly why the accumulated-parity
// bookkeeping is needed). The full method was cut from the paper for space;
// this module implements the natural bounded variant — all T up to a size
// cap, seeded by the singletons (the OC set), ∅ (AZ) and the full set (AO)
// — which is sound by construction (every reported pattern comes with a
// concrete witness assignment) and empirically complete on the benchmark
// circuits (see bench_parity_analysis, which scores it against the exact
// BDD decision).
#pragma once

#include <vector>

#include "fdd/fprm.hpp"
#include "network/network.hpp"
#include "util/bitvec.hpp"

namespace rmsyn {

/// A Section-3 step-5 tree for one output: a balanced XOR tree over the
/// cube product terms, annotated with each node's cube subset.
struct AnnotatedXorTree {
  Network net;
  FprmForm form;
  /// Indices of this output's FPRM cubes feeding each network node
  /// (leaf AND nodes carry one index; XOR nodes carry the union of their
  /// children; PIs and inverters carry none).
  std::vector<std::vector<uint32_t>> cube_sets;
  /// The 2-input XOR gates of the tree, in topological order.
  std::vector<NodeId> xor_gates;
};

/// Builds the annotated tree (assumption (3): no reduction rules applied).
AnnotatedXorTree build_annotated_tree(const FprmForm& form);

struct ParityVerdict {
  /// Bit (g*2 + h): pattern (g, h) proven controllable, with a witness.
  uint8_t achieved = 0;
  /// Witness PI assignment per pattern (indexed g*2+h; meaningful only for
  /// achieved bits). Width = form.nvars.
  BitVec witness[4];
};

struct ParityAnalysisOptions {
  /// Maximum size of the activating cube subsets T that are enumerated
  /// beyond the paper's seeds (∅, singletons, the full set).
  std::size_t max_subset = 3;
  /// Safety cap on enumerated subsets per gate.
  std::size_t max_enumerations = 200'000;
};

/// Decides, for one XOR gate with fanin cube subsets `g_cubes` / `h_cubes`
/// of `form`, which of the four input patterns the cube-parity enumeration
/// can demonstrate. Sound: every achieved pattern has a witness that
/// genuinely produces it (callers can re-simulate to confirm).
ParityVerdict parity_controllability(const FprmForm& form,
                                     const std::vector<uint32_t>& g_cubes,
                                     const std::vector<uint32_t>& h_cubes,
                                     const ParityAnalysisOptions& opt = {});

/// Runs the analysis over every XOR gate of an annotated tree. Returns one
/// verdict per entry of tree.xor_gates.
std::vector<ParityVerdict> analyze_tree(const AnnotatedXorTree& tree,
                                        const ParityAnalysisOptions& opt = {});

} // namespace rmsyn
