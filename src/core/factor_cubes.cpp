#include "core/factor_cubes.hpp"

#include <algorithm>
#include <cassert>

namespace rmsyn {

namespace {

/// Recursive factoring of a set of cubes (XOR semantics). All cubes are
/// masks over the literal context's positions.
class CubeFactorizer {
public:
  explicit CubeFactorizer(LiteralContext& ctx) : ctx_(ctx) {}

  NodeId factor(std::vector<BitVec> cubes) {
    // Drop duplicate cubes in pairs: C ⊕ C = 0.
    std::sort(cubes.begin(), cubes.end());
    std::vector<BitVec> kept;
    for (std::size_t i = 0; i < cubes.size();) {
      if (i + 1 < cubes.size() && cubes[i] == cubes[i + 1]) i += 2;
      else kept.push_back(cubes[i++]);
    }
    return factor_nodup(std::move(kept));
  }

private:
  Network& net() { return ctx_.net(); }

  NodeId factor_nodup(std::vector<BitVec> cubes) {
    if (cubes.empty()) return Network::kConst0;
    if (cubes.size() == 1) return ctx_.build_cube(cubes[0]);

    // Reduction rule (b): {B, C, B∪C} = B + C (any partition works since
    // B ⊕ C ⊕ BC = B + C for arbitrary B, C).
    if (cubes.size() == 3) {
      for (int top = 0; top < 3; ++top) {
        const BitVec& u = cubes[static_cast<std::size_t>(top)];
        const BitVec& a = cubes[static_cast<std::size_t>((top + 1) % 3)];
        const BitVec& b = cubes[static_cast<std::size_t>((top + 2) % 3)];
        if ((a | b) == u && a != u && b != u) {
          return net().add_or(ctx_.build_cube(a), ctx_.build_cube(b));
        }
      }
    }

    // Step 2 within the recursion: when the cube set splits into
    // support-disjoint groups, factor them independently and join with a
    // balanced XOR tree (step 5).
    const auto groups = group_by_disjoint_support(cubes);
    if (groups.size() > 1) {
      std::vector<NodeId> parts;
      parts.reserve(groups.size());
      for (const auto& g : groups) {
        std::vector<BitVec> sub;
        sub.reserve(g.size());
        for (const std::size_t i : g) sub.push_back(cubes[i]);
        parts.push_back(factor_nodup(std::move(sub)));
      }
      return balanced_gate_tree(net(), GateType::Xor, std::move(parts));
    }

    // Factorization rule (d): divide by the literal occurring in the most
    // cubes (the subgroup with maximal common support, one literal at a
    // time).
    const std::size_t width = cubes[0].size();
    std::vector<std::size_t> occur(width, 0);
    for (const auto& c : cubes)
      for (std::size_t b = c.first_set(); b != BitVec::npos; b = c.next_set(b + 1))
        ++occur[b];
    std::size_t best_lit = BitVec::npos, best_count = 1;
    for (std::size_t b = 0; b < width; ++b) {
      if (occur[b] > best_count) {
        best_count = occur[b];
        best_lit = b;
      }
    }

    if (best_lit == BitVec::npos) {
      // No literal shared by two cubes, yet the supports are connected —
      // can only happen via chains; emit the XOR of cube ANDs directly.
      std::vector<NodeId> leaves;
      leaves.reserve(cubes.size());
      for (const auto& c : cubes) leaves.push_back(ctx_.build_cube(c));
      return balanced_gate_tree(net(), GateType::Xor, std::move(leaves));
    }

    std::vector<BitVec> quotient, remainder;
    bool quotient_has_one = false; // the constant-1 cube inside the quotient
    for (auto& c : cubes) {
      if (c.get(best_lit)) {
        BitVec q = c;
        q.set(best_lit, false);
        if (q.none()) quotient_has_one = true;
        else quotient.push_back(std::move(q));
      } else {
        remainder.push_back(std::move(c));
      }
    }

    const NodeId lit = ctx_.literal(best_lit);
    NodeId factored;
    if (quotient_has_one) {
      // Reduction rule (a): A ⊕ A·B = A·B̄ — the quotient contains the
      // constant-1 cube, so lit·(1 ⊕ Q) = lit·(Q'). An inverter is free in
      // the paper's cost model.
      if (quotient.empty()) {
        factored = lit;
      } else {
        const NodeId q = factor_nodup(std::move(quotient));
        factored = net().add_and(lit, net().add_not(q));
      }
    } else {
      const NodeId q = factor_nodup(std::move(quotient));
      factored = q == Network::kConst1 ? lit : net().add_and(lit, q);
    }
    if (remainder.empty()) return factored;
    const NodeId rest = factor_nodup(std::move(remainder));
    return net().add_xor(factored, rest);
  }

  LiteralContext& ctx_;
};

} // namespace

NodeId factor_cubes(Network& net, const std::vector<NodeId>& pi_nodes,
                    const FprmForm& form) {
  LiteralContext ctx(net, pi_nodes, form.support, form.polarity);
  CubeFactorizer fac(ctx);
  return fac.factor(form.cubes);
}

} // namespace rmsyn
