#include "core/redundancy.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>

#include "bdd/bdd.hpp"
#include "equiv/equiv.hpp"
#include "network/transform.hpp"
#include "util/rng.hpp"

namespace rmsyn {

PatternSet fprm_pattern_set(std::size_t num_pis,
                            const std::vector<FprmForm>& forms,
                            bool include_sa1, std::size_t max_patterns) {
  PatternSet ps(num_pis, 0);
  // Exact pattern count (modulo the cap), so append() never reallocates.
  std::size_t expected = 1;
  for (const auto& form : forms) {
    expected += 2;
    for (const auto& cube : form.cubes)
      expected += 1 + (include_sa1 ? cube.count() : 0);
  }
  ps.reserve(std::min(expected, max_patterns));
  const auto add = [&](const BitVec& a) {
    if (ps.num_patterns < max_patterns) ps.append(a);
  };

  // Global all-zero assignment (the AZ pattern under all-positive polarity).
  add(BitVec(num_pis));

  for (const auto& form : forms) {
    // Assignment setting every literal of this form to `lit_value`;
    // variables outside the support stay 0.
    const auto literal_assignment = [&](bool lit_value) {
      BitVec a(num_pis);
      for (const int v : form.support) {
        const auto iv = static_cast<std::size_t>(v);
        a.set(iv, form.polarity.get(iv) == lit_value);
      }
      return a;
    };
    add(literal_assignment(false)); // AZ under this polarity
    add(literal_assignment(true));  // AO

    for (const auto& cube : form.cubes) {
      // OC pattern: literals of the cube at 1, all other literals at 0.
      BitVec oc = literal_assignment(false);
      for (std::size_t i = cube.first_set(); i != BitVec::npos;
           i = cube.next_set(i + 1)) {
        const auto v = static_cast<std::size_t>(form.support[i]);
        oc.set(v, form.polarity.get(v));
      }
      add(oc);
      if (include_sa1) {
        // SA1 patterns: OC with one cube literal dropped to 0.
        for (std::size_t i = cube.first_set(); i != BitVec::npos;
             i = cube.next_set(i + 1)) {
          const auto v = static_cast<std::size_t>(form.support[i]);
          BitVec sa1 = oc;
          sa1.set(v, !form.polarity.get(v));
          add(sa1);
        }
      }
      if (ps.num_patterns >= max_patterns) return ps;
    }
  }
  return ps;
}

namespace {

/// Candidate replacement gates for a 2-input XOR whose reachable/observable
/// input-pattern set is incomplete, cheapest first. Each entry gives the
/// gate's value on patterns (g,h) = (0,0),(0,1),(1,0),(1,1) as a 4-bit mask
/// (bit index = g*2+h) plus a builder.
struct Replacement {
  uint8_t truth; // bit (g*2+h) = output value
  enum class Kind {
    Const0, Const1, WireG, WireH, NotG, NotH,
    And, Or, AndGnotH, AndNotGH, Nand, Nor, Xor, Xnor
  } kind;
  int cost; // rough 2-input AND/OR gate cost (inverters free)
};

constexpr Replacement kReplacements[] = {
    {0b0000, Replacement::Kind::Const0, 0},
    {0b1111, Replacement::Kind::Const1, 0},
    {0b1100, Replacement::Kind::WireG, 0},
    {0b1010, Replacement::Kind::WireH, 0},
    {0b0011, Replacement::Kind::NotG, 0},
    {0b0101, Replacement::Kind::NotH, 0},
    {0b1000, Replacement::Kind::And, 1},
    {0b1110, Replacement::Kind::Or, 1},
    {0b0100, Replacement::Kind::AndGnotH, 1},
    {0b0010, Replacement::Kind::AndNotGH, 1},
    {0b0111, Replacement::Kind::Nand, 1},
    {0b0001, Replacement::Kind::Nor, 1},
    {0b0110, Replacement::Kind::Xor, 3},
    {0b1001, Replacement::Kind::Xnor, 3},
};

constexpr uint8_t kXorTruth = 0b0110;

/// Applies a replacement in place; returns true when the gate actually
/// changed (i.e. the chosen kind is not Xor).
bool apply_replacement(Network& net, NodeId n, Replacement::Kind kind,
                       NodeId g, NodeId h) {
  using K = Replacement::Kind;
  switch (kind) {
    case K::Xor: return false;
    case K::Const0: net.rewrite_gate(n, GateType::Buf, {Network::kConst0}); break;
    case K::Const1: net.rewrite_gate(n, GateType::Buf, {Network::kConst1}); break;
    case K::WireG: net.rewrite_gate(n, GateType::Buf, {g}); break;
    case K::WireH: net.rewrite_gate(n, GateType::Buf, {h}); break;
    case K::NotG: net.rewrite_gate(n, GateType::Not, {g}); break;
    case K::NotH: net.rewrite_gate(n, GateType::Not, {h}); break;
    case K::And: net.rewrite_gate(n, GateType::And, {g, h}); break;
    case K::Or: net.rewrite_gate(n, GateType::Or, {g, h}); break;
    case K::AndGnotH:
      net.rewrite_gate(n, GateType::And, {g, net.add_not(h)});
      break;
    case K::AndNotGH:
      net.rewrite_gate(n, GateType::And, {net.add_not(g), h});
      break;
    case K::Nand: net.rewrite_gate(n, GateType::Nand, {g, h}); break;
    case K::Nor: net.rewrite_gate(n, GateType::Nor, {g, h}); break;
    case K::Xnor: net.rewrite_gate(n, GateType::Xnor, {g, h}); break;
  }
  return true;
}

/// Lazily maintained node-function table over one BDD manager.
class NodeFunctions {
public:
  NodeFunctions(BddManager& mgr, const Network& net) : mgr_(mgr), net_(net) {
    refresh_all();
  }

  void refresh_all() {
    f_.assign(net_.node_count(), BddManager::kFalse);
    known_.assign(net_.node_count(), false);
    f_[Network::kConst1] = mgr_.bdd_true();
    known_[Network::kConst0] = known_[Network::kConst1] = true;
    for (std::size_t i = 0; i < net_.pi_count(); ++i) {
      f_[net_.pis()[i]] = mgr_.var(static_cast<int>(i));
      known_[net_.pis()[i]] = true;
    }
  }

  BddRef of(NodeId n) {
    grow();
    if (known_[n]) return f_[n];
    // Iterative evaluation of the cone below n.
    std::vector<NodeId> stack{n};
    while (!stack.empty()) {
      const NodeId m = stack.back();
      if (known_[m]) { stack.pop_back(); continue; }
      bool ready = true;
      for (const NodeId fi : net_.fanins(m)) {
        if (fi < known_.size() && !known_[fi]) {
          stack.push_back(fi);
          ready = false;
        }
      }
      if (!ready) continue;
      f_[m] = compute(m);
      known_[m] = true;
      stack.pop_back();
    }
    return f_[n];
  }

  /// Marks a node (and everything above it) stale after a function-changing
  /// rewrite.
  void invalidate(NodeId /*n*/) {
    grow();
    // Conservative: after a function-changing rewrite every internal node
    // may be stale; recompute everything above by clearing all non-leaf
    // entries (cheap at the network sizes this pass runs on).
    for (NodeId m = 0; m < known_.size(); ++m) {
      const GateType t = net_.type(m);
      if (t != GateType::Pi && t != GateType::Const0 && t != GateType::Const1)
        known_[m] = false;
    }
  }

private:
  void grow() {
    if (f_.size() < net_.node_count()) {
      f_.resize(net_.node_count(), BddManager::kFalse);
      known_.resize(net_.node_count(), false);
    }
  }

  BddRef compute(NodeId n) {
    const auto& fi = net_.fanins(n);
    switch (net_.type(n)) {
      case GateType::Const0: return mgr_.bdd_false();
      case GateType::Const1: return mgr_.bdd_true();
      case GateType::Pi: return f_[n];
      case GateType::Buf: return f_[fi[0]];
      case GateType::Not: return mgr_.bdd_not(f_[fi[0]]);
      case GateType::And: case GateType::Nand: {
        BddRef acc = mgr_.bdd_true();
        for (const NodeId g : fi) acc = mgr_.bdd_and(acc, f_[g]);
        return net_.type(n) == GateType::Nand ? mgr_.bdd_not(acc) : acc;
      }
      case GateType::Or: case GateType::Nor: {
        BddRef acc = mgr_.bdd_false();
        for (const NodeId g : fi) acc = mgr_.bdd_or(acc, f_[g]);
        return net_.type(n) == GateType::Nor ? mgr_.bdd_not(acc) : acc;
      }
      case GateType::Xor: case GateType::Xnor: {
        BddRef acc = mgr_.bdd_false();
        for (const NodeId g : fi) acc = mgr_.bdd_xor(acc, f_[g]);
        return net_.type(n) == GateType::Xnor ? mgr_.bdd_not(acc) : acc;
      }
    }
    return mgr_.bdd_false();
  }

  BddManager& mgr_;
  const Network& net_;
  std::vector<BddRef> f_;
  std::vector<bool> known_;
};

} // namespace

Network remove_xor_redundancy(const Network& net,
                              const std::vector<FprmForm>& forms,
                              const RedundancyOptions& opt,
                              RedundancyStats* stats_out) {
  RedundancyStats stats;
  Network work = decompose2(strash(net));
  const Network reference = work; // for the final equivalence assertion

  BddManager mgr(static_cast<int>(work.pi_count()));
  mgr.set_governor(opt.governor);
  ResourceGovernor* gov = opt.governor;
  const auto out_of_budget = [&] { return gov != nullptr && gov->exhausted(); };
  NodeFunctions funcs(mgr, work);

  // Golden output functions — every phase must preserve these.
  std::vector<BddRef> golden;
  golden.reserve(work.po_count());
  for (std::size_t i = 0; i < work.po_count(); ++i)
    golden.push_back(funcs.of(work.po(i)));
  for (const BddRef g : golden) {
    if (BddManager::is_invalid(g)) {
      // Budget died before the reference functions existed; nothing can be
      // confirmed, so hand back the (equivalent) prepared network as-is.
      if (stats_out != nullptr) *stats_out = stats;
      return strash(work);
    }
  }

  // ---- Step 1: simulate the FPRM-derived pattern set, record which input
  // patterns occur at each XOR gate.
  PatternSet patterns =
      forms.empty()
          ? random_patterns(work.pi_count(),
                            std::min<std::size_t>(opt.max_patterns, 1024),
                            0xFEEDFACE)
          : fprm_pattern_set(work.pi_count(), forms, /*include_sa1=*/false,
                             opt.max_patterns);
  std::vector<uint8_t> seen(work.node_count(), 0);
  if (opt.use_pattern_filter && patterns.num_patterns > 0) {
    SimState sim(work, patterns);
    for (NodeId n = 0; n < work.node_count(); ++n) {
      if (work.type(n) != GateType::Xor || work.fanins(n).size() != 2) continue;
      const BitVec& vg = sim.value(work.fanins(n)[0]);
      const BitVec& vh = sim.value(work.fanins(n)[1]);
      for (std::size_t p = 0; p < patterns.num_patterns; ++p) {
        const unsigned idx = (vg.get(p) ? 2u : 0u) + (vh.get(p) ? 1u : 0u);
        seen[n] |= static_cast<uint8_t>(1u << idx);
      }
    }
    stats.sim.accumulate(sim.take_stats());
  }

  const auto topo = work.topo_order();

  // ---- Step 2: controllability reductions (Properties 3/4), POs first.
  std::vector<NodeId> xors;
  for (auto it = topo.rbegin(); it != topo.rend(); ++it)
    if (work.type(*it) == GateType::Xor && work.fanins(*it).size() == 2)
      xors.push_back(*it);
  stats.xor_gates_before = xors.size();

  for (const NodeId n : xors) {
    if (out_of_budget()) break;
    const NodeId g = work.fanins(n)[0];
    const NodeId h = work.fanins(n)[1];
    if (opt.use_pattern_filter && seen[n] == 0b1111) {
      // Property 8/9 fast path: all four patterns demonstrated by the
      // decidable pattern set — the gate is irreducible, no exact check.
      ++stats.pattern_pruned;
      continue;
    }
    // Decide controllability of each input pattern exactly.
    uint8_t reachable = seen[n];
    const BddRef fg = funcs.of(g);
    const BddRef fh = funcs.of(h);
    if (BddManager::is_invalid(fg) || BddManager::is_invalid(fh)) continue;
    for (unsigned idx = 0; idx < 4; ++idx) {
      if (reachable & (1u << idx)) continue;
      ++stats.exact_checks;
      const BddRef eg = (idx & 2u) ? fg : mgr.bdd_not(fg);
      const BddRef eh = (idx & 1u) ? fh : mgr.bdd_not(fh);
      // A budget-tripped (invalid) conjunction compares != false, i.e. the
      // pattern counts as reachable — undecidable stays conservative.
      if (mgr.bdd_and(eg, eh) != mgr.bdd_false()) reachable |= (1u << idx);
    }
    if (reachable == 0b1111) continue;
    // Choose the cheapest gate agreeing with XOR on every reachable
    // pattern. This subsumes Properties 3 and 4 (and the (0,0) corner).
    for (const auto& rep : kReplacements) {
      if (((rep.truth ^ kXorTruth) & reachable) != 0) continue;
      if (apply_replacement(work, n, rep.kind, g, h)) {
        using K = Replacement::Kind;
        if (rep.kind == K::Or || rep.kind == K::Nor) ++stats.reduced_to_or;
        else if (rep.kind == K::Nand) ++stats.reduced_to_nand;
        else ++stats.reduced_to_andnot; // AND forms, wires and constants
      }
      break;
    }
    // Controllability rewrites preserve the node function; nothing to
    // invalidate, but new inverter nodes may have been added.
    (void)funcs.of(n);
  }

  // ---- Step 3: observability domino (Properties 5-7).
  if (opt.observability_pass) {
    bool changed = true;
    int guard = 0;
    while (changed && guard++ < 16 && !out_of_budget()) {
      changed = false;
      // The network maintains its fanout lists, so each wave only
      // recomputes liveness (rewrites orphan whole cones, which stay
      // linked into the lists until compact()).
      const std::vector<bool> live = work.live_mask();
#ifndef NDEBUG
      // Cross-check maintained lists against a full fanin rescan: every
      // live node's live-owner edge count must match.
      {
        std::vector<uint32_t> rescan(work.node_count(), 0);
        for (NodeId m = 0; m < work.node_count(); ++m)
          if (live[m])
            for (const NodeId fi : work.fanins(m)) ++rescan[fi];
        for (NodeId m = 0; m < work.node_count(); ++m) {
          if (!live[m]) continue;
          uint32_t maintained = 0;
          for (const NodeId fo : work.fanouts(m))
            if (live[fo]) ++maintained;
          assert(maintained == rescan[m]);
        }
      }
#endif
      // Sole live consumer of m: exactly one live-owner edge and zero PO
      // refs, else kNoNode. A consumer reading m twice disqualifies (two
      // edges), matching the rebuilt-list semantics this replaced.
      const auto sole_live_fanout = [&](NodeId m) -> NodeId {
        if (work.po_ref_count(m) != 0) return Network::kNoNode;
        NodeId only = Network::kNoNode;
        for (const NodeId fo : work.fanouts(m)) {
          if (!live[fo]) continue;
          if (only != Network::kNoNode) return Network::kNoNode;
          only = fo;
        }
        return only;
      };

      const auto order = work.topo_order();
      for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const NodeId n = *it;
        if (!live[n]) continue;
        if (work.type(n) != GateType::Xor || work.fanins(n).size() != 2)
          continue;
        NodeId v = sole_live_fanout(n);
        if (v == Network::kNoNode) continue;
        // Walk up through single-fanout inverters/buffers.
        NodeId below = n;
        while (work.type(v) == GateType::Not || work.type(v) == GateType::Buf) {
          const NodeId next = sole_live_fanout(v);
          if (next == Network::kNoNode) break;
          below = v;
          v = next;
        }
        const GateType vt = work.type(v);
        if (vt != GateType::And && vt != GateType::Or && vt != GateType::Nand &&
            vt != GateType::Nor)
          continue;
        // Local observability condition: the side inputs must be
        // non-controlling for n's value to matter at v.
        const bool and_like = vt == GateType::And || vt == GateType::Nand;
        // Local analysis requires `below` to feed v exactly once.
        if (std::count(work.fanins(v).begin(), work.fanins(v).end(), below) != 1)
          continue;
        BddRef obs = mgr.bdd_true();
        for (const NodeId s : work.fanins(v)) {
          if (s == below) continue;
          obs = and_like ? mgr.bdd_and(obs, funcs.of(s))
                         : mgr.bdd_and(obs, mgr.bdd_not(funcs.of(s)));
        }
        if (obs == mgr.bdd_true()) continue; // nothing masked
        if (BddManager::is_invalid(obs)) continue; // undecidable: keep gate

        const NodeId g = work.fanins(n)[0];
        const NodeId h = work.fanins(n)[1];
        const BddRef fg = funcs.of(g);
        const BddRef fh = funcs.of(h);
        if (BddManager::is_invalid(fg) || BddManager::is_invalid(fh)) continue;
        uint8_t care = 0;
        for (unsigned idx = 0; idx < 4; ++idx) {
          ++stats.exact_checks;
          const BddRef eg = (idx & 2u) ? fg : mgr.bdd_not(fg);
          const BddRef eh = (idx & 1u) ? fh : mgr.bdd_not(fh);
          const BddRef pat = mgr.bdd_and(eg, eh);
          if (mgr.bdd_and(pat, obs) != mgr.bdd_false()) care |= (1u << idx);
        }
        if (care == 0b1111) continue;
        for (const auto& rep : kReplacements) {
          if (((rep.truth ^ kXorTruth) & care) != 0) continue;
          if (apply_replacement(work, n, rep.kind, g, h)) {
            ++stats.observability_reductions;
            changed = true;
            // The node's own function changed on masked patterns.
            funcs.invalidate(n);
          }
          break;
        }
        if (changed) break; // rebuild fanout structure before continuing
      }
    }
  }

  // ---- Step 4: first-level AND/OR fanin redundancy via OC/SA1 pattern
  // filtering plus exact confirmation.
  if (opt.and_fanin_pass) {
    const PatternSet sa_patterns =
        forms.empty()
            ? patterns
            : fprm_pattern_set(work.pi_count(), forms, /*include_sa1=*/true,
                               opt.max_patterns);

    // Cached good-simulation of `work`: each candidate rewrite below is a
    // single dirty node whose fanout cone is re-simulated incrementally —
    // the old code re-ran simulate() over the whole network per candidate.
    SimState sim(work, sa_patterns);
    const auto outputs_match_golden = [&](const Network& candidate) {
      funcs.invalidate(0);
      bool ok = true;
      for (std::size_t i = 0; i < candidate.po_count() && ok; ++i) {
        const BddRef fv = funcs.of(candidate.po(i));
        // An invalid (budget-tripped) function is never a match — accepting
        // a removal needs a positive proof of equality.
        ok = !BddManager::is_invalid(fv) && fv == golden[i];
      }
      return ok;
    };

    // Accepted removals preserve the PO values on every pattern (confirmed
    // exactly), so `base_po_values` stays valid across the whole pass.
    const auto base_po_values = sim.po_values();
    bool changed = true;
    int guard = 0;
    while (changed && guard++ < 4 && !out_of_budget()) {
      changed = false;
      const auto order = work.topo_order();
      for (auto it = order.rbegin(); it != order.rend() && !out_of_budget();
           ++it) {
        const NodeId n = *it;
        const GateType t = work.type(n);
        if (t != GateType::And && t != GateType::Or) continue;
        std::size_t k = 0;
        while (k < work.fanins(n).size() && work.fanins(n).size() >= 2) {
          if (out_of_budget()) break;
          // Dropping fanin k = stuck-at-noncontrolling (s-a-1 for AND,
          // s-a-0 for OR).
          const std::vector<NodeId> saved_fi = work.fanins(n);
          std::vector<NodeId> rest;
          for (std::size_t j = 0; j < saved_fi.size(); ++j)
            if (j != k) rest.push_back(saved_fi[j]);
          if (rest.size() == 1)
            work.rewrite_gate(n, GateType::Buf, {rest[0]});
          else
            work.rewrite_gate(n, t, rest);

          // Pattern filter: when the OC/SA1 set already distinguishes the
          // candidate, the fault is testable — skip the exact check.
          sim.resimulate(n);
          bool candidate_ok = sim.po_values_match(base_po_values);
          if (candidate_ok) {
            ++stats.exact_checks;
            candidate_ok = outputs_match_golden(work);
          } else {
            ++stats.pattern_pruned;
          }
          if (candidate_ok) {
            ++stats.fanins_removed;
            changed = true;
            if (work.type(n) != t) break; // became a buffer
            // Re-test the same position (a new fanin shifted into it).
          } else {
            work.rewrite_gate(n, t, saved_fi);
            sim.resimulate(n);
            funcs.invalidate(n);
            ++k;
          }
        }
      }
    }
    stats.sim.accumulate(sim.take_stats());
  }

  Network result = strash(work);

  // Final safety net: the whole procedure must be function-preserving.
  // Every accepted rewrite carries its own exact proof, so when the budget
  // is already spent the (governed) re-check may come back undecided —
  // that is not a failure.
  const auto check = check_equivalence(reference, result, 0xC0FFEE, gov);
  if (check.decided && !check.equivalent)
    throw std::logic_error("remove_xor_redundancy broke the network: " +
                           check.reason);

  // Post-transform XOR population for the stats.
  for (NodeId n = 0; n < result.node_count(); ++n)
    if (result.type(n) == GateType::Xor) ++stats.xor_gates_after;

  if (stats_out != nullptr) *stats_out = stats;
  return result;
}

} // namespace rmsyn
