// Section 4 — redundancy analysis of XOR gates.
//
// A 2-input XOR gate inside the factored network degenerates when one of its
// four input patterns can never occur (uncontrollable) or can never be seen
// at an output (unobservable):
//
//   missing (1,1) →  g + h        (Property 3)
//   missing (0,1) →  g · h̄        (Property 4)
//   missing (1,0) →  ḡ · h        (Property 4)
//   missing (0,0) →  (g·h)'       (not needed under the paper's assumptions
//                                  — Property 1 makes (0,0) controllable —
//                                  but handled for generality)
//
// The procedure follows the paper's structure:
//  1. Simulate the decidable PI pattern set derived from the FPRM cubes —
//     AZ (all literals 0), AO (all literals 1) and OC (one pattern per
//     cube) — and record which input patterns appear at each XOR gate.
//     Properties 8/9 guarantee this already pins down most gates as
//     irreducible, so no further work is spent on them.
//  2. For each XOR gate still missing a pattern, decide controllability
//     exactly (the paper's parity-of-cubes argument; here decided on the
//     node BDDs, which is the same decision procedure made explicit) and
//     reduce per Properties 3/4. These rewrites preserve every node
//     function — the pattern never occurs for any input.
//  3. Observability domino (Properties 5-7): reductions create AND/OR gates
//     with controlling values on the path to the POs; single-fanout XOR
//     gates feeding them through inverter chains are reduced when the
//     pattern is masked by the side inputs. Iterated to fixpoint, moving
//     from the POs toward the PIs.
//  4. First-level AND-gate fanin redundancy via the OC (s-a-0) and SA1
//     (one-bit-dropped) pattern sets: fanins whose stuck-at faults are
//     untestable are set to constants and eliminated. Fault-simulation on
//     the pattern sets filters candidates; each removal is confirmed
//     exactly before being applied.
#pragma once

#include <vector>

#include "fdd/fprm.hpp"
#include "network/network.hpp"
#include "network/simulate.hpp"
#include "sim/sim.hpp"
#include "util/governor.hpp"

namespace rmsyn {

struct RedundancyOptions {
  bool use_pattern_filter = true; ///< step 1 pruning (paper's fast path)
  bool observability_pass = true; ///< Properties 5-7
  bool and_fanin_pass = true;     ///< the SA1/OC stuck-at pass
  std::size_t max_patterns = std::size_t{1} << 16;
  std::size_t bdd_node_limit = 4'000'000;
  /// Budget for the exact (BDD) decisions. The pass stays sound under a
  /// trip: every rewrite needs an exact proof, so undecidable candidates
  /// are simply kept and the remaining gates are left untouched.
  ResourceGovernor* governor = nullptr;
};

struct RedundancyStats {
  std::size_t xor_gates_before = 0;
  std::size_t xor_gates_after = 0;
  std::size_t reduced_to_or = 0;      ///< Property 3
  std::size_t reduced_to_andnot = 0;  ///< Property 4 (either orientation)
  std::size_t reduced_to_nand = 0;    ///< the (0,0) generalization
  std::size_t observability_reductions = 0; ///< Properties 6/7
  std::size_t fanins_removed = 0;     ///< step 4
  std::size_t exact_checks = 0;       ///< BDD decisions performed
  std::size_t pattern_pruned = 0;     ///< XOR gates proven irreducible by
                                      ///< simulation alone (no exact check)
  /// Incremental-simulation counters (sim/sim.hpp): step 1's pattern
  /// recording and step 4's per-candidate dirty-region resims.
  SimStats sim;
};

/// Builds the paper's PI pattern sets from the FPRM forms of the outputs:
/// AZ, AO (per polarity vector), OC (one per cube) and, when
/// `include_sa1`, the SA1 set (each OC pattern with one cube literal
/// dropped). Patterns are capped at `max_patterns`.
PatternSet fprm_pattern_set(std::size_t num_pis,
                            const std::vector<FprmForm>& forms,
                            bool include_sa1, std::size_t max_patterns);

/// Runs the full Section-4 procedure and returns the reduced network.
/// `forms` are the per-output FPRM forms used to generate pattern sets
/// (may be empty: the pattern filter then uses random patterns).
Network remove_xor_redundancy(const Network& net,
                              const std::vector<FprmForm>& forms,
                              const RedundancyOptions& opt = {},
                              RedundancyStats* stats = nullptr);

} // namespace rmsyn
