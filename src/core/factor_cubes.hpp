// Factorization Method 1 — the cube method of Section 3.
//
// Takes the explicit FPRM cube list, divides the cubes into groups with
// disjoint support (step 2), recursively factors each group by the literal
// with the highest cube count — the "maximal common support" heuristic of
// step 3 realized as iterated application of Factorization rule
// (d) AB ⊕ AC ⊕ … = A(B ⊕ C ⊕ …) — applies Reduction rules
// (a) A ⊕ AB = A·B̄ and (b) AB ⊕ AC ⊕ ABC = A(B+C) where their shapes occur
// (step 4), and joins the group subnetworks with a balanced binary tree of
// XOR gates (step 5).
//
// The remaining reduction opportunities — in particular rule
// (c) AB ⊕ B̄ = A + B̄, whose trigger involves complements created by rule
// (a) — are discovered network-wide by the Section-4 redundancy-removal
// pass, exactly as the paper notes at the end of Section 4.
#pragma once

#include "core/xor_expr.hpp"
#include "fdd/fprm.hpp"
#include "network/network.hpp"

namespace rmsyn {

/// Builds a subnetwork computing the FPRM form inside `net`, with PIs
/// provided by `pi_nodes` (global variable id -> PI node). Returns the root.
NodeId factor_cubes(Network& net, const std::vector<NodeId>& pi_nodes,
                    const FprmForm& form);

} // namespace rmsyn
