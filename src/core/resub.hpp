// Multi-output merging. The paper factors each output separately and uses
// SIS `resub` to share logic between the per-output networks. We reproduce
// that with structural hashing plus BDD sweeping: nodes with identical (or
// complementary) global functions are merged onto one representative.
#pragma once

#include "network/network.hpp"
#include "sim/sim.hpp"
#include "util/governor.hpp"

namespace rmsyn {

struct ResubOptions {
  /// Skip the (exact) BDD sweep when the network's BDDs would exceed this
  /// many nodes; structural hashing alone is then used.
  std::size_t bdd_node_limit = 2'000'000;
  bool merge_complements = true;
  /// Simulation-signature screen (sim/sim.hpp): equal functions have equal
  /// signatures, so when no two live nodes collide (modulo complement) the
  /// exact sweep cannot merge anything and all BDD work is skipped. The
  /// result is bit-identical to the exact path either way.
  bool sim_prefilter = true;
  std::size_t prefilter_patterns = 1024;
  uint64_t prefilter_seed = 0x5EEDBA5E;
  /// Prefilter counters accumulated here when non-null.
  SimStats* sim_stats = nullptr;
  /// Budget for the BDD sweep; on a trip the sweep is abandoned and the
  /// structurally hashed network is returned (always equivalent).
  ResourceGovernor* governor = nullptr;
};

/// Returns an equivalent network with functionally identical nodes merged.
Network resub_merge(const Network& net, const ResubOptions& opt = {});

} // namespace rmsyn
