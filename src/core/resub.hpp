// Multi-output merging. The paper factors each output separately and uses
// SIS `resub` to share logic between the per-output networks. We reproduce
// that with structural hashing plus BDD sweeping: nodes with identical (or
// complementary) global functions are merged onto one representative.
#pragma once

#include "network/network.hpp"
#include "util/governor.hpp"

namespace rmsyn {

struct ResubOptions {
  /// Skip the (exact) BDD sweep when the network's BDDs would exceed this
  /// many nodes; structural hashing alone is then used.
  std::size_t bdd_node_limit = 2'000'000;
  bool merge_complements = true;
  /// Budget for the BDD sweep; on a trip the sweep is abandoned and the
  /// structurally hashed network is returned (always equivalent).
  ResourceGovernor* governor = nullptr;
};

/// Returns an equivalent network with functionally identical nodes merged.
Network resub_merge(const Network& net, const ResubOptions& opt = {});

} // namespace rmsyn
