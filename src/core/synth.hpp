// The complete synthesis flow of the paper (Sections 2-4):
//
//   spec → per-output ROBDD → polarity search → OFDD / FPRM cubes →
//   algebraic factorization (Method 1 or 2) → multi-output merge (resub) →
//   XOR redundancy removal → final network (+ internal verification).
//
// The input is any combinational specification given as a Network (two-level
// or multilevel — benchmark generators produce both); the flow re-derives
// the function via BDDs exactly as the paper derives OFDDs from the SIS BDD
// package, so the input form does not bias the result.
#pragma once

#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "core/redundancy.hpp"
#include "fdd/fprm.hpp"
#include "network/network.hpp"
#include "network/stats.hpp"
#include "obs/stage.hpp"
#include "rewrite/rewrite.hpp"
#include "util/governor.hpp"

namespace rmsyn {

enum class FactorMethod {
  Cubes, ///< Method 1: explicit cube factoring
  Ofdd,  ///< Method 2: network construction from the OFDD
  Best,  ///< run both per output, keep the smaller subnetwork
};

struct SynthOptions {
  FactorMethod method = FactorMethod::Best;
  PolarityOptions polarity;
  RedundancyOptions redundancy;
  bool run_redundancy_removal = true;
  bool run_resub = true;
  /// Explicit cube enumeration cap. Outputs whose FPRM exceeds it are
  /// factored with Method 2 only (the OFDD never enumerates cubes), and
  /// contribute only their enumerated prefix to the pattern sets.
  std::size_t cube_limit = std::size_t{1} << 17;
  /// Verify the result against the specification (the paper runs SIS
  /// `verify` on every circuit). Throws std::logic_error on mismatch.
  bool verify = true;
  /// Also try the spectrum-friendly PI order (see transform.hpp) in
  /// addition to the spec's natural order; off = natural order only
  /// (used by the ordering ablation).
  bool try_reach_order = true;
  /// Post-pass: DAG-aware cut rewriting against the NPN database
  /// (rewrite/rewrite.hpp, DESIGN.md §13). Best-of: the rewritten network
  /// is kept only when it strictly improves the paper cost, so enabling
  /// this can never worsen a circuit.
  bool run_rewrite = false;
  rw::RewriteOptions rewrite;
  /// Resource budget. On exhaustion the flow walks a degradation ladder
  /// instead of aborting: full polarity search → heuristic fixed polarity
  /// (PPRM, natural order) → Method 2 only → spec passthrough (failed).
  /// Each descent re-arms the governor with a fresh slice. Null = the
  /// exact pre-governor behavior.
  ResourceGovernor* governor = nullptr;
};

struct SynthReport {
  NetworkStats stats;
  double seconds = 0.0;
  std::vector<FprmForm> forms;      ///< per output (possibly truncated)
  std::vector<std::size_t> fprm_cube_counts; ///< per output
  RedundancyStats redundancy;
  std::size_t outputs_via_cubes = 0;
  std::size_t outputs_via_ofdd = 0;
  /// DD-kernel counters accumulated over every manager the flow created
  /// (one per candidate PI order).
  BddStats bdd;
  /// Incremental-simulation counters accumulated over the flow's resub
  /// prefilters and the redundancy pass (sim/sim.hpp).
  SimStats sim;
  /// Cut-rewriting post-pass counters (all-zero unless opt.run_rewrite).
  rw::RewriteStats rewrite;
  /// ok, degraded:<stage-of-first-trip>, or failed:<reason>. Always `ok`
  /// when no governor is attached.
  FlowStatus status;
  /// How many ladder descents the result consumed (0 = full flow).
  std::size_t ladder_descents = 0;
  /// Wall-clock per stage (polarity-search, ofdd-build, factor, ...);
  /// stage names match the governor's stage stack and the trace spans.
  StageBreakdown stages;
  /// Cooperative governor polls consumed (0 when no governor attached).
  uint64_t governor_polls = 0;
};

/// Runs the full flow. PI/PO order of the result matches the spec.
/// (The spectrum-friendly PI ordering it uses internally is available as
/// spectrum_friendly_pi_order() in network/transform.hpp.)
Network synthesize(const Network& spec, const SynthOptions& opt = {},
                   SynthReport* report = nullptr);

} // namespace rmsyn
