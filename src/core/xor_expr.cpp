#include "core/xor_expr.hpp"

#include <cassert>
#include <functional>
#include <numeric>

namespace rmsyn {

LiteralContext::LiteralContext(Network& net, const std::vector<NodeId>& pi_nodes,
                               const std::vector<int>& support,
                               const BitVec& polarity)
    : net_(&net) {
  lit_nodes_.reserve(support.size());
  for (const int v : support) {
    const NodeId pi = pi_nodes[static_cast<std::size_t>(v)];
    lit_nodes_.push_back(polarity.get(static_cast<std::size_t>(v))
                             ? pi
                             : net.add_not(pi));
  }
}

NodeId LiteralContext::build_cube(const BitVec& cube) {
  std::vector<NodeId> leaves;
  for (std::size_t i = cube.first_set(); i != BitVec::npos; i = cube.next_set(i + 1))
    leaves.push_back(lit_nodes_[i]);
  return balanced_gate_tree(*net_, GateType::And, std::move(leaves));
}

NodeId balanced_gate_tree(Network& net, GateType type, std::vector<NodeId> leaves) {
  if (leaves.empty())
    return type == GateType::And ? Network::kConst1 : Network::kConst0;
  while (leaves.size() > 1) {
    std::vector<NodeId> next;
    next.reserve((leaves.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < leaves.size(); i += 2)
      next.push_back(net.add_gate(type, {leaves[i], leaves[i + 1]}));
    if (leaves.size() % 2 == 1) next.push_back(leaves.back());
    leaves.swap(next);
  }
  return leaves[0];
}

std::vector<std::vector<std::size_t>> group_by_disjoint_support(
    const std::vector<BitVec>& cubes) {
  // Union-find over cube indices, joined through shared variables.
  std::vector<std::size_t> parent(cubes.size());
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  const std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  if (!cubes.empty()) {
    const std::size_t width = cubes[0].size();
    std::vector<std::size_t> owner(width, BitVec::npos);
    for (std::size_t i = 0; i < cubes.size(); ++i) {
      for (std::size_t b = cubes[i].first_set(); b != BitVec::npos;
           b = cubes[i].next_set(b + 1)) {
        if (owner[b] == BitVec::npos) owner[b] = i;
        else parent[find(i)] = find(owner[b]);
      }
    }
  }
  std::vector<std::vector<std::size_t>> groups;
  std::vector<std::size_t> root_to_group(cubes.size(), BitVec::npos);
  for (std::size_t i = 0; i < cubes.size(); ++i) {
    const std::size_t r = find(i);
    if (root_to_group[r] == BitVec::npos) {
      root_to_group[r] = groups.size();
      groups.emplace_back();
    }
    groups[root_to_group[r]].push_back(i);
  }
  return groups;
}

} // namespace rmsyn
