// Work-stealing thread pool — the repo's first concurrency layer.
//
// Design (substrate for the parallel synthesis scheduler, see DESIGN.md §8):
//  * Fixed worker threads created up front; no std::async, no thread churn.
//  * One deque per worker. The owner pushes and pops at the back (LIFO, for
//    locality of nested fan-outs); thieves steal *half* the queue from the
//    front (FIFO — the oldest, typically largest tasks migrate first).
//    External (non-worker) submitters go through a global injection queue
//    that workers drain before stealing.
//  * Lightweight futures: a Future<T> is a shared completion record; no
//    std::future, no allocation beyond the one shared state per task.
//  * Helping wait. ThreadPool::wait(fut) RUNS queued tasks while the future
//    is pending instead of blocking, so (a) a pool with zero worker threads
//    degenerates to exact serial execution on the caller, and (b) nested
//    fan-outs (a level-1 flow task fanning level-2 polarity chunks onto the
//    same pool) cannot deadlock: the waiter works the queue it waits on.
//  * Observability: per-worker tasks run, steal operations and tasks
//    stolen, busy/idle seconds, peak queue depth — aggregated into
//    SchedStats and printed by format_sched_summary next to the DD-kernel
//    summary block.
//
// Determinism contract: the pool itself imposes no ordering; determinism is
// the *callers'* responsibility and is achieved by reduction, not by
// scheduling — every parallel site in rmsyn reduces worker results in a
// canonical order ((cost, polarity-vector) lexicographic, row index, ...)
// so `--jobs N` output is bit-identical to serial. See sched/batch.hpp and
// the fan-outs in fdd/fprm.cpp, fdd/kfdd.cpp.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

namespace rmsyn {

/// Per-worker observability counters. The last slot of
/// SchedStats::per_worker belongs to external helper threads (a caller
/// inside ThreadPool::wait runs tasks too and is accounted separately).
struct WorkerStats {
  uint64_t tasks_run = 0;
  uint64_t steals = 0;         ///< successful steal operations (batches)
  uint64_t tasks_stolen = 0;   ///< tasks acquired by stealing
  uint64_t steal_attempts = 0; ///< victim probes, successful or not
  double busy_seconds = 0.0;   ///< time spent inside task bodies
  double idle_seconds = 0.0;   ///< time spent parked waiting for work
  std::size_t peak_queue_depth = 0;
};

/// Pool-wide scheduler statistics (see ThreadPool::stats).
struct SchedStats {
  int workers = 0; ///< worker threads (excludes the external helper slot)
  std::vector<WorkerStats> per_worker; ///< size workers+1; last = external

  uint64_t total_tasks() const;
  uint64_t total_steals() const;
  uint64_t total_tasks_stolen() const;
  double total_busy_seconds() const;
  double total_idle_seconds() const;
  std::size_t max_queue_depth() const;
  void accumulate(const SchedStats& o);
};

/// Multi-line human-readable block, printed beside
/// format_dd_kernel_summary by the CLI and bench harnesses.
std::string format_sched_summary(const SchedStats& s);

namespace sched_detail {
/// Shared completion record of one submitted task.
struct TaskCore {
  std::function<void()> body; ///< cleared after execution
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;

  bool ready() {
    std::lock_guard<std::mutex> lk(m);
    return done;
  }
  void finish(std::exception_ptr err) {
    {
      std::lock_guard<std::mutex> lk(m);
      done = true;
      error = std::move(err);
    }
    cv.notify_all();
  }
};
} // namespace sched_detail

/// Lightweight one-shot future; wait through ThreadPool::wait (helping) or
/// block with wait_blocking(). Movable and copyable (shared state).
template <typename T>
class Future {
public:
  Future() = default;
  bool valid() const { return core_ != nullptr; }
  bool ready() const { return core_ != nullptr && core_->ready(); }

  /// Blocks without helping; prefer ThreadPool::wait.
  void wait_blocking() {
    std::unique_lock<std::mutex> lk(core_->m);
    core_->cv.wait(lk, [&] { return core_->done; });
  }

  /// Moves the result out (rethrows the task's exception). The future must
  /// be done — i.e. after ThreadPool::wait/wait_blocking returned.
  T take() {
    if (core_->error) std::rethrow_exception(core_->error);
    return std::move(**value_);
  }

private:
  friend class ThreadPool;
  std::shared_ptr<sched_detail::TaskCore> core_;
  std::shared_ptr<std::optional<T>> value_;
};

class ThreadPool {
public:
  /// Spawns `workers` threads (0 is valid: every task then runs inside
  /// helping waits on the calling thread — exact serial execution).
  explicit ThreadPool(int workers);
  /// Joins the workers. All submitted futures must have been waited; tasks
  /// still queued at destruction are abandoned (their futures never
  /// complete).
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int worker_count() const { return static_cast<int>(workers_.size()); }
  /// Distinct execution slots: workers + the external helper slot. Useful
  /// for sizing per-slot scratch state (e.g. per-worker DD manager clones).
  int slot_count() const { return worker_count() + 1; }
  /// Slot of the calling thread: 0..workers-1 on a worker of THIS pool,
  /// slot_count()-1 (the external slot) on any other thread.
  int current_slot() const;

  /// Submits a callable; returns its future. Worker threads push onto
  /// their own deque (stolen by others when they fall idle); external
  /// threads go through the injection queue.
  template <typename F>
  auto submit(F&& fn) -> Future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    static_assert(!std::is_void_v<R>,
                  "submit a callable returning a value (use a bool for "
                  "pure-effect tasks)");
    Future<R> fut;
    fut.core_ = std::make_shared<sched_detail::TaskCore>();
    fut.value_ = std::make_shared<std::optional<R>>();
    auto core = fut.core_;
    auto value = fut.value_;
    core->body = [core, value, fn = std::forward<F>(fn)]() mutable {
      std::exception_ptr err;
      try {
        value->emplace(fn());
      } catch (...) {
        err = std::current_exception();
      }
      core->finish(std::move(err));
    };
    enqueue(core);
    return fut;
  }

  /// Helping wait: runs queued tasks while `fut` is pending, then moves the
  /// result out (rethrowing the task's exception).
  template <typename T>
  T wait(Future<T>& fut) {
    help_until(fut.core_.get());
    return fut.take();
  }

  /// Snapshot of the per-worker counters (consistent per worker; safe to
  /// call while the pool runs).
  SchedStats stats() const;

private:
  using TaskRef = std::shared_ptr<sched_detail::TaskCore>;

  struct Worker {
    mutable std::mutex m; ///< guards deque + stats
    std::deque<TaskRef> deque;
    WorkerStats stats;
    std::thread thread;
  };

  void enqueue(TaskRef t);
  void worker_main(int slot);
  void help_until(sched_detail::TaskCore* core);
  /// Own deque (workers only) → injection queue → steal-half. Returns null
  /// when no work is visible anywhere.
  TaskRef acquire(int slot);
  TaskRef steal_into(int thief_slot);
  void run_task(const TaskRef& t, int slot);
  void note_depth(int slot);

  std::vector<std::unique_ptr<Worker>> workers_;
  mutable std::mutex inject_m_; ///< guards injection queue + external stats
  std::deque<TaskRef> inject_;
  WorkerStats external_stats_;
  std::size_t peak_inject_depth_ = 0;

  std::mutex sleep_m_;
  std::condition_variable sleep_cv_;
  std::atomic<int64_t> pending_{0}; ///< queued-but-not-yet-acquired tasks
  std::atomic<bool> stop_{false};
};

} // namespace rmsyn
