#include "sched/batch.hpp"

#include <mutex>

#include "obs/trace.hpp"
#include "util/progress.hpp"
#include "util/stopwatch.hpp"

namespace rmsyn {

BatchRunner::BatchRunner(BatchOptions opt) : opt_(std::move(opt)) {}

FlowRow BatchRunner::cancelled_row(const Benchmark& bench) const {
  FlowRow row;
  row.circuit = bench.name;
  row.num_inputs = bench.num_inputs;
  row.num_outputs = bench.num_outputs;
  row.arithmetic = bench.arithmetic;
  row.exact_benchmark = bench.exact;
  row.ours_status = FlowStatus::failed("batch", "cancelled");
  row.base_status = FlowStatus::failed("batch", "cancelled");
  return row;
}

FlowRow BatchRunner::run_one(const Benchmark& bench, const FlowOptions& fopt) {
  if (budget_.cancelled() || budget_.past_deadline())
    return cancelled_row(bench);
  return run_flow(bench, fopt);
}

BatchResult BatchRunner::run(const std::vector<Benchmark>& benches) {
  RMSYN_SPAN("batch");
  if (ProgressBoard::active())
    ProgressBoard::instance().reset(benches.size());
  Stopwatch sw;
  BatchResult result;
  result.rows.resize(benches.size());

  if (opt_.batch_deadline_seconds > 0.0)
    budget_.set_deadline_in(opt_.batch_deadline_seconds);
  if (opt_.batch_allocation_budget > 0)
    budget_.set_allocation_pool(opt_.batch_allocation_budget);

  FlowOptions fopt = opt_.flow;
  fopt.limits.shared = &budget_;

  std::mutex settle_mu; // serializes on_row + worst aggregation
  const auto settle = [&](std::size_t i, FlowRow row) {
    std::lock_guard<std::mutex> lk(settle_mu);
    if (row.worst_status().is_failed() && !opt_.keep_going) budget_.cancel();
    result.rows[i] = std::move(row);
    if (ProgressBoard::active())
      ProgressBoard::instance().rows_done.fetch_add(
          1, std::memory_order_relaxed);
    if (on_row) on_row(result.rows[i], i);
  };

  if (opt_.jobs <= 1) {
    // Inline serial path: no pool, no level-2 fan-out — the reference
    // execution that any jobs value must reproduce bit-identically.
    for (std::size_t i = 0; i < benches.size(); ++i)
      settle(i, run_one(benches[i], fopt));
  } else {
    // jobs-1 worker threads; the calling thread helps, so total
    // parallelism is exactly `jobs`.
    ThreadPool pool(opt_.jobs - 1);
    if (opt_.inner_parallel) fopt.synth.polarity.pool = &pool;
    std::vector<Future<bool>> futures;
    futures.reserve(benches.size());
    for (std::size_t i = 0; i < benches.size(); ++i) {
      futures.push_back(pool.submit([this, &benches, &fopt, &settle, i] {
        settle(i, run_one(benches[i], fopt));
        return true;
      }));
    }
    for (auto& f : futures) pool.wait(f);
    result.sched = pool.stats();
  }

  for (const FlowRow& row : result.rows)
    result.worst = worse(result.worst, row.worst_status());
  result.seconds = sw.seconds();
  return result;
}

BatchResult run_flows(const std::vector<std::string>& names,
                      const FlowOptions& opt, int jobs, bool keep_going) {
  std::vector<Benchmark> benches;
  benches.reserve(names.size());
  for (const auto& n : names) benches.push_back(make_benchmark(n));
  BatchOptions bo;
  bo.flow = opt;
  bo.jobs = jobs;
  bo.keep_going = keep_going;
  BatchRunner runner(std::move(bo));
  return runner.run(benches);
}

} // namespace rmsyn
