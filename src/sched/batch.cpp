#include "sched/batch.hpp"

#include <mutex>
#include <optional>
#include <unordered_map>

#include "obs/trace.hpp"
#include "sched/journal.hpp"
#include "util/errors.hpp"
#include "util/progress.hpp"
#include "util/stopwatch.hpp"

namespace rmsyn {

namespace {

/// Deterministic exponential backoff in budget space: attempt k runs with
/// every finite per-flow limit scaled by 2^k. One-shot injected governor
/// faults are cleared — they already fired on the first attempt, and a
/// retry models "run again without the fault", not "hit it again".
ResourceLimits escalated_limits(ResourceLimits l, int attempt) {
  const int shift = attempt < 20 ? attempt : 20; // cap the growth factor
  if (l.deadline_seconds > 0.0)
    l.deadline_seconds *= static_cast<double>(1u << shift);
  if (l.node_limit != 0) {
    const std::size_t grown = l.node_limit << shift;
    l.node_limit = grown >> shift == l.node_limit ? grown : ~std::size_t{0};
  }
  if (l.step_limit != 0) {
    const uint64_t grown = l.step_limit << shift;
    l.step_limit = grown >> shift == l.step_limit ? grown : ~uint64_t{0};
  }
  l.faults = GovernorFaults{};
  return l;
}

} // namespace

BatchRunner::BatchRunner(BatchOptions opt) : opt_(std::move(opt)) {}

FlowRow BatchRunner::cancelled_row(const Benchmark& bench) const {
  FlowRow row;
  row.circuit = bench.name;
  row.num_inputs = bench.num_inputs;
  row.num_outputs = bench.num_outputs;
  row.arithmetic = bench.arithmetic;
  row.exact_benchmark = bench.exact;
  row.ours_status =
      FlowStatus::failed("batch", "cancelled", ErrorCode::Cancelled);
  row.base_status =
      FlowStatus::failed("batch", "cancelled", ErrorCode::Cancelled);
  return row;
}

FlowRow BatchRunner::run_one(const Benchmark& bench, const FlowOptions& fopt,
                             std::size_t* retries_used) {
  if (budget_.cancelled() || budget_.past_deadline())
    return cancelled_row(bench);
  FlowRow row = run_flow(bench, fopt);
  int attempt = 0;
  while (attempt < opt_.retries && row.worst_status().is_failed() &&
         is_retryable(row.worst_status().code) && !budget_.cancelled() &&
         !budget_.past_deadline()) {
    // Transient-retryable failure: re-run with an escalated budget slice.
    // Cancelled/past-deadline batches never retry — the shared budget
    // would trip the fresh governor immediately anyway.
    ++attempt;
    FlowOptions retry_opt = fopt;
    retry_opt.limits = escalated_limits(fopt.limits, attempt);
    row = run_flow(bench, retry_opt);
  }
  row.attempts = attempt + 1;
  if (retries_used != nullptr) *retries_used += static_cast<std::size_t>(attempt);
  return row;
}

BatchResult BatchRunner::run(const std::vector<Benchmark>& benches) {
  RMSYN_SPAN("batch");
  if (ProgressBoard::active())
    ProgressBoard::instance().reset(benches.size());
  Stopwatch sw;
  BatchResult result;
  result.rows.resize(benches.size());

  if (opt_.batch_deadline_seconds > 0.0)
    budget_.set_deadline_in(opt_.batch_deadline_seconds);
  if (opt_.batch_allocation_budget > 0)
    budget_.set_allocation_pool(opt_.batch_allocation_budget);

  FlowOptions fopt = opt_.flow;
  fopt.limits.shared = &budget_;

  // Checkpoint/resume digests: computed once per run, before any flow
  // starts, so every worker journal-stamps rows identically.
  const bool journaling = !opt_.journal_path.empty();
  uint64_t options_digest = 0;
  std::vector<uint64_t> input_digests;
  if (journaling) {
    options_digest = journal_options_digest(opt_.flow);
    input_digests.resize(benches.size());
    for (std::size_t i = 0; i < benches.size(); ++i)
      input_digests[i] = journal_input_digest(benches[i]);
  }

  // Resume: splice matching completed journal rows, re-run the rest. Read
  // BEFORE opening the append handle so a same-path resume sees the prior
  // run's records, not an empty freshly-created file.
  std::vector<std::optional<FlowRow>> replayed(benches.size());
  if (journaling && opt_.resume) {
    JournalContents jc;
    try {
      jc = read_journal(opt_.journal_path);
    } catch (const RmsynError&) {
      // No journal yet: a resume of a run that never started is a fresh run.
    }
    result.journal_skipped_lines = jc.skipped_lines;
    std::unordered_map<std::string, const JournalRecord*> last;
    for (const JournalRecord& rec : jc.records) last[rec.circuit] = &rec;
    for (std::size_t i = 0; i < benches.size(); ++i) {
      const auto it = last.find(benches[i].name);
      if (it == last.end()) continue;
      const JournalRecord& rec = *it->second;
      // Replay only rows this manifest would reproduce: same input bytes,
      // same result-affecting options, and a completed (not failed /
      // cancelled) outcome. Everything else re-runs.
      if (rec.input_digest != input_digests[i] ||
          rec.options_digest != options_digest || rec.status == "failed")
        continue;
      replayed[i] = rec.row;
    }
  }

  BatchJournal journal;
  if (journaling && !journal.open(opt_.journal_path)) ++result.journal_errors;

  std::mutex settle_mu; // serializes on_row + worst aggregation + journal
  const auto settle = [&](std::size_t i, FlowRow row, bool journal_row) {
    std::lock_guard<std::mutex> lk(settle_mu);
    if (row.worst_status().is_failed() && !opt_.keep_going) budget_.cancel();
    result.rows[i] = std::move(row);
    if (journal_row && journal.is_open() &&
        !journal.append(benches[i].name, input_digests[i], options_digest,
                        result.rows[i]))
      ++result.journal_errors;
    if (ProgressBoard::active())
      ProgressBoard::instance().rows_done.fetch_add(
          1, std::memory_order_relaxed);
    if (on_row) on_row(result.rows[i], i);
  };

  if (opt_.jobs <= 1) {
    // Inline serial path: no pool, no level-2 fan-out — the reference
    // execution that any jobs value must reproduce bit-identically.
    for (std::size_t i = 0; i < benches.size(); ++i) {
      if (replayed[i].has_value()) {
        ++result.rows_replayed;
        settle(i, std::move(*replayed[i]), /*journal_row=*/false);
      } else {
        settle(i, run_one(benches[i], fopt, &result.retries_used),
               /*journal_row=*/true);
      }
    }
  } else {
    // jobs-1 worker threads; the calling thread helps, so total
    // parallelism is exactly `jobs`.
    ThreadPool pool(opt_.jobs - 1);
    if (opt_.inner_parallel) fopt.synth.polarity.pool = &pool;
    std::mutex retries_mu;
    std::vector<Future<bool>> futures;
    futures.reserve(benches.size());
    for (std::size_t i = 0; i < benches.size(); ++i) {
      if (replayed[i].has_value()) {
        ++result.rows_replayed;
        settle(i, std::move(*replayed[i]), /*journal_row=*/false);
        continue;
      }
      futures.push_back(pool.submit(
          [this, &benches, &fopt, &settle, &retries_mu, &result, i] {
            std::size_t used = 0;
            FlowRow row = run_one(benches[i], fopt, &used);
            if (used != 0) {
              std::lock_guard<std::mutex> lk(retries_mu);
              result.retries_used += used;
            }
            settle(i, std::move(row), /*journal_row=*/true);
            return true;
          }));
    }
    for (auto& f : futures) pool.wait(f);
    result.sched = pool.stats();
  }

  for (const FlowRow& row : result.rows)
    result.worst = worse(result.worst, row.worst_status());
  result.seconds = sw.seconds();
  return result;
}

BatchResult run_flows(const std::vector<std::string>& names,
                      const FlowOptions& opt, int jobs, bool keep_going) {
  std::vector<Benchmark> benches;
  benches.reserve(names.size());
  for (const auto& n : names) benches.push_back(make_benchmark(n));
  BatchOptions bo;
  bo.flow = opt;
  bo.jobs = jobs;
  bo.keep_going = keep_going;
  BatchRunner runner(std::move(bo));
  return runner.run(benches);
}

} // namespace rmsyn
