// Checkpoint/resume journal for crash-safe batch execution (DESIGN.md §12).
//
// `batch --journal FILE` appends one fsync'd JSONL record per settled row:
//
//   {"v":1,"circuit":"rd53","input_digest":"<16 hex>",
//    "options_digest":"<16 hex>","status":"ok","row":{...flow_row_json...}}
//
// The append is atomic at the line level on POSIX (single write of a line
// <= PIPE_BUF would be, but we do not rely on that — a torn trailing line
// is simply skipped by the reader), and each record is flushed + fsync'd
// before append() returns, so a SIGKILL at any instant loses at most the
// row that was being written.
//
// `batch --resume FILE` reads the journal back and replays every record
// whose (circuit, input_digest, options_digest) triple matches the current
// manifest AND whose status is not failed — matching completed rows are
// spliced into the report without re-running the flow; failed/cancelled
// rows and rows the journal never saw are re-run. Duplicate records for
// one circuit resolve last-wins (a resumed run re-appends the rows it
// re-ran).
//
// Journal I/O failures are transient by taxonomy (ErrorCode::IoTransient)
// and never abort the batch: the runner counts them, disables further
// journaling for the run, and carries on computing rows.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "flow/flow.hpp"

namespace rmsyn {

struct Benchmark;
struct FlowOptions;

/// FNV-1a 64-bit over a byte string — the journal's digest primitive.
uint64_t fnv1a64(const std::string& bytes);

/// Digest of a benchmark's specification network (its BLIF dump): detects
/// a changed input file or generator between the journaled run and the
/// resume, so stale rows are re-run instead of replayed.
uint64_t journal_input_digest(const Benchmark& bench);

/// Digest of every FlowOptions field that can change a row's result
/// columns (synthesis/baseline/power knobs and per-flow budget limits).
/// Wall-clock-only settings (jobs, batch deadline) are deliberately
/// excluded: they never change row content under the determinism contract.
uint64_t journal_options_digest(const FlowOptions& opt);

/// One parsed journal record.
struct JournalRecord {
  std::string circuit;
  uint64_t input_digest = 0;
  uint64_t options_digest = 0;
  std::string status; ///< "ok" | "degraded" | "failed"
  FlowRow row;        ///< reconstructed via flow_row_from_json
};

/// Journal file contents, in file order. Malformed or torn lines (the
/// SIGKILL tail) are counted, not fatal.
struct JournalContents {
  std::vector<JournalRecord> records;
  std::size_t skipped_lines = 0;
};

/// Reads a journal written by BatchJournal. Throws RmsynError(ParseError)
/// only when the file cannot be opened at all; any malformed line inside
/// is skipped and counted.
JournalContents read_journal(const std::string& path);

/// Append-side handle. Not thread-safe by itself — the batch runner calls
/// append() under its settle mutex.
class BatchJournal {
public:
  BatchJournal() = default;
  ~BatchJournal();
  BatchJournal(const BatchJournal&) = delete;
  BatchJournal& operator=(const BatchJournal&) = delete;

  /// Opens (creating or appending). Returns false on failure.
  bool open(const std::string& path);

  /// Serializes and durably appends one record (fflush + fsync). Returns
  /// false on any write/sync failure — including the FaultPlan's
  /// journal-write injection point — after which the journal closes itself
  /// and every further append() fails fast.
  bool append(const std::string& circuit, uint64_t input_digest,
              uint64_t options_digest, const FlowRow& row);

  bool is_open() const { return f_ != nullptr; }
  void close();

private:
  std::FILE* f_ = nullptr;
};

} // namespace rmsyn
