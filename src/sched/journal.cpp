#include "sched/journal.hpp"

#include <cerrno>
#include <fstream>
#include <sstream>

#include "benchgen/spec.hpp"
#include "network/network.hpp"
#include "obs/json.hpp"
#include "util/errors.hpp"
#include "util/faultplan.hpp"

#if defined(_WIN32)
#include <io.h>
#define rmsyn_fileno _fileno
#define rmsyn_fsync _commit
#else
#include <unistd.h>
#define rmsyn_fileno fileno
#define rmsyn_fsync fsync
#endif

namespace rmsyn {

uint64_t fnv1a64(const std::string& bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

std::string hex16(uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i, v >>= 4) s[i] = digits[v & 0xF];
  return s;
}

/// Inverse of hex16; returns false on any non-hex character or bad length.
bool parse_hex16(const std::string& s, uint64_t* out) {
  if (s.size() != 16) return false;
  uint64_t v = 0;
  for (const char c : s) {
    uint64_t d = 0;
    if (c >= '0' && c <= '9') d = static_cast<uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') d = static_cast<uint64_t>(c - 'a') + 10;
    else if (c >= 'A' && c <= 'F') d = static_cast<uint64_t>(c - 'A') + 10;
    else return false;
    v = (v << 4) | d;
  }
  *out = v;
  return true;
}

} // namespace

uint64_t journal_input_digest(const Benchmark& bench) {
  // Structural digest of the spec network: name, PI/PO counts, and every
  // live node's (id, type, fanins) plus the PO list. Deliberately not a
  // BLIF round-trip — write_blif rejects wide XOR gates (the parity and
  // xor10 specs carry them), and a flat walk is cheaper than serializing.
  const Network& net = bench.spec;
  uint64_t h = fnv1a64(bench.name);
  const auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i, v >>= 8) {
      h ^= v & 0xFF;
      h *= 0x100000001b3ull;
    }
  };
  mix(net.pi_count());
  mix(net.po_count());
  for (NodeId n = 0; n < net.node_count(); ++n) {
    if (net.is_dead(n)) continue;
    mix(n);
    mix(static_cast<uint64_t>(net.type(n)));
    for (const NodeId f : net.fanins(n)) mix(f);
  }
  for (const NodeId po : net.pos()) mix(po);
  return h;
}

uint64_t journal_options_digest(const FlowOptions& opt) {
  // Canonical key=value line, one entry per result-affecting knob. Adding
  // a knob here invalidates old journals for runs that change it — that is
  // the point.
  std::ostringstream ss;
  ss << "v=1"
     << ";synth.method=" << static_cast<int>(opt.synth.method)
     << ";synth.redundancy=" << opt.synth.run_redundancy_removal
     << ";synth.resub=" << opt.synth.run_resub
     << ";synth.cube_limit=" << opt.synth.cube_limit
     << ";synth.verify=" << opt.synth.verify
     << ";synth.reach=" << opt.synth.try_reach_order
     << ";synth.pol.exh=" << opt.synth.polarity.exhaustive_limit
     << ";synth.pol.greedy=" << opt.synth.polarity.greedy_passes
     << ";synth.red.filter=" << opt.synth.redundancy.use_pattern_filter
     << ";synth.red.obs=" << opt.synth.redundancy.observability_pass
     << ";synth.red.fanin=" << opt.synth.redundancy.and_fanin_pass
     << ";synth.red.patterns=" << opt.synth.redundancy.max_patterns
     << ";synth.red.bddcap=" << opt.synth.redundancy.bdd_node_limit
     << ";base.redundancy=" << opt.baseline.run_redundancy_removal
     << ";base.elim=" << opt.baseline.eliminate_value
     << ";base.extract=" << opt.baseline.extract_rounds
     << ";base.verify=" << opt.baseline.verify
     << ";base.flatten=" << opt.baseline.flatten_to_two_level
     << ";base.cubecap=" << opt.baseline.flatten_cube_cap
     << ";map=" << opt.run_mapping
     << ";power=" << opt.run_power
     << ";power.exact=" << opt.power.exact
     << ";power.bddcap=" << opt.power.bdd_node_limit
     << ";power.patterns=" << opt.power.sim_patterns
     << ";power.seed=" << opt.power.sim_seed
     << ";limits.deadline=" << opt.limits.deadline_seconds
     << ";limits.nodes=" << opt.limits.node_limit
     << ";limits.steps=" << opt.limits.step_limit;
  return fnv1a64(ss.str());
}

// --- append side -------------------------------------------------------------

BatchJournal::~BatchJournal() { close(); }

void BatchJournal::close() {
  if (f_ != nullptr) {
    std::fclose(f_);
    f_ = nullptr;
  }
}

bool BatchJournal::open(const std::string& path) {
  close();
  f_ = std::fopen(path.c_str(), "ab");
  return f_ != nullptr;
}

bool BatchJournal::append(const std::string& circuit, uint64_t input_digest,
                          uint64_t options_digest, const FlowRow& row) {
  if (f_ == nullptr) return false;
  if (fault_journal_append()) {
    // Injected journal-write failure: behave exactly like a real one.
    close();
    return false;
  }
  obs::Json j = obs::Json::object();
  j["v"] = 1;
  j["circuit"] = circuit;
  j["input_digest"] = hex16(input_digest);
  j["options_digest"] = hex16(options_digest);
  const FlowStatus& worst = row.worst_status();
  j["status"] = worst.is_failed() ? "failed"
                                  : (worst.is_degraded() ? "degraded" : "ok");
  j["row"] = flow_row_json(row);
  const std::string line = j.dump() + "\n";
  if (std::fwrite(line.data(), 1, line.size(), f_) != line.size() ||
      std::fflush(f_) != 0 || rmsyn_fsync(rmsyn_fileno(f_)) != 0) {
    close();
    return false;
  }
  return true;
}

// --- read side ---------------------------------------------------------------

JournalContents read_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw RmsynError(ErrorCode::ParseError,
                     "read_journal: cannot open " + path);
  JournalContents out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      const obs::Json j = obs::Json::parse(line);
      if (!j.is_object() || !j.contains("circuit") ||
          !j.contains("input_digest") || !j.contains("options_digest") ||
          !j.contains("row")) {
        ++out.skipped_lines;
        continue;
      }
      JournalRecord rec;
      rec.circuit = j.get("circuit").as_string();
      if (!parse_hex16(j.get("input_digest").as_string(), &rec.input_digest) ||
          !parse_hex16(j.get("options_digest").as_string(),
                       &rec.options_digest)) {
        ++out.skipped_lines;
        continue;
      }
      rec.status = j.contains("status") ? j.get("status").as_string() : "ok";
      rec.row = flow_row_from_json(j.get("row"));
      out.records.push_back(std::move(rec));
    } catch (const std::exception&) {
      // Torn tail after SIGKILL, or plain corruption: skip, never fail.
      ++out.skipped_lines;
    }
  }
  return out;
}

} // namespace rmsyn
