#include "sched/pool.hpp"

#include "obs/metrics.hpp"

#include <chrono>
#include <cstdio>

namespace rmsyn {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Which pool (if any) the current thread is a worker of, and its slot.
struct SlotTag {
  const ThreadPool* pool = nullptr;
  int slot = -1;
};
thread_local SlotTag tls_slot;

} // namespace

// --- SchedStats -------------------------------------------------------------

uint64_t SchedStats::total_tasks() const {
  uint64_t n = 0;
  for (const auto& w : per_worker) n += w.tasks_run;
  return n;
}
uint64_t SchedStats::total_steals() const {
  uint64_t n = 0;
  for (const auto& w : per_worker) n += w.steals;
  return n;
}
uint64_t SchedStats::total_tasks_stolen() const {
  uint64_t n = 0;
  for (const auto& w : per_worker) n += w.tasks_stolen;
  return n;
}
double SchedStats::total_busy_seconds() const {
  double s = 0;
  for (const auto& w : per_worker) s += w.busy_seconds;
  return s;
}
double SchedStats::total_idle_seconds() const {
  double s = 0;
  for (const auto& w : per_worker) s += w.idle_seconds;
  return s;
}
std::size_t SchedStats::max_queue_depth() const {
  std::size_t d = 0;
  for (const auto& w : per_worker)
    if (w.peak_queue_depth > d) d = w.peak_queue_depth;
  return d;
}

void SchedStats::accumulate(const SchedStats& o) {
  if (o.workers > workers) workers = o.workers;
  if (per_worker.size() < o.per_worker.size())
    per_worker.resize(o.per_worker.size());
  for (std::size_t i = 0; i < o.per_worker.size(); ++i) {
    const WorkerStats& a = o.per_worker[i];
    WorkerStats& b = per_worker[i];
    b.tasks_run += a.tasks_run;
    b.steals += a.steals;
    b.tasks_stolen += a.tasks_stolen;
    b.steal_attempts += a.steal_attempts;
    b.busy_seconds += a.busy_seconds;
    b.idle_seconds += a.idle_seconds;
    if (a.peak_queue_depth > b.peak_queue_depth)
      b.peak_queue_depth = a.peak_queue_depth;
  }
}

std::string format_sched_summary(const SchedStats& s) {
  // Thin wrapper over the obs metrics registry (the dedup point for every
  // summary printer): absorb the stats, render the sched.* group.
  obs::MetricsRegistry m;
  m.absorb_sched(s);
  return obs::format_metrics_summary(m);
}

// --- ThreadPool -------------------------------------------------------------

ThreadPool::ThreadPool(int workers) {
  if (workers < 0) workers = 0;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    workers_.push_back(std::make_unique<Worker>());
  for (int i = 0; i < workers; ++i)
    workers_[static_cast<std::size_t>(i)]->thread =
        std::thread([this, i] { worker_main(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(sleep_m_);
    stop_.store(true, std::memory_order_relaxed);
  }
  sleep_cv_.notify_all();
  for (auto& w : workers_)
    if (w->thread.joinable()) w->thread.join();
}

int ThreadPool::current_slot() const {
  return tls_slot.pool == this ? tls_slot.slot : worker_count();
}

void ThreadPool::note_depth(int slot) {
  // Caller holds the corresponding mutex.
  if (slot < worker_count()) {
    Worker& w = *workers_[static_cast<std::size_t>(slot)];
    if (w.deque.size() > w.stats.peak_queue_depth)
      w.stats.peak_queue_depth = w.deque.size();
  } else if (inject_.size() > peak_inject_depth_) {
    peak_inject_depth_ = inject_.size();
  }
}

void ThreadPool::enqueue(TaskRef t) {
  const int slot = current_slot();
  if (slot < worker_count()) {
    Worker& w = *workers_[static_cast<std::size_t>(slot)];
    std::lock_guard<std::mutex> lk(w.m);
    w.deque.push_back(std::move(t));
    note_depth(slot);
  } else {
    std::lock_guard<std::mutex> lk(inject_m_);
    inject_.push_back(std::move(t));
    note_depth(slot);
  }
  pending_.fetch_add(1, std::memory_order_relaxed);
  sleep_cv_.notify_one();
}

ThreadPool::TaskRef ThreadPool::steal_into(int thief_slot) {
  const int n = worker_count();
  WorkerStats* tstats = nullptr;
  // Deterministic round-robin victim scan starting after the thief; the
  // pool needs no RNG (and stays reproducible to profile).
  for (int k = 0; k < n; ++k) {
    const int victim = (thief_slot + 1 + k) % (n == 0 ? 1 : n);
    if (victim == thief_slot || victim >= n) continue;
    Worker& v = *workers_[static_cast<std::size_t>(victim)];
    std::vector<TaskRef> loot;
    {
      std::lock_guard<std::mutex> lk(v.m);
      const std::size_t have = v.deque.size();
      if (have > 0) {
        // Steal half (at least one), oldest first.
        const std::size_t take = (have + 1) / 2;
        for (std::size_t i = 0; i < take; ++i) {
          loot.push_back(std::move(v.deque.front()));
          v.deque.pop_front();
        }
      }
    }
    // Attribute the probe/steal to the thief.
    if (thief_slot < n) {
      Worker& t = *workers_[static_cast<std::size_t>(thief_slot)];
      std::lock_guard<std::mutex> lk(t.m);
      tstats = &t.stats;
      ++tstats->steal_attempts;
      if (!loot.empty()) {
        ++tstats->steals;
        tstats->tasks_stolen += loot.size();
        // First stolen task runs now; the rest join the thief's deque.
        for (std::size_t i = 1; i < loot.size(); ++i)
          t.deque.push_back(std::move(loot[i]));
        note_depth(thief_slot);
      }
    } else {
      std::lock_guard<std::mutex> lk(inject_m_);
      ++external_stats_.steal_attempts;
      if (!loot.empty()) {
        ++external_stats_.steals;
        external_stats_.tasks_stolen += loot.size();
        for (std::size_t i = 1; i < loot.size(); ++i)
          inject_.push_back(std::move(loot[i]));
        note_depth(worker_count());
      }
    }
    if (!loot.empty()) return std::move(loot[0]);
  }
  return nullptr;
}

ThreadPool::TaskRef ThreadPool::acquire(int slot) {
  // 1. Own deque, newest first (locality for nested fan-outs).
  if (slot < worker_count()) {
    Worker& w = *workers_[static_cast<std::size_t>(slot)];
    std::lock_guard<std::mutex> lk(w.m);
    if (!w.deque.empty()) {
      TaskRef t = std::move(w.deque.back());
      w.deque.pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return t;
    }
  }
  // 2. Injection queue, oldest first.
  {
    std::lock_guard<std::mutex> lk(inject_m_);
    if (!inject_.empty()) {
      TaskRef t = std::move(inject_.front());
      inject_.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return t;
    }
  }
  // 3. Steal half of someone else's deque.
  if (TaskRef t = steal_into(slot)) {
    pending_.fetch_sub(1, std::memory_order_relaxed);
    return t;
  }
  return nullptr;
}

void ThreadPool::run_task(const TaskRef& t, int slot) {
  const auto t0 = Clock::now();
  t->body();
  t->body = nullptr; // release captures promptly
  const double busy = seconds_since(t0);
  if (slot < worker_count()) {
    Worker& w = *workers_[static_cast<std::size_t>(slot)];
    std::lock_guard<std::mutex> lk(w.m);
    ++w.stats.tasks_run;
    w.stats.busy_seconds += busy;
  } else {
    std::lock_guard<std::mutex> lk(inject_m_);
    ++external_stats_.tasks_run;
    external_stats_.busy_seconds += busy;
  }
}

void ThreadPool::worker_main(int slot) {
  tls_slot = SlotTag{this, slot};
  for (;;) {
    if (TaskRef t = acquire(slot)) {
      run_task(t, slot);
      continue;
    }
    std::unique_lock<std::mutex> lk(sleep_m_);
    if (stop_.load(std::memory_order_relaxed)) return;
    const auto t0 = Clock::now();
    sleep_cv_.wait(lk, [&] {
      return stop_.load(std::memory_order_relaxed) ||
             pending_.load(std::memory_order_relaxed) > 0;
    });
    const double idle = seconds_since(t0);
    lk.unlock();
    {
      Worker& w = *workers_[static_cast<std::size_t>(slot)];
      std::lock_guard<std::mutex> slk(w.m);
      w.stats.idle_seconds += idle;
    }
    if (stop_.load(std::memory_order_relaxed)) return;
  }
}

void ThreadPool::help_until(sched_detail::TaskCore* core) {
  const int slot = current_slot();
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(core->m);
      if (core->done) return;
    }
    if (TaskRef t = acquire(slot)) {
      run_task(t, slot);
      continue;
    }
    // Nothing runnable here; park briefly on the future. The timed wait
    // re-scans the queues so work submitted by *other* threads (which
    // notifies sleep_cv_, not this future) is picked up promptly.
    std::unique_lock<std::mutex> lk(core->m);
    core->cv.wait_for(lk, std::chrono::microseconds(200),
                      [&] { return core->done; });
  }
}

SchedStats ThreadPool::stats() const {
  SchedStats s;
  s.workers = worker_count();
  s.per_worker.resize(static_cast<std::size_t>(slot_count()));
  for (int i = 0; i < worker_count(); ++i) {
    const Worker& w = *workers_[static_cast<std::size_t>(i)];
    std::lock_guard<std::mutex> lk(w.m);
    s.per_worker[static_cast<std::size_t>(i)] = w.stats;
  }
  {
    std::lock_guard<std::mutex> lk(inject_m_);
    WorkerStats ext = external_stats_;
    ext.peak_queue_depth = peak_inject_depth_;
    s.per_worker.back() = ext;
  }
  return s;
}

} // namespace rmsyn
