// Batch serving layer: runs many independent synthesis flows over one
// work-stealing pool (level-1 parallelism, across circuits) and optionally
// hands the same pool to the in-flow polarity/KFDD candidate search
// (level-2 parallelism, within a circuit; see fdd/fprm.hpp).
//
// Determinism contract (DESIGN.md §8): with an untripped budget, the rows
// returned by run() are bit-identical for every jobs value — each flow owns
// its DD managers, its governor slice, and its power-estimator RNG seed
// (derived from the circuit name, not from scheduling order), and every
// parallel reduction inside the flow is ordered canonically. Wall-clock
// columns (seconds) and DD/scheduler counters are the only fields that may
// differ between runs.
//
// Budget sharing: every per-flow governor is attached to one SharedBudget,
// so cancel() (or a failed row under keep_going=false), the batch deadline,
// and the batch-wide DD-allocation pool broadcast to all workers; flows
// already running degrade through their ladder, flows not yet started
// return immediately as "failed:cancelled" rows with their columns zeroed.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "benchgen/spec.hpp"
#include "flow/flow.hpp"
#include "sched/pool.hpp"
#include "util/governor.hpp"

namespace rmsyn {

struct BatchOptions {
  /// Per-flow options; limits apply per flow (fresh governor each), as in
  /// serial table2. The runner injects the shared budget and, when
  /// inner_parallel is set, the pool for the level-2 candidate search.
  FlowOptions flow;
  /// Total parallelism (worker threads + the calling thread, which helps).
  /// <= 1 runs inline on the calling thread with no pool — the exact
  /// serial code path.
  int jobs = 1;
  /// false: the first failed row cancels every not-yet-finished row.
  bool keep_going = true;
  /// Hand the pool to the in-flow polarity/KFDD search (level 2).
  bool inner_parallel = true;
  /// Wall-clock budget for the WHOLE batch (0 = off); broadcast through
  /// the shared budget, unlike flow.limits.deadline_seconds which is
  /// per-flow slice.
  double batch_deadline_seconds = 0.0;
  /// DD-node allocation budget for the WHOLE batch (0 = off); workers
  /// carve SharedBudget::kAllocationGrain-sized slices from it.
  uint64_t batch_allocation_budget = 0;
  /// Extra attempts for rows that fail with a transient-retryable code
  /// (util/errors.hpp). Each retry re-runs the flow with the per-flow
  /// budget limits escalated x2 per attempt (deterministic exponential
  /// backoff in budget space, not wall-clock sleeping) and one-shot
  /// injected governor faults cleared. Rows whose first attempt succeeds
  /// are bit-identical to a --retries 0 run.
  int retries = 0;
  /// Append one fsync'd JSONL checkpoint record per settled row (see
  /// sched/journal.hpp). Empty = journaling off. Journal write failures
  /// never abort the batch: journaling is disabled and counted.
  std::string journal_path;
  /// Read journal_path before running and splice every matching completed
  /// (ok/degraded) record into the result without re-running it; failed,
  /// cancelled, digest-mismatched and missing rows are re-run (and
  /// re-journaled). A missing journal file is a fresh run, not an error.
  bool resume = false;
};

struct BatchResult {
  std::vector<FlowRow> rows; ///< same order as the input benchmarks
  SchedStats sched;          ///< empty (workers=0) when jobs <= 1
  FlowStatus worst;          ///< most severe worst_status() over the rows
  double seconds = 0.0;      ///< wall clock for the whole batch
  std::size_t rows_replayed = 0;  ///< rows spliced from the resume journal
  std::size_t retries_used = 0;   ///< total extra attempts across all rows
  std::size_t journal_errors = 0; ///< failed journal appends (then disabled)
  std::size_t journal_skipped_lines = 0; ///< torn/corrupt lines on resume
};

class BatchRunner {
public:
  explicit BatchRunner(BatchOptions opt = {});

  /// Runs every benchmark through run_flow. Blocks until all rows are
  /// settled (completed or cancelled). Reentrant per runner: one run() at
  /// a time.
  BatchResult run(const std::vector<Benchmark>& benches);

  /// Thread-safe; also callable from on_row. Not-yet-started rows return
  /// as failed:cancelled, running flows trip their governors cooperatively.
  void cancel() { budget_.cancel(); }

  /// Invoked (serialized) as each row settles, with the row and its input
  /// index — batch progress reporting hooks into this.
  std::function<void(const FlowRow&, std::size_t)> on_row;

private:
  FlowRow run_one(const Benchmark& bench, const FlowOptions& fopt,
                  std::size_t* retries_used);
  FlowRow cancelled_row(const Benchmark& bench) const;

  BatchOptions opt_;
  SharedBudget budget_;
};

/// Convenience wrapper matching the CLI: builds the named benchmarks and
/// runs them at the given parallelism.
BatchResult run_flows(const std::vector<std::string>& names,
                      const FlowOptions& opt, int jobs,
                      bool keep_going = true);

} // namespace rmsyn
