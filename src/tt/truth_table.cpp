#include "tt/truth_table.hpp"

#include <cassert>
#include <stdexcept>

namespace rmsyn {

namespace {
constexpr int kMaxVars = 26; // 64 Mi minterms; beyond this use BDDs.
}

TruthTable::TruthTable(int nvars) : nvars_(nvars) {
  if (nvars < 0 || nvars > kMaxVars)
    throw std::invalid_argument("TruthTable: variable count out of range");
  bits_ = BitVec(uint64_t{1} << nvars);
}

TruthTable TruthTable::from_function(int nvars, const std::function<bool(uint64_t)>& fn) {
  TruthTable t(nvars);
  for (uint64_t m = 0; m < t.size(); ++m)
    if (fn(m)) t.bits_.set(m);
  return t;
}

TruthTable TruthTable::variable(int nvars, int var) {
  assert(var >= 0 && var < nvars);
  return from_function(nvars, [var](uint64_t m) { return (m >> var) & 1; });
}

TruthTable TruthTable::constant(int nvars, bool value) {
  TruthTable t(nvars);
  if (value) t.bits_.set_all();
  return t;
}

TruthTable TruthTable::operator&(const TruthTable& o) const {
  assert(nvars_ == o.nvars_);
  TruthTable r = *this;
  r.bits_ &= o.bits_;
  return r;
}

TruthTable TruthTable::operator|(const TruthTable& o) const {
  assert(nvars_ == o.nvars_);
  TruthTable r = *this;
  r.bits_ |= o.bits_;
  return r;
}

TruthTable TruthTable::operator^(const TruthTable& o) const {
  assert(nvars_ == o.nvars_);
  TruthTable r = *this;
  r.bits_ ^= o.bits_;
  return r;
}

TruthTable TruthTable::operator~() const {
  TruthTable r(nvars_);
  for (uint64_t m = 0; m < size(); ++m)
    if (!bits_.get(m)) r.bits_.set(m);
  return r;
}

TruthTable TruthTable::cofactor(int var, bool value) const {
  assert(var >= 0 && var < nvars_);
  TruthTable r(nvars_);
  const uint64_t bit = uint64_t{1} << var;
  for (uint64_t m = 0; m < size(); ++m) {
    const uint64_t src = value ? (m | bit) : (m & ~bit);
    if (bits_.get(src)) r.bits_.set(m);
  }
  return r;
}

bool TruthTable::depends_on(int var) const {
  const uint64_t bit = uint64_t{1} << var;
  for (uint64_t m = 0; m < size(); ++m) {
    if ((m & bit) == 0 && bits_.get(m) != bits_.get(m | bit)) return true;
  }
  return false;
}

std::vector<int> TruthTable::support() const {
  std::vector<int> vars;
  for (int v = 0; v < nvars_; ++v)
    if (depends_on(v)) vars.push_back(v);
  return vars;
}

void TruthTable::reed_muller_transform() {
  // Butterfly: for each variable, XOR the cofactor-0 half into the
  // cofactor-1 half. Word-level for stride >= 64, bit-level below.
  const uint64_t n = size();
  for (int v = 0; v < nvars_; ++v) {
    const uint64_t stride = uint64_t{1} << v;
    if (stride >= 64) {
      const uint64_t wstride = stride >> 6;
      for (uint64_t base = 0; base < (n >> 6); base += 2 * wstride)
        for (uint64_t w = 0; w < wstride; ++w)
          bits_.word(base + wstride + w) ^= bits_.word(base + w);
    } else {
      for (uint64_t base = 0; base < n; base += 2 * stride)
        for (uint64_t i = 0; i < stride; ++i)
          if (bits_.get(base + i)) bits_.flip(base + stride + i);
    }
  }
}

TruthTable TruthTable::pprm_spectrum() const {
  TruthTable r = *this;
  r.reed_muller_transform();
  return r;
}

std::string TruthTable::to_binary_string() const { return bits_.to_string(); }

} // namespace rmsyn
