#include "tt/truth_table.hpp"

#include <cassert>
#include <stdexcept>

namespace rmsyn {

namespace {
constexpr int kMaxVars = 26; // 64 Mi minterms; beyond this use BDDs.
}

TruthTable::TruthTable(int nvars) : nvars_(nvars) {
  if (nvars < 0 || nvars > kMaxVars)
    throw std::invalid_argument("TruthTable: variable count out of range");
  bits_ = BitVec(uint64_t{1} << nvars);
}

TruthTable TruthTable::from_function(int nvars, const std::function<bool(uint64_t)>& fn) {
  TruthTable t(nvars);
  for (uint64_t m = 0; m < t.size(); ++m)
    if (fn(m)) t.bits_.set(m);
  return t;
}

TruthTable TruthTable::variable(int nvars, int var) {
  assert(var >= 0 && var < nvars);
  return from_function(nvars, [var](uint64_t m) { return (m >> var) & 1; });
}

TruthTable TruthTable::constant(int nvars, bool value) {
  TruthTable t(nvars);
  if (value) t.bits_.set_all();
  return t;
}

TruthTable TruthTable::operator&(const TruthTable& o) const {
  assert(nvars_ == o.nvars_);
  TruthTable r = *this;
  r.bits_ &= o.bits_;
  return r;
}

TruthTable TruthTable::operator|(const TruthTable& o) const {
  assert(nvars_ == o.nvars_);
  TruthTable r = *this;
  r.bits_ |= o.bits_;
  return r;
}

TruthTable TruthTable::operator^(const TruthTable& o) const {
  assert(nvars_ == o.nvars_);
  TruthTable r = *this;
  r.bits_ ^= o.bits_;
  return r;
}

TruthTable TruthTable::operator~() const {
  TruthTable r(nvars_);
  for (uint64_t m = 0; m < size(); ++m)
    if (!bits_.get(m)) r.bits_.set(m);
  return r;
}

TruthTable TruthTable::cofactor(int var, bool value) const {
  assert(var >= 0 && var < nvars_);
  TruthTable r(nvars_);
  const uint64_t bit = uint64_t{1} << var;
  for (uint64_t m = 0; m < size(); ++m) {
    const uint64_t src = value ? (m | bit) : (m & ~bit);
    if (bits_.get(src)) r.bits_.set(m);
  }
  return r;
}

bool TruthTable::depends_on(int var) const {
  const uint64_t bit = uint64_t{1} << var;
  for (uint64_t m = 0; m < size(); ++m) {
    if ((m & bit) == 0 && bits_.get(m) != bits_.get(m | bit)) return true;
  }
  return false;
}

std::vector<int> TruthTable::support() const {
  std::vector<int> vars;
  for (int v = 0; v < nvars_; ++v)
    if (depends_on(v)) vars.push_back(v);
  return vars;
}

TruthTable TruthTable::permute_inputs(const std::vector<int>& perm) const {
  assert(static_cast<int>(perm.size()) == nvars_);
  TruthTable r(nvars_);
  for (uint64_t m = 0; m < size(); ++m) {
    // Gather this function's input vector x from the result's minterm y = m.
    uint64_t src = 0;
    for (int i = 0; i < nvars_; ++i)
      if ((m >> perm[i]) & 1) src |= uint64_t{1} << i;
    if (bits_.get(src)) r.bits_.set(m);
  }
  return r;
}

TruthTable TruthTable::negate_input(int var) const {
  assert(var >= 0 && var < nvars_);
  return negate_inputs(uint64_t{1} << var);
}

TruthTable TruthTable::negate_inputs(uint64_t mask) const {
  assert(nvars_ >= 64 || mask < (uint64_t{1} << nvars_));
  TruthTable r(nvars_);
  for (uint64_t m = 0; m < size(); ++m)
    if (bits_.get(m ^ mask)) r.bits_.set(m);
  return r;
}

TruthTable TruthTable::shrink_to_support() const {
  const std::vector<int> vars = support();
  TruthTable r(static_cast<int>(vars.size()));
  for (uint64_t m = 0; m < r.size(); ++m) {
    // Scatter the compact minterm onto the support positions; irrelevant
    // variables read as 0 (any value gives the same function bit).
    uint64_t src = 0;
    for (std::size_t j = 0; j < vars.size(); ++j)
      if ((m >> j) & 1) src |= uint64_t{1} << vars[j];
    if (bits_.get(src)) r.bits_.set(m);
  }
  return r;
}

TruthTable TruthTable::extend(int nvars) const {
  assert(nvars >= nvars_);
  TruthTable r(nvars);
  const uint64_t lo_mask = size() - 1;
  for (uint64_t m = 0; m < r.size(); ++m)
    if (bits_.get(m & lo_mask)) r.bits_.set(m);
  return r;
}

void TruthTable::reed_muller_transform() {
  // Butterfly: for each variable, XOR the cofactor-0 half into the
  // cofactor-1 half. Word-level for stride >= 64, bit-level below.
  const uint64_t n = size();
  for (int v = 0; v < nvars_; ++v) {
    const uint64_t stride = uint64_t{1} << v;
    if (stride >= 64) {
      const uint64_t wstride = stride >> 6;
      for (uint64_t base = 0; base < (n >> 6); base += 2 * wstride)
        for (uint64_t w = 0; w < wstride; ++w)
          bits_.word(base + wstride + w) ^= bits_.word(base + w);
    } else {
      for (uint64_t base = 0; base < n; base += 2 * stride)
        for (uint64_t i = 0; i < stride; ++i)
          if (bits_.get(base + i)) bits_.flip(base + stride + i);
    }
  }
}

TruthTable TruthTable::pprm_spectrum() const {
  TruthTable r = *this;
  r.reed_muller_transform();
  return r;
}

std::string TruthTable::to_binary_string() const { return bits_.to_string(); }

} // namespace rmsyn
