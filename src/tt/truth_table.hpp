// Explicit truth tables for functions of up to ~24 variables.
//
// Truth tables are the ground-truth oracle of this repository: benchmark
// generators produce them for small circuits, tests compare every synthesis
// result against them, and the Reed-Muller (butterfly) transform on them is
// the reference implementation that the BDD-based FPRM extraction is checked
// against.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/bitvec.hpp"

namespace rmsyn {

class TruthTable {
public:
  TruthTable() = default;
  /// All-zero table over `nvars` inputs.
  explicit TruthTable(int nvars);

  /// Builds a table by evaluating `fn` on every minterm (bit i of the
  /// argument is input i).
  static TruthTable from_function(int nvars, const std::function<bool(uint64_t)>& fn);
  /// Projection x_i.
  static TruthTable variable(int nvars, int var);
  static TruthTable constant(int nvars, bool value);

  int nvars() const { return nvars_; }
  uint64_t size() const { return uint64_t{1} << nvars_; }

  bool get(uint64_t minterm) const { return bits_.get(minterm); }
  void set(uint64_t minterm, bool v = true) { bits_.set(minterm, v); }

  uint64_t count_ones() const { return bits_.count(); }
  bool is_const0() const { return bits_.none(); }
  bool is_const1() const { return bits_.count() == size(); }

  TruthTable operator&(const TruthTable& o) const;
  TruthTable operator|(const TruthTable& o) const;
  TruthTable operator^(const TruthTable& o) const;
  TruthTable operator~() const;
  bool operator==(const TruthTable& o) const = default;

  /// Cofactor with x_var fixed to `value`; the result still ranges over all
  /// nvars inputs (the fixed variable becomes irrelevant).
  TruthTable cofactor(int var, bool value) const;
  /// True iff the function depends on x_var.
  bool depends_on(int var) const;
  /// Indices of all variables the function depends on.
  std::vector<int> support() const;

  /// g(y) = f(x) with x_i = y_{perm[i]}: input i of this function is fed
  /// from input perm[i] of the result. `perm` must be a permutation of
  /// 0..nvars-1.
  TruthTable permute_inputs(const std::vector<int>& perm) const;
  /// g(y) = f(y with x_var complemented).
  TruthTable negate_input(int var) const;
  /// Complement every input whose bit is set in `mask` (bit i = x_i).
  TruthTable negate_inputs(uint64_t mask) const;
  /// Projects onto the support: result ranges over support().size()
  /// variables, with new variable j fed from old variable support()[j].
  TruthTable shrink_to_support() const;
  /// Pads to `nvars` >= nvars() inputs; the new variables are irrelevant.
  TruthTable extend(int nvars) const;

  /// In-place Reed-Muller (positive-polarity) butterfly transform. Applying
  /// it to a function yields its PPRM spectrum (coefficient table); applying
  /// it twice is the identity — it is an involution over GF(2).
  void reed_muller_transform();

  /// PPRM coefficient table of this function (non-mutating convenience).
  TruthTable pprm_spectrum() const;

  /// "0110..." rendering, minterm 0 first. For tests and diagnostics.
  std::string to_binary_string() const;

  const BitVec& raw() const { return bits_; }

private:
  int nvars_ = 0;
  BitVec bits_;
};

} // namespace rmsyn
