#include "obs/stage.hpp"

#include <algorithm>
#include <cstdio>

#include "util/progress.hpp"

namespace rmsyn {

void StageBreakdown::add(std::string_view name, double seconds,
                         uint64_t calls) {
  for (Entry& e : entries) {
    if (e.name == name) {
      e.seconds += seconds;
      e.calls += calls;
      return;
    }
  }
  entries.push_back(Entry{std::string(name), seconds, calls});
}

void StageBreakdown::accumulate(const StageBreakdown& o) {
  for (const Entry& e : o.entries) add(e.name, e.seconds, e.calls);
}

const StageBreakdown::Entry* StageBreakdown::find(std::string_view name) const {
  for (const Entry& e : entries)
    if (e.name == name) return &e;
  return nullptr;
}

double StageBreakdown::seconds_for(std::string_view name) const {
  const Entry* e = find(name);
  return e == nullptr ? 0.0 : e->seconds;
}

double StageBreakdown::total_seconds() const {
  double s = 0.0;
  for (const Entry& e : entries) s += e.seconds;
  return s;
}

std::string StageBreakdown::to_string() const {
  std::vector<const Entry*> order;
  order.reserve(entries.size());
  for (const Entry& e : entries) order.push_back(&e);
  std::stable_sort(order.begin(), order.end(),
                   [](const Entry* a, const Entry* b) {
                     return a->seconds > b->seconds;
                   });
  std::string out = "stages:";
  char buf[128];
  for (const Entry* e : order) {
    std::snprintf(buf, sizeof buf, " %s %.3fs (%llu)", e->name.c_str(),
                  e->seconds, static_cast<unsigned long long>(e->calls));
    out += buf;
  }
  out += "\n";
  return out;
}

namespace obs {

ScopedStage::ScopedStage(ResourceGovernor* gov, StageBreakdown* sb,
                         const char* name)
    : gov_(gov), sb_(sb), name_(name), span_(name) {
  if (gov_ != nullptr) gov_->begin_stage(name);
  if (ProgressBoard::active()) ProgressBoard::instance().set_stage(name);
  start_ns_ = now_ns();
}

ScopedStage::~ScopedStage() {
  if (sb_ != nullptr)
    sb_->add(name_, 1e-9 * static_cast<double>(now_ns() - start_ns_));
  if (gov_ != nullptr) gov_->end_stage();
}

} // namespace obs
} // namespace rmsyn
