// Serialized output sink.
//
// Under `batch --jobs N` the per-row status lines and the heartbeat are
// produced by different threads; raw printf interleaves mid-line. An
// OutputSink funnels every line through one mutex and writes it with a
// single fwrite, so concurrent writers can't shear each other's output.
// The flow results themselves were already deterministic (BatchRunner
// settles rows in order under settle_mu); this makes the *console* equally
// well-defined.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

namespace rmsyn::obs {

class OutputSink {
public:
  explicit OutputSink(std::FILE* out = stdout) : out_(out) {}
  OutputSink(const OutputSink&) = delete;
  OutputSink& operator=(const OutputSink&) = delete;

  /// Writes `text` (verbatim, no newline appended) as one atomic chunk.
  void write(std::string_view text);
  /// printf-style; the formatted string is written as one atomic chunk.
  void printf(const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
      __attribute__((format(printf, 2, 3)))
#endif
      ;

  std::FILE* stream() const { return out_; }

private:
  std::FILE* out_;
  std::mutex mu_;
};

} // namespace rmsyn::obs
