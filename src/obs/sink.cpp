#include "obs/sink.hpp"

#include <vector>

namespace rmsyn::obs {

void OutputSink::write(std::string_view text) {
  std::lock_guard<std::mutex> lk(mu_);
  std::fwrite(text.data(), 1, text.size(), out_);
  std::fflush(out_);
}

void OutputSink::printf(const char* fmt, ...) {
  char stack_buf[512];
  std::va_list ap;
  va_start(ap, fmt);
  std::va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(stack_buf, sizeof stack_buf, fmt, ap);
  va_end(ap);
  if (n < 0) {
    va_end(ap2);
    return;
  }
  if (static_cast<std::size_t>(n) < sizeof stack_buf) {
    va_end(ap2);
    write(std::string_view(stack_buf, static_cast<std::size_t>(n)));
    return;
  }
  std::vector<char> heap_buf(static_cast<std::size_t>(n) + 1);
  std::vsnprintf(heap_buf.data(), heap_buf.size(), fmt, ap2);
  va_end(ap2);
  write(std::string_view(heap_buf.data(), static_cast<std::size_t>(n)));
}

} // namespace rmsyn::obs
