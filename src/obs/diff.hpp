// QoR regression diffing — compares two run reports (or two BENCH_*.json
// documents) metric by metric and renders a verdict per comparison plus a
// worst-case roll-up, so CI can gate a PR against committed baselines
// (data/baselines/) instead of catching regressions by eyeball.
//
// Threshold model, per metric class:
//  * QoR columns (literals, gates, power): deterministic by the repo's
//    determinism contract, so ZERO tolerance — any increase is Regress,
//    any decrease Improve.
//  * Timing columns (*_seconds and friends): inherently noisy, so changes
//    inside a relative band (with an absolute floor for sub-50ms values)
//    are Noise; only beyond-band slowdowns count as Regress. The CI gate
//    runs with ignore_timing so shared-runner jitter can never fail a PR.
//  * Status fields: a worst-status severity increase (ok -> degraded,
//    degraded -> failed) is Regress regardless of any column.
//  * Everything else (counters with no inherent better-direction): changes
//    are reported as Noise, never gating.
// Structural problems — a circuit present in the baseline but missing
// from the candidate, a QoR column the candidate lacks, a non-report
// document — are SchemaMismatch, which outranks Regress (the comparison
// itself is meaningless, a worse failure than a bad number). Schema
// *versions* are deliberately not compared: reports evolve additively
// (v2 vs v3 differ only in extra fields), so cross-version diffs work.
#pragma once

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace rmsyn::obs {

/// Per-comparison outcome, ordered by severity (worst last).
enum class Verdict : uint8_t { Same, Improve, Noise, Regress, SchemaMismatch };

const char* to_string(Verdict v);

struct DiffOptions {
  /// Relative noise band for timing metrics, as a fraction (0.25 = ±25%).
  double seconds_noise_frac = 0.25;
  /// Absolute floor on the band, in seconds: differences below this never
  /// gate, however large in relative terms (sub-50ms stages jitter wildly).
  double seconds_noise_floor = 0.05;
  /// Skip timing metrics entirely (the CI baseline gate sets this: QoR is
  /// deterministic across machines, wall time is not).
  bool ignore_timing = false;
};

struct DiffEntry {
  std::string path; ///< "rows[f2].ours_lits", "metrics.dd.cache_hits", ...
  double base = 0.0;
  double ours = 0.0;
  Verdict verdict = Verdict::Same;
};

struct DiffResult {
  Verdict worst = Verdict::Same;
  /// Every non-Same comparison, in document order.
  std::vector<DiffEntry> entries;
  /// Human-readable structural problems (set iff worst == SchemaMismatch).
  std::vector<std::string> errors;

  void note(DiffEntry e);
  void note_error(std::string msg);
};

/// Diff two rmsyn run reports (schema v2 or v3): rows are matched by
/// circuit name, QoR columns get zero tolerance, timing columns the noise
/// band, statuses severity comparison. Top-level metrics are ignored —
/// they aggregate the rows and would double-report every row-level change.
DiffResult diff_reports(const Json& base, const Json& ours,
                        const DiffOptions& opt);

/// Generic numeric walk for BENCH_*.json (or any JSON document): number
/// leaves at matching paths are compared with direction inferred from the
/// key name (seconds-like: lower-better in the noise band; lits/gates:
/// lower-better zero tolerance; *_per_second rates: higher-better in the
/// band; unknown: Noise). Boolean flips and missing keys are Regress /
/// SchemaMismatch respectively.
DiffResult diff_generic(const Json& base, const Json& ours,
                        const DiffOptions& opt);

/// Routes to diff_reports when both documents look like run reports
/// (tool == "rmsyn" with a rows array), diff_generic otherwise;
/// SchemaMismatch when one is a report and the other is not.
DiffResult diff_documents(const Json& base, const Json& ours,
                          const DiffOptions& opt);

/// One line per entry plus a verdict summary, for the CLI.
std::string format_diff(const DiffResult& r);

/// Stable CLI exit code: 0 (Same/Improve/Noise), 2 (Regress),
/// 4 (SchemaMismatch) — matching the degraded/fatal-input taxonomy.
int diff_exit_code(const DiffResult& r);

} // namespace rmsyn::obs
