// Heartbeat: a background thread that prints one progress line per period
// while a long run is in flight —
//
//   [hb 12.0s] rows 3/8  circuit=alu4  stage=fprm-extract  live nodes 48211
//
// The data comes from the ProgressBoard (util/progress.hpp): starting the
// heartbeat flips the board on, which is what tells the batch runner,
// obs::ScopedStage, and the governor's note_nodes() to start publishing.
// Output goes through an OutputSink so heartbeat lines can never shear the
// per-row status lines they interleave with. `rmsyn_cli table2/batch
// --heartbeat <seconds>` is the user-facing switch.
#pragma once

#include <condition_variable>
#include <mutex>
#include <thread>

#include "obs/sink.hpp"

namespace rmsyn::obs {

class Heartbeat {
public:
  /// Starts the background thread; a line is emitted every `period_seconds`
  /// until stop(). `sink` must outlive the heartbeat.
  Heartbeat(OutputSink& sink, double period_seconds);
  ~Heartbeat();
  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  /// Joins the thread (idempotent) and switches the ProgressBoard off.
  void stop();

  /// Lines emitted so far (for tests).
  uint64_t beats() const { return beats_; }

private:
  void run(double period_seconds);

  OutputSink& sink_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  uint64_t beats_ = 0;
  std::thread thread_;
};

} // namespace rmsyn::obs
