#include "obs/diff.hpp"

#include <cmath>
#include <cstdio>

namespace rmsyn::obs {

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::Same: return "same";
    case Verdict::Improve: return "improve";
    case Verdict::Noise: return "noise";
    case Verdict::Regress: return "regress";
    case Verdict::SchemaMismatch: return "schema-mismatch";
  }
  return "?";
}

void DiffResult::note(DiffEntry e) {
  if (e.verdict > worst) worst = e.verdict;
  if (e.verdict != Verdict::Same) entries.push_back(std::move(e));
}

void DiffResult::note_error(std::string msg) {
  worst = Verdict::SchemaMismatch;
  errors.push_back(std::move(msg));
}

namespace {

bool contains_word(const std::string& key, const char* word) {
  return key.find(word) != std::string::npos;
}

/// Timing-like key: compared in the noise band, skipped by ignore_timing.
bool is_timing_key(const std::string& key) {
  return contains_word(key, "seconds") || contains_word(key, "_ms") ||
         contains_word(key, "_ns") || contains_word(key, "wall") ||
         contains_word(key, "rss");
}

/// QoR key: deterministic, gated with zero tolerance, lower is better.
bool is_qor_key(const std::string& key) {
  return contains_word(key, "lits") || contains_word(key, "gates") ||
         contains_word(key, "power") || contains_word(key, "nodes") ||
         contains_word(key, "depth");
}

/// Rate key: higher is better, noise band (cuts_per_second and friends).
bool is_rate_key(const std::string& key) {
  return contains_word(key, "per_second") || contains_word(key, "_rate");
}

Verdict judge_timing(double base, double ours, const DiffOptions& opt) {
  const double delta = ours - base;
  const double band =
      std::max(opt.seconds_noise_floor,
               opt.seconds_noise_frac * std::fabs(base));
  if (delta > band) return Verdict::Regress;
  if (delta < -band) return Verdict::Improve;
  return base == ours ? Verdict::Same : Verdict::Noise;
}

Verdict judge_qor_lower_better(double base, double ours) {
  if (ours > base) return Verdict::Regress;
  if (ours < base) return Verdict::Improve;
  return Verdict::Same;
}

int status_severity(const std::string& s) {
  return s == "failed" ? 2 : (s == "degraded" ? 1 : 0);
}

void diff_qor_number(DiffResult& r, const std::string& path,
                     const std::string& key, double base, double ours,
                     const DiffOptions& opt) {
  DiffEntry e;
  e.path = path;
  e.base = base;
  e.ours = ours;
  if (is_timing_key(key)) {
    if (opt.ignore_timing) return;
    e.verdict = judge_timing(base, ours, opt);
  } else if (is_rate_key(key)) {
    if (opt.ignore_timing) return; // rates are time-derived
    e.verdict = judge_timing(-base, -ours, opt); // higher-better, banded
  } else if (is_qor_key(key)) {
    e.verdict = judge_qor_lower_better(base, ours);
  } else {
    e.verdict = base == ours ? Verdict::Same : Verdict::Noise;
  }
  r.note(std::move(e));
}

// --- report mode -------------------------------------------------------------

bool looks_like_report(const Json& doc) {
  return doc.is_object() && doc.contains("tool") &&
         doc.get("tool").is_string() &&
         doc.get("tool").as_string() == "rmsyn" && doc.contains("rows") &&
         doc.get("rows").is_array();
}

const Json* find_row(const Json& rows, const std::string& circuit) {
  for (const Json& r : rows.items())
    if (r.is_object() && r.contains("circuit") &&
        r.get("circuit").is_string() &&
        r.get("circuit").as_string() == circuit)
      return &r;
  return nullptr;
}

void diff_row(DiffResult& r, const std::string& circuit, const Json& base,
              const Json& ours, const DiffOptions& opt) {
  const std::string prefix = "rows[" + circuit + "].";
  for (const auto& [key, bv] : base.members()) {
    if (!bv.is_number()) continue;
    // Derived percentages restate the map_lits/power columns.
    if (contains_word(key, "improve_")) continue;
    if (!ours.contains(key)) {
      // Additive schema evolution: a column the candidate lacks (old
      // binary diffed against a new baseline) is tolerated only for
      // non-QoR telemetry.
      if (is_qor_key(key))
        r.note_error(prefix + key + ": missing from candidate");
      continue;
    }
    const Json& ov = ours.get(key);
    if (!ov.is_number()) {
      r.note_error(prefix + key + ": number vs " +
                   std::string(ov.is_string() ? "string" : "non-number"));
      continue;
    }
    diff_qor_number(r, prefix + key, key, bv.as_number(), ov.as_number(),
                    opt);
  }
  // Worst-status severity: ok < degraded < failed.
  const auto worst_of = [](const Json& row) -> std::string {
    if (!row.contains("status")) return "ok";
    const Json& st = row.get("status");
    if (!st.is_object() || !st.contains("worst")) return "ok";
    return st.get("worst").as_string();
  };
  const std::string bs = worst_of(base), os = worst_of(ours);
  if (status_severity(os) != status_severity(bs)) {
    DiffEntry e;
    e.path = prefix + "status.worst";
    e.base = status_severity(bs);
    e.ours = status_severity(os);
    e.verdict = status_severity(os) > status_severity(bs)
                    ? Verdict::Regress
                    : Verdict::Improve;
    r.note(std::move(e));
  }
}

// --- generic mode ------------------------------------------------------------

void diff_walk(DiffResult& r, const std::string& path, const Json& base,
               const Json& ours, const std::string& key,
               const DiffOptions& opt) {
  if (base.is_number() && ours.is_number()) {
    diff_qor_number(r, path, key, base.as_number(), ours.as_number(), opt);
    return;
  }
  if (base.is_bool() && ours.is_bool()) {
    if (base.as_bool() != ours.as_bool()) {
      DiffEntry e;
      e.path = path;
      e.base = base.as_bool() ? 1 : 0;
      e.ours = ours.as_bool() ? 1 : 0;
      // A true->false flip on an invariant flag (equivalent,
      // jobs_bit_identical, monotone_cost) is a hard regression.
      e.verdict = base.as_bool() && !ours.as_bool() ? Verdict::Regress
                                                    : Verdict::Improve;
      r.note(std::move(e));
    }
    return;
  }
  if (base.is_object() && ours.is_object()) {
    for (const auto& [k, bv] : base.members()) {
      if (!ours.contains(k)) {
        if (bv.is_number() || bv.is_bool())
          r.note_error(path.empty() ? k + ": missing from candidate"
                                    : path + "." + k +
                                          ": missing from candidate");
        continue;
      }
      diff_walk(r, path.empty() ? k : path + "." + k, bv, ours.get(k), k,
                opt);
    }
    return;
  }
  if (base.is_array() && ours.is_array()) {
    // BENCH row arrays: match by "circuit"/"name" label when present so
    // reordering is not a mismatch; fall back to positional pairing.
    const auto label_of = [](const Json& e) -> std::string {
      if (!e.is_object()) return std::string();
      for (const char* k : {"circuit", "name", "bench"})
        if (e.contains(k) && e.get(k).is_string())
          return e.get(k).as_string();
      return std::string();
    };
    const bool labeled =
        base.size() > 0 && !label_of(base.at(0)).empty();
    if (labeled) {
      for (const Json& be : base.items()) {
        const std::string label = label_of(be);
        const Json* oe = nullptr;
        for (const Json& cand : ours.items())
          if (label_of(cand) == label) {
            oe = &cand;
            break;
          }
        if (oe == nullptr) {
          r.note_error(path + "[" + label + "]: missing from candidate");
          continue;
        }
        diff_walk(r, path + "[" + label + "]", be, *oe, key, opt);
      }
    } else {
      if (base.size() != ours.size()) {
        r.note_error(path + ": array size " +
                     std::to_string(base.size()) + " vs " +
                     std::to_string(ours.size()));
        return;
      }
      for (std::size_t i = 0; i < base.size(); ++i)
        diff_walk(r, path + "[" + std::to_string(i) + "]", base.at(i),
                  ours.at(i), key, opt);
    }
    return;
  }
  if (base.type() != ours.type())
    r.note_error(path + ": type mismatch");
  // Matching strings/nulls carry no QoR signal; ignore.
}

} // namespace

DiffResult diff_reports(const Json& base, const Json& ours,
                        const DiffOptions& opt) {
  DiffResult r;
  if (!looks_like_report(base)) {
    r.note_error("baseline is not an rmsyn run report");
    return r;
  }
  if (!looks_like_report(ours)) {
    r.note_error("candidate is not an rmsyn run report");
    return r;
  }
  const Json& brows = base.get("rows");
  const Json& orows = ours.get("rows");
  for (const Json& brow : brows.items()) {
    if (!brow.is_object() || !brow.contains("circuit")) continue;
    const std::string circuit = brow.get("circuit").as_string();
    const Json* orow = find_row(orows, circuit);
    if (orow == nullptr) {
      r.note_error("rows[" + circuit + "]: missing from candidate");
      continue;
    }
    diff_row(r, circuit, brow, *orow, opt);
  }
  // Whole-run wall time, banded like any other timing metric.
  if (!opt.ignore_timing && base.contains("wall_seconds") &&
      ours.contains("wall_seconds"))
    diff_qor_number(r, "wall_seconds", "wall_seconds",
                    base.get("wall_seconds").as_number(),
                    ours.get("wall_seconds").as_number(), opt);
  return r;
}

DiffResult diff_generic(const Json& base, const Json& ours,
                        const DiffOptions& opt) {
  DiffResult r;
  diff_walk(r, "", base, ours, "", opt);
  return r;
}

DiffResult diff_documents(const Json& base, const Json& ours,
                          const DiffOptions& opt) {
  const bool br = looks_like_report(base), or_ = looks_like_report(ours);
  if (br && or_) return diff_reports(base, ours, opt);
  if (br != or_) {
    DiffResult r;
    r.note_error(br ? "baseline is a run report but candidate is not"
                    : "candidate is a run report but baseline is not");
    return r;
  }
  return diff_generic(base, ours, opt);
}

std::string format_diff(const DiffResult& r) {
  std::string out;
  char buf[320];
  for (const std::string& e : r.errors) {
    out += "schema-mismatch: ";
    out += e;
    out += "\n";
  }
  int improves = 0, noises = 0, regresses = 0;
  for (const DiffEntry& e : r.entries) {
    switch (e.verdict) {
      case Verdict::Improve: ++improves; break;
      case Verdict::Noise: ++noises; break;
      case Verdict::Regress: ++regresses; break;
      default: break;
    }
    std::snprintf(buf, sizeof buf, "%-8s %s: %g -> %g\n",
                  to_string(e.verdict), e.path.c_str(), e.base, e.ours);
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "verdict: %s (%d regressed, %d improved, %d within noise, "
                "%zu schema errors)\n",
                to_string(r.worst), regresses, improves, noises,
                r.errors.size());
  out += buf;
  return out;
}

int diff_exit_code(const DiffResult& r) {
  switch (r.worst) {
    case Verdict::SchemaMismatch: return 4;
    case Verdict::Regress: return 2;
    default: return 0;
  }
}

} // namespace rmsyn::obs
