// Scoped self-profiler — per-pass attribution trees over the span machinery.
//
// Where the tracer (obs/trace.hpp) answers "what happened when" with a flat
// event log, the profiler answers "who owns the time": every RMSYN_SPAN /
// ScopedStage that opens while profiling is enabled becomes a frame in a
// per-thread call tree keyed by the span-name path ("table2" -> "flow:f2"
// -> "polarity-search"). Each tree node accumulates calls, inclusive
// nanoseconds and the sum of its children's inclusive time, so exclusive
// time falls out as incl - child at export; peak-RSS and live-DD-node
// gauges are sampled at shallow frame exits (stage boundaries, not hot
// paths). Export formats: folded stacks ("a;b;c <excl_us>" — feed straight
// to flamegraph.pl or speedscope) and a nested JSON block embedded in the
// run report; `rmsyn_cli ... --profile out.folded` is the user entry point.
//
// Cost model mirrors the tracer: disabled is one relaxed atomic load inside
// the Span constructor's existing gate (bench_obs covers the combined
// branch under the <1% flow-overhead gate). Enabled adds a child lookup
// (linear over siblings — stage trees have tens of distinct names) and two
// counter bumps per span; no allocation after a node exists, no locks on
// the recording path. Per-thread trees are capped at kMaxNodes; once full,
// new frames attribute their time to the nearest existing ancestor.
//
// Lifecycle matches the tracer: enable()/reset()/merged() are run-scoped
// main-thread operations and must not race recording threads (pool workers
// are joined at flow boundaries, which is where reports are built).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rmsyn::obs {

class Profiler {
public:
  static Profiler& instance();

  void enable();
  void disable();
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Drops every recorded frame. Must not run concurrently with recording
  /// threads (call between runs, like Tracer::reset).
  void reset();

  /// Merged attribution tree across every recording thread. The root is a
  /// synthetic frame named "root" whose incl_ns is the sum of its
  /// children's; excl_ns is always incl minus children (>= 0).
  struct Node {
    std::string name;
    uint64_t calls = 0;
    uint64_t incl_ns = 0;
    uint64_t excl_ns = 0;
    double peak_rss_mb = 0.0;   ///< max RSS sampled at this frame's exits
    double dd_live_nodes = 0.0; ///< max live-DD gauge sampled at exits
    std::vector<Node> children;
  };
  Node merged() const;

  /// Folded-stack export: one "path;to;frame <exclusive_us>" line per
  /// node with nonzero exclusive time, ready for flamegraph.pl.
  std::string folded() const;
  /// Nested JSON form of merged() (the report schema's `profile` block).
  std::string json() const;
  /// Writes folded() to `path`; throws std::runtime_error on I/O failure.
  void write_folded(const std::string& path) const;

  /// Per-thread frame-tree capacity; overflow attributes to the parent.
  static constexpr std::size_t kMaxNodes = 4096;

private:
  friend class Span;
  Profiler() = default;

  struct ThreadTree;
  ThreadTree* tree_for_this_thread();

  /// Recording hooks, called from Span::open/close on the owning thread.
  void frame_enter(const char* name);
  void frame_exit(uint64_t dur_ns);

  static std::atomic<bool> enabled_;
  mutable std::mutex mu_; ///< guards the thread-tree registry only
  std::vector<std::unique_ptr<ThreadTree>> trees_;
};

} // namespace rmsyn::obs
