// Metrics registry — the "how much happened" half of the obs subsystem.
//
// Every layer of the flow already counts things (BddStats in the DD kernel,
// SchedStats in the work-stealing pool, governor polls and ladder descents,
// FlowStatus outcomes, per-stage seconds), but until this PR each block had
// its own struct AND its own hand-rolled printer. The registry unifies
// them: named counters / gauges / histograms under dotted names
// ("dd.cache_lookups", "sched.w0.tasks", "stage.polarity-search.seconds"),
// one absorber per legacy stat block, and ONE formatter —
// format_metrics_summary() — that renders every summary block the CLI and
// benches print. format_dd_kernel_summary / format_sched_summary are now
// thin wrappers over it, and the run report serializes the same snapshot
// as machine-readable JSON (obs/report.hpp).
//
// Thread safety: all operations lock a single mutex. The registry sits on
// reporting paths (end of a flow, end of a run), never inside kernels, so
// contention is irrelevant; the lock-free budget belongs to the tracer.
//
// Well-known name groups (see DESIGN.md §9):
//   dd.*     DD-kernel counters absorbed from BddStats
//   sched.*  pool aggregates + per-worker sched.w<i>.* / sched.ext.*
//   sim.*    incremental-simulation engine counters absorbed from SimStats
//   rewrite.* cut-rewriting pass counters absorbed from rw::RewriteStats
//   flow.*   row outcomes, governor polls/descents, row count, per-row
//            latency histogram (flow.row_seconds — p50/p99 in batch output)
//   stage.*  per-stage wall-clock histograms (sum = seconds, count = calls)
//   os.*     process-level gauges (os.peak_rss_mb), stamped per run report
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/stage.hpp"
#include "util/governor.hpp"

namespace rmsyn {

struct BddStats;  // bdd/bdd.hpp
struct SchedStats; // sched/pool.hpp
struct SimStats;  // sim/sim.hpp
namespace rw {
struct RewriteStats; // rewrite/rewrite.hpp
}

namespace obs {

enum class MetricKind : uint8_t { Counter, Gauge, Histogram, Text };

const char* to_string(MetricKind k);

/// Log-spaced bucket layout shared by every histogram metric. The bounds
/// are global (not per-metric) so per-worker shards merge by plain
/// element-wise addition — merge is associative and commutative, which is
/// what the batch runner's "merge shards in any settle order" path needs.
///
/// Bucket i covers [lower(i), lower(i+1)) with kPerDecade buckets per
/// decade from kMinBound up; values below kMinBound land in bucket 0,
/// values past the top land in the overflow bucket (the last one). The
/// range 1e-7 .. 1e5 covers 100ns-granularity latencies up to day-long
/// runs, the unit every current histogram uses (seconds).
struct HistogramBuckets {
  static constexpr int kPerDecade = 8;
  static constexpr double kMinBound = 1e-7;
  static constexpr int kDecades = 12;
  /// underflow bucket + kPerDecade*kDecades log buckets + overflow bucket
  static constexpr int kCount = kPerDecade * kDecades + 2;

  /// Bucket index for a value (clamped to [0, kCount-1]).
  static int bucket_for(double v);
  /// Inclusive lower bound of bucket i (0.0 for bucket 0).
  static double lower(int i);
  /// Exclusive upper bound of bucket i (+inf for the overflow bucket).
  static double upper(int i);
};

/// One metric. Counters use `count`; gauges use `value`; histograms use
/// count/sum/min/max plus log-spaced bucket counts that answer percentile
/// queries (p50/p99 row latency, stage-time tails) and merge exactly
/// across per-worker shards.
struct MetricValue {
  MetricKind kind = MetricKind::Counter;
  uint64_t count = 0;
  double value = 0.0; ///< gauge value
  double sum = 0.0;   ///< histogram sum
  double min = 0.0;
  double max = 0.0;
  /// Histogram bucket counts (HistogramBuckets layout); empty until the
  /// first observe() so counters and gauges stay small.
  std::vector<uint64_t> buckets;
  /// Text-gauge payload (e.g. sim.simd_dispatch = "avx2"); merge keeps
  /// the last non-empty writer.
  std::string text;

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  /// Quantile estimate from the buckets, q in [0, 1]: finds the bucket
  /// holding the ceil(q * count)-th observation and log-interpolates
  /// inside it, clamped to the observed [min, max] so single-valued and
  /// extreme quantiles are exact. Returns 0.0 for an empty histogram.
  double percentile(double q) const;

  /// Records one histogram observation (count/sum/min/max + bucket).
  void observe_value(double v);
  /// Merges another histogram shard into this one (element-wise bucket
  /// addition; associative).
  void merge_histogram(const MetricValue& o);
};

class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry& o) { merge(o); }
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- writers -------------------------------------------------------------
  void add(std::string_view name, uint64_t delta = 1);      ///< counter
  void set(std::string_view name, double v);                ///< gauge (last)
  void set_max(std::string_view name, double v);            ///< gauge (max)
  void set_text(std::string_view name, std::string_view v); ///< text gauge
  void observe(std::string_view name, double v);            ///< histogram
  void merge(const MetricsRegistry& o);
  void clear();

  // --- readers -------------------------------------------------------------
  uint64_t counter(std::string_view name) const;
  double gauge(std::string_view name) const;
  std::string text(std::string_view name) const;
  double hist_sum(std::string_view name) const;
  /// Bucket-interpolated quantile of a histogram metric, q in [0, 1];
  /// 0.0 for a missing or empty histogram.
  double percentile(std::string_view name, double q) const;
  bool contains(std::string_view name) const;

  struct Entry {
    std::string name;
    MetricValue v;
  };
  /// Name-sorted copy of every metric (stable serialization order).
  std::vector<Entry> snapshot() const;

  // --- absorbers for the pre-existing ad-hoc stat blocks -------------------
  void absorb_bdd(const BddStats& s);
  void absorb_sched(const SchedStats& s);
  /// No-op for an all-zero block, so rows that never simulated anything
  /// do not grow spurious sim.* entries.
  void absorb_sim(const SimStats& s);
  /// Cut-rewriting counters under rewrite.*; no-op for an all-zero block.
  void absorb_rewrite(const rw::RewriteStats& s);
  /// Row outcome (`flow.ok/degraded/failed`) under the given flow prefix.
  void absorb_status(const FlowStatus& st);
  /// Per-stage histograms: stage.<name> gets (seconds, calls).
  void absorb_stages(const StageBreakdown& sb);

private:
  void merge_locked(const std::string& name, const MetricValue& v);

  mutable std::mutex mu_;
  std::map<std::string, MetricValue, std::less<>> metrics_;
};

/// THE summary formatter: renders every well-known metric group present in
/// the registry as the human-readable blocks the CLI and bench harnesses
/// print (DD kernel line, scheduler block with per-worker rows, flow/
/// governor line, stage breakdown line). Groups with no entries are
/// omitted; unknown groups render generically as "name=value" lines.
std::string format_metrics_summary(const MetricsRegistry& m);

} // namespace obs
} // namespace rmsyn
