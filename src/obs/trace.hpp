// Span tracer — the "where does the time go" half of the obs subsystem.
//
// RMSYN_SPAN("fprm-search") opens an RAII scope that, when tracing is
// enabled, records one completed span (name, start, duration, nesting
// depth) into a lock-free thread-local buffer: the recording path is a
// clock read plus a plain store published with one release-store of the
// buffer index — no mutex, no allocation, no cross-thread traffic. Buffers
// from every thread that ever recorded (pool workers included) are merged
// at export time into a single Chrome trace-event JSON that chrome://tracing
// and Perfetto load directly; `rmsyn_cli ... --trace out.json` is the
// user-facing entry point.
//
// Cost model. Tracing is OFF by default: a disabled RMSYN_SPAN is one
// relaxed atomic load and a branch (bench_obs measures it and gates the
// extrapolated flow overhead at < 1%, BENCH_obs.json). Compiling with
// -DRMSYN_NO_OBS removes the sites entirely. Enabled spans cost two clock
// reads and one 64-byte store; per-thread buffers are bounded
// (kThreadCapacity) and overflow by *dropping* new spans, counted in
// `dropped`, never by blocking or reallocating.
//
// Lifecycle. enable()/reset() are run-scoped operations for the main
// thread between runs; they must not race recording threads. Thread
// buffers are owned by the singleton and survive their thread, so pool
// workers that exited before export still contribute their spans.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/profile.hpp"

namespace rmsyn::obs {

/// Monotonic nanoseconds (steady clock), shared by tracer and stage timers.
uint64_t now_ns();

/// One completed span. `name` is an owned, truncated copy so callers may
/// pass transient strings (e.g. "flow:" + circuit).
struct SpanEvent {
  char name[48] = {0};
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint16_t depth = 0; ///< nesting depth on the recording thread (0 = top)
};

class Tracer {
public:
  static Tracer& instance();

  /// Turns recording on (idempotent). The first enable stamps the trace
  /// origin; ts values in the export are relative to it.
  void enable();
  void disable();
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drops every recorded event and re-stamps the origin. Must not run
  /// concurrently with recording threads (call between runs).
  void reset();

  struct ThreadTrace {
    int tid = 0;
    uint64_t dropped = 0;
    std::vector<SpanEvent> events;
  };
  struct Snapshot {
    uint64_t origin_ns = 0;
    std::vector<ThreadTrace> threads;
  };
  /// Consistent per-thread prefixes of everything recorded so far.
  Snapshot snapshot() const;

  /// Roll-up for run reports (the `trace` section of the report schema).
  struct Summary {
    uint64_t events = 0;
    uint64_t dropped = 0;
    int threads = 0;        ///< threads that recorded at least one span
    double span_seconds = 0.0; ///< sum of top-level (depth 0) durations
    double wall_seconds = 0.0; ///< last span end - first span start
  };
  Summary summary() const;

  /// Chrome trace-event JSON ("X" complete events + thread-name metadata);
  /// loadable by chrome://tracing and Perfetto.
  std::string chrome_trace_json() const;
  /// Writes chrome_trace_json() to `path`; throws std::runtime_error on I/O
  /// failure.
  void write_chrome_trace(const std::string& path) const;

  /// Per-thread span capacity; further spans are dropped (and counted).
  static constexpr std::size_t kThreadCapacity = std::size_t{1} << 15;

private:
  friend class Span;
  Tracer() = default;

  struct ThreadLog;
  ThreadLog* log_for_this_thread();

  static std::atomic<bool> enabled_;
  mutable std::mutex mu_; ///< guards the thread-log registry only
  std::vector<std::unique_ptr<ThreadLog>> logs_;
  std::atomic<uint64_t> origin_ns_{0};
};

/// RAII span; prefer the RMSYN_SPAN macro, which compiles out under
/// -DRMSYN_NO_OBS. The same site feeds both consumers: the tracer's flat
/// event log and the profiler's attribution tree, each gated by the flag
/// state at open time. A span that opened while a consumer was enabled
/// records at close even if the flag flipped meanwhile (the buffers
/// outlive the flip; reset() is what discards them).
class Span {
public:
  explicit Span(const char* name) {
    if (Tracer::enabled() || Profiler::enabled()) open(name);
  }
  explicit Span(const std::string& name) : Span(name.c_str()) {}
  ~Span() {
    if (open_) close();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

private:
  void open(const char* name);
  void close();

  char name_[48] = {0};
  uint64_t start_ns_ = 0;
  bool open_ = false;  ///< a consumer captured this span at open
  bool trace_ = false; ///< tracing was on at open: record a SpanEvent
  bool prof_ = false;  ///< profiling was on at open: a frame is on the stack
};

} // namespace rmsyn::obs

#ifndef RMSYN_NO_OBS
#define RMSYN_OBS_CONCAT_IMPL(a, b) a##b
#define RMSYN_OBS_CONCAT(a, b) RMSYN_OBS_CONCAT_IMPL(a, b)
/// Opens a trace span covering the rest of the enclosing scope.
#define RMSYN_SPAN(name) \
  ::rmsyn::obs::Span RMSYN_OBS_CONCAT(rmsyn_obs_span_, __LINE__)(name)
#else
#define RMSYN_SPAN(name) static_cast<void>(0)
#endif
