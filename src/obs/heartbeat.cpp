#include "obs/heartbeat.hpp"

#include <chrono>
#include <cstdio>

#include "obs/trace.hpp"
#include "util/progress.hpp"

namespace rmsyn::obs {

Heartbeat::Heartbeat(OutputSink& sink, double period_seconds) : sink_(sink) {
  ProgressBoard::instance().set_enabled(true);
  thread_ = std::thread([this, period_seconds] { run(period_seconds); });
}

Heartbeat::~Heartbeat() { stop(); }

void Heartbeat::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  ProgressBoard::instance().set_enabled(false);
}

void Heartbeat::run(double period_seconds) {
  const uint64_t start_ns = now_ns();
  const auto period = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(period_seconds));
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    if (cv_.wait_for(lk, period, [this] { return stopping_; })) return;
    ProgressBoard& board = ProgressBoard::instance();
    const double elapsed = 1e-9 * static_cast<double>(now_ns() - start_ns);
    const uint64_t done = board.rows_done.load(std::memory_order_relaxed);
    const uint64_t total = board.rows_total.load(std::memory_order_relaxed);
    const std::size_t live = board.live_nodes.load(std::memory_order_relaxed);
    const std::string circuit = board.circuit();
    const std::string stage = board.stage();
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "[hb %.1fs] rows %llu/%llu  circuit=%s  stage=%s  "
                  "live nodes %zu\n",
                  elapsed, static_cast<unsigned long long>(done),
                  static_cast<unsigned long long>(total),
                  circuit.empty() ? "-" : circuit.c_str(),
                  stage.empty() ? "-" : stage.c_str(), live);
    ++beats_;
    lk.unlock();
    sink_.write(buf);
    lk.lock();
  }
}

} // namespace rmsyn::obs
