#include "obs/profile.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "util/osinfo.hpp"
#include "util/progress.hpp"

namespace rmsyn::obs {

std::atomic<bool> Profiler::enabled_{false};

namespace {

struct Frame {
  char name[48] = {0};
  int32_t parent = -1;
  int32_t first_child = -1;
  int32_t next_sibling = -1;
  uint64_t calls = 0;
  uint64_t incl_ns = 0;
  uint64_t child_ns = 0;
  double peak_rss_mb = 0.0;
  double dd_live_nodes = 0.0;
};

} // namespace

/// Owner-thread-only state: frame_enter/frame_exit run exclusively on the
/// owning thread; merged() reads under the registry lock after recording
/// threads have quiesced (same contract as Tracer::snapshot on reset).
struct Profiler::ThreadTree {
  std::vector<Frame> frames; ///< frames[0] is the synthetic root
  std::vector<int32_t> stack;

  ThreadTree() {
    frames.reserve(256);
    Frame root;
    std::strncpy(root.name, "root", sizeof root.name - 1);
    frames.push_back(root);
    stack.push_back(0);
  }
};

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

void Profiler::enable() { enabled_.store(true, std::memory_order_relaxed); }

void Profiler::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Profiler::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  // Keep the trees allocated — exited threads may still hold thread_local
  // pointers into them (same rationale as Tracer::reset).
  for (auto& t : trees_) {
    t->frames.resize(1);
    Frame& root = t->frames[0];
    root.first_child = -1;
    root.calls = 0;
    root.incl_ns = 0;
    root.child_ns = 0;
    root.peak_rss_mb = 0.0;
    root.dd_live_nodes = 0.0;
    t->stack.assign(1, 0);
  }
}

Profiler::ThreadTree* Profiler::tree_for_this_thread() {
  thread_local ThreadTree* tt = nullptr;
  if (tt == nullptr) {
    std::lock_guard<std::mutex> lk(mu_);
    trees_.push_back(std::make_unique<ThreadTree>());
    tt = trees_.back().get();
  }
  return tt;
}

void Profiler::frame_enter(const char* name) {
  ThreadTree* t = tree_for_this_thread();
  const int32_t parent = t->stack.back();
  int32_t child = t->frames[static_cast<std::size_t>(parent)].first_child;
  while (child >= 0) {
    Frame& f = t->frames[static_cast<std::size_t>(child)];
    if (std::strncmp(f.name, name, sizeof f.name - 1) == 0) break;
    child = f.next_sibling;
  }
  if (child < 0) {
    if (t->frames.size() >= kMaxNodes) {
      // Tree full: attribute this frame's time to the nearest ancestor.
      t->stack.push_back(parent);
      return;
    }
    child = static_cast<int32_t>(t->frames.size());
    Frame f;
    std::strncpy(f.name, name, sizeof f.name - 1);
    f.parent = parent;
    Frame& p = t->frames[static_cast<std::size_t>(parent)];
    f.next_sibling = p.first_child;
    p.first_child = child;
    t->frames.push_back(f);
  }
  t->stack.push_back(child);
}

void Profiler::frame_exit(uint64_t dur_ns) {
  ThreadTree* t = tree_for_this_thread();
  if (t->stack.size() <= 1) return; // unbalanced exit; ignore
  const int32_t idx = t->stack.back();
  t->stack.pop_back();
  Frame& f = t->frames[static_cast<std::size_t>(idx)];
  const int32_t parent = t->stack.back();
  if (idx == parent) return; // overflow frame: time already in the ancestor
  ++f.calls;
  f.incl_ns += dur_ns;
  t->frames[static_cast<std::size_t>(parent)].child_ns += dur_ns;
  if (t->stack.size() <= 2) {
    // Shallow frame (a stage or flow boundary, never a kernel hot path):
    // sample the process gauges here so the tree carries memory context.
    const double rss = peak_rss_mb();
    if (rss > f.peak_rss_mb) f.peak_rss_mb = rss;
    const double dd = static_cast<double>(
        ProgressBoard::instance().live_nodes.load(std::memory_order_relaxed));
    if (dd > f.dd_live_nodes) f.dd_live_nodes = dd;
  }
}

namespace {

/// Recursively merges a per-thread subtree into the output node, matching
/// children by name so identical stage paths from different threads (pool
/// workers running the same stage) fold together.
void merge_subtree(const std::vector<Frame>& frames, int32_t idx,
                   Profiler::Node& out) {
  const Frame& f = frames[static_cast<std::size_t>(idx)];
  out.calls += f.calls;
  out.incl_ns += f.incl_ns;
  if (f.peak_rss_mb > out.peak_rss_mb) out.peak_rss_mb = f.peak_rss_mb;
  if (f.dd_live_nodes > out.dd_live_nodes) out.dd_live_nodes = f.dd_live_nodes;
  for (int32_t c = f.first_child; c >= 0;
       c = frames[static_cast<std::size_t>(c)].next_sibling) {
    const Frame& cf = frames[static_cast<std::size_t>(c)];
    Profiler::Node* slot = nullptr;
    for (Profiler::Node& n : out.children)
      if (n.name == cf.name) {
        slot = &n;
        break;
      }
    if (slot == nullptr) {
      out.children.emplace_back();
      slot = &out.children.back();
      slot->name = cf.name;
    }
    merge_subtree(frames, c, *slot);
  }
}

/// excl = incl - sum(children incl), clamped at 0; the root's inclusive
/// time is defined as the sum of its children (it never runs itself).
void finish_excl(Profiler::Node& n) {
  uint64_t child = 0;
  for (Profiler::Node& c : n.children) {
    finish_excl(c);
    child += c.incl_ns;
  }
  if (n.name == "root" && n.incl_ns == 0) n.incl_ns = child;
  n.excl_ns = n.incl_ns > child ? n.incl_ns - child : 0;
}

void fold_lines(const Profiler::Node& n, const std::string& prefix,
                std::string& out) {
  const std::string path =
      prefix.empty() ? n.name : prefix + ";" + n.name;
  if (n.excl_ns > 0 && n.name != "root") {
    char buf[64];
    std::snprintf(buf, sizeof buf, " %llu\n",
                  static_cast<unsigned long long>(n.excl_ns / 1000));
    out += path;
    out += buf;
  }
  for (const Profiler::Node& c : n.children)
    fold_lines(c, n.name == "root" ? std::string() : path, out);
}

void json_escape(const std::string& s, std::string& out) {
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out += '\\';
    if (static_cast<unsigned char>(ch) >= 0x20) out += ch;
  }
}

void json_node(const Profiler::Node& n, std::string& out) {
  out += "{\"name\":\"";
  json_escape(n.name, out);
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "\",\"calls\":%llu,\"incl_ms\":%.3f,\"excl_ms\":%.3f",
                static_cast<unsigned long long>(n.calls),
                1e-6 * static_cast<double>(n.incl_ns),
                1e-6 * static_cast<double>(n.excl_ns));
  out += buf;
  if (n.peak_rss_mb > 0.0) {
    std::snprintf(buf, sizeof buf, ",\"peak_rss_mb\":%.1f", n.peak_rss_mb);
    out += buf;
  }
  if (n.dd_live_nodes > 0.0) {
    std::snprintf(buf, sizeof buf, ",\"dd_live_nodes\":%.0f",
                  n.dd_live_nodes);
    out += buf;
  }
  if (!n.children.empty()) {
    out += ",\"children\":[";
    for (std::size_t i = 0; i < n.children.size(); ++i) {
      if (i > 0) out += ",";
      json_node(n.children[i], out);
    }
    out += "]";
  }
  out += "}";
}

} // namespace

Profiler::Node Profiler::merged() const {
  Node root;
  root.name = "root";
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& t : trees_) merge_subtree(t->frames, 0, root);
  finish_excl(root);
  return root;
}

std::string Profiler::folded() const {
  const Node root = merged();
  std::string out;
  fold_lines(root, std::string(), out);
  return out;
}

std::string Profiler::json() const {
  const Node root = merged();
  std::string out;
  json_node(root, out);
  return out;
}

void Profiler::write_folded(const std::string& path) const {
  const std::string text = folded();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    throw std::runtime_error("profile: cannot write " + path);
  const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = n == text.size() && std::fclose(f) == 0;
  if (!ok) throw std::runtime_error("profile: short write to " + path);
}

} // namespace rmsyn::obs
