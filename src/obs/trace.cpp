#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace rmsyn::obs {

uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<bool> Tracer::enabled_{false};

/// Single-producer span buffer: the owning thread writes events[count] and
/// publishes with a release store of count; snapshot() reads count with
/// acquire and copies that prefix. `depth` is owner-thread-only state.
struct Tracer::ThreadLog {
  int tid = 0;
  std::atomic<uint32_t> count{0};
  std::atomic<uint64_t> dropped{0};
  uint32_t depth = 0;
  std::vector<SpanEvent> events;
};

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable() {
  uint64_t expected = 0;
  origin_ns_.compare_exchange_strong(expected, now_ns(),
                                     std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  // Keep the logs allocated: exited-and-replaced threads may still hold
  // thread_local pointers into them. Only the contents are discarded.
  for (auto& log : logs_) {
    log->count.store(0, std::memory_order_relaxed);
    log->dropped.store(0, std::memory_order_relaxed);
  }
  origin_ns_.store(now_ns(), std::memory_order_relaxed);
}

Tracer::ThreadLog* Tracer::log_for_this_thread() {
  thread_local ThreadLog* tl = nullptr;
  if (tl == nullptr) {
    std::lock_guard<std::mutex> lk(mu_);
    logs_.push_back(std::make_unique<ThreadLog>());
    tl = logs_.back().get();
    tl->tid = static_cast<int>(logs_.size());
    tl->events.resize(kThreadCapacity);
  }
  return tl;
}

void Span::open(const char* name) {
  std::strncpy(name_, name, sizeof name_ - 1);
  name_[sizeof name_ - 1] = '\0';
  trace_ = Tracer::enabled();
  prof_ = Profiler::enabled();
  if (trace_) ++Tracer::instance().log_for_this_thread()->depth;
  if (prof_) Profiler::instance().frame_enter(name_);
  open_ = true;
  start_ns_ = now_ns(); // last: exclude our own bookkeeping from the span
}

void Span::close() {
  const uint64_t end = now_ns();
  const uint64_t dur = end > start_ns_ ? end - start_ns_ : 0;
  if (prof_) Profiler::instance().frame_exit(dur);
  if (!trace_) return;
  Tracer::ThreadLog* log = Tracer::instance().log_for_this_thread();
  --log->depth;
  const uint32_t n = log->count.load(std::memory_order_relaxed);
  if (n >= Tracer::kThreadCapacity) {
    log->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  SpanEvent& e = log->events[n];
  std::memcpy(e.name, name_, sizeof e.name);
  e.start_ns = start_ns_;
  e.dur_ns = dur;
  e.depth = static_cast<uint16_t>(log->depth);
  log->count.store(n + 1, std::memory_order_release);
}

Tracer::Snapshot Tracer::snapshot() const {
  Snapshot snap;
  snap.origin_ns = origin_ns_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(mu_);
  snap.threads.reserve(logs_.size());
  for (const auto& log : logs_) {
    const uint32_t n = log->count.load(std::memory_order_acquire);
    if (n == 0 && log->dropped.load(std::memory_order_relaxed) == 0) continue;
    ThreadTrace t;
    t.tid = log->tid;
    t.dropped = log->dropped.load(std::memory_order_relaxed);
    t.events.assign(log->events.begin(), log->events.begin() + n);
    snap.threads.push_back(std::move(t));
  }
  return snap;
}

Tracer::Summary Tracer::summary() const {
  const Snapshot snap = snapshot();
  Summary s;
  uint64_t first = UINT64_MAX, last = 0;
  for (const ThreadTrace& t : snap.threads) {
    if (!t.events.empty() || t.dropped > 0) ++s.threads;
    s.dropped += t.dropped;
    for (const SpanEvent& e : t.events) {
      ++s.events;
      if (e.depth == 0) s.span_seconds += 1e-9 * static_cast<double>(e.dur_ns);
      first = std::min(first, e.start_ns);
      last = std::max(last, e.start_ns + e.dur_ns);
    }
  }
  if (last > first) s.wall_seconds = 1e-9 * static_cast<double>(last - first);
  return s;
}

std::string Tracer::chrome_trace_json() const {
  const Snapshot snap = snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const ThreadTrace& t : snap.threads) {
    std::snprintf(buf, sizeof buf,
                  "%s\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%d,\"args\":{\"name\":\"rmsyn-%d\"}}",
                  first ? "" : ",", t.tid, t.tid);
    out += buf;
    first = false;
    for (const SpanEvent& e : t.events) {
      // Span names are stage identifiers and "flow:<circuit>" labels;
      // escape conservatively anyway so arbitrary circuit names stay valid.
      std::string name;
      for (const char* p = e.name; *p != '\0'; ++p) {
        if (*p == '"' || *p == '\\') name += '\\';
        if (static_cast<unsigned char>(*p) >= 0x20) name += *p;
      }
      const double ts =
          1e-3 * static_cast<double>(e.start_ns - snap.origin_ns);
      const double dur = 1e-3 * static_cast<double>(e.dur_ns);
      std::snprintf(buf, sizeof buf,
                    ",\n{\"name\":\"%s\",\"cat\":\"rmsyn\",\"ph\":\"X\","
                    "\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}",
                    name.c_str(), t.tid, ts, dur);
      out += buf;
    }
  }
  out += "\n]}\n";
  return out;
}

void Tracer::write_chrome_trace(const std::string& path) const {
  const std::string json = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr)
    throw std::runtime_error("trace: cannot write " + path);
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = n == json.size() && std::fclose(f) == 0;
  if (!ok) throw std::runtime_error("trace: short write to " + path);
}

} // namespace rmsyn::obs
