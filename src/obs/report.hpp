// Machine-readable run reports — the "what happened" half of the obs
// subsystem.
//
// `rmsyn_cli table2 --report out.json` (and `batch --report`) writes one
// JSON document per run: tool/schema identification, the command and job
// count, per-circuit rows (every Table-2 column plus FlowStatus and the
// per-stage breakdown), a metrics snapshot (the same registry the summary
// blocks print), and a trace roll-up when tracing was on. EXPERIMENTS.md
// regenerates the paper's Table 2 from this file instead of scraping
// stdout.
//
// Schema stability is an acceptance criterion: data/report_schema.json is
// the checked-in contract, validate_json() checks documents against it
// (subset of JSON Schema: type / required / properties / items), CI runs
// `rmsyn_cli validate-report` on every produced report, and a golden file
// in tests/golden pins the byte-level serialization.
#pragma once

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace rmsyn::obs {

/// Bump ONLY when the report layout changes incompatibly; additive fields
/// keep the version (the schema does not forbid unknown keys).
/// v2: rows grew the optional "rewrite" counters object (cut-rewriting
/// post-pass) and readers must tolerate its absence.
/// v3: histogram metrics carry p50/p90/p99, rows carry row_seconds, the
/// document may carry a "profile" attribution tree and os.* gauges. All
/// additions are optional keys, so v2 documents still validate;
/// validate-report accepts both versions.
inline constexpr int kReportSchemaVersion = 3;

/// Serializes a registry snapshot as an object keyed by metric name; each
/// value carries its kind plus the kind-appropriate fields.
Json metrics_json(const MetricsRegistry& m);

/// Assembles the run-report document. The CLI owns the order of calls:
/// construct, add_row() per circuit, set_metrics(), optionally set_trace(),
/// then finish().
class ReportBuilder {
public:
  ReportBuilder(std::string command, int jobs);

  /// Appends one per-circuit row (built by flow_row_json()).
  void add_row(Json row);
  void set_metrics(const MetricsRegistry& m);
  /// Records the trace roll-up; `run_wall_seconds` is the wall time of the
  /// whole run, used to compute how much of it the trace covers.
  void set_trace(const Tracer::Summary& s, double run_wall_seconds,
                 const std::string& trace_path);
  /// Records the profiler's merged attribution tree (schema v3 `profile`
  /// block) plus the folded-stack path the CLI wrote alongside.
  void set_profile(const Profiler::Node& root,
                   const std::string& folded_path);

  /// Finishes the document: stamps wall_seconds and the worst row status.
  Json finish(double wall_seconds) const;

private:
  std::string command_;
  int jobs_;
  std::vector<Json> rows_;
  Json metrics_ = Json();
  Json trace_ = Json();
  Json profile_ = Json();
};

/// Validates `doc` against a subset-JSON-Schema document supporting
/// `type` (string or array of strings, with "integer" accepted for whole
/// numbers), `required`, `properties`, and `items`. Unknown object keys
/// are allowed (additive schema evolution). Appends human-readable
/// "<path>: <problem>" strings to `errors`; returns errors.empty().
bool validate_json(const Json& doc, const Json& schema,
                   std::vector<std::string>* errors);

/// Writes `doc.dump(indent)` to `path`; throws std::runtime_error on I/O
/// failure.
void write_json_file(const std::string& path, const Json& doc,
                     int indent = 2);

/// Reads a whole file; throws std::runtime_error on I/O failure.
std::string read_file(const std::string& path);

} // namespace rmsyn::obs
