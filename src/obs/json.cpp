#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rmsyn::obs {

// --- object access -----------------------------------------------------------

Json& Json::operator[](std::string_view key) {
  if (type_ == Type::Null) type_ = Type::Object;
  for (auto& [k, v] : members_)
    if (k == key) return v;
  members_.emplace_back(std::string(key), Json());
  return members_.back().second;
}

const Json& Json::get(std::string_view key) const {
  static const Json kNull;
  for (const auto& [k, v] : members_)
    if (k == key) return v;
  return kNull;
}

bool Json::contains(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    (void)v;
    if (k == key) return true;
  }
  return false;
}

bool Json::operator==(const Json& o) const {
  if (type_ != o.type_) return false;
  switch (type_) {
    case Type::Null: return true;
    case Type::Bool: return bool_ == o.bool_;
    case Type::Number: return num_ == o.num_;
    case Type::String: return str_ == o.str_;
    case Type::Array: return items_ == o.items_;
    case Type::Object: return members_ == o.members_;
  }
  return false;
}

// --- serialization -----------------------------------------------------------

std::string Json::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void format_number(std::string& out, double d) {
  if (!std::isfinite(d)) { // JSON has no inf/nan; report documents use 0
    out += "0";
    return;
  }
  // Integers (the common case: counters, node counts) print exactly.
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
    return;
  }
  // Shortest representation that round-trips: try %.15g, widen if lossy.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.15g", d);
  if (std::strtod(buf, nullptr) != d) std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

} // namespace

void Json::dump_to(std::string& out, int indent, int level) const {
  const auto newline_pad = [&](int lvl) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * lvl), ' ');
  };
  switch (type_) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += bool_ ? "true" : "false"; break;
    case Type::Number: format_number(out, num_); break;
    case Type::String:
      out += '"';
      out += escape(str_);
      out += '"';
      break;
    case Type::Array: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i != 0) out += ',';
        newline_pad(level + 1);
        items_[i].dump_to(out, indent, level + 1);
      }
      newline_pad(level);
      out += ']';
      break;
    }
    case Type::Object: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i != 0) out += ',';
        newline_pad(level + 1);
        out += '"';
        out += escape(members_[i].first);
        out += indent < 0 ? "\":" : "\": ";
        members_[i].second.dump_to(out, indent, level + 1);
      }
      newline_pad(level);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent >= 0) out += '\n';
  return out;
}

// --- parsing -----------------------------------------------------------------

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos) + ": " + what);
  }
  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\n' || text[pos] == '\r'))
      ++pos;
  }
  char peek() {
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }
  bool consume_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) fail("unterminated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode (no surrogate-pair handling; report content is
          // ASCII circuit names and metric keys).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Json parse_value(int depth) {
    if (depth > 128) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    if (c == '{') {
      ++pos;
      Json obj = Json::object();
      skip_ws();
      if (peek() == '}') {
        ++pos;
        return obj;
      }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        obj[key] = parse_value(depth + 1);
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect('}');
        return obj;
      }
    }
    if (c == '[') {
      ++pos;
      Json arr = Json::array();
      skip_ws();
      if (peek() == ']') {
        ++pos;
        return arr;
      }
      while (true) {
        arr.push_back(parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect(']');
        return arr;
      }
    }
    if (c == '"') return Json(parse_string());
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json(nullptr);
    // number
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-'))
      ++pos;
    if (pos == start) fail("unexpected character");
    const std::string num(text.substr(start, pos - start));
    char* end = nullptr;
    const double d = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number '" + num + "'");
    return Json(d);
  }
};

} // namespace

Json Json::parse(std::string_view text) {
  Parser p{text};
  Json v = p.parse_value(0);
  p.skip_ws();
  if (p.pos != text.size()) p.fail("trailing garbage");
  return v;
}

} // namespace rmsyn::obs
