#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

// Struct definitions only: the absorbers read plain fields (and inline
// members), so rmsyn_obs needs no link-time dependency on the bdd/sched
// libraries — the dependency arrow stays obs <- {bdd, sched, flow}.
#include "bdd/bdd.hpp"
#include "rewrite/rewrite.hpp"
#include "sched/pool.hpp"
#include "sim/sim.hpp"

namespace rmsyn::obs {

const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
    case MetricKind::Text: return "text";
  }
  return "?";
}

// --- log-spaced histogram buckets --------------------------------------------

int HistogramBuckets::bucket_for(double v) {
  if (!(v >= kMinBound)) return 0; // negatives, zero, NaN -> underflow
  const int i =
      1 + static_cast<int>(std::floor(std::log10(v / kMinBound) *
                                      static_cast<double>(kPerDecade)));
  return i < 1 ? 1 : (i >= kCount ? kCount - 1 : i);
}

double HistogramBuckets::lower(int i) {
  if (i <= 0) return 0.0;
  return kMinBound * std::pow(10.0, static_cast<double>(i - 1) /
                                        static_cast<double>(kPerDecade));
}

double HistogramBuckets::upper(int i) {
  if (i >= kCount - 1) return std::numeric_limits<double>::infinity();
  return lower(i + 1);
}

void MetricValue::observe_value(double v) {
  if (count == 0) {
    min = max = v;
  } else {
    if (v < min) min = v;
    if (v > max) max = v;
  }
  ++count;
  sum += v;
  if (buckets.empty()) buckets.assign(HistogramBuckets::kCount, 0);
  ++buckets[static_cast<std::size_t>(HistogramBuckets::bucket_for(v))];
}

void MetricValue::merge_histogram(const MetricValue& o) {
  if (o.count == 0) return;
  if (count == 0) {
    min = o.min;
    max = o.max;
  } else {
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
  }
  count += o.count;
  sum += o.sum;
  if (o.buckets.empty()) return;
  if (buckets.empty()) buckets.assign(HistogramBuckets::kCount, 0);
  for (std::size_t i = 0; i < buckets.size() && i < o.buckets.size(); ++i)
    buckets[i] += o.buckets[i];
}

double MetricValue::percentile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  if (buckets.empty()) {
    // Legacy shard (absorb_stages' aggregated entries carry no buckets):
    // interpolate the observed range — exact when min == max.
    return min + q * (max - min);
  }
  // Rank of the requested observation, 1-based (nearest-rank definition).
  const uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  const uint64_t want = rank == 0 ? 1 : rank;
  uint64_t seen = 0;
  for (int i = 0; i < HistogramBuckets::kCount; ++i) {
    const uint64_t in_bucket = buckets[static_cast<std::size_t>(i)];
    if (in_bucket == 0) continue;
    if (seen + in_bucket < want) {
      seen += in_bucket;
      continue;
    }
    // Log-interpolate inside the bucket by the fraction of its
    // observations below the requested rank, clamped to [min, max] so a
    // single-valued histogram answers exactly.
    double lo = HistogramBuckets::lower(i);
    double hi = HistogramBuckets::upper(i);
    if (lo < min) lo = min;
    if (!(hi < max)) hi = max; // also catches the +inf overflow bound
    if (!(hi > lo)) return lo;
    const double frac = static_cast<double>(want - seen) /
                        static_cast<double>(in_bucket);
    // Linear fallback when the bucket floor is 0 (underflow bucket).
    if (!(lo > 0.0)) return lo + frac * (hi - lo);
    return lo * std::pow(hi / lo, frac);
  }
  return max;
}

void MetricsRegistry::add(std::string_view name, uint64_t delta) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    MetricValue v;
    v.kind = MetricKind::Counter;
    v.count = delta;
    metrics_.emplace(std::string(name), v);
    return;
  }
  it->second.count += delta;
}

void MetricsRegistry::set(std::string_view name, double v) {
  std::lock_guard<std::mutex> lk(mu_);
  MetricValue& m = metrics_[std::string(name)];
  m.kind = MetricKind::Gauge;
  m.value = v;
}

void MetricsRegistry::set_max(std::string_view name, double v) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    MetricValue m;
    m.kind = MetricKind::Gauge;
    m.value = v;
    metrics_.emplace(std::string(name), m);
    return;
  }
  if (v > it->second.value) it->second.value = v;
}

void MetricsRegistry::set_text(std::string_view name, std::string_view v) {
  std::lock_guard<std::mutex> lk(mu_);
  MetricValue& m = metrics_[std::string(name)];
  m.kind = MetricKind::Text;
  m.text = std::string(v);
}

void MetricsRegistry::observe(std::string_view name, double v) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    MetricValue m;
    m.kind = MetricKind::Histogram;
    m.observe_value(v);
    metrics_.emplace(std::string(name), std::move(m));
    return;
  }
  it->second.observe_value(v);
}

void MetricsRegistry::merge_locked(const std::string& name,
                                   const MetricValue& v) {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    metrics_.emplace(name, v);
    return;
  }
  MetricValue& m = it->second;
  switch (v.kind) {
    case MetricKind::Counter: m.count += v.count; break;
    case MetricKind::Gauge:
      if (v.value > m.value) m.value = v.value; // merge keeps the max
      break;
    case MetricKind::Histogram: m.merge_histogram(v); break;
    case MetricKind::Text:
      if (!v.text.empty()) m.text = v.text;
      break;
  }
}

void MetricsRegistry::merge(const MetricsRegistry& o) {
  std::vector<Entry> theirs = o.snapshot();
  std::lock_guard<std::mutex> lk(mu_);
  for (const Entry& e : theirs) merge_locked(e.name, e.v);
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  metrics_.clear();
}

uint64_t MetricsRegistry::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = metrics_.find(name);
  return it == metrics_.end() ? 0 : it->second.count;
}

double MetricsRegistry::gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = metrics_.find(name);
  return it == metrics_.end() ? 0.0 : it->second.value;
}

std::string MetricsRegistry::text(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = metrics_.find(name);
  return it == metrics_.end() ? std::string() : it->second.text;
}

double MetricsRegistry::hist_sum(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = metrics_.find(name);
  return it == metrics_.end() ? 0.0 : it->second.sum;
}

double MetricsRegistry::percentile(std::string_view name, double q) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = metrics_.find(name);
  return it == metrics_.end() ? 0.0 : it->second.percentile(q);
}

bool MetricsRegistry::contains(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  return metrics_.find(name) != metrics_.end();
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Entry> out;
  out.reserve(metrics_.size());
  for (const auto& [name, v] : metrics_) out.push_back(Entry{name, v});
  return out;
}

// --- absorbers ---------------------------------------------------------------

void MetricsRegistry::absorb_bdd(const BddStats& s) {
  add("dd.unique_lookups", s.unique_lookups);
  add("dd.unique_hits", s.unique_hits);
  add("dd.cache_lookups", s.cache_lookups);
  add("dd.cache_hits", s.cache_hits);
  add("dd.cache_inserts", s.cache_inserts);
  add("dd.gc_runs", s.gc_runs);
  add("dd.nodes_freed", s.nodes_freed);
  add("dd.reorder_runs", s.reorder_runs);
  add("dd.reorder_swaps", s.reorder_swaps);
  set_max("dd.peak_live_nodes", static_cast<double>(s.peak_live_nodes));
}

void MetricsRegistry::absorb_sched(const SchedStats& s) {
  if (s.per_worker.empty()) return;
  set_max("sched.workers", static_cast<double>(s.workers));
  char name[64];
  for (std::size_t i = 0; i < s.per_worker.size(); ++i) {
    const WorkerStats& w = s.per_worker[i];
    add("sched.tasks", w.tasks_run);
    add("sched.steals", w.steals);
    add("sched.tasks_stolen", w.tasks_stolen);
    add("sched.steal_attempts", w.steal_attempts);
    observe("sched.busy_seconds", w.busy_seconds);
    observe("sched.idle_seconds", w.idle_seconds);
    set_max("sched.peak_queue_depth", static_cast<double>(w.peak_queue_depth));
    if (w.tasks_run == 0 && w.steal_attempts == 0) continue;
    // Per-slot detail; the last slot is the external helper (the thread
    // that called wait() and worked the queue), as in sched/pool.hpp.
    const bool external = i + 1 == s.per_worker.size() &&
                          static_cast<int>(i) == s.workers;
    if (external)
      std::snprintf(name, sizeof name, "sched.ext");
    else
      std::snprintf(name, sizeof name, "sched.w%zu", i);
    const std::string slot(name);
    add(slot + ".tasks", w.tasks_run);
    add(slot + ".steals", w.steals);
    add(slot + ".tasks_stolen", w.tasks_stolen);
    add(slot + ".steal_attempts", w.steal_attempts);
    observe(slot + ".busy_seconds", w.busy_seconds);
    observe(slot + ".idle_seconds", w.idle_seconds);
    set_max(slot + ".peak_queue_depth",
            static_cast<double>(w.peak_queue_depth));
  }
}

void MetricsRegistry::absorb_sim(const SimStats& s) {
  if (s.empty()) return;
  add("sim.full_passes", s.full_passes);
  add("sim.incr_resims", s.incr_resims);
  add("sim.events", s.events);
  add("sim.events_died", s.events_died);
  add("sim.fault_probes", s.fault_probes);
  add("sim.cone_nodes", s.cone_nodes);
  add("sim.faults_dropped", s.faults_dropped);
  add("sim.blocks_skipped", s.blocks_skipped);
  add("sim.value_reuses", s.value_reuses);
  add("sim.simd_blocks", s.simd_blocks);
  if (s.patterns_per_second() > 0.0)
    set_max("sim.patterns_per_second", s.patterns_per_second());
  if (s.simd_dispatch != nullptr)
    set_text("sim.simd_dispatch", s.simd_dispatch);
}

void MetricsRegistry::absorb_rewrite(const rw::RewriteStats& s) {
  if (s.empty()) return;
  add("rewrite.passes", s.passes);
  add("rewrite.roots", s.roots);
  add("rewrite.cuts_enumerated", s.cuts_enumerated);
  add("rewrite.db_hits", s.db_hits);
  add("rewrite.candidates", s.candidates);
  add("rewrite.stale_skips", s.stale_skips);
  add("rewrite.replacements", s.replacements);
  add("rewrite.sim_rejects", s.sim_rejects);
  add("rewrite.bdd_rejects", s.bdd_rejects);
  add("rewrite.lits_before", s.lits_before);
  add("rewrite.lits_after", s.lits_after);
  add("rewrite.gain_lits", s.gain_lits);
  if (s.cuts_seconds > 0.0) observe("rewrite.cuts_seconds", s.cuts_seconds);
  if (s.eval_seconds > 0.0) observe("rewrite.eval_seconds", s.eval_seconds);
  if (s.apply_seconds > 0.0) observe("rewrite.apply_seconds", s.apply_seconds);
}

void MetricsRegistry::absorb_status(const FlowStatus& st) {
  add("flow.rows");
  switch (st.outcome) {
    case FlowOutcome::Ok: add("flow.ok"); break;
    case FlowOutcome::Degraded: add("flow.degraded"); break;
    case FlowOutcome::Failed: add("flow.failed"); break;
  }
}

void MetricsRegistry::absorb_stages(const StageBreakdown& sb) {
  for (const StageBreakdown::Entry& e : sb.entries) {
    const std::string name = "stage." + e.name;
    std::lock_guard<std::mutex> lk(mu_);
    MetricValue v;
    v.kind = MetricKind::Histogram;
    v.count = e.calls;
    v.sum = v.min = v.max = e.seconds;
    merge_locked(name, v);
  }
}

// --- the one formatter -------------------------------------------------------

namespace {

bool has_prefix(const std::string& s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

const MetricValue* find(const std::vector<MetricsRegistry::Entry>& es,
                        std::string_view name) {
  for (const auto& e : es)
    if (e.name == name) return &e.v;
  return nullptr;
}

uint64_t cnt(const std::vector<MetricsRegistry::Entry>& es,
             std::string_view name) {
  const MetricValue* v = find(es, name);
  return v == nullptr ? 0 : v->count;
}

double gval(const std::vector<MetricsRegistry::Entry>& es,
            std::string_view name) {
  const MetricValue* v = find(es, name);
  return v == nullptr ? 0.0 : v->value;
}

double hsum(const std::vector<MetricsRegistry::Entry>& es,
            std::string_view name) {
  const MetricValue* v = find(es, name);
  return v == nullptr ? 0.0 : v->sum;
}

void format_dd_block(const std::vector<MetricsRegistry::Entry>& es,
                     std::string& out) {
  const uint64_t cache_lookups = cnt(es, "dd.cache_lookups");
  const uint64_t unique_lookups = cnt(es, "dd.unique_lookups");
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "DD kernel: %llu cache lookups (hit rate %.1f%%), "
      "%llu unique-table probes (%.1f%% hits), peak live nodes %zu, "
      "%llu gc runs freeing %llu nodes, %llu reorders (%llu swaps)\n",
      static_cast<unsigned long long>(cache_lookups),
      cache_lookups == 0 ? 0.0
                         : 100.0 *
                               static_cast<double>(cnt(es, "dd.cache_hits")) /
                               static_cast<double>(cache_lookups),
      static_cast<unsigned long long>(unique_lookups),
      unique_lookups == 0 ? 0.0
                          : 100.0 *
                                static_cast<double>(cnt(es, "dd.unique_hits")) /
                                static_cast<double>(unique_lookups),
      static_cast<std::size_t>(gval(es, "dd.peak_live_nodes")),
      static_cast<unsigned long long>(cnt(es, "dd.gc_runs")),
      static_cast<unsigned long long>(cnt(es, "dd.nodes_freed")),
      static_cast<unsigned long long>(cnt(es, "dd.reorder_runs")),
      static_cast<unsigned long long>(cnt(es, "dd.reorder_swaps")));
  out += buf;
}

void format_sched_block(const std::vector<MetricsRegistry::Entry>& es,
                        std::string& out) {
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "Scheduler: %d workers, %llu tasks (%llu stolen in %llu steals), "
      "busy %.2fs / idle %.2fs, peak queue depth %zu\n",
      static_cast<int>(gval(es, "sched.workers")),
      static_cast<unsigned long long>(cnt(es, "sched.tasks")),
      static_cast<unsigned long long>(cnt(es, "sched.tasks_stolen")),
      static_cast<unsigned long long>(cnt(es, "sched.steals")),
      hsum(es, "sched.busy_seconds"), hsum(es, "sched.idle_seconds"),
      static_cast<std::size_t>(gval(es, "sched.peak_queue_depth")));
  out += buf;
  const auto slot_line = [&](const std::string& slot, const char* label) {
    if (find(es, slot + ".tasks") == nullptr &&
        find(es, slot + ".steal_attempts") == nullptr)
      return;
    std::snprintf(
        buf, sizeof buf,
        "  %-4s: %6llu tasks, %5llu stolen/%llu steals (%llu probes), "
        "busy %8.2fs, idle %8.2fs, peak depth %zu\n",
        label, static_cast<unsigned long long>(cnt(es, slot + ".tasks")),
        static_cast<unsigned long long>(cnt(es, slot + ".tasks_stolen")),
        static_cast<unsigned long long>(cnt(es, slot + ".steals")),
        static_cast<unsigned long long>(cnt(es, slot + ".steal_attempts")),
        hsum(es, slot + ".busy_seconds"), hsum(es, slot + ".idle_seconds"),
        static_cast<std::size_t>(gval(es, slot + ".peak_queue_depth")));
    out += buf;
  };
  const int workers = static_cast<int>(gval(es, "sched.workers"));
  char label[32];
  for (int i = 0; i < workers; ++i) {
    std::snprintf(label, sizeof label, "w%d", i);
    slot_line("sched.w" + std::to_string(i), label);
  }
  slot_line("sched.ext", "ext0");
}

void format_sim_block(const std::vector<MetricsRegistry::Entry>& es,
                      std::string& out) {
  const uint64_t events = cnt(es, "sim.events");
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "Sim engine: %llu full passes, %llu incremental resims "
      "(%llu events, %.1f%% died), %llu fault probes over %llu cone nodes, "
      "%llu faults dropped (%llu blocks skipped), %llu cached reads\n",
      static_cast<unsigned long long>(cnt(es, "sim.full_passes")),
      static_cast<unsigned long long>(cnt(es, "sim.incr_resims")),
      static_cast<unsigned long long>(events),
      events == 0 ? 0.0
                  : 100.0 * static_cast<double>(cnt(es, "sim.events_died")) /
                        static_cast<double>(events),
      static_cast<unsigned long long>(cnt(es, "sim.fault_probes")),
      static_cast<unsigned long long>(cnt(es, "sim.cone_nodes")),
      static_cast<unsigned long long>(cnt(es, "sim.faults_dropped")),
      static_cast<unsigned long long>(cnt(es, "sim.blocks_skipped")),
      static_cast<unsigned long long>(cnt(es, "sim.value_reuses")));
  out += buf;
  // SIMD line only when a kernel pass actually ran.
  const uint64_t blocks = cnt(es, "sim.simd_blocks");
  if (blocks > 0) {
    std::string dispatch;
    for (const auto& e : es)
      if (e.name == "sim.simd_dispatch") dispatch = e.v.text;
    const double pps = gval(es, "sim.patterns_per_second");
    std::snprintf(buf, sizeof buf,
                  "Sim SIMD: %s dispatch, %llu blocks, %.3g patterns/s\n",
                  dispatch.empty() ? "?" : dispatch.c_str(),
                  static_cast<unsigned long long>(blocks), pps);
    out += buf;
  }
}

void format_rewrite_block(const std::vector<MetricsRegistry::Entry>& es,
                          std::string& out) {
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "Rewrite: %llu passes over %llu roots, %llu cuts (%llu db hits), "
      "%llu candidates -> %llu applied (%llu stale, %llu sim rejects, "
      "%llu bdd rejects), lits %llu -> %llu (saved %llu)\n",
      static_cast<unsigned long long>(cnt(es, "rewrite.passes")),
      static_cast<unsigned long long>(cnt(es, "rewrite.roots")),
      static_cast<unsigned long long>(cnt(es, "rewrite.cuts_enumerated")),
      static_cast<unsigned long long>(cnt(es, "rewrite.db_hits")),
      static_cast<unsigned long long>(cnt(es, "rewrite.candidates")),
      static_cast<unsigned long long>(cnt(es, "rewrite.replacements")),
      static_cast<unsigned long long>(cnt(es, "rewrite.stale_skips")),
      static_cast<unsigned long long>(cnt(es, "rewrite.sim_rejects")),
      static_cast<unsigned long long>(cnt(es, "rewrite.bdd_rejects")),
      static_cast<unsigned long long>(cnt(es, "rewrite.lits_before")),
      static_cast<unsigned long long>(cnt(es, "rewrite.lits_after")),
      static_cast<unsigned long long>(cnt(es, "rewrite.gain_lits")));
  out += buf;
  const double cuts_s = hsum(es, "rewrite.cuts_seconds");
  const double eval_s = hsum(es, "rewrite.eval_seconds");
  const double apply_s = hsum(es, "rewrite.apply_seconds");
  if (cuts_s + eval_s + apply_s > 0.0) {
    std::snprintf(buf, sizeof buf,
                  "  phases: cuts %.3fs, evaluate %.3fs, apply %.3fs\n",
                  cuts_s, eval_s, apply_s);
    out += buf;
  }
}

void format_flow_block(const std::vector<MetricsRegistry::Entry>& es,
                       std::string& out) {
  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      "Flow: %llu rows (%llu ok, %llu degraded, %llu failed), "
      "%llu governor polls, %llu ladder descents\n",
      static_cast<unsigned long long>(cnt(es, "flow.rows")),
      static_cast<unsigned long long>(cnt(es, "flow.ok")),
      static_cast<unsigned long long>(cnt(es, "flow.degraded")),
      static_cast<unsigned long long>(cnt(es, "flow.failed")),
      static_cast<unsigned long long>(cnt(es, "flow.governor_polls")),
      static_cast<unsigned long long>(cnt(es, "flow.ladder_descents")));
  out += buf;
  const MetricValue* lat = find(es, "flow.row_seconds");
  if (lat != nullptr && lat->count > 0) {
    std::snprintf(buf, sizeof buf,
                  "Row latency: p50 %.3fs, p99 %.3fs, max %.3fs (n=%llu)\n",
                  lat->percentile(0.5), lat->percentile(0.99), lat->max,
                  static_cast<unsigned long long>(lat->count));
    out += buf;
  }
}

void format_stage_block(const std::vector<MetricsRegistry::Entry>& es,
                        std::string& out) {
  std::vector<const MetricsRegistry::Entry*> stages;
  for (const auto& e : es)
    if (has_prefix(e.name, "stage.")) stages.push_back(&e);
  std::stable_sort(stages.begin(), stages.end(),
                   [](const MetricsRegistry::Entry* a,
                      const MetricsRegistry::Entry* b) {
                     return a->v.sum > b->v.sum;
                   });
  out += "Stages:";
  char buf[128];
  for (const auto* e : stages) {
    std::snprintf(buf, sizeof buf, " %s %.3fs (%llu)",
                  e->name.c_str() + 6, e->v.sum,
                  static_cast<unsigned long long>(e->v.count));
    out += buf;
  }
  out += "\n";
}

} // namespace

std::string format_metrics_summary(const MetricsRegistry& m) {
  const std::vector<MetricsRegistry::Entry> es = m.snapshot();
  std::string out;
  bool any_dd = false, any_sched = false, any_sim = false, any_rw = false,
       any_flow = false, any_stage = false;
  for (const auto& e : es) {
    any_dd |= has_prefix(e.name, "dd.");
    any_sched |= has_prefix(e.name, "sched.");
    any_sim |= has_prefix(e.name, "sim.");
    any_rw |= has_prefix(e.name, "rewrite.");
    any_flow |= has_prefix(e.name, "flow.");
    any_stage |= has_prefix(e.name, "stage.");
  }
  if (any_dd) format_dd_block(es, out);
  if (any_sched) format_sched_block(es, out);
  if (any_sim) format_sim_block(es, out);
  if (any_rw) format_rewrite_block(es, out);
  if (any_flow) format_flow_block(es, out);
  if (any_stage) format_stage_block(es, out);
  // Anything outside the well-known groups renders generically, so new
  // instrumentation shows up without formatter changes.
  char buf[192];
  for (const auto& e : es) {
    if (has_prefix(e.name, "dd.") || has_prefix(e.name, "sched.") ||
        has_prefix(e.name, "sim.") || has_prefix(e.name, "rewrite.") ||
        has_prefix(e.name, "flow.") || has_prefix(e.name, "stage."))
      continue;
    switch (e.v.kind) {
      case MetricKind::Counter:
        std::snprintf(buf, sizeof buf, "%s=%llu\n", e.name.c_str(),
                      static_cast<unsigned long long>(e.v.count));
        break;
      case MetricKind::Gauge:
        std::snprintf(buf, sizeof buf, "%s=%g\n", e.name.c_str(), e.v.value);
        break;
      case MetricKind::Histogram:
        std::snprintf(buf, sizeof buf,
                      "%s: n=%llu sum=%g min=%g mean=%g max=%g "
                      "p50=%g p99=%g\n",
                      e.name.c_str(),
                      static_cast<unsigned long long>(e.v.count), e.v.sum,
                      e.v.min, e.v.mean(), e.v.max, e.v.percentile(0.5),
                      e.v.percentile(0.99));
        break;
      case MetricKind::Text:
        std::snprintf(buf, sizeof buf, "%s=%s\n", e.name.c_str(),
                      e.v.text.c_str());
        break;
    }
    out += buf;
  }
  return out;
}

} // namespace rmsyn::obs
