// Minimal JSON document model for the obs subsystem: the run-report writer,
// the report-schema validator, and the golden-file round-trip tests all
// need structured JSON, and the container ships no JSON library — so this
// is a deliberately small, dependency-free implementation.
//
// Properties that matter here:
//  * Objects preserve insertion order, so a report serializes with a
//    stable, diffable key order (schema stability is an acceptance
//    criterion, see data/report_schema.json).
//  * Numbers round-trip: dump() emits integers without a decimal point and
//    doubles via shortest-representation probing (%.15g, re-parsed and
//    widened to %.17g only when lossy).
//  * parse() reports errors with a byte offset, for CI diagnostics.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rmsyn::obs {

class Json {
public:
  enum class Type : uint8_t { Null, Bool, Number, String, Array, Object };

  Json() : type_(Type::Null) {}
  Json(std::nullptr_t) : type_(Type::Null) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(double d) : type_(Type::Number), num_(d) {}
  Json(int i) : type_(Type::Number), num_(i) {}
  Json(unsigned u) : type_(Type::Number), num_(u) {}
  Json(long long i) : type_(Type::Number), num_(static_cast<double>(i)) {}
  Json(unsigned long long u) : type_(Type::Number), num_(static_cast<double>(u)) {}
  Json(std::size_t n) : type_(Type::Number), num_(static_cast<double>(n)) {}
  Json(const char* s) : type_(Type::String), str_(s) {}
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::String), str_(s) {}

  static Json object() {
    Json j;
    j.type_ = Type::Object;
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::Array;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }

  // --- array ---------------------------------------------------------------
  std::size_t size() const {
    return is_object() ? members_.size() : items_.size();
  }
  void push_back(Json v) { items_.push_back(std::move(v)); }
  const Json& at(std::size_t i) const { return items_[i]; }
  const std::vector<Json>& items() const { return items_; }

  // --- object (insertion-ordered) ------------------------------------------
  /// Insert-or-get; turns a Null value into an Object first (builder style).
  Json& operator[](std::string_view key);
  /// Null-type reference when absent (distinguish with contains()).
  const Json& get(std::string_view key) const;
  bool contains(std::string_view key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  bool operator==(const Json& o) const;
  bool operator!=(const Json& o) const { return !(*this == o); }

  /// indent < 0: compact one-line form; indent >= 0: pretty-printed with
  /// that many spaces per level and a trailing newline at top level.
  std::string dump(int indent = -1) const;

  /// Throws std::runtime_error ("json parse error at byte N: ...") on
  /// malformed input or trailing garbage.
  static Json parse(std::string_view text);

  static std::string escape(std::string_view s);

private:
  void dump_to(std::string& out, int indent, int level) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

} // namespace rmsyn::obs
